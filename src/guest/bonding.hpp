/**
 * @file
 * BondingDriver: the Linux bonding driver in active-backup mode, the
 * mechanism DNIS builds on (paper Section 4.4).
 *
 * Aggregates several underlying NetDevices behind one logical device.
 * One slave is active; the rest stand by. DNIS enslaves the VF driver
 * and the PV NIC, runs the VF for performance, and fails over to the
 * PV NIC when the VF is hot-removed for migration. As in the default
 * Linux configuration the bond presents a single MAC, so the L2
 * fabric re-steers traffic when the active slave changes.
 */

#ifndef SRIOV_GUEST_BONDING_HPP
#define SRIOV_GUEST_BONDING_HPP

#include <string>
#include <vector>

#include "guest/net_stack.hpp"
#include "sim/stats.hpp"

namespace sriov::guest {

class BondingDriver : public NetDevice, public NetRxSink
{
  public:
    explicit BondingDriver(std::string name);

    /** Enslave @p dev; the first slave becomes active. */
    void addSlave(NetDevice &dev);
    void removeSlave(NetDevice &dev);

    /** Fail over to @p dev (must be enslaved). */
    void setActive(NetDevice &dev);
    NetDevice *active() { return active_; }
    std::size_t slaveCount() const { return slaves_.size(); }

    /**
     * Fail over to the first other slave with link up. Returns false
     * if none is available (bond loses carrier).
     */
    bool failover();

    /** @name NetDevice (the bond is the stack-visible device). @{ */
    bool transmit(const nic::Packet &pkt) override;
    nic::MacAddr mac() const override;
    bool linkUp() const override;
    const std::string &name() const override { return name_; }
    /** @} */

    /**
     * NetRxSink: traffic from the *active* slave surfaces through the
     * bond; frames arriving on a backup slave are discarded, exactly
     * like Linux active-backup mode (this is the packet loss window
     * at DNIS interface-switch time, Fig. 21).
     */
    void deviceRx(NetDevice &from,
                  const std::vector<nic::Packet> &pkts) override;

    std::uint64_t failovers() const { return failovers_.value(); }
    std::uint64_t txDropped() const { return tx_dropped_.value(); }
    std::uint64_t inactiveRxDropped() const
    {
        return inactive_rx_dropped_.value();
    }

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        v.inv("bond.slaves", slaves_.size());
        failovers_.fluidVisit(v, "bond.failovers");
        tx_dropped_.fluidVisit(v, "bond.tx_dropped");
        inactive_rx_dropped_.fluidVisit(v, "bond.inactive_rx");
    }

  private:
    std::string name_;
    std::vector<NetDevice *> slaves_;
    NetDevice *active_ = nullptr;
    sim::Counter failovers_;
    sim::Counter tx_dropped_;
    sim::Counter inactive_rx_dropped_;
};

} // namespace sriov::guest

#endif // SRIOV_GUEST_BONDING_HPP
