/**
 * @file
 * SocketBuffer: the kernel-to-application queue of a socket.
 *
 * Capacity is enforced in packets and/or bytes. The paper's guests run
 * with a 120832-byte UDP socket buffer, which it treats as 64
 * application buffers (`ap_bufs`, Section 5.3) — the quantity AIC must
 * avoid overflowing between interrupts.
 */

#ifndef SRIOV_GUEST_SOCKET_BUFFER_HPP
#define SRIOV_GUEST_SOCKET_BUFFER_HPP

#include <vector>

#include "nic/packet.hpp"
#include "sim/ring_buf.hpp"
#include "sim/stats.hpp"

namespace sriov::guest {

class SocketBuffer
{
  public:
    /** @param cap_packets 0 = unlimited; @param cap_bytes 0 = unlimited. */
    SocketBuffer(std::size_t cap_packets, std::size_t cap_bytes)
        : cap_packets_(cap_packets), cap_bytes_(cap_bytes)
    {}

    /** Paper defaults: 64 application buffers. */
    static constexpr std::size_t kDefaultApBufs = 64;
    static constexpr std::size_t kDefaultBytes = 120832;

    SocketBuffer() : SocketBuffer(kDefaultApBufs, 0) {}

    std::size_t capPackets() const { return cap_packets_; }
    std::size_t size() const { return q_.size(); }
    std::size_t bytes() const { return bytes_; }
    bool empty() const { return q_.empty(); }

    /** Enqueue; false (and a drop count) on overflow. */
    bool push(const nic::Packet &pkt);

    /** Dequeue up to @p n packets. */
    std::vector<nic::Packet> pop(std::size_t n);

    /** Drain everything (one application read burst). */
    std::vector<nic::Packet> drain();

    /** @name Allocation-free forms: @p out is cleared, capacity kept. @{ */
    void popInto(std::size_t n, std::vector<nic::Packet> &out);
    void drainInto(std::vector<nic::Packet> &out) { popInto(q_.size(), out); }
    /** @} */

    std::uint64_t drops() const { return drops_.value(); }
    std::uint64_t delivered() const { return delivered_.value(); }

    /** Fluid-mode state walk (sim/fluid.hpp): occupancy is
     *  phase-invariant; queued frames align by FIFO position. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        v.inv("sock.bytes", bytes_);
        drops_.fluidVisit(v, "sock.drops");
        delivered_.fluidVisit(v, "sock.delivered");
        v.inv("sock.q", q_.size());
        for (std::size_t i = 0; i < q_.size(); ++i)
            nic::fluidVisitPacket(v, "sock.pkt", q_[i]);
    }

  private:
    std::size_t cap_packets_;
    std::size_t cap_bytes_;
    std::size_t bytes_ = 0;
    sim::RingBuf<nic::Packet> q_;
    sim::Counter drops_;
    sim::Counter delivered_;
};

} // namespace sriov::guest

#endif // SRIOV_GUEST_SOCKET_BUFFER_HPP
