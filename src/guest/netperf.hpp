/**
 * @file
 * netperf-like stream workloads: UDP_STREAM and TCP_STREAM senders and
 * receivers (the benchmark of every figure in the paper's Section 6).
 */

#ifndef SRIOV_GUEST_NETPERF_HPP
#define SRIOV_GUEST_NETPERF_HPP

#include <utility>

#include "guest/net_stack.hpp"
#include "obs/histogram.hpp"
#include "sim/deferred_timer.hpp"
#include "sim/event_queue.hpp"
#include "sim/ring_buf.hpp"
#include "sim/stats.hpp"

namespace sriov::guest {

/** Open-loop constant-bit-rate UDP sender. */
class UdpStreamSender
{
  public:
    /**
     * @param offered_bps offered load measured in wire bits (a sender
     *        asked for "line rate" saturates the link exactly).
     * @param payload UDP payload bytes per datagram (paper: 1472 for
     *        MTU-sized frames; Section 6.3 sweeps up to 4000 — larger
     *        than MTU is modelled as a single oversized frame, the
     *        effect of the NICs' scatter-gather/TSO support).
     */
    UdpStreamSender(sim::EventQueue &eq, NetStack &stack, nic::MacAddr dst,
                    double offered_bps, std::uint32_t payload = 1472,
                    std::uint32_t flow = 0);

    void start();
    void stop();
    void setOfferedBps(double bps);

    std::uint64_t sentBytes() const { return sent_bytes_; }
    std::uint64_t sentPackets() const { return sent_packets_.value(); }

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        v.inv("udp.running", running_ ? 1 : 0);
        v.u64("udp.sent_bytes", sent_bytes_);
        sent_packets_.fluidVisit(v, "udp.sent_packets");
    }

  private:
    void emit();
    void recomputeGap();

    sim::EventQueue &eq_;
    NetStack &stack_;
    nic::MacAddr dst_;
    double offered_bps_;
    std::uint32_t payload_;
    std::uint32_t flow_;
    sim::Time gap_;    ///< inter-datagram spacing at the offered load
    bool running_ = false;
    std::uint64_t sent_bytes_ = 0;
    sim::Counter sent_packets_;
    int fluid_flow_ = -1;    ///< lazy FlowLedger registration
};

/** Fixed-window TCP sender driven by returning cumulative ACKs. */
class TcpStreamSender
{
  public:
    TcpStreamSender(sim::EventQueue &eq, NetStack &stack, nic::MacAddr dst,
                    std::uint32_t window_bytes = 120832,
                    std::uint32_t payload = 1448, std::uint32_t flow = 0);

    void start();
    void stop();

    std::uint64_t sentBytes() const { return next_seq_; }
    std::uint64_t ackedBytes() const { return acked_; }
    std::uint64_t retransmits() const { return retx_.value(); }

    static constexpr sim::Time kRto = sim::Time::ms(50);

    /**
     * Observation tap: when set, each segment's send → cumulative-ACK
     * round-trip is recorded in microseconds. Retransmission rewinds
     * drop the outstanding samples (Karn's rule: a retransmitted
     * segment's ACK is ambiguous). Disabled cost: one branch per
     * segment / ACK.
     */
    void setRttTap(obs::Histogram *h) { rtt_tap_ = h; }
    obs::Histogram *rttTap() const { return rtt_tap_; }

    /**
     * Outstanding RTT samples. Bounded by the window (in segments):
     * entries are reclaimed on ACK arrival, so a flow whose ACKs stop
     * (receiver torn down mid-run) would otherwise grow the tracker
     * for the rest of the run; overflow drops the oldest sample.
     */
    std::size_t rttTrackerDepth() const { return sent_times_.size(); }
    std::size_t rttTrackerCap() const { return window_ / payload_ + 1; }

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        v.inv("tcp.running", running_ ? 1 : 0);
        v.u64("tcp.next_seq", next_seq_);
        v.u64("tcp.acked", acked_);
        v.u64("tcp.acked_at_rto", acked_at_last_rto_);
        v.time("tcp.rto_origin", rto_origin_);
        rto_timer_.fluidVisit(v);
        retx_.fluidVisit(v, "tcp.retx");
        v.inv("tcp.rtt_depth", sent_times_.size());
        for (std::size_t i = 0; i < sent_times_.size(); ++i) {
            v.u64("tcp.rtt_seq", sent_times_[i].first);
            v.time("tcp.rtt_sent", sent_times_[i].second);
        }
    }

  private:
    void pump();
    void onAck(std::uint64_t cum);
    void armRto();
    void onRto();
    sim::Time nextRtoDeadline() const;

    sim::EventQueue &eq_;
    NetStack &stack_;
    nic::MacAddr dst_;
    std::uint32_t window_;
    std::uint32_t payload_;
    std::uint32_t flow_;
    bool running_ = false;
    bool thin_;    ///< deadline-deferred RTO vs per-period event
    std::uint64_t next_seq_ = 0;
    std::uint64_t acked_ = 0;
    std::uint64_t acked_at_last_rto_ = 0;
    sim::Time rto_origin_;    ///< start(); RTO checks sit on its grid
    sim::DeferredTimer rto_timer_;
    sim::Counter retx_;
    obs::Histogram *rtt_tap_ = nullptr;
    sim::RingBuf<std::pair<std::uint64_t, sim::Time>> sent_times_;
    int fluid_flow_ = -1;    ///< lazy FlowLedger registration
};

/** Receiving netperf endpoint; counts goodput, can sample a timeline. */
class StreamReceiver
{
  public:
    enum class Proto { Udp, Tcp };

    StreamReceiver(sim::EventQueue &eq, NetStack &stack, Proto proto);

    std::uint64_t rxBytes() const { return rx_bytes_; }
    std::uint64_t rxPackets() const { return rx_packets_; }

    /** Goodput (bit/s) since the previous call; re-marks the window. */
    double takeThroughputBps();

    /** Record a (time, bps) sample every @p dt into timeline(). */
    void sampleEvery(sim::Time dt);
    void stopSampling() { sample_timer_.disarm(); }
    const sim::Series &timeline() const { return timeline_; }

    /** Fluid-mode state walk (sim/fluid.hpp). timeline_ appends only
     *  at segment boundaries (absolute sample events) — not visited. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        v.u64("rcv.rx_bytes", rx_bytes_);
        v.u64("rcv.rx_packets", rx_packets_);
        window_.fluidVisit(v, "rcv.window");
        sample_window_.fluidVisit(v, "rcv.sample_window");
        sample_timer_.fluidVisit(v);
    }

  private:
    void onBytes(std::uint64_t bytes, std::size_t packets);

    sim::EventQueue &eq_;
    Proto proto_;
    std::uint64_t rx_bytes_ = 0;
    std::uint64_t rx_packets_ = 0;
    sim::RateWindow window_;
    sim::RateWindow sample_window_;
    sim::Series timeline_;
    sim::Time sample_dt_;
    sim::DeferredTimer sample_timer_;
};

} // namespace sriov::guest

#endif // SRIOV_GUEST_NETPERF_HPP
