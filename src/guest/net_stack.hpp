/**
 * @file
 * NetDevice/NetStack: the guest's network interface abstraction and a
 * small UDP/TCP stack above it.
 *
 * NetDevice is what a Linux `netdev` is to the stack: drivers
 * (VfDriver, NetfrontDriver, ...) implement it, and BondingDriver
 * aggregates several of them behind one logical device (paper §4.4).
 *
 * The stack models exactly what the figures need:
 *  - UDP receive: packets land in a bounded socket buffer (`ap_bufs`);
 *    the netperf process drains it in syscall-sized batches on the
 *    VCPU. Overflow between interrupts = the packet loss of Fig. 10.
 *  - TCP receive: in-order byte stream with a cumulative ACK sent per
 *    processed batch — so ACK latency tracks the interrupt-coalescing
 *    interval, reproducing Fig. 9's latency sensitivity.
 *  - TCP send: a fixed-window sender driven by returning ACKs with an
 *    RTO safety net.
 */

#ifndef SRIOV_GUEST_NET_STACK_HPP
#define SRIOV_GUEST_NET_STACK_HPP

#include <functional>
#include <string>
#include <vector>

#include "guest/kernel.hpp"
#include "guest/socket_buffer.hpp"
#include "nic/packet.hpp"
#include "obs/pathtrace.hpp"

namespace sriov::guest {

/** Where a device delivers received frames. */
class NetDevice;

class NetRxSink
{
  public:
    virtual ~NetRxSink() = default;

    /**
     * @p from identifies the delivering device (bonding needs it).
     * The batch is only valid for the duration of the call — drivers
     * reuse the backing storage across interrupts.
     */
    virtual void deviceRx(NetDevice &from,
                          const std::vector<nic::Packet> &pkts) = 0;
};

/** A guest-visible network interface. */
class NetDevice
{
  public:
    virtual ~NetDevice() = default;

    virtual bool transmit(const nic::Packet &pkt) = 0;
    virtual nic::MacAddr mac() const = 0;
    virtual bool linkUp() const = 0;
    virtual const std::string &name() const = 0;

    void setRxSink(NetRxSink *s) { sink_ = s; }
    NetRxSink *rxSink() { return sink_; }

  protected:
    void
    deliverUp(const std::vector<nic::Packet> &pkts)
    {
        if (sink_ && !pkts.empty())
            sink_->deviceRx(*this, pkts);
    }

  private:
    NetRxSink *sink_ = nullptr;
};

class NetStack : public NetRxSink
{
  public:
    explicit NetStack(GuestKernel &kern);

    GuestKernel &kernel() { return kern_; }

    /** Bind the stack to its (possibly bonded) device. */
    void attachDevice(NetDevice &dev);
    NetDevice *device() { return dev_; }

    /** @name Receive-side application hooks. @{ */
    using RxBytesFn = std::function<void(std::uint64_t payload_bytes,
                                         std::size_t packets)>;
    void setUdpReceiver(RxBytesFn fn) { udp_rx_ = std::move(fn); }
    void setTcpReceiver(RxBytesFn fn) { tcp_rx_ = std::move(fn); }
    /** TcpAck frames are passed straight to the sender. */
    using AckFn = std::function<void(std::uint64_t acked_bytes)>;
    void setAckListener(AckFn fn) { ack_ = std::move(fn); }
    /** @} */

    /** @name Transmit-side helpers for applications. @{ */
    bool sendUdp(nic::MacAddr dst, std::uint32_t payload,
                 std::uint32_t flow);
    bool sendTcpSegment(nic::MacAddr dst, std::uint32_t payload,
                        std::uint32_t flow, std::uint64_t end_seq);
    /** @} */

    /** NetRxSink: a driver delivered a batch. */
    void deviceRx(NetDevice &from,
                  const std::vector<nic::Packet> &pkts) override;

    SocketBuffer &udpSocket() { return udp_sock_; }
    SocketBuffer &tcpSocket() { return tcp_sock_; }
    std::uint64_t udpSocketDrops() const { return udp_sock_.drops(); }

    /** Configure the UDP socket buffer (ap_bufs). */
    void setUdpSocketCapacity(std::size_t packets);

    /**
     * Attach the path tracer: this stack becomes a trace-id origin
     * (every frame it sends gets a fresh id, stamped Origin) and a
     * terminal (received frames are stamped GuestRx).
     */
    void
    setPathTracer(obs::PathTracer *pt, std::uint16_t comp)
    {
        pt_ = pt;
        pt_comp_ = comp;
    }

    /** TCP segments consumed (and cumulatively ACKed) per app chunk. */
    static constexpr std::size_t kTcpAckChunk = 16;

    /** Fluid-mode state walk (sim/fluid.hpp): both sockets, the app
     *  wakeup flag, and the TCP reassembly cursor. read_buf_ is
     *  scratch (cleared each wakeup) and deliberately unvisited. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        udp_sock_.fluidVisit(v);
        tcp_sock_.fluidVisit(v);
        v.inv("stack.app_sched", app_scheduled_ ? 1 : 0);
        v.inv("stack.ack_due", tcp_ack_due_ ? 1 : 0);
        v.inv("stack.tcp_peer", tcp_peer_.value);
        v.u64("stack.tcp_cum_rx", tcp_cum_rx_);
        v.u64("stack.trace_seq", trace_seq_);
    }

  private:
    void scheduleApp();
    void appPump();
    void processTcpChunk();
    void sendAck(nic::MacAddr peer);

    /**
     * Fresh trace id: the sender's MAC in the top 24 bits over a local
     * counter, so ids are unique across stacks within a testbed and
     * fully deterministic (no global state, no randomness).
     */
    std::uint64_t
    nextTraceId()
    {
        return ((dev_->mac().value & 0xffffffull) << 40)
            | (++trace_seq_ & 0xffffffffffull);
    }

    GuestKernel &kern_;
    NetDevice *dev_ = nullptr;
    SocketBuffer udp_sock_;
    SocketBuffer tcp_sock_{0, SocketBuffer::kDefaultBytes};
    bool app_scheduled_ = false;
    RxBytesFn udp_rx_;
    RxBytesFn tcp_rx_;
    AckFn ack_;
    std::uint64_t tcp_cum_rx_ = 0;      ///< cumulative TCP bytes received
    nic::MacAddr tcp_peer_{};
    bool tcp_ack_due_ = false;
    /** Scratch for socket reads, reused across app wakeups. */
    std::vector<nic::Packet> read_buf_;
    obs::PathTracer *pt_ = nullptr;
    std::uint16_t pt_comp_ = 0;
    std::uint64_t trace_seq_ = 0;
};

} // namespace sriov::guest

#endif // SRIOV_GUEST_NET_STACK_HPP
