#include "guest/bonding.hpp"

#include <algorithm>

#include "sim/fluid.hpp"
#include "sim/log.hpp"

namespace sriov::guest {

BondingDriver::BondingDriver(std::string name) : name_(std::move(name)) {}

void
BondingDriver::addSlave(NetDevice &dev)
{
    slaves_.push_back(&dev);
    dev.setRxSink(this);
    if (!active_)
        active_ = &dev;
}

void
BondingDriver::removeSlave(NetDevice &dev)
{
    std::erase(slaves_, &dev);
    dev.setRxSink(nullptr);
    if (active_ == &dev) {
        active_ = nullptr;
        failover();
    }
}

void
BondingDriver::setActive(NetDevice &dev)
{
    if (std::find(slaves_.begin(), slaves_.end(), &dev) == slaves_.end())
        sim::fatal("bond %s: %s is not a slave", name_.c_str(),
                   dev.name().c_str());
    if (active_ != &dev) {
        active_ = &dev;
        failovers_.inc();
        sim::fluidTransitionAll(sim::FluidTransition::VmChurn);
    }
}

bool
BondingDriver::failover()
{
    for (NetDevice *s : slaves_) {
        if (s != active_ && s->linkUp()) {
            active_ = s;
            failovers_.inc();
            sim::fluidTransitionAll(sim::FluidTransition::VmChurn);
            return true;
        }
    }
    return active_ != nullptr && active_->linkUp();
}

bool
BondingDriver::transmit(const nic::Packet &pkt)
{
    if (!active_ || !active_->linkUp()) {
        tx_dropped_.inc();
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return false;
    }
    return active_->transmit(pkt);
}

nic::MacAddr
BondingDriver::mac() const
{
    // Active-backup default (fail_over_mac=none): all slaves carry the
    // bond's MAC, reported as the first slave's address.
    return slaves_.empty() ? nic::MacAddr{} : slaves_.front()->mac();
}

bool
BondingDriver::linkUp() const
{
    return active_ != nullptr && active_->linkUp();
}

void
BondingDriver::deviceRx(NetDevice &from, const std::vector<nic::Packet> &pkts)
{
    if (&from != active_) {
        inactive_rx_dropped_.inc(pkts.size());
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return;
    }
    deliverUp(pkts);
}

} // namespace sriov::guest
