#include "guest/kernel.hpp"

#include "sim/log.hpp"

namespace sriov::guest {

GuestKernel::GuestKernel(vmm::Hypervisor &hv, vmm::Domain &dom,
                         KernelVersion kv)
    : hv_(hv), dom_(dom), kv_(kv)
{
}

void
GuestKernel::attachDeviceIrq(pci::PciFunction &fn, IrqClient &client,
                             unsigned msix_entry)
{
    std::size_t idx = irq_slots_.size();
    for (std::size_t i = 0; i < irq_slots_.size(); ++i) {
        IrqSlot &s = irq_slots_[i];
        if (s.used && s.fn == &fn && s.msix_entry == msix_entry)
            sim::fatal("IRQ for %s entry %u already attached",
                       fn.name().c_str(), msix_entry);
        if (!s.used && idx == irq_slots_.size())
            idx = i;
    }
    if (idx == irq_slots_.size())
        irq_slots_.emplace_back();
    IrqSlot &s = irq_slots_[idx];
    s.fn = &fn;
    s.msix_entry = msix_entry;
    s.client = &client;
    s.used = true;
    std::uint32_t gen = s.gen;
    s.handle = hv_.bindDeviceIrq(
        dom_, fn, vcpu0(),
        [this, idx, gen]() { handleIrqFor(idx, gen); }, msix_entry);
}

void
GuestKernel::detachDeviceIrq(pci::PciFunction &fn, unsigned msix_entry)
{
    for (IrqSlot &s : irq_slots_) {
        if (s.used && s.fn == &fn && s.msix_entry == msix_entry) {
            hv_.unbindDeviceIrq(fn, msix_entry);
            s.used = false;
            // Invalidate bound handlers and in-flight retry events.
            ++s.gen;
            return;
        }
    }
}

GuestKernel::VirtualIrq
GuestKernel::attachVirtualIrq(IrqClient &client)
{
    VirtIrqState st;
    st.client = &client;
    unsigned id = unsigned(virt_irqs_.size());
    if (dom_.isHvm()) {
        // PV-on-HVM: the event ultimately arrives as a LAPIC vector.
        static constexpr intr::Vector kPvHvmBase = 0xe0;
        st.virt_vec = intr::Vector(kPvHvmBase + (id & 0x0f));
        vcpu0().bindVirtualVector(st.virt_vec,
                                  [this, id]() { handleVirtualIrq(id); });
    } else {
        st.port = dom_.evtchn().bind(
            [this, id](intr::EventChannelBank::Port) {
                handleVirtualIrq(id);
            });
    }
    virt_irqs_.push_back(st);
    return VirtualIrq{id};
}

void
GuestKernel::raiseVirtualIrq(VirtualIrq irq, sim::CpuServer &notifier_cpu)
{
    VirtIrqState &st = virt_irqs_.at(irq.id);
    const auto &cm = hv_.costs();
    notifier_cpu.charge(cm.evtchn_send, "xen");
    if (dom_.isHvm()) {
        notifier_cpu.charge(cm.evtchn_hvm_conversion, "xen");
        vcpu0().vlapic().inject(st.virt_vec);
    } else {
        dom_.evtchn().send(st.port);
    }
}

void
GuestKernel::handleIrqFor(std::size_t slot, std::uint32_t gen)
{
    // Re-validate on every (re)entry: the device may have been hot
    // removed (generation bumped) while a retry was pending.
    if (slot >= irq_slots_.size())
        return;
    IrqSlot &st = irq_slots_[slot];
    if (!st.used || st.gen != gen)
        return;

    if (dom_.paused()) {
        // The VCPU is not running (stop-and-copy); retry after resume.
        hv_.eq().scheduleIn(sim::Time::ms(10), [this, slot, gen]() {
            handleIrqFor(slot, gen);
        });
        return;
    }
    bool hvm = dom_.isHvm();
    bool mask_msi = hvm && kv_ == KernelVersion::v2_6_18;
    runIrqWork(st.client, hvm, mask_msi, dom_.isPv(), st.handle.port);
}

void
GuestKernel::handleVirtualIrq(unsigned id)
{
    if (id >= virt_irqs_.size())
        return;
    VirtIrqState &st = virt_irqs_[id];
    if (dom_.paused()) {
        hv_.eq().scheduleIn(sim::Time::ms(10),
                            [this, id]() { handleVirtualIrq(id); });
        return;
    }
    // PV event sources never mask the (virtual) MSI; HVM conversions
    // still owe the LAPIC an EOI.
    runIrqWork(st.client, dom_.isHvm(), false, !dom_.isHvm(), st.port);
}

void
GuestKernel::runIrqWork(IrqClient *client, bool do_eoi, bool mask_msi,
                        bool pv_port, intr::EventChannelBank::Port port)
{
    irqs_.inc();
    vmm::Vcpu &vcpu = vcpu0();

    if (mask_msi)
        hv_.guestMsiMaskWrite(dom_, vcpu, true);
    if (pv_port)
        dom_.evtchn().mask(port);

    double cycles = hv_.costs().guest_irq_entry + client->irqTop();
    vcpu.submitGuestWork(cycles, [this, client, &vcpu, do_eoi, mask_msi,
                                  pv_port, port]() {
        client->irqBottom();
        if (do_eoi) {
            hv_.guestApicNoise(vcpu, hv_.costs().apic_other_per_irq);
            hv_.guestEoi(vcpu);
            if (mask_msi)
                hv_.guestMsiMaskWrite(dom_, vcpu, false);
        }
        if (pv_port)
            hv_.guestEvtchnUnmask(vcpu, port);
    });
}

} // namespace sriov::guest
