#include "guest/net_stack.hpp"

#include <cmath>

#include "sim/log.hpp"

namespace sriov::guest {

NetStack::NetStack(GuestKernel &kern) : kern_(kern) {}

void
NetStack::attachDevice(NetDevice &dev)
{
    dev_ = &dev;
    dev.setRxSink(this);
}

void
NetStack::setUdpSocketCapacity(std::size_t packets)
{
    udp_sock_ = SocketBuffer(packets, 0);
}

bool
NetStack::sendUdp(nic::MacAddr dst, std::uint32_t payload,
                  std::uint32_t flow)
{
    if (!dev_ || !dev_->linkUp())
        return false;
    nic::Packet pkt;
    pkt.dst = dst;
    pkt.src = dev_->mac();
    pkt.bytes = nic::frame::udpFrame(payload);
    pkt.kind = nic::Packet::Kind::Udp;
    pkt.flow = flow;
    pkt.sent_at = kern_.hv().eq().now();
    pkt.trace_id = nextTraceId();
    if (pt_)
        pt_->record(pt_comp_, obs::PathStage::Origin, pkt.trace_id,
                    pkt.sent_at);
    kern_.chargeTx(kern_.hv().costs().guest_tx_per_packet);
    return dev_->transmit(pkt);
}

bool
NetStack::sendTcpSegment(nic::MacAddr dst, std::uint32_t payload,
                         std::uint32_t flow, std::uint64_t end_seq)
{
    if (!dev_ || !dev_->linkUp())
        return false;
    nic::Packet pkt;
    pkt.dst = dst;
    pkt.src = dev_->mac();
    pkt.bytes = nic::frame::tcpFrame(payload);
    pkt.kind = nic::Packet::Kind::Tcp;
    pkt.flow = flow;
    pkt.seq = end_seq;
    pkt.sent_at = kern_.hv().eq().now();
    pkt.trace_id = nextTraceId();
    if (pt_)
        pt_->record(pt_comp_, obs::PathStage::Origin, pkt.trace_id,
                    pkt.sent_at);
    kern_.chargeTx(kern_.hv().costs().guest_tx_per_packet);
    return dev_->transmit(pkt);
}

void
NetStack::deviceRx(NetDevice &, const std::vector<nic::Packet> &pkts)
{
    bool need_app = false;
    if (pt_) {
        const sim::Time now = kern_.hv().eq().now();
        for (const auto &pkt : pkts)
            pt_->record(pt_comp_, obs::PathStage::GuestRx, pkt.trace_id,
                        now);
    }
    for (const auto &pkt : pkts) {
        switch (pkt.kind) {
          case nic::Packet::Kind::Udp:
            udp_sock_.push(pkt);    // drop counted inside on overflow
            need_app = true;
            break;
          case nic::Packet::Kind::Tcp:
            tcp_peer_ = pkt.src;
            if (tcp_sock_.push(pkt))
                need_app = true;
            break;
          case nic::Packet::Kind::TcpAck:
            // ACK processing happens in softirq context; the sender's
            // window logic reacts immediately.
            if (ack_)
                ack_(pkt.ack);
            break;
          case nic::Packet::Kind::Control:
            break;
        }
    }
    if (need_app)
        scheduleApp();
}

void
NetStack::scheduleApp()
{
    if (app_scheduled_)
        return;
    app_scheduled_ = true;
    const auto &cm = kern_.hv().costs();
    // The netperf process wakes, then issues receive syscalls until
    // the sockets are drained; work serializes on the guest VCPU.
    kern_.vcpu0().submitGuestWork(cm.app_wakeup,
                                  [this]() { appPump(); });
}

void
NetStack::appPump()
{
    const auto &cm = kern_.hv().costs();

    // UDP: datagrams are consumed in one read burst.
    udp_sock_.drainInto(read_buf_);
    if (!read_buf_.empty()) {
        kern_.accountRecvSyscalls(
            std::ceil(double(read_buf_.size()) / cm.packets_per_syscall));
        if (udp_rx_) {
            std::uint64_t bytes = 0;
            for (const auto &p : read_buf_)
                bytes += p.payloadBytes();
            udp_rx_(bytes, read_buf_.size());
        }
    }
    processTcpChunk();
}

void
NetStack::processTcpChunk()
{
    // TCP: the stream is consumed in syscall-sized chunks, each
    // followed by a cumulative ACK, so the sender's window refills
    // while the rest of the batch is still being processed (real
    // stacks ACK incrementally during NAPI/app processing; a single
    // end-of-batch ACK would stall the pipe by a whole interrupt
    // interval).
    if (tcp_sock_.empty()) {
        app_scheduled_ = false;
        return;
    }
    const auto &cm = kern_.hv().costs();
    tcp_sock_.popInto(kTcpAckChunk, read_buf_);
    std::uint64_t bytes = 0;
    for (const auto &p : read_buf_)
        bytes += p.payloadBytes();
    double syscalls =
        std::ceil(double(read_buf_.size()) / cm.packets_per_syscall);
    // The PVM page-table-switch surcharge is accounted immediately;
    // the syscall bodies serialize as guest work before the ACK.
    kern_.accountRecvSyscallTransitions(syscalls);
    std::size_t n = read_buf_.size();
    kern_.vcpu0().submitGuestWork(
        syscalls * cm.guest_syscall, [this, bytes, n]() {
            tcp_cum_rx_ += bytes;
            if (tcp_rx_)
                tcp_rx_(bytes, n);
            sendAck(tcp_peer_);
            processTcpChunk();
        });
}

void
NetStack::sendAck(nic::MacAddr peer)
{
    if (!dev_ || !dev_->linkUp())
        return;
    nic::Packet ack;
    ack.dst = peer;
    ack.src = dev_->mac();
    ack.bytes = 64;    // minimum frame
    ack.kind = nic::Packet::Kind::TcpAck;
    ack.ack = tcp_cum_rx_;
    ack.sent_at = kern_.hv().eq().now();
    ack.trace_id = nextTraceId();
    if (pt_)
        pt_->record(pt_comp_, obs::PathStage::Origin, ack.trace_id,
                    ack.sent_at);
    kern_.chargeTx(kern_.hv().costs().guest_tx_per_packet);
    dev_->transmit(ack);
}

} // namespace sriov::guest
