/**
 * @file
 * GuestKernel: the Linux-like OS personality of a domain.
 *
 * Centralizes the interrupt-handling protocol around device drivers,
 * because that protocol is where the paper's results come from:
 *
 *  - KernelVersion::v2_6_18 (RHEL5U1) masks the MSI at the start of
 *    every interrupt and unmasks at the end — each a trapped register
 *    write (Section 5.1). v2_6_28 dropped the runtime mask/unmask.
 *  - HVM kernels EOI the virtual LAPIC (plus assorted other APIC
 *    traffic); PV kernels mask/unmask event-channel ports instead.
 *
 * Drivers implement IrqClient: irqTop() runs at delivery and returns
 * the cycles of guest work the batch needs; irqBottom() runs when that
 * work completes (deliver to sockets, refill rings, retune ITR).
 */

#ifndef SRIOV_GUEST_KERNEL_HPP
#define SRIOV_GUEST_KERNEL_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "vmm/hypervisor.hpp"

namespace sriov::guest {

enum class KernelVersion
{
    v2_6_18,    ///< RHEL5U1: runtime MSI mask/unmask
    v2_6_28,    ///< no runtime mask/unmask, tickless idle
};

class GuestKernel
{
  public:
    class IrqClient
    {
      public:
        virtual ~IrqClient() = default;

        /** Top half: drain the device; return guest cycles needed. */
        virtual double irqTop() = 0;
        /** Bottom half: runs after the work is charged/serialized. */
        virtual void irqBottom() = 0;
    };

    GuestKernel(vmm::Hypervisor &hv, vmm::Domain &dom,
                KernelVersion kv = KernelVersion::v2_6_28);

    vmm::Hypervisor &hv() { return hv_; }
    vmm::Domain &domain() { return dom_; }
    vmm::Vcpu &vcpu0() { return dom_.vcpu(0); }
    KernelVersion version() const { return kv_; }

    /**
     * Bind @p fn's interrupt (MSI-X entry @p msix_entry) to @p client
     * with the full kernel protocol (mask/EOI/unmask per domain type
     * and kernel version).
     */
    void attachDeviceIrq(pci::PciFunction &fn, IrqClient &client,
                         unsigned msix_entry = 0);
    void detachDeviceIrq(pci::PciFunction &fn, unsigned msix_entry = 0);

    /**
     * A paravirtual interrupt source with no PCI function behind it
     * (netfront's event channel). In a PV domain the upcall is the
     * cheap event-channel path; in an HVM domain it is additionally
     * converted into a virtual LAPIC interrupt with the full EOI
     * protocol (PV-on-HVM, paper Section 6.5).
     */
    struct VirtualIrq
    {
        unsigned id = 0;
    };
    VirtualIrq attachVirtualIrq(IrqClient &client);

    /**
     * Raise a virtual IRQ from outside the domain (backend notify).
     * @p notifier_cpu is charged the hypervisor-side delivery cost.
     */
    void raiseVirtualIrq(VirtualIrq irq, sim::CpuServer &notifier_cpu);

    /** Allocate guest memory backed by machine memory. */
    mem::Addr allocBuffer(mem::Addr bytes)
    {
        return hv_.allocGuestBuffer(dom_, bytes);
    }

    /** Charge transmit-path cycles in guest context. */
    void chargeTx(double cycles) { vcpu0().chargeGuest(cycles); }

    /** Account @p n receive syscalls (PVM pays the pt switch). */
    void accountRecvSyscalls(double n)
    {
        hv_.chargeGuestSyscalls(vcpu0(), n);
    }

    /** Syscall surcharge only; the caller serializes the bodies. */
    void accountRecvSyscallTransitions(double n)
    {
        hv_.chargeGuestSyscalls(vcpu0(), n, /*include_guest_cycles=*/false);
    }

    std::uint64_t irqsHandled() const { return irqs_.value(); }

    /** Fluid-mode state walk (sim/fluid.hpp). IRQ slot bindings are
     *  control-plane state; their generations pin the topology. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        irqs_.fluidVisit(v, "kern.irqs");
        v.inv("kern.slots", irq_slots_.size());
        for (const IrqSlot &s : irq_slots_)
            v.inv("kern.slot_gen",
                  std::uint64_t(s.gen) | std::uint64_t(s.used) << 32);
        v.inv("kern.virt_irqs", virt_irqs_.size());
    }

  private:
    /**
     * One bound device IRQ. Dispatch is dense: the bound handler
     * captures the slot index plus a generation, and every delivery
     * (including a paused-domain retry event still in flight) is an
     * array index + generation compare — stale after detach — instead
     * of the old per-delivery std::map walk keyed on (function, entry).
     * Attach/detach are control-path rare and scan linearly.
     */
    struct IrqSlot
    {
        pci::PciFunction *fn = nullptr;
        unsigned msix_entry = 0;
        IrqClient *client = nullptr;
        vmm::Hypervisor::GuestIrqHandle handle;
        std::uint32_t gen = 0;
        bool used = false;
    };

    struct VirtIrqState
    {
        IrqClient *client = nullptr;
        intr::EventChannelBank::Port port = 0;
        intr::Vector virt_vec = 0;    // HVM conversion vector
    };

    void handleIrqFor(std::size_t slot, std::uint32_t gen);
    void handleVirtualIrq(unsigned id);
    void runIrqWork(IrqClient *client, bool do_eoi, bool mask_msi,
                    bool pv_port, intr::EventChannelBank::Port port);

    vmm::Hypervisor &hv_;
    vmm::Domain &dom_;
    KernelVersion kv_;
    std::vector<IrqSlot> irq_slots_;
    std::vector<VirtIrqState> virt_irqs_;
    sim::Counter irqs_;
};

} // namespace sriov::guest

#endif // SRIOV_GUEST_KERNEL_HPP
