#include "guest/netperf.hpp"

#include <algorithm>
#include <string>

#include "sim/fluid.hpp"
#include "sim/log.hpp"
#include "sim/thinning.hpp"

namespace sriov::guest {

UdpStreamSender::UdpStreamSender(sim::EventQueue &eq, NetStack &stack,
                                 nic::MacAddr dst, double offered_bps,
                                 std::uint32_t payload, std::uint32_t flow)
    : eq_(eq), stack_(stack), dst_(dst), offered_bps_(offered_bps),
      payload_(payload), flow_(flow)
{
    if (offered_bps <= 0)
        sim::fatal("UdpStreamSender: non-positive offered load");
    recomputeGap();
}

void
UdpStreamSender::recomputeGap()
{
    nic::Packet probe;
    probe.bytes = nic::frame::udpFrame(payload_);
    double wire_bits = double(probe.wireBytes()) * 8.0;
    gap_ = sim::Time::transfer(wire_bits, offered_bps_);
}

void
UdpStreamSender::start()
{
    if (running_)
        return;
    running_ = true;
    emit();
}

// simlint: fluid-settle
void
UdpStreamSender::stop()
{
    running_ = false;
    if (sim::FlowLedger *l = sim::fluidLedger();
        l != nullptr && fluid_flow_ >= 0) {
        l->transition(unsigned(fluid_flow_),
                      sim::FluidTransition::RateChange);
        l->endFlow(unsigned(fluid_flow_));
    }
}

// simlint: fluid-settle
void
UdpStreamSender::setOfferedBps(double bps)
{
    offered_bps_ = bps;
    recomputeGap();
    if (sim::FlowLedger *l = sim::fluidLedger();
        l != nullptr && fluid_flow_ >= 0)
        l->transition(unsigned(fluid_flow_),
                      sim::FluidTransition::RateChange);
}

// simlint: fluid-settle
void
UdpStreamSender::emit()
{
    if (!running_)
        return;
    stack_.sendUdp(dst_, payload_, flow_);
    sent_bytes_ += payload_;
    sent_packets_.inc();
    if (sim::FlowLedger *l = sim::fluidLedger()) {
        // Lazy registration: the ledger is installed by the fluid
        // director after testbed construction, so the first send a
        // ledger observes claims the flow id.
        if (fluid_flow_ < 0)
            fluid_flow_ =
                int(l->addFlow("udp-" + std::to_string(flow_)));
        l->onSend(unsigned(fluid_flow_), eq_.now());
    }
    eq_.scheduleIn(gap_, [this]() { emit(); }, "netperf.emit");
}

TcpStreamSender::TcpStreamSender(sim::EventQueue &eq, NetStack &stack,
                                 nic::MacAddr dst,
                                 std::uint32_t window_bytes,
                                 std::uint32_t payload, std::uint32_t flow)
    : eq_(eq), stack_(stack), dst_(dst), window_(window_bytes),
      payload_(payload), flow_(flow), thin_(sim::thinningEnabled()),
      rto_timer_(eq, "netperf.rto")
{
    stack_.setAckListener([this](std::uint64_t cum) { onAck(cum); });
    rto_timer_.setCallback([this]() { onRto(); });
}

void
TcpStreamSender::start()
{
    if (running_)
        return;
    running_ = true;
    rto_origin_ = eq_.now();
    pump();
    armRto();
}

// simlint: fluid-settle
void
TcpStreamSender::stop()
{
    running_ = false;
    rto_timer_.disarm();
    if (sim::FlowLedger *l = sim::fluidLedger();
        l != nullptr && fluid_flow_ >= 0) {
        l->transition(unsigned(fluid_flow_),
                      sim::FluidTransition::RateChange);
        l->endFlow(unsigned(fluid_flow_));
    }
}

/** First grid point origin + k*kRto strictly after now. */
sim::Time
TcpStreamSender::nextRtoDeadline() const
{
    std::int64_t elapsed = (eq_.now() - rto_origin_).picos();
    std::int64_t period = kRto.picos();
    std::int64_t k = elapsed / period + 1;
    return rto_origin_ + kRto * k;
}

void
TcpStreamSender::armRto()
{
    if (!running_)
        return;
    if (thin_) {
        // Deadline-deferred: the timer only runs while data is
        // outstanding. Skipped grid points are no-ops in the exact
        // model too — with nothing in flight no ACK can arrive, so
        // acked_ (and hence acked_at_last_rto_) cannot change.
        if (next_seq_ > acked_ && !rto_timer_.armed()) {
            acked_at_last_rto_ = acked_;
            rto_timer_.armAt(nextRtoDeadline());
        }
        return;
    }
    eq_.scheduleIn(kRto, [this]() {
        if (!running_)
            return;
        onRto();
        armRto();
    }, "netperf.rto");
}

// simlint: fluid-settle
void
TcpStreamSender::onRto()
{
    bool outstanding = next_seq_ > acked_;
    bool stalled = acked_ == acked_at_last_rto_;
    if (outstanding && stalled) {
        // Go-back-N: rewind to the last acknowledged byte. The
        // rewound bytes will be re-sent, so their pending RTT
        // samples are ambiguous (Karn) — drop them.
        if (sim::FlowLedger *l = sim::fluidLedger();
            l != nullptr && fluid_flow_ >= 0)
            l->transition(unsigned(fluid_flow_),
                          sim::FluidTransition::Rto);
        retx_.inc();
        next_seq_ = acked_;
        sent_times_.clear();
        pump();
    }
    acked_at_last_rto_ = acked_;
    if (thin_ && running_ && next_seq_ > acked_)
        rto_timer_.armAt(nextRtoDeadline());
}

// simlint: fluid-settle
void
TcpStreamSender::pump()
{
    if (!running_)
        return;
    while (next_seq_ - acked_ + payload_ <= window_) {
        next_seq_ += payload_;
        if (!stack_.sendTcpSegment(dst_, payload_, flow_, next_seq_)) {
            next_seq_ -= payload_;
            break;
        }
        if (sim::FlowLedger *l = sim::fluidLedger()) {
            if (fluid_flow_ < 0)
                fluid_flow_ =
                    int(l->addFlow("tcp-" + std::to_string(flow_)));
            l->onSend(unsigned(fluid_flow_), eq_.now());
        }
        if (rtt_tap_ != nullptr) {
            // Bound the tracker at the window: a stalled flow stops
            // reclaiming entries, so shed the oldest sample instead of
            // growing for the rest of the run.
            if (sent_times_.size() >= rttTrackerCap())
                sent_times_.pop_front();
            sent_times_.emplace_back(next_seq_, eq_.now());
        }
    }
    if (thin_)
        armRto();    // re-arm after going idle (no-op when armed)
}

void
TcpStreamSender::onAck(std::uint64_t cum)
{
    acked_ = std::max(acked_, cum);
    if (rtt_tap_ != nullptr) {
        while (!sent_times_.empty() && sent_times_.front().first <= cum) {
            sim::Time rtt = eq_.now() - sent_times_.front().second;
            rtt_tap_->record(rtt.toSeconds() * 1e6);
            sent_times_.pop_front();
        }
    }
    pump();
}

StreamReceiver::StreamReceiver(sim::EventQueue &eq, NetStack &stack,
                               Proto proto)
    : eq_(eq), proto_(proto), sample_timer_(eq, "netperf.sample")
{
    auto fn = [this](std::uint64_t bytes, std::size_t pkts) {
        onBytes(bytes, pkts);
    };
    if (proto == Proto::Udp)
        stack.setUdpReceiver(fn);
    else
        stack.setTcpReceiver(fn);
    sample_timer_.setCallback([this]() {
        timeline_.record(eq_.now(), sample_window_.take(eq_.now()));
        sample_timer_.armIn(sample_dt_);
    });
}

void
StreamReceiver::onBytes(std::uint64_t bytes, std::size_t packets)
{
    rx_bytes_ += bytes;
    rx_packets_ += packets;
    window_.add(double(bytes) * 8.0);
    sample_window_.add(double(bytes) * 8.0);
}

double
StreamReceiver::takeThroughputBps()
{
    return window_.take(eq_.now());
}

void
StreamReceiver::sampleEvery(sim::Time dt)
{
    sample_dt_ = dt;
    sample_window_.take(eq_.now());
    sample_timer_.armIn(dt);
}

} // namespace sriov::guest
