#include "guest/socket_buffer.hpp"

#include "sim/fluid.hpp"

namespace sriov::guest {

bool
SocketBuffer::push(const nic::Packet &pkt)
{
    bool over_pkts = cap_packets_ && q_.size() >= cap_packets_;
    bool over_bytes =
        cap_bytes_ && bytes_ + pkt.payloadBytes() > cap_bytes_;
    if (over_pkts || over_bytes) {
        drops_.inc();
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return false;
    }
    q_.push_back(pkt);
    bytes_ += pkt.payloadBytes();
    return true;
}

std::vector<nic::Packet>
SocketBuffer::pop(std::size_t n)
{
    std::vector<nic::Packet> out;
    popInto(n, out);
    return out;
}

std::vector<nic::Packet>
SocketBuffer::drain()
{
    return pop(q_.size());
}

void
SocketBuffer::popInto(std::size_t n, std::vector<nic::Packet> &out)
{
    out.clear();
    out.reserve(n < q_.size() ? n : q_.size());
    while (n-- > 0 && !q_.empty()) {
        bytes_ -= q_.front().payloadBytes();
        out.push_back(q_.front());
        q_.pop_front();
        delivered_.inc();
    }
}

} // namespace sriov::guest
