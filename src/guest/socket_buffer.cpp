#include "guest/socket_buffer.hpp"

namespace sriov::guest {

bool
SocketBuffer::push(const nic::Packet &pkt)
{
    bool over_pkts = cap_packets_ && q_.size() >= cap_packets_;
    bool over_bytes =
        cap_bytes_ && bytes_ + pkt.payloadBytes() > cap_bytes_;
    if (over_pkts || over_bytes) {
        drops_.inc();
        return false;
    }
    q_.push_back(pkt);
    bytes_ += pkt.payloadBytes();
    return true;
}

std::vector<nic::Packet>
SocketBuffer::pop(std::size_t n)
{
    std::vector<nic::Packet> out;
    while (n-- > 0 && !q_.empty()) {
        out.push_back(q_.front());
        bytes_ -= q_.front().payloadBytes();
        q_.pop_front();
        delivered_.inc();
    }
    return out;
}

std::vector<nic::Packet>
SocketBuffer::drain()
{
    return pop(q_.size());
}

} // namespace sriov::guest
