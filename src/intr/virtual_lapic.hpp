/**
 * @file
 * VirtualLapic: the software-emulated LAPIC of an HVM guest.
 *
 * Wraps a Lapic with the access-path bookkeeping the paper measures:
 * every guest access to the APIC register page causes an APIC-access
 * VM-exit, whose emulation path is either the slow
 * fetch-decode-emulate route or — for EOI writes when the paper's
 * Section 5.2 acceleration is on — a direct dispatch using the
 * hardware Exit-qualification (offset + direction). The VM-exit cycle
 * charging itself is done by the hypervisor through the exit hook.
 */

#ifndef SRIOV_INTR_VIRTUAL_LAPIC_HPP
#define SRIOV_INTR_VIRTUAL_LAPIC_HPP

#include <functional>

#include "intr/lapic.hpp"

namespace sriov::intr {

class VirtualLapic
{
  public:
    /** Why an APIC-access exit happened. */
    struct ApicAccessExit
    {
        std::uint16_t offset;   ///< register offset (Exit-qualification)
        bool is_write;
    };

    /** Installed by the hypervisor to charge emulation cycles. */
    using ExitHook = std::function<void(const ApicAccessExit &)>;

    VirtualLapic() = default;

    Lapic &chip() { return lapic_; }
    const Lapic &chip() const { return lapic_; }

    void setExitHook(ExitHook h) { exit_hook_ = std::move(h); }

    /** VMM side: inject a virtual interrupt into the guest chip. */
    void inject(Vector v) { lapic_.accept(v); }

    /**
     * Guest side: write the EOI register. Triggers the APIC-access
     * exit hook, then performs the (value-independent) EOI emulation.
     */
    void guestEoiWrite();

    /** Guest side: any other APIC register access (TPR, ICR, ...). */
    void guestApicAccess(std::uint16_t offset, bool is_write);

    std::uint64_t apicAccessExits() const { return exits_.value(); }
    std::uint64_t eoiWrites() const { return eoi_writes_.value(); }

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        lapic_.fluidVisit(v);
        exits_.fluidVisit(v, "vlapic.exits");
        eoi_writes_.fluidVisit(v, "vlapic.eoi_writes");
    }

  private:
    Lapic lapic_;
    ExitHook exit_hook_;
    sim::Counter exits_;
    sim::Counter eoi_writes_;
};

} // namespace sriov::intr

#endif // SRIOV_INTR_VIRTUAL_LAPIC_HPP
