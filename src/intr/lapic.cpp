#include "intr/lapic.hpp"

namespace sriov::intr {

namespace {
/** x86 priority class: vector >> 4. */
int
prioClass(Vector v)
{
    return v >> 4;
}
} // namespace

void
Lapic::accept(Vector v)
{
    accepted_.inc();
    irr_[v] = true;
    tryDispatch();
}

std::optional<Vector>
Lapic::highestInService() const
{
    for (int v = 255; v >= 0; --v) {
        if (isr_[std::size_t(v)])
            return Vector(v);
    }
    return std::nullopt;
}

std::optional<Vector>
Lapic::nextDeliverable() const
{
    int in_service_class = -1;
    if (auto h = highestInService())
        in_service_class = prioClass(*h);
    for (int v = 255; v >= 0; --v) {
        if (irr_[std::size_t(v)]) {
            if (prioClass(Vector(v)) > in_service_class)
                return Vector(v);
            return std::nullopt;
        }
    }
    return std::nullopt;
}

void
Lapic::tryDispatch()
{
    auto v = nextDeliverable();
    if (!v)
        return;
    irr_[*v] = false;
    isr_[*v] = true;
    delivered_.inc();
    if (deliver_)
        deliver_(*v);
}

void
Lapic::eoi()
{
    eois_.inc();
    if (auto h = highestInService())
        isr_[*h] = false;
    else
        spurious_eois_.inc();
    tryDispatch();
}

} // namespace sriov::intr
