#include "intr/lapic.hpp"

#include <bit>

namespace sriov::intr {

namespace {
/** x86 priority class: vector >> 4. */
int
prioClass(Vector v)
{
    return v >> 4;
}
} // namespace

int
Lapic::highestBit(const Reg &r)
{
    for (int i = 3; i >= 0; --i) {
        if (r[i])
            return i * 64 + 63 - std::countl_zero(r[i]);
    }
    return -1;
}

// simlint: hot
void
Lapic::accept(Vector v)
{
    accepted_.inc();
    setBit(irr_, v);
    tryDispatch();
}

std::optional<Vector>
Lapic::highestInService() const
{
    int v = highestBit(isr_);
    if (v < 0)
        return std::nullopt;
    return Vector(v);
}

std::optional<Vector>
Lapic::nextDeliverable() const
{
    int v = highestBit(irr_);
    if (v < 0)
        return std::nullopt;
    int in_service_class = -1;
    if (int h = highestBit(isr_); h >= 0)
        in_service_class = prioClass(Vector(h));
    if (prioClass(Vector(v)) > in_service_class)
        return Vector(v);
    return std::nullopt;
}

// simlint: hot
void
Lapic::tryDispatch()
{
    auto v = nextDeliverable();
    if (!v)
        return;
    clearBit(irr_, *v);
    setBit(isr_, *v);
    delivered_.inc();
    if (deliver_)
        deliver_(*v);
}

// simlint: hot
void
Lapic::eoi()
{
    eois_.inc();
    if (auto h = highestInService())
        clearBit(isr_, *h);
    else
        spurious_eois_.inc();
    tryDispatch();
}

} // namespace sriov::intr
