#include "intr/event_channel.hpp"

#include "sim/log.hpp"

namespace sriov::intr {

EventChannelBank::Port
EventChannelBank::bind(UpcallFn upcall)
{
    for (Port p = 0; p < ports_.size(); ++p) {
        if (!ports_[p].in_use) {
            ports_[p] = PortState{true, false, false, std::move(upcall)};
            return p;
        }
    }
    if (ports_.size() >= kMaxPorts)
        sim::fatal("event channel ports exhausted");
    ports_.push_back(PortState{true, false, false, std::move(upcall)});
    return Port(ports_.size() - 1);
}

void
EventChannelBank::unbind(Port p)
{
    ports_.at(p) = PortState{};
}

void
EventChannelBank::send(Port p)
{
    auto &st = ports_.at(p);
    if (!st.in_use)
        sim::panic("send on unbound event channel %u", p);
    sends_.inc();
    st.pending = true;
    if (!st.masked)
        deliver(p);
}

void
EventChannelBank::deliver(Port p)
{
    auto &st = ports_.at(p);
    if (!st.pending)
        return;
    st.pending = false;
    upcalls_.inc();
    if (st.upcall)
        st.upcall(p);
}

void
EventChannelBank::mask(Port p)
{
    ports_.at(p).masked = true;
}

void
EventChannelBank::unmask(Port p)
{
    auto &st = ports_.at(p);
    st.masked = false;
    deliver(p);
}

} // namespace sriov::intr
