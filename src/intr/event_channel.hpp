/**
 * @file
 * Xen-style event channels: the paravirtualized interrupt controller.
 *
 * A PVM guest receives notifications as bits in a shared pending
 * bitmap plus an upcall; masking is a bitmap write and unmasking a
 * cheap hypercall — no LAPIC emulation, no EOI. This is why PVM guests
 * cost 1.76% CPU per additional VM where HVM guests cost 2.8%
 * (paper Section 6.4).
 */

#ifndef SRIOV_INTR_EVENT_CHANNEL_HPP
#define SRIOV_INTR_EVENT_CHANNEL_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/stats.hpp"

namespace sriov::intr {

class EventChannelBank
{
  public:
    using Port = unsigned;
    using UpcallFn = std::function<void(Port)>;

    static constexpr Port kMaxPorts = 1024;

    /** Allocate a port; the upcall runs on delivery while unmasked. */
    Port bind(UpcallFn upcall);
    void unbind(Port p);

    /** Sender side (device/backend/hypervisor): raise the event. */
    void send(Port p);

    /** Guest side. */
    void mask(Port p);
    /** Unmask; delivers immediately if the port was pending. */
    void unmask(Port p);

    bool pending(Port p) const { return ports_.at(p).pending; }
    bool masked(Port p) const { return ports_.at(p).masked; }

    const sim::Counter &sends() const { return sends_; }
    const sim::Counter &upcalls() const { return upcalls_; }

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        sends_.fluidVisit(v, "evtchn.sends");
        upcalls_.fluidVisit(v, "evtchn.upcalls");
        v.inv("evtchn.ports", ports_.size());
        for (PortState &p : ports_) {
            v.inv("evtchn.flags", std::uint64_t(p.in_use)
                                      | std::uint64_t(p.pending) << 1
                                      | std::uint64_t(p.masked) << 2);
        }
    }

  private:
    struct PortState
    {
        bool in_use = false;
        bool pending = false;
        bool masked = false;
        UpcallFn upcall;
    };

    void deliver(Port p);

    std::vector<PortState> ports_;
    sim::Counter sends_;
    sim::Counter upcalls_;
};

} // namespace sriov::intr

#endif // SRIOV_INTR_EVENT_CHANNEL_HPP
