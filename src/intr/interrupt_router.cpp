#include "intr/interrupt_router.hpp"

#include "sim/log.hpp"

namespace sriov::intr {

InterruptRouter::InterruptRouter()
    : handlers_(std::size_t(VectorAllocator::kLast) + 1)
{
}

void
InterruptRouter::attachFunction(pci::PciFunction &fn)
{
    fn.setMsiSink([this](pci::Rid rid, const pci::MsiMessage &msg) {
        deliverMsi(rid, msg);
    });
}

void
InterruptRouter::bindVector(Vector v, HandlerFn handler)
{
    handlers_[v] = std::move(handler);
}

void
InterruptRouter::unbindVector(Vector v)
{
    handlers_[v] = nullptr;
}

Vector
InterruptRouter::allocateAndBind(HandlerFn handler)
{
    auto v = alloc_.allocate();
    if (!v)
        sim::fatal("interrupt vectors exhausted");
    bindVector(*v, std::move(handler));
    return *v;
}

// simlint: hot
void
InterruptRouter::deliverMsi(pci::Rid source, const pci::MsiMessage &msg)
{
    for (const DeliveryTap &tap : taps_)
        tap(source, msg);
    HandlerFn &h = handlers_[msg.vector()];
    if (!h) {
        spurious_.inc();
        sim::warn("spurious MSI vector %u from rid %04x", msg.vector(),
                  source);
        return;
    }
    delivered_.inc();
    h(msg.vector(), source);
}

} // namespace sriov::intr
