/**
 * @file
 * InterruptRouter: platform glue between device MSI writes and the
 * hypervisor's physical interrupt handling.
 *
 * Devices call PciFunction::signalMsi/Msix, whose sink the router
 * installs; the router resolves the message's vector to a registered
 * handler (Xen's do_IRQ path). Because vectors are globally allocated
 * (VectorAllocator), the handler identifies the owning guest directly
 * from the vector — the mechanism of paper Section 4.1.
 */

#ifndef SRIOV_INTR_INTERRUPT_ROUTER_HPP
#define SRIOV_INTR_INTERRUPT_ROUTER_HPP

#include <functional>
#include <vector>

#include "intr/vector_allocator.hpp"
#include "pci/function.hpp"
#include "pci/msi_cap.hpp"
#include "sim/stats.hpp"

namespace sriov::intr {

class InterruptRouter
{
  public:
    using HandlerFn = std::function<void(Vector, pci::Rid source)>;

    InterruptRouter();

    VectorAllocator &vectors() { return alloc_; }

    /** Install this router as @p fn's MSI sink. */
    void attachFunction(pci::PciFunction &fn);

    /** Bind an already-allocated vector to a handler. */
    void bindVector(Vector v, HandlerFn handler);
    void unbindVector(Vector v);

    /** Allocate a vector and bind it in one step. */
    Vector allocateAndBind(HandlerFn handler);

    /** Entry point for MSI messages (the function sink). */
    void deliverMsi(pci::Rid source, const pci::MsiMessage &msg);

    /**
     * Observation hook for correctness tooling: called for every MSI
     * reaching the router, before handler dispatch. Multiple taps run
     * in registration order (e.g. InvariantChecker's conservation
     * probe and the path tracer's delivery mark coexist).
     */
    using DeliveryTap =
        std::function<void(pci::Rid, const pci::MsiMessage &)>;
    void addDeliveryTap(DeliveryTap tap)
    {
        taps_.push_back(std::move(tap));
    }
    /** Legacy name; appends like addDeliveryTap. */
    void setDeliveryTap(DeliveryTap tap)
    {
        addDeliveryTap(std::move(tap));
    }

    std::uint64_t delivered() const { return delivered_.value(); }
    std::uint64_t spurious() const { return spurious_.value(); }

    /** Counter objects, for registration in an obs::MetricRegistry. */
    const sim::Counter &deliveredCounter() const { return delivered_; }
    const sim::Counter &spuriousCounter() const { return spurious_; }

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        delivered_.fluidVisit(v, "router.delivered");
        spurious_.fluidVisit(v, "router.spurious");
    }

  private:
    VectorAllocator alloc_;
    /** Dense dispatch: indexed by vector (Vector is 8-bit), so
     *  deliverMsi is an array load instead of a hash probe. */
    std::vector<HandlerFn> handlers_;
    std::vector<DeliveryTap> taps_;
    sim::Counter delivered_;
    sim::Counter spurious_;
};

} // namespace sriov::intr

#endif // SRIOV_INTR_INTERRUPT_ROUTER_HPP
