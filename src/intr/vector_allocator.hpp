/**
 * @file
 * Global interrupt-vector allocator.
 *
 * The paper (Section 4.1, citing [6]) allocates MSI vectors globally so
 * that no two VFs share a vector: Xen can then identify the owning
 * guest purely from the vector of the physical interrupt.
 */

#ifndef SRIOV_INTR_VECTOR_ALLOCATOR_HPP
#define SRIOV_INTR_VECTOR_ALLOCATOR_HPP

#include <array>
#include <cstdint>
#include <optional>

namespace sriov::intr {

using Vector = std::uint8_t;

class VectorAllocator
{
  public:
    /** x86 convention: 0–31 are exceptions; dynamic range starts here. */
    static constexpr Vector kFirstDynamic = 32;
    static constexpr Vector kLast = 255;

    VectorAllocator();

    /** Allocate the lowest free vector; nullopt when exhausted. */
    std::optional<Vector> allocate();
    void release(Vector v);
    bool inUse(Vector v) const;
    unsigned freeCount() const { return free_count_; }

  private:
    std::array<bool, 256> used_{};
    unsigned free_count_ = 0;
};

} // namespace sriov::intr

#endif // SRIOV_INTR_VECTOR_ALLOCATOR_HPP
