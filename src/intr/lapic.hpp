/**
 * @file
 * Local APIC model: IRR/ISR priority queues with EOI semantics.
 *
 * Used twice: as the physical LAPIC that receives MSIs from devices,
 * and (via VirtualLapic) as the per-VCPU interrupt chip the VMM
 * emulates for HVM guests. EOI clears the highest-priority in-service
 * vector and dispatches the next pending one — exactly the behaviour
 * the paper's virtual-EOI acceleration exploits (Section 5.2: the
 * emulation ignores the value the guest writes).
 */

#ifndef SRIOV_INTR_LAPIC_HPP
#define SRIOV_INTR_LAPIC_HPP

#include <cstdint>
#include <functional>
#include <optional>

#include "intr/vector_allocator.hpp"
#include "sim/stats.hpp"

namespace sriov::intr {

class Lapic
{
  public:
    /** Offsets within the 4 KiB APIC register page. */
    static constexpr std::uint16_t kRegEoi = 0x0b0;
    static constexpr std::uint16_t kRegTpr = 0x080;
    static constexpr std::uint16_t kRegIcrLo = 0x300;

    /** Installed by the owner; called when a vector should run. */
    using DeliverFn = std::function<void(Vector)>;

    void setDeliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /** Accept a fixed interrupt (e.g. an MSI). */
    void accept(Vector v);

    /** Highest pending vector not blocked by in-service priority. */
    std::optional<Vector> nextDeliverable() const;

    /**
     * End-of-interrupt: clears the highest in-service vector and
     * dispatches the next deliverable one, if any.
     */
    void eoi();

    bool inService(Vector v) const { return testBit(isr_, v); }
    bool pending(Vector v) const { return testBit(irr_, v); }
    std::optional<Vector> highestInService() const;

    const sim::Counter &accepted() const { return accepted_; }
    const sim::Counter &delivered() const { return delivered_; }
    const sim::Counter &eois() const { return eois_; }
    /** EOI writes with no vector in service — a simulator bug. */
    std::uint64_t spuriousEois() const { return spurious_eois_.value(); }

    /** Fluid-mode state walk (sim/fluid.hpp): IRR/ISR words are
     *  phase-invariant in steady state; counters are linear. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        for (int w = 0; w < 4; ++w) {
            v.inv("lapic.irr", irr_[w]);
            v.inv("lapic.isr", isr_[w]);
        }
        accepted_.fluidVisit(v, "lapic.accepted");
        delivered_.fluidVisit(v, "lapic.delivered");
        eois_.fluidVisit(v, "lapic.eois");
        spurious_eois_.fluidVisit(v, "lapic.spurious_eois");
    }

  private:
    /** 256-entry register as four words, so the priority scans are a
     *  word test + count-leading-zeros instead of 256 bit probes. */
    using Reg = std::uint64_t[4];

    static bool testBit(const Reg &r, Vector v)
    {
        return (r[v >> 6] >> (v & 63)) & 1u;
    }
    static void setBit(Reg &r, Vector v) { r[v >> 6] |= 1ull << (v & 63); }
    static void clearBit(Reg &r, Vector v)
    {
        r[v >> 6] &= ~(1ull << (v & 63));
    }
    /** Index of the highest set bit, or -1 when empty. */
    static int highestBit(const Reg &r);

    void tryDispatch();

    Reg irr_ = {};
    Reg isr_ = {};
    DeliverFn deliver_;
    sim::Counter accepted_;
    sim::Counter delivered_;
    sim::Counter eois_;
    sim::Counter spurious_eois_;
};

} // namespace sriov::intr

#endif // SRIOV_INTR_LAPIC_HPP
