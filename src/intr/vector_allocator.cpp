#include "intr/vector_allocator.hpp"

#include "sim/log.hpp"

namespace sriov::intr {

VectorAllocator::VectorAllocator()
{
    for (unsigned v = 0; v < kFirstDynamic; ++v)
        used_[v] = true;
    free_count_ = 256 - kFirstDynamic;
}

std::optional<Vector>
VectorAllocator::allocate()
{
    for (unsigned v = kFirstDynamic; v <= kLast; ++v) {
        if (!used_[v]) {
            used_[v] = true;
            --free_count_;
            return Vector(v);
        }
    }
    return std::nullopt;
}

void
VectorAllocator::release(Vector v)
{
    if (v < kFirstDynamic)
        sim::panic("releasing reserved vector %u", v);
    if (!used_[v])
        sim::panic("double release of vector %u", v);
    used_[v] = false;
    ++free_count_;
}

bool
VectorAllocator::inUse(Vector v) const
{
    return used_[v];
}

} // namespace sriov::intr
