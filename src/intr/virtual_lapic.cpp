#include "intr/virtual_lapic.hpp"

namespace sriov::intr {

void
VirtualLapic::guestEoiWrite()
{
    exits_.inc();
    eoi_writes_.inc();
    if (exit_hook_)
        exit_hook_(ApicAccessExit{Lapic::kRegEoi, true});
    lapic_.eoi();
}

void
VirtualLapic::guestApicAccess(std::uint16_t offset, bool is_write)
{
    exits_.inc();
    if (exit_hook_)
        exit_hook_(ApicAccessExit{offset, is_write});
    // Non-EOI accesses have no architectural effect our model tracks.
}

} // namespace sriov::intr
