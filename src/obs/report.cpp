#include "obs/report.hpp"

#include <cmath>
#include <utility>

#include "obs/json.hpp"

namespace sriov::obs {

Report::Report(std::string bench, std::string title)
    : bench_(std::move(bench)), title_(std::move(title))
{}

void
Report::setConfig(const std::string &key, const std::string &value)
{
    config_str_.emplace_back(key, value);
}

void
Report::setConfig(const std::string &key, double value)
{
    config_num_.emplace_back(key, value);
}

void
Report::addMetric(const std::string &name, double value)
{
    metrics_.emplace_back(name, value);
}

void
Report::addSnapshot(const std::string &label, const MetricRegistry &reg,
                    const std::string &prefix)
{
    snapshots_.push_back(Snapshot{label, reg.snapshot(prefix)});
}

void
Report::addSnapshot(const std::string &label, MetricSnapshot snap)
{
    snapshots_.push_back(Snapshot{label, std::move(snap)});
}

void
Report::addPathStages(const std::string &label, const PathSnapshot &snap)
{
    if (!snap.hasAttribution())
        return;
    path_stages_.push_back(PathStagesData{label, snap.stages, snap.total});
}

void
Report::addSeries(const std::string &name, const sim::Series &s)
{
    SeriesData d;
    d.name = name;
    d.xs.reserve(s.samples().size());
    d.ys.reserve(s.samples().size());
    for (const auto &[t, v] : s.samples()) {
        d.xs.push_back(t.toSeconds());
        d.ys.push_back(v);
    }
    series_.push_back(std::move(d));
}

void
Report::addSeries(const std::string &name, const std::vector<double> &xs,
                  const std::vector<double> &ys)
{
    series_.push_back(SeriesData{name, xs, ys});
}

const Report::Expectation &
Report::expect(const std::string &name, double actual, double expected,
               double band_pct)
{
    Expectation e;
    e.name = name;
    e.actual = actual;
    e.expected = expected;
    e.band_pct = band_pct;
    e.delta = actual - expected;
    e.delta_pct = expected != 0 ? e.delta / expected * 100.0 : 0.0;
    // A zero expected value passes only on an exact match.
    e.pass = expected != 0 ? std::fabs(e.delta_pct) <= band_pct
                           : e.delta == 0.0;
    expectations_.push_back(std::move(e));
    return expectations_.back();
}

bool
Report::allPass() const
{
    for (const Expectation &e : expectations_) {
        if (!e.pass)
            return false;
    }
    return true;
}

namespace {

void
writeSample(JsonWriter &w, const MetricSample &s)
{
    w.beginObject();
    w.kv("kind", metricKindName(s.kind));
    w.kv("value", s.value);
    if (s.count > 0)
        w.kv("count", std::uint64_t(s.count));
    if (s.kind == MetricKind::Histogram) {
        w.kv("mean", s.mean);
        w.kv("min", s.min);
        w.kv("max", s.max);
        w.kv("p50", s.p50);
        w.kv("p99", s.p99);
    }
    w.endObject();
}

} // namespace

std::string
Report::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.kv("schema", kSchema);
    w.kv("bench", bench_);
    w.kv("title", title_);

    w.key("config").beginObject();
    for (const auto &[k, v] : config_str_)
        w.kv(k, v);
    for (const auto &[k, v] : config_num_)
        w.kv(k, v);
    w.endObject();

    w.key("metrics").beginObject();
    for (const auto &[k, v] : metrics_)
        w.kv(k, v);
    w.endObject();

    w.key("snapshots").beginArray();
    for (const Snapshot &snap : snapshots_) {
        w.beginObject();
        w.kv("label", snap.label);
        w.key("metrics").beginObject();
        for (const MetricSample &s : snap.data.samples) {
            w.key(s.name);
            writeSample(w, s);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();

    w.key("series").beginArray();
    for (const SeriesData &s : series_) {
        w.beginObject();
        w.kv("name", s.name);
        w.key("x").beginArray();
        for (double v : s.xs)
            w.value(v);
        w.endArray();
        w.key("y").beginArray();
        for (double v : s.ys)
            w.value(v);
        w.endArray();
        w.endObject();
    }
    w.endArray();

    // Stage-latency attribution (path tracer base sampler). Emitted
    // only when a block exists, so pre-tracer reports are unchanged.
    if (!path_stages_.empty()) {
        w.key("path_stages").beginArray();
        for (const PathStagesData &p : path_stages_) {
            w.beginObject();
            w.kv("label", p.label);
            w.kv("sampled_trails", p.total.count);
            w.key("stages").beginArray();
            for (const PathStageStat &s : p.stages) {
                w.beginObject();
                w.kv("stage", s.stage);
                w.kv("count", s.count);
                w.kv("mean_us", s.mean_us);
                w.kv("p50_us", s.p50_us);
                w.kv("p99_us", s.p99_us);
                w.kv("share_pct", p.total.sum_us > 0
                                      ? s.sum_us / p.total.sum_us * 100.0
                                      : 0.0);
                w.endObject();
            }
            w.endArray();
            w.key("total").beginObject();
            w.kv("count", p.total.count);
            w.kv("mean_us", p.total.mean_us);
            w.kv("p50_us", p.total.p50_us);
            w.kv("p99_us", p.total.p99_us);
            w.endObject();
            w.endObject();
        }
        w.endArray();
    }

    w.key("expectations").beginArray();
    for (const Expectation &e : expectations_) {
        w.beginObject();
        w.kv("name", e.name);
        w.kv("actual", e.actual);
        w.kv("expected", e.expected);
        w.kv("band_pct", e.band_pct);
        w.kv("delta", e.delta);
        w.kv("delta_pct", e.delta_pct);
        w.kv("pass", e.pass);
        w.endObject();
    }
    w.endArray();

    w.kv("all_pass", allPass());
    w.endObject();
    return w.str();
}

bool
Report::writeTo(const std::string &path) const
{
    return writeTextFile(path, toJson());
}

} // namespace sriov::obs
