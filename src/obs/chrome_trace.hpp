/**
 * @file
 * ChromeTraceWriter: exports simulator activity as Chrome
 * `trace_event` JSON, loadable in Perfetto / chrome://tracing.
 *
 * Three sources feed one timeline (simulated time on the horizontal
 * axis, microsecond resolution):
 *  - CpuServer work spans — complete ("X") slices on one track per
 *    CPU server, named by the work's accounting tag ("guest-1",
 *    "xen", "dom0", ...). This is the paper's CPU breakdown, drawn.
 *  - EventQueue executions — instant ("i") marks on a per-queue track
 *    (named by the event tag where present), via ExecHook.
 *  - Tracer records — instant marks on one track per trace category
 *    (irq / nic / driver / backend / migration), imported from the
 *    ring buffer after a run.
 *
 * The writer buffers events in memory up to a cap (keeping the oldest,
 * counting drops) and serializes on demand. Taps attached to
 * CpuServers / EventQueues must be detached (detachAll()) before the
 * writer is destroyed unless the sources die first.
 */

#ifndef SRIOV_OBS_CHROME_TRACE_HPP
#define SRIOV_OBS_CHROME_TRACE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/cpu_server.hpp"
#include "sim/event_queue.hpp"
#include "sim/trace.hpp"

namespace sriov::obs {

class ChromeTraceWriter : public sim::CpuServer::SpanTap,
                          public sim::EventQueue::ExecHook
{
  public:
    /** A (process row, thread row) pair in the trace viewer. */
    struct Track
    {
        int pid = 0;
        int tid = 0;
    };

    static constexpr std::size_t kDefaultMaxEvents = 200000;

    explicit ChromeTraceWriter(std::size_t max_events = kDefaultMaxEvents);
    ~ChromeTraceWriter() override;

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** @name Manual event emission. @{ */
    Track track(const std::string &process, const std::string &thread);
    void addSpan(Track t, std::string name, sim::Time start, sim::Time end);
    void addInstant(Track t, std::string name, sim::Time when);
    /**
     * Perfetto flow event: @p phase is 's' (start), 't' (step) or
     * 'f' (end); events sharing @p flow_id draw one causal arrow
     * chain across tracks. Bind each to an enclosing slice by emitting
     * it at the slice's start timestamp.
     */
    void addFlow(Track t, std::string name, std::uint64_t flow_id,
                 char phase, sim::Time when);
    /** @} */

    /** @name Source attachment. @{ */

    /** Draw @p cpu's work spans on track (@p process, cpu name). */
    void attachCpu(sim::CpuServer &cpu, const std::string &process);

    /** Mark every executed event on track (@p process, "events"). */
    void attachEventQueue(sim::EventQueue &eq,
                          const std::string &process = "sim");

    /** Convert the tracer's ring into instants, one track per category. */
    void importTracer(const sim::Tracer &t,
                      const std::string &process = "trace");

    /** Remove this writer's taps from every attached source. */
    void detachAll();

    /** @} */

    /** @name Tap interfaces (called by the attached sources). @{ */
    void onCpuSpan(const sim::CpuServer &cpu, const std::string &tag,
                   sim::Time start, sim::Time end) override;
    void onEventStart(sim::Time when, std::uint64_t seq,
                      const char *tag) override;
    void onEventEnd(sim::Time when, std::uint64_t seq,
                    const char *tag) override;
    /** @} */

    std::size_t eventCount() const { return events_.size(); }
    std::uint64_t droppedEvents() const { return dropped_; }
    std::size_t trackCount() const { return tids_.size(); }

    /**
     * Capacity drops broken out per (pid, tid) track, so one saturated
     * track (a chatty packet-trace category, say) cannot silently mask
     * drops on another. The sum equals droppedEvents(); toJson()
     * publishes the breakdown as sriovDroppedByTrack.
     */
    const std::map<std::pair<int, int>, std::uint64_t> &
    droppedByTrack() const
    {
        return dropped_by_track_;
    }

    /** The complete `{"traceEvents": [...]}` document. */
    std::string toJson() const;

    /** Write toJson() to @p path, creating parent directories. */
    bool writeTo(const std::string &path) const;

  private:
    struct Event
    {
        char phase;          // 'X' complete, 'i' instant, 's'/'t'/'f' flow
        int pid;
        int tid;
        std::string name;
        std::int64_t ts_ps;
        std::int64_t dur_ps;    // complete events only
        std::uint64_t flow_id = 0; // flow events only
    };

    void push(Event e);

    std::size_t max_events_;
    std::uint64_t dropped_ = 0;
    std::map<std::pair<int, int>, std::uint64_t> dropped_by_track_;
    std::vector<Event> events_;
    std::map<std::string, int> pids_;
    std::map<std::pair<int, std::string>, int> tids_;
    std::vector<sim::CpuServer *> attached_cpus_;
    std::vector<sim::EventQueue *> attached_queues_;
    std::map<const sim::CpuServer *, Track> cpu_tracks_;
    std::map<const sim::EventQueue *, Track> queue_tracks_;
};

} // namespace sriov::obs

#endif // SRIOV_OBS_CHROME_TRACE_HPP
