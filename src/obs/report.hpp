/**
 * @file
 * Report: the machine-readable result document every bench/figXX
 * writes when invoked with --out=<dir>.
 *
 * A report carries (1) the experiment configuration, (2) metric
 * snapshots taken from a MetricRegistry at labelled points, (3) named
 * time series, and (4) expectations — paper-reported values compared
 * against simulated ones with a tolerance band, each yielding a delta
 * and a pass flag. The JSON schema is versioned
 * ("sriov-bench-report/v1") so downstream tooling (tools/report_check,
 * tools/bench_summary, plotting scripts) can validate what it reads.
 */

#ifndef SRIOV_OBS_REPORT_HPP
#define SRIOV_OBS_REPORT_HPP

#include <string>
#include <vector>

#include "obs/metric.hpp"
#include "obs/pathtrace.hpp"
#include "sim/stats.hpp"

namespace sriov::obs {

class Report
{
  public:
    static constexpr const char *kSchema = "sriov-bench-report/v1";

    /** One paper-expected-vs-simulated comparison. */
    struct Expectation
    {
        std::string name;
        double actual = 0;
        double expected = 0;
        double band_pct = 0;    ///< allowed |delta_pct|
        double delta = 0;       ///< actual - expected
        double delta_pct = 0;   ///< delta / expected * 100 (0 if expected==0)
        bool pass = false;
    };

    Report(std::string bench, std::string title);

    /** @name Experiment configuration (flat key/value). @{ */
    void setConfig(const std::string &key, const std::string &value);
    void setConfig(const std::string &key, double value);
    /** @} */

    /** Record a single scalar metric under the top-level metrics map. */
    void addMetric(const std::string &name, double value);

    /**
     * Snapshot @p reg (optionally filtered by hierarchical @p prefix)
     * under @p label. Multiple labelled snapshots let a bench record
     * state per phase (per VF count, per migration round, ...).
     */
    void addSnapshot(const std::string &label, const MetricRegistry &reg,
                     const std::string &prefix = "");

    /**
     * Attach an already-flattened snapshot. Parallel sweeps snapshot
     * their per-case registries on worker threads and hand the frozen
     * data to the (single-threaded) report afterward; since a
     * MetricSnapshot is a pure value, the resulting JSON is
     * byte-identical to the sequential addSnapshot() path.
     */
    void addSnapshot(const std::string &label, MetricSnapshot snap);

    /**
     * Attach a per-stage latency attribution block (the path tracer's
     * base-rate sampler) under @p label. No-op when the snapshot has
     * no completed trails, so reports without traced traffic — and
     * benches predating the tracer — are byte-identical to before.
     */
    void addPathStages(const std::string &label, const PathSnapshot &snap);

    /** Attach a named time series (copied). */
    void addSeries(const std::string &name, const sim::Series &s);
    void addSeries(const std::string &name,
                   const std::vector<double> &xs,
                   const std::vector<double> &ys);

    /**
     * Compare @p actual against the paper's @p expected value,
     * tolerating |delta| up to @p band_pct percent of expected.
     * @return the computed expectation (also stored in the report).
     */
    const Expectation &expect(const std::string &name, double actual,
                              double expected, double band_pct);

    bool allPass() const;
    std::size_t expectationCount() const { return expectations_.size(); }
    std::size_t snapshotCount() const { return snapshots_.size(); }

    std::string toJson() const;

    /** Write toJson() to @p path, creating parent directories. */
    bool writeTo(const std::string &path) const;

  private:
    struct Snapshot
    {
        std::string label;
        MetricSnapshot data;
    };

    struct SeriesData
    {
        std::string name;
        std::vector<double> xs;
        std::vector<double> ys;
    };

    struct PathStagesData
    {
        std::string label;
        std::vector<PathStageStat> stages;
        PathStageStat total;
    };

    std::string bench_;
    std::string title_;
    std::vector<std::pair<std::string, std::string>> config_str_;
    std::vector<std::pair<std::string, double>> config_num_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<Snapshot> snapshots_;
    std::vector<SeriesData> series_;
    std::vector<PathStagesData> path_stages_;
    std::vector<Expectation> expectations_;
};

} // namespace sriov::obs

#endif // SRIOV_OBS_REPORT_HPP
