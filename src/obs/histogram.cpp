#include "obs/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "sim/log.hpp"

namespace sriov::obs {

Histogram::Histogram() : Histogram(Params{}) {}

Histogram::Histogram(Params p) : params_(p)
{
    if (params_.lo <= 0 || params_.growth <= 1.0 || params_.buckets < 2)
        sim::fatal("Histogram: need lo > 0, growth > 1, buckets >= 2");
    bounds_.reserve(params_.buckets - 1);
    double b = params_.lo;
    for (std::size_t i = 0; i + 1 < params_.buckets; ++i) {
        bounds_.push_back(b);
        b *= params_.growth;
    }
    weights_.assign(params_.buckets, 0.0);
}

Histogram::Histogram(double lo, double growth, std::size_t buckets)
    : Histogram(Params{lo, growth, buckets})
{
}

std::size_t
Histogram::bucketIndex(double v) const
{
    // First bound >= v; everything above the last bound lands in the
    // unbounded tail bucket.
    auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    return std::size_t(it - bounds_.begin());
}

double
Histogram::bucketUpperBound(std::size_t i) const
{
    if (i + 1 == weights_.size())
        return std::numeric_limits<double>::infinity();
    return bounds_.at(i);
}

void
Histogram::record(double v, double w)
{
    if (w <= 0)
        return;
    weights_[bucketIndex(v)] += w;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += w;
    sum_ += v * w;
}

double
Histogram::percentile(double p) const
{
    if (count_ <= 0)
        return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    double target = count_ * p / 100.0;
    double cum = 0;
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        cum += weights_[i];
        if (cum >= target && weights_[i] > 0) {
            double hi = bucketUpperBound(i);
            return std::clamp(hi, min_, max_);
        }
    }
    return max_;
}

void
Histogram::reset()
{
    std::fill(weights_.begin(), weights_.end(), 0.0);
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
}

std::string
Histogram::summary() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%.6g mean=%.6g p50=%.6g p99=%.6g min=%.6g max=%.6g",
                  count_, mean(), percentile(50), percentile(99), min(),
                  max());
    return buf;
}

} // namespace sriov::obs
