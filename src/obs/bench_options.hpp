/**
 * @file
 * BenchOptions: the shared CLI/environment contract of the bench
 * executables.
 *
 * Every bench/figXX accepts:
 *   --out=<dir>    write a machine-readable report (figXX.json) there
 *   --trace=<arg>  capture a Chrome trace_event JSON. <arg> is either
 *                  a comma-separated tracer category list (irq, nic,
 *                  driver, backend, migration, all) — the file then
 *                  lands next to the report as figXX.trace.json — or
 *                  an explicit output path (all categories).
 *   --jobs=<n>     run independent sweep cases on <n> host threads
 *                  (core::SweepRunner; default 1 = sequential, and
 *                  reports are byte-identical either way)
 *   --help         print usage and exit
 * with environment fallbacks SRIOV_BENCH_OUT, SRIOV_TRACE and
 * SRIOV_BENCH_JOBS so CI can turn on reporting without touching each
 * invocation.
 */

#ifndef SRIOV_OBS_BENCH_OPTIONS_HPP
#define SRIOV_OBS_BENCH_OPTIONS_HPP

#include <string>
#include <vector>

#include "sim/fluid.hpp"
#include "sim/trace.hpp"

namespace sriov::obs {

class BenchOptions
{
  public:
    /**
     * Parse argv (and the environment). Unknown arguments are kept in
     * extraArgs() for bench-specific handling. @p bench is the figure
     * name ("fig06") used to derive the report path.
     */
    static BenchOptions parse(int argc, char **argv,
                              const std::string &bench);

    /** Usage text for --help. */
    static std::string usage(const std::string &bench);

    const std::string &bench() const { return bench_; }

    bool wantReport() const { return !out_dir_.empty(); }
    const std::string &outDir() const { return out_dir_; }

    /** "<out_dir>/<bench>.json" (empty when reporting is off). */
    std::string reportPath() const;

    bool wantTrace() const { return trace_requested_; }
    /** Explicit path, or "<out|.>/<bench>.trace.json" when derived. */
    std::string tracePath() const;

    /** Host threads for embarrassingly-parallel sweep cases (>= 1). */
    unsigned jobs() const { return jobs_; }

    /** --no-thin: exact event-per-hop mode (parse() applies it to the
     *  global sim::setThinning switch before any testbed exists). */
    bool noThin() const { return no_thin_; }

    /** --fluid[=on|exact|off] (env SRIOV_FLUID): flow-level fluid
     *  mode — the testbed installs a core::FluidDirector that warps
     *  over provably periodic steady-state stretches instead of
     *  simulating every packet event (DESIGN.md §14). "exact" runs
     *  the same fluid schedule without warping (the equivalence
     *  reference). Off by default; --fluid=off preserves reports
     *  bit-for-bit. parse() applies it to the global
     *  sim::setFluidMode switch before any testbed exists. Composes
     *  with --shards=N: sharded builds warp at quiescent barriers via
     *  the WarpCoordinator (DESIGN.md §15). */
    bool fluid() const { return fluid_mode_ != sim::FluidMode::Off; }
    sim::FluidMode fluidMode() const { return fluid_mode_; }
    /** "off" | "exact" | "on" — for the perf sidecar. */
    const char *fluidModeName() const;

    /** --shards=<n> (env SRIOV_SHARDS): island-partitioned testbeds
     *  run by the conservative shard engine on up to <n> worker
     *  threads (0 = legacy single-queue engine). parse() applies it to
     *  the global sim::setShardCount switch before any testbed exists;
     *  reports are byte-identical for every n >= 1. */
    unsigned shards() const { return shards_; }

    /** "<out_dir>/<bench>.perf.json" (empty when reporting is off). */
    std::string perfPath() const;

    /** --pathtrace=off|sampled|full (env SRIOV_PATHTRACE); parse()
     *  applies it to obs::setPathTraceMode before any testbed exists. */
    bool wantPathTrace() const { return pathtrace_requested_; }
    /** "<out_dir>/<bench>.pathtrace.json" (empty when reporting off). */
    std::string pathtracePath() const;
    /** "<out_dir>/<bench>.pathtrace.trace.json" — Perfetto flows. */
    std::string pathtraceFlowsPath() const;
    /** "<out_dir>/<bench>.flightrec.json" — post-mortem dump. */
    std::string flightrecPath() const;

    /** Enable the requested categories on @p t. */
    void applyTraceCategories(sim::Tracer &t) const;

    bool helpRequested() const { return help_; }

    const std::vector<std::string> &extraArgs() const { return extra_; }

  private:
    void parseTraceArg(const std::string &arg);

    std::string bench_;
    std::string out_dir_;
    std::string trace_path_;
    std::vector<sim::TraceCat> cats_;
    unsigned jobs_ = 1;
    unsigned shards_ = 0;
    bool no_thin_ = false;
    sim::FluidMode fluid_mode_ = sim::FluidMode::Off;
    bool trace_requested_ = false;
    bool pathtrace_requested_ = false;
    bool all_cats_ = false;
    bool help_ = false;
    std::vector<std::string> extra_;
};

} // namespace sriov::obs

#endif // SRIOV_OBS_BENCH_OPTIONS_HPP
