/**
 * @file
 * Causal per-packet path tracing.
 *
 * Every packet gets a compact trace id at origin (the sending net
 * stack); each datapath stage boundary — guest TX, DMA, wire, L2
 * classify, RX ring take, IOMMU translate, MSI-X raise, LAPIC deliver,
 * guest RX — appends a fixed-size (trace_id, stage, sim_time) record
 * into a per-component bounded ring. The hot path is allocation-free
 * (rings, attribution slots and histograms are sized at construction)
 * and sampling is a pure hash of the trace id, so the tracer is
 * non-perturbing by construction: it never schedules events, never
 * touches a metric, and never consults wallclock or a RNG. CI holds it
 * to that: the golden fig06 digest and every figXX.json report must be
 * byte-identical with tracing off, sampled and full.
 *
 * Three consumers sit on the raw records:
 *  - a stitcher that reconstructs per-packet trails and exports them
 *    as Perfetto flow events through ChromeTraceWriter;
 *  - a stage-latency attribution table (per-stage p50/p99 and
 *    share-of-total), fed at a fixed 1/64 base sampling rate whatever
 *    the export mode, so the path_stages block in figXX.json is
 *    byte-identical across modes;
 *  - an always-on flight recorder: the last-N per-component rings are
 *    dumped whenever the InvariantChecker trips or a bench report goes
 *    out of band, so every failure ships its own post-mortem.
 */

#ifndef SRIOV_OBS_PATHTRACE_HPP
#define SRIOV_OBS_PATHTRACE_HPP

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"
#include "sim/time.hpp"

namespace sriov::obs {

/**
 * Datapath stage boundaries, in causal order for the canonical
 * client -> wire -> NIC -> guest RX path. A trail need not visit every
 * stage (loopback skips the wire, PV paths skip the IOMMU); attribution
 * charges the time since the previous *visited* stage.
 */
enum class PathStage : std::uint8_t
{
    Origin,         ///< net stack assigned the trace id (send call)
    GuestTx,        ///< NIC accepted the frame for transmit
    TxDma,          ///< TX descriptor DMA completed
    WireTx,         ///< frame started serializing onto the wire
    WireRx,         ///< frame delivered at the far wire end
    L2Classify,     ///< embedded L2 switch picked the target pool
    RingTake,       ///< RX descriptor taken from the pool ring
    IommuXlate,     ///< DMA address translated by the IOMMU
    RxDma,          ///< RX payload DMA completed
    MsixRaise,      ///< MSI-X interrupt raised for the completion
    LapicDeliver,   ///< driver ISR drained the completion
    GuestRx,        ///< guest net stack consumed the packet
    Count
};

/** Stable lowercase name ("wire_rx") used in JSON artifacts. */
const char *pathStageName(PathStage s);

/** Parse a pathStageName back; returns Count for unknown names. */
PathStage pathStageFromName(std::string_view name);

/**
 * Export mode: how much of the record stream is kept in the rings and
 * whether figXX.pathtrace.json artifacts are written. Attribution and
 * the flight recorder always run at the 1/64 base rate, so the mode
 * only widens what is exported — it cannot change a report byte.
 */
enum class PathTraceMode : std::uint8_t
{
    Off,       ///< flight-recorder rate only; no pathtrace artifacts
    Sampled,   ///< 1/8 of trace ids exported + artifacts written
    Full       ///< every traced packet exported + artifacts written
};

/** Global export mode (default Off). Read once per tracer, at its
 *  construction — set it (via --pathtrace / SRIOV_PATHTRACE) before
 *  building a testbed, exactly like sim::setThinning. */
PathTraceMode pathTraceMode();
void setPathTraceMode(PathTraceMode m);
const char *pathTraceModeName(PathTraceMode m);

/** RAII override for tests: forces a mode, restores on destruction. */
class PathTraceScope
{
  public:
    explicit PathTraceScope(PathTraceMode m) : prev_(pathTraceMode())
    {
        setPathTraceMode(m);
    }
    ~PathTraceScope() { setPathTraceMode(prev_); }
    PathTraceScope(const PathTraceScope &) = delete;
    PathTraceScope &operator=(const PathTraceScope &) = delete;

  private:
    PathTraceMode prev_;
};

/** One fixed-size ring record. trace_id 0 marks an auxiliary record
 *  (component activity not tied to one packet, e.g. an MSI delivery
 *  observed at the interrupt router). */
struct PathRecord
{
    std::uint64_t trace_id = 0;
    std::int64_t when_ps = 0;
    std::uint16_t comp = 0;
    std::uint8_t stage = 0;
};

/** Per-stage latency summary captured in a snapshot. */
struct PathStageStat
{
    std::string stage;
    double count = 0;
    double sum_us = 0;
    double mean_us = 0;
    double p50_us = 0;
    double p99_us = 0;
};

/** One component's bounded ring, oldest record first. */
struct PathCompDump
{
    std::string name;
    std::size_t capacity = 0;
    std::uint64_t written = 0;      ///< lifetime pushes (>= records.size())
    std::vector<PathRecord> records;
};

/**
 * A value-type snapshot of a tracer: counters, ring contents and the
 * attribution table. Captured per sweep case (worker-thread confined)
 * and merged in declaration order, so artifacts built from snapshots
 * are byte-identical whatever --jobs says.
 */
struct PathSnapshot
{
    std::string mode;               ///< export mode name at construction
    std::uint64_t export_mask = 0;  ///< id kept when (hash & mask) == 0
    std::uint64_t base_mask = 0;    ///< attribution/flight-recorder mask
    std::uint64_t records = 0;      ///< record() calls with a trace id
    std::uint64_t marks = 0;        ///< mark() calls (aux records)
    std::uint64_t origin_calls = 0; ///< Origin stamps offered
    std::uint64_t origin_sampled = 0; ///< Origin stamps base-sampled
    std::uint64_t completed = 0;    ///< trails finalized at GuestRx
    std::uint64_t evicted = 0;      ///< slots reclaimed by a new Origin
    std::uint64_t orphans = 0;      ///< stamps with no live slot
    std::vector<PathCompDump> comps;
    std::vector<PathStageStat> stages; ///< visited stages, causal order
    PathStageStat total;            ///< origin -> guest RX latency
    bool hasAttribution() const { return total.count > 0; }
};

/** A stitched per-packet trail: every ring record for one trace id,
 *  time-ordered, beginning at Origin. */
struct PathTrail
{
    std::uint64_t id = 0;
    std::vector<PathRecord> hops;
};

/**
 * The tracer. One per testbed (worker-thread confined under --jobs);
 * components hold a pointer plus a component id from
 * registerComponent() and stamp stage boundaries with record().
 *
 * Register every component before traffic starts: registration
 * allocates the ring storage, record() never allocates.
 */
class PathTracer
{
  public:
    static constexpr unsigned kStageCount =
        static_cast<unsigned>(PathStage::Count);
    /** Base sampling: 1 in 64 trace ids feed attribution and the
     *  flight recorder, in every mode. */
    static constexpr std::uint64_t kBaseSampleMask = 63;

    struct Params
    {
        std::size_t ring_capacity = 512; ///< records kept per component
        std::size_t slots = 4096;        ///< attribution table (pow-2)
    };

    PathTracer() : PathTracer(Params{}) {}
    explicit PathTracer(Params p);

    PathTracer(const PathTracer &) = delete;
    PathTracer &operator=(const PathTracer &) = delete;

    /** Add a component ring; the returned id tags its records. */
    std::uint16_t registerComponent(std::string name);

    /** splitmix64 finalizer: the deterministic sampling hash. */
    static std::uint64_t sampleHash(std::uint64_t id);
    /** Does @p id feed attribution + the flight recorder? */
    static bool
    baseSampled(std::uint64_t id)
    {
        return (sampleHash(id) & kBaseSampleMask) == 0;
    }

    /**
     * Stamp a stage boundary for packet @p id at simulated time
     * @p when. Ignores id 0 (untraced). Alloc-free; safe to call from
     * simlint-hot functions.
     */
    // simlint: hot
    void
    record(std::uint16_t comp, PathStage stage, std::uint64_t id,
           sim::Time when)
    {
        if (id == 0 || comp >= rings_.size())
            return;
        ++records_;
        const std::uint64_t h = sampleHash(id);
        if ((h & export_mask_) == 0)
            push(comp, id, stage, when);
        if (stage == PathStage::Origin)
            ++origin_calls_;
        if ((h & kBaseSampleMask) != 0)
            return;
        stamp(h, stage, id, when);
    }

    /** Auxiliary component record (trace id 0), always kept. */
    // simlint: hot
    void
    mark(std::uint16_t comp, PathStage stage, sim::Time when)
    {
        if (comp >= rings_.size())
            return;
        ++marks_;
        push(comp, 0, stage, when);
    }

    PathTraceMode mode() const { return mode_; }
    std::uint64_t exportMask() const { return export_mask_; }
    std::uint64_t recordCount() const { return records_; }
    std::uint64_t completedCount() const { return completed_; }

    /**
     * Sharded-island half-tracer mode (DESIGN.md §13). An island sees
     * only its part of a packet's path, so a stamp for an id the
     * tracer never saw an Origin for *adopts* the slot as a partial
     * trail instead of counting an orphan, and GuestRx defers
     * finalization: slots stay live until mergeShards() joins the
     * halves by trace id. Set once, before traffic.
     */
    void setShardHalf(bool on) { shard_half_ = on; }
    bool shardHalf() const { return shard_half_; }

    /**
     * Join per-island half tracers into one snapshot: counters summed
     * and component rings concatenated in @p parts order (record comp
     * ids re-based), attribution slots joined by trace id and
     * finalized in ascending-id order into fresh histograms. The
     * result depends only on the tracers' contents — i.e. on the
     * island partition, not the worker count — so artifacts built from
     * it are byte-identical from --shards=1 to --shards=N.
     */
    static PathSnapshot
    mergeShards(const std::vector<const PathTracer *> &parts);

    /** Capture counters, rings and attribution as a value. */
    PathSnapshot snapshot() const;

    /** Human-readable post-mortem dump (counters + stitched trails). */
    std::string dumpText() const;

  private:
    struct Ring
    {
        std::string name;
        std::vector<PathRecord> buf;
        std::uint64_t written = 0;
    };

    struct Slot
    {
        std::uint64_t id = 0;
        std::uint32_t present = 0;
        std::array<std::int64_t, kStageCount> when{};
    };

    void push(std::uint16_t comp, std::uint64_t id, PathStage stage,
              sim::Time when);
    void stamp(std::uint64_t h, PathStage stage, std::uint64_t id,
               sim::Time when);
    void finalize(Slot &s);

    PathTraceMode mode_;
    bool shard_half_ = false;
    std::uint64_t export_mask_;
    std::size_t ring_capacity_;
    std::size_t slot_mask_;
    std::vector<Ring> rings_;
    std::vector<Slot> slots_;
    std::array<Histogram, kStageCount> stage_hist_;
    Histogram total_hist_;
    std::uint64_t records_ = 0;
    std::uint64_t marks_ = 0;
    std::uint64_t origin_calls_ = 0;
    std::uint64_t origin_sampled_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t evicted_ = 0;
    std::uint64_t orphans_ = 0;
};

/** Reconstruct per-packet trails from a snapshot's rings: records
 *  grouped by trace id, time-ordered, trails sorted by first stamp.
 *  Trails whose head was overwritten (no Origin) are dropped. */
std::vector<PathTrail> stitchTrails(const PathSnapshot &snap);

/** Render one snapshot as the post-mortem text block appended to
 *  InvariantChecker reports. */
std::string pathSnapshotDump(const PathSnapshot &snap);

/**
 * Write figXX.pathtrace.json / figXX.flightrec.json (schema
 * sriov-pathtrace/v1, kind "trace" or "flightrec"): per case the
 * counters, component rings, stitched trails and stage table.
 */
bool writePathTraceFile(
    const std::string &path, const std::string &bench,
    const char *kind,
    const std::vector<std::pair<std::string, PathSnapshot>> &cases);

class ChromeTraceWriter;

/** Export one case's stitched trails as per-stage slices bound by
 *  Perfetto flow events ('s'/'t'/'f') on the given writer. */
void exportPathFlows(ChromeTraceWriter &w, const std::string &label,
                     const PathSnapshot &snap);

} // namespace sriov::obs

#endif // SRIOV_OBS_PATHTRACE_HPP
