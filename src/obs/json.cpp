#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "sim/log.hpp"

namespace sriov::obs {

bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::error_code ec;
    std::filesystem::path p(path);
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    out << content << '\n';
    return bool(out);
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

// --- JsonWriter ---------------------------------------------------------

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        if (!out_.empty())
            sim::fatal("JsonWriter: multiple top-level values");
        return;
    }
    if (stack_.back() == Scope::Object && !key_pending_)
        sim::fatal("JsonWriter: object value without a key");
    if (stack_.back() == Scope::Array || !key_pending_) {
        if (!first_.back())
            out_ += ',';
    }
    first_.back() = false;
    key_pending_ = false;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        sim::fatal("JsonWriter: key outside an object");
    if (key_pending_)
        sim::fatal("JsonWriter: two keys in a row");
    if (!first_.back())
        out_ += ',';
    first_.back() = false;
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\":";
    key_pending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    out_ += '{';
    stack_.push_back(Scope::Object);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Scope::Object || key_pending_)
        sim::fatal("JsonWriter: unbalanced endObject");
    out_ += '}';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    out_ += '[';
    stack_.push_back(Scope::Array);
    first_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Scope::Array)
        sim::fatal("JsonWriter: unbalanced endArray");
    out_ += ']';
    stack_.pop_back();
    first_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    beforeValue();
    out_ += jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    beforeValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    beforeValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beforeValue();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::str() const
{
    if (!stack_.empty())
        sim::fatal("JsonWriter: %zu unclosed scope(s)", stack_.size());
    return out_;
}

// --- JsonValue parser ---------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string *err)
        : text_(text), err_(err)
    {}

    std::optional<JsonValue>
    run()
    {
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return v;
    }

  private:
    std::optional<JsonValue>
    fail(const std::string &why)
    {
        if (err_ && err_->empty())
            *err_ = why + " (at offset " + std::to_string(pos_) + ")";
        return std::nullopt;
    }

    bool
    error(const std::string &why)
    {
        fail(why);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (++depth_ > kMaxDepth)
            return error("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return error("unexpected end of input");
        bool ok = false;
        char c = text_[pos_];
        switch (c) {
          case '{': ok = parseObject(out); break;
          case '[': ok = parseArray(out); break;
          case '"':
            out.type = JsonValue::Type::String;
            ok = parseString(out.str);
            break;
          case 't':
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            ok = literal("true") || error("bad literal");
            break;
          case 'f':
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            ok = literal("false") || error("bad literal");
            break;
          case 'n':
            out.type = JsonValue::Type::Null;
            ok = literal("null") || error("bad literal");
            break;
          default:
            ok = parseNumber(out);
        }
        --depth_;
        return ok;
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return error("expected a value");
        double v = 0;
        auto res = std::from_chars(text_.data() + start,
                                   text_.data() + pos_, v);
        if (res.ec != std::errc() || res.ptr != text_.data() + pos_)
            return error("malformed number");
        out.type = JsonValue::Type::Number;
        out.number = v;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return error("expected string");
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return error("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= unsigned(h - 'A' + 10);
                    else
                        return error("bad \\u escape");
                }
                // UTF-8 encode (surrogate pairs not needed for the
                // escapes this layer emits; encode them verbatim).
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xc0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3f));
                } else {
                    out += char(0xe0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3f));
                    out += char(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return error("unknown escape");
            }
        }
        return error("unterminated string");
    }

    bool
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        consume('{');
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return error("expected ':' in object");
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return error("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        consume('[');
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return error("expected ',' or ']' in array");
        }
    }

    static constexpr int kMaxDepth = 64;

    std::string_view text_;
    std::string *err_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::optional<JsonValue>
JsonValue::parse(std::string_view text, std::string *err)
{
    if (err)
        err->clear();
    return Parser(text, err).run();
}

std::optional<JsonValue>
JsonValue::parseTolerant(std::string_view text, std::string *err)
{
    std::size_t line = 0;
    while (line < text.size()) {
        std::size_t c = line;
        while (c < text.size() && (text[c] == ' ' || text[c] == '\t'))
            ++c;
        if (c < text.size() && (text[c] == '{' || text[c] == '['))
            return parse(text.substr(c), err);
        std::size_t nl = text.find('\n', line);
        if (nl == std::string_view::npos)
            break;
        line = nl + 1;
    }
    // No document start found: let parse() produce the usual error.
    return parse(text, err);
}

} // namespace sriov::obs
