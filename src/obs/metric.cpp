#include "obs/metric.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace sriov::obs {

const char *
metricKindName(MetricKind k)
{
    switch (k) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Accumulator: return "accumulator";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Rate: return "rate";
      case MetricKind::Series: return "series";
      case MetricKind::Histogram: return "histogram";
    }
    return "?";
}

const MetricSample *
MetricSnapshot::find(const std::string &name) const
{
    for (const auto &s : samples) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

double
MetricSnapshot::value(const std::string &name, double fallback) const
{
    const MetricSample *s = find(name);
    return s != nullptr ? s->value : fallback;
}

bool
MetricRegistry::matchesPrefix(const std::string &name,
                              const std::string &prefix)
{
    if (prefix.empty())
        return true;
    if (name.size() < prefix.size()
        || name.compare(0, prefix.size(), prefix) != 0)
        return false;
    return name.size() == prefix.size() || name[prefix.size()] == '.';
}

std::string
MetricRegistry::join(const std::string &a, const std::string &b)
{
    if (a.empty())
        return b;
    if (b.empty())
        return a;
    return a + "." + b;
}

void
MetricRegistry::insert(std::string name, Entry e)
{
    if (name.empty())
        sim::fatal("MetricRegistry: empty metric name");
    auto [it, inserted] = entries_.emplace(std::move(name), std::move(e));
    if (!inserted)
        sim::fatal("MetricRegistry: duplicate metric '%s'",
                   it->first.c_str());
}

void
MetricRegistry::add(std::string name, const sim::Counter *c)
{
    Entry e;
    e.kind = MetricKind::Counter;
    e.counter = c;
    insert(std::move(name), std::move(e));
}

void
MetricRegistry::add(std::string name, const sim::Accumulator *a)
{
    Entry e;
    e.kind = MetricKind::Accumulator;
    e.accum = a;
    insert(std::move(name), std::move(e));
}

void
MetricRegistry::add(std::string name, const sim::RateWindow *r)
{
    Entry e;
    e.kind = MetricKind::Rate;
    e.rate = r;
    insert(std::move(name), std::move(e));
}

void
MetricRegistry::add(std::string name, const sim::Series *s)
{
    Entry e;
    e.kind = MetricKind::Series;
    e.series = s;
    insert(std::move(name), std::move(e));
}

void
MetricRegistry::add(std::string name, const Histogram *h)
{
    Entry e;
    e.kind = MetricKind::Histogram;
    e.hist = h;
    insert(std::move(name), std::move(e));
}

void
MetricRegistry::addGauge(std::string name, GaugeFn fn)
{
    Entry e;
    e.kind = MetricKind::Gauge;
    e.gauge = std::move(fn);
    insert(std::move(name), std::move(e));
}

bool
MetricRegistry::contains(const std::string &name) const
{
    return entries_.count(name) > 0;
}

void
MetricRegistry::remove(const std::string &name)
{
    entries_.erase(name);
}

void
MetricRegistry::removePrefix(const std::string &prefix)
{
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (matchesPrefix(it->first, prefix))
            it = entries_.erase(it);
        else
            ++it;
    }
}

std::vector<std::string>
MetricRegistry::names(const std::string &prefix) const
{
    std::vector<std::string> out;
    for (const auto &[name, e] : entries_) {
        if (matchesPrefix(name, prefix))
            out.push_back(name);
    }
    return out;
}

MetricSnapshot
MetricRegistry::snapshot(const std::string &prefix) const
{
    MetricSnapshot snap;
    for (const auto &[name, e] : entries_) {
        if (!matchesPrefix(name, prefix))
            continue;
        MetricSample s;
        s.name = name;
        s.kind = e.kind;
        switch (e.kind) {
          case MetricKind::Counter:
            s.value = double(e.counter->value());
            break;
          case MetricKind::Accumulator:
            s.value = e.accum->value();
            s.count = double(e.accum->samples());
            s.mean = e.accum->mean();
            break;
          case MetricKind::Gauge:
            s.value = e.gauge ? e.gauge() : 0.0;
            break;
          case MetricKind::Rate:
            s.value = e.rate->total();
            break;
          case MetricKind::Series:
            s.count = double(e.series->samples().size());
            s.value = e.series->samples().empty()
                          ? 0.0
                          : e.series->samples().back().second;
            break;
          case MetricKind::Histogram:
            s.value = e.hist->sum();
            s.count = e.hist->count();
            s.mean = e.hist->mean();
            s.min = e.hist->min();
            s.max = e.hist->max();
            s.p50 = e.hist->percentile(50);
            s.p99 = e.hist->percentile(99);
            break;
        }
        snap.samples.push_back(std::move(s));
    }
    return snap;
}

const Histogram *
MetricRegistry::histogram(const std::string &name) const
{
    auto it = entries_.find(name);
    return it != entries_.end() ? it->second.hist : nullptr;
}

const sim::Series *
MetricRegistry::series(const std::string &name) const
{
    auto it = entries_.find(name);
    return it != entries_.end() ? it->second.series : nullptr;
}

} // namespace sriov::obs
