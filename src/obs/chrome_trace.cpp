#include "obs/chrome_trace.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace sriov::obs {

namespace {

/** trace_event timestamps are microseconds; keep sub-µs as fraction. */
double
psToUs(std::int64_t ps)
{
    return double(ps) / 1e6;
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(std::size_t max_events)
    : max_events_(max_events)
{}

ChromeTraceWriter::~ChromeTraceWriter()
{
    detachAll();
}

ChromeTraceWriter::Track
ChromeTraceWriter::track(const std::string &process, const std::string &thread)
{
    auto [pit, pnew] = pids_.try_emplace(process, int(pids_.size()) + 1);
    (void)pnew;
    int pid = pit->second;
    auto [tit, tnew] =
        tids_.try_emplace({pid, thread}, int(tids_.size()) + 1);
    (void)tnew;
    return Track{pid, tit->second};
}

void
ChromeTraceWriter::push(Event e)
{
    if (events_.size() >= max_events_) {
        ++dropped_;
        ++dropped_by_track_[{e.pid, e.tid}];
        return;
    }
    events_.push_back(std::move(e));
}

void
ChromeTraceWriter::addSpan(Track t, std::string name, sim::Time start,
                           sim::Time end)
{
    if (end < start)
        end = start;
    push(Event{'X', t.pid, t.tid, std::move(name), start.picos(),
               (end - start).picos()});
}

void
ChromeTraceWriter::addInstant(Track t, std::string name, sim::Time when)
{
    push(Event{'i', t.pid, t.tid, std::move(name), when.picos(), 0});
}

void
ChromeTraceWriter::addFlow(Track t, std::string name,
                           std::uint64_t flow_id, char phase,
                           sim::Time when)
{
    if (phase != 's' && phase != 't' && phase != 'f')
        return;
    push(Event{phase, t.pid, t.tid, std::move(name), when.picos(), 0,
               flow_id});
}

void
ChromeTraceWriter::attachCpu(sim::CpuServer &cpu, const std::string &process)
{
    cpu_tracks_[&cpu] = track(process, cpu.name());
    cpu.setSpanTap(this);
    if (std::find(attached_cpus_.begin(), attached_cpus_.end(), &cpu)
        == attached_cpus_.end())
        attached_cpus_.push_back(&cpu);
}

void
ChromeTraceWriter::attachEventQueue(sim::EventQueue &eq,
                                    const std::string &process)
{
    queue_tracks_[&eq] = track(process, "events");
    eq.addExecHook(this);
    if (std::find(attached_queues_.begin(), attached_queues_.end(), &eq)
        == attached_queues_.end())
        attached_queues_.push_back(&eq);
}

void
ChromeTraceWriter::importTracer(const sim::Tracer &t,
                                const std::string &process)
{
    for (const sim::TraceRecord &r : t.records()) {
        Track tr = track(process, sim::traceCatName(r.cat));
        addInstant(tr, r.text, r.when);
    }
}

void
ChromeTraceWriter::detachAll()
{
    for (sim::CpuServer *cpu : attached_cpus_) {
        if (cpu->spanTap() == this)
            cpu->setSpanTap(nullptr);
    }
    attached_cpus_.clear();
    for (sim::EventQueue *eq : attached_queues_)
        eq->removeExecHook(this);
    attached_queues_.clear();
}

void
ChromeTraceWriter::onCpuSpan(const sim::CpuServer &cpu, const std::string &tag,
                             sim::Time start, sim::Time end)
{
    auto it = cpu_tracks_.find(&cpu);
    if (it == cpu_tracks_.end())
        return;
    addSpan(it->second, tag.empty() ? std::string("work") : tag, start, end);
}

void
ChromeTraceWriter::onEventStart(sim::Time when, std::uint64_t seq,
                                const char *tag)
{
    (void)when;
    (void)seq;
    (void)tag;
}

void
ChromeTraceWriter::onEventEnd(sim::Time when, std::uint64_t seq,
                              const char *tag)
{
    (void)seq;
    // One instant per executed event would swamp the viewer and the
    // buffer; only tagged events (interrupts, timers, migration steps)
    // are interesting enough to mark.
    if (tag == nullptr || *tag == '\0')
        return;
    for (const auto &[eq, tr] : queue_tracks_) {
        (void)eq;
        addInstant(tr, tag, when);
        break;
    }
}

std::string
ChromeTraceWriter::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("traceEvents");
    w.beginArray();

    // Metadata first: name the process and thread rows.
    for (const auto &[name, pid] : pids_) {
        w.beginObject();
        w.key("ph").value("M");
        w.key("pid").value(std::int64_t(pid));
        w.key("tid").value(std::int64_t(0));
        w.key("name").value("process_name");
        w.key("args");
        w.beginObject();
        w.key("name").value(name);
        w.endObject();
        w.endObject();
    }
    for (const auto &[key, tid] : tids_) {
        w.beginObject();
        w.key("ph").value("M");
        w.key("pid").value(std::int64_t(key.first));
        w.key("tid").value(std::int64_t(tid));
        w.key("name").value("thread_name");
        w.key("args");
        w.beginObject();
        w.key("name").value(key.second);
        w.endObject();
        w.endObject();
    }

    for (const Event &e : events_) {
        w.beginObject();
        w.key("ph").value(std::string(1, e.phase));
        w.key("pid").value(std::int64_t(e.pid));
        w.key("tid").value(std::int64_t(e.tid));
        w.key("name").value(e.name);
        w.key("ts").value(psToUs(e.ts_ps));
        if (e.phase == 'X') {
            w.key("dur").value(psToUs(e.dur_ps));
        } else if (e.phase == 'i') {
            w.key("s").value("t");
        } else if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
            w.key("cat").value("pathtrace");
            w.key("id").value(std::uint64_t(e.flow_id));
            if (e.phase != 's')
                w.key("bp").value("e"); // bind to the enclosing slice
        }
        w.endObject();
    }

    w.endArray();
    w.key("displayTimeUnit").value("ns");
    if (dropped_ > 0) {
        w.key("sriovDroppedEvents").value(std::uint64_t(dropped_));
        // Reverse the interning maps so each drop count carries its
        // human-readable (process, thread) track name.
        std::map<int, std::string> pname;
        for (const auto &[name, pid] : pids_)
            pname[pid] = name;
        std::map<std::pair<int, int>, std::string> tname;
        for (const auto &[key, tid] : tids_)
            tname[{key.first, tid}] = key.second;
        w.key("sriovDroppedByTrack").beginArray();
        for (const auto &[trk, n] : dropped_by_track_) {
            w.beginObject();
            w.key("pid").value(std::int64_t(trk.first));
            w.key("tid").value(std::int64_t(trk.second));
            auto pit = pname.find(trk.first);
            w.key("process").value(pit != pname.end() ? pit->second
                                                      : std::string());
            auto tit = tname.find(trk);
            w.key("thread").value(tit != tname.end() ? tit->second
                                                     : std::string());
            w.key("dropped").value(std::uint64_t(n));
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
    return w.str();
}

bool
ChromeTraceWriter::writeTo(const std::string &path) const
{
    return writeTextFile(path, toJson());
}

} // namespace sriov::obs
