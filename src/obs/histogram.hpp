/**
 * @file
 * Histogram: a log-bucketed distribution recorder.
 *
 * The paper reports most quantities as means; the observability layer
 * keeps full distributions for the ones that matter for tail behavior
 * (interrupt-delivery latency, VM-exit cost, ring occupancy, TCP RTT)
 * at a fixed, tiny cost: bucket bounds grow geometrically, so 64
 * buckets cover twelve decades and record() is a binary search over a
 * precomputed bound table — no allocation, no per-sample storage.
 *
 * Weighted recording supports the simulator's amortized accounting
 * (e.g. 1.13 non-EOI APIC accesses per interrupt recorded as one
 * sample of the per-access cost with weight 1.13).
 */

#ifndef SRIOV_OBS_HISTOGRAM_HPP
#define SRIOV_OBS_HISTOGRAM_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "sim/fluid.hpp"

namespace sriov::obs {

class Histogram
{
  public:
    struct Params
    {
        /** Upper bound of the first bucket (which also catches <= 0). */
        double lo = 1.0;
        /** Geometric growth factor between consecutive bounds. */
        double growth = 2.0;
        /** Total bucket count; the last bucket is unbounded above. */
        std::size_t buckets = 64;
    };

    Histogram();
    explicit Histogram(Params p);
    Histogram(double lo, double growth, std::size_t buckets);

    /** Record one sample of value @p v with weight @p w. */
    void record(double v, double w = 1.0);

    /** Total recorded weight. */
    double count() const { return count_; }
    bool empty() const { return count_ == 0; }
    /** Weighted sum of sample values. */
    double sum() const { return sum_; }
    double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
    /** Smallest / largest recorded value (0 when empty). */
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }

    std::size_t bucketCount() const { return weights_.size(); }
    /** Inclusive upper bound of bucket @p i (infinity for the last). */
    double bucketUpperBound(std::size_t i) const;
    double bucketWeight(std::size_t i) const { return weights_.at(i); }
    /** Index of the bucket @p v falls into. */
    std::size_t bucketIndex(double v) const;

    /**
     * Weighted percentile, @p p in [0, 100]: the upper bound of the
     * bucket where the cumulative weight first reaches p% of the
     * total, clamped to the observed [min, max]. Exact when all
     * samples share one value; otherwise accurate to one bucket.
     */
    double percentile(double p) const;

    void reset();

    /** One-line summary: "n=.. mean=.. p50=.. p99=.. max=..". */
    std::string summary() const;

    /** Fluid-mode slots (sim/fluid.hpp): per-bucket weights scale
     *  linearly in steady state; min/max verify as constant. */
    void
    fluidVisit(sim::FluidVisitor &v, const char *name)
    {
        for (double &w : weights_)
            v.f64(name, w);
        v.f64(name, count_);
        v.f64(name, sum_);
        v.f64(name, min_);
        v.f64(name, max_);
    }

  private:
    Params params_;
    std::vector<double> bounds_;     ///< finite bounds; size = buckets-1
    std::vector<double> weights_;    ///< size = buckets
    double count_ = 0;
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
};

} // namespace sriov::obs

#endif // SRIOV_OBS_HISTOGRAM_HPP
