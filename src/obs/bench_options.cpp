#include "obs/bench_options.hpp"

#include <cstdlib>
#include <cstring>

#include "obs/pathtrace.hpp"
#include "sim/fluid.hpp"
#include "sim/shard.hpp"
#include "sim/thinning.hpp"

namespace sriov::obs {

namespace {

/** "--out=dir" → "dir"; nullptr when @p arg isn't @p flag. */
const char *
matchFlag(const char *arg, const char *flag)
{
    std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) == 0 && arg[n] == '=')
        return arg + n + 1;
    return nullptr;
}

bool
parseCat(const std::string &name, sim::TraceCat *out)
{
    if (name == "irq") { *out = sim::TraceCat::Irq; return true; }
    if (name == "nic") { *out = sim::TraceCat::Nic; return true; }
    if (name == "driver") { *out = sim::TraceCat::Driver; return true; }
    if (name == "backend") { *out = sim::TraceCat::Backend; return true; }
    if (name == "migration") {
        *out = sim::TraceCat::Migration;
        return true;
    }
    return false;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) {
            out.push_back(list.substr(pos));
            break;
        }
        out.push_back(list.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return out;
}

/** "--jobs" values: anything unparsable or zero degrades to 1. */
unsigned
parseJobs(const char *s)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0' || v == 0)
        return 1;
    return static_cast<unsigned>(v);
}

/** "--shards" values: unparsable degrades to 0 (legacy engine). */
unsigned
parseShards(const char *s)
{
    char *end = nullptr;
    unsigned long v = std::strtoul(s, &end, 10);
    if (end == s || *end != '\0')
        return 0;
    return static_cast<unsigned>(v);
}

/** "--fluid" values: bare "--fluid", "1" and "on" warp; "exact" runs
 *  the fluid schedule without warping; "off"/"0" (and unknown
 *  strings) keep the seed schedule. */
sim::FluidMode
parseFluid(const char *s)
{
    if (s == nullptr || *s == '\0' || std::strcmp(s, "1") == 0
        || std::strcmp(s, "on") == 0)
        return sim::FluidMode::On;
    if (std::strcmp(s, "exact") == 0)
        return sim::FluidMode::Exact;
    return sim::FluidMode::Off;
}

/** "--pathtrace" values; unknown strings degrade to Off. "--pathtrace"
 *  with no value (or "1") means full. */
PathTraceMode
parsePathTraceMode(const char *s, bool *requested)
{
    *requested = true;
    if (s == nullptr || *s == '\0' || std::strcmp(s, "1") == 0
        || std::strcmp(s, "full") == 0)
        return PathTraceMode::Full;
    if (std::strcmp(s, "sampled") == 0)
        return PathTraceMode::Sampled;
    if (std::strcmp(s, "off") == 0 || std::strcmp(s, "0") == 0)
        *requested = false;
    return PathTraceMode::Off;
}

} // namespace

void
BenchOptions::parseTraceArg(const std::string &arg)
{
    trace_requested_ = true;
    if (arg.empty() || arg == "1") {
        all_cats_ = true;
        return;
    }
    // A pure category list ("irq,nic") selects what to trace; anything
    // else ("out/fig.trace.json") is the output path, all categories.
    std::vector<sim::TraceCat> cats;
    bool all = false;
    for (const std::string &tok : splitCommas(arg)) {
        sim::TraceCat c;
        if (tok == "all") {
            all = true;
        } else if (parseCat(tok, &c)) {
            cats.push_back(c);
        } else {
            trace_path_ = arg;
            all_cats_ = true;
            return;
        }
    }
    cats_ = std::move(cats);
    all_cats_ = all;
}

BenchOptions
BenchOptions::parse(int argc, char **argv, const std::string &bench)
{
    BenchOptions o;
    o.bench_ = bench;

    if (const char *env = std::getenv("SRIOV_BENCH_OUT");
        env != nullptr && *env != '\0')
        o.out_dir_ = env;
    if (const char *env = std::getenv("SRIOV_TRACE");
        env != nullptr && *env != '\0')
        o.parseTraceArg(env);
    if (const char *env = std::getenv("SRIOV_BENCH_JOBS");
        env != nullptr && *env != '\0')
        o.jobs_ = parseJobs(env);
    if (const char *env = std::getenv("SRIOV_NO_THIN");
        env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0)
        o.no_thin_ = true;
    if (const char *env = std::getenv("SRIOV_SHARDS");
        env != nullptr && *env != '\0')
        o.shards_ = parseShards(env);
    if (const char *env = std::getenv("SRIOV_FLUID");
        env != nullptr && *env != '\0')
        o.fluid_mode_ = parseFluid(env);
    PathTraceMode pt_mode = PathTraceMode::Off;
    if (const char *env = std::getenv("SRIOV_PATHTRACE");
        env != nullptr && *env != '\0')
        pt_mode = parsePathTraceMode(env, &o.pathtrace_requested_);

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (const char *v = matchFlag(arg, "--out")) {
            o.out_dir_ = v;
        } else if (const char *v = matchFlag(arg, "--jobs")) {
            o.jobs_ = parseJobs(v);
        } else if (const char *v = matchFlag(arg, "--trace")) {
            o.parseTraceArg(v);
        } else if (std::strcmp(arg, "--trace") == 0) {
            o.parseTraceArg("");
        } else if (std::strcmp(arg, "--no-thin") == 0) {
            o.no_thin_ = true;
        } else if (const char *v = matchFlag(arg, "--shards")) {
            o.shards_ = parseShards(v);
        } else if (const char *v = matchFlag(arg, "--fluid")) {
            o.fluid_mode_ = parseFluid(v);
        } else if (std::strcmp(arg, "--fluid") == 0) {
            o.fluid_mode_ = sim::FluidMode::On;
        } else if (const char *v = matchFlag(arg, "--pathtrace")) {
            pt_mode = parsePathTraceMode(v, &o.pathtrace_requested_);
        } else if (std::strcmp(arg, "--pathtrace") == 0) {
            pt_mode = parsePathTraceMode(nullptr,
                                         &o.pathtrace_requested_);
        } else if (std::strcmp(arg, "--help") == 0
                   || std::strcmp(arg, "-h") == 0) {
            o.help_ = true;
        } else {
            o.extra_.emplace_back(arg);
        }
    }
    // Must happen before any testbed is built: components sample the
    // global switches at construction.
    sim::setThinning(!o.no_thin_);
    sim::setShardCount(o.shards_);
    sim::setFluidMode(o.fluid_mode_);
    setPathTraceMode(pt_mode);
    return o;
}

std::string
BenchOptions::usage(const std::string &bench)
{
    return "usage: " + bench + " [options]\n"
           "  --out=<dir>    write " + bench + ".json report into <dir>\n"
           "                 (env fallback: SRIOV_BENCH_OUT)\n"
           "  --trace[=<arg>] capture a Chrome trace_event JSON; <arg>\n"
           "                 is a category list (irq,nic,driver,\n"
           "                 backend,migration,all) or an output path\n"
           "                 (env fallback: SRIOV_TRACE)\n"
           "  --jobs=<n>     run independent sweep cases on <n> host\n"
           "                 threads; results and reports are identical\n"
           "                 to --jobs=1, just faster\n"
           "                 (env fallback: SRIOV_BENCH_JOBS)\n"
           "  --no-thin      exact event-per-hop simulation instead of\n"
           "                 the default burst-coalesced event thinning;\n"
           "                 reports are byte-identical, runs slower\n"
           "                 (env fallback: SRIOV_NO_THIN)\n"
           "  --shards=<n>   partition the testbed into per-port islands\n"
           "                 run by the conservative shard engine on up\n"
           "                 to <n> worker threads (0 = legacy engine,\n"
           "                 the default; n=1 = sequential oracle).\n"
           "                 Reports are byte-identical for every n >= 1\n"
           "                 (env fallback: SRIOV_SHARDS)\n"
           "  --fluid[=on|exact|off]\n"
           "                 hybrid fluid/packet mode: warp over\n"
           "                 provably periodic steady-state stretches\n"
           "                 instead of simulating each packet event.\n"
           "                 \"exact\" runs the same fluid schedule\n"
           "                 with every event (equivalence reference:\n"
           "                 integer counters match \"on\" exactly;\n"
           "                 see DESIGN.md §14). Off by default;\n"
           "                 ignored on sharded builds\n"
           "                 (env fallback: SRIOV_FLUID)\n"
           "  --pathtrace[=off|sampled|full]\n"
           "                 causal packet-path tracing: writes " + bench
               + ".pathtrace.json\n"
           "                 (+ .pathtrace.trace.json Perfetto flows)\n"
           "                 next to the report. Non-perturbing: the\n"
           "                 report and event digest are byte-identical\n"
           "                 in every mode (env fallback:\n"
           "                 SRIOV_PATHTRACE)\n"
           "  --help         this text\n";
}

const char *
BenchOptions::fluidModeName() const
{
    switch (fluid_mode_) {
    case sim::FluidMode::Off: break;
    case sim::FluidMode::Exact: return "exact";
    case sim::FluidMode::On: return "on";
    }
    return "off";
}

std::string
BenchOptions::reportPath() const
{
    if (out_dir_.empty())
        return "";
    std::string p = out_dir_;
    if (p.back() != '/')
        p += '/';
    return p + bench_ + ".json";
}

std::string
BenchOptions::perfPath() const
{
    if (out_dir_.empty())
        return "";
    std::string p = out_dir_;
    if (p.back() != '/')
        p += '/';
    return p + bench_ + ".perf.json";
}

std::string
BenchOptions::pathtracePath() const
{
    if (out_dir_.empty())
        return "";
    std::string p = out_dir_;
    if (p.back() != '/')
        p += '/';
    return p + bench_ + ".pathtrace.json";
}

std::string
BenchOptions::pathtraceFlowsPath() const
{
    if (out_dir_.empty())
        return "";
    std::string p = out_dir_;
    if (p.back() != '/')
        p += '/';
    return p + bench_ + ".pathtrace.trace.json";
}

std::string
BenchOptions::flightrecPath() const
{
    if (out_dir_.empty())
        return "";
    std::string p = out_dir_;
    if (p.back() != '/')
        p += '/';
    return p + bench_ + ".flightrec.json";
}

std::string
BenchOptions::tracePath() const
{
    if (!trace_requested_)
        return "";
    if (!trace_path_.empty())
        return trace_path_;
    std::string dir = out_dir_.empty() ? std::string(".") : out_dir_;
    if (dir.back() != '/')
        dir += '/';
    return dir + bench_ + ".trace.json";
}

void
BenchOptions::applyTraceCategories(sim::Tracer &t) const
{
    if (all_cats_ || cats_.empty()) {
        t.enableAll();
        return;
    }
    for (sim::TraceCat c : cats_)
        t.enable(c);
}

} // namespace sriov::obs
