/**
 * @file
 * SimProfiler: self-profiling of the simulator itself.
 *
 * Answers "where does the host CPU go when this bench is slow?" by
 * measuring host wall-clock (steady_clock) around every executed event
 * and attributing it to the event's tag. This is about the simulator's
 * own performance, not simulated time — useful when a fig run takes
 * minutes and the culprit is one chatty component.
 *
 * Installed as an EventQueue::ExecHook; when not installed the queue
 * pays one branch per event.
 */

#ifndef SRIOV_OBS_PROFILER_HPP
#define SRIOV_OBS_PROFILER_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace sriov::obs {

class SimProfiler : public sim::EventQueue::ExecHook
{
  public:
    struct TagStats
    {
        std::string tag;            ///< "" shown as "(untagged)"
        std::uint64_t events = 0;
        std::uint64_t host_ns = 0;

        double
        meanNs() const
        {
            return events ? double(host_ns) / double(events) : 0.0;
        }
    };

    ~SimProfiler() override;

    /** Begin profiling @p eq (adds this as an exec hook). */
    void attach(sim::EventQueue &eq);
    void detach();

    void onEventStart(sim::Time when, std::uint64_t seq,
                      const char *tag) override;
    void onEventEnd(sim::Time when, std::uint64_t seq,
                    const char *tag) override;

    std::uint64_t totalEvents() const { return total_events_; }
    std::uint64_t totalHostNs() const { return total_ns_; }

    /** Per-tag totals, sorted by host time descending. */
    std::vector<TagStats> byTag() const;

    /**
     * Per-component totals: a tag "intr.timer" belongs to component
     * "intr" (everything before the first dot).
     */
    std::vector<TagStats> byComponent() const;

    /** Human-readable table of byTag(). */
    std::string toString() const;

    void reset();

  private:
    // The profiler attributes *host* time to event tags; wallclock is
    // its whole point and its output never feeds back into sim state.
    // simlint:allow(no-wallclock): host-time profiler by design
    using Clock = std::chrono::steady_clock;

    // Keyed by tag pointer: schedule sites pass string literals, so the
    // hot path is a pointer-keyed map lookup, not a string hash.
    // Distinct pointers with equal text are merged at reporting time.
    std::map<const char *, TagStats> stats_;
    sim::EventQueue *attached_ = nullptr;
    Clock::time_point start_;
    const char *current_tag_ = nullptr;
    bool in_event_ = false;
    std::uint64_t total_events_ = 0;
    std::uint64_t total_ns_ = 0;
};

} // namespace sriov::obs

#endif // SRIOV_OBS_PROFILER_HPP
