#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>

namespace sriov::obs {

SimProfiler::~SimProfiler()
{
    detach();
}

void
SimProfiler::attach(sim::EventQueue &eq)
{
    detach();
    attached_ = &eq;
    eq.addExecHook(this);
}

void
SimProfiler::detach()
{
    if (attached_ != nullptr) {
        attached_->removeExecHook(this);
        attached_ = nullptr;
    }
}

void
SimProfiler::onEventStart(sim::Time when, std::uint64_t seq, const char *tag)
{
    (void)when;
    (void)seq;
    current_tag_ = tag;
    in_event_ = true;
    start_ = Clock::now();
}

void
SimProfiler::onEventEnd(sim::Time when, std::uint64_t seq, const char *tag)
{
    (void)when;
    (void)seq;
    if (!in_event_)
        return;
    auto ns = std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                Clock::now() - start_)
                                .count());
    in_event_ = false;
    TagStats &s = stats_[tag != nullptr ? tag : current_tag_];
    ++s.events;
    s.host_ns += ns;
    ++total_events_;
    total_ns_ += ns;
}

namespace {

std::vector<SimProfiler::TagStats>
mergeBy(const std::map<const char *, SimProfiler::TagStats> &stats,
        bool component_only)
{
    std::map<std::string, SimProfiler::TagStats> merged;
    for (const auto &[tag, s] : stats) {
        std::string name = tag != nullptr ? tag : "";
        if (name.empty())
            name = "(untagged)";
        if (component_only) {
            std::size_t dot = name.find('.');
            if (dot != std::string::npos)
                name = name.substr(0, dot);
        }
        SimProfiler::TagStats &m = merged[name];
        m.tag = name;
        m.events += s.events;
        m.host_ns += s.host_ns;
    }
    std::vector<SimProfiler::TagStats> out;
    out.reserve(merged.size());
    for (auto &[name, s] : merged) {
        (void)name;
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const SimProfiler::TagStats &a,
                 const SimProfiler::TagStats &b) {
                  if (a.host_ns != b.host_ns)
                      return a.host_ns > b.host_ns;
                  return a.tag < b.tag;
              });
    return out;
}

} // namespace

std::vector<SimProfiler::TagStats>
SimProfiler::byTag() const
{
    return mergeBy(stats_, false);
}

std::vector<SimProfiler::TagStats>
SimProfiler::byComponent() const
{
    return mergeBy(stats_, true);
}

std::string
SimProfiler::toString() const
{
    std::string out = "sim profile: " + std::to_string(total_events_)
                      + " events, "
                      + std::to_string(total_ns_ / 1000000) + " ms host\n";
    char line[160];
    for (const TagStats &s : byTag()) {
        std::snprintf(line, sizeof(line),
                      "  %-28s %12llu ev %10.3f ms %8.0f ns/ev\n",
                      s.tag.c_str(),
                      static_cast<unsigned long long>(s.events),
                      double(s.host_ns) / 1e6, s.meanNs());
        out += line;
    }
    return out;
}

void
SimProfiler::reset()
{
    stats_.clear();
    total_events_ = 0;
    total_ns_ = 0;
    in_event_ = false;
}

} // namespace sriov::obs
