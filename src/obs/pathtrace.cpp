#include "obs/pathtrace.hpp"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"

namespace sriov::obs {

namespace {

constexpr const char *kStageNames[] = {
    "origin",      "guest_tx",   "tx_dma",     "wire_tx",
    "wire_rx",     "l2_classify", "ring_take",  "iommu_xlate",
    "rx_dma",      "msix_raise", "lapic_deliver", "guest_rx",
};
static_assert(sizeof(kStageNames) / sizeof(kStageNames[0])
                  == PathTracer::kStageCount,
              "stage name table out of sync with PathStage");

// The export mode is process-global, set by BenchOptions::parse (or a
// test scope) before any testbed exists and read once per tracer at
// construction. Atomic only so concurrent sweep workers constructing
// tracers read it cleanly under TSan; it is never flipped mid-run.
std::atomic<int> g_mode{int(PathTraceMode::Off)};

std::uint64_t
exportMaskFor(PathTraceMode m)
{
    switch (m) {
    case PathTraceMode::Off:
        return PathTracer::kBaseSampleMask; // flight-recorder rate
    case PathTraceMode::Sampled:
        return 7; // 1 in 8
    case PathTraceMode::Full:
        return 0; // everything
    }
    return PathTracer::kBaseSampleMask;
}

double
psToUs(std::int64_t ps)
{
    return double(ps) * 1e-6;
}

PathStageStat
statFor(PathStage s, const Histogram &h)
{
    PathStageStat st;
    st.stage = pathStageName(s);
    st.count = h.count();
    st.sum_us = h.sum();
    st.mean_us = h.mean();
    st.p50_us = h.percentile(50);
    st.p99_us = h.percentile(99);
    return st;
}

} // namespace

const char *
pathStageName(PathStage s)
{
    auto i = static_cast<unsigned>(s);
    return i < PathTracer::kStageCount ? kStageNames[i] : "invalid";
}

PathStage
pathStageFromName(std::string_view name)
{
    for (unsigned i = 0; i < PathTracer::kStageCount; ++i) {
        if (name == kStageNames[i])
            return static_cast<PathStage>(i);
    }
    return PathStage::Count;
}

PathTraceMode
pathTraceMode()
{
    return static_cast<PathTraceMode>(
        g_mode.load(std::memory_order_relaxed));
}

void
setPathTraceMode(PathTraceMode m)
{
    g_mode.store(int(m), std::memory_order_relaxed);
}

const char *
pathTraceModeName(PathTraceMode m)
{
    switch (m) {
    case PathTraceMode::Off:
        return "off";
    case PathTraceMode::Sampled:
        return "sampled";
    case PathTraceMode::Full:
        return "full";
    }
    return "off";
}

PathTracer::PathTracer(Params p)
    : mode_(pathTraceMode()),
      export_mask_(exportMaskFor(mode_)),
      ring_capacity_(std::max<std::size_t>(1, p.ring_capacity)),
      slot_mask_(0),
      total_hist_(0.125, 1.5, 48)
{
    // Round the slot table to a power of two so the index is a mask.
    std::size_t slots = 1;
    while (slots < std::max<std::size_t>(2, p.slots))
        slots <<= 1;
    slot_mask_ = slots - 1;
    slots_.resize(slots);
    for (auto &h : stage_hist_)
        h = Histogram(0.125, 1.5, 48);
}

std::uint16_t
PathTracer::registerComponent(std::string name)
{
    Ring r;
    r.name = std::move(name);
    r.buf.resize(ring_capacity_);
    rings_.push_back(std::move(r));
    return std::uint16_t(rings_.size() - 1);
}

std::uint64_t
PathTracer::sampleHash(std::uint64_t id)
{
    // splitmix64 finalizer: deterministic, stateless, well mixed even
    // for sequential ids. No wallclock, no RNG — simlint-clean.
    std::uint64_t z = id + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

// simlint: hot
void
PathTracer::push(std::uint16_t comp, std::uint64_t id, PathStage stage,
                 sim::Time when)
{
    Ring &r = rings_[comp];
    PathRecord &rec = r.buf[r.written % ring_capacity_];
    rec.trace_id = id;
    rec.when_ps = when.picos();
    rec.comp = comp;
    rec.stage = std::uint8_t(stage);
    ++r.written;
}

// simlint: hot
void
PathTracer::stamp(std::uint64_t h, PathStage stage, std::uint64_t id,
                  sim::Time when)
{
    // Attribution table: direct-mapped on hash bits above the sampling
    // mask. A slot lives from Origin to GuestRx; stage deltas are
    // derived only at finalize time from the stored per-stage
    // timestamps, which carry the same values in thin and exact event
    // modes — so the histograms (and the path_stages report block) are
    // byte-identical across modes even though the stamp call order is
    // not.
    Slot &s = slots_[(h >> 6) & slot_mask_];
    const unsigned i = static_cast<unsigned>(stage);
    if (stage == PathStage::Origin) {
        ++origin_sampled_;
        if (s.id != 0 && s.id != id)
            ++evicted_;
        s.id = id;
        s.present = 1u;
        s.when[0] = when.picos();
        return;
    }
    if (s.id != id) {
        if (!shard_half_) {
            ++orphans_;
            return;
        }
        // Half-tracer: this island first sees the packet mid-path (it
        // crossed a wire boundary upstream). Adopt the slot as a
        // partial trail; mergeShards() joins it with the Origin half.
        if (s.id != 0)
            ++evicted_;
        s.id = id;
        s.present = 0;
    }
    s.when[i] = when.picos();
    s.present |= (1u << i);
    if (stage == PathStage::GuestRx && !shard_half_) {
        finalize(s);
        s.id = 0;
        s.present = 0;
    }
}

// simlint: hot
void
PathTracer::finalize(Slot &s)
{
    ++completed_;
    const std::int64_t t0 = s.when[0];
    total_hist_.record(psToUs(s.when[kStageCount - 1] - t0));
    std::int64_t prev = t0;
    for (unsigned i = 1; i < kStageCount; ++i) {
        if ((s.present & (1u << i)) == 0)
            continue;
        stage_hist_[i].record(psToUs(s.when[i] - prev));
        prev = s.when[i];
    }
}

PathSnapshot
PathTracer::snapshot() const
{
    PathSnapshot snap;
    snap.mode = pathTraceModeName(mode_);
    snap.export_mask = export_mask_;
    snap.base_mask = kBaseSampleMask;
    snap.records = records_;
    snap.marks = marks_;
    snap.origin_calls = origin_calls_;
    snap.origin_sampled = origin_sampled_;
    snap.completed = completed_;
    snap.evicted = evicted_;
    snap.orphans = orphans_;
    snap.comps.reserve(rings_.size());
    for (const Ring &r : rings_) {
        PathCompDump d;
        d.name = r.name;
        d.capacity = ring_capacity_;
        d.written = r.written;
        const std::uint64_t kept =
            std::min<std::uint64_t>(r.written, ring_capacity_);
        d.records.reserve(std::size_t(kept));
        for (std::uint64_t k = r.written - kept; k < r.written; ++k)
            d.records.push_back(r.buf[k % ring_capacity_]);
        snap.comps.push_back(std::move(d));
    }
    for (unsigned i = 1; i < kStageCount; ++i) {
        if (stage_hist_[i].empty())
            continue;
        snap.stages.push_back(
            statFor(static_cast<PathStage>(i), stage_hist_[i]));
    }
    snap.total = statFor(PathStage::Count, total_hist_);
    snap.total.stage = "total";
    return snap;
}

std::string
PathTracer::dumpText() const
{
    return pathSnapshotDump(snapshot());
}

PathSnapshot
PathTracer::mergeShards(const std::vector<const PathTracer *> &parts)
{
    PathSnapshot snap;
    if (parts.empty())
        return snap;
    snap.mode = pathTraceModeName(parts[0]->mode_);
    snap.export_mask = parts[0]->export_mask_;
    snap.base_mask = kBaseSampleMask;

    // Counters sum; component rings concatenate in parts order with
    // the records' comp field re-based onto the merged comps index.
    for (const PathTracer *p : parts) {
        snap.records += p->records_;
        snap.marks += p->marks_;
        snap.origin_calls += p->origin_calls_;
        snap.origin_sampled += p->origin_sampled_;
        snap.evicted += p->evicted_;
        snap.orphans += p->orphans_;
        const std::uint16_t base = std::uint16_t(snap.comps.size());
        for (const Ring &r : p->rings_) {
            PathCompDump d;
            d.name = r.name;
            d.capacity = p->ring_capacity_;
            d.written = r.written;
            const std::uint64_t kept =
                std::min<std::uint64_t>(r.written, p->ring_capacity_);
            d.records.reserve(std::size_t(kept));
            for (std::uint64_t k = r.written - kept; k < r.written;
                 ++k) {
                PathRecord rec = r.buf[k % p->ring_capacity_];
                rec.comp = std::uint16_t(rec.comp + base);
                d.records.push_back(rec);
            }
            snap.comps.push_back(std::move(d));
        }
    }

    // Join the attribution halves by trace id (first part wins a stage
    // both halves somehow stamped), then finalize completed trails in
    // ascending-id order — a total order independent of islands and
    // worker interleaving — into fresh histograms.
    std::map<std::uint64_t, Slot> joined;
    for (const PathTracer *p : parts) {
        for (const Slot &s : p->slots_) {
            if (s.id == 0)
                continue;
            Slot &m = joined[s.id];
            m.id = s.id;
            for (unsigned i = 0; i < kStageCount; ++i) {
                if ((s.present & (1u << i)) != 0
                    && (m.present & (1u << i)) == 0) {
                    m.when[i] = s.when[i];
                    m.present |= (1u << i);
                }
            }
        }
    }
    Histogram total(0.125, 1.5, 48);
    std::array<Histogram, kStageCount> stage_h;
    for (auto &h : stage_h)
        h = Histogram(0.125, 1.5, 48);
    const std::uint32_t need =
        1u | (1u << (kStageCount - 1));    // Origin and GuestRx
    for (auto &[id, s] : joined) {
        (void)id;
        if ((s.present & need) != need)
            continue;
        ++snap.completed;
        const std::int64_t t0 = s.when[0];
        total.record(psToUs(s.when[kStageCount - 1] - t0));
        std::int64_t prev = t0;
        for (unsigned i = 1; i < kStageCount; ++i) {
            if ((s.present & (1u << i)) == 0)
                continue;
            stage_h[i].record(psToUs(s.when[i] - prev));
            prev = s.when[i];
        }
    }
    for (unsigned i = 1; i < kStageCount; ++i) {
        if (stage_h[i].empty())
            continue;
        snap.stages.push_back(
            statFor(static_cast<PathStage>(i), stage_h[i]));
    }
    snap.total = statFor(PathStage::Count, total);
    snap.total.stage = "total";
    return snap;
}

std::vector<PathTrail>
stitchTrails(const PathSnapshot &snap)
{
    std::map<std::uint64_t, PathTrail> by_id;
    for (const PathCompDump &c : snap.comps) {
        for (const PathRecord &r : c.records) {
            if (r.trace_id == 0)
                continue;
            PathTrail &t = by_id[r.trace_id];
            t.id = r.trace_id;
            t.hops.push_back(r);
        }
    }
    std::vector<PathTrail> trails;
    trails.reserve(by_id.size());
    for (auto &[id, t] : by_id) {
        (void)id;
        std::sort(t.hops.begin(), t.hops.end(),
                  [](const PathRecord &a, const PathRecord &b) {
                      if (a.when_ps != b.when_ps)
                          return a.when_ps < b.when_ps;
                      return a.stage < b.stage;
                  });
        // A trail whose head was overwritten in some ring can no
        // longer be anchored; keep only trails that begin at Origin.
        if (t.hops.front().stage != std::uint8_t(PathStage::Origin))
            continue;
        trails.push_back(std::move(t));
    }
    std::sort(trails.begin(), trails.end(),
              [](const PathTrail &a, const PathTrail &b) {
                  if (a.hops.front().when_ps != b.hops.front().when_ps)
                      return a.hops.front().when_ps
                             < b.hops.front().when_ps;
                  return a.id < b.id;
              });
    return trails;
}

std::string
pathSnapshotDump(const PathSnapshot &snap)
{
    std::ostringstream os;
    os << "--- pathtrace flight recorder (mode=" << snap.mode
       << ", base 1/" << (snap.base_mask + 1) << ") ---\n";
    os << "records=" << snap.records << " marks=" << snap.marks
       << " origins=" << snap.origin_sampled << "/" << snap.origin_calls
       << " completed=" << snap.completed << " evicted=" << snap.evicted
       << " orphans=" << snap.orphans << "\n";
    for (const PathCompDump &c : snap.comps) {
        if (c.written == 0)
            continue;
        os << "ring " << c.name << ": written=" << c.written
           << " kept=" << c.records.size() << "/" << c.capacity << "\n";
    }
    auto trails = stitchTrails(snap);
    os << "trails stitched: " << trails.size() << "\n";
    for (const PathTrail &t : trails) {
        char idbuf[32];
        std::snprintf(idbuf, sizeof idbuf, "0x%016" PRIx64, t.id);
        os << "  " << idbuf << ":";
        for (const PathRecord &r : t.hops) {
            os << " "
               << pathStageName(static_cast<PathStage>(r.stage)) << "@"
               << sim::Time::ps(r.when_ps).toString();
        }
        os << "\n";
    }
    return os.str();
}

namespace {

void
writeStageStat(JsonWriter &w, const PathStageStat &st, double share_pct)
{
    w.beginObject();
    w.kv("stage", st.stage);
    w.kv("count", st.count);
    w.kv("mean_us", st.mean_us);
    w.kv("p50_us", st.p50_us);
    w.kv("p99_us", st.p99_us);
    w.kv("share_pct", share_pct);
    w.endObject();
}

} // namespace

bool
writePathTraceFile(
    const std::string &path, const std::string &bench, const char *kind,
    const std::vector<std::pair<std::string, PathSnapshot>> &cases)
{
    JsonWriter w;
    w.beginObject();
    w.kv("schema", "sriov-pathtrace/v1");
    w.kv("bench", bench);
    w.kv("kind", kind);
    w.key("cases").beginArray();
    for (const auto &[label, snap] : cases) {
        w.beginObject();
        w.kv("label", label);
        w.kv("mode", snap.mode);
        w.kv("export_mask", snap.export_mask);
        w.kv("base_mask", snap.base_mask);
        w.kv("records", snap.records);
        w.kv("marks", snap.marks);
        w.kv("origin_calls", snap.origin_calls);
        w.kv("origin_sampled", snap.origin_sampled);
        w.kv("completed", snap.completed);
        w.kv("evicted", snap.evicted);
        w.kv("orphans", snap.orphans);
        w.key("components").beginArray();
        for (const PathCompDump &c : snap.comps) {
            w.beginObject();
            w.kv("name", c.name);
            w.kv("capacity", std::uint64_t(c.capacity));
            w.kv("written", c.written);
            w.kv("overwritten",
                 c.written > c.capacity
                     ? c.written - std::uint64_t(c.capacity)
                     : 0);
            w.endObject();
        }
        w.endArray();
        const double total_sum = snap.total.sum_us;
        w.key("stages").beginArray();
        for (const PathStageStat &st : snap.stages)
            writeStageStat(w, st,
                           total_sum > 0
                               ? st.sum_us / total_sum * 100.0
                               : 0.0);
        w.endArray();
        w.key("total").beginObject();
        w.kv("count", snap.total.count);
        w.kv("mean_us", snap.total.mean_us);
        w.kv("p50_us", snap.total.p50_us);
        w.kv("p99_us", snap.total.p99_us);
        w.endObject();
        w.key("trails").beginArray();
        for (const PathTrail &t : stitchTrails(snap)) {
            char idbuf[32];
            std::snprintf(idbuf, sizeof idbuf, "0x%016" PRIx64, t.id);
            w.beginObject();
            w.kv("id", idbuf);
            w.key("hops").beginArray();
            for (const PathRecord &r : t.hops) {
                w.beginObject();
                w.kv("stage",
                     pathStageName(static_cast<PathStage>(r.stage)));
                w.kv("comp", snap.comps[r.comp].name);
                w.kv("t_ps", std::int64_t(r.when_ps));
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return writeTextFile(path, w.str());
}

void
exportPathFlows(ChromeTraceWriter &w, const std::string &label,
                const PathSnapshot &snap)
{
    auto trails = stitchTrails(snap);
    for (const PathTrail &t : trails) {
        for (std::size_t i = 0; i < t.hops.size(); ++i) {
            const PathRecord &r = t.hops[i];
            const sim::Time at = sim::Time::ps(r.when_ps);
            // One slice per hop, lasting until the next hop (the last
            // hop gets a token 1 ns so the viewer can render it).
            const sim::Time end =
                i + 1 < t.hops.size()
                    ? sim::Time::ps(t.hops[i + 1].when_ps)
                    : at + sim::Time::ns(1);
            auto track = w.track("pathtrace:" + label,
                                 snap.comps[r.comp].name);
            w.addSpan(track,
                      pathStageName(static_cast<PathStage>(r.stage)),
                      at, end);
            const char phase = i == 0 ? 's'
                               : i + 1 == t.hops.size() ? 'f'
                                                        : 't';
            w.addFlow(track, "pkt", t.id, phase, at);
        }
    }
}

} // namespace sriov::obs
