/**
 * @file
 * MetricRegistry: hierarchically named views over the simulator's
 * existing statistics objects.
 *
 * Components keep owning their sim::Counter / Accumulator / Series /
 * RateWindow members exactly as before — the registry adapts them *by
 * registration* (a name → pointer table), so the hot paths that
 * increment them pay nothing for being observable. Names are
 * dot-separated paths ("server.nic0.vf3.rx_drops"); prefix queries
 * respect component boundaries, so "server.nic0" matches
 * "server.nic0.pf.rx_frames" but not "server.nic00.x".
 *
 * Gauges (callables evaluated at snapshot time) cover values that are
 * derived or whose owner may be resized/destroyed: the closure can
 * re-resolve and bounds-check at sample time.
 */

#ifndef SRIOV_OBS_METRIC_HPP
#define SRIOV_OBS_METRIC_HPP

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "sim/stats.hpp"

namespace sriov::obs {

enum class MetricKind
{
    Counter,
    Accumulator,
    Gauge,
    Rate,
    Series,
    Histogram,
};

const char *metricKindName(MetricKind k);

/** One metric flattened at snapshot time. */
struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::Gauge;
    /** Counter value / accumulator sum / gauge / rate total / histogram
     *  sum / last series sample. */
    double value = 0;
    /** Accumulator samples / histogram weight / series length. */
    double count = 0;
    /** Histogram and accumulator extras (0 otherwise). */
    double mean = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p99 = 0;
};

/** A point-in-time flattening of (a subtree of) the registry. */
struct MetricSnapshot
{
    std::vector<MetricSample> samples;    ///< sorted by name

    const MetricSample *find(const std::string &name) const;
    double value(const std::string &name, double fallback = 0) const;
};

class MetricRegistry
{
  public:
    using GaugeFn = std::function<double()>;

    /** @name Registration. Duplicate names abort. @{ */
    void add(std::string name, const sim::Counter *c);
    void add(std::string name, const sim::Accumulator *a);
    void add(std::string name, const sim::RateWindow *r);
    void add(std::string name, const sim::Series *s);
    void add(std::string name, const Histogram *h);
    void addGauge(std::string name, GaugeFn fn);
    /** @} */

    bool contains(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /** Drop one metric / a whole subtree (component teardown). */
    void remove(const std::string &name);
    void removePrefix(const std::string &prefix);

    /** Registered names under @p prefix ("" = all), sorted. */
    std::vector<std::string> names(const std::string &prefix = "") const;

    /** Flatten current values under @p prefix ("" = all). */
    MetricSnapshot snapshot(const std::string &prefix = "") const;

    /** Direct histogram lookup (percentile queries in tests/benches). */
    const Histogram *histogram(const std::string &name) const;
    /** Direct series lookup (reports export full timelines). */
    const sim::Series *series(const std::string &name) const;

    /** Does @p name match @p prefix at a component boundary? */
    static bool matchesPrefix(const std::string &name,
                              const std::string &prefix);

    /** Join non-empty path components with dots. */
    static std::string join(const std::string &a, const std::string &b);

  private:
    struct Entry
    {
        MetricKind kind;
        const sim::Counter *counter = nullptr;
        const sim::Accumulator *accum = nullptr;
        const sim::RateWindow *rate = nullptr;
        const sim::Series *series = nullptr;
        const Histogram *hist = nullptr;
        GaugeFn gauge;
    };

    void insert(std::string name, Entry e);

    std::map<std::string, Entry> entries_;
};

} // namespace sriov::obs

#endif // SRIOV_OBS_METRIC_HPP
