/**
 * @file
 * Minimal JSON support for the observability layer: a stream-style
 * writer (reports, Chrome traces) and a small recursive-descent parser
 * (schema validation tools and tests that must re-read what the layer
 * emitted). No external dependency; numbers round-trip via
 * std::to_chars shortest form.
 */

#ifndef SRIOV_OBS_JSON_HPP
#define SRIOV_OBS_JSON_HPP

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sriov::obs {

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(std::string_view s);

/**
 * Write @p content (plus a trailing newline) to @p path, creating
 * parent directories. Shared by every JSON-emitting artefact writer
 * (reports, traces, perf sidecars).
 */
bool writeTextFile(const std::string &path, const std::string &content);

/** Shortest-round-trip rendering; NaN/Inf degrade to null. */
std::string jsonNumber(double v);

/**
 * A stack-based JSON emitter. The caller opens objects/arrays and the
 * writer inserts commas; misuse (value without a key inside an object,
 * unbalanced close) aborts, so malformed output cannot be emitted
 * silently.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key for the next value (only valid inside an object). */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(double v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &null();

    /** Shorthand: key(k) + value(v). */
    template <typename T>
    JsonWriter &
    kv(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** The finished document; all scopes must be closed. */
    std::string str() const;

  private:
    enum class Scope { Object, Array };

    void beforeValue();

    std::string out_;
    std::vector<Scope> stack_;
    std::vector<bool> first_;
    bool key_pending_ = false;
};

/** A parsed JSON document (tree of tagged values). */
struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;                            ///< Array
    std::vector<std::pair<std::string, JsonValue>> members;  ///< Object

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isNumber() const { return type == Type::Number; }
    bool isString() const { return type == Type::String; }
    bool isBool() const { return type == Type::Bool; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /**
     * Parse a complete document (trailing garbage is an error).
     * @return nullopt on malformed input, with @p err describing why.
     */
    static std::optional<JsonValue> parse(std::string_view text,
                                          std::string *err = nullptr);

    /**
     * parse(), but tolerant of leading non-JSON noise: lines before
     * the first line whose first non-space character is '{' or '['
     * are skipped. Shell profiles love printing warnings on stdout
     * (conda's auto_activate_base note is the canonical offender), and
     * a `bench > out.json` capture then starts with garbage; the JSON
     * document itself is still validated in full.
     */
    static std::optional<JsonValue> parseTolerant(
        std::string_view text, std::string *err = nullptr);
};

} // namespace sriov::obs

#endif // SRIOV_OBS_JSON_HPP
