/**
 * @file
 * NicPort and SriovNic: the 82576-like Ethernet port model.
 *
 * A NicPort is one physical port: an L2 classifier, a set of RX pools
 * (descriptor ring + completion queue + interrupt-throttle state), a
 * DMA engine on the port's PCIe link, and a wire attachment. Pool 0
 * always belongs to the Physical Function.
 *
 * SriovNic extends the port with the SR-IOV machinery of the paper:
 * an SR-IOV capability on the PF whose VF Enable bit instantiates
 * "light-weight" Virtual Functions (one pool each, 3-vector MSI-X,
 * invisible to bus scans), and a mailbox/doorbell channel per VF for
 * PF↔VF driver communication (Section 4.2).
 *
 * Receive path (paper Section 4.1): frame arrives → L2 switch
 * classifies on MAC+VLAN → descriptor taken from the pool's ring →
 * IOMMU translates the guest-programmed buffer address → DMA across
 * the PCIe link → MSI(-X) raised, subject to the pool's interrupt
 * throttle (ITR). Transmit from a pool whose destination is local is
 * looped back through a second DMA crossing — the inter-VM path of
 * Section 6.3.
 */

#ifndef SRIOV_NIC_SRIOV_NIC_HPP
#define SRIOV_NIC_SRIOV_NIC_HPP

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/dma_engine.hpp"
#include "mem/iommu.hpp"
#include "nic/desc_ring.hpp"
#include "obs/pathtrace.hpp"
#include "nic/l2_switch.hpp"
#include "nic/mailbox.hpp"
#include "nic/packet.hpp"
#include "nic/wire.hpp"
#include "pci/device.hpp"
#include "pci/function.hpp"
#include "sim/deferred_timer.hpp"
#include "sim/ring_buf.hpp"

namespace sriov::nic {

using Pool = L2Switch::Pool;

/** A received frame as the driver sees it after DMA. */
struct RxCompletion
{
    Packet pkt;
    mem::Addr buffer_gpa = 0;
};

class NicPort : public WireEndpoint, public pci::PciDevice
{
  public:
    struct Params
    {
        std::size_t rx_ring_size = 1024;
        /** Default interrupt throttle; 0 = immediate (no moderation). */
        double default_itr_hz = 0.0;
        mem::DmaEngine::Params dma{};
        std::uint16_t vendor_id = 0x8086;
        std::uint16_t pf_device_id = 0x10c9;    ///< 82576
    };

    NicPort(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf,
            Params p, unsigned num_pools);
    ~NicPort() override;

    const std::string &name() const { return name_; }
    pci::PciFunction &pf() { return *pf_; }
    mem::DmaEngine &dma() { return dma_; }
    L2Switch &l2() { return l2_; }

    void attachWire(Wire &w) { wire_ = &w; }
    void setIommu(mem::Iommu *iommu) { iommu_ = iommu; }

    unsigned poolCount() const { return unsigned(pools_.size()); }

    /** Function whose RID/bus-mastering governs DMA for @p pool. */
    pci::PciFunction &functionOf(Pool pool) { return poolFunction(pool); }

    /** @name Driver-facing pool interface. @{ */
    DescRing &rxRing(Pool pool);
    std::vector<RxCompletion> drainRx(Pool pool);
    /**
     * Drain pending completions into @p out (cleared first, capacity
     * retained) — the allocation-free form drivers use per IRQ.
     */
    void drainRxInto(Pool pool, std::vector<RxCompletion> &out);
    std::size_t rxPending(Pool pool) const;
    void setItr(Pool pool, double hz);
    double itr(Pool pool) const;
    /** Transmit a frame from @p pool (DMA fetch, then route). */
    void transmit(Pool pool, const Packet &pkt);
    /** @} */

    /** PF-driver-side: steer @p mac/@p vlan to @p pool. */
    void setPoolFilter(Pool pool, MacAddr mac, std::uint16_t vlan = 0);
    /** Frames matching no filter land here (bridged dom0); -1 = drop. */
    void setDefaultPool(std::optional<Pool> pool) { default_pool_ = pool; }

    /** WireEndpoint: frame arrived from the physical line. */
    void receive(const Packet &pkt) override;

    /** Per-pool statistics. */
    struct PoolStats
    {
        sim::Counter rx_frames;
        sim::Counter rx_bytes;
        sim::Counter rx_drop_ring;      ///< descriptor ring dry
        sim::Counter rx_drop_master;    ///< bus mastering disabled
        sim::Counter rx_drop_iommu;     ///< translation fault
        sim::Counter tx_frames;
        sim::Counter tx_bytes;
        sim::Counter tx_dropped;    ///< TX backlog (descriptor ring) full
        sim::Counter interrupts;
    };

    /** TX backlog bound (descriptor-ring depth equivalent). */
    static constexpr std::size_t kTxBacklogCap = 1024;
    const PoolStats &poolStats(Pool pool) const;
    std::uint64_t rxDropNoMatch() const { return drop_no_match_.value(); }

    /**
     * Attach the path tracer: registers "<name>" for the port's stage
     * stamps (GuestTx, L2Classify, RingTake, IommuXlate, MsixRaise)
     * and "<name>.dma" for the DMA engine's TxDma/RxDma completion
     * stamps. Call before traffic flows (registration allocates).
     */
    void setPathTracer(obs::PathTracer *pt);

    /** Fluid-mode state walk (sim/fluid.hpp): DMA link, per-pool
     *  rings, ledgers, ITR state and stats. Ledgers are settled first
     *  so ring content depends only on the schedule phase. */
    void fluidVisit(sim::FluidVisitor &v);

  protected:
    /** A DMA-completed frame; `ready` is its completion instant (thin
     *  mode queues some entries ahead of time; drains filter on it). */
    struct PendingRx
    {
        RxCompletion rc;
        sim::Time ready;
        /** MsixRaise already stamped for this frame (a later raise in
         *  the same window must not re-stamp it). */
        bool raise_stamped = false;
    };

    /** One frame's stat increment, visible once `at` passes (thin
     *  mode settles these into PoolStats on read). */
    struct StatDelta
    {
        sim::Time at;
        std::uint32_t bytes = 0;
    };

    struct PoolState
    {
        DescRing ring;
        sim::RingBuf<PendingRx> completed;
        double itr_hz = 0.0;
        bool throttle_armed = false;    ///< exact mode: window event out
        bool intr_pending = false;
        /** Thin mode: ITR window end; raises before it are deferred. */
        sim::Time armed_until;
        /** Thin mode: fires at armed_until when a raise is pending. */
        sim::DeferredTimer itr_timer;
        /** Thin mode: RX completion events in flight — while nonzero,
         *  early completion is off so `completed` stays ready-sorted
         *  and same-instant drains see exactly what exact mode sees. */
        unsigned real_inflight = 0;
        /** Thin mode: not-yet-visible per-frame stat increments. */
        sim::RingBuf<StatDelta> rx_ledger;
        sim::RingBuf<StatDelta> tx_ledger;
        PoolStats stats;
        bool enabled = true;
        /** Fluid mode: throttle window snapped onto the sender grid
         *  (zero = derive the window from itr_hz as usual). Keeps the
         *  raise cadence commensurate with the emission grid so a
         *  finite hyperperiod exists (DESIGN.md section 14). */
        sim::Time itr_window;
        /** Fluid mode: ledger id of this pool's interrupt-raise
         *  stream (-1 until the first raise under an installed
         *  ledger). */
        int fluid_flow = -1;

        PoolState(sim::EventQueue &eq, std::size_t ring_size)
            : ring(ring_size), itr_timer(eq, "nic.itr")
        {
        }
    };

    /** Function whose RID/bus-mastering governs DMA for @p pool. */
    virtual pci::PciFunction &poolFunction(Pool pool) = 0;
    /** Raise the pool's interrupt (MSI/MSI-X on the right function). */
    virtual void signalPool(Pool pool) = 0;

    void resizePools(unsigned n);
    PoolState &poolState(Pool pool);
    const PoolState &poolState(Pool pool) const;

    /** The pool's current throttle window (@pre itr_hz > 0): the
     *  fluid-quantized window when one is set, else 1/itr_hz. */
    sim::Time itrWindow(const PoolState &ps) const;
    /** An interrupt actually raised on @p pool: feed the raise stream
     *  into the fluid ledger (no-op when fluid is off). */
    void noteRaise(PoolState &ps, Pool pool);

    /** Deliver a classified frame into a pool (ring + IOMMU + DMA). */
    void deliverToPool(Pool pool, const Packet &pkt);
    void requestInterrupt(Pool pool);
    /** RX DMA completed for @p pool: queue the frame, raise. */
    void finishRx(Pool pool, const Packet &pkt, mem::Addr gpa);
    /** TX DMA completed for @p pool: account, classify, route. */
    void finishTx(Pool pool, const Packet &pkt);
    /** Thin mode: the pool's ITR window expired. */
    void itrExpired(Pool pool);
    /** Thin mode: fold matured ledger entries into the stats. */
    void settleStats(PoolState &ps) const;
    /** Stamp MsixRaise on every completed-and-due frame not yet
     *  stamped; called at each actual interrupt raise. */
    void stampRaise(PoolState &ps);

    sim::EventQueue &eq_;
    std::string name_;
    Params params_;
    bool thin_;
    pci::PciFunction *pf_ = nullptr;    // owned by PciDevice base
    mem::DmaEngine dma_;
    L2Switch l2_;
    Wire *wire_ = nullptr;
    mem::Iommu *iommu_ = nullptr;
    std::vector<std::unique_ptr<PoolState>> pools_;
    std::optional<Pool> default_pool_;
    sim::Counter drop_no_match_;
    obs::PathTracer *pt_ = nullptr;
    std::uint16_t pt_comp_ = 0;
};

/**
 * The SR-IOV-capable port: PF pool 0 plus one pool per enabled VF.
 */
class SriovNic : public NicPort
{
  public:
    struct SriovParams
    {
        Params port{};
        std::uint16_t total_vfs = 7;
        std::uint16_t vf_device_id = 0x10ca;    ///< 82576 VF
    };

    SriovNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf,
             SriovParams p);
    SriovNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf);

    pci::SriovCapability &sriovCap() { return *sriov_cap_; }

    unsigned numVfs() const { return unsigned(vfs_.size()); }
    pci::PciFunction *vf(unsigned i);
    Pool vfPool(unsigned i) const { return Pool(1 + i); }

    VfMailbox &mailbox(unsigned vf_index);

    /** Called after VFs appear/disappear so the platform can (un)plug. */
    void onVfsChanged(std::function<void()> fn)
    {
        vfs_changed_ = std::move(fn);
    }

    /** Called just *before* VF objects are destroyed on VF disable. */
    void onVfsRemoving(std::function<void()> fn)
    {
        vfs_removing_ = std::move(fn);
    }

  protected:
    pci::PciFunction &poolFunction(Pool pool) override;
    void signalPool(Pool pool) override;

  private:
    void vfEnableChanged(bool enabled, std::uint16_t num_vfs);

    SriovParams sp_;
    std::unique_ptr<pci::SriovCapability> sriov_cap_;
    std::vector<pci::PciFunction *> vfs_;    // owned by PciDevice base
    std::vector<std::unique_ptr<VfMailbox>> mailboxes_;
    std::function<void()> vfs_changed_;
    std::function<void()> vfs_removing_;
};

} // namespace sriov::nic

#endif // SRIOV_NIC_SRIOV_NIC_HPP
