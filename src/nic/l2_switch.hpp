/**
 * @file
 * L2Switch: the on-NIC layer-2 classifier shared by all VFs of a port
 * (paper Fig. 3). The PF driver programs static MAC/VLAN filters, one
 * per pool (VF or PF); incoming frames — from the physical line or
 * from a transmitting sibling VF — are steered to the matching pool,
 * or to the default (PF) pool if nothing matches.
 */

#ifndef SRIOV_NIC_L2_SWITCH_HPP
#define SRIOV_NIC_L2_SWITCH_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nic/packet.hpp"
#include "sim/stats.hpp"

namespace sriov::nic {

class L2Switch
{
  public:
    using Pool = std::uint16_t;

    /** Program (or move) a MAC+VLAN filter to @p pool. */
    void setFilter(MacAddr mac, std::uint16_t vlan, Pool pool);
    void clearFilter(MacAddr mac, std::uint16_t vlan);
    void clearPool(Pool pool);

    /** Pool that should receive @p pkt; nullopt = no match. */
    std::optional<Pool> classify(const Packet &pkt) const;

    /** True if @p pkt's destination lives on this port (loopback). */
    bool isLocal(const Packet &pkt) const
    {
        return classify(pkt).has_value();
    }

    std::size_t filterCount() const { return table_.size(); }
    std::uint64_t lookups() const { return lookups_.value(); }
    std::uint64_t matched() const { return matched_.value(); }
    std::uint64_t unmatched() const { return unmatched_.value(); }

  private:
    struct Key
    {
        MacAddr mac;
        std::uint16_t vlan;

        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        std::size_t
        operator()(const Key &k) const
        {
            return std::hash<std::uint64_t>()(k.mac.value
                                              ^ (std::uint64_t(k.vlan) << 48));
        }
    };

    std::unordered_map<Key, Pool, KeyHash> table_;
    mutable sim::Counter lookups_;
    mutable sim::Counter matched_;
    mutable sim::Counter unmatched_;
};

} // namespace sriov::nic

#endif // SRIOV_NIC_L2_SWITCH_HPP
