/**
 * @file
 * L2Switch: the on-NIC layer-2 classifier shared by all VFs of a port
 * (paper Fig. 3). The PF driver programs static MAC/VLAN filters, one
 * per pool (VF or PF); incoming frames — from the physical line or
 * from a transmitting sibling VF — are steered to the matching pool,
 * or to the default (PF) pool if nothing matches.
 *
 * classify() runs once per frame on both the RX and the TX (loopback
 * probe) path, so the table is built for that access pattern: the
 * (MAC, VLAN) pair packs into one 64-bit key (MacAddr occupies the low
 * 48 bits), probed through a small open-addressing flat table —
 * Fibonacci-hashed, linear probing, tombstone deletion — fronted by a
 * one-entry last-lookup cache, since steady traffic is heavily
 * repeat-destination. Mutations (setFilter/clearFilter/clearPool) are
 * control-path rare and just invalidate the cache.
 */

#ifndef SRIOV_NIC_L2_SWITCH_HPP
#define SRIOV_NIC_L2_SWITCH_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "nic/packet.hpp"
#include "sim/stats.hpp"

namespace sriov::nic {

class L2Switch
{
  public:
    using Pool = std::uint16_t;

    L2Switch();

    /** Program (or move) a MAC+VLAN filter to @p pool. */
    void setFilter(MacAddr mac, std::uint16_t vlan, Pool pool);
    void clearFilter(MacAddr mac, std::uint16_t vlan);
    void clearPool(Pool pool);

    /** Pool that should receive @p pkt; nullopt = no match. */
    std::optional<Pool> classify(const Packet &pkt) const;

    /** True if @p pkt's destination lives on this port (loopback). */
    bool isLocal(const Packet &pkt) const
    {
        return classify(pkt).has_value();
    }

    std::size_t filterCount() const { return size_; }
    std::uint64_t lookups() const { return lookups_.value(); }
    std::uint64_t matched() const { return matched_.value(); }
    std::uint64_t unmatched() const { return unmatched_.value(); }

  private:
    /** MacAddr is 48-bit, so the VLAN packs into the top 16. */
    static std::uint64_t
    packKey(MacAddr mac, std::uint16_t vlan)
    {
        return mac.value | (std::uint64_t(vlan) << 48);
    }

    /** Key 0 (zero MAC, VLAN 0) is programmable, so slots carry an
     *  explicit state instead of a reserved empty key. */
    enum class SlotState : std::uint8_t { Empty, Used, Tombstone };

    struct Slot
    {
        std::uint64_t key = 0;
        Pool pool = 0;
        SlotState state = SlotState::Empty;
    };

    static std::size_t
    hashKey(std::uint64_t key)
    {
        // Fibonacci multiplicative hash; the table mask keeps the
        // useful high bits.
        return std::size_t((key * 0x9E3779B97F4A7C15ULL) >> 32);
    }

    /** Slot holding @p key, or the first free slot of its probe chain. */
    Slot &findSlot(std::uint64_t key);
    const Slot *findUsed(std::uint64_t key) const;
    void growRehash();
    void invalidateCache() const { cache_valid_ = false; }

    std::vector<Slot> slots_;
    std::size_t mask_;
    std::size_t size_ = 0;         ///< Used slots.
    std::size_t occupied_ = 0;     ///< Used + tombstones (probe-chain load).
    mutable bool cache_valid_ = false;
    mutable std::uint64_t cache_key_ = 0;
    mutable Pool cache_pool_ = 0;
    mutable sim::Counter lookups_;
    mutable sim::Counter matched_;
    mutable sim::Counter unmatched_;
};

} // namespace sriov::nic

#endif // SRIOV_NIC_L2_SWITCH_HPP
