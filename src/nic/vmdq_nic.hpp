/**
 * @file
 * VmdqNic: an 82598-like 10 GbE adapter with Virtual Machine Device
 * Queues (paper Sections 1, 6.6).
 *
 * VMDq offloads packet *classification* to the NIC — each guest gets a
 * queue pair and the NIC DMAs received frames directly toward that
 * queue's buffers — but unlike SR-IOV there is only one PCIe function:
 * every DMA carries the PF's RID, so the VMM must still interpose for
 * memory protection and address translation, and queue interrupts land
 * in dom0 first. The 82598 has 8 queue pairs; dom0 keeps one, so only
 * 7 guests get VMDq service and the rest fall back to the software
 * bridge (the behaviour behind Fig. 19's peak-then-decay).
 */

#ifndef SRIOV_NIC_VMDQ_NIC_HPP
#define SRIOV_NIC_VMDQ_NIC_HPP

#include "nic/sriov_nic.hpp"

namespace sriov::nic {

class VmdqNic : public NicPort
{
  public:
    struct VmdqParams
    {
        Params port{};
        unsigned num_queues = 8;
    };

    VmdqNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf,
            VmdqParams p);
    VmdqNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf);

    unsigned queueCount() const { return poolCount(); }

    /** Queue 0 is dom0's default queue. */
    static constexpr Pool kDefaultQueue = 0;

  protected:
    pci::PciFunction &poolFunction(Pool pool) override;
    void signalPool(Pool pool) override;
};

/**
 * PlainNic: a conventional single-queue adapter (native baseline and
 * the physical NIC under the dom0 software bridge).
 */
class PlainNic : public NicPort
{
  public:
    PlainNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf,
             Params p);
    PlainNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf);

  protected:
    pci::PciFunction &poolFunction(Pool pool) override;
    void signalPool(Pool pool) override;
};

} // namespace sriov::nic

#endif // SRIOV_NIC_VMDQ_NIC_HPP
