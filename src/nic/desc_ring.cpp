#include "nic/desc_ring.hpp"

namespace sriov::nic {

// simlint: hot
bool
DescRing::post(mem::Addr gpa)
{
    if (buffers_.size() >= capacity_)
        return false;
    // Ring storage is pre-reserved to full depth at construction and
    // size < capacity was just checked: this push can never grow.
    // simlint:allow(hot-path-alloc): pre-reserved ring, cannot grow
    buffers_.push_back(gpa);
    posted_.inc();
    return true;
}

// simlint: hot
std::optional<mem::Addr>
DescRing::take()
{
    if (occupancy_tap_ != nullptr)
        occupancy_tap_->record(double(buffers_.size()));
    if (buffers_.empty())
        return std::nullopt;
    mem::Addr a = buffers_.front();
    buffers_.pop_front();
    consumed_.inc();
    return a;
}

void
DescRing::reset()
{
    discarded_.inc(buffers_.size());
    buffers_.clear();
}

} // namespace sriov::nic
