#include "nic/desc_ring.hpp"

namespace sriov::nic {

bool
DescRing::post(mem::Addr gpa)
{
    if (buffers_.size() >= capacity_)
        return false;
    buffers_.push_back(gpa);
    posted_.inc();
    return true;
}

std::optional<mem::Addr>
DescRing::take()
{
    if (occupancy_tap_ != nullptr)
        occupancy_tap_->record(double(buffers_.size()));
    if (buffers_.empty())
        return std::nullopt;
    mem::Addr a = buffers_.front();
    buffers_.pop_front();
    consumed_.inc();
    return a;
}

void
DescRing::reset()
{
    discarded_.inc(buffers_.size());
    buffers_.clear();
}

} // namespace sriov::nic
