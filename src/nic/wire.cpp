#include "nic/wire.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sim/thinning.hpp"

namespace sriov::nic {

Wire::Wire(sim::EventQueue &eq, Params p)
    : params_(p), thin_(sim::thinningEnabled()), eq_side_{&eq, &eq}
{
    if (params_.line_bps <= 0)
        sim::fatal("wire: bad line rate");
}

Wire::Wire(sim::EventQueue &eq) : Wire(eq, Params{}) {}

Wire::Wire(sim::EventQueue &eq_a, sim::EventQueue &eq_b,
           sim::ShardEngine &engine, unsigned island_a, unsigned island_b,
           Params p)
    : params_(p), thin_(sim::thinningEnabled()), sharded_(true),
      eq_side_{&eq_a, &eq_b}
{
    if (params_.line_bps <= 0)
        sim::fatal("wire: bad line rate");
    if (params_.propagation <= sim::Time())
        sim::fatal("wire: sharded wire needs positive propagation "
                   "(it is the engine lookahead)");
    // Capacity 2x the TX drop cap: the drop bound caps un-started
    // frames, and started-but-undelivered ones trail by only one
    // serialization + propagation, so push() never spins in practice.
    for (unsigned d = 0; d < 2; ++d) {
        dirs_[d].chan = std::make_unique<sim::ShardChannel<ShardMsg>>(
            2 * kTxQueueCap);
        dirs_[d].ref = DirRef{this, d};
        dirs_[d].chan->onDeliver(&Wire::deliverShard, &dirs_[d].ref);
    }
    engine.connect(*dirs_[0].chan, island_a, island_b,
                   params_.propagation);
    engine.connect(*dirs_[1].chan, island_b, island_a,
                   params_.propagation);
}

void
Wire::connect(WireEndpoint &a, WireEndpoint &b)
{
    end_a_ = &a;
    end_b_ = &b;
    dirs_[0].to = &b;    // a -> b
    dirs_[1].to = &a;    // b -> a
}

void
Wire::fluidVisit(sim::FluidVisitor &v)
{
    for (unsigned dir = 0; dir < 2; ++dir) {
        Direction &d = dirs_[dir];
        offered_[dir].fluidVisit(v, "wire.offered");
        dropped_[dir].fluidVisit(v, "wire.dropped");
        delivered_[dir].fluidVisit(v, "wire.delivered");
        v.time("wire.line_free_at", d.line_free_at);
        v.inv("wire.drain_armed", d.drain_armed ? 1 : 0);
        v.inv("wire.busy", d.busy ? 1 : 0);
        v.inv("wire.q", d.q.size());
        for (std::size_t i = 0; i < d.q.size(); ++i)
            fluidVisitPacket(v, "wire.q_pkt", d.q[i]);
        v.inv("wire.fl", d.fl.size());
        for (std::size_t i = 0; i < d.fl.size(); ++i) {
            InFlight &f = d.fl[i];
            fluidVisitPacket(v, "wire.fl_pkt", f.pkt);
            v.time("wire.fl_start", f.start);
            v.time("wire.fl_deliver", f.deliver_at);
        }
        v.inv("wire.starts", d.starts.size());
        for (std::size_t i = 0; i < d.starts.size(); ++i)
            v.time("wire.start", d.starts[i]);
        if (d.chan != nullptr) {
            // Cross-island channel contents. Only legal at a quiescent
            // barrier (no producer/consumer running): each in-flight
            // message's due instant is a time-point slot — a steady
            // flow's channel population is periodic, so occupancy is
            // invariant and every due shifts by exactly one period —
            // and its frame aligns by FIFO position like any ring.
            const std::size_t n = d.chan->pendingCount();
            v.inv("wire.chan", n);
            for (std::size_t i = 0; i < n; ++i) {
                auto &e = d.chan->pendingEntry(i);
                v.i64("wire.chan_due", e.due_ps);
                fluidVisitPacket(v, "wire.chan_pkt", e.payload.pkt);
            }
        }
    }
}

unsigned
Wire::dirOf(WireEndpoint &from) const
{
    if (&from == end_a_)
        return 0;
    if (&from == end_b_)
        return 1;
    sim::panic("wire: send from unconnected endpoint");
}

// simlint: hot
bool
Wire::send(WireEndpoint &from, const Packet &pkt)
{
    const unsigned dir = dirOf(from);
    if (thin_)
        return sendAt(from, pkt, senderEq(dir).now());

    Direction &d = dirs_[dir];
    offered_[dir].inc();
    if (d.q.size() >= kTxQueueCap) {
        dropped_[dir].inc();
        return false;
    }
    // RingBuf grows only to the burst high-water mark at warm-up;
    // steady state is a masked store (the bench operator-new gate
    // enforces zero allocs at runtime; this makes the waiver explicit).
    // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
    d.q.push_back(pkt);
    if (!d.busy)
        startNext(dir);
    return true;
}

// simlint: hot
bool
Wire::sendAt(WireEndpoint &from, const Packet &pkt, sim::Time release)
{
    unsigned dir = dirOf(from);
    if (!thin_) {
        // Exact mode has no early hand-over; callers there invoke
        // send() at the release instant instead.
        if (release != senderEq(dir).now())
            sim::panic("wire: sendAt in exact mode");
        return send(from, pkt);
    }
    if (sharded_)
        return sendShard(dir, pkt, release);
    Direction &d = dirs_[dir];
    offered_[dir].inc();

    // TX-queue occupancy as of `release`: accepted frames whose
    // serialization has not started by then. Starts are monotone, so
    // the un-started suffix of the in-flight ring is found by binary
    // search (frames already delivered/popped all started earlier).
    std::size_t lo = 0, hi = d.fl.size();
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (d.fl[mid].start > release)
            hi = mid;
        else
            lo = mid + 1;
    }
    if (d.fl.size() - lo >= kTxQueueCap) {
        dropped_[dir].inc();
        return false;
    }

    sim::Time start = std::max(d.line_free_at, release);
    sim::Time ser =
        sim::Time::transfer(double(pkt.wireBytes()) * 8.0, params_.line_bps);
    d.line_free_at = start + ser;
    // Future-valued stamp: `start` is the instant exact mode's
    // startNext() would run, so the recorded time is mode-invariant.
    if (pt_side_[dir])
        pt_side_[dir]->record(pt_comp_side_[dir], obs::PathStage::WireTx,
                              pkt.trace_id, start);
    // RingBuf grows only to the burst high-water mark at warm-up;
    // steady state is a masked store (the bench operator-new gate
    // enforces zero allocs at runtime; this makes the waiver explicit).
    // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
    d.fl.push_back(InFlight{pkt, start, d.line_free_at
                                            + params_.propagation});
    if (!d.drain_armed) {
        d.drain_armed = true;
        senderEq(dir).scheduleAt(d.fl.back().deliver_at,
                                 [this, dir]() { drain(dir); },
                                 "wire.burst");
    }
    return true;
}

// simlint: hot
bool
Wire::sendShard(unsigned dir, const Packet &pkt, sim::Time release)
{
    Direction &d = dirs_[dir];
    offered_[dir].inc();

    // Same analytic TX drop bound as the legacy thin path, kept on the
    // sender island alone: the start-instant ring holds frames that
    // may not have begun serializing. Releases are monotone per
    // direction, so entries at or before `release` have started and
    // can never count against a later occupancy check — prune them.
    while (!d.starts.empty() && d.starts.front() <= release)
        d.starts.pop_front();
    if (d.starts.size() >= kTxQueueCap) {
        dropped_[dir].inc();
        return false;
    }

    sim::Time start = std::max(d.line_free_at, release);
    sim::Time ser =
        sim::Time::transfer(double(pkt.wireBytes()) * 8.0, params_.line_bps);
    d.line_free_at = start + ser;
    if (pt_side_[dir])
        pt_side_[dir]->record(pt_comp_side_[dir], obs::PathStage::WireTx,
                              pkt.trace_id, start);
    // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
    d.starts.push_back(start);
    pushShard(dir, pkt, d.line_free_at + params_.propagation);
    return true;
}

// simlint: hot
void
Wire::pushShard(unsigned dir, const Packet &pkt, sim::Time due)
{
    // The conservative-sync contract: nothing may cross an island
    // boundary due earlier than the sender's current instant plus the
    // edge lookahead (here: the propagation delay). A violation would
    // silently corrupt the parallel schedule, so it is fatal, not a
    // drop. Holds by construction: due = start + ser + prop and
    // start >= release >= now().
    if (due < senderEq(dir).now() + params_.propagation)
        sim::panic("wire: cross-shard send violates lookahead "
                   "(due %s < now %s + propagation)",
                   due.toString().c_str(),
                   senderEq(dir).now().toString().c_str());
    dirs_[dir].chan->push(due, ShardMsg{pkt});
}

// simlint: fluid-settle
void
Wire::deliverShard(void *ctx, sim::Time due, const ShardMsg &msg)
{
    // Runs on the *receiving* island's thread with that island's clock
    // already advanced to `due` by the engine.
    auto *r = static_cast<const DirRef *>(ctx);
    Wire &w = *r->wire;
    const unsigned dir = r->dir;
    const unsigned rx = dir ^ 1u;    // receiver side of direction dir
    w.delivered_[dir].inc();
    if (sim::FlowLedger *l = sim::fluidLedger()) {
        // The edge traffic pattern as a steadiness certificate input:
        // a steady sender's analytic delivery instants are themselves
        // exactly periodic, so each cross-island stream registers as a
        // Source flow on the *receiving* island's ledger — the island
        // that never sees the sender directly still locks its device
        // cadence (ITR windows) onto the arrival grid, and the global
        // hyperperiod covers the edge period by construction.
        Direction &d = w.dirs_[dir];
        const std::uint64_t key =
            (std::uint64_t(msg.pkt.kind) << 32) | msg.pkt.flow;
        int id = -1;
        for (const auto &[k, fid] : d.rx_flows) {
            if (k == key) {
                id = fid;
                break;
            }
        }
        if (id < 0) {
            // simlint:allow(hot-path-alloc): first frame of a stream only
            id = int(l->addFlow("wire.rx-" + std::to_string(key),
                                sim::FlowKind::Source));
            d.rx_flows.emplace_back(key, id);
        }
        l->onSend(unsigned(id), due);
    }
    if (w.pt_side_[rx])
        w.pt_side_[rx]->record(w.pt_comp_side_[rx],
                               obs::PathStage::WireRx,
                               msg.pkt.trace_id, due);
    w.dirs_[dir].to->receive(msg.pkt);
}

// simlint: hot
void
Wire::drain(unsigned dir)
{
    Direction &d = dirs_[dir];
    sim::EventQueue &eq = senderEq(dir);
    // Deliver everything due (deliver_at is monotone per direction);
    // receive() may reentrantly append, which lands at the back.
    while (!d.fl.empty() && d.fl.front().deliver_at <= eq.now()) {
        Packet pkt = std::move(d.fl.front().pkt);
        d.fl.pop_front();
        delivered_[dir].inc();
        if (pt_side_[dir ^ 1u])
            pt_side_[dir ^ 1u]->record(pt_comp_side_[dir ^ 1u],
                                       obs::PathStage::WireRx,
                                       pkt.trace_id, eq.now());
        d.to->receive(pkt);
    }
    if (!d.fl.empty()) {
        eq.scheduleAt(d.fl.front().deliver_at,
                      [this, dir]() { drain(dir); }, "wire.burst");
    } else {
        d.drain_armed = false;
    }
}

std::size_t
Wire::queued(unsigned dir) const
{
    const Direction &d = dirs_[dir];
    if (!thin_)
        return d.q.size();
    sim::Time now = senderEq(dir).now();
    if (sharded_) {
        // Un-pruned start instants still in the future.
        std::size_t lo = 0, hi = d.starts.size();
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (d.starts[mid] > now)
                hi = mid;
            else
                lo = mid + 1;
        }
        return d.starts.size() - lo;
    }
    // Frames not yet begun serializing as of now.
    std::size_t lo = 0, hi = d.fl.size();
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (d.fl[mid].start > now)
            hi = mid;
        else
            lo = mid + 1;
    }
    return d.fl.size() - lo;
}

// simlint: hot
void
Wire::startNext(unsigned dir)
{
    Direction &d = dirs_[dir];
    if (d.q.empty()) {
        d.busy = false;
        return;
    }
    d.busy = true;
    Packet pkt = std::move(d.q.front());
    d.q.pop_front();
    sim::EventQueue &eq = senderEq(dir);
    if (pt_side_[dir])
        pt_side_[dir]->record(pt_comp_side_[dir], obs::PathStage::WireTx,
                              pkt.trace_id, eq.now());
    sim::Time ser =
        sim::Time::transfer(double(pkt.wireBytes()) * 8.0, params_.line_bps);
    // The receiver sees the frame after serialization + propagation;
    // the line is free for the next frame after serialization alone.
    // Sharded exact mode hands the frame to the channel at
    // serialization end — propagation is exactly the lookahead the
    // engine was registered with, so the push always clears the guard.
    eq.scheduleIn(ser, [this, dir, pkt = std::move(pkt)]() mutable {
        if (sharded_) {
            pushShard(dir, pkt,
                      senderEq(dir).now() + params_.propagation);
        } else {
            sim::EventQueue &deq = senderEq(dir);
            deq.scheduleIn(params_.propagation,
                           [this, dir, pkt = std::move(pkt)]() {
                delivered_[dir].inc();
                if (pt_side_[dir ^ 1u])
                    pt_side_[dir ^ 1u]->record(
                        pt_comp_side_[dir ^ 1u], obs::PathStage::WireRx,
                        pkt.trace_id, senderEq(dir).now());
                dirs_[dir].to->receive(pkt);
            }, "wire.deliver");
        }
        startNext(dir);
    }, "wire.serialized");
}

} // namespace sriov::nic
