#include "nic/wire.hpp"

#include "sim/log.hpp"

namespace sriov::nic {

Wire::Wire(sim::EventQueue &eq, Params p) : eq_(eq), params_(p)
{
    if (params_.line_bps <= 0)
        sim::fatal("wire: bad line rate");
}

Wire::Wire(sim::EventQueue &eq) : Wire(eq, Params{}) {}

void
Wire::connect(WireEndpoint &a, WireEndpoint &b)
{
    end_a_ = &a;
    end_b_ = &b;
    dirs_[0].to = &b;    // a -> b
    dirs_[1].to = &a;    // b -> a
}

bool
Wire::send(WireEndpoint &from, const Packet &pkt)
{
    unsigned dir;
    if (&from == end_a_) {
        dir = 0;
    } else if (&from == end_b_) {
        dir = 1;
    } else {
        sim::panic("wire: send from unconnected endpoint");
    }
    Direction &d = dirs_[dir];
    offered_.inc();
    if (d.q.size() >= kTxQueueCap) {
        dropped_.inc();
        return false;
    }
    d.q.push_back(pkt);
    if (!d.busy)
        startNext(dir);
    return true;
}

void
Wire::startNext(unsigned dir)
{
    Direction &d = dirs_[dir];
    if (d.q.empty()) {
        d.busy = false;
        return;
    }
    d.busy = true;
    Packet pkt = d.q.front();
    d.q.pop_front();
    sim::Time ser =
        sim::Time::transfer(double(pkt.wireBytes()) * 8.0, params_.line_bps);
    // The receiver sees the frame after serialization + propagation;
    // the line is free for the next frame after serialization alone.
    eq_.scheduleIn(ser, [this, dir, pkt]() {
        eq_.scheduleIn(params_.propagation, [this, dir, pkt]() {
            delivered_.inc();
            dirs_[dir].to->receive(pkt);
        }, "wire.deliver");
        startNext(dir);
    }, "wire.serialized");
}

} // namespace sriov::nic
