#include "nic/wire.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sim/thinning.hpp"

namespace sriov::nic {

Wire::Wire(sim::EventQueue &eq, Params p)
    : eq_(eq), params_(p), thin_(sim::thinningEnabled())
{
    if (params_.line_bps <= 0)
        sim::fatal("wire: bad line rate");
}

Wire::Wire(sim::EventQueue &eq) : Wire(eq, Params{}) {}

void
Wire::connect(WireEndpoint &a, WireEndpoint &b)
{
    end_a_ = &a;
    end_b_ = &b;
    dirs_[0].to = &b;    // a -> b
    dirs_[1].to = &a;    // b -> a
}

unsigned
Wire::dirOf(WireEndpoint &from) const
{
    if (&from == end_a_)
        return 0;
    if (&from == end_b_)
        return 1;
    sim::panic("wire: send from unconnected endpoint");
}

// simlint: hot
bool
Wire::send(WireEndpoint &from, const Packet &pkt)
{
    if (thin_)
        return sendAt(from, pkt, eq_.now());

    Direction &d = dirs_[dirOf(from)];
    offered_.inc();
    if (d.q.size() >= kTxQueueCap) {
        dropped_.inc();
        return false;
    }
    // RingBuf grows only to the burst high-water mark at warm-up;
    // steady state is a masked store (the bench operator-new gate
    // enforces zero allocs at runtime; this makes the waiver explicit).
    // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
    d.q.push_back(pkt);
    if (!d.busy)
        startNext(dirOf(from));
    return true;
}

// simlint: hot
bool
Wire::sendAt(WireEndpoint &from, const Packet &pkt, sim::Time release)
{
    unsigned dir = dirOf(from);
    if (!thin_) {
        // Exact mode has no early hand-over; callers there invoke
        // send() at the release instant instead.
        if (release != eq_.now())
            sim::panic("wire: sendAt in exact mode");
        return send(from, pkt);
    }
    Direction &d = dirs_[dir];
    offered_.inc();

    // TX-queue occupancy as of `release`: accepted frames whose
    // serialization has not started by then. Starts are monotone, so
    // the un-started suffix of the in-flight ring is found by binary
    // search (frames already delivered/popped all started earlier).
    std::size_t lo = 0, hi = d.fl.size();
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (d.fl[mid].start > release)
            hi = mid;
        else
            lo = mid + 1;
    }
    if (d.fl.size() - lo >= kTxQueueCap) {
        dropped_.inc();
        return false;
    }

    sim::Time start = std::max(d.line_free_at, release);
    sim::Time ser =
        sim::Time::transfer(double(pkt.wireBytes()) * 8.0, params_.line_bps);
    d.line_free_at = start + ser;
    // Future-valued stamp: `start` is the instant exact mode's
    // startNext() would run, so the recorded time is mode-invariant.
    if (pt_)
        pt_->record(pt_comp_, obs::PathStage::WireTx, pkt.trace_id,
                    start);
    // RingBuf grows only to the burst high-water mark at warm-up;
    // steady state is a masked store (the bench operator-new gate
    // enforces zero allocs at runtime; this makes the waiver explicit).
    // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
    d.fl.push_back(InFlight{pkt, start, d.line_free_at
                                            + params_.propagation});
    if (!d.drain_armed) {
        d.drain_armed = true;
        eq_.scheduleAt(d.fl.back().deliver_at,
                       [this, dir]() { drain(dir); }, "wire.burst");
    }
    return true;
}

// simlint: hot
void
Wire::drain(unsigned dir)
{
    Direction &d = dirs_[dir];
    // Deliver everything due (deliver_at is monotone per direction);
    // receive() may reentrantly append, which lands at the back.
    while (!d.fl.empty() && d.fl.front().deliver_at <= eq_.now()) {
        Packet pkt = std::move(d.fl.front().pkt);
        d.fl.pop_front();
        delivered_.inc();
        if (pt_)
            pt_->record(pt_comp_, obs::PathStage::WireRx, pkt.trace_id,
                        eq_.now());
        d.to->receive(pkt);
    }
    if (!d.fl.empty()) {
        eq_.scheduleAt(d.fl.front().deliver_at,
                       [this, dir]() { drain(dir); }, "wire.burst");
    } else {
        d.drain_armed = false;
    }
}

std::size_t
Wire::queued(unsigned dir) const
{
    const Direction &d = dirs_[dir];
    if (!thin_)
        return d.q.size();
    // Frames not yet begun serializing as of now.
    sim::Time now = eq_.now();
    std::size_t lo = 0, hi = d.fl.size();
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (d.fl[mid].start > now)
            hi = mid;
        else
            lo = mid + 1;
    }
    return d.fl.size() - lo;
}

// simlint: hot
void
Wire::startNext(unsigned dir)
{
    Direction &d = dirs_[dir];
    if (d.q.empty()) {
        d.busy = false;
        return;
    }
    d.busy = true;
    Packet pkt = std::move(d.q.front());
    d.q.pop_front();
    if (pt_)
        pt_->record(pt_comp_, obs::PathStage::WireTx, pkt.trace_id,
                    eq_.now());
    sim::Time ser =
        sim::Time::transfer(double(pkt.wireBytes()) * 8.0, params_.line_bps);
    // The receiver sees the frame after serialization + propagation;
    // the line is free for the next frame after serialization alone.
    eq_.scheduleIn(ser, [this, dir, pkt = std::move(pkt)]() mutable {
        eq_.scheduleIn(params_.propagation,
                       [this, dir, pkt = std::move(pkt)]() {
            delivered_.inc();
            if (pt_)
                pt_->record(pt_comp_, obs::PathStage::WireRx,
                            pkt.trace_id, eq_.now());
            dirs_[dir].to->receive(pkt);
        }, "wire.deliver");
        startNext(dir);
    }, "wire.serialized");
}

} // namespace sriov::nic
