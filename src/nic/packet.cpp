#include "nic/packet.hpp"

#include <cstdio>

namespace sriov::nic {

std::string
MacAddr::toString() const
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                  unsigned(value >> 40) & 0xff, unsigned(value >> 32) & 0xff,
                  unsigned(value >> 24) & 0xff, unsigned(value >> 16) & 0xff,
                  unsigned(value >> 8) & 0xff, unsigned(value) & 0xff);
    return buf;
}

} // namespace sriov::nic
