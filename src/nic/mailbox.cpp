#include "nic/mailbox.hpp"

namespace sriov::nic {

bool
Mailbox::post(const MboxMessage &msg)
{
    if (busy_)
        return false;
    busy_ = true;
    posted_.inc();
    if (doorbell_)
        doorbell_(msg);
    return true;
}

void
Mailbox::ack()
{
    busy_ = false;
}

} // namespace sriov::nic
