// PlainNic is defined alongside VmdqNic in vmdq_nic.cpp; this
// translation unit exists to keep one object per header listed in the
// build and hosts nothing further.
#include "nic/vmdq_nic.hpp"
