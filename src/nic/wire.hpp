/**
 * @file
 * Wire: a full-duplex point-to-point Ethernet link.
 *
 * Each direction is an independent FIFO serializing frames at the line
 * rate (wireBytes() includes preamble + IFG, so a saturated 10 GbE
 * line yields exactly the paper's 9.57 Gb/s of UDP goodput). Endpoints
 * implement WireEndpoint::receive().
 *
 * Two timing implementations share the same model:
 *
 *  - Exact (--no-thin): one "wire.serialized" event per frame pops the
 *    next frame off the queue, one "wire.deliver" event hands it to
 *    the receiver — the reference FIFO server.
 *
 *  - Thin (default): start and delivery times are computed
 *    analytically at send time (start_i = max(finish_{i-1}, release_i),
 *    both monotone per direction) and a single per-direction
 *    "wire.burst" drain event walks the in-flight ring, delivering
 *    each frame at its exact timestamp. Per-frame accounting, the
 *    TX-queue drop bound and delivery times are identical; only the
 *    number of simulator events changes.
 *
 * The wire is also the simulator's only legal shard boundary
 * (DESIGN.md §13). Constructed in sharded form, its two ends live on
 * different islands: the sender half keeps the serializer state
 * (line_free_at, the un-started ring for the TX drop bound) and pushes
 * (due, frame) messages into a sim::ShardChannel; the receiving
 * island's engine delivers each frame at exactly its due instant — the
 * same analytic timestamps thinning already computes, so the channel
 * *replaces* the drain event rather than adding a layer. Propagation
 * delay is the engine lookahead: every message is due at least one
 * propagation after the instant its send executed, which the send path
 * asserts (sim::panic on violation — it would break conservative
 * sync, not just accuracy).
 */

#ifndef SRIOV_NIC_WIRE_HPP
#define SRIOV_NIC_WIRE_HPP

#include <utility>
#include <vector>

#include "nic/packet.hpp"
#include "obs/pathtrace.hpp"
#include "sim/event_queue.hpp"
#include "sim/ring_buf.hpp"
#include "sim/shard_engine.hpp"
#include "sim/stats.hpp"

namespace sriov::nic {

class WireEndpoint
{
  public:
    virtual ~WireEndpoint() = default;

    /** A frame fully arrived from the line. */
    virtual void receive(const Packet &pkt) = 0;
};

class Wire
{
  public:
    struct Params
    {
        double line_bps = 1e9;
        sim::Time propagation = sim::Time::ns(500);
    };

    Wire(sim::EventQueue &eq, Params p);
    Wire(sim::EventQueue &eq);

    /**
     * Sharded construction: endpoint a (the first argument of
     * connect()) lives on island @p island_a whose queue is @p eq_a,
     * endpoint b on @p island_b / @p eq_b. Registers one channel per
     * direction with @p engine, lookahead = the propagation delay.
     */
    Wire(sim::EventQueue &eq_a, sim::EventQueue &eq_b,
         sim::ShardEngine &engine, unsigned island_a, unsigned island_b,
         Params p);

    double lineRate() const { return params_.line_bps; }
    bool sharded() const { return sharded_; }

    /** Connect the two ends. Must be called before traffic flows. */
    void connect(WireEndpoint &a, WireEndpoint &b);

    /**
     * Transmit @p pkt from endpoint @p from toward the other end.
     * Frames queue behind in-flight ones (FIFO per direction). Returns
     * false (and counts a drop) if the TX queue is beyond its cap —
     * senders are expected to pace themselves.
     */
    bool send(WireEndpoint &from, const Packet &pkt);

    /**
     * Thin-mode form: hand the frame over now but have it reach the
     * line at @p release >= now() (the analytically known DMA-complete
     * time). Queueing, the drop bound and the delivery time are
     * evaluated as of @p release, so the outcome matches an exact-mode
     * send() issued at that instant. Successive releases per direction
     * must be monotone (they come from one FIFO DMA engine).
     */
    bool sendAt(WireEndpoint &from, const Packet &pkt, sim::Time release);

    /** Instantaneous busy fraction proxy: queued frames, direction 0/1. */
    std::size_t queued(unsigned dir) const;

    std::uint64_t
    delivered() const
    {
        return delivered_[0].value() + delivered_[1].value();
    }
    std::uint64_t
    dropped() const
    {
        return dropped_[0].value() + dropped_[1].value();
    }
    /** Frames accepted by send() (conservation: at quiescence,
     *  offered == delivered + dropped and nothing is queued). */
    std::uint64_t
    offered() const
    {
        return offered_[0].value() + offered_[1].value();
    }
    /** Frames in flight: queued, serializing/propagating, or (sharded)
     *  sitting undelivered in a cross-island channel. */
    std::uint64_t inFlight() const
    {
        return offered() - dropped() - delivered();
    }

    static constexpr std::size_t kTxQueueCap = 4096;

    /** Attach the path tracer: accepted frames stamp WireTx at their
     *  serialization start, deliveries stamp WireRx. Both stamps land
     *  in @p pt (the single-tracer, single-island form). */
    void
    setPathTracer(obs::PathTracer *pt, std::uint16_t comp)
    {
        pt_side_[0] = pt_side_[1] = pt;
        pt_comp_side_[0] = pt_comp_side_[1] = comp;
    }

    /** Sharded form: WireTx/WireRx stamps land in the tracer of the
     *  island doing the stamping (side 0 = endpoint a's island). */
    void
    setShardPathTracers(obs::PathTracer *pt_a, std::uint16_t comp_a,
                        obs::PathTracer *pt_b, std::uint16_t comp_b)
    {
        pt_side_[0] = pt_a;
        pt_side_[1] = pt_b;
        pt_comp_side_[0] = comp_a;
        pt_comp_side_[1] = comp_b;
    }

    /** Fluid-mode state walk (sim/fluid.hpp): counters and serializer
     *  horizons are linear; in-flight frames align by FIFO position. */
    void fluidVisit(sim::FluidVisitor &v);

  private:
    /** A frame accepted in thin mode, timestamped analytically. */
    struct InFlight
    {
        Packet pkt;
        sim::Time start;         ///< serialization begins
        sim::Time deliver_at;    ///< receiver sees the frame
    };

    /** Cross-island message: the due time rides in the channel. */
    struct ShardMsg
    {
        Packet pkt;
    };

    struct DirRef
    {
        Wire *wire = nullptr;
        unsigned dir = 0;
    };

    struct Direction
    {
        WireEndpoint *to = nullptr;
        // Exact mode: frames waiting to serialize.
        sim::RingBuf<Packet> q;
        bool busy = false;
        // Thin mode: accepted frames not yet delivered.
        sim::RingBuf<InFlight> fl;
        sim::Time line_free_at;    ///< when the serializer goes idle
        bool drain_armed = false;
        // Sharded mode: sender-side start instants of frames that may
        // not have begun serializing (the TX-queue drop bound), plus
        // the channel toward the receiving island.
        sim::RingBuf<sim::Time> starts;
        std::unique_ptr<sim::ShardChannel<ShardMsg>> chan;
        DirRef ref;
        /** Receiver-side stream -> ledger flow id: each cross-island
         *  stream's delivery instants register as a Source flow on the
         *  receiving island's ledger (the edge grid certificate). */
        std::vector<std::pair<std::uint64_t, int>> rx_flows;
    };

    void startNext(unsigned dir);
    void drain(unsigned dir);
    unsigned dirOf(WireEndpoint &from) const;
    bool sendShard(unsigned dir, const Packet &pkt, sim::Time release);
    void pushShard(unsigned dir, const Packet &pkt, sim::Time due);
    static void deliverShard(void *ctx, sim::Time due,
                             const ShardMsg &msg);

    /** The queue a direction's *sender* half runs on. */
    sim::EventQueue &senderEq(unsigned dir) { return *eq_side_[dir]; }
    const sim::EventQueue &
    senderEq(unsigned dir) const
    {
        return *eq_side_[dir];
    }

    Params params_;
    bool thin_;
    bool sharded_ = false;
    sim::EventQueue *eq_side_[2];    ///< [0]=a's island, [1]=b's
    Direction dirs_[2];
    WireEndpoint *end_a_ = nullptr;
    WireEndpoint *end_b_ = nullptr;
    // Per direction so a sharded wire's two islands never share a
    // counter: offered/dropped belong to the sender half, delivered to
    // the receiver half. The accessors sum both directions.
    sim::Counter delivered_[2];
    sim::Counter dropped_[2];
    sim::Counter offered_[2];
    obs::PathTracer *pt_side_[2] = {nullptr, nullptr};
    std::uint16_t pt_comp_side_[2] = {0, 0};
};

} // namespace sriov::nic

#endif // SRIOV_NIC_WIRE_HPP
