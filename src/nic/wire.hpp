/**
 * @file
 * Wire: a full-duplex point-to-point Ethernet link.
 *
 * Each direction is an independent FIFO serializing frames at the line
 * rate (wireBytes() includes preamble + IFG, so a saturated 10 GbE
 * line yields exactly the paper's 9.57 Gb/s of UDP goodput). Endpoints
 * implement WireEndpoint::receive().
 */

#ifndef SRIOV_NIC_WIRE_HPP
#define SRIOV_NIC_WIRE_HPP

#include "nic/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/ring_buf.hpp"
#include "sim/stats.hpp"

namespace sriov::nic {

class WireEndpoint
{
  public:
    virtual ~WireEndpoint() = default;

    /** A frame fully arrived from the line. */
    virtual void receive(const Packet &pkt) = 0;
};

class Wire
{
  public:
    struct Params
    {
        double line_bps = 1e9;
        sim::Time propagation = sim::Time::ns(500);
    };

    Wire(sim::EventQueue &eq, Params p);
    Wire(sim::EventQueue &eq);

    double lineRate() const { return params_.line_bps; }

    /** Connect the two ends. Must be called before traffic flows. */
    void connect(WireEndpoint &a, WireEndpoint &b);

    /**
     * Transmit @p pkt from endpoint @p from toward the other end.
     * Frames queue behind in-flight ones (FIFO per direction). Returns
     * false (and counts a drop) if the TX queue is beyond its cap —
     * senders are expected to pace themselves.
     */
    bool send(WireEndpoint &from, const Packet &pkt);

    /** Instantaneous busy fraction proxy: queued frames, direction 0/1. */
    std::size_t queued(unsigned dir) const { return dirs_[dir].q.size(); }

    std::uint64_t delivered() const { return delivered_.value(); }
    std::uint64_t dropped() const { return dropped_.value(); }
    /** Frames accepted by send() (conservation: at quiescence,
     *  offered == delivered + dropped and nothing is queued). */
    std::uint64_t offered() const { return offered_.value(); }
    /** Frames in flight: queued or serializing/propagating. */
    std::uint64_t inFlight() const
    {
        return offered_.value() - dropped_.value() - delivered_.value();
    }

    static constexpr std::size_t kTxQueueCap = 4096;

  private:
    struct Direction
    {
        WireEndpoint *to = nullptr;
        sim::RingBuf<Packet> q;
        bool busy = false;
    };

    void startNext(unsigned dir);

    sim::EventQueue &eq_;
    Params params_;
    Direction dirs_[2];
    WireEndpoint *end_a_ = nullptr;
    WireEndpoint *end_b_ = nullptr;
    sim::Counter delivered_;
    sim::Counter dropped_;
    sim::Counter offered_;
};

} // namespace sriov::nic

#endif // SRIOV_NIC_WIRE_HPP
