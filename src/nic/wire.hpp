/**
 * @file
 * Wire: a full-duplex point-to-point Ethernet link.
 *
 * Each direction is an independent FIFO serializing frames at the line
 * rate (wireBytes() includes preamble + IFG, so a saturated 10 GbE
 * line yields exactly the paper's 9.57 Gb/s of UDP goodput). Endpoints
 * implement WireEndpoint::receive().
 *
 * Two timing implementations share the same model:
 *
 *  - Exact (--no-thin): one "wire.serialized" event per frame pops the
 *    next frame off the queue, one "wire.deliver" event hands it to
 *    the receiver — the reference FIFO server.
 *
 *  - Thin (default): start and delivery times are computed
 *    analytically at send time (start_i = max(finish_{i-1}, release_i),
 *    both monotone per direction) and a single per-direction
 *    "wire.burst" drain event walks the in-flight ring, delivering
 *    each frame at its exact timestamp. Per-frame accounting, the
 *    TX-queue drop bound and delivery times are identical; only the
 *    number of simulator events changes.
 */

#ifndef SRIOV_NIC_WIRE_HPP
#define SRIOV_NIC_WIRE_HPP

#include "nic/packet.hpp"
#include "obs/pathtrace.hpp"
#include "sim/event_queue.hpp"
#include "sim/ring_buf.hpp"
#include "sim/stats.hpp"

namespace sriov::nic {

class WireEndpoint
{
  public:
    virtual ~WireEndpoint() = default;

    /** A frame fully arrived from the line. */
    virtual void receive(const Packet &pkt) = 0;
};

class Wire
{
  public:
    struct Params
    {
        double line_bps = 1e9;
        sim::Time propagation = sim::Time::ns(500);
    };

    Wire(sim::EventQueue &eq, Params p);
    Wire(sim::EventQueue &eq);

    double lineRate() const { return params_.line_bps; }

    /** Connect the two ends. Must be called before traffic flows. */
    void connect(WireEndpoint &a, WireEndpoint &b);

    /**
     * Transmit @p pkt from endpoint @p from toward the other end.
     * Frames queue behind in-flight ones (FIFO per direction). Returns
     * false (and counts a drop) if the TX queue is beyond its cap —
     * senders are expected to pace themselves.
     */
    bool send(WireEndpoint &from, const Packet &pkt);

    /**
     * Thin-mode form: hand the frame over now but have it reach the
     * line at @p release >= now() (the analytically known DMA-complete
     * time). Queueing, the drop bound and the delivery time are
     * evaluated as of @p release, so the outcome matches an exact-mode
     * send() issued at that instant. Successive releases per direction
     * must be monotone (they come from one FIFO DMA engine).
     */
    bool sendAt(WireEndpoint &from, const Packet &pkt, sim::Time release);

    /** Instantaneous busy fraction proxy: queued frames, direction 0/1. */
    std::size_t queued(unsigned dir) const;

    std::uint64_t delivered() const { return delivered_.value(); }
    std::uint64_t dropped() const { return dropped_.value(); }
    /** Frames accepted by send() (conservation: at quiescence,
     *  offered == delivered + dropped and nothing is queued). */
    std::uint64_t offered() const { return offered_.value(); }
    /** Frames in flight: queued or serializing/propagating. */
    std::uint64_t inFlight() const
    {
        return offered_.value() - dropped_.value() - delivered_.value();
    }

    static constexpr std::size_t kTxQueueCap = 4096;

    /** Attach the path tracer: accepted frames stamp WireTx at their
     *  serialization start, deliveries stamp WireRx. */
    void
    setPathTracer(obs::PathTracer *pt, std::uint16_t comp)
    {
        pt_ = pt;
        pt_comp_ = comp;
    }

  private:
    /** A frame accepted in thin mode, timestamped analytically. */
    struct InFlight
    {
        Packet pkt;
        sim::Time start;         ///< serialization begins
        sim::Time deliver_at;    ///< receiver sees the frame
    };

    struct Direction
    {
        WireEndpoint *to = nullptr;
        // Exact mode: frames waiting to serialize.
        sim::RingBuf<Packet> q;
        bool busy = false;
        // Thin mode: accepted frames not yet delivered.
        sim::RingBuf<InFlight> fl;
        sim::Time line_free_at;    ///< when the serializer goes idle
        bool drain_armed = false;
    };

    void startNext(unsigned dir);
    void drain(unsigned dir);
    unsigned dirOf(WireEndpoint &from) const;

    sim::EventQueue &eq_;
    Params params_;
    bool thin_;
    Direction dirs_[2];
    WireEndpoint *end_a_ = nullptr;
    WireEndpoint *end_b_ = nullptr;
    sim::Counter delivered_;
    sim::Counter dropped_;
    sim::Counter offered_;
    obs::PathTracer *pt_ = nullptr;
    std::uint16_t pt_comp_ = 0;
};

} // namespace sriov::nic

#endif // SRIOV_NIC_WIRE_HPP
