#include "nic/sriov_nic.hpp"

#include "sim/log.hpp"
#include "sim/thinning.hpp"
#include "sim/trace.hpp"

namespace sriov::nic {

NicPort::NicPort(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf,
                 Params p, unsigned num_pools)
    : eq_(eq), name_(std::move(name)), params_(p),
      thin_(sim::thinningEnabled()), dma_(eq, name_ + ".dma", p.dma)
{
    auto pf = std::make_unique<pci::PciFunction>(
        pf_bdf, p.vendor_id, p.pf_device_id, 0x020000,
        pci::PciFunction::Kind::Physical);
    pf->declareBar(0, 128 * 1024);
    pf->addMsix(10, 3);
    pf_ = &addFunction(std::move(pf));
    resizePools(num_pools);
}

NicPort::~NicPort() = default;

// simlint: fluid-settle
void
NicPort::resizePools(unsigned n)
{
    while (pools_.size() < n) {
        Pool idx = Pool(pools_.size());
        auto ps = std::make_unique<PoolState>(eq_, params_.rx_ring_size);
        ps->itr_timer.setCallback([this, idx]() { itrExpired(idx); });
        pools_.push_back(std::move(ps));
    }
    while (pools_.size() > n) {
        // The pool's raise stream dies with it; a stale ledger flow
        // would otherwise hold its last gap forever and wedge (or
        // falsely satisfy) the all-steady predicate.
        if (pools_.back()->fluid_flow >= 0) {
            if (sim::FlowLedger *l = sim::fluidLedger())
                l->endFlow(unsigned(pools_.back()->fluid_flow));
        }
        pools_.pop_back();
    }
    for (auto &ps : pools_) {
        if (ps->itr_hz == 0.0)
            ps->itr_hz = params_.default_itr_hz;
    }
    // Pool topology changed (VF enable/disable): any running fluid
    // segment is built over the old slot sequence.
    sim::fluidTransitionAll(sim::FluidTransition::VmChurn);
}

NicPort::PoolState &
NicPort::poolState(Pool pool)
{
    if (pool >= pools_.size())
        sim::panic("%s: pool %u out of range", name_.c_str(), pool);
    return *pools_[pool];
}

const NicPort::PoolState &
NicPort::poolState(Pool pool) const
{
    if (pool >= pools_.size())
        sim::panic("%s: pool %u out of range", name_.c_str(), pool);
    return *pools_[pool];
}

DescRing &
NicPort::rxRing(Pool pool)
{
    return poolState(pool).ring;
}

std::vector<RxCompletion>
NicPort::drainRx(Pool pool)
{
    std::vector<RxCompletion> out;
    drainRxInto(pool, out);
    return out;
}

// simlint: hot
void
NicPort::drainRxInto(Pool pool, std::vector<RxCompletion> &out)
{
    PoolState &ps = poolState(pool);
    out.clear();
    // Drivers pass a reusable scratch vector: after the first batch it
    // holds its high-water capacity and these calls stop allocating.
    // simlint:allow(hot-path-alloc): reusable caller scratch vector
    out.reserve(ps.completed.size());
    // `completed` is sorted by readiness; thin mode may hold frames
    // whose DMA has not finished yet — they stay behind.
    while (!ps.completed.empty()
           && ps.completed.front().ready <= eq_.now()) {
        // simlint:allow(hot-path-alloc): reusable caller scratch vector
        out.push_back(std::move(ps.completed.front().rc));
        ps.completed.pop_front();
    }
}

std::size_t
NicPort::rxPending(Pool pool) const
{
    const PoolState &ps = poolState(pool);
    sim::Time now = eq_.now();
    std::size_t lo = 0, hi = ps.completed.size();
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (ps.completed[mid].ready > now)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

// simlint: fluid-settle
void
NicPort::setItr(Pool pool, double hz)
{
    if (hz < 0)
        sim::fatal("%s: negative ITR", name_.c_str());
    PoolState &ps = poolState(pool);
    if (ps.itr_hz != hz)
        sim::fluidTransitionAll(sim::FluidTransition::ItrChange);
    ps.itr_hz = hz;

    // Fluid mode: snap the throttle window onto the sender emission
    // grid. 1/hz is an arbitrary picosecond value, so the raise
    // cadence it induces is incommensurate with the send grid and the
    // combined schedule has no usable hyperperiod; rounding the window
    // to the nearest whole number of grid ticks (at most a half-tick
    // perturbation, and only when that stays within 2x of the asked
    // window) gives the director a finite period to verify against.
    // Interrupt-rate-derived metrics are tolerance-banded under fluid
    // for exactly this reason (DESIGN.md section 14).
    sim::Time prev_window = ps.itr_window;
    ps.itr_window = sim::Time();
    if (hz > 0 && sim::fluidEnabled()) {
        if (sim::FlowLedger *l = sim::fluidLedger()) {
            sim::Time grid = l->sourcePeriod();
            if (grid > sim::Time()) {
                std::int64_t w = sim::Time::seconds(1.0 / hz).picos();
                std::int64_t g = grid.picos();
                std::int64_t k = std::max<std::int64_t>(1, (w + g / 2) / g);
                if (k * g <= 2 * w)
                    ps.itr_window = sim::Time::ps(k * g);
            }
        }
    }
    if (ps.itr_window != prev_window)
        sim::fluidTransitionAll(sim::FluidTransition::ItrChange);
}

double
NicPort::itr(Pool pool) const
{
    return poolState(pool).itr_hz;
}

sim::Time
NicPort::itrWindow(const PoolState &ps) const
{
    return ps.itr_window > sim::Time() ? ps.itr_window
                                       : sim::Time::seconds(1.0 / ps.itr_hz);
}

// simlint: fluid-settle
void
NicPort::noteRaise(PoolState &ps, Pool pool)
{
    sim::FlowLedger *l = sim::fluidLedger();
    if (l == nullptr)
        return;
    if (ps.fluid_flow < 0) {
        ps.fluid_flow = int(l->addFlow(
            name_ + ".raise" + std::to_string(pool), sim::FlowKind::Derived));
    }
    l->onSend(unsigned(ps.fluid_flow), eq_.now());
}

void
NicPort::setPoolFilter(Pool pool, MacAddr mac, std::uint16_t vlan)
{
    l2_.setFilter(mac, vlan, pool);
}

void
NicPort::fluidVisit(sim::FluidVisitor &v)
{
    dma_.fluidVisit(v);
    drop_no_match_.fluidVisit(v, "port.drop_no_match");
    for (auto &psp : pools_) {
        PoolState &ps = *psp;
        settleStats(ps);
        ps.ring.fluidVisit(v);
        v.inv("pool.enabled", ps.enabled ? 1 : 0);
        v.f64("pool.itr_hz", ps.itr_hz);
        v.inv("pool.itr_window", std::uint64_t(ps.itr_window.picos()));
        v.inv("pool.throttle_armed", ps.throttle_armed ? 1 : 0);
        v.inv("pool.intr_pending", ps.intr_pending ? 1 : 0);
        v.time("pool.armed_until", ps.armed_until);
        ps.itr_timer.fluidVisit(v);
        v.inv("pool.real_inflight", ps.real_inflight);
        v.inv("pool.completed", ps.completed.size());
        for (std::size_t i = 0; i < ps.completed.size(); ++i) {
            PendingRx &pr = ps.completed[i];
            fluidVisitPacket(v, "pool.rx_pkt", pr.rc.pkt);
            v.time("pool.rx_ready", pr.ready);
            v.inv("pool.rx_stamped", pr.raise_stamped ? 1 : 0);
        }
        v.inv("pool.rx_ledger", ps.rx_ledger.size());
        for (std::size_t i = 0; i < ps.rx_ledger.size(); ++i) {
            v.time("pool.rxl_at", ps.rx_ledger[i].at);
            v.inv("pool.rxl_bytes", ps.rx_ledger[i].bytes);
        }
        v.inv("pool.tx_ledger", ps.tx_ledger.size());
        for (std::size_t i = 0; i < ps.tx_ledger.size(); ++i) {
            v.time("pool.txl_at", ps.tx_ledger[i].at);
            v.inv("pool.txl_bytes", ps.tx_ledger[i].bytes);
        }
        ps.stats.rx_frames.fluidVisit(v, "pool.rx_frames");
        ps.stats.rx_bytes.fluidVisit(v, "pool.rx_bytes");
        ps.stats.rx_drop_ring.fluidVisit(v, "pool.rx_drop_ring");
        ps.stats.rx_drop_master.fluidVisit(v, "pool.rx_drop_master");
        ps.stats.rx_drop_iommu.fluidVisit(v, "pool.rx_drop_iommu");
        ps.stats.tx_frames.fluidVisit(v, "pool.tx_frames");
        ps.stats.tx_bytes.fluidVisit(v, "pool.tx_bytes");
        ps.stats.tx_dropped.fluidVisit(v, "pool.tx_dropped");
        ps.stats.interrupts.fluidVisit(v, "pool.interrupts");
    }
}

void
NicPort::setPathTracer(obs::PathTracer *pt)
{
    pt_ = pt;
    if (pt == nullptr)
        return;
    pt_comp_ = pt->registerComponent(name_);
    dma_.setPathTracer(pt, pt->registerComponent(name_ + ".dma"));
}

// simlint: hot
void
NicPort::settleStats(PoolState &ps) const
{
    sim::Time now = eq_.now();
    while (!ps.rx_ledger.empty() && ps.rx_ledger.front().at <= now) {
        ps.stats.rx_frames.inc();
        ps.stats.rx_bytes.inc(ps.rx_ledger.front().bytes);
        ps.rx_ledger.pop_front();
    }
    while (!ps.tx_ledger.empty() && ps.tx_ledger.front().at <= now) {
        ps.stats.tx_frames.inc();
        ps.stats.tx_bytes.inc(ps.tx_ledger.front().bytes);
        ps.tx_ledger.pop_front();
    }
}

// simlint: hot
void
NicPort::stampRaise(PoolState &ps)
{
    if (!pt_)
        return;
    const sim::Time now = eq_.now();
    for (std::size_t i = 0; i < ps.completed.size(); ++i) {
        PendingRx &e = ps.completed[i];
        if (e.ready > now)
            break;      // ready-sorted: the rest are still in flight
        if (e.raise_stamped)
            continue;
        e.raise_stamped = true;
        pt_->record(pt_comp_, obs::PathStage::MsixRaise,
                    e.rc.pkt.trace_id, now);
    }
}

const NicPort::PoolStats &
NicPort::poolStats(Pool pool) const
{
    if (pool >= pools_.size())
        sim::panic("%s: pool %u out of range", name_.c_str(), pool);
    // unique_ptr does not propagate constness: settle the ledgers so
    // a mid-run reader sees each frame's stats at its exact DMA time.
    PoolState &ps = *pools_[pool];
    settleStats(ps);
    return ps.stats;
}

// simlint: hot
void
NicPort::receive(const Packet &pkt)
{
    auto pool = l2_.classify(pkt);
    if (!pool)
        pool = default_pool_;
    if (!pool) {
        drop_no_match_.inc();
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return;
    }
    if (pt_)
        pt_->record(pt_comp_, obs::PathStage::L2Classify, pkt.trace_id,
                    eq_.now());
    deliverToPool(*pool, pkt);
}

// simlint: hot
void
NicPort::deliverToPool(Pool pool, const Packet &pkt)
{
    PoolState &ps = poolState(pool);
    pci::PciFunction &fn = poolFunction(pool);

    if (!ps.enabled || !fn.busMasterEnabled()) {
        ps.stats.rx_drop_master.inc();
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return;
    }
    auto buf = ps.ring.take();
    if (!buf) {
        ps.ring.countOverflow();
        ps.stats.rx_drop_ring.inc();
        sim::fluidTransitionAll(sim::FluidTransition::RingEdge);
        SRIOV_TRACE(sim::TraceCat::Nic, "%s pool %u: ring dry, drop",
                    name_.c_str(), pool);
        return;
    }
    if (pt_)
        pt_->record(pt_comp_, obs::PathStage::RingTake, pkt.trace_id,
                    eq_.now());
    mem::Addr gpa = *buf;
    if (iommu_) {
        auto r = iommu_->translate(fn.rid(), gpa, /*is_write=*/true);
        if (!r.ok()) {
            ps.stats.rx_drop_iommu.inc();
            sim::fluidTransitionAll(sim::FluidTransition::Drop);
            return;
        }
        if (pt_)
            pt_->record(pt_comp_, obs::PathStage::IommuXlate,
                        pkt.trace_id, eq_.now());
    }
    if (thin_) {
        settleStats(ps);    // keeps the ledger ring short and hot
        sim::Time c =
            // simlint:allow(hot-path-alloc): reserves link time, not memory
            dma_.reserve(pkt.bytes, pkt.trace_id, obs::PathStage::RxDma);
        // Early completion: when the frame completes strictly inside
        // the current ITR window, the exact model would only set
        // intr_pending at c — every visible effect is reproducible
        // without an event (stats ledgered at c, frame queued with
        // ready=c, window expiry woken by the deferred timer). The
        // strict `<` matters: no drain can run at c, so queueing the
        // frame ahead of time is unobservable. The real_inflight gate
        // keeps `completed` ready-sorted across the two push paths.
        if (c < ps.armed_until && ps.real_inflight == 0) {
            // RingBuf grows only to the burst high-water mark at
            // warm-up; steady state is a masked store (the bench
            // operator-new gate enforces zero allocs at runtime).
            // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
            ps.completed.push_back(PendingRx{RxCompletion{pkt, gpa}, c});
            // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
            ps.rx_ledger.push_back(StatDelta{c, pkt.bytes});
            ps.intr_pending = true;
            ps.itr_timer.armAt(ps.armed_until);
            return;
        }
        ++ps.real_inflight;
        eq_.scheduleAt(c, [this, pool, pkt, gpa]() {
            finishRx(pool, pkt, gpa);
        }, "dma.done");
        return;
    }
    dma_.transfer(pkt.bytes, pkt.trace_id, obs::PathStage::RxDma,
                  [this, pool, pkt, gpa]() {
        finishRx(pool, pkt, gpa);
    });
}

// simlint: hot
void
NicPort::finishRx(Pool pool, const Packet &pkt, mem::Addr gpa)
{
    PoolState &p = poolState(pool);
    if (p.real_inflight > 0)
        --p.real_inflight;
    // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
    p.completed.push_back(PendingRx{RxCompletion{pkt, gpa}, eq_.now()});
    p.stats.rx_frames.inc();
    p.stats.rx_bytes.inc(pkt.bytes);
    requestInterrupt(pool);
}

// simlint: hot
void
NicPort::requestInterrupt(Pool pool)
{
    PoolState &ps = poolState(pool);
    if (thin_) {
        if (eq_.now() < ps.armed_until) {
            ps.intr_pending = true;
            ps.itr_timer.armAt(ps.armed_until);
            return;
        }
        ps.stats.interrupts.inc();
        SRIOV_TRACE(sim::TraceCat::Irq, "%s pool %u: raise (itr %.0f Hz)",
                    name_.c_str(), pool, ps.itr_hz);
        stampRaise(ps);
        noteRaise(ps, pool);
        signalPool(pool);
        if (ps.itr_hz > 0) {
            // Lazy throttle window: no expiry event unless a deferred
            // raise actually needs one (itr_timer armed on demand).
            ps.armed_until = eq_.now() + itrWindow(ps);
        }
        return;
    }
    if (ps.throttle_armed) {
        ps.intr_pending = true;
        return;
    }
    ps.stats.interrupts.inc();
    SRIOV_TRACE(sim::TraceCat::Irq, "%s pool %u: raise (itr %.0f Hz)",
                name_.c_str(), pool, ps.itr_hz);
    stampRaise(ps);
    noteRaise(ps, pool);
    signalPool(pool);
    if (ps.itr_hz <= 0)
        return;
    ps.throttle_armed = true;
    eq_.scheduleIn(itrWindow(ps), [this, pool]() {
        // Pools can shrink (VF disable) while a timer is in flight.
        if (pool >= pools_.size())
            return;
        PoolState &p = *pools_[pool];
        p.throttle_armed = false;
        if (p.intr_pending) {
            p.intr_pending = false;
            requestInterrupt(pool);
        }
    }, "nic.itr");
}

void
NicPort::itrExpired(Pool pool)
{
    PoolState &ps = poolState(pool);
    if (ps.intr_pending) {
        ps.intr_pending = false;
        requestInterrupt(pool);
    }
}

// simlint: hot
void
NicPort::transmit(Pool pool, const Packet &pkt)
{
    PoolState &ps = poolState(pool);
    pci::PciFunction &fn = poolFunction(pool);
    if (!fn.busMasterEnabled()) {
        ps.stats.rx_drop_master.inc();
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return;
    }
    // TX descriptor ring is finite: drop when the DMA engine is this
    // far behind (an open-loop UDP sender outrunning the PCIe link).
    if (dma_.queueDepth() > kTxBacklogCap) {
        ps.stats.tx_dropped.inc();
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return;
    }
    if (pt_)
        pt_->record(pt_comp_, obs::PathStage::GuestTx, pkt.trace_id,
                    eq_.now());
    if (thin_) {
        // Flow-through: a wire-bound frame needs no completion event —
        // TX stats are ledgered at the DMA-done instant c and the wire
        // takes the frame with release=c. Classification moves from c
        // to now, a window in which filter reprogramming is assumed
        // quiescent (control-plane changes during line-rate TX);
        // local/unmatched frames keep the exact-time completion event.
        auto local = l2_.classify(pkt);
        if (!local && wire_ != nullptr) {
            settleStats(ps);    // keeps the ledger ring short and hot
            // simlint:allow(hot-path-alloc): reserves link time, not memory
            sim::Time c = dma_.reserve(pkt.bytes, pkt.trace_id,
                                       obs::PathStage::TxDma);
            // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
            ps.tx_ledger.push_back(StatDelta{c, pkt.bytes});
            wire_->sendAt(*this, pkt, c);
            return;
        }
        // simlint:allow(hot-path-alloc): reserves link time, not memory
        sim::Time c = dma_.reserve(pkt.bytes, pkt.trace_id,
                                   obs::PathStage::TxDma);
        eq_.scheduleAt(c, [this, pool, pkt]() { finishTx(pool, pkt); },
                       "dma.done");
        return;
    }
    // Fetch the frame from memory across the PCIe link, then route.
    dma_.transfer(pkt.bytes, pkt.trace_id, obs::PathStage::TxDma,
                  [this, pool, pkt]() { finishTx(pool, pkt); });
}

// simlint: hot
void
NicPort::finishTx(Pool pool, const Packet &pkt)
{
    PoolState &p = poolState(pool);
    p.stats.tx_frames.inc();
    p.stats.tx_bytes.inc(pkt.bytes);
    auto local = l2_.classify(pkt);
    if (local) {
        // Internal switch: loop back through a second DMA crossing.
        // (Wire-bound frames are L2Classify-stamped at the receiving
        // port instead; the thin TX fast path never reaches here, so
        // stamping an unmatched classification would diverge by mode.)
        if (pt_)
            pt_->record(pt_comp_, obs::PathStage::L2Classify,
                        pkt.trace_id, eq_.now());
        deliverToPool(*local, pkt);
    } else if (wire_) {
        wire_->send(*this, pkt);
    } else {
        drop_no_match_.inc();
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
    }
}

SriovNic::SriovNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf,
                   SriovParams p)
    : NicPort(eq, std::move(name), pf_bdf, p.port, /*num_pools=*/1), sp_(p)
{
    pci::SriovCapability::Params cp;
    cp.total_vfs = p.total_vfs;
    cp.initial_vfs = p.total_vfs;
    cp.vf_device_id = p.vf_device_id;
    sriov_cap_ = std::make_unique<pci::SriovCapability>(pf_->config(),
                                                        pf_->caps(), cp);
    sriov_cap_->onVfEnable([this](bool en, std::uint16_t n) {
        vfEnableChanged(en, n);
    });
}

SriovNic::SriovNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf)
    : SriovNic(eq, std::move(name), pf_bdf, SriovParams{})
{
}

void
SriovNic::vfEnableChanged(bool enabled, std::uint16_t num_vfs)
{
    if (enabled) {
        if (num_vfs > sp_.total_vfs)
            sim::fatal("%s: NumVFs %u > TotalVFs %u", name_.c_str(), num_vfs,
                       sp_.total_vfs);
        for (unsigned i = 0; i < num_vfs; ++i) {
            pci::Rid rid = sriov_cap_->vfRid(pf_->rid(), i);
            auto vf = std::make_unique<pci::PciFunction>(
                pci::Bdf::fromRid(rid), sp_.port.vendor_id,
                sp_.vf_device_id, 0x020000, pci::PciFunction::Kind::Virtual);
            vf->declareBar(0, 16 * 1024);
            // 82576 VF: rx, tx, mailbox vectors.
            vf->addMsix(3, 3);
            vfs_.push_back(&addFunction(std::move(vf)));
            mailboxes_.push_back(std::make_unique<VfMailbox>());
        }
        resizePools(1 + num_vfs);
    } else {
        if (vfs_removing_)
            vfs_removing_();
        for (pci::PciFunction *vf : vfs_)
            removeFunction(*vf);
        vfs_.clear();
        mailboxes_.clear();
        for (unsigned p = 1; p < poolCount(); ++p)
            l2_.clearPool(Pool(p));
        resizePools(1);
    }
    if (vfs_changed_)
        vfs_changed_();
}

pci::PciFunction *
SriovNic::vf(unsigned i)
{
    return i < vfs_.size() ? vfs_[i] : nullptr;
}

VfMailbox &
SriovNic::mailbox(unsigned vf_index)
{
    return *mailboxes_.at(vf_index);
}

pci::PciFunction &
SriovNic::poolFunction(Pool pool)
{
    if (pool == 0)
        return *pf_;
    unsigned i = pool - 1;
    if (i >= vfs_.size())
        sim::panic("%s: pool %u has no VF", name_.c_str(), pool);
    return *vfs_[i];
}

void
SriovNic::signalPool(Pool pool)
{
    // Vector 0 carries RX (and, in this model, TX-completion) events.
    poolFunction(pool).signalMsix(0);
}

} // namespace sriov::nic
