/**
 * @file
 * DescRing: an RX descriptor ring as the device sees it.
 *
 * The driver posts buffers (guest-physical addresses); the device
 * consumes one per received frame. When the ring runs dry the device
 * must drop — the `dd_bufs` overflow of the paper's AIC analysis
 * (Section 5.3). The default size, 1024, matches the paper's
 * experimental configuration.
 */

#ifndef SRIOV_NIC_DESC_RING_HPP
#define SRIOV_NIC_DESC_RING_HPP

#include <cstdint>
#include <optional>

#include "mem/machine_memory.hpp"
#include "obs/histogram.hpp"
#include "sim/ring_buf.hpp"
#include "sim/stats.hpp"

namespace sriov::nic {

class DescRing
{
  public:
    explicit DescRing(std::size_t capacity = 1024)
        : capacity_(capacity), buffers_(capacity)
    {
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t available() const { return buffers_.size(); }
    bool empty() const { return buffers_.empty(); }

    /**
     * Driver side: post a buffer at @p gpa.
     * @return false if the ring is already full.
     */
    bool post(mem::Addr gpa);

    /** Device side: take the next posted buffer; nullopt = ring dry. */
    std::optional<mem::Addr> take();

    /** Device side: record a frame dropped for lack of descriptors. */
    void countOverflow() { overflows_.inc(); }

    /** Drop all posted buffers (device reset). */
    void reset();

    std::uint64_t posted() const { return posted_.value(); }
    std::uint64_t consumed() const { return consumed_.value(); }
    std::uint64_t overflows() const { return overflows_.value(); }
    /** Buffers thrown away by reset() without being consumed. */
    std::uint64_t discarded() const { return discarded_.value(); }

    /** Counter objects, for registration in an obs::MetricRegistry. */
    const sim::Counter &postedCounter() const { return posted_; }
    const sim::Counter &consumedCounter() const { return consumed_; }
    const sim::Counter &overflowCounter() const { return overflows_; }

    /**
     * Observation tap: when set, every take() records the occupancy
     * the arriving frame sees (posted buffers before consumption, so a
     * dry ring records 0 — the dd_bufs overflow precondition of §5.3).
     * Disabled cost: one branch per take().
     */
    void setOccupancyTap(obs::Histogram *h) { occupancy_tap_ = h; }
    obs::Histogram *occupancyTap() const { return occupancy_tap_; }

    /** Fluid-mode state walk (sim/fluid.hpp). Buffer *addresses* are
     *  deliberately unvisited: the gpa ring rotates by the per-period
     *  frame count (breaking delta equality) and no observable depends
     *  on which address a frame lands in — only on the occupancy and
     *  the posted/consumed totals, which are visited. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        v.inv("ring.cap", capacity_);
        v.inv("ring.avail", buffers_.size());
        posted_.fluidVisit(v, "ring.posted");
        consumed_.fluidVisit(v, "ring.consumed");
        overflows_.fluidVisit(v, "ring.overflows");
        discarded_.fluidVisit(v, "ring.discarded");
    }

  private:
    std::size_t capacity_;
    sim::RingBuf<mem::Addr> buffers_;
    sim::Counter posted_;
    sim::Counter consumed_;
    sim::Counter overflows_;
    sim::Counter discarded_;
    obs::Histogram *occupancy_tap_ = nullptr;
};

} // namespace sriov::nic

#endif // SRIOV_NIC_DESC_RING_HPP
