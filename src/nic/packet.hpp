/**
 * @file
 * Ethernet frames as the simulation moves them around.
 *
 * Payload contents are not simulated; a Packet carries addressing,
 * sizes and flow bookkeeping (sequence numbers for the TCP model).
 * Size conventions: `bytes` is the Ethernet frame (MAC header + IP +
 * transport + payload + FCS, e.g. 1518 for a full 1500-byte MTU
 * frame); the wire additionally serializes preamble + IFG (20 bytes).
 * netperf-style goodput is computed from payloadBytes().
 */

#ifndef SRIOV_NIC_PACKET_HPP
#define SRIOV_NIC_PACKET_HPP

#include <cstdint>
#include <string>

#include "mem/machine_memory.hpp"
#include "sim/fluid.hpp"
#include "sim/time.hpp"

namespace sriov::nic {

/** 48-bit MAC address kept in the low bits of a u64. */
struct MacAddr
{
    std::uint64_t value = 0;

    constexpr bool operator==(const MacAddr &) const = default;

    static constexpr MacAddr
    make(std::uint8_t group, std::uint16_t index)
    {
        // Locally administered unicast: 02:00:00:gg:ii:ii
        return MacAddr{0x020000000000ull | (std::uint64_t(group) << 16)
                       | index};
    }

    static constexpr MacAddr broadcast() { return MacAddr{0xffffffffffffull}; }
    constexpr bool isBroadcast() const { return *this == broadcast(); }

    std::string toString() const;
};

struct MacAddrHash
{
    std::size_t operator()(const MacAddr &m) const
    {
        return std::hash<std::uint64_t>()(m.value);
    }
};

/** Per-frame protocol overheads (bytes). */
namespace frame {
constexpr std::uint32_t kEthHeader = 14;
constexpr std::uint32_t kVlanTag = 4;
constexpr std::uint32_t kFcs = 4;
constexpr std::uint32_t kPreambleIfg = 20;
constexpr std::uint32_t kIpHeader = 20;
constexpr std::uint32_t kUdpHeader = 8;
constexpr std::uint32_t kTcpHeader = 20;
constexpr std::uint32_t kMtu = 1500;

/** Frame size for a UDP datagram with @p payload bytes. */
constexpr std::uint32_t
udpFrame(std::uint32_t payload)
{
    return kEthHeader + kIpHeader + kUdpHeader + payload + kFcs;
}

/** Frame size for a TCP segment with @p payload bytes. */
constexpr std::uint32_t
tcpFrame(std::uint32_t payload)
{
    return kEthHeader + kIpHeader + kTcpHeader + payload + kFcs;
}

/** Largest UDP payload in one MTU frame (1472 for MTU 1500). */
constexpr std::uint32_t kMaxUdpPayload = kMtu - kIpHeader - kUdpHeader;
/** Largest TCP payload in one MTU frame (1460, no options). */
constexpr std::uint32_t kMaxTcpPayload = kMtu - kIpHeader - kTcpHeader;
} // namespace frame

struct Packet
{
    enum class Kind : std::uint8_t { Udp, Tcp, TcpAck, Control };

    MacAddr dst;
    MacAddr src;
    std::uint16_t vlan = 0;          ///< 0 = untagged
    std::uint32_t bytes = 0;         ///< Ethernet frame size
    Kind kind = Kind::Udp;
    std::uint32_t flow = 0;          ///< flow/connection id
    std::uint64_t seq = 0;           ///< TCP: cumulative end-seq of segment
    std::uint64_t ack = 0;           ///< TcpAck: cumulative acked bytes
    sim::Time sent_at;               ///< for latency accounting
    std::uint64_t trace_id = 0;      ///< pathtrace id; 0 = untraced

    /** Bytes the physical line serializes for this frame. */
    std::uint32_t
    wireBytes() const
    {
        return bytes + frame::kPreambleIfg
            + (vlan ? frame::kVlanTag : 0);
    }

    /** Transport goodput bytes this frame carries. */
    std::uint32_t
    payloadBytes() const
    {
        std::uint32_t hdr = frame::kEthHeader + frame::kIpHeader + frame::kFcs
            + (kind == Kind::Udp ? frame::kUdpHeader : frame::kTcpHeader);
        return bytes > hdr ? bytes - hdr : 0;
    }
};

/**
 * Fluid-mode slots of an in-flight frame (sim/fluid.hpp). Addressing
 * and sizes are phase-invariant; sequence numbers, the send timestamp
 * and the trace id advance linearly with the periodic schedule.
 */
inline void
fluidVisitPacket(sim::FluidVisitor &v, const char *name, Packet &p)
{
    v.inv(name, p.dst.value);
    v.inv(name, p.src.value);
    v.inv(name, p.vlan);
    v.inv(name, p.bytes);
    v.inv(name, std::uint64_t(p.kind));
    v.inv(name, p.flow);
    v.u64(name, p.seq);
    v.u64(name, p.ack);
    v.time(name, p.sent_at);
    v.u64(name, p.trace_id);
}

} // namespace sriov::nic

#endif // SRIOV_NIC_PACKET_HPP
