/**
 * @file
 * PF↔VF mailbox with doorbell, modelled after the 82576 (paper §4.2).
 *
 * The VF driver and PF driver communicate *through the device*, never
 * through a VMM-specific channel — this is what makes the architecture
 * VMM-agnostic. The sender writes a message and rings the doorbell,
 * which interrupts the receiver; the receiver consumes the message and
 * sets an ACK bit in a shared register.
 */

#ifndef SRIOV_NIC_MAILBOX_HPP
#define SRIOV_NIC_MAILBOX_HPP

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/stats.hpp"

namespace sriov::nic {

/** Messages the igbvf-like driver exchanges with the PF driver. */
struct MboxMessage
{
    enum class Type : std::uint8_t
    {
        SetMac,
        SetVlan,
        SetMulticast,
        Reset,
        LinkChange,     ///< PF -> VF notification
        PfReset,        ///< PF -> VF: impending global reset
        PfRemoval,      ///< PF -> VF: impending driver removal
        Ack,
        Nack,
    };

    Type type = Type::Ack;
    std::uint64_t payload = 0;
};

/** One direction of the mailbox pair for a single VF. */
class Mailbox
{
  public:
    using DoorbellFn = std::function<void(const MboxMessage &)>;

    /** Receiver installs the doorbell interrupt handler. */
    void setDoorbell(DoorbellFn fn) { doorbell_ = std::move(fn); }

    /**
     * Sender: write the message and ring. Returns false when the
     * previous message has not been acknowledged yet (register busy).
     */
    bool post(const MboxMessage &msg);

    /** Receiver: acknowledge, freeing the register for the next post. */
    void ack();

    bool busy() const { return busy_; }
    std::uint64_t posted() const { return posted_.value(); }

  private:
    DoorbellFn doorbell_;
    bool busy_ = false;
    sim::Counter posted_;
};

/** The bidirectional mailbox a VF shares with its PF. */
struct VfMailbox
{
    Mailbox to_pf;      ///< VF driver -> PF driver
    Mailbox to_vf;      ///< PF driver -> VF driver
};

} // namespace sriov::nic

#endif // SRIOV_NIC_MAILBOX_HPP
