#include "nic/vmdq_nic.hpp"

namespace sriov::nic {

namespace {
NicPort::Params
vmdq82598(NicPort::Params p)
{
    p.pf_device_id = 0x10b6;    // 82598
    if (p.dma.link_bps < 16e9) {
        // PCIe Gen2 x8 class link with pipelined descriptor fetches:
        // a 10 GbE part must sustain >810 k frames/s.
        p.dma.link_bps = 16e9;
        p.dma.per_dma_overhead = sim::Time::ns(100);
    }
    return p;
}
} // namespace

VmdqNic::VmdqNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf,
                 VmdqParams p)
    : NicPort(eq, std::move(name), pf_bdf, vmdq82598(p.port), p.num_queues)
{
}

VmdqNic::VmdqNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf)
    : VmdqNic(eq, std::move(name), pf_bdf, VmdqParams{})
{
}

pci::PciFunction &
VmdqNic::poolFunction(Pool)
{
    // Every queue DMAs with the PF's RID: the defining VMDq limitation.
    return *pf_;
}

void
VmdqNic::signalPool(Pool pool)
{
    pf_->signalMsix(pool);
}

PlainNic::PlainNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf,
                   Params p)
    : NicPort(eq, std::move(name), pf_bdf, p, /*num_pools=*/1)
{
}

PlainNic::PlainNic(sim::EventQueue &eq, std::string name, pci::Bdf pf_bdf)
    : PlainNic(eq, std::move(name), pf_bdf, Params{})
{
}

pci::PciFunction &
PlainNic::poolFunction(Pool)
{
    return *pf_;
}

void
PlainNic::signalPool(Pool)
{
    pf_->signalMsix(0);
}

} // namespace sriov::nic
