#include "nic/l2_switch.hpp"

#include <algorithm>

namespace sriov::nic {

void
L2Switch::setFilter(MacAddr mac, std::uint16_t vlan, Pool pool)
{
    table_[Key{mac, vlan}] = pool;
}

void
L2Switch::clearFilter(MacAddr mac, std::uint16_t vlan)
{
    table_.erase(Key{mac, vlan});
}

void
L2Switch::clearPool(Pool pool)
{
    std::erase_if(table_, [pool](const auto &kv) {
        return kv.second == pool;
    });
}

std::optional<L2Switch::Pool>
L2Switch::classify(const Packet &pkt) const
{
    lookups_.inc();
    auto it = table_.find(Key{pkt.dst, pkt.vlan});
    if (it == table_.end()) {
        unmatched_.inc();
        return std::nullopt;
    }
    matched_.inc();
    return it->second;
}

} // namespace sriov::nic
