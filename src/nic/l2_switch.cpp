#include "nic/l2_switch.hpp"

namespace sriov::nic {

namespace {

/** A port has one filter per pool (≤ 8 on the 82576); 16 slots keep
 *  the whole table in one cache line pair and the load factor low. */
constexpr std::size_t kInitialSlots = 16;

} // namespace

L2Switch::L2Switch() : slots_(kInitialSlots), mask_(kInitialSlots - 1) {}

L2Switch::Slot &
L2Switch::findSlot(std::uint64_t key)
{
    std::size_t i = hashKey(key) & mask_;
    Slot *first_free = nullptr;
    for (;;) {
        Slot &s = slots_[i];
        if (s.state == SlotState::Used && s.key == key)
            return s;
        if (s.state == SlotState::Tombstone) {
            if (first_free == nullptr)
                first_free = &s;
        } else if (s.state == SlotState::Empty) {
            return first_free != nullptr ? *first_free : s;
        }
        i = (i + 1) & mask_;
    }
}

// simlint: hot
const L2Switch::Slot *
L2Switch::findUsed(std::uint64_t key) const
{
    std::size_t i = hashKey(key) & mask_;
    for (;;) {
        const Slot &s = slots_[i];
        if (s.state == SlotState::Used && s.key == key)
            return &s;
        if (s.state == SlotState::Empty)
            return nullptr;
        i = (i + 1) & mask_;
    }
}

void
L2Switch::growRehash()
{
    std::vector<Slot> old = std::move(slots_);
    // Doubling also reclaims tombstones, keeping probe chains short.
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    occupied_ = size_;
    for (const Slot &s : old) {
        if (s.state != SlotState::Used)
            continue;
        std::size_t i = hashKey(s.key) & mask_;
        while (slots_[i].state == SlotState::Used)
            i = (i + 1) & mask_;
        slots_[i] = s;
    }
}

void
L2Switch::setFilter(MacAddr mac, std::uint16_t vlan, Pool pool)
{
    std::uint64_t key = packKey(mac, vlan);
    Slot &s = findSlot(key);
    if (s.state != SlotState::Used) {
        if (s.state == SlotState::Empty)
            ++occupied_;
        ++size_;
        s.key = key;
        s.state = SlotState::Used;
    }
    s.pool = pool;
    invalidateCache();
    // Keep at least one Empty slot per probe chain (load < 3/4,
    // tombstones included) so unmatched lookups terminate.
    if (occupied_ * 4 >= slots_.size() * 3)
        growRehash();
}

void
L2Switch::clearFilter(MacAddr mac, std::uint16_t vlan)
{
    Slot &s = findSlot(packKey(mac, vlan));
    if (s.state == SlotState::Used) {
        s.state = SlotState::Tombstone;
        --size_;
    }
    invalidateCache();
}

void
L2Switch::clearPool(Pool pool)
{
    for (Slot &s : slots_) {
        if (s.state == SlotState::Used && s.pool == pool) {
            s.state = SlotState::Tombstone;
            --size_;
        }
    }
    invalidateCache();
}

// simlint: hot
std::optional<L2Switch::Pool>
L2Switch::classify(const Packet &pkt) const
{
    lookups_.inc();
    std::uint64_t key = packKey(pkt.dst, pkt.vlan);
    if (cache_valid_ && cache_key_ == key) {
        matched_.inc();
        return cache_pool_;
    }
    const Slot *s = findUsed(key);
    if (s == nullptr) {
        unmatched_.inc();
        return std::nullopt;
    }
    matched_.inc();
    cache_valid_ = true;
    cache_key_ = key;
    cache_pool_ = s->pool;
    return s->pool;
}

} // namespace sriov::nic
