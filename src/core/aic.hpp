/**
 * @file
 * ITR-policy factory + the AIC equations as standalone functions
 * (paper Section 5.3). Benches and examples name policies as strings
 * ("20kHz", "2kHz", "1kHz", "AIC", "adaptive").
 */

#ifndef SRIOV_CORE_AIC_HPP
#define SRIOV_CORE_AIC_HPP

#include <memory>
#include <string>

#include "drivers/itr_policy.hpp"

namespace sriov::core {

/**
 * Eq. (1)–(2): the interrupt frequency that avoids overflowing the
 * smaller of the application/driver buffer pools with 1/r headroom.
 */
double aicFrequency(double pps, std::size_t ap_bufs, std::size_t dd_bufs,
                    double r, double lif);

/**
 * Build a policy from a spec string: "AIC", "adaptive", or a static
 * frequency like "20kHz" / "2000" (Hz).
 */
std::unique_ptr<drivers::ItrPolicy> makeItrPolicy(const std::string &spec);

} // namespace sriov::core

#endif // SRIOV_CORE_AIC_HPP
