/**
 * @file
 * FluidDirector: the control loop of fluid (flow-level) mode.
 *
 * The ledger (sim/fluid.hpp) says *when* the testbed looks periodic;
 * the director proves it and cashes it in. It polls the ledger on a
 * fixed cadence and, once every flow is steady with a common
 * hyperperiod P, runs a three-capture probe cycle: full state walks
 * S0, S1, S2 taken exactly P apart. S1 must repeat S0's slot sequence
 * (same components, same ring depths); S2 must show every slot's
 * second per-period delta equal to its first (integers exactly,
 * doubles to a relative epsilon). That is the periodicity certificate:
 * the schedule provably satisfies S(t + P) = shift_P(S(t)) over the
 * probed window, with the deltas *measured*, not modeled.
 *
 * The pending event heap is classified against the same certificate.
 * Every event pending at S2 must either match an S1 event of the same
 * tag at the same relative due-time (periodic: its heap key is shifted
 * by n*P, allowed only for tags whose captures are position-free) or
 * be the *same* event (same seq, same absolute due-time) still waiting
 * (absolute: left in place, and bounding the warp so it never lands in
 * the past). Anything else — an event seen only once, or a periodic
 * event whose closure captured per-packet state — rejects the cycle.
 *
 * A successful cycle warps: every slot += n * delta, the clock and the
 * periodic events += n * P, the ledger's send marks += n * P. Counters
 * at the warp target are byte-identical to the exact schedule by
 * construction. On rejection the director escalates the period to
 * m * P (interacting grids often only repeat at a small multiple) and
 * finally backs off exponentially. Transitions reported to the ledger
 * (drops, RTOs, ITR changes, VM churn...) drop the testbed back to
 * exact per-packet simulation automatically: the ledger goes unsteady
 * and no cycle starts until the hysteresis hold expires.
 */

#ifndef SRIOV_CORE_FLUID_PATH_HPP
#define SRIOV_CORE_FLUID_PATH_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fluid.hpp"

namespace sriov::core {

class FluidDirector
{
  public:
    struct Config
    {
        /** Ledger steadiness poll cadence (off the ms grid on purpose:
         *  a poll landing exactly on a schedule instant would probe a
         *  phase that races same-time events). */
        sim::Time poll = sim::Time::us(97);
        /** Base back-off after a rejected cycle (doubles per
         *  consecutive rejection, capped at kMaxBackoffShift). */
        sim::Time backoff = sim::Time::ms(5);
        /** Largest hyperperiod worth probing — each cycle executes
         *  2 * period of exact simulation before it can warp. */
        sim::Time period_cap = sim::Time::ms(50);
        /** Period-multiplier scan bound (m * P for m = 1..max_mult). */
        unsigned max_mult = 8;
        /** Smallest warp worth applying (in periods). */
        std::int64_t min_periods = 2;
    };

    static constexpr unsigned kMaxBackoffShift = 6;

    /** Full state walk over every component of the testbed. MUST be
     *  pure visitation: no scheduling, no cancellation, no sends. */
    using StateWalk = std::function<void(sim::FluidVisitor &)>;

    /** Extra warp gate, checked after verification: return false to
     *  refuse (e.g. CPU work whose closures captured packets is in
     *  flight — sim::CpuServer::hasWorkTagged). Null = always allow. */
    using WarpGate = std::function<bool()>;

    /**
     * Installs this director's ledger as the process-global fluid
     * ledger (sim::setFluidLedger); the destructor uninstalls it.
     * Call start() once the testbed is fully built.
     */
    FluidDirector(sim::EventQueue &eq, StateWalk walk, WarpGate gate);
    FluidDirector(sim::EventQueue &eq, StateWalk walk, WarpGate gate,
                  Config cfg);
    ~FluidDirector();

    FluidDirector(const FluidDirector &) = delete;
    FluidDirector &operator=(const FluidDirector &) = delete;

    /** Schedule the first steadiness poll. */
    void start();

    sim::FlowLedger &ledger() { return ledger_; }
    const sim::FlowLedger &ledger() const { return ledger_; }
    const sim::FluidStats &stats() const { return stats_; }

    /** Diagnostics: why the most recent cycle failed ("" if none). */
    const std::string &lastReject() const { return last_reject_; }

    /**
     * Tags whose pending events may be shifted by a whole number of
     * periods: their callbacks capture only owner pointers/indices, so
     * re-executing them later reproduces the shifted schedule. Tags
     * carrying per-packet captures (dma.done, exact-mode wire events,
     * netback grant batches) are deliberately absent — a cycle that
     * finds one pending rejects. Exposed for simlint/tests.
     */
    static bool shiftSafeTag(const char *tag);

  private:
    enum class Phase : std::uint8_t { Idle, AwaitS1, AwaitS2 };

    void schedulePoll(sim::Time delay);
    void onPoll();
    /** Capture S0 now and schedule the S1 probe one period out. */
    void beginCycle(sim::Time period);
    void onProbe();
    void finishCycle();    ///< S2 is in: verify, classify, warp
    bool classifyPending(std::string *why);
    bool applyWarp(std::string *why);
    void reject(std::string why);

    sim::EventQueue &eq_;
    StateWalk walk_;
    WarpGate gate_;
    Config cfg_;
    sim::FlowLedger ledger_;
    sim::FluidStats stats_;

    Phase phase_ = Phase::Idle;
    sim::Time period_;
    unsigned mult_ = 1;
    unsigned consecutive_rejects_ = 0;
    std::unique_ptr<sim::FluidVisitor> s0_, s1_, s2_;
    std::vector<sim::EventQueue::PendingEvent> e1_, e2_;
    std::uint64_t exec_s1_ = 0;
    /** key_index values (into the S2 heap snapshot) to shift. */
    std::vector<std::uint32_t> shift_keys_;
    sim::Time abs_bound_;
    std::string last_reject_;
};

} // namespace sriov::core

#endif // SRIOV_CORE_FLUID_PATH_HPP
