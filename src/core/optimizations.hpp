/**
 * @file
 * Named optimization sets (paper Section 5), applied to a hypervisor
 * and — for AIC, which lives in the driver — consulted by the testbed
 * when it builds VF drivers.
 */

#ifndef SRIOV_CORE_OPTIMIZATIONS_HPP
#define SRIOV_CORE_OPTIMIZATIONS_HPP

#include <string>

#include "vmm/hypervisor.hpp"

namespace sriov::core {

struct OptimizationSet
{
    bool mask_unmask_accel = false;    ///< Section 5.1
    bool eoi_accel = false;            ///< Section 5.2
    bool eoi_accel_check = false;      ///< §5.2 instruction check
    bool aic = false;                  ///< Section 5.3

    /** @name Presets used by the figures. @{ */
    static OptimizationSet none();
    static OptimizationSet maskOnly();
    static OptimizationSet maskEoi();
    static OptimizationSet all();
    /** @} */

    /** Program the hypervisor-side switches. */
    void apply(vmm::Hypervisor &hv) const;

    std::string describe() const;
};

} // namespace sriov::core

#endif // SRIOV_CORE_OPTIMIZATIONS_HPP
