/**
 * @file
 * Testbed: the paper's experimental setup in a box (Section 6.1).
 *
 * Builds two machines on one event queue:
 *  - "server": dual quad-core Xeon 5500 (16 SMT threads @ 2.8 GHz,
 *    12 GiB), Xen-3.4-like hypervisor, dom0 with 8 VCPUs pinned to
 *    threads 0–7, and ten 82576-like 1 GbE SR-IOV ports (7 VFs each,
 *    Fig. 11's allocation) — or a single 10 GbE VMDq NIC for §6.6.
 *  - "client": an identical native machine running the netperf peers,
 *    one per port, directly connected.
 *
 * Guests are added with a domain type (HVM/PVM/Native), an attachment
 * mode (SR-IOV VF / PV split driver / VMDq queue), and a kernel
 * version; guest i lands on port i mod num_ports, taking that port's
 * next VF — exactly VF_{7j+n} of the paper.
 *
 * With sim::shardCount() != 0 at construction the testbed builds in
 * *sharded* form (DESIGN.md §13): each port becomes two islands — a
 * server slice (its own EventQueue, hypervisor, dom0 kernel, IOV
 * manager and path tracer, owning that port's NIC, PF driver and
 * guests) and a client island (queue, hypervisor, netperf peer) — and
 * the inter-machine wire is the only cross-island edge, run by a
 * conservative sim::ShardEngine on up to shardCount() worker threads.
 * Island order is fixed (server slices 0..P-1, then clients P..2P-1),
 * so orderDigest()/pathSnapshot() are byte-identical for every shard
 * count >= 1. Only the SR-IOV UDP/TCP netperf topology is shardable;
 * PV/VMDq/netback, dom0 traffic, guest-to-guest, bonding and migration
 * need intra-host coupling and refuse sharded construction. The
 * sharded machine model differs from the legacy one (per-slice
 * hypervisors do not contend across ports), so results are compared
 * across shard counts, never against --shards=0.
 */

#ifndef SRIOV_CORE_TESTBED_HPP
#define SRIOV_CORE_TESTBED_HPP

#include <map>
#include <memory>
#include <vector>

#include "core/aic.hpp"
#include "core/fluid_path.hpp"
#include "core/iov_manager.hpp"
#include "core/warp_coordinator.hpp"
#include "core/optimizations.hpp"
#include "drivers/native_driver.hpp"
#include "drivers/netback.hpp"
#include "drivers/pf_driver.hpp"
#include "drivers/vmdq_driver.hpp"
#include "guest/bonding.hpp"
#include "guest/netperf.hpp"
#include "nic/vmdq_nic.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/histogram.hpp"
#include "obs/metric.hpp"
#include "obs/pathtrace.hpp"
#include "sim/shard.hpp"
#include "sim/shard_engine.hpp"
#include "vmm/migration.hpp"

namespace sriov::check {
class InvariantChecker;
}

namespace sriov::core {

class Testbed
{
  public:
    enum class NetMode { Sriov, Pv, Vmdq };

    struct Params
    {
        unsigned num_ports = 10;
        /**
         * Hosts in the rack (sharded builds only; legacy refuses > 1).
         * Each host is a full server replica — num_ports ports, their
         * slices and client islands — and every wire runs through one
         * top-of-rack relay island that forwards frames by a static
         * MAC table, so any client port can reach any host's guest.
         * Global port g = host * num_ports + local port.
         */
        unsigned num_hosts = 1;
        double line_bps = 1e9;
        unsigned vfs_per_port = 7;
        vmm::CostModel costs{};
        OptimizationSet opts{};
        /** VF-driver ITR policy; "AIC" wins when opts.aic is set. */
        std::string itr = "adaptive";
        unsigned netback_threads = 4;
        bool use_vmdq_nic = false;     ///< single 82598 instead of ports
        mem::Addr guest_mem = 128ull << 20;
        std::size_t ap_bufs = guest::SocketBuffer::kDefaultApBufs;
    };

    struct Guest
    {
        vmm::Domain *dom = nullptr;
        std::unique_ptr<guest::GuestKernel> kern;
        std::unique_ptr<guest::NetStack> stack;
        std::unique_ptr<drivers::VfDriver> vf;
        std::unique_ptr<drivers::NetfrontDriver> pv;
        std::unique_ptr<guest::BondingDriver> bond;
        std::unique_ptr<guest::StreamReceiver> rx;
        nic::MacAddr mac;
        unsigned port = 0;
        NetMode mode = NetMode::Sriov;

        /** The device the stack is attached to. */
        guest::NetDevice *netdev = nullptr;
    };

    explicit Testbed(Params p);
    ~Testbed();

    Testbed(const Testbed &) = delete;
    Testbed &operator=(const Testbed &) = delete;

    /** @name Infrastructure access.
     *
     * eq()/server()/client()/iovm()/migration() address the legacy
     * single-queue build and are fatal on a sharded testbed — sharded
     * code goes through run()/measure()/orderDigest()/pathSnapshot(),
     * which work in both modes.
     * @{ */
    sim::EventQueue &eq();
    vmm::Hypervisor &server();
    vmm::Hypervisor &client();
    IovManager &iovm();
    vmm::MigrationManager &migration();
    bool sharded() const { return engine_ != nullptr; }
    sim::ShardEngine &shardEngine() { return *engine_; }
    const Params &params() const { return params_; }
    unsigned portCount() const { return unsigned(ports_.size()); }
    nic::SriovNic &port(unsigned i) { return *ports_.at(i); }
    nic::VmdqNic &vmdqNic() { return *vmdq_nic_; }
    nic::Wire &wire(unsigned i) { return *wires_.at(i); }
    drivers::PfDriver &pfDriver(unsigned i) { return *pf_drivers_.at(i); }
    drivers::NetbackDriver &netback(unsigned port);
    drivers::VmdqBackend &vmdqBackend() { return *vmdq_backend_; }
    guest::GuestKernel &dom0Kernel();
    /** @} */

    /** @name Guests. @{ */
    Guest &addGuest(vmm::DomainType type, NetMode mode,
                    guest::KernelVersion kv = guest::KernelVersion::v2_6_28,
                    bool bond_vf_with_pv = false);
    std::size_t guestCount() const { return guests_.size(); }
    Guest &guest(std::size_t i) { return *guests_.at(i); }
    /** @} */

    /** @name Workloads (client netperf toward a guest). @{ */
    guest::UdpStreamSender &startUdpToGuest(Guest &g, double offered_bps,
                                            std::uint32_t payload = 1472);
    /** Same stream, sourced from an explicit client port — on a
     *  multi-host testbed a port of *another* host sends through the
     *  ToR relay (the cross-host path). */
    guest::UdpStreamSender &startUdpToGuestFrom(
        unsigned client_port, Guest &g, double offered_bps,
        std::uint32_t payload = 1472);
    guest::TcpStreamSender &startTcpToGuest(
        Guest &g, std::uint32_t window = 120832,
        std::uint32_t payload = 1448);
    /** dom0's own interface on a port's PF pool (inter-VM tests). */
    guest::NetStack &dom0Net(unsigned port);
    /** The client machine's stack on a port (custom workloads). */
    guest::NetStack &clientStack(unsigned port)
    {
        return *client_ports_.at(port).stack;
    }
    /** A UDP sender running *in dom0* toward a guest (Fig. 10). */
    guest::UdpStreamSender &startUdpFromDom0(Guest &g, double offered_bps,
                                             std::uint32_t payload = 1472);
    /** A UDP sender in one guest toward another (Figs. 13/14). */
    guest::UdpStreamSender &startUdpGuestToGuest(
        Guest &from, Guest &to, double offered_bps,
        std::uint32_t payload = 1472);
    /** @} */

    /** @name Running and measuring (mode-independent). @{ */
    void run(sim::Time dt);
    /** Current simulated time (all island clocks agree between runs). */
    sim::Time now() const;
    /** Events executed so far — eq().executed() or the engine sum. */
    std::uint64_t executedEvents() const;
    /** Order fingerprint: eq().orderDigest(), or the engine's fold of
     *  per-island digests in island order. Identical across shard
     *  counts >= 1 (a different value from the legacy engine's). */
    std::uint64_t orderDigest() const;
    /** Path-tracer capture: the single tracer's snapshot, or the
     *  deterministic merge of all island tracers. */
    obs::PathSnapshot pathSnapshot() const;

    struct Measurement
    {
        double seconds = 0;
        double total_goodput_bps = 0;
        std::vector<double> per_guest_bps;
        std::map<std::string, double> cpu_by_tag;
        double dom0_pct = 0;      ///< incl. device models & backends
        double xen_pct = 0;
        double guests_pct = 0;
        double total_pct = 0;
    };

    /** Run @p warmup, then measure over @p window. */
    Measurement measure(sim::Time warmup, sim::Time window);
    /** @} */

    /**
     * @name Observability (src/obs).
     *
     * All instrumentation is pure observation: no events are added or
     * re-tagged, so the EventQueue's order digest is identical with
     * observability on, off, or absent.
     * @{
     */

    /** The latency/cost distributions an instrumented testbed keeps. */
    struct ObsHooks
    {
        ObsHooks();

        /** MSI raise → guest handler entry, µs (§4.1 delivery path). */
        obs::Histogram intr_latency_us;
        /** Per-exit cost in cycles, one histogram per reason (Fig. 7). */
        std::vector<obs::Histogram> exit_cost_cycles;
        /** RX-ring occupancy seen by each arriving frame (§5.3). */
        obs::Histogram ring_occupancy;
        /** TCP segment send → cumulative ACK, µs. */
        obs::Histogram tcp_rtt_us;

        obs::Histogram &exitCost(vmm::ExitReason r)
        {
            return exit_cost_cycles.at(unsigned(r));
        }
    };

    /**
     * Turn on the latency/cost taps (idempotent): interrupt-delivery
     * latency on the server hypervisor, VM-exit cost on dom0 and every
     * guest (current and future), RX-ring occupancy on every pool, TCP
     * RTT on every netperf TCP sender. Returns the histogram set.
     */
    ObsHooks &enableObs();
    ObsHooks *obsHooks() { return obs_.get(); }

    /**
     * Register the testbed's statistics in @p reg under @p prefix
     * ("server" gives the paper-style "server.nic0.vf3.rx_drops"
     * hierarchy). Pool and guest values register as bounds-checking
     * gauges — VF disable may destroy the underlying objects, and a
     * gauge re-resolves at snapshot time instead of dangling.
     */
    void registerMetrics(obs::MetricRegistry &reg,
                         const std::string &prefix = "server");

    /**
     * Draw this testbed in @p w: the event queue's tagged events plus
     * one track per server/client CPU. Detach by destroying @p w (or
     * w.detachAll()) before the testbed dies.
     */
    void attachObsTrace(obs::ChromeTraceWriter &w);

    /**
     * The causal packet-path tracer. Always present and wired into
     * every datapath component at construction; the global
     * obs::pathTraceMode() (sampled at construction) decides how much
     * it keeps. Snapshot it after a run for attribution/trails.
     */
    obs::PathTracer &pathTracer();
    const obs::PathTracer &pathTracer() const;

    /** @} */

    /**
     * @name Fluid (flow-level) mode (sim/fluid.hpp, core/fluid_path.hpp).
     *
     * With sim::fluidEnabled() at construction, a legacy-mode testbed
     * installs a FluidDirector on its queue: senders and NIC raise
     * streams feed the process-global ledger, and verified-periodic
     * stretches of the schedule are warped in closed form. A sharded
     * build gives every island its own FlowLedger (installed as the
     * thread-local override while that island executes) and, in
     * FluidMode::On, a WarpCoordinator that composes the two
     * accelerators: run() goes through it, and globally certified
     * stretches warp every island, ledger and cross-island channel in
     * lockstep at quiescent barriers (DESIGN.md §15).
     * @{
     */

    /** Full fluid state walk over every component (pure visitation;
     *  the exact order is the build order, so slot sequences are
     *  reproducible across runs). In sharded mode the walk also covers
     *  the cross-island channels and is only legal at a barrier. */
    void fluidVisit(sim::FluidVisitor &v);

    /** The installed director (null: fluid off or sharded build). */
    FluidDirector *fluidDirector() { return fluid_.get(); }

    /** The cross-shard coordinator (null unless sharded + mode On). */
    WarpCoordinator *warpCoordinator() { return coordinator_.get(); }

    /** Warp statistics from whichever accelerator is installed
     *  (director or coordinator); null when neither warps. */
    const sim::FluidStats *fluidStats() const
    {
        if (fluid_)
            return &fluid_->stats();
        if (coordinator_)
            return &coordinator_->stats();
        return nullptr;
    }

    /** @} */

    /**
     * Register the testbed's components with an invariant checker:
     * every port's L2 switch and RX rings, every wire, both machines'
     * interrupt routers, the PF functions, and all current guests'
     * virtual LAPICs. Call after the fleet is built. VF functions are
     * NOT auto-watched — their lifetime ends at VF-disable; watch them
     * explicitly (and unwatchFunction before disabling) if needed.
     */
    void watchAll(check::InvariantChecker &chk);

    static nic::MacAddr guestMac(unsigned idx)
    {
        return nic::MacAddr::make(1, std::uint16_t(idx + 1));
    }

  private:
    struct ClientPort
    {
        std::unique_ptr<nic::PlainNic> nic;
        vmm::Domain *dom = nullptr;
        std::unique_ptr<guest::GuestKernel> kern;
        std::unique_ptr<drivers::NativeDriver> drv;
        std::unique_ptr<guest::NetStack> stack;
    };

    struct Dom0Port
    {
        std::unique_ptr<drivers::VfDriver> drv;
        std::unique_ptr<guest::NetStack> stack;
    };

    /**
     * One sharded island. Server slices fill every field; client
     * islands leave the server-only ones (iovm, dom0) null. Each
     * island's tracer runs in shard-half mode; the queue/tracer pair
     * is what guests and wires on this island bind to.
     */
    struct Island
    {
        std::unique_ptr<sim::EventQueue> eq;
        std::unique_ptr<obs::PathTracer> pt;
        std::unique_ptr<vmm::Hypervisor> hv;
        std::unique_ptr<IovManager> iovm;            ///< server only
        std::unique_ptr<guest::GuestKernel> dom0;    ///< server only
        std::unique_ptr<ObsHooks> obs;               ///< server only
        unsigned index = 0;    ///< engine island index
    };

    nic::NicPort &serverNic(unsigned port);
    std::unique_ptr<drivers::ItrPolicy> makeGuestItr() const;
    void installDomainObs(ObsHooks &obs, vmm::Domain &dom);
    void installRingObs(ObsHooks &obs, nic::NicPort &nic);
    void buildLegacy();
    void buildSharded();
    void buildShardedFluid();
    Island &serverSlice(unsigned port) { return slices_.at(port); }
    Island &clientIsland(unsigned port)
    {
        return client_islands_.at(port);
    }
    /** ObsHooks owning a guest's taps: obs_ or its slice's set. */
    ObsHooks *obsFor(unsigned port);

    Params params_;
    sim::EventQueue eq_;
    /** Sharded build (empty in legacy mode): per-port server slices,
     *  per-port client islands, and the conservative engine running
     *  them. Engine island order: slices 0..P-1, clients P..2P-1.
     *  Declared first so island queues/hypervisors outlive (i.e. are
     *  destroyed after) the NICs, drivers and guests built on them. */
    std::vector<Island> slices_;
    std::vector<Island> client_islands_;
    /** Multi-host builds: the top-of-rack relay island (its queue,
     *  tracer, per-wire endpoints and the static MAC table). Declared
     *  with the islands so its queue outlives the wires bound to it. */
    struct TorRelay;
    std::unique_ptr<TorRelay> tor_;
    std::unique_ptr<sim::ShardEngine> engine_;
    /** Sharded fluid builds: one ledger per engine island (slices
     *  0..P-1, clients P..2P-1), installed via setIslandLedger so the
     *  datapath reports into the owning island's ledger. Components
     *  never hold ledger pointers (they re-resolve per call), so the
     *  ledgers only need to outlive the runs, not the components. */
    // simlint:allow(fluid-boundary): possession only; settled in .cpp
    std::vector<std::unique_ptr<sim::FlowLedger>> island_ledgers_;
    std::unique_ptr<vmm::Hypervisor> server_;
    std::unique_ptr<vmm::Hypervisor> client_;
    std::unique_ptr<IovManager> iovm_;
    std::unique_ptr<vmm::MigrationManager> migration_;
    std::unique_ptr<guest::GuestKernel> dom0_kern_;
    std::vector<std::unique_ptr<nic::SriovNic>> ports_;
    std::unique_ptr<nic::VmdqNic> vmdq_nic_;
    std::vector<std::unique_ptr<nic::Wire>> wires_;
    std::vector<std::unique_ptr<drivers::PfDriver>> pf_drivers_;
    std::map<unsigned, std::unique_ptr<drivers::NetbackDriver>> netbacks_;
    std::unique_ptr<drivers::VmdqBackend> vmdq_backend_;
    std::vector<ClientPort> client_ports_;
    std::map<unsigned, Dom0Port> dom0_ports_;
    std::vector<std::unique_ptr<Guest>> guests_;
    std::vector<std::unique_ptr<guest::UdpStreamSender>> udp_senders_;
    std::vector<std::unique_ptr<guest::TcpStreamSender>> tcp_senders_;
    std::map<unsigned, unsigned> next_vf_on_port_;
    std::unique_ptr<ObsHooks> obs_;
    /** Constructed before any component so registration order — and
     *  therefore snapshot/artifact bytes — is fixed by build order. */
    std::unique_ptr<obs::PathTracer> pathtrace_;
    /** Fluid-mode director (legacy build + sim::fluidEnabled() only).
     *  Destroyed before the components its state walk references. */
    std::unique_ptr<FluidDirector> fluid_;
    /** Cross-shard warp coordinator (sharded build + FluidMode::On).
     *  Declared last for the same destruction-order reason. */
    std::unique_ptr<WarpCoordinator> coordinator_;
};

} // namespace sriov::core

#endif // SRIOV_CORE_TESTBED_HPP
