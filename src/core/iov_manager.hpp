/**
 * @file
 * IovManager — the SR-IOV Manager (IOVM) of the paper's architecture
 * (Section 4.1, Fig. 4).
 *
 * Two jobs:
 *
 *  1. Host-side enumeration. VFs are trimmed functions that do not
 *     answer an ordinary vendor-ID bus scan, so after the PF driver
 *     sets VF Enable the IOVM walks the SR-IOV capability, computes
 *     each VF's RID (offset/stride), and hot-adds the VFs into the
 *     host's PCI view ("Linux PCI hot add APIs").
 *
 *  2. Guest-side presentation. When a VF is assigned, the IOVM
 *     synthesizes a *full* virtual configuration space on top of the
 *     trimmed physical one (vendor ID from the PF, device ID from the
 *     SR-IOV capability), so the guest can enumerate and configure the
 *     VF like an ordinary PCIe function. Guest writes are filtered:
 *     only the command register and driver-owned capability fields go
 *     through.
 */

#ifndef SRIOV_CORE_IOV_MANAGER_HPP
#define SRIOV_CORE_IOV_MANAGER_HPP

#include <map>
#include <memory>
#include <vector>

#include "nic/sriov_nic.hpp"
#include "vmm/hypervisor.hpp"

namespace sriov::core {

/** The full virtual configuration space the guest sees for one VF. */
class VirtualVfConfig
{
  public:
    VirtualVfConfig(pci::PciFunction &vf, pci::PciFunction &pf,
                    pci::SriovCapability &cap);

    pci::PciFunction &vf() { return vf_; }

    /** Guest-visible read: trimmed fields are synthesized. */
    std::uint32_t read(std::uint16_t off, unsigned size) const;

    /** Guest-visible write: filtered to driver-owned registers. */
    void write(std::uint16_t off, std::uint32_t v, unsigned size);

    std::uint64_t deniedWrites() const { return denied_.value(); }

  private:
    pci::PciFunction &vf_;
    pci::PciFunction &pf_;
    pci::SriovCapability &cap_;
    sim::Counter denied_;
};

class IovManager
{
  public:
    explicit IovManager(vmm::Hypervisor &hv);

    /**
     * Adopt an SR-IOV port: plug the PF into the root complex and
     * hot-add any currently enabled VFs; stays subscribed so later
     * VF Enable transitions are mirrored into the host view.
     */
    void registerNic(nic::SriovNic &nic);

    /** VFs currently visible to the host (hot-added by the IOVM). */
    std::vector<pci::PciFunction *> hostVisibleVfs() const;

    /**
     * Assign VF @p vf_index of @p nic to @p guest: attaches the
     * guest's page table to the VF RID in the IOMMU and builds the
     * virtual configuration space.
     */
    VirtualVfConfig &assign(vmm::Domain &guest, nic::SriovNic &nic,
                            unsigned vf_index);
    void deassign(vmm::Domain &guest, nic::SriovNic &nic,
                  unsigned vf_index);

    VirtualVfConfig *configOf(pci::PciFunction &vf);

  private:
    void syncVfs(nic::SriovNic &nic);

    vmm::Hypervisor &hv_;
    std::vector<nic::SriovNic *> nics_;
    std::map<nic::SriovNic *, std::vector<pci::PciFunction *>> added_;
    std::map<pci::PciFunction *, std::unique_ptr<VirtualVfConfig>> cfgs_;
};

} // namespace sriov::core

#endif // SRIOV_CORE_IOV_MANAGER_HPP
