#include "core/aic.hpp"

#include <algorithm>
#include <cstdlib>

#include "sim/log.hpp"

namespace sriov::core {

double
aicFrequency(double pps, std::size_t ap_bufs, std::size_t dd_bufs,
             double r, double lif)
{
    double bufs = double(std::min(ap_bufs, dd_bufs));
    return std::max(pps * r / bufs, lif);
}

std::unique_ptr<drivers::ItrPolicy>
makeItrPolicy(const std::string &spec)
{
    if (spec == "AIC" || spec == "aic")
        return std::make_unique<drivers::AicItr>();
    if (spec == "adaptive")
        return std::make_unique<drivers::AdaptiveItr>();

    // "20kHz", "2kHz", "1000", ...
    char *end = nullptr;
    double v = std::strtod(spec.c_str(), &end);
    if (end == spec.c_str())
        sim::fatal("unknown ITR policy '%s'", spec.c_str());
    if (end && (*end == 'k' || *end == 'K'))
        v *= 1000.0;
    return std::make_unique<drivers::StaticItr>(v);
}

} // namespace sriov::core
