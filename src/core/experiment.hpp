/**
 * @file
 * Small presentation helpers shared by the benchmark binaries: fixed
 * width tables matching the rows/series the paper's figures report.
 */

#ifndef SRIOV_CORE_EXPERIMENT_HPP
#define SRIOV_CORE_EXPERIMENT_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/testbed.hpp"
#include "obs/bench_options.hpp"
#include "obs/report.hpp"

namespace sriov::core {

/**
 * Thread-confined recorder for one sweep case.
 *
 * A parallel sweep (core::SweepRunner) cannot let worker threads touch
 * the shared FigReport, so each case instruments its testbed into its
 * own registry, snapshots into its own storage, and the bench merges
 * the finished cases into the report *in declaration order* with
 * FigReport::mergeCase() — making the report byte-identical to a
 * sequential run. drive() additionally records host wall time and
 * executed events for the perf sidecar (<bench>.perf.json), which is
 * the one artefact that legitimately differs between --jobs values.
 */
class FigCase
{
  public:
    explicit FigCase(std::string label) : label_(std::move(label)) {}

    const std::string &label() const { return label_; }

    /** Per-case analogue of FigReport::instrument(). */
    obs::MetricRegistry &instrument(Testbed &tb);

    /** Per-case analogue of FigReport::snapshot(). */
    void snapshot(const std::string &label,
                  const std::string &prefix = "");

    /** Per-case analogue of report().addMetric(). */
    void addMetric(const std::string &name, double value);

    /** Run @p fn, accumulating wall time and @p tb's executed events. */
    void drive(Testbed &tb, const std::function<void()> &fn);

    /** Count simulated packets handled by the drive (the perf sidecar
     *  reports events-per-packet, the thinning figure of merit). */
    void addPackets(std::uint64_t n) { packets_ += n; }

  private:
    friend class FigReport;

    struct Snap
    {
        std::string label;
        obs::MetricSnapshot data;
    };

    std::string label_;
    obs::MetricRegistry reg_;
    Testbed *tb_ = nullptr;    ///< last instrument()-ed testbed
    std::vector<Snap> snaps_;
    /** Path-tracer snapshots, one per snapshot() call, same labels. */
    std::vector<std::pair<std::string, obs::PathSnapshot>> path_snaps_;
    std::vector<std::pair<std::string, double>> metrics_;
    std::uint64_t events_ = 0;
    std::uint64_t packets_ = 0;
    double wall_s_ = 0;
    double sim_s_ = 0;
    /** Director stats after the last drive (all-zero when fluid off). */
    sim::FluidStats fluid_;
};

/**
 * One-stop bench instrumentation: owns the BenchOptions, the Report
 * and a MetricRegistry, and scopes an optional Chrome-trace capture.
 * A figXX binary wires the whole observability layer with:
 *
 *   core::FigReport fr(argc, argv, "fig06", "SR-IOV mask/unmask");
 *   if (fr.helpShown()) return 0;
 *   ...
 *   auto &reg = fr.instrument(tb);             // per representative case
 *   fr.captureTrace(tb, [&] { m = tb.measure(w, t); });
 *   fr.snapshot("7-VM-opt");
 *   fr.report().expect("dom0_pct_opt", m.dom0_pct, 3.0, 50);
 *   ...
 *   return fr.finish();
 */
class FigReport
{
  public:
    FigReport(int argc, char **argv, const std::string &fig,
              const std::string &title);

    /** True when --help was requested; usage is already printed. */
    bool helpShown() const { return opts_.helpRequested(); }

    obs::BenchOptions &options() { return opts_; }
    obs::Report &report() { return rep_; }

    /**
     * Instrument @p tb for this report: enables its latency/cost taps
     * and registers its metric tree in a fresh registry (valid until
     * the next instrument() call — benches build one testbed per case).
     */
    obs::MetricRegistry &instrument(Testbed &tb);

    /** Snapshot the last instrument()-ed registry under @p label. */
    void snapshot(const std::string &label,
                  const std::string &prefix = "");

    /**
     * Run @p drive; on the first call with --trace set, capture it as
     * a Chrome trace of @p tb (CPU-server tracks + tagged events +
     * enabled Tracer categories) and write the file. Every call also
     * times the drive and records @p tb's executed events for the perf
     * sidecar; the entry is labelled by the next snapshot() call.
     */
    void captureTrace(Testbed &tb, const std::function<void()> &drive);

    /**
     * Threads to hand core::SweepRunner: --jobs, forced to 1 when a
     * trace was requested (trace capture is a single global stream).
     */
    unsigned sweepJobs() const;

    /**
     * Sequential-path drive for a sweep case: captures the Chrome
     * trace through @p c when tracing is on (only possible with
     * sweepJobs() == 1), a plain timed drive otherwise. Safe to call
     * from SweepRunner workers, where tracing is off by construction.
     */
    void caseDrive(FigCase &c, Testbed &tb,
                   const std::function<void()> &fn);

    /**
     * Fold a completed case into the report: snapshots, metrics, and
     * its perf entry, in the order recorded. Call sequentially, in
     * case-declaration order, after SweepRunner::run() returns.
     */
    void mergeCase(FigCase &c);

    /** Shorthand for report().expect(...). */
    void expect(const std::string &name, double actual, double expected,
                double band_pct);

    /**
     * Record a host-performance entry for the perf sidecar directly,
     * for benches that time their own kernels (bench_microkernel)
     * instead of driving a Testbed through captureTrace()/caseDrive().
     */
    void addPerf(const std::string &label, std::uint64_t events,
                 double wall_s);

    /** Attribute @p n simulated packets to the most recent perf entry
     *  (for benches using captureTrace() rather than FigCase). */
    void notePackets(std::uint64_t n);

    /**
     * Write the report (and the <bench>.perf.json host-performance
     * sidecar) if requested; returns the process exit code.
     */
    int finish();

  private:
    struct CasePerf
    {
        std::string label;
        std::uint64_t events = 0;
        std::uint64_t packets = 0;
        double wall_s = 0;
        /** Simulated seconds covered by the drive — the denominator of
         *  the warp fraction (warped_sim_s / sim_s) in the sidecar. */
        double sim_s = 0;
        /** Fluid-director stats for the sidecar (zero when off). */
        sim::FluidStats fluid;
    };

    void notePerf(const std::string &label, std::uint64_t events,
                  double wall_s, std::uint64_t packets = 0);
    bool writePerfSidecar(const std::string &path) const;
    /** Stash (and report) one path-tracer snapshot under @p label. */
    void notePathSnapshot(const std::string &label,
                          obs::PathSnapshot snap);
    void writePathArtifacts();

    obs::BenchOptions opts_;
    obs::Report rep_;
    obs::MetricRegistry reg_;
    Testbed *last_tb_ = nullptr;    ///< last instrument()-ed testbed
    std::vector<CasePerf> perf_;
    /** Per-snapshot path-tracer captures, for the pathtrace/flightrec
     *  artifacts (report path_stages blocks are added as they land). */
    std::vector<std::pair<std::string, obs::PathSnapshot>> path_cases_;
    bool last_perf_unlabelled_ = false;
    bool trace_done_ = false;
};

/** Simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);

    std::string toString() const;
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Gbit/s with 2 decimals, e.g. "9.57". */
std::string gbps(double bps);
/** Percent of one CPU, e.g. "193.4%". */
std::string cpuPct(double pct);

/** Print a figure banner ("=== Fig. 6 ... ==="). */
void banner(const std::string &title);

} // namespace sriov::core

#endif // SRIOV_CORE_EXPERIMENT_HPP
