/**
 * @file
 * Small presentation helpers shared by the benchmark binaries: fixed
 * width tables matching the rows/series the paper's figures report.
 */

#ifndef SRIOV_CORE_EXPERIMENT_HPP
#define SRIOV_CORE_EXPERIMENT_HPP

#include <functional>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "obs/bench_options.hpp"
#include "obs/report.hpp"

namespace sriov::core {

/**
 * One-stop bench instrumentation: owns the BenchOptions, the Report
 * and a MetricRegistry, and scopes an optional Chrome-trace capture.
 * A figXX binary wires the whole observability layer with:
 *
 *   core::FigReport fr(argc, argv, "fig06", "SR-IOV mask/unmask");
 *   if (fr.helpShown()) return 0;
 *   ...
 *   auto &reg = fr.instrument(tb);             // per representative case
 *   fr.captureTrace(tb, [&] { m = tb.measure(w, t); });
 *   fr.snapshot("7-VM-opt");
 *   fr.report().expect("dom0_pct_opt", m.dom0_pct, 3.0, 50);
 *   ...
 *   return fr.finish();
 */
class FigReport
{
  public:
    FigReport(int argc, char **argv, const std::string &fig,
              const std::string &title);

    /** True when --help was requested; usage is already printed. */
    bool helpShown() const { return opts_.helpRequested(); }

    obs::BenchOptions &options() { return opts_; }
    obs::Report &report() { return rep_; }

    /**
     * Instrument @p tb for this report: enables its latency/cost taps
     * and registers its metric tree in a fresh registry (valid until
     * the next instrument() call — benches build one testbed per case).
     */
    obs::MetricRegistry &instrument(Testbed &tb);

    /** Snapshot the last instrument()-ed registry under @p label. */
    void snapshot(const std::string &label,
                  const std::string &prefix = "");

    /**
     * Run @p drive; on the first call with --trace set, capture it as
     * a Chrome trace of @p tb (CPU-server tracks + tagged events +
     * enabled Tracer categories) and write the file.
     */
    void captureTrace(Testbed &tb, const std::function<void()> &drive);

    /** Shorthand for report().expect(...). */
    void expect(const std::string &name, double actual, double expected,
                double band_pct);

    /** Write the report if requested; returns the process exit code. */
    int finish();

  private:
    obs::BenchOptions opts_;
    obs::Report rep_;
    obs::MetricRegistry reg_;
    bool trace_done_ = false;
};

/** Simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);

    std::string toString() const;
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Gbit/s with 2 decimals, e.g. "9.57". */
std::string gbps(double bps);
/** Percent of one CPU, e.g. "193.4%". */
std::string cpuPct(double pct);

/** Print a figure banner ("=== Fig. 6 ... ==="). */
void banner(const std::string &title);

} // namespace sriov::core

#endif // SRIOV_CORE_EXPERIMENT_HPP
