/**
 * @file
 * Small presentation helpers shared by the benchmark binaries: fixed
 * width tables matching the rows/series the paper's figures report.
 */

#ifndef SRIOV_CORE_EXPERIMENT_HPP
#define SRIOV_CORE_EXPERIMENT_HPP

#include <string>
#include <vector>

#include "core/testbed.hpp"

namespace sriov::core {

/** Simple fixed-width text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);

    std::string toString() const;
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Gbit/s with 2 decimals, e.g. "9.57". */
std::string gbps(double bps);
/** Percent of one CPU, e.g. "193.4%". */
std::string cpuPct(double pct);

/** Print a figure banner ("=== Fig. 6 ... ==="). */
void banner(const std::string &title);

} // namespace sriov::core

#endif // SRIOV_CORE_EXPERIMENT_HPP
