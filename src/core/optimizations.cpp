#include "core/optimizations.hpp"

namespace sriov::core {

OptimizationSet
OptimizationSet::none()
{
    return {};
}

OptimizationSet
OptimizationSet::maskOnly()
{
    OptimizationSet s;
    s.mask_unmask_accel = true;
    return s;
}

OptimizationSet
OptimizationSet::maskEoi()
{
    OptimizationSet s;
    s.mask_unmask_accel = true;
    s.eoi_accel = true;
    return s;
}

OptimizationSet
OptimizationSet::all()
{
    OptimizationSet s;
    s.mask_unmask_accel = true;
    s.eoi_accel = true;
    s.aic = true;
    return s;
}

void
OptimizationSet::apply(vmm::Hypervisor &hv) const
{
    hv.opts().mask_unmask_accel = mask_unmask_accel;
    hv.opts().eoi_accel = eoi_accel;
    hv.opts().eoi_accel_check = eoi_accel_check;
}

std::string
OptimizationSet::describe() const
{
    std::string s;
    if (mask_unmask_accel)
        s += "+MSI";
    if (eoi_accel)
        s += eoi_accel_check ? "+EOI(chk)" : "+EOI";
    if (aic)
        s += "+AIC";
    return s.empty() ? "baseline" : s;
}

} // namespace sriov::core
