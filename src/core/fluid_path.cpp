#include "core/fluid_path.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace sriov::core {

FluidDirector::FluidDirector(sim::EventQueue &eq, StateWalk walk,
                             WarpGate gate)
    : FluidDirector(eq, std::move(walk), std::move(gate), Config{})
{
}

FluidDirector::FluidDirector(sim::EventQueue &eq, StateWalk walk,
                             WarpGate gate, Config cfg)
    : eq_(eq), walk_(std::move(walk)), gate_(std::move(gate)), cfg_(cfg)
{
    if (sim::fluidLedger() != nullptr)
        sim::fatal("fluid: a FlowLedger is already installed");
    sim::setFluidLedger(&ledger_);
}

FluidDirector::~FluidDirector()
{
    sim::setFluidLedger(nullptr);
}

void
FluidDirector::start()
{
    // Exact mode keeps the director (its ledger drives the window
    // quantization, so On and Exact share a schedule) but never
    // probes or warps: every event runs.
    if (sim::fluidMode() != sim::FluidMode::On)
        return;
    schedulePoll(cfg_.poll);
}

bool
FluidDirector::shiftSafeTag(const char *tag)
{
    // Callbacks under these tags capture only owner pointers and
    // indices, never per-packet state, so firing them n periods later
    // reproduces the shifted schedule exactly. Notable exclusions:
    // "dma.done" and the exact-mode wire events capture a Packet, and
    // netback's CPU batches capture frame vectors (gated separately
    // via WarpGate) — any of those pending rejects the cycle.
    static const char *const kSafe[] = {
        "cpu.done",          // CpuServer completion (captures this)
        "wire.burst",        // thin-mode wire drain (this + direction)
        "netperf.emit",      // CBR sender tick (captures this)
        "netperf.rto",       // TCP RTO deferred timer (captures this)
        "netperf.sample",    // receiver rate sampling (captures this)
        "nic.itr",           // ITR window expiry (this + pool index)
        "driver.itr_sample", // driver retune timer (captures this)
    };
    for (const char *s : kSafe) {
        if (std::strcmp(tag, s) == 0)
            return true;
    }
    return false;
}

void
FluidDirector::schedulePoll(sim::Time delay)
{
    eq_.scheduleIn(delay, [this]() { onPoll(); }, "fluid.poll");
}

void
FluidDirector::onPoll()
{
    if (!ledger_.allSteady()) {
        schedulePoll(cfg_.poll);
        return;
    }
    sim::Time base = ledger_.commonPeriod(cfg_.period_cap);
    if (base <= sim::Time()) {
        schedulePoll(cfg_.poll);
        return;
    }
    sim::Time period = sim::Time::ps(base.picos() * mult_);
    if (period > cfg_.period_cap) {
        // The multiplier outgrew the cap at this base period: restart
        // the scan — the base may shrink again after a retune.
        mult_ = 1;
        period = base;
    }
    // A cycle executes two periods of exact schedule before it can
    // warp; only probe when the warp itself still fits the horizon.
    if (eq_.runDeadline() != sim::Time::max()) {
        std::int64_t need =
            period.picos() * (2 + cfg_.min_periods);
        if ((eq_.runDeadline() - eq_.now()).picos() < need) {
            schedulePoll(cfg_.poll);
            return;
        }
    }
    beginCycle(period);
}

void
FluidDirector::beginCycle(sim::Time period)
{
    period_ = period;
    stats_.probes++;
    s0_ = std::make_unique<sim::FluidVisitor>(
        sim::FluidVisitor::Pass::Capture);
    walk_(*s0_);
    phase_ = Phase::AwaitS1;
    eq_.scheduleIn(period_, [this]() { onProbe(); }, "fluid.probe");
}

void
FluidDirector::onProbe()
{
    if (!ledger_.allSteady()) {
        reject("transition reported mid-cycle");
        return;
    }
    if (phase_ == Phase::AwaitS1) {
        s1_ = std::make_unique<sim::FluidVisitor>(
            sim::FluidVisitor::Pass::Capture);
        walk_(*s1_);
        std::string why;
        if (!s1_->verifyAgainst(*s0_, nullptr, &why)) {
            reject(std::move(why));
            return;
        }
        // Snapshot the heap *before* scheduling the next probe so the
        // pending set holds only the simulation's own events.
        eq_.snapshotPending(e1_);
        exec_s1_ = eq_.executed();
        phase_ = Phase::AwaitS2;
        eq_.scheduleIn(period_, [this]() { onProbe(); }, "fluid.probe");
        return;
    }
    finishCycle();
}

void
FluidDirector::finishCycle()
{
    s2_ = std::make_unique<sim::FluidVisitor>(
        sim::FluidVisitor::Pass::Capture);
    walk_(*s2_);
    eq_.snapshotPending(e2_);
    std::string why;
    if (!s2_->verifyAgainst(*s1_, s0_.get(), &why) ||
        !classifyPending(&why) || !applyWarp(&why)) {
        reject(std::move(why));
        return;
    }
    // The post-warp state is the shifted S2 by construction: roll
    // straight into the next cycle from here, skipping the settle
    // poll — steady traffic keeps warping with a two-period duty
    // cycle per segment.
    consecutive_rejects_ = 0;
    last_reject_.clear();
    beginCycle(period_);
}

bool
FluidDirector::classifyPending(std::string *why)
{
    shift_keys_.clear();
    abs_bound_ = sim::Time::max();
    const sim::Time t1 = eq_.now() - period_;
    const sim::Time t2 = eq_.now();

    // An event with the same seq at the same due time is the *same*
    // event still waiting: absolute (sampling boundaries, watchdogs).
    // It stays put and bounds the warp. Seqs are unique, so this can
    // never mistake a periodic successor for its predecessor.
    std::unordered_map<std::uint64_t, sim::Time> still;
    still.reserve(e1_.size());
    // Multiset of (tag, due-time relative to the probe instant) at S1:
    // a fresh S2 event matching one is the next incarnation of a
    // periodic process and is shifted with the clock.
    std::map<std::pair<std::string_view, std::int64_t>, int> rel1;
    for (const auto &e : e1_) {
        still.emplace(e.seq, e.when);
        rel1[{std::string_view(e.tag), (e.when - t1).picos()}]++;
    }

    for (const auto &e : e2_) {
        auto s = still.find(e.seq);
        if (s != still.end() && s->second == e.when) {
            abs_bound_ = std::min(abs_bound_, e.when);
            continue;
        }
        auto r = rel1.find({std::string_view(e.tag),
                            (e.when - t2).picos()});
        if (r != rel1.end() && r->second > 0) {
            --r->second;
            if (!shiftSafeTag(e.tag)) {
                *why = std::string("periodic event '") + e.tag
                    + "' carries opaque captures";
                return false;
            }
            shift_keys_.push_back(e.key_index);
            continue;
        }
        *why = std::string("unmatched pending event '") + e.tag + "'";
        return false;
    }
    return true;
}

bool
FluidDirector::applyWarp(std::string *why)
{
    const sim::Time t2 = eq_.now();
    const std::int64_t np = period_.picos();
    std::int64_t n = -1;
    if (eq_.runDeadline() != sim::Time::max())
        n = (eq_.runDeadline() - t2).picos() / np;
    if (abs_bound_ != sim::Time::max()) {
        std::int64_t na = (abs_bound_ - t2).picos() / np;
        n = n < 0 ? na : std::min(n, na);
    }
    if (n < 0) {
        *why = "warp horizon unbounded (no deadline, no absolute event)";
        return false;
    }
    if (n < cfg_.min_periods) {
        *why = "warp horizon too near";
        return false;
    }
    if (gate_ && !gate_()) {
        *why = "opaque CPU work in flight";
        return false;
    }

    const std::uint64_t per_period = eq_.executed() - exec_s1_ - 1;
    sim::FluidVisitor apply(sim::FluidVisitor::Pass::Apply);
    apply.armApply(*s1_, *s2_, n);
    walk_(apply);
    const sim::Time delta = sim::Time::ps(n * np);
    ledger_.warpBy(delta);
    // No schedule/cancel between snapshotPending() and here, so the
    // S2 key indices are still valid.
    eq_.fluidWarp(delta, shift_keys_);

    stats_.segments++;
    stats_.periods_warped += std::uint64_t(n);
    stats_.warped = stats_.warped + delta;
    stats_.events_elided += per_period * std::uint64_t(n);
    SRIOV_TRACE(sim::TraceCat::Driver,
                "fluid: warped %lld periods of %s (~%llu events)",
                static_cast<long long>(n), period_.toString().c_str(),
                static_cast<unsigned long long>(per_period
                                                * std::uint64_t(n)));
    return true;
}

void
FluidDirector::reject(std::string why)
{
    stats_.rejected++;
    last_reject_ = std::move(why);
    SRIOV_TRACE(sim::TraceCat::Driver, "fluid: cycle rejected: %s",
                last_reject_.c_str());
    phase_ = Phase::Idle;
    s0_.reset();
    s1_.reset();
    s2_.reset();
    e1_.clear();
    e2_.clear();
    if (mult_ < cfg_.max_mult) {
        // Interacting grids often repeat only at a small multiple of
        // the ledger period (throttle windows vs the send grid): scan
        // upward before concluding the schedule is aperiodic.
        ++mult_;
        schedulePoll(cfg_.poll);
        return;
    }
    mult_ = 1;
    unsigned shift = std::min(consecutive_rejects_, kMaxBackoffShift);
    ++consecutive_rejects_;
    schedulePoll(sim::Time::ps(cfg_.backoff.picos() << shift));
}

} // namespace sriov::core
