#include "core/testbed.hpp"

#include "check/invariant_checker.hpp"
#include "sim/log.hpp"

namespace sriov::core {

Testbed::Testbed(Params p) : params_(std::move(p))
{
    // First thing built: components created below register with it.
    pathtrace_ = std::make_unique<obs::PathTracer>();

    vmm::Hypervisor::MachineParams mp;
    server_ = std::make_unique<vmm::Hypervisor>(eq_, params_.costs, mp);
    client_ = std::make_unique<vmm::Hypervisor>(eq_, params_.costs, mp);
    params_.opts.apply(*server_);

    iovm_ = std::make_unique<IovManager>(*server_);
    migration_ = std::make_unique<vmm::MigrationManager>(*server_);
    dom0_kern_ = std::make_unique<guest::GuestKernel>(
        *server_, server_->dom0(), guest::KernelVersion::v2_6_28);

    unsigned nports = params_.use_vmdq_nic ? 1 : params_.num_ports;
    double line = params_.use_vmdq_nic ? 10e9 : params_.line_bps;

    for (unsigned i = 0; i < nports; ++i) {
        // Server-side NIC for this port.
        nic::NicPort *server_end = nullptr;
        if (params_.use_vmdq_nic) {
            nic::VmdqNic::VmdqParams vp;
            vmdq_nic_ = std::make_unique<nic::VmdqNic>(
                eq_, "vmdq0", pci::Bdf{1, 0, 0}, vp);
            vmdq_nic_->setIommu(&server_->iommu());
            server_->rootComplex().plug(vmdq_nic_->pf());
            vmdq_backend_ = std::make_unique<drivers::VmdqBackend>(
                *dom0_kern_, *vmdq_nic_, drivers::VmdqBackend::Config{});
            server_end = vmdq_nic_.get();
        } else {
            nic::SriovNic::SriovParams sp;
            sp.total_vfs = std::uint16_t(params_.vfs_per_port);
            // One bus per port so the VF RID windows (PF RID + 0x80 +
            // 2*i) can never collide across ports.
            auto nic = std::make_unique<nic::SriovNic>(
                eq_, "eth_p" + std::to_string(i),
                pci::Bdf{std::uint8_t(1 + i), 0, 0}, sp);
            nic->setIommu(&server_->iommu());
            iovm_->registerNic(*nic);
            auto pf = std::make_unique<drivers::PfDriver>(*dom0_kern_,
                                                          *nic);
            pf->enableVfs(params_.vfs_per_port);
            server_end = nic.get();
            ports_.push_back(std::move(nic));
            pf_drivers_.push_back(std::move(pf));
        }

        // Wire + client-side machine port.
        nic::Wire::Params wp;
        wp.line_bps = line;
        wires_.push_back(std::make_unique<nic::Wire>(eq_, wp));

        ClientPort cp;
        // The client machine is not under test: give its adapters a
        // fast PCIe path so they never bound the experiment.
        nic::PlainNic::Params cnp;
        cnp.dma.link_bps = 16e9;
        cnp.dma.per_dma_overhead = sim::Time::ns(100);
        cp.nic = std::make_unique<nic::PlainNic>(
            eq_, "cli_p" + std::to_string(i),
            pci::Bdf{std::uint8_t(1 + i), 0, 0}, cnp);
        client_->rootComplex().plug(cp.nic->pf());
        cp.dom = &client_->createDomain("cli" + std::to_string(i),
                                        vmm::DomainType::Native,
                                        64ull << 20);
        cp.kern = std::make_unique<guest::GuestKernel>(*client_, *cp.dom);
        drivers::VfDriver::Config dcfg;
        dcfg.name = "cli_eth" + std::to_string(i);
        dcfg.mac = nic::MacAddr::make(2, std::uint16_t(i + 1));
        cp.drv = std::make_unique<drivers::NativeDriver>(*cp.kern, *cp.nic,
                                                         nic::Pool(0),
                                                         dcfg);
        cp.drv->setItrPolicy(std::make_unique<drivers::AdaptiveItr>());
        cp.drv->init();
        cp.stack = std::make_unique<guest::NetStack>(*cp.kern);
        cp.stack->attachDevice(*cp.drv);
        wires_.back()->connect(*server_end, *cp.nic);
        server_end->attachWire(*wires_.back());
        cp.nic->attachWire(*wires_.back());

        // Path-tracer wiring for this port's whole chain. Registration
        // order is the build order, so component ids (and every
        // artifact built from them) are reproducible.
        obs::PathTracer *pt = pathtrace_.get();
        server_end->setPathTracer(pt);
        wires_.back()->setPathTracer(
            pt, pt->registerComponent("wire" + std::to_string(i)));
        cp.nic->setPathTracer(pt);
        cp.drv->setPathTracer(
            pt,
            pt->registerComponent("cli" + std::to_string(i) + ".drv"));
        cp.stack->setPathTracer(
            pt,
            pt->registerComponent("cli" + std::to_string(i) + ".net"));

        client_ports_.push_back(std::move(cp));
    }

    // Auxiliary delivery marks: every MSI reaching a router drops a
    // trace_id-0 record, so flight-recorder dumps show interrupt
    // activity interleaved with packet trails. Pure observation — the
    // tap neither schedules nor mutates.
    auto tapRouter = [this](intr::InterruptRouter &r, const char *name) {
        std::uint16_t comp = pathtrace_->registerComponent(name);
        r.addDeliveryTap(
            [this, comp](pci::Rid, const pci::MsiMessage &) {
                pathtrace_->mark(comp, obs::PathStage::LapicDeliver,
                                 eq_.now());
            });
    };
    tapRouter(server_->router(), "server.intr");
    tapRouter(client_->router(), "client.intr");
}

Testbed::~Testbed() = default;

nic::NicPort &
Testbed::serverNic(unsigned port)
{
    if (params_.use_vmdq_nic)
        return *vmdq_nic_;
    return *ports_.at(port);
}

std::unique_ptr<drivers::ItrPolicy>
Testbed::makeGuestItr() const
{
    if (params_.opts.aic) {
        drivers::AicItr::Params ap;
        ap.ap_bufs = params_.ap_bufs;
        return std::make_unique<drivers::AicItr>(ap);
    }
    return makeItrPolicy(params_.itr);
}

drivers::NetbackDriver &
Testbed::netback(unsigned port)
{
    auto it = netbacks_.find(port);
    if (it == netbacks_.end()) {
        drivers::NetbackDriver::Config cfg;
        cfg.num_threads = params_.netback_threads;
        auto nb = std::make_unique<drivers::NetbackDriver>(*dom0_kern_,
                                                           cfg);
        nb->attachPhysical(serverNic(port));
        it = netbacks_.emplace(port, std::move(nb)).first;
    }
    return *it->second;
}

Testbed::Guest &
Testbed::addGuest(vmm::DomainType type, NetMode mode,
                  guest::KernelVersion kv, bool bond_vf_with_pv)
{
    unsigned idx = unsigned(guests_.size());
    unsigned port = params_.use_vmdq_nic ? 0 : idx % portCount();

    auto g = std::make_unique<Guest>();
    g->mac = guestMac(idx);
    g->port = port;
    g->mode = mode;
    g->dom = &server_->createDomain("vm" + std::to_string(idx), type,
                                    params_.guest_mem);
    g->kern = std::make_unique<guest::GuestKernel>(*server_, *g->dom, kv);
    g->stack = std::make_unique<guest::NetStack>(*g->kern);
    g->stack->setUdpSocketCapacity(params_.ap_bufs);
    g->stack->setPathTracer(
        pathtrace_.get(),
        pathtrace_->registerComponent("vm" + std::to_string(idx)
                                      + ".net"));

    switch (mode) {
      case NetMode::Sriov: {
        nic::SriovNic &nic = *ports_.at(port);
        unsigned vf_index = next_vf_on_port_[port]++;
        if (vf_index >= nic.numVfs())
            sim::fatal("port %u out of VFs", port);
        iovm_->assign(*g->dom, nic, vf_index);
        drivers::VfDriver::Config cfg;
        cfg.name = "eth0";
        cfg.mac = g->mac;
        g->vf = std::make_unique<drivers::VfDriver>(
            *g->kern, nic, nic.vfPool(vf_index), cfg);
        g->vf->setItrPolicy(makeGuestItr());
        g->vf->setPathTracer(
            pathtrace_.get(),
            pathtrace_->registerComponent("vm" + std::to_string(idx)
                                          + ".drv"));
        g->vf->init();
        g->netdev = g->vf.get();
        break;
      }
      case NetMode::Pv: {
        g->pv = std::make_unique<drivers::NetfrontDriver>(*g->kern, "eth0",
                                                          g->mac);
        netback(port).connectGuest(*g->pv);
        g->netdev = g->pv.get();
        break;
      }
      case NetMode::Vmdq: {
        g->pv = std::make_unique<drivers::NetfrontDriver>(*g->kern, "eth0",
                                                          g->mac);
        if (!vmdq_backend_ || !vmdq_backend_->assignQueue(*g->pv)) {
            // Out of hardware queues: conventional PV bridge fallback.
            netback(port).connectGuest(*g->pv);
        } else {
            // TX still rides the software bridge.
            g->pv->setBackend(&netback(port));
            netback(port).connectGuest(*g->pv);
        }
        g->netdev = g->pv.get();
        break;
      }
    }

    if (bond_vf_with_pv) {
        if (!g->vf)
            sim::fatal("bonding requires an SR-IOV guest");
        g->pv = std::make_unique<drivers::NetfrontDriver>(
            *g->kern, "eth_pv", g->mac);
        netback(port).connectGuest(*g->pv);
        g->bond = std::make_unique<guest::BondingDriver>("bond0");
        g->bond->addSlave(*g->vf);
        g->bond->addSlave(*g->pv);
        g->netdev = g->bond.get();
    }

    g->stack->attachDevice(*g->netdev);
    if (obs_)
        installDomainObs(*g->dom);
    guests_.push_back(std::move(g));
    return *guests_.back();
}

guest::UdpStreamSender &
Testbed::startUdpToGuest(Guest &g, double offered_bps,
                         std::uint32_t payload)
{
    if (!g.rx) {
        g.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *g.stack, guest::StreamReceiver::Proto::Udp);
    }
    auto &cs = *client_ports_.at(g.port).stack;
    udp_senders_.push_back(std::make_unique<guest::UdpStreamSender>(
        eq_, cs, g.mac, offered_bps, payload,
        std::uint32_t(guests_.size())));
    udp_senders_.back()->start();
    return *udp_senders_.back();
}

guest::TcpStreamSender &
Testbed::startTcpToGuest(Guest &g, std::uint32_t window,
                         std::uint32_t payload)
{
    if (!g.rx) {
        g.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *g.stack, guest::StreamReceiver::Proto::Tcp);
    }
    auto &cs = *client_ports_.at(g.port).stack;
    tcp_senders_.push_back(std::make_unique<guest::TcpStreamSender>(
        eq_, cs, g.mac, window, payload));
    if (obs_)
        tcp_senders_.back()->setRttTap(&obs_->tcp_rtt_us);
    tcp_senders_.back()->start();
    return *tcp_senders_.back();
}

guest::NetStack &
Testbed::dom0Net(unsigned port)
{
    auto it = dom0_ports_.find(port);
    if (it == dom0_ports_.end()) {
        Dom0Port dp;
        drivers::VfDriver::Config cfg;
        cfg.name = "dom0_eth" + std::to_string(port);
        cfg.mac = nic::MacAddr::make(3, std::uint16_t(port + 1));
        dp.drv = std::make_unique<drivers::VfDriver>(
            *dom0_kern_, serverNic(port), nic::Pool(0), cfg);
        dp.drv->setItrPolicy(std::make_unique<drivers::AdaptiveItr>());
        dp.drv->setPathTracer(
            pathtrace_.get(),
            pathtrace_->registerComponent("dom0_eth"
                                          + std::to_string(port)
                                          + ".drv"));
        dp.drv->init();
        dp.stack = std::make_unique<guest::NetStack>(*dom0_kern_);
        dp.stack->attachDevice(*dp.drv);
        dp.stack->setPathTracer(
            pathtrace_.get(),
            pathtrace_->registerComponent("dom0_eth"
                                          + std::to_string(port)
                                          + ".net"));
        it = dom0_ports_.emplace(port, std::move(dp)).first;
    }
    return *it->second.stack;
}

guest::UdpStreamSender &
Testbed::startUdpFromDom0(Guest &g, double offered_bps,
                          std::uint32_t payload)
{
    if (!g.rx) {
        g.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *g.stack, guest::StreamReceiver::Proto::Udp);
    }
    udp_senders_.push_back(std::make_unique<guest::UdpStreamSender>(
        eq_, dom0Net(g.port), g.mac, offered_bps, payload, 9000));
    udp_senders_.back()->start();
    return *udp_senders_.back();
}

guest::UdpStreamSender &
Testbed::startUdpGuestToGuest(Guest &from, Guest &to, double offered_bps,
                              std::uint32_t payload)
{
    if (!to.rx) {
        to.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *to.stack, guest::StreamReceiver::Proto::Udp);
    }
    udp_senders_.push_back(std::make_unique<guest::UdpStreamSender>(
        eq_, *from.stack, to.mac, offered_bps, payload, 9001));
    udp_senders_.back()->start();
    return *udp_senders_.back();
}

Testbed::Measurement
Testbed::measure(sim::Time warmup, sim::Time window)
{
    run(warmup);
    auto snap = server_->snapshot();
    for (auto &g : guests_) {
        if (g->rx)
            g->rx->takeThroughputBps();    // re-mark the window
    }
    run(window);

    Measurement m;
    m.seconds = window.toSeconds();
    for (auto &g : guests_) {
        double bps = g->rx ? g->rx->takeThroughputBps() : 0.0;
        m.per_guest_bps.push_back(bps);
        m.total_goodput_bps += bps;
    }
    m.cpu_by_tag = server_->cpuPercentByTag(snap);
    for (const auto &[tag, pct] : m.cpu_by_tag) {
        m.total_pct += pct;
        if (tag == "xen") {
            m.xen_pct += pct;
        } else if (tag.rfind("dom0", 0) == 0) {
            m.dom0_pct += pct;
        } else if (tag.rfind("vm", 0) == 0) {
            m.guests_pct += pct;
        }
    }
    return m;
}

Testbed::ObsHooks::ObsHooks()
    // Bucket layouts are tuned to each quantity's range: delivery
    // latency spans sub-µs HVM injection to 10 ms paused-domain
    // retries; exit costs run from ~10² cycles to the slow emulate
    // paths; ring occupancy is bounded by the 1024-deep ring.
    : intr_latency_us(obs::Histogram::Params{0.125, 1.5, 48}),
      ring_occupancy(obs::Histogram::Params{1.0, 2.0, 14}),
      tcp_rtt_us(obs::Histogram::Params{10.0, 1.5, 40})
{
    exit_cost_cycles.reserve(unsigned(vmm::ExitReason::Count));
    for (unsigned i = 0; i < unsigned(vmm::ExitReason::Count); ++i) {
        exit_cost_cycles.emplace_back(
            obs::Histogram::Params{50.0, 1.3, 48});
    }
}

Testbed::ObsHooks &
Testbed::enableObs()
{
    if (obs_)
        return *obs_;
    obs_ = std::make_unique<ObsHooks>();
    server_->setIntrLatencyHistogram(&obs_->intr_latency_us);
    installDomainObs(server_->dom0());
    for (auto &g : guests_)
        installDomainObs(*g->dom);
    for (auto &p : ports_)
        installRingObs(*p);
    if (vmdq_nic_)
        installRingObs(*vmdq_nic_);
    for (auto &s : tcp_senders_)
        s->setRttTap(&obs_->tcp_rtt_us);
    return *obs_;
}

void
Testbed::installDomainObs(vmm::Domain &dom)
{
    for (unsigned r = 0; r < unsigned(vmm::ExitReason::Count); ++r) {
        dom.exits().setCostTap(vmm::ExitReason(r),
                               &obs_->exit_cost_cycles[r]);
    }
}

void
Testbed::installRingObs(nic::NicPort &nic)
{
    // Taps live on the rings; VF disable destroys ring and tap
    // together, so nothing dangles (the histograms outlive the NIC).
    for (unsigned p = 0; p < nic.poolCount(); ++p)
        nic.rxRing(nic::Pool(p)).setOccupancyTap(&obs_->ring_occupancy);
}

namespace {

/** Metric-path component from an exit-reason name ("I/O" has a '/'). */
std::string
metricName(const char *s)
{
    std::string out(s);
    for (char &c : out) {
        if (c == '/' || c == '.')
            c = '_';
    }
    return out;
}

} // namespace

void
Testbed::registerMetrics(obs::MetricRegistry &reg, const std::string &prefix)
{
    using Reg = obs::MetricRegistry;
    auto path = [&prefix](const std::string &rest) {
        return Reg::join(prefix, rest);
    };

    // eq.executed is deliberately NOT a metric: it counts simulator
    // events, which event thinning changes by design. It lives in the
    // figXX.perf.json sidecar instead, keeping figXX.json reports
    // byte-identical between thinned and --no-thin runs (CI diffs
    // them).
    reg.add(path("intr.delivered"), &server_->router().deliveredCounter());
    reg.add(path("intr.spurious"), &server_->router().spuriousCounter());

    // Pool statistics register as bounds-checking gauges: VF disable
    // shrinks the pool vector, and a gauge re-resolves per snapshot.
    struct Field
    {
        const char *suffix;
        std::function<double(const nic::NicPort::PoolStats &)> get;
    };
    static const Field kFields[] = {
        {"rx_frames",
         [](const auto &s) { return double(s.rx_frames.value()); }},
        {"rx_bytes",
         [](const auto &s) { return double(s.rx_bytes.value()); }},
        {"rx_drops",
         [](const auto &s) {
             return double(s.rx_drop_ring.value()
                           + s.rx_drop_master.value()
                           + s.rx_drop_iommu.value());
         }},
        {"tx_frames",
         [](const auto &s) { return double(s.tx_frames.value()); }},
        {"tx_bytes",
         [](const auto &s) { return double(s.tx_bytes.value()); }},
        {"tx_dropped",
         [](const auto &s) { return double(s.tx_dropped.value()); }},
        {"interrupts",
         [](const auto &s) { return double(s.interrupts.value()); }},
    };

    auto addPort = [&](nic::NicPort &nic, const std::string &nic_name) {
        reg.addGauge(path(nic_name + ".rx_drop_no_match"),
                     [&nic]() { return double(nic.rxDropNoMatch()); });
        for (unsigned p = 0; p < nic.poolCount(); ++p) {
            std::string pool_name =
                p == 0 ? "pf" : "vf" + std::to_string(p - 1);
            for (const Field &f : kFields) {
                reg.addGauge(
                    path(nic_name + "." + pool_name + "." + f.suffix),
                    [&nic, p, get = &f.get]() {
                        if (p >= nic.poolCount())
                            return 0.0;
                        return (*get)(nic.poolStats(nic::Pool(p)));
                    });
            }
        }
    };
    for (unsigned i = 0; i < portCount(); ++i)
        addPort(*ports_[i], "nic" + std::to_string(i));
    if (vmdq_nic_)
        addPort(*vmdq_nic_, "vmdq");

    auto addDomain = [&](vmm::Domain &dom, const std::string &name) {
        reg.addGauge(path(name + ".vm_exits"),
                     [&dom]() { return dom.exits().totalCount(); });
        reg.addGauge(path(name + ".vm_exit_cycles"),
                     [&dom]() { return dom.exits().totalCycles(); });
    };
    addDomain(server_->dom0(), "dom0");
    for (std::size_t g = 0; g < guests_.size(); ++g) {
        std::string name = "vm" + std::to_string(g);
        addDomain(*guests_[g]->dom, name);
        reg.addGauge(path(name + ".rx_bytes"), [this, g]() {
            const auto &gg = *guests_.at(g);
            return gg.rx ? double(gg.rx->rxBytes()) : 0.0;
        });
        reg.addGauge(path(name + ".rx_packets"), [this, g]() {
            const auto &gg = *guests_.at(g);
            return gg.rx ? double(gg.rx->rxPackets()) : 0.0;
        });
    }

    if (obs_) {
        reg.add(path("hist.intr_latency_us"), &obs_->intr_latency_us);
        reg.add(path("hist.ring_occupancy"), &obs_->ring_occupancy);
        reg.add(path("hist.tcp_rtt_us"), &obs_->tcp_rtt_us);
        for (unsigned r = 0; r < unsigned(vmm::ExitReason::Count); ++r) {
            reg.add(path("hist.exit_cost."
                         + metricName(
                             vmm::exitReasonName(vmm::ExitReason(r)))),
                    &obs_->exit_cost_cycles[r]);
        }
    }
}

void
Testbed::attachObsTrace(obs::ChromeTraceWriter &w)
{
    w.attachEventQueue(eq_, "sim");
    for (unsigned i = 0; i < server_->pcpuCount(); ++i)
        w.attachCpu(server_->pcpu(i), "server");
    for (unsigned i = 0; i < client_->pcpuCount(); ++i)
        w.attachCpu(client_->pcpu(i), "client");
}

void
Testbed::watchAll(check::InvariantChecker &chk)
{
    for (unsigned i = 0; i < portCount(); ++i) {
        nic::SriovNic &p = *ports_[i];
        std::string pn = "port" + std::to_string(i);
        chk.watchSwitch(pn + ".l2", p.l2());
        for (unsigned pool = 0; pool < p.poolCount(); ++pool) {
            chk.watchRing(pn + ".pool" + std::to_string(pool) + ".rx",
                          p.rxRing(nic::Pool(pool)));
        }
        chk.watchFunction(p.pf());
    }
    if (vmdq_nic_) {
        chk.watchSwitch("vmdq.l2", vmdq_nic_->l2());
        for (unsigned q = 0; q < vmdq_nic_->poolCount(); ++q) {
            chk.watchRing("vmdq.q" + std::to_string(q) + ".rx",
                          vmdq_nic_->rxRing(nic::Pool(q)));
        }
        chk.watchFunction(vmdq_nic_->pf());
    }
    for (std::size_t i = 0; i < wires_.size(); ++i)
        chk.watchWire("wire" + std::to_string(i), *wires_[i]);
    chk.watchRouter(server_->router());
    chk.watchRouter(client_->router());
    for (const ClientPort &cp : client_ports_) {
        if (cp.nic)
            chk.watchFunction(cp.nic->pf());
    }
    auto watchDomainLapics = [&chk](vmm::Domain &dom,
                                    const std::string &name) {
        for (unsigned v = 0; v < dom.vcpuCount(); ++v) {
            chk.watchLapic(name + ".vcpu" + std::to_string(v),
                           dom.vcpu(v).vlapic().chip());
        }
    };
    watchDomainLapics(server_->dom0(), "dom0");
    for (std::size_t g = 0; g < guests_.size(); ++g) {
        if (guests_[g]->dom != nullptr) {
            watchDomainLapics(*guests_[g]->dom,
                              "guest" + std::to_string(g));
        }
    }
    // Violation reports carry the flight recorder's packet trails.
    chk.attachPathTracer(pathtrace_.get());
}

} // namespace sriov::core
