#include "core/testbed.hpp"

#include "check/invariant_checker.hpp"
#include "sim/log.hpp"

namespace sriov::core {

Testbed::Testbed(Params p) : params_(std::move(p))
{
    if (sim::shardCount() != 0) {
        buildSharded();
        if (sim::fluidEnabled())
            buildShardedFluid();
        return;
    }
    buildLegacy();
    if (sim::fluidEnabled()) {
        // CPU work submitted by netback captures whole frame batches
        // in its completion closures — state a warp cannot rewrite —
        // so the director refuses to warp while any is in flight.
        auto gate = [this]() {
            static const char *const opaque[] = {"dom0-netback"};
            for (unsigned i = 0; i < server_->pcpuCount(); ++i) {
                if (server_->pcpu(i).hasWorkTagged(opaque, 1))
                    return false;
            }
            for (unsigned i = 0; i < client_->pcpuCount(); ++i) {
                if (client_->pcpu(i).hasWorkTagged(opaque, 1))
                    return false;
            }
            return true;
        };
        fluid_ = std::make_unique<FluidDirector>(
            eq_, [this](sim::FluidVisitor &v) { fluidVisit(v); },
            std::move(gate));
        fluid_->start();
    }
}

/**
 * The top-of-rack relay: one island owning the ToR end of every wire.
 * Forwarding is a static MAC table filled at build time (client NICs)
 * and at addGuest (guest VF MACs) — a lookup and a re-send on the
 * destination's downlink, no learning, no flooding. Deterministic by
 * construction: the table is keyed by MAC value and the relay runs on
 * its own EventQueue like any other island.
 */
struct Testbed::TorRelay
{
    /** The ToR-side endpoint of one attached wire. */
    struct Port final : nic::WireEndpoint
    {
        TorRelay *tor = nullptr;

        void
        receive(const nic::Packet &pkt) override
        {
            tor->forward(pkt);
        }
    };

    /** A downlink: the wire and the ToR endpoint sends leave from. */
    struct Link
    {
        nic::Wire *wire = nullptr;
        Port *end = nullptr;
    };

    sim::EventQueue eq;
    obs::PathTracer pt;
    unsigned index = 0;    ///< engine island index (registered last)
    std::vector<std::unique_ptr<Port>> ports;
    std::map<std::uint64_t, Link> route;
    /** Per global port: the downlink toward that port's server NIC. */
    std::vector<Link> server_down;
    /** Frames for a MAC nobody registered (conservation check). */
    std::uint64_t unroutable_drops = 0;

    Port &
    addPort()
    {
        ports.push_back(std::make_unique<Port>());
        ports.back()->tor = this;
        return *ports.back();
    }

    void
    addRoute(nic::MacAddr mac, nic::Wire &wire, Port &end)
    {
        route[mac.value] = Link{&wire, &end};
    }

    void
    forward(const nic::Packet &pkt)
    {
        auto it = route.find(pkt.dst.value);
        if (it == route.end()) {
            ++unroutable_drops;
            return;
        }
        it->second.wire->send(*it->second.end, pkt);
    }
};

void
Testbed::buildLegacy()
{
    if (params_.num_hosts > 1)
        sim::fatal("multi-host testbed: the ToR relay is an island "
                   "(use --shards=N)");

    // First thing built: components created below register with it.
    pathtrace_ = std::make_unique<obs::PathTracer>();

    vmm::Hypervisor::MachineParams mp;
    server_ = std::make_unique<vmm::Hypervisor>(eq_, params_.costs, mp);
    client_ = std::make_unique<vmm::Hypervisor>(eq_, params_.costs, mp);
    params_.opts.apply(*server_);

    iovm_ = std::make_unique<IovManager>(*server_);
    migration_ = std::make_unique<vmm::MigrationManager>(*server_);
    dom0_kern_ = std::make_unique<guest::GuestKernel>(
        *server_, server_->dom0(), guest::KernelVersion::v2_6_28);

    unsigned nports = params_.use_vmdq_nic ? 1 : params_.num_ports;
    double line = params_.use_vmdq_nic ? 10e9 : params_.line_bps;

    for (unsigned i = 0; i < nports; ++i) {
        // Server-side NIC for this port.
        nic::NicPort *server_end = nullptr;
        if (params_.use_vmdq_nic) {
            nic::VmdqNic::VmdqParams vp;
            vmdq_nic_ = std::make_unique<nic::VmdqNic>(
                eq_, "vmdq0", pci::Bdf{1, 0, 0}, vp);
            vmdq_nic_->setIommu(&server_->iommu());
            server_->rootComplex().plug(vmdq_nic_->pf());
            vmdq_backend_ = std::make_unique<drivers::VmdqBackend>(
                *dom0_kern_, *vmdq_nic_, drivers::VmdqBackend::Config{});
            server_end = vmdq_nic_.get();
        } else {
            nic::SriovNic::SriovParams sp;
            sp.total_vfs = std::uint16_t(params_.vfs_per_port);
            // One bus per port so the VF RID windows (PF RID + 0x80 +
            // 2*i) can never collide across ports.
            auto nic = std::make_unique<nic::SriovNic>(
                eq_, "eth_p" + std::to_string(i),
                pci::Bdf{std::uint8_t(1 + i), 0, 0}, sp);
            nic->setIommu(&server_->iommu());
            iovm_->registerNic(*nic);
            auto pf = std::make_unique<drivers::PfDriver>(*dom0_kern_,
                                                          *nic);
            pf->enableVfs(params_.vfs_per_port);
            server_end = nic.get();
            ports_.push_back(std::move(nic));
            pf_drivers_.push_back(std::move(pf));
        }

        // Wire + client-side machine port.
        nic::Wire::Params wp;
        wp.line_bps = line;
        wires_.push_back(std::make_unique<nic::Wire>(eq_, wp));

        ClientPort cp;
        // The client machine is not under test: give its adapters a
        // fast PCIe path so they never bound the experiment.
        nic::PlainNic::Params cnp;
        cnp.dma.link_bps = 16e9;
        cnp.dma.per_dma_overhead = sim::Time::ns(100);
        cp.nic = std::make_unique<nic::PlainNic>(
            eq_, "cli_p" + std::to_string(i),
            pci::Bdf{std::uint8_t(1 + i), 0, 0}, cnp);
        client_->rootComplex().plug(cp.nic->pf());
        cp.dom = &client_->createDomain("cli" + std::to_string(i),
                                        vmm::DomainType::Native,
                                        64ull << 20);
        cp.kern = std::make_unique<guest::GuestKernel>(*client_, *cp.dom);
        drivers::VfDriver::Config dcfg;
        dcfg.name = "cli_eth" + std::to_string(i);
        dcfg.mac = nic::MacAddr::make(2, std::uint16_t(i + 1));
        cp.drv = std::make_unique<drivers::NativeDriver>(*cp.kern, *cp.nic,
                                                         nic::Pool(0),
                                                         dcfg);
        cp.drv->setItrPolicy(std::make_unique<drivers::AdaptiveItr>());
        cp.drv->init();
        cp.stack = std::make_unique<guest::NetStack>(*cp.kern);
        cp.stack->attachDevice(*cp.drv);
        wires_.back()->connect(*server_end, *cp.nic);
        server_end->attachWire(*wires_.back());
        cp.nic->attachWire(*wires_.back());

        // Path-tracer wiring for this port's whole chain. Registration
        // order is the build order, so component ids (and every
        // artifact built from them) are reproducible.
        obs::PathTracer *pt = pathtrace_.get();
        server_end->setPathTracer(pt);
        wires_.back()->setPathTracer(
            pt, pt->registerComponent("wire" + std::to_string(i)));
        cp.nic->setPathTracer(pt);
        cp.drv->setPathTracer(
            pt,
            pt->registerComponent("cli" + std::to_string(i) + ".drv"));
        cp.stack->setPathTracer(
            pt,
            pt->registerComponent("cli" + std::to_string(i) + ".net"));

        client_ports_.push_back(std::move(cp));
    }

    // Auxiliary delivery marks: every MSI reaching a router drops a
    // trace_id-0 record, so flight-recorder dumps show interrupt
    // activity interleaved with packet trails. Pure observation — the
    // tap neither schedules nor mutates.
    auto tapRouter = [this](intr::InterruptRouter &r, const char *name) {
        std::uint16_t comp = pathtrace_->registerComponent(name);
        r.addDeliveryTap(
            [this, comp](pci::Rid, const pci::MsiMessage &) {
                pathtrace_->mark(comp, obs::PathStage::LapicDeliver,
                                 eq_.now());
            });
    };
    tapRouter(server_->router(), "server.intr");
    tapRouter(client_->router(), "client.intr");
}

void
Testbed::buildSharded()
{
    if (params_.use_vmdq_nic)
        sim::fatal("sharded testbed: the VMDq topology has no island "
                   "partition (use --shards=0)");

    engine_ = std::make_unique<sim::ShardEngine>(sim::shardCount());

    vmm::Hypervisor::MachineParams mp;
    // Multi-host racks replicate the whole per-port structure: global
    // port g = host * num_ports + local port, every name and BDF keyed
    // by g so nothing collides across hosts.
    const unsigned nports = params_.num_ports * params_.num_hosts;

    // Server slices register first so engine island order — the digest
    // fold order — is slices 0..P-1, clients P..2P-1, fixed by the
    // partition rather than the worker count.
    for (unsigned i = 0; i < nports; ++i) {
        Island s;
        s.eq = std::make_unique<sim::EventQueue>();
        s.pt = std::make_unique<obs::PathTracer>();
        s.pt->setShardHalf(true);
        s.hv = std::make_unique<vmm::Hypervisor>(*s.eq, params_.costs,
                                                 mp);
        params_.opts.apply(*s.hv);
        s.iovm = std::make_unique<IovManager>(*s.hv);
        s.dom0 = std::make_unique<guest::GuestKernel>(
            *s.hv, s.hv->dom0(), guest::KernelVersion::v2_6_28);
        s.index = engine_->addIsland(*s.eq);
        slices_.push_back(std::move(s));
    }
    for (unsigned i = 0; i < nports; ++i) {
        Island c;
        c.eq = std::make_unique<sim::EventQueue>();
        c.pt = std::make_unique<obs::PathTracer>();
        c.pt->setShardHalf(true);
        c.hv = std::make_unique<vmm::Hypervisor>(*c.eq, params_.costs,
                                                 mp);
        c.index = engine_->addIsland(*c.eq);
        client_islands_.push_back(std::move(c));
    }

    // The ToR relay island registers after every host island so the
    // digest fold order stays slices, clients, ToR for any host count.
    if (params_.num_hosts > 1) {
        tor_ = std::make_unique<TorRelay>();
        tor_->pt.setShardHalf(true);
        tor_->index = engine_->addIsland(tor_->eq);
    }

    for (unsigned i = 0; i < nports; ++i) {
        Island &sl = slices_[i];
        Island &cl = client_islands_[i];

        nic::SriovNic::SriovParams sp;
        sp.total_vfs = std::uint16_t(params_.vfs_per_port);
        auto nic = std::make_unique<nic::SriovNic>(
            *sl.eq, "eth_p" + std::to_string(i),
            pci::Bdf{std::uint8_t(1 + i), 0, 0}, sp);
        nic->setIommu(&sl.hv->iommu());
        sl.iovm->registerNic(*nic);
        auto pf = std::make_unique<drivers::PfDriver>(*sl.dom0, *nic);
        pf->enableVfs(params_.vfs_per_port);
        nic::NicPort *server_end = nic.get();
        ports_.push_back(std::move(nic));
        pf_drivers_.push_back(std::move(pf));

        // The wire is the island boundary: its sharded form pushes
        // (due, frame) messages between the two queues with the
        // propagation delay as engine lookahead. The sharded testbed
        // strings a 1 km run (5 us) instead of the legacy 100 m patch
        // cable: conservative sync advances islands at most one
        // lookahead per round trip, and 500 ns would drown the run in
        // sync rounds. Identical for every shard count >= 1, so
        // byte-identity holds; throughput and CPU figures don't see
        // propagation (open-loop senders), only path latency does.
        nic::Wire::Params wp;
        wp.line_bps = params_.line_bps;
        wp.propagation = sim::Time::us(5);
        nic::Wire *srv_wire = nullptr;    // the wire at the server NIC
        nic::Wire *cli_wire = nullptr;    // the wire at the client NIC
        TorRelay::Port *tor_srv = nullptr;
        TorRelay::Port *tor_cli = nullptr;
        if (tor_) {
            // Two hops through the rack: server port g <-> ToR and
            // ToR <-> client port g, each its own full-duplex wire with
            // the same 5 us lookahead. The relay re-serializes at line
            // rate, so a steady stream stays steady — just offset by
            // one store-and-forward latency.
            wires_.push_back(std::make_unique<nic::Wire>(
                *sl.eq, tor_->eq, *engine_, sl.index, tor_->index, wp));
            srv_wire = wires_.back().get();
            tor_srv = &tor_->addPort();
            wires_.push_back(std::make_unique<nic::Wire>(
                *cl.eq, tor_->eq, *engine_, cl.index, tor_->index, wp));
            cli_wire = wires_.back().get();
            tor_cli = &tor_->addPort();
        } else {
            wires_.push_back(std::make_unique<nic::Wire>(
                *sl.eq, *cl.eq, *engine_, sl.index, cl.index, wp));
            srv_wire = cli_wire = wires_.back().get();
        }

        ClientPort cp;
        nic::PlainNic::Params cnp;
        cnp.dma.link_bps = 16e9;
        cnp.dma.per_dma_overhead = sim::Time::ns(100);
        cp.nic = std::make_unique<nic::PlainNic>(
            *cl.eq, "cli_p" + std::to_string(i),
            pci::Bdf{std::uint8_t(1 + i), 0, 0}, cnp);
        cl.hv->rootComplex().plug(cp.nic->pf());
        cp.dom = &cl.hv->createDomain("cli" + std::to_string(i),
                                      vmm::DomainType::Native,
                                      64ull << 20);
        cp.kern = std::make_unique<guest::GuestKernel>(*cl.hv, *cp.dom);
        drivers::VfDriver::Config dcfg;
        dcfg.name = "cli_eth" + std::to_string(i);
        dcfg.mac = nic::MacAddr::make(2, std::uint16_t(i + 1));
        cp.drv = std::make_unique<drivers::NativeDriver>(
            *cp.kern, *cp.nic, nic::Pool(0), dcfg);
        cp.drv->setItrPolicy(std::make_unique<drivers::AdaptiveItr>());
        cp.drv->init();
        cp.stack = std::make_unique<guest::NetStack>(*cp.kern);
        cp.stack->attachDevice(*cp.drv);
        if (tor_) {
            srv_wire->connect(*server_end, *tor_srv);
            cli_wire->connect(*cp.nic, *tor_cli);
            server_end->attachWire(*srv_wire);
            cp.nic->attachWire(*cli_wire);
            // Routes: the client NIC's MAC answers on its uplink; the
            // guests behind this port register in addGuest against the
            // server downlink recorded here.
            tor_->addRoute(dcfg.mac, *cli_wire, *tor_cli);
            tor_->server_down.push_back(
                TorRelay::Link{srv_wire, tor_srv});
        } else {
            srv_wire->connect(*server_end, *cp.nic);
            server_end->attachWire(*srv_wire);
            cp.nic->attachWire(*srv_wire);
        }

        // Each island stamps into its own tracer (shard-half mode);
        // pathSnapshot() joins the halves by trace id. Registration
        // order per tracer is build order, as in the legacy build.
        server_end->setPathTracer(sl.pt.get());
        if (tor_) {
            srv_wire->setShardPathTracers(
                sl.pt.get(),
                sl.pt->registerComponent("wire" + std::to_string(i)
                                         + ".s"),
                &tor_->pt,
                tor_->pt.registerComponent("wire" + std::to_string(i)
                                           + ".s"));
            cli_wire->setShardPathTracers(
                cl.pt.get(),
                cl.pt->registerComponent("wire" + std::to_string(i)
                                         + ".c"),
                &tor_->pt,
                tor_->pt.registerComponent("wire" + std::to_string(i)
                                           + ".c"));
        } else {
            srv_wire->setShardPathTracers(
                sl.pt.get(),
                sl.pt->registerComponent("wire" + std::to_string(i)),
                cl.pt.get(),
                cl.pt->registerComponent("wire" + std::to_string(i)));
        }
        cp.nic->setPathTracer(cl.pt.get());
        cp.drv->setPathTracer(
            cl.pt.get(),
            cl.pt->registerComponent("cli" + std::to_string(i)
                                     + ".drv"));
        cp.stack->setPathTracer(
            cl.pt.get(),
            cl.pt->registerComponent("cli" + std::to_string(i)
                                     + ".net"));

        client_ports_.push_back(std::move(cp));

        auto tapRouter = [](Island &isl, const char *name) {
            std::uint16_t comp = isl.pt->registerComponent(name);
            obs::PathTracer *pt = isl.pt.get();
            sim::EventQueue *q = isl.eq.get();
            isl.hv->router().addDeliveryTap(
                [pt, q, comp](pci::Rid, const pci::MsiMessage &) {
                    pt->mark(comp, obs::PathStage::LapicDeliver,
                             q->now());
                });
        };
        tapRouter(sl, "server.intr");
        tapRouter(cl, "client.intr");
    }
}

// simlint: fluid-settle
void
Testbed::buildShardedFluid()
{
    // Every island gets its own ledger — in Exact mode too, so the
    // window quantization the senders and NICs derive from it is the
    // same whether or not the coordinator later warps (On and Exact
    // share a schedule, the byte-identity contract).
    const unsigned isles = engine_->islandCount();
    island_ledgers_.reserve(isles);
    for (unsigned i = 0; i < isles; ++i) {
        island_ledgers_.push_back(std::make_unique<sim::FlowLedger>());
        engine_->setIslandLedger(i, island_ledgers_.back().get());
    }
    if (sim::fluidMode() != sim::FluidMode::On)
        return;
    // Same opacity rule as the legacy gate: netback batches capture
    // frame vectors a warp cannot rewrite. A sharded build refuses PV
    // guests so the tag should never fire — the gate is the safety
    // net, not the policy.
    auto gate = [this]() {
        static const char *const opaque[] = {"dom0-netback"};
        for (Island &s : slices_) {
            for (unsigned i = 0; i < s.hv->pcpuCount(); ++i) {
                if (s.hv->pcpu(i).hasWorkTagged(opaque, 1))
                    return false;
            }
        }
        for (Island &c : client_islands_) {
            for (unsigned i = 0; i < c.hv->pcpuCount(); ++i) {
                if (c.hv->pcpu(i).hasWorkTagged(opaque, 1))
                    return false;
            }
        }
        return true;
    };
    coordinator_ = std::make_unique<WarpCoordinator>(
        *engine_, [this](sim::FluidVisitor &v) { fluidVisit(v); },
        std::move(gate));
}

Testbed::~Testbed() = default;

sim::EventQueue &
Testbed::eq()
{
    if (engine_)
        sim::fatal("testbed: eq() on a sharded testbed (one queue per "
                   "island; use run()/orderDigest()/executedEvents())");
    return eq_;
}

vmm::Hypervisor &
Testbed::server()
{
    if (engine_)
        sim::fatal("testbed: server() on a sharded testbed (one "
                   "hypervisor per slice)");
    return *server_;
}

vmm::Hypervisor &
Testbed::client()
{
    if (engine_)
        sim::fatal("testbed: client() on a sharded testbed (one "
                   "hypervisor per client island)");
    return *client_;
}

IovManager &
Testbed::iovm()
{
    if (engine_)
        sim::fatal("testbed: iovm() on a sharded testbed (one manager "
                   "per slice)");
    return *iovm_;
}

vmm::MigrationManager &
Testbed::migration()
{
    if (engine_)
        sim::fatal("sharded testbed: migration crosses slices (use "
                   "--shards=0)");
    return *migration_;
}

guest::GuestKernel &
Testbed::dom0Kernel()
{
    if (engine_)
        sim::fatal("testbed: dom0Kernel() on a sharded testbed (one "
                   "dom0 per slice)");
    return *dom0_kern_;
}

obs::PathTracer &
Testbed::pathTracer()
{
    if (engine_)
        sim::fatal("testbed: pathTracer() on a sharded testbed (use "
                   "pathSnapshot())");
    return *pathtrace_;
}

const obs::PathTracer &
Testbed::pathTracer() const
{
    if (engine_)
        sim::fatal("testbed: pathTracer() on a sharded testbed (use "
                   "pathSnapshot())");
    return *pathtrace_;
}

void
Testbed::run(sim::Time dt)
{
    if (engine_) {
        // With the coordinator installed the run is sliced into exact
        // stretches and closed-form warps; without it, one engine run.
        if (coordinator_)
            coordinator_->runUntil(now() + dt);
        else
            engine_->runUntil(now() + dt);
        return;
    }
    eq_.runUntil(eq_.now() + dt);
}

sim::Time
Testbed::now() const
{
    if (engine_)
        return slices_.front().eq->now();
    return eq_.now();
}

std::uint64_t
Testbed::executedEvents() const
{
    return engine_ ? engine_->executedEvents() : eq_.executed();
}

std::uint64_t
Testbed::orderDigest() const
{
    return engine_ ? engine_->foldedDigest() : eq_.orderDigest();
}

obs::PathSnapshot
Testbed::pathSnapshot() const
{
    if (!engine_)
        return pathtrace_->snapshot();
    std::vector<const obs::PathTracer *> parts;
    parts.reserve(slices_.size() + client_islands_.size() + 1);
    for (const Island &s : slices_)
        parts.push_back(s.pt.get());
    for (const Island &c : client_islands_)
        parts.push_back(c.pt.get());
    if (tor_)
        parts.push_back(&tor_->pt);
    return obs::PathTracer::mergeShards(parts);
}

nic::NicPort &
Testbed::serverNic(unsigned port)
{
    if (params_.use_vmdq_nic)
        return *vmdq_nic_;
    return *ports_.at(port);
}

std::unique_ptr<drivers::ItrPolicy>
Testbed::makeGuestItr() const
{
    if (params_.opts.aic) {
        drivers::AicItr::Params ap;
        ap.ap_bufs = params_.ap_bufs;
        return std::make_unique<drivers::AicItr>(ap);
    }
    return makeItrPolicy(params_.itr);
}

drivers::NetbackDriver &
Testbed::netback(unsigned port)
{
    if (engine_)
        sim::fatal("sharded testbed: PV netback couples dom0 and "
                   "guests (use --shards=0)");
    auto it = netbacks_.find(port);
    if (it == netbacks_.end()) {
        drivers::NetbackDriver::Config cfg;
        cfg.num_threads = params_.netback_threads;
        auto nb = std::make_unique<drivers::NetbackDriver>(*dom0_kern_,
                                                           cfg);
        nb->attachPhysical(serverNic(port));
        it = netbacks_.emplace(port, std::move(nb)).first;
    }
    return *it->second;
}

Testbed::Guest &
Testbed::addGuest(vmm::DomainType type, NetMode mode,
                  guest::KernelVersion kv, bool bond_vf_with_pv)
{
    if (engine_ && (mode != NetMode::Sriov || bond_vf_with_pv))
        sim::fatal("sharded testbed: only plain SR-IOV guests are "
                   "shardable (use --shards=0)");

    unsigned idx = unsigned(guests_.size());
    unsigned port = params_.use_vmdq_nic ? 0 : idx % portCount();

    // The machine context the guest builds against: its port's server
    // slice in sharded mode, the single server machine otherwise.
    vmm::Hypervisor &hv = engine_ ? *slices_[port].hv : *server_;
    obs::PathTracer &pt = engine_ ? *slices_[port].pt : *pathtrace_;
    IovManager &iovmgr = engine_ ? *slices_[port].iovm : *iovm_;

    auto g = std::make_unique<Guest>();
    g->mac = guestMac(idx);
    g->port = port;
    g->mode = mode;
    if (tor_) {
        tor_->addRoute(g->mac, *tor_->server_down.at(port).wire,
                       *tor_->server_down.at(port).end);
    }
    g->dom = &hv.createDomain("vm" + std::to_string(idx), type,
                              params_.guest_mem);
    g->kern = std::make_unique<guest::GuestKernel>(hv, *g->dom, kv);
    g->stack = std::make_unique<guest::NetStack>(*g->kern);
    g->stack->setUdpSocketCapacity(params_.ap_bufs);
    g->stack->setPathTracer(
        &pt,
        pt.registerComponent("vm" + std::to_string(idx) + ".net"));

    switch (mode) {
      case NetMode::Sriov: {
        nic::SriovNic &nic = *ports_.at(port);
        unsigned vf_index = next_vf_on_port_[port]++;
        if (vf_index >= nic.numVfs())
            sim::fatal("port %u out of VFs", port);
        iovmgr.assign(*g->dom, nic, vf_index);
        drivers::VfDriver::Config cfg;
        cfg.name = "eth0";
        cfg.mac = g->mac;
        g->vf = std::make_unique<drivers::VfDriver>(
            *g->kern, nic, nic.vfPool(vf_index), cfg);
        g->vf->setItrPolicy(makeGuestItr());
        g->vf->setPathTracer(
            &pt,
            pt.registerComponent("vm" + std::to_string(idx) + ".drv"));
        g->vf->init();
        g->netdev = g->vf.get();
        break;
      }
      case NetMode::Pv: {
        g->pv = std::make_unique<drivers::NetfrontDriver>(*g->kern, "eth0",
                                                          g->mac);
        netback(port).connectGuest(*g->pv);
        g->netdev = g->pv.get();
        break;
      }
      case NetMode::Vmdq: {
        g->pv = std::make_unique<drivers::NetfrontDriver>(*g->kern, "eth0",
                                                          g->mac);
        if (!vmdq_backend_ || !vmdq_backend_->assignQueue(*g->pv)) {
            // Out of hardware queues: conventional PV bridge fallback.
            netback(port).connectGuest(*g->pv);
        } else {
            // TX still rides the software bridge.
            g->pv->setBackend(&netback(port));
            netback(port).connectGuest(*g->pv);
        }
        g->netdev = g->pv.get();
        break;
      }
    }

    if (bond_vf_with_pv) {
        if (!g->vf)
            sim::fatal("bonding requires an SR-IOV guest");
        g->pv = std::make_unique<drivers::NetfrontDriver>(
            *g->kern, "eth_pv", g->mac);
        netback(port).connectGuest(*g->pv);
        g->bond = std::make_unique<guest::BondingDriver>("bond0");
        g->bond->addSlave(*g->vf);
        g->bond->addSlave(*g->pv);
        g->netdev = g->bond.get();
    }

    g->stack->attachDevice(*g->netdev);
    if (ObsHooks *oh = obsFor(port))
        installDomainObs(*oh, *g->dom);
    guests_.push_back(std::move(g));
    return *guests_.back();
}

guest::UdpStreamSender &
Testbed::startUdpToGuest(Guest &g, double offered_bps,
                         std::uint32_t payload)
{
    return startUdpToGuestFrom(g.port, g, offered_bps, payload);
}

guest::UdpStreamSender &
Testbed::startUdpToGuestFrom(unsigned client_port, Guest &g,
                             double offered_bps, std::uint32_t payload)
{
    sim::EventQueue &rx_eq = engine_ ? *slices_[g.port].eq : eq_;
    sim::EventQueue &tx_eq =
        engine_ ? *client_islands_[client_port].eq : eq_;
    if (client_port != g.port && !tor_)
        sim::fatal("cross-port stream needs the ToR relay "
                   "(Params.num_hosts > 1)");
    if (!g.rx) {
        g.rx = std::make_unique<guest::StreamReceiver>(
            rx_eq, *g.stack, guest::StreamReceiver::Proto::Udp);
    }
    auto &cs = *client_ports_.at(client_port).stack;
    udp_senders_.push_back(std::make_unique<guest::UdpStreamSender>(
        tx_eq, cs, g.mac, offered_bps, payload,
        std::uint32_t(guests_.size())));
    udp_senders_.back()->start();
    return *udp_senders_.back();
}

guest::TcpStreamSender &
Testbed::startTcpToGuest(Guest &g, std::uint32_t window,
                         std::uint32_t payload)
{
    sim::EventQueue &rx_eq = engine_ ? *slices_[g.port].eq : eq_;
    sim::EventQueue &tx_eq = engine_ ? *client_islands_[g.port].eq : eq_;
    if (!g.rx) {
        g.rx = std::make_unique<guest::StreamReceiver>(
            rx_eq, *g.stack, guest::StreamReceiver::Proto::Tcp);
    }
    auto &cs = *client_ports_.at(g.port).stack;
    tcp_senders_.push_back(std::make_unique<guest::TcpStreamSender>(
        tx_eq, cs, g.mac, window, payload));
    if (obs_)
        tcp_senders_.back()->setRttTap(&obs_->tcp_rtt_us);
    tcp_senders_.back()->start();
    return *tcp_senders_.back();
}

guest::NetStack &
Testbed::dom0Net(unsigned port)
{
    if (engine_)
        sim::fatal("sharded testbed: dom0 traffic stays inside a "
                   "slice and is not shardable (use --shards=0)");
    auto it = dom0_ports_.find(port);
    if (it == dom0_ports_.end()) {
        Dom0Port dp;
        drivers::VfDriver::Config cfg;
        cfg.name = "dom0_eth" + std::to_string(port);
        cfg.mac = nic::MacAddr::make(3, std::uint16_t(port + 1));
        dp.drv = std::make_unique<drivers::VfDriver>(
            *dom0_kern_, serverNic(port), nic::Pool(0), cfg);
        dp.drv->setItrPolicy(std::make_unique<drivers::AdaptiveItr>());
        dp.drv->setPathTracer(
            pathtrace_.get(),
            pathtrace_->registerComponent("dom0_eth"
                                          + std::to_string(port)
                                          + ".drv"));
        dp.drv->init();
        dp.stack = std::make_unique<guest::NetStack>(*dom0_kern_);
        dp.stack->attachDevice(*dp.drv);
        dp.stack->setPathTracer(
            pathtrace_.get(),
            pathtrace_->registerComponent("dom0_eth"
                                          + std::to_string(port)
                                          + ".net"));
        it = dom0_ports_.emplace(port, std::move(dp)).first;
    }
    return *it->second.stack;
}

guest::UdpStreamSender &
Testbed::startUdpFromDom0(Guest &g, double offered_bps,
                          std::uint32_t payload)
{
    if (engine_)
        sim::fatal("sharded testbed: dom0 senders are not shardable "
                   "(use --shards=0)");
    if (!g.rx) {
        g.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *g.stack, guest::StreamReceiver::Proto::Udp);
    }
    udp_senders_.push_back(std::make_unique<guest::UdpStreamSender>(
        eq_, dom0Net(g.port), g.mac, offered_bps, payload, 9000));
    udp_senders_.back()->start();
    return *udp_senders_.back();
}

guest::UdpStreamSender &
Testbed::startUdpGuestToGuest(Guest &from, Guest &to, double offered_bps,
                              std::uint32_t payload)
{
    if (engine_)
        sim::fatal("sharded testbed: guest-to-guest traffic is not "
                   "shardable (use --shards=0)");
    if (!to.rx) {
        to.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *to.stack, guest::StreamReceiver::Proto::Udp);
    }
    udp_senders_.push_back(std::make_unique<guest::UdpStreamSender>(
        eq_, *from.stack, to.mac, offered_bps, payload, 9001));
    udp_senders_.back()->start();
    return *udp_senders_.back();
}

Testbed::Measurement
Testbed::measure(sim::Time warmup, sim::Time window)
{
    run(warmup);
    // One utilization snapshot per hypervisor: the single server
    // machine, or every server slice (index-aligned with slices_).
    std::vector<vmm::Hypervisor::UtilSnapshot> snaps;
    if (engine_) {
        snaps.reserve(slices_.size());
        for (Island &s : slices_)
            snaps.push_back(s.hv->snapshot());
    } else {
        snaps.push_back(server_->snapshot());
    }
    for (auto &g : guests_) {
        if (g->rx)
            g->rx->takeThroughputBps();    // re-mark the window
    }
    run(window);

    Measurement m;
    m.seconds = window.toSeconds();
    for (auto &g : guests_) {
        double bps = g->rx ? g->rx->takeThroughputBps() : 0.0;
        m.per_guest_bps.push_back(bps);
        m.total_goodput_bps += bps;
    }
    if (engine_) {
        // Every slice machine has the legacy server's CPU complement,
        // so summing per-slice percentages keeps the legacy scale
        // (port work that shared 16 pCPUs now adds across slices).
        for (std::size_t k = 0; k < slices_.size(); ++k) {
            for (const auto &[tag, pct] :
                 slices_[k].hv->cpuPercentByTag(snaps[k]))
                m.cpu_by_tag[tag] += pct;
        }
    } else {
        m.cpu_by_tag = server_->cpuPercentByTag(snaps[0]);
    }
    for (const auto &[tag, pct] : m.cpu_by_tag) {
        m.total_pct += pct;
        if (tag == "xen") {
            m.xen_pct += pct;
        } else if (tag.rfind("dom0", 0) == 0) {
            m.dom0_pct += pct;
        } else if (tag.rfind("vm", 0) == 0) {
            m.guests_pct += pct;
        }
    }
    return m;
}

Testbed::ObsHooks::ObsHooks()
    // Bucket layouts are tuned to each quantity's range: delivery
    // latency spans sub-µs HVM injection to 10 ms paused-domain
    // retries; exit costs run from ~10² cycles to the slow emulate
    // paths; ring occupancy is bounded by the 1024-deep ring.
    : intr_latency_us(obs::Histogram::Params{0.125, 1.5, 48}),
      ring_occupancy(obs::Histogram::Params{1.0, 2.0, 14}),
      tcp_rtt_us(obs::Histogram::Params{10.0, 1.5, 40})
{
    exit_cost_cycles.reserve(unsigned(vmm::ExitReason::Count));
    for (unsigned i = 0; i < unsigned(vmm::ExitReason::Count); ++i) {
        exit_cost_cycles.emplace_back(
            obs::Histogram::Params{50.0, 1.3, 48});
    }
}

Testbed::ObsHooks &
Testbed::enableObs()
{
    if (engine_) {
        // One ObsHooks set per server slice: histogram inserts are
        // island-local, so workers never share a tap. The TCP RTT tap
        // is the one cross-island hook (sender on the client island,
        // histogram on a slice) and is skipped in sharded mode.
        if (!slices_.front().obs) {
            for (std::size_t i = 0; i < slices_.size(); ++i) {
                Island &s = slices_[i];
                s.obs = std::make_unique<ObsHooks>();
                s.hv->setIntrLatencyHistogram(&s.obs->intr_latency_us);
                installDomainObs(*s.obs, s.hv->dom0());
                installRingObs(*s.obs, *ports_[i]);
            }
            for (auto &g : guests_)
                installDomainObs(*slices_[g->port].obs, *g->dom);
        }
        return *slices_.front().obs;
    }
    if (obs_)
        return *obs_;
    obs_ = std::make_unique<ObsHooks>();
    server_->setIntrLatencyHistogram(&obs_->intr_latency_us);
    installDomainObs(*obs_, server_->dom0());
    for (auto &g : guests_)
        installDomainObs(*obs_, *g->dom);
    for (auto &p : ports_)
        installRingObs(*obs_, *p);
    if (vmdq_nic_)
        installRingObs(*obs_, *vmdq_nic_);
    for (auto &s : tcp_senders_)
        s->setRttTap(&obs_->tcp_rtt_us);
    return *obs_;
}

void
Testbed::installDomainObs(ObsHooks &obs, vmm::Domain &dom)
{
    for (unsigned r = 0; r < unsigned(vmm::ExitReason::Count); ++r) {
        dom.exits().setCostTap(vmm::ExitReason(r),
                               &obs.exit_cost_cycles[r]);
    }
}

void
Testbed::installRingObs(ObsHooks &obs, nic::NicPort &nic)
{
    // Taps live on the rings; VF disable destroys ring and tap
    // together, so nothing dangles (the histograms outlive the NIC).
    for (unsigned p = 0; p < nic.poolCount(); ++p)
        nic.rxRing(nic::Pool(p)).setOccupancyTap(&obs.ring_occupancy);
}

namespace {

/** Metric-path component from an exit-reason name ("I/O" has a '/'). */
std::string
metricName(const char *s)
{
    std::string out(s);
    for (char &c : out) {
        if (c == '/' || c == '.')
            c = '_';
    }
    return out;
}

} // namespace

void
Testbed::registerMetrics(obs::MetricRegistry &reg, const std::string &prefix)
{
    using Reg = obs::MetricRegistry;
    auto path = [&prefix](const std::string &rest) {
        return Reg::join(prefix, rest);
    };

    // eq.executed is deliberately NOT a metric: it counts simulator
    // events, which event thinning changes by design. It lives in the
    // figXX.perf.json sidecar instead, keeping figXX.json reports
    // byte-identical between thinned and --no-thin runs (CI diffs
    // them).
    if (engine_) {
        // Per-slice routers: export the slice sum so the metric keeps
        // its legacy meaning (all server-side deliveries).
        reg.addGauge(path("intr.delivered"), [this]() {
            double v = 0;
            for (const Island &s : slices_)
                v += double(s.hv->router().deliveredCounter().value());
            return v;
        });
        reg.addGauge(path("intr.spurious"), [this]() {
            double v = 0;
            for (const Island &s : slices_)
                v += double(s.hv->router().spuriousCounter().value());
            return v;
        });
    } else {
        reg.add(path("intr.delivered"),
                &server_->router().deliveredCounter());
        reg.add(path("intr.spurious"),
                &server_->router().spuriousCounter());
    }

    // Pool statistics register as bounds-checking gauges: VF disable
    // shrinks the pool vector, and a gauge re-resolves per snapshot.
    struct Field
    {
        const char *suffix;
        std::function<double(const nic::NicPort::PoolStats &)> get;
    };
    static const Field kFields[] = {
        {"rx_frames",
         [](const auto &s) { return double(s.rx_frames.value()); }},
        {"rx_bytes",
         [](const auto &s) { return double(s.rx_bytes.value()); }},
        {"rx_drops",
         [](const auto &s) {
             return double(s.rx_drop_ring.value()
                           + s.rx_drop_master.value()
                           + s.rx_drop_iommu.value());
         }},
        {"tx_frames",
         [](const auto &s) { return double(s.tx_frames.value()); }},
        {"tx_bytes",
         [](const auto &s) { return double(s.tx_bytes.value()); }},
        {"tx_dropped",
         [](const auto &s) { return double(s.tx_dropped.value()); }},
        {"interrupts",
         [](const auto &s) { return double(s.interrupts.value()); }},
    };

    auto addPort = [&](nic::NicPort &nic, const std::string &nic_name) {
        reg.addGauge(path(nic_name + ".rx_drop_no_match"),
                     [&nic]() { return double(nic.rxDropNoMatch()); });
        for (unsigned p = 0; p < nic.poolCount(); ++p) {
            std::string pool_name =
                p == 0 ? "pf" : "vf" + std::to_string(p - 1);
            for (const Field &f : kFields) {
                reg.addGauge(
                    path(nic_name + "." + pool_name + "." + f.suffix),
                    [&nic, p, get = &f.get]() {
                        if (p >= nic.poolCount())
                            return 0.0;
                        return (*get)(nic.poolStats(nic::Pool(p)));
                    });
            }
        }
    };
    for (unsigned i = 0; i < portCount(); ++i)
        addPort(*ports_[i], "nic" + std::to_string(i));
    if (vmdq_nic_)
        addPort(*vmdq_nic_, "vmdq");

    auto addDomain = [&](vmm::Domain &dom, const std::string &name) {
        reg.addGauge(path(name + ".vm_exits"),
                     [&dom]() { return dom.exits().totalCount(); });
        reg.addGauge(path(name + ".vm_exit_cycles"),
                     [&dom]() { return dom.exits().totalCycles(); });
    };
    if (engine_) {
        reg.addGauge(path("dom0.vm_exits"), [this]() {
            double v = 0;
            for (const Island &s : slices_)
                v += double(s.hv->dom0().exits().totalCount());
            return v;
        });
        reg.addGauge(path("dom0.vm_exit_cycles"), [this]() {
            double v = 0;
            for (const Island &s : slices_)
                v += double(s.hv->dom0().exits().totalCycles());
            return v;
        });
    } else {
        addDomain(server_->dom0(), "dom0");
    }
    for (std::size_t g = 0; g < guests_.size(); ++g) {
        std::string name = "vm" + std::to_string(g);
        addDomain(*guests_[g]->dom, name);
        reg.addGauge(path(name + ".rx_bytes"), [this, g]() {
            const auto &gg = *guests_.at(g);
            return gg.rx ? double(gg.rx->rxBytes()) : 0.0;
        });
        reg.addGauge(path(name + ".rx_packets"), [this, g]() {
            const auto &gg = *guests_.at(g);
            return gg.rx ? double(gg.rx->rxPackets()) : 0.0;
        });
    }

    if (engine_) {
        // One histogram block per slice ("hist.s3.*"): merging
        // log-bucketed histograms would lose counts, and the per-slice
        // form is still byte-stable across shard counts.
        for (std::size_t k = 0; k < slices_.size(); ++k) {
            const Island &s = slices_[k];
            if (!s.obs)
                continue;
            std::string hp = "hist.s" + std::to_string(k) + ".";
            reg.add(path(hp + "intr_latency_us"),
                    &s.obs->intr_latency_us);
            reg.add(path(hp + "ring_occupancy"),
                    &s.obs->ring_occupancy);
            for (unsigned r = 0; r < unsigned(vmm::ExitReason::Count);
                 ++r) {
                reg.add(path(hp + "exit_cost."
                             + metricName(vmm::exitReasonName(
                                 vmm::ExitReason(r)))),
                        &s.obs->exit_cost_cycles[r]);
            }
        }
    } else if (obs_) {
        reg.add(path("hist.intr_latency_us"), &obs_->intr_latency_us);
        reg.add(path("hist.ring_occupancy"), &obs_->ring_occupancy);
        reg.add(path("hist.tcp_rtt_us"), &obs_->tcp_rtt_us);
        for (unsigned r = 0; r < unsigned(vmm::ExitReason::Count); ++r) {
            reg.add(path("hist.exit_cost."
                         + metricName(
                             vmm::exitReasonName(vmm::ExitReason(r)))),
                    &obs_->exit_cost_cycles[r]);
        }
    }
}

void
Testbed::attachObsTrace(obs::ChromeTraceWriter &w)
{
    if (engine_) {
        // Attaching installs queue observers, so the next run degrades
        // to the sequential schedule — same results, full trace.
        for (std::size_t i = 0; i < slices_.size(); ++i) {
            const std::string si = std::to_string(i);
            w.attachEventQueue(*slices_[i].eq, "sim.s" + si);
            vmm::Hypervisor &hv = *slices_[i].hv;
            for (unsigned c = 0; c < hv.pcpuCount(); ++c)
                w.attachCpu(hv.pcpu(c), "server.s" + si);
        }
        for (std::size_t i = 0; i < client_islands_.size(); ++i) {
            const std::string si = std::to_string(i);
            w.attachEventQueue(*client_islands_[i].eq, "sim.c" + si);
            vmm::Hypervisor &hv = *client_islands_[i].hv;
            for (unsigned c = 0; c < hv.pcpuCount(); ++c)
                w.attachCpu(hv.pcpu(c), "client.s" + si);
        }
        return;
    }
    w.attachEventQueue(eq_, "sim");
    for (unsigned i = 0; i < server_->pcpuCount(); ++i)
        w.attachCpu(server_->pcpu(i), "server");
    for (unsigned i = 0; i < client_->pcpuCount(); ++i)
        w.attachCpu(client_->pcpu(i), "client");
}

Testbed::ObsHooks *
Testbed::obsFor(unsigned port)
{
    if (engine_)
        return slices_.at(port).obs.get();
    return obs_.get();
}

void
Testbed::fluidVisit(sim::FluidVisitor &v)
{
    if (engine_) {
        // Sharded walk, island build order (slices then clients, the
        // engine index order) — only legal at a quiescent barrier:
        // wires_ includes the cross-island channels' in-flight frames.
        // The partition is fixed for every shard count >= 1, so the
        // slot sequence — and with it every warp decision — is
        // byte-identical across shard counts.
        for (Island &s : slices_) {
            s.hv->fluidVisit(v);
            s.dom0->fluidVisit(v);
        }
        for (Island &c : client_islands_)
            c.hv->fluidVisit(v);
        for (auto &n : ports_)
            n->fluidVisit(v);
        for (auto &w : wires_)
            w->fluidVisit(v);
        // The ToR relay is stateless between wire hops; its drop
        // counter is the only scalar (zero-delta when nothing is
        // misrouted, and any misroute mid-probe rightly fails the
        // certificate).
        if (tor_)
            v.u64("tor.unroutable", tor_->unroutable_drops);
        for (auto &pf : pf_drivers_)
            pf->fluidVisit(v);
        for (ClientPort &cp : client_ports_) {
            cp.nic->fluidVisit(v);
            cp.kern->fluidVisit(v);
            cp.drv->fluidVisit(v);
            cp.stack->fluidVisit(v);
        }
        for (auto &gp : guests_) {
            Guest &g = *gp;
            g.kern->fluidVisit(v);
            g.stack->fluidVisit(v);
            if (g.vf)
                g.vf->fluidVisit(v);
            if (g.rx)
                g.rx->fluidVisit(v);
        }
        for (auto &s : udp_senders_)
            s->fluidVisit(v);
        for (auto &s : tcp_senders_)
            s->fluidVisit(v);
        for (Island &s : slices_) {
            if (!s.obs)
                continue;
            s.obs->intr_latency_us.fluidVisit(v, "obs.intr_latency");
            for (auto &h : s.obs->exit_cost_cycles)
                h.fluidVisit(v, "obs.exit_cost");
            s.obs->ring_occupancy.fluidVisit(v, "obs.ring_occupancy");
        }
        return;
    }
    // Build order, so the slot sequence is reproducible run to run.
    server_->fluidVisit(v);
    client_->fluidVisit(v);
    dom0_kern_->fluidVisit(v);
    for (auto &n : ports_)
        n->fluidVisit(v);
    if (vmdq_nic_)
        vmdq_nic_->fluidVisit(v);
    for (auto &w : wires_)
        w->fluidVisit(v);
    for (auto &pf : pf_drivers_)
        pf->fluidVisit(v);
    for (auto &[port, nb] : netbacks_)
        nb->fluidVisit(v);
    if (vmdq_backend_)
        vmdq_backend_->fluidVisit(v);
    for (ClientPort &cp : client_ports_) {
        cp.nic->fluidVisit(v);
        cp.kern->fluidVisit(v);
        cp.drv->fluidVisit(v);
        cp.stack->fluidVisit(v);
    }
    for (auto &[port, dp] : dom0_ports_) {
        dp.drv->fluidVisit(v);
        dp.stack->fluidVisit(v);
    }
    for (auto &gp : guests_) {
        Guest &g = *gp;
        g.kern->fluidVisit(v);
        g.stack->fluidVisit(v);
        if (g.vf)
            g.vf->fluidVisit(v);
        if (g.pv)
            g.pv->fluidVisit(v);
        if (g.bond)
            g.bond->fluidVisit(v);
        if (g.rx)
            g.rx->fluidVisit(v);
    }
    for (auto &s : udp_senders_)
        s->fluidVisit(v);
    for (auto &s : tcp_senders_)
        s->fluidVisit(v);
    if (obs_) {
        obs_->intr_latency_us.fluidVisit(v, "obs.intr_latency");
        for (auto &h : obs_->exit_cost_cycles)
            h.fluidVisit(v, "obs.exit_cost");
        obs_->ring_occupancy.fluidVisit(v, "obs.ring_occupancy");
        obs_->tcp_rtt_us.fluidVisit(v, "obs.tcp_rtt");
    }
    // Deliberately unvisited: the path tracer (trails have gaps over
    // warped spans by design), migration and the IOV manager (control
    // plane — any churn they cause reports a transition and ends the
    // segment at the exact schedule).
}

void
Testbed::watchAll(check::InvariantChecker &chk)
{
    if (engine_)
        sim::fatal("sharded testbed: watchAll() is single-stream; run "
                   "the invariant checker with --shards=0");
    for (unsigned i = 0; i < portCount(); ++i) {
        nic::SriovNic &p = *ports_[i];
        std::string pn = "port" + std::to_string(i);
        chk.watchSwitch(pn + ".l2", p.l2());
        for (unsigned pool = 0; pool < p.poolCount(); ++pool) {
            chk.watchRing(pn + ".pool" + std::to_string(pool) + ".rx",
                          p.rxRing(nic::Pool(pool)));
        }
        chk.watchFunction(p.pf());
    }
    if (vmdq_nic_) {
        chk.watchSwitch("vmdq.l2", vmdq_nic_->l2());
        for (unsigned q = 0; q < vmdq_nic_->poolCount(); ++q) {
            chk.watchRing("vmdq.q" + std::to_string(q) + ".rx",
                          vmdq_nic_->rxRing(nic::Pool(q)));
        }
        chk.watchFunction(vmdq_nic_->pf());
    }
    for (std::size_t i = 0; i < wires_.size(); ++i)
        chk.watchWire("wire" + std::to_string(i), *wires_[i]);
    chk.watchRouter(server_->router());
    chk.watchRouter(client_->router());
    for (const ClientPort &cp : client_ports_) {
        if (cp.nic)
            chk.watchFunction(cp.nic->pf());
    }
    auto watchDomainLapics = [&chk](vmm::Domain &dom,
                                    const std::string &name) {
        for (unsigned v = 0; v < dom.vcpuCount(); ++v) {
            chk.watchLapic(name + ".vcpu" + std::to_string(v),
                           dom.vcpu(v).vlapic().chip());
        }
    };
    watchDomainLapics(server_->dom0(), "dom0");
    for (std::size_t g = 0; g < guests_.size(); ++g) {
        if (guests_[g]->dom != nullptr) {
            watchDomainLapics(*guests_[g]->dom,
                              "guest" + std::to_string(g));
        }
    }
    // Violation reports carry the flight recorder's packet trails.
    chk.attachPathTracer(pathtrace_.get());
}

} // namespace sriov::core
