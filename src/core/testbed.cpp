#include "core/testbed.hpp"

#include "check/invariant_checker.hpp"
#include "sim/log.hpp"

namespace sriov::core {

Testbed::Testbed(Params p) : params_(std::move(p))
{
    vmm::Hypervisor::MachineParams mp;
    server_ = std::make_unique<vmm::Hypervisor>(eq_, params_.costs, mp);
    client_ = std::make_unique<vmm::Hypervisor>(eq_, params_.costs, mp);
    params_.opts.apply(*server_);

    iovm_ = std::make_unique<IovManager>(*server_);
    migration_ = std::make_unique<vmm::MigrationManager>(*server_);
    dom0_kern_ = std::make_unique<guest::GuestKernel>(
        *server_, server_->dom0(), guest::KernelVersion::v2_6_28);

    unsigned nports = params_.use_vmdq_nic ? 1 : params_.num_ports;
    double line = params_.use_vmdq_nic ? 10e9 : params_.line_bps;

    for (unsigned i = 0; i < nports; ++i) {
        // Server-side NIC for this port.
        nic::NicPort *server_end = nullptr;
        if (params_.use_vmdq_nic) {
            nic::VmdqNic::VmdqParams vp;
            vmdq_nic_ = std::make_unique<nic::VmdqNic>(
                eq_, "vmdq0", pci::Bdf{1, 0, 0}, vp);
            vmdq_nic_->setIommu(&server_->iommu());
            server_->rootComplex().plug(vmdq_nic_->pf());
            vmdq_backend_ = std::make_unique<drivers::VmdqBackend>(
                *dom0_kern_, *vmdq_nic_, drivers::VmdqBackend::Config{});
            server_end = vmdq_nic_.get();
        } else {
            nic::SriovNic::SriovParams sp;
            sp.total_vfs = std::uint16_t(params_.vfs_per_port);
            // One bus per port so the VF RID windows (PF RID + 0x80 +
            // 2*i) can never collide across ports.
            auto nic = std::make_unique<nic::SriovNic>(
                eq_, "eth_p" + std::to_string(i),
                pci::Bdf{std::uint8_t(1 + i), 0, 0}, sp);
            nic->setIommu(&server_->iommu());
            iovm_->registerNic(*nic);
            auto pf = std::make_unique<drivers::PfDriver>(*dom0_kern_,
                                                          *nic);
            pf->enableVfs(params_.vfs_per_port);
            server_end = nic.get();
            ports_.push_back(std::move(nic));
            pf_drivers_.push_back(std::move(pf));
        }

        // Wire + client-side machine port.
        nic::Wire::Params wp;
        wp.line_bps = line;
        wires_.push_back(std::make_unique<nic::Wire>(eq_, wp));

        ClientPort cp;
        // The client machine is not under test: give its adapters a
        // fast PCIe path so they never bound the experiment.
        nic::PlainNic::Params cnp;
        cnp.dma.link_bps = 16e9;
        cnp.dma.per_dma_overhead = sim::Time::ns(100);
        cp.nic = std::make_unique<nic::PlainNic>(
            eq_, "cli_p" + std::to_string(i),
            pci::Bdf{std::uint8_t(1 + i), 0, 0}, cnp);
        client_->rootComplex().plug(cp.nic->pf());
        cp.dom = &client_->createDomain("cli" + std::to_string(i),
                                        vmm::DomainType::Native,
                                        64ull << 20);
        cp.kern = std::make_unique<guest::GuestKernel>(*client_, *cp.dom);
        drivers::VfDriver::Config dcfg;
        dcfg.name = "cli_eth" + std::to_string(i);
        dcfg.mac = nic::MacAddr::make(2, std::uint16_t(i + 1));
        cp.drv = std::make_unique<drivers::NativeDriver>(*cp.kern, *cp.nic,
                                                         nic::Pool(0),
                                                         dcfg);
        cp.drv->setItrPolicy(std::make_unique<drivers::AdaptiveItr>());
        cp.drv->init();
        cp.stack = std::make_unique<guest::NetStack>(*cp.kern);
        cp.stack->attachDevice(*cp.drv);
        wires_.back()->connect(*server_end, *cp.nic);
        server_end->attachWire(*wires_.back());
        cp.nic->attachWire(*wires_.back());
        client_ports_.push_back(std::move(cp));
    }
}

Testbed::~Testbed() = default;

nic::NicPort &
Testbed::serverNic(unsigned port)
{
    if (params_.use_vmdq_nic)
        return *vmdq_nic_;
    return *ports_.at(port);
}

std::unique_ptr<drivers::ItrPolicy>
Testbed::makeGuestItr() const
{
    if (params_.opts.aic) {
        drivers::AicItr::Params ap;
        ap.ap_bufs = params_.ap_bufs;
        return std::make_unique<drivers::AicItr>(ap);
    }
    return makeItrPolicy(params_.itr);
}

drivers::NetbackDriver &
Testbed::netback(unsigned port)
{
    auto it = netbacks_.find(port);
    if (it == netbacks_.end()) {
        drivers::NetbackDriver::Config cfg;
        cfg.num_threads = params_.netback_threads;
        auto nb = std::make_unique<drivers::NetbackDriver>(*dom0_kern_,
                                                           cfg);
        nb->attachPhysical(serverNic(port));
        it = netbacks_.emplace(port, std::move(nb)).first;
    }
    return *it->second;
}

Testbed::Guest &
Testbed::addGuest(vmm::DomainType type, NetMode mode,
                  guest::KernelVersion kv, bool bond_vf_with_pv)
{
    unsigned idx = unsigned(guests_.size());
    unsigned port = params_.use_vmdq_nic ? 0 : idx % portCount();

    auto g = std::make_unique<Guest>();
    g->mac = guestMac(idx);
    g->port = port;
    g->mode = mode;
    g->dom = &server_->createDomain("vm" + std::to_string(idx), type,
                                    params_.guest_mem);
    g->kern = std::make_unique<guest::GuestKernel>(*server_, *g->dom, kv);
    g->stack = std::make_unique<guest::NetStack>(*g->kern);
    g->stack->setUdpSocketCapacity(params_.ap_bufs);

    switch (mode) {
      case NetMode::Sriov: {
        nic::SriovNic &nic = *ports_.at(port);
        unsigned vf_index = next_vf_on_port_[port]++;
        if (vf_index >= nic.numVfs())
            sim::fatal("port %u out of VFs", port);
        iovm_->assign(*g->dom, nic, vf_index);
        drivers::VfDriver::Config cfg;
        cfg.name = "eth0";
        cfg.mac = g->mac;
        g->vf = std::make_unique<drivers::VfDriver>(
            *g->kern, nic, nic.vfPool(vf_index), cfg);
        g->vf->setItrPolicy(makeGuestItr());
        g->vf->init();
        g->netdev = g->vf.get();
        break;
      }
      case NetMode::Pv: {
        g->pv = std::make_unique<drivers::NetfrontDriver>(*g->kern, "eth0",
                                                          g->mac);
        netback(port).connectGuest(*g->pv);
        g->netdev = g->pv.get();
        break;
      }
      case NetMode::Vmdq: {
        g->pv = std::make_unique<drivers::NetfrontDriver>(*g->kern, "eth0",
                                                          g->mac);
        if (!vmdq_backend_ || !vmdq_backend_->assignQueue(*g->pv)) {
            // Out of hardware queues: conventional PV bridge fallback.
            netback(port).connectGuest(*g->pv);
        } else {
            // TX still rides the software bridge.
            g->pv->setBackend(&netback(port));
            netback(port).connectGuest(*g->pv);
        }
        g->netdev = g->pv.get();
        break;
      }
    }

    if (bond_vf_with_pv) {
        if (!g->vf)
            sim::fatal("bonding requires an SR-IOV guest");
        g->pv = std::make_unique<drivers::NetfrontDriver>(
            *g->kern, "eth_pv", g->mac);
        netback(port).connectGuest(*g->pv);
        g->bond = std::make_unique<guest::BondingDriver>("bond0");
        g->bond->addSlave(*g->vf);
        g->bond->addSlave(*g->pv);
        g->netdev = g->bond.get();
    }

    g->stack->attachDevice(*g->netdev);
    guests_.push_back(std::move(g));
    return *guests_.back();
}

guest::UdpStreamSender &
Testbed::startUdpToGuest(Guest &g, double offered_bps,
                         std::uint32_t payload)
{
    if (!g.rx) {
        g.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *g.stack, guest::StreamReceiver::Proto::Udp);
    }
    auto &cs = *client_ports_.at(g.port).stack;
    udp_senders_.push_back(std::make_unique<guest::UdpStreamSender>(
        eq_, cs, g.mac, offered_bps, payload,
        std::uint32_t(guests_.size())));
    udp_senders_.back()->start();
    return *udp_senders_.back();
}

guest::TcpStreamSender &
Testbed::startTcpToGuest(Guest &g, std::uint32_t window,
                         std::uint32_t payload)
{
    if (!g.rx) {
        g.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *g.stack, guest::StreamReceiver::Proto::Tcp);
    }
    auto &cs = *client_ports_.at(g.port).stack;
    tcp_senders_.push_back(std::make_unique<guest::TcpStreamSender>(
        eq_, cs, g.mac, window, payload));
    tcp_senders_.back()->start();
    return *tcp_senders_.back();
}

guest::NetStack &
Testbed::dom0Net(unsigned port)
{
    auto it = dom0_ports_.find(port);
    if (it == dom0_ports_.end()) {
        Dom0Port dp;
        drivers::VfDriver::Config cfg;
        cfg.name = "dom0_eth" + std::to_string(port);
        cfg.mac = nic::MacAddr::make(3, std::uint16_t(port + 1));
        dp.drv = std::make_unique<drivers::VfDriver>(
            *dom0_kern_, serverNic(port), nic::Pool(0), cfg);
        dp.drv->setItrPolicy(std::make_unique<drivers::AdaptiveItr>());
        dp.drv->init();
        dp.stack = std::make_unique<guest::NetStack>(*dom0_kern_);
        dp.stack->attachDevice(*dp.drv);
        it = dom0_ports_.emplace(port, std::move(dp)).first;
    }
    return *it->second.stack;
}

guest::UdpStreamSender &
Testbed::startUdpFromDom0(Guest &g, double offered_bps,
                          std::uint32_t payload)
{
    if (!g.rx) {
        g.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *g.stack, guest::StreamReceiver::Proto::Udp);
    }
    udp_senders_.push_back(std::make_unique<guest::UdpStreamSender>(
        eq_, dom0Net(g.port), g.mac, offered_bps, payload, 9000));
    udp_senders_.back()->start();
    return *udp_senders_.back();
}

guest::UdpStreamSender &
Testbed::startUdpGuestToGuest(Guest &from, Guest &to, double offered_bps,
                              std::uint32_t payload)
{
    if (!to.rx) {
        to.rx = std::make_unique<guest::StreamReceiver>(
            eq_, *to.stack, guest::StreamReceiver::Proto::Udp);
    }
    udp_senders_.push_back(std::make_unique<guest::UdpStreamSender>(
        eq_, *from.stack, to.mac, offered_bps, payload, 9001));
    udp_senders_.back()->start();
    return *udp_senders_.back();
}

Testbed::Measurement
Testbed::measure(sim::Time warmup, sim::Time window)
{
    run(warmup);
    auto snap = server_->snapshot();
    for (auto &g : guests_) {
        if (g->rx)
            g->rx->takeThroughputBps();    // re-mark the window
    }
    run(window);

    Measurement m;
    m.seconds = window.toSeconds();
    for (auto &g : guests_) {
        double bps = g->rx ? g->rx->takeThroughputBps() : 0.0;
        m.per_guest_bps.push_back(bps);
        m.total_goodput_bps += bps;
    }
    m.cpu_by_tag = server_->cpuPercentByTag(snap);
    for (const auto &[tag, pct] : m.cpu_by_tag) {
        m.total_pct += pct;
        if (tag == "xen") {
            m.xen_pct += pct;
        } else if (tag.rfind("dom0", 0) == 0) {
            m.dom0_pct += pct;
        } else if (tag.rfind("vm", 0) == 0) {
            m.guests_pct += pct;
        }
    }
    return m;
}

void
Testbed::watchAll(check::InvariantChecker &chk)
{
    for (unsigned i = 0; i < portCount(); ++i) {
        nic::SriovNic &p = *ports_[i];
        std::string pn = "port" + std::to_string(i);
        chk.watchSwitch(pn + ".l2", p.l2());
        for (unsigned pool = 0; pool < p.poolCount(); ++pool) {
            chk.watchRing(pn + ".pool" + std::to_string(pool) + ".rx",
                          p.rxRing(nic::Pool(pool)));
        }
        chk.watchFunction(p.pf());
    }
    if (vmdq_nic_) {
        chk.watchSwitch("vmdq.l2", vmdq_nic_->l2());
        for (unsigned q = 0; q < vmdq_nic_->poolCount(); ++q) {
            chk.watchRing("vmdq.q" + std::to_string(q) + ".rx",
                          vmdq_nic_->rxRing(nic::Pool(q)));
        }
        chk.watchFunction(vmdq_nic_->pf());
    }
    for (std::size_t i = 0; i < wires_.size(); ++i)
        chk.watchWire("wire" + std::to_string(i), *wires_[i]);
    chk.watchRouter(server_->router());
    chk.watchRouter(client_->router());
    for (const ClientPort &cp : client_ports_) {
        if (cp.nic)
            chk.watchFunction(cp.nic->pf());
    }
    auto watchDomainLapics = [&chk](vmm::Domain &dom,
                                    const std::string &name) {
        for (unsigned v = 0; v < dom.vcpuCount(); ++v) {
            chk.watchLapic(name + ".vcpu" + std::to_string(v),
                           dom.vcpu(v).vlapic().chip());
        }
    };
    watchDomainLapics(server_->dom0(), "dom0");
    for (std::size_t g = 0; g < guests_.size(); ++g) {
        if (guests_[g]->dom != nullptr) {
            watchDomainLapics(*guests_[g]->dom,
                              "guest" + std::to_string(g));
        }
    }
}

} // namespace sriov::core
