/**
 * @file
 * Dnis: Dynamic Network Interface Switching (paper Section 4.4,
 * Fig. 5).
 *
 * The VF driver sticks to hardware, so a guest holding a VF cannot be
 * live-migrated directly. DNIS bonds the VF with a hardware-neutral
 * PV NIC (active-backup), and around migration:
 *
 *  1. The migration manager asks the virtual ACPI hot-plug controller
 *     to signal hot removal of the VF.
 *  2. The guest reacts (after a handling delay): the bonding driver
 *     fails over to the PV NIC while the VF driver quiesces and shuts
 *     down — the interface-switch window during which packets are
 *     lost (the extra ~0.6 s outage at the start of Fig. 21).
 *  3. With the hardware stickiness gone, ordinary pre-copy live
 *     migration runs as if the guest never had a VF.
 *  4. On the target, a virtual hot *add* restores a VF (not
 *     necessarily identical hardware) and the bond switches back for
 *     runtime performance.
 */

#ifndef SRIOV_CORE_DNIS_HPP
#define SRIOV_CORE_DNIS_HPP

#include <functional>

#include "drivers/netfront.hpp"
#include "drivers/vf_driver.hpp"
#include "guest/bonding.hpp"
#include "pci/hotplug_slot.hpp"
#include "vmm/migration.hpp"

namespace sriov::core {

class Dnis : public pci::HotplugListener
{
  public:
    struct Params
    {
        /** ACPI event delivery + guest hot-plug handling latency. */
        sim::Time remove_ack_delay = sim::Time::ms(150);
        /** Interface-switch window (VF quiesce + failover settle). */
        sim::Time vf_quiesce = sim::Time::ms(450);
        /** Hot-add + VF driver re-init latency on the target. */
        sim::Time hot_add_delay = sim::Time::ms(500);
        vmm::MigrationManager::Params mig{};
    };

    struct Report
    {
        vmm::MigrationManager::Result mig;
        sim::Time switch_started;     ///< hot-removal signalled
        sim::Time switched_to_pv;     ///< bond running on the PV NIC
        sim::Time vf_restored;        ///< bond back on a VF
    };

    Dnis(vmm::Hypervisor &hv, vmm::MigrationManager &mm);

    /**
     * Register the guest's network trio with DNIS; the VF slave is
     * activated for runtime performance.
     */
    void manage(vmm::Domain &dom, drivers::VfDriver &vf,
                drivers::NetfrontDriver &pv, guest::BondingDriver &bond,
                pci::HotplugSlot &slot);

    /** Run the full DNIS migration sequence. */
    void migrate(const Params &p, std::function<void(const Report &)> done);

    /** @name HotplugListener (the guest's hot-plug handling). @{ */
    void hotAdded(pci::PciFunction &fn) override;
    void removeRequested(pci::PciFunction &fn) override;
    /** @} */

    guest::BondingDriver *bond() { return bond_; }

  private:
    vmm::Hypervisor &hv_;
    vmm::MigrationManager &mm_;
    vmm::Domain *dom_ = nullptr;
    drivers::VfDriver *vf_ = nullptr;
    drivers::NetfrontDriver *pv_ = nullptr;
    guest::BondingDriver *bond_ = nullptr;
    pci::HotplugSlot *slot_ = nullptr;
    Params params_;
    Report report_;
    std::function<void(const Report &)> done_;
};

} // namespace sriov::core

#endif // SRIOV_CORE_DNIS_HPP
