#include "core/iov_manager.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace sriov::core {

VirtualVfConfig::VirtualVfConfig(pci::PciFunction &vf, pci::PciFunction &pf,
                                 pci::SriovCapability &cap)
    : vf_(vf), pf_(pf), cap_(cap)
{
}

std::uint32_t
VirtualVfConfig::read(std::uint16_t off, unsigned size) const
{
    // Synthesize the fields a trimmed VF does not implement (SR-IOV
    // spec: VF Vendor ID reads all-ones on the physical function).
    if (off == pci::cfg::kVendorId && size >= 2) {
        std::uint32_t v = pf_.config().raw16(pci::cfg::kVendorId);
        if (size == 4)
            v |= std::uint32_t(cap_.vfDeviceId()) << 16;
        return v;
    }
    if (off == pci::cfg::kDeviceId && size == 2)
        return cap_.vfDeviceId();
    return vf_.config().read(off, size);
}

void
VirtualVfConfig::write(std::uint16_t off, std::uint32_t v, unsigned size)
{
    std::uint16_t end = std::uint16_t(off + size);
    bool in_header = end <= 0x40;
    bool is_command =
        off >= pci::cfg::kCommand && end <= pci::cfg::kCommand + 2;
    bool is_intline = off == pci::cfg::kIntLine && size == 1;
    if (in_header && !is_command && !is_intline) {
        denied_.inc();
        return;
    }
    vf_.config().write(off, v, size);
}

IovManager::IovManager(vmm::Hypervisor &hv) : hv_(hv) {}

void
IovManager::registerNic(nic::SriovNic &nic)
{
    nics_.push_back(&nic);
    hv_.rootComplex().plug(nic.pf());
    nic.onVfsChanged([this, &nic]() { syncVfs(nic); });
    nic.onVfsRemoving([this, &nic]() {
        // Unplug the VFs while the objects are still alive.
        for (pci::PciFunction *vf : added_[&nic]) {
            hv_.rootComplex().unplug(*vf);
            cfgs_.erase(vf);
        }
        added_[&nic].clear();
    });
    syncVfs(nic);
}

void
IovManager::syncVfs(nic::SriovNic &nic)
{
    auto &list = added_[&nic];
    for (unsigned i = 0; i < nic.numVfs(); ++i) {
        pci::PciFunction *vf = nic.vf(i);
        if (std::find(list.begin(), list.end(), vf) != list.end())
            continue;
        // "Linux PCI hot add": the VF joins the host view even though
        // a vendor-ID scan cannot discover it.
        hv_.rootComplex().plug(*vf);
        list.push_back(vf);
    }
}

std::vector<pci::PciFunction *>
IovManager::hostVisibleVfs() const
{
    std::vector<pci::PciFunction *> out;
    for (const auto &[nic, vfs] : added_)
        out.insert(out.end(), vfs.begin(), vfs.end());
    return out;
}

VirtualVfConfig &
IovManager::assign(vmm::Domain &guest, nic::SriovNic &nic,
                   unsigned vf_index)
{
    pci::PciFunction *vf = nic.vf(vf_index);
    if (!vf)
        sim::fatal("assign: %s has no VF %u", nic.name().c_str(), vf_index);
    hv_.assignDevice(guest, *vf);
    auto cfg = std::make_unique<VirtualVfConfig>(*vf, nic.pf(),
                                                 nic.sriovCap());
    auto [it, inserted] = cfgs_.emplace(vf, std::move(cfg));
    if (!inserted)
        sim::fatal("VF %s already assigned", vf->name().c_str());
    return *it->second;
}

void
IovManager::deassign(vmm::Domain &guest, nic::SriovNic &nic,
                     unsigned vf_index)
{
    pci::PciFunction *vf = nic.vf(vf_index);
    if (!vf)
        return;
    hv_.deassignDevice(guest, *vf);
    cfgs_.erase(vf);
}

VirtualVfConfig *
IovManager::configOf(pci::PciFunction &vf)
{
    auto it = cfgs_.find(&vf);
    return it == cfgs_.end() ? nullptr : it->second.get();
}

} // namespace sriov::core
