#include "core/sweep_runner.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace sriov::core {

void
SweepRunner::run(std::size_t n,
                 const std::function<void(std::size_t)> &body) const
{
    if (n == 0)
        return;
    if (jobs_ <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::size_t workers = jobs_ < n ? jobs_ : n;
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&]() {
            for (;;) {
                std::size_t i = next.fetch_add(1,
                                               std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    body(i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    // Surface what a sequential loop would have hit first.
    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

} // namespace sriov::core
