#include "core/warp_coordinator.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/fluid_path.hpp"
#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace sriov::core {

WarpCoordinator::WarpCoordinator(sim::ShardEngine &engine, StateWalk walk,
                                 WarpGate gate)
    : WarpCoordinator(engine, std::move(walk), std::move(gate), Config{})
{
}

WarpCoordinator::WarpCoordinator(sim::ShardEngine &engine, StateWalk walk,
                                 WarpGate gate, Config cfg)
    : engine_(engine), walk_(std::move(walk)), gate_(std::move(gate)),
      cfg_(cfg)
{
    if (engine_.islandCount() == 0)
        sim::fatal("warp coordinator: engine has no islands");
}

sim::Time
WarpCoordinator::now() const
{
    // At a barrier every island clock is pinned to the same instant;
    // island 0 speaks for all of them.
    return const_cast<sim::ShardEngine &>(engine_).islandQueue(0).now();
}

bool
WarpCoordinator::ledgersSteady() const
{
    // liveSteady() (not allSteady()) per ledger: an island whose flows
    // all ended — or that never had any, like a slice whose port hosts
    // no guests — is vacuously steady and must not veto the global
    // warp. At least one island has to be carrying live traffic,
    // though, or there is nothing to certify against.
    std::size_t live = 0;
    for (unsigned i = 0; i < engine_.islandCount(); ++i) {
        const sim::FlowLedger *l = engine_.islandLedger(i);
        if (l == nullptr)
            continue;
        if (!l->liveSteady())
            return false;
        live += l->liveFlows();
    }
    return live > 0;
}

sim::Time
WarpCoordinator::globalPeriod() const
{
    // Global hyperperiod: LCM of the per-island hyperperiods. Edge
    // traffic needs no separate term — every cross-island stream's
    // delivery grid is registered as a flow on the receiving island
    // (nic::Wire::deliverShard), so each edge period already divides
    // both endpoint islands' periods.
    std::int64_t lcm = 0;
    for (unsigned i = 0; i < engine_.islandCount(); ++i) {
        const sim::FlowLedger *l = engine_.islandLedger(i);
        if (l == nullptr || l->liveFlows() == 0)
            continue;
        sim::Time p = l->commonPeriod(cfg_.period_cap);
        if (p <= sim::Time())
            return sim::Time();
        lcm = lcm == 0 ? p.picos() : std::lcm(lcm, p.picos());
        if (lcm <= 0 || lcm > cfg_.period_cap.picos())
            return sim::Time();
    }
    return sim::Time::ps(lcm);
}

void
WarpCoordinator::runUntil(sim::Time deadline)
{
    while (true) {
        const sim::Time t = now();
        if (t >= deadline)
            break;
        if (t >= backoff_until_ && ledgersSteady()) {
            sim::Time base = globalPeriod();
            if (base > sim::Time()) {
                sim::Time period = sim::Time::ps(base.picos() * mult_);
                if (period > cfg_.period_cap) {
                    // The multiplier outgrew the cap at this base
                    // period: restart the scan (cf. FluidDirector).
                    mult_ = 1;
                    period = base;
                }
                // A cycle runs two exact periods before it can warp;
                // probe only while the warp itself still fits.
                if ((deadline - t).picos()
                    >= period.picos() * (2 + cfg_.min_periods)) {
                    probeCycle(deadline, period);
                    continue;
                }
            }
        }
        // Not warpable from here: execute an exact slice and
        // re-evaluate at the next barrier. While backing off there is
        // no point stopping earlier than the back-off horizon.
        sim::Time target = t + cfg_.poll_chunk;
        if (backoff_until_ > target)
            target = backoff_until_;
        engine_.runUntil(std::min(target, deadline));
    }
    // Pin every island (and the engine's floors) to the deadline even
    // when a warp already landed us exactly on it.
    engine_.runUntil(deadline);
}

bool
WarpCoordinator::probeCycle(sim::Time deadline, sim::Time period)
{
    stats_.probes++;
    const unsigned isles = engine_.islandCount();
    const sim::Time t0 = now();

    s0_ = std::make_unique<sim::FluidVisitor>(
        sim::FluidVisitor::Pass::Capture);
    walk_(*s0_);

    engine_.runUntil(t0 + period);
    if (!ledgersSteady()) {
        reject("transition reported mid-cycle");
        return false;
    }
    s1_ = std::make_unique<sim::FluidVisitor>(
        sim::FluidVisitor::Pass::Capture);
    walk_(*s1_);
    std::string why;
    if (!s1_->verifyAgainst(*s0_, nullptr, &why)) {
        reject(std::move(why));
        return false;
    }
    e1_.assign(isles, {});
    for (unsigned i = 0; i < isles; ++i)
        engine_.islandQueue(i).snapshotPending(e1_[i]);
    const std::uint64_t exec_s1 = engine_.executedEvents();

    engine_.runUntil(t0 + period + period);
    if (!ledgersSteady()) {
        reject("transition reported mid-cycle");
        return false;
    }
    s2_ = std::make_unique<sim::FluidVisitor>(
        sim::FluidVisitor::Pass::Capture);
    walk_(*s2_);
    if (!s2_->verifyAgainst(*s1_, s0_.get(), &why)) {
        reject(std::move(why));
        return false;
    }
    e2_.assign(isles, {});
    shift_keys_.assign(isles, {});
    sim::Time abs_bound = sim::Time::max();
    for (unsigned i = 0; i < isles; ++i) {
        engine_.islandQueue(i).snapshotPending(e2_[i]);
        if (!classifyIsland(i, period, &abs_bound, &why)) {
            reject(std::move(why));
            return false;
        }
    }

    const sim::Time t2 = now();
    const std::int64_t np = period.picos();
    std::int64_t n = (deadline - t2).picos() / np;
    if (abs_bound != sim::Time::max())
        n = std::min(n, (abs_bound - t2).picos() / np);
    if (n < cfg_.min_periods) {
        reject("warp horizon too near");
        return false;
    }
    if (gate_ && !gate_()) {
        reject("opaque CPU work in flight");
        return false;
    }

    // Unlike the director there is no probe event to discount: the
    // second period ran wall-to-wall simulation events only.
    const std::uint64_t per_period = engine_.executedEvents() - exec_s1;
    sim::FluidVisitor apply(sim::FluidVisitor::Pass::Apply);
    apply.armApply(*s1_, *s2_, n);
    walk_(apply);
    const sim::Time delta = sim::Time::ps(n * np);
    for (unsigned i = 0; i < isles; ++i) {
        if (sim::FlowLedger *l = engine_.islandLedger(i))
            l->warpBy(delta);
        // No schedule/cancel since snapshotPending() (the walk is pure
        // visitation), so the S2 key indices are still valid.
        engine_.islandQueue(i).fluidWarp(delta, shift_keys_[i]);
    }
    engine_.fluidWarp(delta);

    stats_.segments++;
    stats_.periods_warped += std::uint64_t(n);
    stats_.warped = stats_.warped + delta;
    stats_.events_elided += per_period * std::uint64_t(n);
    SRIOV_TRACE(sim::TraceCat::Driver,
                "warp-coordinator: warped %lld periods of %s across %u "
                "islands (~%llu events)",
                static_cast<long long>(n), period.toString().c_str(),
                isles,
                static_cast<unsigned long long>(per_period
                                                * std::uint64_t(n)));
    consecutive_rejects_ = 0;
    last_reject_.clear();
    s0_.reset();
    s1_.reset();
    s2_.reset();
    e1_.clear();
    e2_.clear();
    return true;
}

bool
WarpCoordinator::classifyIsland(unsigned island, sim::Time period,
                                sim::Time *abs_bound, std::string *why)
{
    // The director's pending-event classifier, per island. Both
    // barriers are exactly one period apart, so a periodic process
    // pends at the same relative offset in e1 and e2; the same-seq
    // same-when test finds absolute events; anything else rejects.
    const sim::Time t2 = engine_.islandQueue(island).now();
    const sim::Time t1 = t2 - period;

    std::unordered_map<std::uint64_t, sim::Time> still;
    still.reserve(e1_[island].size());
    std::map<std::pair<std::string_view, std::int64_t>, int> rel1;
    for (const auto &e : e1_[island]) {
        still.emplace(e.seq, e.when);
        rel1[{std::string_view(e.tag), (e.when - t1).picos()}]++;
    }

    for (const auto &e : e2_[island]) {
        auto s = still.find(e.seq);
        if (s != still.end() && s->second == e.when) {
            *abs_bound = std::min(*abs_bound, e.when);
            continue;
        }
        auto r = rel1.find({std::string_view(e.tag),
                            (e.when - t2).picos()});
        if (r != rel1.end() && r->second > 0) {
            --r->second;
            if (!FluidDirector::shiftSafeTag(e.tag)) {
                *why = std::string("periodic event '") + e.tag
                    + "' carries opaque captures";
                return false;
            }
            shift_keys_[island].push_back(e.key_index);
            continue;
        }
        *why = std::string("unmatched pending event '") + e.tag + "'";
        return false;
    }
    return true;
}

void
WarpCoordinator::reject(std::string why)
{
    stats_.rejected++;
    last_reject_ = std::move(why);
    SRIOV_TRACE(sim::TraceCat::Driver,
                "warp-coordinator: cycle rejected: %s",
                last_reject_.c_str());
    s0_.reset();
    s1_.reset();
    s2_.reset();
    e1_.clear();
    e2_.clear();
    shift_keys_.clear();
    if (mult_ < cfg_.max_mult) {
        // Interacting grids often repeat only at a small multiple of
        // the base hyperperiod: scan upward before backing off.
        ++mult_;
        return;
    }
    mult_ = 1;
    unsigned shift = std::min(consecutive_rejects_, kMaxBackoffShift);
    ++consecutive_rejects_;
    backoff_until_ =
        now() + sim::Time::ps(cfg_.backoff.picos() << shift);
}

} // namespace sriov::core
