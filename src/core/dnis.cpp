#include "core/dnis.hpp"

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace sriov::core {

Dnis::Dnis(vmm::Hypervisor &hv, vmm::MigrationManager &mm)
    : hv_(hv), mm_(mm)
{
}

void
Dnis::manage(vmm::Domain &dom, drivers::VfDriver &vf,
             drivers::NetfrontDriver &pv, guest::BondingDriver &bond,
             pci::HotplugSlot &slot)
{
    dom_ = &dom;
    vf_ = &vf;
    pv_ = &pv;
    bond_ = &bond;
    slot_ = &slot;
    // Seat the VF in its virtual slot before listening, so the initial
    // insert does not retrigger driver init.
    if (!slot.occupied())
        slot.insert(vf.function());
    slot.setListener(this);
    // Runtime: the VF carries the traffic.
    bond.setActive(vf);
}

void
Dnis::migrate(const Params &p, std::function<void(const Report &)> done)
{
    if (!dom_)
        sim::fatal("DNIS: migrate() before manage()");
    params_ = p;
    done_ = std::move(done);
    report_ = Report{};
    report_.switch_started = hv_.eq().now();

    // Step 1: the migration manager signals virtual hot removal; the
    // "real" migration starts once the guest has ejected the VF.
    slot_->requestRemoval([this]() {
        mm_.migrate(
            *dom_, params_.mig, /*on_pause=*/nullptr,
            /*on_resume=*/
            [this]() {
                // Step 4: virtual hot add on the target platform.
                hv_.eq().scheduleIn(params_.hot_add_delay, [this]() {
                    slot_->insert(vf_->function());
                });
            },
            [this](const vmm::MigrationManager::Result &r) {
                report_.mig = r;
                // done_ fires once the VF is restored (hotAdded).
            });
    });
}

void
Dnis::removeRequested(pci::PciFunction &)
{
    // Guest side: the ACPI event takes a moment to surface; then the
    // bonding driver quiesces the VF and fails over to the PV NIC.
    hv_.eq().scheduleIn(params_.remove_ack_delay, [this]() {
        SRIOV_TRACE(sim::TraceCat::Migration,
                    "DNIS: guest quiescing VF %s",
                    vf_->name().c_str());
        vf_->stopRx();    // frames pile into the ring, then drop
        hv_.eq().scheduleIn(params_.vf_quiesce, [this]() {
            vf_->shutdown();           // filter cleared -> PV path live
            bond_->setActive(*pv_);
            report_.switched_to_pv = hv_.eq().now();
            slot_->eject();            // hardware stickiness gone
        });
    });
}

void
Dnis::hotAdded(pci::PciFunction &)
{
    // Target platform: bring the (possibly different) VF back up and
    // switch the bond to it for runtime performance.
    SRIOV_TRACE(sim::TraceCat::Migration,
                "DNIS: VF %s hot-added on target, bond switching back",
                vf_->name().c_str());
    vf_->init();
    bond_->setActive(*vf_);
    report_.vf_restored = hv_.eq().now();
    if (done_) {
        auto cb = std::move(done_);
        done_ = nullptr;
        cb(report_);
    }
}

} // namespace sriov::core
