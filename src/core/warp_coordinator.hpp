/**
 * @file
 * WarpCoordinator: coordinated cross-shard fluid warping.
 *
 * The FluidDirector (core/fluid_path.hpp) warps a single event queue
 * from inside the schedule: it rides its own probe events. A sharded
 * testbed has no single schedule — one queue per island, conservative
 * promise-clock sync between them — and injecting per-island probe
 * events would (a) change each island's event sequence, breaking the
 * exact-vs-on byte-identity contract, and (b) race the warp against
 * in-flight channel messages. The coordinator instead drives the
 * ShardEngine in slices and probes only at *quiescent barriers*: the
 * instants between engine.runUntil() calls, when every island clock is
 * pinned to the same time, no worker threads are running, and every
 * cross-island message due at or before the barrier has been
 * delivered. Because the conservative schedule is a pure function of
 * simulated times, slicing a run into chunks executes the identical
 * per-island event sequences as one big runUntil — the probe is
 * invisible to the schedule, which is exactly why sharded fluid-on
 * digests stay byte-identical across shard counts.
 *
 * A cycle is the director's three-capture protocol lifted to the
 * global state: the walk covers every island's components *and* every
 * cross-island channel's in-flight messages (occupancy is an
 * invariant slot, each due instant a time-point slot — a steady
 * edge's population repeats with the hyperperiod, every due advancing
 * by exactly P). Steadiness is certified per island ledger (islands
 * with no live flows are vacuously steady) and the global hyperperiod
 * is the LCM of the per-island hyperperiods; edge periods divide the
 * sending island's period (every channel message is pushed by a
 * ledger-tracked flow), so the LCM covers them by construction. The
 * warp executes at the barrier: slots += n * delta via the apply
 * walk (channel dues shift with everything else), each island's heap
 * keys and clock shift by n * P, the engine's promise/floor clocks
 * shift in lockstep, and the conservative protocol resumes untouched.
 */

#ifndef SRIOV_CORE_WARP_COORDINATOR_HPP
#define SRIOV_CORE_WARP_COORDINATOR_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fluid.hpp"
#include "sim/shard_engine.hpp"

namespace sriov::core {

class WarpCoordinator
{
  public:
    struct Config
    {
        /** Exact-execution slice while waiting for steadiness. Much
         *  coarser than the director's poll: every engine.runUntil()
         *  spawns and joins worker threads, so sub-ms slices would
         *  drown the run in scheduling overhead. Off the ms grid so a
         *  barrier never lands exactly on a schedule instant while the
         *  ledgers are still settling. */
        sim::Time poll_chunk = sim::Time::us(997);
        /** Base back-off after a rejected cycle (doubles per
         *  consecutive rejection, capped at kMaxBackoffShift). */
        sim::Time backoff = sim::Time::ms(5);
        /** Largest global hyperperiod worth probing. */
        sim::Time period_cap = sim::Time::ms(50);
        /** Period-multiplier scan bound (m * P for m = 1..max_mult). */
        unsigned max_mult = 8;
        /** Smallest warp worth applying (in periods). */
        std::int64_t min_periods = 2;
    };

    static constexpr unsigned kMaxBackoffShift = 6;

    /** Global state walk: every island's components, build order,
     *  including cross-island channel contents. MUST be pure
     *  visitation — no scheduling, no sends, no ledger updates. */
    using StateWalk = std::function<void(sim::FluidVisitor &)>;

    /** Extra warp gate, checked after verification (see
     *  FluidDirector::WarpGate). Null = always allow. */
    using WarpGate = std::function<bool()>;

    /**
     * The engine's islands must already carry their ledgers
     * (ShardEngine::setIslandLedger) — the coordinator reads them for
     * steadiness and shifts them on a warp, but owns none of them.
     */
    WarpCoordinator(sim::ShardEngine &engine, StateWalk walk,
                    WarpGate gate);
    WarpCoordinator(sim::ShardEngine &engine, StateWalk walk,
                    WarpGate gate, Config cfg);

    WarpCoordinator(const WarpCoordinator &) = delete;
    WarpCoordinator &operator=(const WarpCoordinator &) = delete;

    /**
     * Drive every island to @p deadline, warping over certified
     * periodic stretches. Equivalent to engine.runUntil(deadline) in
     * every observable counter (the exact-vs-on contract); only the
     * number of executed events differs.
     */
    void runUntil(sim::Time deadline);

    const sim::FluidStats &stats() const { return stats_; }

    /** Diagnostics: why the most recent cycle failed ("" if none). */
    const std::string &lastReject() const { return last_reject_; }

  private:
    sim::Time now() const;
    /** Every island ledger steady (empty islands vacuously so), and at
     *  least one island has live flows. */
    bool ledgersSteady() const;
    /** LCM of the per-island hyperperiods; Time() when unsteady or
     *  over the cap. */
    sim::Time globalPeriod() const;
    /** Run one three-capture cycle from the current barrier. Returns
     *  true if a warp was applied (state advanced past the probes). */
    bool probeCycle(sim::Time deadline, sim::Time period);
    bool classifyIsland(unsigned island, sim::Time period,
                        sim::Time *abs_bound, std::string *why);
    void reject(std::string why);

    sim::ShardEngine &engine_;
    StateWalk walk_;
    WarpGate gate_;
    Config cfg_;
    sim::FluidStats stats_;

    unsigned mult_ = 1;
    unsigned consecutive_rejects_ = 0;
    sim::Time backoff_until_;
    std::string last_reject_;

    /** Per-cycle scratch (index = engine island index). */
    std::unique_ptr<sim::FluidVisitor> s0_, s1_, s2_;
    std::vector<std::vector<sim::EventQueue::PendingEvent>> e1_, e2_;
    std::vector<std::vector<std::uint32_t>> shift_keys_;
};

} // namespace sriov::core

#endif // SRIOV_CORE_WARP_COORDINATOR_HPP
