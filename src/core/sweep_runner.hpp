/**
 * @file
 * SweepRunner: deterministic fan-out of embarrassingly-parallel bench
 * cases onto host threads.
 *
 * Every figXX sweep runs N independent cases (VM counts, optimization
 * sets, ...); each case builds its own Testbed — its own EventQueue,
 * RNGs and metric registries — so cases share no simulation state and
 * their results cannot depend on host scheduling. SweepRunner only
 * decides *when* each case body runs: with jobs <= 1 it is a plain
 * loop on the calling thread (the default, and bit-for-bit the
 * behaviour before this class existed); with jobs > 1 it runs the
 * bodies on a small thread pool fed by an atomic case counter.
 *
 * Determinism contract: the caller deposits each case's results into
 * per-index storage and merges them *in declaration order* after
 * run() returns (see core::FigReport::mergeCase), so reports and
 * digests are byte-identical for every --jobs value — parallelism
 * changes wall-time only. The one global the simulator has —
 * Tracer::global()'s timestamp clock — is adopt/disown-safe across
 * threads (see sim/trace.hpp), but actual trace capture is inherently
 * single-stream, so FigReport forces jobs=1 when tracing.
 *
 * Exceptions: a throwing case does not tear down the process from a
 * worker thread. All cases are allowed to finish, then the exception
 * of the lowest-index failing case is rethrown on the calling thread —
 * again matching what the sequential loop would have surfaced first.
 */

#ifndef SRIOV_CORE_SWEEP_RUNNER_HPP
#define SRIOV_CORE_SWEEP_RUNNER_HPP

#include <cstddef>
#include <functional>

namespace sriov::core {

class SweepRunner
{
  public:
    /** @p jobs: host threads to use; 0 is treated as 1 (sequential). */
    explicit SweepRunner(unsigned jobs) : jobs_(jobs == 0 ? 1 : jobs) {}

    unsigned jobs() const { return jobs_; }

    /**
     * Run @p body(0) .. @p body(n - 1), concurrently when jobs() > 1,
     * and block until every case finished. The body must confine its
     * writes to per-index storage. Rethrows the lowest-index case's
     * exception, if any.
     */
    void run(std::size_t n,
             const std::function<void(std::size_t)> &body) const;

  private:
    unsigned jobs_;
};

} // namespace sriov::core

#endif // SRIOV_CORE_SWEEP_RUNNER_HPP
