#include "core/experiment.hpp"

#include <chrono>
#include <cstdio>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "sim/trace.hpp"

namespace sriov::core {

namespace {

// Host wall-time of a bench drive for the .perf.json sidecars —
// deliberately outside simulated time, and never fed back into it.
double
// simlint:allow(no-wallclock): measures the host, not the simulation
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               // simlint:allow(no-wallclock): host-side timing only
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

obs::MetricRegistry &
FigCase::instrument(Testbed &tb)
{
    reg_ = obs::MetricRegistry();
    tb_ = &tb;
    tb.enableObs();
    tb.registerMetrics(reg_);
    return reg_;
}

void
FigCase::snapshot(const std::string &label, const std::string &prefix)
{
    snaps_.push_back(Snap{label, reg_.snapshot(prefix)});
    // Path-tracer capture rides along under the same label; snapshots
    // are values, so parallel sweep workers stay thread-confined and
    // mergeCase() reproduces the sequential byte stream.
    if (tb_)
        path_snaps_.emplace_back(label, tb_->pathSnapshot());
}

void
FigCase::addMetric(const std::string &name, double value)
{
    metrics_.emplace_back(name, value);
}

void
FigCase::drive(Testbed &tb, const std::function<void()> &fn)
{
    std::uint64_t before = tb.executedEvents();
    sim::Time s0 = tb.now();
    // simlint:allow(no-wallclock): host-side perf sidecar timing only
    auto t0 = std::chrono::steady_clock::now();
    fn();
    wall_s_ += secondsSince(t0);
    events_ += tb.executedEvents() - before;
    sim_s_ += double((tb.now() - s0).picos()) * 1e-12;
    // Warp stats (director or coordinator) are cumulative per testbed;
    // the last drive's view covers every earlier drive of the case.
    if (const sim::FluidStats *fs = tb.fluidStats())
        fluid_ = *fs;
}

FigReport::FigReport(int argc, char **argv, const std::string &fig,
                     const std::string &title)
    : opts_(obs::BenchOptions::parse(argc, argv, fig)), rep_(fig, title)
{
    if (opts_.helpRequested()) {
        std::fputs(obs::BenchOptions::usage(fig).c_str(), stdout);
        return;
    }
    rep_.setConfig("fig", fig);
    rep_.setConfig("title", title);
}

obs::MetricRegistry &
FigReport::instrument(Testbed &tb)
{
    reg_ = obs::MetricRegistry();
    last_tb_ = &tb;
    tb.enableObs();
    tb.registerMetrics(reg_);
    return reg_;
}

void
FigReport::snapshot(const std::string &label, const std::string &prefix)
{
    rep_.addSnapshot(label, reg_, prefix);
    if (last_tb_)
        notePathSnapshot(label, last_tb_->pathSnapshot());
    // Name the perf entry the drive just produced after this case.
    if (last_perf_unlabelled_ && !perf_.empty()) {
        perf_.back().label = label;
        last_perf_unlabelled_ = false;
    }
}

void
FigReport::notePathSnapshot(const std::string &label,
                            obs::PathSnapshot snap)
{
    // The report block reads only the base-rate attribution, which is
    // identical whatever the export mode — figXX.json stays
    // byte-identical across --pathtrace=off/sampled/full.
    rep_.addPathStages(label, snap);
    path_cases_.emplace_back(label, std::move(snap));
}

void
FigReport::notePerf(const std::string &label, std::uint64_t events,
                    double wall_s, std::uint64_t packets)
{
    perf_.push_back(CasePerf{label, events, packets, wall_s, 0.0, {}});
}

void
FigReport::notePackets(std::uint64_t n)
{
    if (!perf_.empty())
        perf_.back().packets += n;
}

void
FigReport::captureTrace(Testbed &tb, const std::function<void()> &drive)
{
    if (!opts_.wantTrace() || trace_done_) {
        std::uint64_t before = tb.executedEvents();
        sim::Time s0 = tb.now();
        // simlint:allow(no-wallclock): host-side perf sidecar timing only
        auto t0 = std::chrono::steady_clock::now();
        drive();
        notePerf("", tb.executedEvents() - before, secondsSince(t0));
        perf_.back().sim_s = double((tb.now() - s0).picos()) * 1e-12;
        if (const sim::FluidStats *fs = tb.fluidStats())
            perf_.back().fluid = *fs;
        last_perf_unlabelled_ = true;
        return;
    }
    trace_done_ = true;
    auto &tracer = sim::Tracer::global();
    tracer.clear();
    opts_.applyTraceCategories(tracer);

    obs::ChromeTraceWriter w;
    tb.attachObsTrace(w);
    std::uint64_t before = tb.executedEvents();
    sim::Time s0 = tb.now();
    // simlint:allow(no-wallclock): host-side perf sidecar timing only
    auto t0 = std::chrono::steady_clock::now();
    drive();
    notePerf("", tb.executedEvents() - before, secondsSince(t0));
    perf_.back().sim_s = double((tb.now() - s0).picos()) * 1e-12;
    if (const sim::FluidStats *fs = tb.fluidStats())
        perf_.back().fluid = *fs;
    last_perf_unlabelled_ = true;
    w.importTracer(tracer);
    w.detachAll();
    tracer.disableAll();
    tracer.clear();

    std::string path = opts_.tracePath();
    if (w.writeTo(path)) {
        std::printf("trace: wrote %s (%zu events, %zu tracks)\n",
                    path.c_str(), w.eventCount(), w.trackCount());
    } else {
        std::fprintf(stderr, "trace: FAILED to write %s\n", path.c_str());
    }
}

unsigned
FigReport::sweepJobs() const
{
    if (opts_.wantTrace() && opts_.jobs() > 1) {
        std::fprintf(stderr,
                     "note: --trace forces --jobs=1 (trace capture is a "
                     "single global stream)\n");
        return 1;
    }
    return opts_.jobs();
}

void
FigReport::caseDrive(FigCase &c, Testbed &tb,
                     const std::function<void()> &fn)
{
    if (opts_.wantTrace() && !trace_done_ && sweepJobs() == 1) {
        // Reuse the shared-trace path, but account the drive to the
        // case so its perf entry carries the case label.
        trace_done_ = true;
        auto &tracer = sim::Tracer::global();
        tracer.clear();
        opts_.applyTraceCategories(tracer);

        obs::ChromeTraceWriter w;
        tb.attachObsTrace(w);
        c.drive(tb, fn);
        w.importTracer(tracer);
        w.detachAll();
        tracer.disableAll();
        tracer.clear();

        std::string path = opts_.tracePath();
        if (w.writeTo(path)) {
            std::printf("trace: wrote %s (%zu events, %zu tracks)\n",
                        path.c_str(), w.eventCount(), w.trackCount());
        } else {
            std::fprintf(stderr, "trace: FAILED to write %s\n",
                         path.c_str());
        }
        return;
    }
    c.drive(tb, fn);
}

void
FigReport::mergeCase(FigCase &c)
{
    for (FigCase::Snap &s : c.snaps_)
        rep_.addSnapshot(s.label, std::move(s.data));
    c.snaps_.clear();
    for (auto &[label, snap] : c.path_snaps_)
        notePathSnapshot(label, std::move(snap));
    c.path_snaps_.clear();
    for (const auto &[name, value] : c.metrics_)
        rep_.addMetric(name, value);
    c.metrics_.clear();
    notePerf(c.label_, c.events_, c.wall_s_, c.packets_);
    perf_.back().sim_s = c.sim_s_;
    perf_.back().fluid = c.fluid_;
}

void
FigReport::expect(const std::string &name, double actual, double expected,
                  double band_pct)
{
    rep_.expect(name, actual, expected, band_pct);
}

void
FigReport::addPerf(const std::string &label, std::uint64_t events,
                   double wall_s)
{
    notePerf(label, events, wall_s);
}

bool
FigReport::writePerfSidecar(const std::string &path) const
{
    obs::JsonWriter w;
    w.beginObject();
    w.kv("schema", "sriov-bench-perf/v1");
    w.kv("bench", opts_.bench());
    w.kv("jobs", std::uint64_t(opts_.jobs()));
    w.kv("thin", !opts_.noThin());
    w.kv("shards", std::uint64_t(opts_.shards()));
    w.kv("fluid", opts_.fluid());
    w.kv("fluid_mode", opts_.fluidModeName());
    std::uint64_t total_events = 0;
    std::uint64_t total_packets = 0;
    double total_wall = 0;
    double total_sim = 0;
    w.key("cases").beginArray();
    for (std::size_t i = 0; i < perf_.size(); ++i) {
        const CasePerf &p = perf_[i];
        w.beginObject();
        w.kv("label", p.label.empty()
                          ? "case" + std::to_string(i)
                          : p.label);
        w.kv("events", p.events);
        w.kv("host_wall_s", p.wall_s);
        if (p.sim_s > 0)
            w.kv("sim_s", p.sim_s);
        w.kv("events_per_sec",
             p.wall_s > 0 ? double(p.events) / p.wall_s : 0.0);
        if (p.packets > 0) {
            w.kv("packets", p.packets);
            w.kv("events_per_packet",
                 double(p.events) / double(p.packets));
        }
        if (p.fluid.probes > 0) {
            double warped = double(p.fluid.warped.picos()) * 1e-12;
            w.key("fluid_stats").beginObject();
            w.kv("segments", p.fluid.segments);
            w.kv("probes", p.fluid.probes);
            w.kv("rejected", p.fluid.rejected);
            w.kv("periods_warped", p.fluid.periods_warped);
            w.kv("warped_sim_s", warped);
            if (p.sim_s > 0)
                w.kv("warp_frac", warped / p.sim_s);
            w.kv("events_elided", p.fluid.events_elided);
            w.endObject();
        }
        w.endObject();
        total_events += p.events;
        total_packets += p.packets;
        total_wall += p.wall_s;
        total_sim += p.sim_s;
    }
    w.endArray();
    w.key("total").beginObject();
    w.kv("events", total_events);
    w.kv("host_wall_s", total_wall);
    if (total_sim > 0)
        w.kv("sim_s", total_sim);
    w.kv("events_per_sec",
         total_wall > 0 ? double(total_events) / total_wall : 0.0);
    if (total_packets > 0) {
        w.kv("packets", total_packets);
        w.kv("events_per_packet",
             double(total_events) / double(total_packets));
    }
    w.endObject();
    w.endObject();

    return obs::writeTextFile(path, w.str());
}

void
FigReport::writePathArtifacts()
{
    if (path_cases_.empty())
        return;
    // Requested export: the full trail/ring dump plus Perfetto flows.
    if (opts_.wantPathTrace()) {
        std::string path = opts_.pathtracePath();
        if (obs::writePathTraceFile(path, opts_.bench(), "trace",
                                    path_cases_)) {
            std::printf("pathtrace: wrote %s (%zu cases)\n", path.c_str(),
                        path_cases_.size());
        } else {
            std::fprintf(stderr, "pathtrace: FAILED to write %s\n",
                         path.c_str());
        }
        obs::ChromeTraceWriter w;
        for (const auto &[label, snap] : path_cases_)
            obs::exportPathFlows(w, label, snap);
        std::string fpath = opts_.pathtraceFlowsPath();
        if (w.writeTo(fpath)) {
            std::printf("pathtrace: wrote %s (%zu events)\n",
                        fpath.c_str(), w.eventCount());
        } else {
            std::fprintf(stderr, "pathtrace: FAILED to write %s\n",
                         fpath.c_str());
        }
    }
    // Flight recorder: a report out of band dumps the always-on
    // low-rate trails, whatever the export mode.
    if (!rep_.allPass()) {
        std::string path = opts_.flightrecPath();
        if (obs::writePathTraceFile(path, opts_.bench(), "flightrec",
                                    path_cases_)) {
            std::printf("flightrec: report out of band, wrote %s\n",
                        path.c_str());
        } else {
            std::fprintf(stderr, "flightrec: FAILED to write %s\n",
                         path.c_str());
        }
    }
}

int
FigReport::finish()
{
    if (!opts_.wantReport())
        return 0;
    std::string path = opts_.reportPath();
    if (!rep_.writeTo(path)) {
        std::fprintf(stderr, "report: FAILED to write %s\n", path.c_str());
        return 1;
    }
    std::printf("report: wrote %s (%zu snapshots, %zu expectations%s)\n",
                path.c_str(), rep_.snapshotCount(),
                rep_.expectationCount(),
                rep_.allPass() ? "" : ", some out of band");
    writePathArtifacts();
    if (!perf_.empty()) {
        std::string ppath = opts_.perfPath();
        if (!writePerfSidecar(ppath)) {
            std::fprintf(stderr, "perf: FAILED to write %s\n",
                         ppath.c_str());
            return 1;
        }
        std::printf("perf: wrote %s (%zu cases)\n", ppath.c_str(),
                    perf_.size());
    }
    return 0;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> w(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        w[c] = headers_[c].size();
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
            w[c] = std::max(w[c], r[c].size());
    }
    auto fmtRow = [&](const std::vector<std::string> &r) {
        std::string line;
        for (std::size_t c = 0; c < w.size(); ++c) {
            std::string cell = c < r.size() ? r[c] : "";
            line += cell;
            line.append(w[c] - cell.size() + 2, ' ');
        }
        line += "\n";
        return line;
    };
    std::string out = fmtRow(headers_);
    std::size_t total = 0;
    for (auto x : w)
        total += x + 2;
    out += std::string(total, '-') + "\n";
    for (const auto &r : rows_)
        out += fmtRow(r);
    return out;
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

std::string
gbps(double bps)
{
    return Table::num(bps / 1e9, 2);
}

std::string
cpuPct(double pct)
{
    return Table::num(pct, 1) + "%";
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace sriov::core
