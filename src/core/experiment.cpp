#include "core/experiment.hpp"

#include <cstdio>

#include "obs/chrome_trace.hpp"
#include "sim/trace.hpp"

namespace sriov::core {

FigReport::FigReport(int argc, char **argv, const std::string &fig,
                     const std::string &title)
    : opts_(obs::BenchOptions::parse(argc, argv, fig)), rep_(fig, title)
{
    if (opts_.helpRequested()) {
        std::fputs(obs::BenchOptions::usage(fig).c_str(), stdout);
        return;
    }
    rep_.setConfig("fig", fig);
    rep_.setConfig("title", title);
}

obs::MetricRegistry &
FigReport::instrument(Testbed &tb)
{
    reg_ = obs::MetricRegistry();
    tb.enableObs();
    tb.registerMetrics(reg_);
    return reg_;
}

void
FigReport::snapshot(const std::string &label, const std::string &prefix)
{
    rep_.addSnapshot(label, reg_, prefix);
}

void
FigReport::captureTrace(Testbed &tb, const std::function<void()> &drive)
{
    if (!opts_.wantTrace() || trace_done_) {
        drive();
        return;
    }
    trace_done_ = true;
    auto &tracer = sim::Tracer::global();
    tracer.clear();
    opts_.applyTraceCategories(tracer);

    obs::ChromeTraceWriter w;
    tb.attachObsTrace(w);
    drive();
    w.importTracer(tracer);
    w.detachAll();
    tracer.disableAll();
    tracer.clear();

    std::string path = opts_.tracePath();
    if (w.writeTo(path)) {
        std::printf("trace: wrote %s (%zu events, %zu tracks)\n",
                    path.c_str(), w.eventCount(), w.trackCount());
    } else {
        std::fprintf(stderr, "trace: FAILED to write %s\n", path.c_str());
    }
}

void
FigReport::expect(const std::string &name, double actual, double expected,
                  double band_pct)
{
    rep_.expect(name, actual, expected, band_pct);
}

int
FigReport::finish()
{
    if (!opts_.wantReport())
        return 0;
    std::string path = opts_.reportPath();
    if (!rep_.writeTo(path)) {
        std::fprintf(stderr, "report: FAILED to write %s\n", path.c_str());
        return 1;
    }
    std::printf("report: wrote %s (%zu snapshots, %zu expectations%s)\n",
                path.c_str(), rep_.snapshotCount(),
                rep_.expectationCount(),
                rep_.allPass() ? "" : ", some out of band");
    return 0;
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> w(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        w[c] = headers_[c].size();
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
            w[c] = std::max(w[c], r[c].size());
    }
    auto fmtRow = [&](const std::vector<std::string> &r) {
        std::string line;
        for (std::size_t c = 0; c < w.size(); ++c) {
            std::string cell = c < r.size() ? r[c] : "";
            line += cell;
            line.append(w[c] - cell.size() + 2, ' ');
        }
        line += "\n";
        return line;
    };
    std::string out = fmtRow(headers_);
    std::size_t total = 0;
    for (auto x : w)
        total += x + 2;
    out += std::string(total, '-') + "\n";
    for (const auto &r : rows_)
        out += fmtRow(r);
    return out;
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

std::string
gbps(double bps)
{
    return Table::num(bps / 1e9, 2);
}

std::string
cpuPct(double pct)
{
    return Table::num(pct, 1) + "%";
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace sriov::core
