#include "core/experiment.hpp"

#include <cstdio>

namespace sriov::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> w(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        w[c] = headers_[c].size();
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
            w[c] = std::max(w[c], r[c].size());
    }
    auto fmtRow = [&](const std::vector<std::string> &r) {
        std::string line;
        for (std::size_t c = 0; c < w.size(); ++c) {
            std::string cell = c < r.size() ? r[c] : "";
            line += cell;
            line.append(w[c] - cell.size() + 2, ' ');
        }
        line += "\n";
        return line;
    };
    std::string out = fmtRow(headers_);
    std::size_t total = 0;
    for (auto x : w)
        total += x + 2;
    out += std::string(total, '-') + "\n";
    for (const auto &r : rows_)
        out += fmtRow(r);
    return out;
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

std::string
gbps(double bps)
{
    return Table::num(bps / 1e9, 2);
}

std::string
cpuPct(double pct)
{
    return Table::num(pct, 1) + "%";
}

void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace sriov::core
