/**
 * @file
 * NativeDriver: the direct-access driver on bare metal.
 *
 * Identical code to VfDriver — the paper's point in Section 4: "the
 * VF [driver] can even run in a native environment with a PF driver,
 * within the same OS". The only difference is the domain type of the
 * kernel it is attached to, which removes every virtualization charge.
 */

#ifndef SRIOV_DRIVERS_NATIVE_DRIVER_HPP
#define SRIOV_DRIVERS_NATIVE_DRIVER_HPP

#include "drivers/vf_driver.hpp"

namespace sriov::drivers {

class NativeDriver : public VfDriver
{
  public:
    using VfDriver::VfDriver;
};

} // namespace sriov::drivers

#endif // SRIOV_DRIVERS_NATIVE_DRIVER_HPP
