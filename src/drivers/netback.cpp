#include "drivers/netback.hpp"

#include <utility>
#include <vector>

#include "sim/fluid.hpp"
#include "sim/log.hpp"

namespace sriov::drivers {

NetbackDriver::NetbackDriver(guest::GuestKernel &dom0_kern, Config cfg)
    : kern_(dom0_kern), cfg_(cfg)
{
    if (cfg_.num_threads == 0)
        sim::fatal("netback needs at least one worker thread");
}

sim::CpuServer &
NetbackDriver::workerCpu(unsigned idx)
{
    // VCPU 0 services the physical NIC IRQ; workers start at VCPU 1.
    return kern_.hv().dom0Cpu(1 + (idx % cfg_.num_threads));
}

void
NetbackDriver::attachPhysical(nic::NicPort &nic)
{
    nic_ = &nic;
    pci::PciFunction &pf = nic.functionOf(0);
    std::uint16_t cmd = pf.config().read(pci::cfg::kCommand, 2);
    pf.config().write(pci::cfg::kCommand,
                      cmd | pci::cfg::kCmdMemEnable
                          | pci::cfg::kCmdBusMaster,
                      2);

    mem::Addr base = kern_.allocBuffer(mem::Addr(cfg_.rx_buffers) * 2048);
    auto &ring = nic.rxRing(0);
    for (std::size_t i = 0; i < cfg_.rx_buffers; ++i)
        ring.post(base + i * 2048);

    nic.setDefaultPool(nic::Pool(0));
    nic.setItr(0, cfg_.phys_itr_hz);
    kern_.hv().assignDevice(kern_.domain(), pf);
    kern_.attachDeviceIrq(pf, *this);
}

void
NetbackDriver::connectGuest(NetfrontDriver &nf)
{
    // Hash the MAC so guests spread across workers even when several
    // NetbackDriver instances (one per port) share the worker pool.
    GuestCtx ctx{&nf, unsigned(nf.mac().value % cfg_.num_threads)};
    guests_[nf.mac().value] = ctx;
    sim::fluidTransitionAll(sim::FluidTransition::VmChurn);
    nf.setBackend(this);
    // Pin the backend's mapping of the guest RX grant.
    nf.grants().mapGrant(nf.rxGrantRef(), /*domid=*/0);
}

void
NetbackDriver::disconnectGuest(NetfrontDriver &nf)
{
    nf.grants().unmapGrant(nf.rxGrantRef());
    guests_.erase(nf.mac().value);
    sim::fluidTransitionAll(sim::FluidTransition::VmChurn);
}

bool
NetbackDriver::connected(const NetfrontDriver &nf) const
{
    auto it = guests_.find(nf.mac().value);
    return it != guests_.end() && it->second.nf == &nf;
}

NetbackDriver::GuestCtx *
NetbackDriver::guestByMac(nic::MacAddr mac)
{
    auto it = guests_.find(mac.value);
    return it == guests_.end() ? nullptr : &it->second;
}

double
NetbackDriver::irqTop()
{
    nic_->drainRxInto(0, pending_);
    return double(pending_.size())
        * kern_.hv().costs().dom0_bridge_per_packet;
}

void
NetbackDriver::irqBottom()
{
    if (pending_.empty())
        return;
    auto &ring = nic_->rxRing(0);
    // Group the batch per destination guest. Guests are delivered in
    // first-arrival order (not hash order: iterating an unordered_map
    // here once let bucket layout pick the kthread submission order,
    // which leaks into the event schedule and the determinism digest).
    // A batch reaches a handful of guests at most, so the linear key
    // scan beats hashing anyway.
    std::vector<std::pair<std::uint64_t, std::vector<nic::Packet>>>
        by_guest;
    for (const auto &c : pending_) {
        ring.post(c.buffer_gpa);
        std::vector<nic::Packet> *pkts = nullptr;
        for (auto &e : by_guest)
            if (e.first == c.pkt.dst.value) {
                pkts = &e.second;
                break;
            }
        if (pkts == nullptr) {
            by_guest.emplace_back(c.pkt.dst.value,
                                  std::vector<nic::Packet>());
            pkts = &by_guest.back().second;
        }
        pkts->push_back(c.pkt);
    }
    pending_.clear();
    for (auto &[mac, pkts] : by_guest) {
        GuestCtx *g = guestByMac(nic::MacAddr{mac});
        if (!g)
            continue;    // not bridged (e.g. dom0's own traffic)
        deliverToGuest(*g, std::move(pkts));
    }
}

double
NetbackDriver::perPacketCost(NetfrontDriver &nf)
{
    const auto &cm = kern_.hv().costs();
    double c = cm.netback_per_packet;
    bool pvm = nf.kernel().domain().type() == vmm::DomainType::Pvm;
    // The SMP surcharge is the per-frame bill of the PV-on-HVM
    // delivery path once workers contend: the event-channel-to-LAPIC
    // conversion runs under the per-domain event lock, so every frame
    // bounces that lock (plus the injection IPI) across cores. A PVM
    // frontend is notified by a lockless evtchn set-bit and skips the
    // whole surcharge — Fig. 18's dom0 stays ~100% below Fig. 17's
    // even though both run the same 4-thread backend.
    if (cfg_.num_threads > 1 && !pvm)
        c += cm.netback_smp_extra;
    if (pvm)
        c -= cm.netback_pvm_discount;
    return c;
}

void
NetbackDriver::deliverToGuest(GuestCtx &g, std::vector<nic::Packet> &&pkts)
{
    sim::CpuServer &cpu = workerCpu(g.worker);
    if (cpu.queueDepth() > cfg_.worker_queue_cap) {
        backlog_drops_.inc(pkts.size());
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return;
    }
    const auto &cm = kern_.hv().costs();
    // Kthread wakeup is paid only on an idle-to-busy transition — a
    // worker that still has queued batches never went back to sleep.
    // The per-batch erosion as more VMs split the traffic into ever
    // smaller batches (Figs. 17/18's decay) comes from the wakeups
    // that *do* happen plus the per-guest notify in raiseRxIrq.
    double cycles = double(pkts.size()) * perPacketCost(*g.nf);
    if (!cpu.busyNow())
        cycles += cm.netback_wakeup;
    NetfrontDriver *nf = g.nf;
    cpu.submit(cycles, "dom0-netback",
               [this, nf, pkts = std::move(pkts), &cpu]() mutable {
                   // Grant-copy each frame into the guest RX region and
                   // log the dirtied pages for live migration.
                   auto &dom_map = nf->kernel().domain().gpmap();
                   for (const auto &p : pkts) {
                       (void)p;
                       copies_.inc();
                       nf->grants().countCopy();
                       dom_map.markDirty(nf->nextRxPageGpa());
                   }
                   to_guests_.inc(pkts.size());
                   nf->backendDeliver(pkts);
                   nf->raiseRxIrq(cpu);
               });
}

bool
NetbackDriver::guestTx(NetfrontDriver &src, const nic::Packet &pkt)
{
    GuestCtx *g = guestByMac(src.mac());
    if (!g)
        return false;
    sim::CpuServer &cpu = workerCpu(g->worker);
    if (cpu.queueDepth() > cfg_.worker_queue_cap) {
        backlog_drops_.inc();
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return false;
    }
    const auto &cm = kern_.hv().costs();
    double cycles = perPacketCost(src);
    if (!cpu.busyNow())
        cycles += cm.netback_wakeup;    // TX side batches upstream
    cpu.submit(cycles, "dom0-netback", [this, pkt]() {
        copies_.inc();
        if (GuestCtx *dst = guestByMac(pkt.dst)) {
            // Inter-VM: one grant copy moved the payload; deliver.
            to_guests_.inc();
            std::vector<nic::Packet> batch{pkt};
            dst->nf->backendDeliver(batch);
            dst->nf->raiseRxIrq(workerCpu(dst->worker));
        } else if (nic_) {
            to_wire_.inc();
            nic_->transmit(0, pkt);
        }
    });
    return true;
}

} // namespace sriov::drivers
