/**
 * @file
 * VmdqBackend: dom0's driver for the 82598 VMDq adapter (paper
 * Sections 1, 6.6).
 *
 * Each assigned guest gets a hardware queue: the NIC classifies and
 * DMAs frames directly toward buffers drawn from the guest's memory,
 * eliminating the copy — but the interrupt still lands in dom0, which
 * must perform memory protection / address-translation work per frame
 * and forward a notification to the guest. Guests beyond the queue
 * count (8 on the 82598, one kept by dom0) fall back to the
 * conventional netback bridge on the default queue.
 */

#ifndef SRIOV_DRIVERS_VMDQ_DRIVER_HPP
#define SRIOV_DRIVERS_VMDQ_DRIVER_HPP

#include <memory>

#include "drivers/netback.hpp"
#include "nic/vmdq_nic.hpp"

namespace sriov::drivers {

class VmdqBackend
{
  public:
    struct Config
    {
        std::size_t rx_buffers = 1024;
        double itr_hz = 8000;
    };

    VmdqBackend(guest::GuestKernel &dom0_kern, nic::VmdqNic &nic,
                Config cfg);

    nic::VmdqNic &nic() { return nic_; }

    /**
     * Give @p nf a dedicated hardware queue. Returns false when all
     * queues are taken — the caller should bridge the guest through
     * netback instead (the Fig. 19 fallback).
     */
    bool assignQueue(NetfrontDriver &nf);

    unsigned queuesInUse() const { return next_queue_ - 1; }
    unsigned queuesTotal() const { return nic_.queueCount() - 1; }
    std::uint64_t framesServiced() const { return serviced_.value(); }

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        serviced_.fluidVisit(v, "vmdq.serviced");
        v.inv("vmdq.queues", queues_.size());
        for (auto &q : queues_)
            q->fluidVisit(v);
    }

  private:
    /** Per-queue interrupt context; runs in dom0. */
    class QueueCtx : public guest::GuestKernel::IrqClient
    {
      public:
        QueueCtx(VmdqBackend &owner, unsigned q, NetfrontDriver &nf)
            : owner_(owner), q_(q), nf_(nf)
        {}

        double irqTop() override;
        void irqBottom() override;

        void
        fluidVisit(sim::FluidVisitor &v)
        {
            v.inv("vmdq.pending", pending_.size());
            for (auto &c : pending_)
                nic::fluidVisitPacket(v, "vmdq.pending_pkt", c.pkt);
        }

      private:
        VmdqBackend &owner_;
        unsigned q_;
        NetfrontDriver &nf_;
        std::vector<nic::RxCompletion> pending_;
        std::vector<nic::Packet> up_batch_;    ///< reused across IRQs
    };

    guest::GuestKernel &kern_;
    nic::VmdqNic &nic_;
    Config cfg_;
    unsigned next_queue_ = 1;    // queue 0 belongs to dom0
    std::vector<std::unique_ptr<QueueCtx>> queues_;
    sim::Counter serviced_;
};

} // namespace sriov::drivers

#endif // SRIOV_DRIVERS_VMDQ_DRIVER_HPP
