#include "drivers/itr_policy.hpp"

#include <cstdio>

namespace sriov::drivers {

std::string
StaticItr::name() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%gkHz", hz_ / 1000.0);
    return buf;
}

double
AdaptiveItr::updateHz(double pps, double bps)
{
    if (bps < c_.light_bps) {
        // Light traffic: lowest latency, but never interrupt more
        // often than packets arrive.
        return std::min(pps > 0 ? pps : c_.lowest_latency_hz,
                        c_.lowest_latency_hz);
    }
    double hz = c_.base_hz + c_.slope_hz_per_bps * bps;
    return std::clamp(hz, c_.floor_hz, c_.bulk_hz);
}

double
AicItr::updateHz(double pps, double)
{
    // IF = max(pps * r / bufs, lif): interrupt a little more often
    // than the exact overflow point, leaving the hypervisor its time
    // budget (Eq. (2); see header and DESIGN.md for the Eq. (3) typo).
    double f = pps * p_.r / double(bufs());
    f = std::max(f, p_.lif);
    return std::min(f, p_.max_hz);
}

} // namespace sriov::drivers
