#include "drivers/native_driver.hpp"

// NativeDriver is VfDriver attached to a Native-type domain; nothing
// further to define.
