/**
 * @file
 * PfDriver: the igb-like Physical Function driver running in the
 * service OS (paper Section 4.1).
 *
 * Owns the port: enables/disables VFs through the SR-IOV capability's
 * architected registers, programs the on-NIC layer-2 switch so
 * incoming packets route to the right VF, polices VF mailbox requests
 * (MAC/VLAN configuration — the security inspection point of Section
 * 4.3), and forwards physical events (link changes, impending reset)
 * to every VF driver.
 */

#ifndef SRIOV_DRIVERS_PF_DRIVER_HPP
#define SRIOV_DRIVERS_PF_DRIVER_HPP

#include <map>

#include "guest/kernel.hpp"
#include "nic/sriov_nic.hpp"

namespace sriov::drivers {

class PfDriver
{
  public:
    PfDriver(guest::GuestKernel &host_kern, nic::SriovNic &nic);

    nic::SriovNic &nic() { return nic_; }

    /** Enable @p n VFs by programming NumVFs + VF Enable. */
    void enableVfs(unsigned n);
    void disableVfs();
    unsigned numVfs() const { return nic_.numVfs(); }

    /** Route unmatched traffic to the PF pool (dom0 bridge mode). */
    void setBridgeMode(bool on);

    /** Forward a link change to every VF driver via its mailbox. */
    void notifyLinkChange(bool up);

    /**
     * Administrative policy: refuse MAC registration for @p vf_index
     * (the Section 4.3 "shut down a misbehaving VF" control point).
     */
    void blockVf(unsigned vf_index, bool blocked);
    bool vfBlocked(unsigned vf_index) const;

    /**
     * Section 4.3 behavioural policing: the PF driver "monitors
     * behavior of the VF drivers and the resources they use" and "may
     * take appropriate action if it finds anything unusual". This
     * watchdog tracks per-VF mailbox request rates; a VF exceeding
     * @p max_requests within @p window is treated as misbehaving and
     * shut down (filters cleared, further requests rejected).
     */
    struct WatchdogPolicy
    {
        bool enabled = false;
        unsigned max_requests = 64;
        sim::Time window = sim::Time::sec(1);
    };
    void setWatchdog(const WatchdogPolicy &p) { watchdog_ = p; }
    const WatchdogPolicy &watchdog() const { return watchdog_; }
    std::uint64_t watchdogShutdowns() const { return shutdowns_.value(); }

    std::uint64_t mailboxRequests() const { return requests_.value(); }
    std::uint64_t rejectedRequests() const { return rejected_.value(); }

    /** Fluid-mode state walk (sim/fluid.hpp). Mailbox traffic is
     *  control-plane and quiescent in steady state; the watchdog rate
     *  windows are pinned as invariants. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        requests_.fluidVisit(v, "pf.requests");
        rejected_.fluidVisit(v, "pf.rejected");
        shutdowns_.fluidVisit(v, "pf.shutdowns");
        v.inv("pf.blocked", blocked_.size());
        v.inv("pf.rates", rates_.size());
        for (auto &[vf, rs] : rates_) {
            v.inv("pf.rate_vf", vf);
            v.inv("pf.rate_count", rs.count);
            v.time("pf.rate_start", rs.window_start);
        }
    }

  private:
    void installMailboxHandlers();
    void handleVfRequest(unsigned vf_index, const nic::MboxMessage &msg);
    bool watchdogTrips(unsigned vf_index);

    struct RateState
    {
        sim::Time window_start;
        unsigned count = 0;
    };

    guest::GuestKernel &kern_;
    nic::SriovNic &nic_;
    std::map<unsigned, nic::MacAddr> vf_mac_;
    std::map<unsigned, bool> blocked_;
    std::map<unsigned, RateState> rates_;
    WatchdogPolicy watchdog_;
    sim::Counter requests_;
    sim::Counter rejected_;
    sim::Counter shutdowns_;
};

} // namespace sriov::drivers

#endif // SRIOV_DRIVERS_PF_DRIVER_HPP
