#include "drivers/vmdq_driver.hpp"

#include "sim/fluid.hpp"
#include "sim/log.hpp"

namespace sriov::drivers {

VmdqBackend::VmdqBackend(guest::GuestKernel &dom0_kern, nic::VmdqNic &nic,
                         Config cfg)
    : kern_(dom0_kern), nic_(nic), cfg_(cfg)
{
    auto &pfc = nic_.pf().config();
    std::uint16_t cmd = pfc.read(pci::cfg::kCommand, 2);
    pfc.write(pci::cfg::kCommand,
              cmd | pci::cfg::kCmdMemEnable | pci::cfg::kCmdBusMaster, 2);
    kern_.hv().assignDevice(kern_.domain(), nic_.pf());
}

bool
VmdqBackend::assignQueue(NetfrontDriver &nf)
{
    if (next_queue_ >= nic_.queueCount())
        return false;
    unsigned q = next_queue_++;
    sim::fluidTransitionAll(sim::FluidTransition::VmChurn);

    // Post buffers drawn from the *guest's* memory: VMDq DMAs data
    // directly to its destination; dom0 touches metadata only.
    mem::Addr base =
        nf.kernel().allocBuffer(mem::Addr(cfg_.rx_buffers) * 2048);
    auto &ring = nic_.rxRing(nic::Pool(q));
    for (std::size_t i = 0; i < cfg_.rx_buffers; ++i)
        ring.post(base + i * 2048);

    // DMA carries the PF RID, so the *backend domain's* mapping must
    // cover these guest buffers: dom0 pre-validates/pins them (the
    // software protection work SR-IOV moves into hardware).
    kern_.domain().gpmap().mapRange(
        mem::pageBase(base),
        *nf.kernel().domain().gpmap().translate(mem::pageBase(base)),
        mem::Addr(cfg_.rx_buffers) * 2048 + mem::kPageSize);

    nic_.setPoolFilter(nic::Pool(q), nf.mac());
    nic_.setItr(nic::Pool(q), cfg_.itr_hz);

    queues_.push_back(std::make_unique<QueueCtx>(*this, q, nf));
    kern_.attachDeviceIrq(nic_.pf(), *queues_.back(), /*msix_entry=*/q);
    return true;
}

double
VmdqBackend::QueueCtx::irqTop()
{
    owner_.nic_.drainRxInto(nic::Pool(q_), pending_);
    // dom0 performs protection + translation per frame (no copy).
    return double(pending_.size())
        * owner_.kern_.hv().costs().vmdq_dom0_per_packet;
}

void
VmdqBackend::QueueCtx::irqBottom()
{
    if (pending_.empty())
        return;
    auto &ring = owner_.nic_.rxRing(nic::Pool(q_));
    up_batch_.clear();
    up_batch_.reserve(pending_.size());
    for (const auto &c : pending_) {
        ring.post(c.buffer_gpa);
        up_batch_.push_back(c.pkt);
    }
    pending_.clear();
    owner_.serviced_.inc(up_batch_.size());
    nf_.backendDeliver(up_batch_);
    nf_.raiseRxIrq(owner_.kern_.vcpu0().pcpu());
}

} // namespace sriov::drivers
