/**
 * @file
 * NetfrontDriver: the guest half of the Xen PV split network driver
 * ([8] in the paper; the baseline of Sections 6.3, 6.5 and the
 * fallback interface DNIS switches to during migration).
 *
 * Hardware-neutral by construction: all I/O goes through grant
 * references and an event channel to the netback in dom0, which is
 * why a guest using only netfront migrates seamlessly.
 */

#ifndef SRIOV_DRIVERS_NETFRONT_HPP
#define SRIOV_DRIVERS_NETFRONT_HPP

#include "guest/net_stack.hpp"
#include "sim/ring_buf.hpp"
#include "vmm/grant_table.hpp"

namespace sriov::drivers {

class NetbackDriver;

class NetfrontDriver : public guest::NetDevice,
                       public guest::GuestKernel::IrqClient
{
  public:
    NetfrontDriver(guest::GuestKernel &kern, std::string name,
                   nic::MacAddr mac);

    guest::GuestKernel &kernel() { return kern_; }
    vmm::GrantTable &grants() { return grants_; }

    /** Number of pages in the granted RX buffer region. */
    static constexpr std::size_t kRxBufferPages = 256;
    mem::Addr rxBufferBase() const { return rx_base_; }

    /** @name Backend-facing interface (called by netback). @{ */
    void setBackend(NetbackDriver *nb) { backend_ = nb; }
    NetbackDriver *backend() { return backend_; }
    /** Queue copied-in frames; follow with a raiseRxIrq(). */
    void backendDeliver(const std::vector<nic::Packet> &pkts);
    void raiseRxIrq(sim::CpuServer &notifier_cpu);
    /** Round-robin over the granted RX pages (for dirty logging). */
    mem::Addr nextRxPageGpa();
    vmm::GrantTable::Ref rxGrantRef() const { return rx_ref_; }
    /** @} */

    /** @name NetDevice. @{ */
    bool transmit(const nic::Packet &pkt) override;
    nic::MacAddr mac() const override { return mac_; }
    bool linkUp() const override;
    const std::string &name() const override { return name_; }
    /** @} */

    /** @name GuestKernel::IrqClient. @{ */
    double irqTop() override;
    void irqBottom() override;
    /** @} */

    std::uint64_t rxPackets() const { return rx_packets_.value(); }
    std::uint64_t txPackets() const { return tx_packets_.value(); }
    std::uint64_t txDropped() const { return tx_dropped_.value(); }

    /** Fluid-mode state walk (sim/fluid.hpp). The RX page cursor
     *  advances once per grant-copied frame — linear per period. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        rx_packets_.fluidVisit(v, "nf.rx_packets");
        tx_packets_.fluidVisit(v, "nf.tx_packets");
        tx_dropped_.fluidVisit(v, "nf.tx_dropped");
        grants_.fluidVisit(v);
        v.u64("nf.page_cursor", rx_page_cursor_);
        v.inv("nf.rxq", rx_queue_.size());
        for (std::size_t i = 0; i < rx_queue_.size(); ++i)
            nic::fluidVisitPacket(v, "nf.rxq_pkt", rx_queue_[i]);
        v.inv("nf.pending", pending_.size());
        for (auto &p : pending_)
            nic::fluidVisitPacket(v, "nf.pending_pkt", p);
    }

  private:
    guest::GuestKernel &kern_;
    std::string name_;
    nic::MacAddr mac_;
    NetbackDriver *backend_ = nullptr;
    vmm::GrantTable grants_;
    mem::Addr rx_base_;
    vmm::GrantTable::Ref rx_ref_;
    std::size_t rx_page_cursor_ = 0;
    sim::RingBuf<nic::Packet> rx_queue_;
    guest::GuestKernel::VirtualIrq rx_irq_;
    std::vector<nic::Packet> pending_;
    sim::Counter rx_packets_;
    sim::Counter tx_packets_;
    sim::Counter tx_dropped_;
};

} // namespace sriov::drivers

#endif // SRIOV_DRIVERS_NETFRONT_HPP
