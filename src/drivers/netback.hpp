/**
 * @file
 * NetbackDriver: the dom0 half of the Xen PV split network driver.
 *
 * Bridges the physical NIC to per-guest netfronts. Every frame in
 * either direction is grant-copied by a backend worker thread — the
 * per-packet CPU cost that caps the original single-threaded driver
 * at one saturated core / ~3.6 Gb/s and motivates both the
 * multi-thread enhancement of Section 6.5 and SR-IOV itself.
 *
 * Workers are modelled as dom0 kernel threads pinned to dom0 VCPUs 1..N
 * (VCPU 0 takes the physical NIC's interrupts); a guest's traffic
 * always lands on the same worker.
 */

#ifndef SRIOV_DRIVERS_NETBACK_HPP
#define SRIOV_DRIVERS_NETBACK_HPP

#include <unordered_map>

#include "drivers/netfront.hpp"
#include "nic/sriov_nic.hpp"

namespace sriov::drivers {

class NetbackDriver : public guest::GuestKernel::IrqClient
{
  public:
    struct Config
    {
        /** 1 = the original Xen driver; up to 7 for the enhanced one. */
        unsigned num_threads = 1;
        /** Physical NIC interrupt moderation in dom0. */
        double phys_itr_hz = 8000;
        std::size_t rx_buffers = 1024;
        /** Per-worker backlog cap; beyond it frames are dropped. */
        std::size_t worker_queue_cap = 2048;
    };

    NetbackDriver(guest::GuestKernel &dom0_kern, Config cfg);

    /**
     * Take ownership of the physical port: bus mastering, buffers,
     * default-pool bridging, IRQ on dom0 VCPU 0.
     */
    void attachPhysical(nic::NicPort &nic);

    /** Register a guest interface on the software bridge. */
    void connectGuest(NetfrontDriver &nf);
    void disconnectGuest(NetfrontDriver &nf);
    bool connected(const NetfrontDriver &nf) const;

    /** Frontend transmit entry. False = backlog full (drop). */
    bool guestTx(NetfrontDriver &src, const nic::Packet &pkt);

    /** @name IrqClient for the physical NIC. @{ */
    double irqTop() override;
    void irqBottom() override;
    /** @} */

    std::uint64_t copies() const { return copies_.value(); }
    std::uint64_t backlogDrops() const { return backlog_drops_.value(); }
    std::uint64_t forwardedToWire() const { return to_wire_.value(); }
    std::uint64_t forwardedToGuests() const { return to_guests_.value(); }
    unsigned threadCount() const { return cfg_.num_threads; }

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        copies_.fluidVisit(v, "nb.copies");
        backlog_drops_.fluidVisit(v, "nb.backlog_drops");
        to_wire_.fluidVisit(v, "nb.to_wire");
        to_guests_.fluidVisit(v, "nb.to_guests");
        v.inv("nb.guests", guests_.size());
        v.inv("nb.pending", pending_.size());
        for (auto &c : pending_)
            nic::fluidVisitPacket(v, "nb.pending_pkt", c.pkt);
    }

  private:
    struct GuestCtx
    {
        NetfrontDriver *nf;
        unsigned worker;
    };

    sim::CpuServer &workerCpu(unsigned idx);
    GuestCtx *guestByMac(nic::MacAddr mac);
    /** Per-frame backend cost for @p nf's traffic (SMP/PVM aware). */
    double perPacketCost(NetfrontDriver &nf);
    /** Copy a batch into @p guest and notify it. */
    void deliverToGuest(GuestCtx &g, std::vector<nic::Packet> &&pkts);

    guest::GuestKernel &kern_;
    Config cfg_;
    nic::NicPort *nic_ = nullptr;
    std::unordered_map<std::uint64_t, GuestCtx> guests_;    // mac -> ctx
    std::vector<nic::RxCompletion> pending_;
    sim::Counter copies_;
    sim::Counter backlog_drops_;
    sim::Counter to_wire_;
    sim::Counter to_guests_;
};

} // namespace sriov::drivers

#endif // SRIOV_DRIVERS_NETBACK_HPP
