#include "drivers/netfront.hpp"

#include "drivers/netback.hpp"
#include "sim/fluid.hpp"
#include "sim/log.hpp"

namespace sriov::drivers {

NetfrontDriver::NetfrontDriver(guest::GuestKernel &kern, std::string name,
                               nic::MacAddr mac)
    : kern_(kern), name_(std::move(name)), mac_(mac)
{
    rx_base_ = kern_.allocBuffer(kRxBufferPages * mem::kPageSize);
    // Grant the backend (domain 0) access to the RX region.
    rx_ref_ = grants_.grantAccess(rx_base_, /*peer_domid=*/0,
                                  /*readonly=*/false);
    rx_irq_ = kern_.attachVirtualIrq(*this);
}

void
NetfrontDriver::backendDeliver(const std::vector<nic::Packet> &pkts)
{
    for (const auto &p : pkts)
        rx_queue_.push_back(p);
}

void
NetfrontDriver::raiseRxIrq(sim::CpuServer &notifier_cpu)
{
    kern_.raiseVirtualIrq(rx_irq_, notifier_cpu);
}

mem::Addr
NetfrontDriver::nextRxPageGpa()
{
    mem::Addr gpa = rx_base_ + (rx_page_cursor_ % kRxBufferPages)
        * mem::kPageSize;
    ++rx_page_cursor_;
    return gpa;
}

bool
NetfrontDriver::transmit(const nic::Packet &pkt)
{
    if (!linkUp()) {
        tx_dropped_.inc();
        sim::fluidTransitionAll(sim::FluidTransition::Drop);
        return false;
    }
    if (!backend_->guestTx(*this, pkt)) {
        tx_dropped_.inc();
        return false;    // guestTx already reported the drop
    }
    tx_packets_.inc();
    return true;
}

bool
NetfrontDriver::linkUp() const
{
    return backend_ != nullptr && backend_->connected(*this);
}

double
NetfrontDriver::irqTop()
{
    pending_.clear();
    pending_.reserve(rx_queue_.size());
    while (!rx_queue_.empty()) {
        pending_.push_back(rx_queue_.front());
        rx_queue_.pop_front();
    }
    return double(pending_.size())
        * kern_.hv().costs().netfront_per_packet;
}

void
NetfrontDriver::irqBottom()
{
    if (pending_.empty())
        return;
    rx_packets_.inc(pending_.size());
    deliverUp(pending_);
    pending_.clear();
}

} // namespace sriov::drivers
