/**
 * @file
 * VfDriver: the igbvf-like direct-access network driver (the VF driver
 * of paper Section 4.1).
 *
 * Runs unmodified in any domain type — HVM guest, PVM guest, dom0 (on
 * the PF's own pool), or a native OS — exactly the portability claim
 * of the paper's architecture: the driver touches only its pool of
 * device resources and the PF↔VF mailbox, never a VMM interface.
 *
 * Receive flow: the device DMAs frames into buffers this driver
 * posted (guest-physical addresses remapped by the IOMMU) and raises
 * the pool's MSI-X vector; the guest kernel runs the IrqClient
 * protocol; irqTop() drains the completion queue; irqBottom() reposts
 * buffers, feeds the ITR policy sampler, and hands packets up the
 * stack. No VMM intervention touches the data path.
 */

#ifndef SRIOV_DRIVERS_VF_DRIVER_HPP
#define SRIOV_DRIVERS_VF_DRIVER_HPP

#include <memory>

#include "drivers/itr_policy.hpp"
#include "guest/net_stack.hpp"
#include "nic/sriov_nic.hpp"
#include "sim/deferred_timer.hpp"

namespace sriov::drivers {

class VfDriver : public guest::NetDevice,
                 public guest::GuestKernel::IrqClient
{
  public:
    struct Config
    {
        std::string name = "eth0";
        nic::MacAddr mac{};
        std::size_t rx_buffers = 1024;      ///< dd_bufs
        std::uint32_t buf_bytes = 2048;
        /** ITR re-evaluation period (paper: pps sampled per second). */
        sim::Time sample_period = sim::Time::sec(1);
    };

    VfDriver(guest::GuestKernel &kern, nic::NicPort &nic, nic::Pool pool,
             Config cfg);
    ~VfDriver() override;

    /** Default policy is the VF driver 0.9.5 static 2 kHz. */
    void setItrPolicy(std::unique_ptr<ItrPolicy> p);
    ItrPolicy &itrPolicy() { return *itr_; }
    double currentItrHz() const { return nic_.itr(pool_); }

    /** Bring the interface up: bus mastering, buffers, IRQ, MAC. */
    void init();
    /** Quiesce and release everything (hot-remove path of DNIS). */
    void shutdown();
    /**
     * First step of hot removal: stop servicing RX interrupts while
     * the guest processes the removal event. Frames keep landing in
     * the ring until it fills, then drop at the device.
     */
    void stopRx();
    bool isUp() const { return up_; }

    guest::GuestKernel &kernel() { return kern_; }
    nic::Pool pool() const { return pool_; }
    /** The PCIe function (VF) backing this interface. */
    pci::PciFunction &function() { return nic_.functionOf(pool_); }
    const nic::NicPort::PoolStats &deviceStats() const
    {
        return nic_.poolStats(pool_);
    }

    /** @name NetDevice. @{ */
    bool transmit(const nic::Packet &pkt) override;
    nic::MacAddr mac() const override { return cfg_.mac; }
    /** Up = driver running AND the PF reports physical carrier. */
    bool linkUp() const override { return up_ && phys_link_; }
    const std::string &name() const override { return cfg_.name; }
    /** @} */

    /** PF -> VF events consumed so far (Section 4.2 notifications). */
    std::uint64_t pfEvents() const { return pf_events_.value(); }

    /** @name GuestKernel::IrqClient. @{ */
    double irqTop() override;
    void irqBottom() override;
    /** @} */

    /** Attach the path tracer: drained completions stamp LapicDeliver
     *  (the ISR ran on the guest's LAPIC) against @p comp. */
    void
    setPathTracer(obs::PathTracer *pt, std::uint16_t comp)
    {
        pt_ = pt;
        pt_comp_ = comp;
    }

    /** Fluid-mode state walk (sim/fluid.hpp). Buffer gpas rotate per
     *  period and are deliberately unvisited (DESIGN.md section 14);
     *  up_batch_ is scratch. */
    void fluidVisit(sim::FluidVisitor &v);

  private:
    void registerMac();
    void unregisterMac();
    void onItrSample();
    void installPfEventHandler();
    void handlePfEvent(const nic::MboxMessage &msg);

    guest::GuestKernel &kern_;
    nic::NicPort &nic_;
    nic::Pool pool_;
    Config cfg_;
    std::unique_ptr<ItrPolicy> itr_;
    bool up_ = false;
    bool phys_link_ = true;
    /** Periodic ITR retune; disarmed across shutdown()/init() cycles
     *  (replaces the old epoch-guarded self-rescheduling event). */
    sim::DeferredTimer sample_timer_;
    sim::Counter pf_events_;
    std::vector<nic::RxCompletion> pending_;
    std::vector<nic::Packet> up_batch_;    ///< reused across interrupts
    double period_pkts_ = 0;
    double period_bits_ = 0;
    obs::PathTracer *pt_ = nullptr;
    std::uint16_t pt_comp_ = 0;
};

} // namespace sriov::drivers

#endif // SRIOV_DRIVERS_VF_DRIVER_HPP
