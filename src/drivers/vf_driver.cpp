#include "drivers/vf_driver.hpp"

#include "sim/fluid.hpp"
#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace sriov::drivers {

VfDriver::VfDriver(guest::GuestKernel &kern, nic::NicPort &nic,
                   nic::Pool pool, Config cfg)
    : kern_(kern), nic_(nic), pool_(pool), cfg_(std::move(cfg)),
      itr_(std::make_unique<StaticItr>(2000)),
      sample_timer_(kern.hv().eq(), "driver.itr_sample")
{
    sample_timer_.setCallback([this]() { onItrSample(); });
}

VfDriver::~VfDriver()
{
    if (up_)
        shutdown();
}

void
VfDriver::setItrPolicy(std::unique_ptr<ItrPolicy> p)
{
    itr_ = std::move(p);
    if (up_)
        nic_.setItr(pool_, itr_->updateHz(0, 0));
}

void
VfDriver::init()
{
    if (up_)
        return;
    pci::PciFunction &fn = nic_.functionOf(pool_);

    // Enable memory decoding + bus mastering through config space.
    std::uint16_t cmd = fn.config().read(pci::cfg::kCommand, 2);
    fn.config().write(pci::cfg::kCommand,
                      cmd | pci::cfg::kCmdMemEnable
                          | pci::cfg::kCmdBusMaster,
                      2);

    // Allocate and post the RX buffers (guest-physical addresses; the
    // IOMMU remaps them at DMA time).
    mem::Addr base =
        kern_.allocBuffer(mem::Addr(cfg_.rx_buffers) * cfg_.buf_bytes);
    auto &ring = nic_.rxRing(pool_);
    for (std::size_t i = 0; i < cfg_.rx_buffers; ++i) {
        if (!ring.post(base + i * cfg_.buf_bytes))
            break;
    }

    kern_.attachDeviceIrq(fn, *this);
    registerMac();
    installPfEventHandler();
    nic_.setItr(pool_, itr_->updateHz(0, 0));
    up_ = true;
    sample_timer_.armIn(cfg_.sample_period);
}

void
VfDriver::installPfEventHandler()
{
    auto *sriov = dynamic_cast<nic::SriovNic *>(&nic_);
    if (!sriov || pool_ == 0)
        return;
    sriov->mailbox(pool_ - 1).to_vf.setDoorbell(
        [this](const nic::MboxMessage &msg) { handlePfEvent(msg); });
}

void
VfDriver::handlePfEvent(const nic::MboxMessage &msg)
{
    // PF -> VF notifications (paper Section 4.2): link changes,
    // impending global reset, impending PF driver removal.
    pf_events_.inc();
    auto *sriov = dynamic_cast<nic::SriovNic *>(&nic_);
    auto &mbox = sriov->mailbox(pool_ - 1).to_vf;
    switch (msg.type) {
      case nic::MboxMessage::Type::LinkChange:
        phys_link_ = msg.payload != 0;
        sim::fluidTransitionAll(sim::FluidTransition::VmChurn);
        SRIOV_TRACE(sim::TraceCat::Driver, "%s: PF reports link %s",
                    cfg_.name.c_str(), phys_link_ ? "up" : "down");
        break;
      case nic::MboxMessage::Type::PfReset:
      case nic::MboxMessage::Type::PfRemoval:
        // The device under us is going away: quiesce immediately.
        SRIOV_TRACE(sim::TraceCat::Driver, "%s: PF going away, quiescing",
                    cfg_.name.c_str());
        mbox.ack();
        shutdown();
        return;
      default:
        break;
    }
    mbox.ack();
}

void
VfDriver::stopRx()
{
    if (!up_)
        return;
    sim::fluidTransitionAll(sim::FluidTransition::VmChurn);
    kern_.detachDeviceIrq(nic_.functionOf(pool_));
}

void
VfDriver::shutdown()
{
    if (!up_)
        return;
    sim::fluidTransitionAll(sim::FluidTransition::VmChurn);
    up_ = false;
    sample_timer_.disarm();
    pci::PciFunction &fn = nic_.functionOf(pool_);
    kern_.detachDeviceIrq(fn);
    unregisterMac();
    std::uint16_t cmd = fn.config().read(pci::cfg::kCommand, 2);
    fn.config().write(pci::cfg::kCommand,
                      cmd & ~(pci::cfg::kCmdBusMaster
                              | pci::cfg::kCmdMemEnable),
                      2);
    nic_.rxRing(pool_).reset();
}

void
VfDriver::registerMac()
{
    auto *sriov = dynamic_cast<nic::SriovNic *>(&nic_);
    if (sriov && pool_ > 0) {
        // A VF may not program filters itself: ask the PF driver.
        nic::MboxMessage msg;
        msg.type = nic::MboxMessage::Type::SetMac;
        msg.payload = cfg_.mac.value;
        if (!sriov->mailbox(pool_ - 1).to_pf.post(msg))
            sim::warn("%s: mailbox busy during MAC registration",
                      cfg_.name.c_str());
    } else {
        nic_.setPoolFilter(pool_, cfg_.mac);
    }
}

void
VfDriver::unregisterMac()
{
    auto *sriov = dynamic_cast<nic::SriovNic *>(&nic_);
    if (sriov && pool_ > 0) {
        nic::MboxMessage msg;
        msg.type = nic::MboxMessage::Type::Reset;
        msg.payload = 0;
        sriov->mailbox(pool_ - 1).to_pf.post(msg);
    } else {
        nic_.l2().clearPool(pool_);
    }
}

bool
VfDriver::transmit(const nic::Packet &pkt)
{
    if (!up_)
        return false;
    nic_.transmit(pool_, pkt);
    return true;
}

// simlint: hot
double
VfDriver::irqTop()
{
    nic_.drainRxInto(pool_, pending_);
    if (pt_) {
        const sim::Time now = kern_.hv().eq().now();
        for (const auto &c : pending_)
            pt_->record(pt_comp_, obs::PathStage::LapicDeliver,
                        c.pkt.trace_id, now);
    }
    return double(pending_.size()) * kern_.hv().costs().guest_per_packet;
}

void
VfDriver::irqBottom()
{
    if (pending_.empty())
        return;
    auto &ring = nic_.rxRing(pool_);
    up_batch_.clear();
    up_batch_.reserve(pending_.size());
    for (const auto &c : pending_) {
        ring.post(c.buffer_gpa);    // recycle the buffer
        up_batch_.push_back(c.pkt);
        period_pkts_ += 1;
        period_bits_ += double(c.pkt.payloadBytes()) * 8.0;
    }
    pending_.clear();
    deliverUp(up_batch_);
}

void
VfDriver::fluidVisit(sim::FluidVisitor &v)
{
    v.inv("vf.up", (up_ ? 1u : 0u) | (phys_link_ ? 2u : 0u));
    sample_timer_.fluidVisit(v);
    pf_events_.fluidVisit(v, "vf.pf_events");
    v.f64("vf.period_pkts", period_pkts_);
    v.f64("vf.period_bits", period_bits_);
    v.inv("vf.pending", pending_.size());
    for (auto &c : pending_)
        nic::fluidVisitPacket(v, "vf.pending_pkt", c.pkt);
}

void
VfDriver::onItrSample()
{
    if (!up_)
        return;
    double secs = cfg_.sample_period.toSeconds();
    double hz = itr_->updateHz(period_pkts_ / secs, period_bits_ / secs);
    SRIOV_TRACE(sim::TraceCat::Driver,
                "%s: %s retune to %.0f Hz (%.0f pps)",
                cfg_.name.c_str(), itr_->name().c_str(), hz,
                period_pkts_ / secs);
    nic_.setItr(pool_, hz);
    period_pkts_ = 0;
    period_bits_ = 0;
    sample_timer_.armIn(cfg_.sample_period);
}

} // namespace sriov::drivers
