/**
 * @file
 * Interrupt-throttle policies (paper Section 5.3).
 *
 * The driver samples packet/bit rates once per second and asks its
 * policy for a new interrupt frequency:
 *
 *  - StaticItr: the fixed frequencies of Figs. 8–10 (20 kHz, 2 kHz,
 *    1 kHz). 2 kHz is the VF driver 0.9.5 default.
 *  - AdaptiveItr: the igb-style throughput-classed table used outside
 *    the AIC experiments.
 *  - AicItr: the paper's adaptive interrupt coalescing. We implement
 *    Eq. (2)'s consistent form IF = max(pps * r / bufs, lif); see
 *    DESIGN.md for why Eq. (3) as printed contradicts the prose.
 */

#ifndef SRIOV_DRIVERS_ITR_POLICY_HPP
#define SRIOV_DRIVERS_ITR_POLICY_HPP

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>

namespace sriov::drivers {

class ItrPolicy
{
  public:
    virtual ~ItrPolicy() = default;

    /**
     * @param pps packets/s observed in the last sampling period.
     * @param bps goodput bits/s observed in the last period.
     * @return the interrupt frequency (Hz) for the next period.
     */
    virtual double updateHz(double pps, double bps) = 0;

    virtual std::string name() const = 0;
};

class StaticItr : public ItrPolicy
{
  public:
    explicit StaticItr(double hz) : hz_(hz) {}

    double updateHz(double, double) override { return hz_; }
    std::string name() const override;

  private:
    double hz_;
};

/**
 * igb-like adaptive moderation: under light traffic the driver runs
 * in lowest-latency mode (interrupt per packet, capped); under load
 * the frequency scales smoothly with throughput between a floor and
 * the bulk rate. Calibrated so a saturated 1 GbE flow moderates at
 * ~8 kHz and a ~137 Mb/s flow at ~2 kHz (paper Figs. 6/7 operating
 * points).
 */
class AdaptiveItr : public ItrPolicy
{
  public:
    struct Curve
    {
        double light_bps = 50e6;       ///< below: latency mode
        double lowest_latency_hz = 20000;
        double floor_hz = 2000;
        double bulk_hz = 8000;
        /** hz = base_hz + slope * bps between floor and bulk. */
        double base_hz = 1000;
        double slope_hz_per_bps = 7.32e-6;
    };

    AdaptiveItr() = default;
    explicit AdaptiveItr(const Curve &c) : c_(c) {}

    double updateHz(double pps, double bps) override;
    std::string name() const override { return "adaptive"; }

  private:
    Curve c_;
};

/** The paper's adaptive interrupt coalescing (overflow avoidance). */
class AicItr : public ItrPolicy
{
  public:
    struct Params
    {
        std::size_t ap_bufs = 64;      ///< application buffers
        std::size_t dd_bufs = 1024;    ///< device-driver buffers
        double r = 1.2;                ///< hypervisor-latency headroom
        double lif = 1000;             ///< lowest acceptable frequency
        double max_hz = 20000;
    };

    AicItr() = default;
    explicit AicItr(const Params &p) : p_(p) {}

    const Params &params() const { return p_; }

    double updateHz(double pps, double bps) override;
    std::string name() const override { return "AIC"; }

    /** Eq. (1): the buffer count that must not overflow. */
    std::size_t bufs() const { return std::min(p_.ap_bufs, p_.dd_bufs); }

  private:
    Params p_;
};

} // namespace sriov::drivers

#endif // SRIOV_DRIVERS_ITR_POLICY_HPP
