#include "drivers/pf_driver.hpp"

#include "sim/fluid.hpp"
#include "sim/log.hpp"

namespace sriov::drivers {

PfDriver::PfDriver(guest::GuestKernel &host_kern, nic::SriovNic &nic)
    : kern_(host_kern), nic_(nic)
{
    // Bring up the PF itself.
    auto &cfg = nic_.pf().config();
    std::uint16_t cmd = cfg.read(pci::cfg::kCommand, 2);
    cfg.write(pci::cfg::kCommand,
              cmd | pci::cfg::kCmdMemEnable | pci::cfg::kCmdBusMaster, 2);
}

void
PfDriver::enableVfs(unsigned n)
{
    auto &cap = nic_.sriovCap();
    if (cap.vfEnabled())
        sim::fatal("PF %s: VFs already enabled", nic_.name().c_str());
    cap.setNumVfs(std::uint16_t(n));
    cap.setVfEnable(true);
    installMailboxHandlers();
}

void
PfDriver::disableVfs()
{
    // Warn every VF driver first (impending removal, Section 4.2).
    nic::MboxMessage msg;
    msg.type = nic::MboxMessage::Type::PfRemoval;
    for (unsigned i = 0; i < nic_.numVfs(); ++i)
        nic_.mailbox(i).to_vf.post(msg);
    nic_.sriovCap().setVfEnable(false);
}

void
PfDriver::setBridgeMode(bool on)
{
    if (on)
        nic_.setDefaultPool(nic::Pool(0));
    else
        nic_.setDefaultPool(std::nullopt);
}

void
PfDriver::notifyLinkChange(bool up)
{
    nic::MboxMessage msg;
    msg.type = nic::MboxMessage::Type::LinkChange;
    msg.payload = up ? 1 : 0;
    for (unsigned i = 0; i < nic_.numVfs(); ++i)
        nic_.mailbox(i).to_vf.post(msg);
}

void
PfDriver::blockVf(unsigned vf_index, bool blocked)
{
    blocked_[vf_index] = blocked;
    if (blocked) {
        nic_.l2().clearPool(nic_.vfPool(vf_index));
        vf_mac_.erase(vf_index);
    }
    sim::fluidTransitionAll(sim::FluidTransition::VmChurn);
}

bool
PfDriver::vfBlocked(unsigned vf_index) const
{
    auto it = blocked_.find(vf_index);
    return it != blocked_.end() && it->second;
}

void
PfDriver::installMailboxHandlers()
{
    for (unsigned i = 0; i < nic_.numVfs(); ++i) {
        nic_.mailbox(i).to_pf.setDoorbell(
            [this, i](const nic::MboxMessage &msg) {
                handleVfRequest(i, msg);
            });
    }
}

bool
PfDriver::watchdogTrips(unsigned vf_index)
{
    if (!watchdog_.enabled || vfBlocked(vf_index))
        return false;
    sim::Time now = kern_.hv().eq().now();
    RateState &rs = rates_[vf_index];
    if (now - rs.window_start >= watchdog_.window) {
        rs.window_start = now;
        rs.count = 0;
    }
    if (++rs.count <= watchdog_.max_requests)
        return false;
    // Unusual behaviour: shut the VF down (Section 4.3).
    shutdowns_.inc();
    blockVf(vf_index, true);
    sim::warn("PF %s: VF %u exceeded %u mailbox requests per window; "
              "shut down",
              nic_.name().c_str(), vf_index, watchdog_.max_requests);
    return true;
}

void
PfDriver::handleVfRequest(unsigned vf_index, const nic::MboxMessage &msg)
{
    requests_.inc();
    // Mailbox servicing costs service-OS CPU.
    kern_.vcpu0().chargeGuest(kern_.hv().costs().pf_mailbox_request);

    auto &mbox = nic_.mailbox(vf_index).to_pf;
    nic::Pool pool = nic_.vfPool(vf_index);

    if (vfBlocked(vf_index) || watchdogTrips(vf_index)) {
        rejected_.inc();
        mbox.ack();
        return;
    }

    switch (msg.type) {
      case nic::MboxMessage::Type::SetMac: {
        nic::MacAddr mac{msg.payload};
        if (auto it = vf_mac_.find(vf_index); it != vf_mac_.end())
            nic_.l2().clearFilter(it->second, 0);
        vf_mac_[vf_index] = mac;
        nic_.setPoolFilter(pool, mac);
        break;
      }
      case nic::MboxMessage::Type::SetVlan: {
        auto it = vf_mac_.find(vf_index);
        if (it != vf_mac_.end()) {
            nic_.setPoolFilter(pool, it->second,
                               std::uint16_t(msg.payload));
        } else {
            rejected_.inc();
        }
        break;
      }
      case nic::MboxMessage::Type::SetMulticast:
        // Accepted; multicast fan-out is not modelled.
        break;
      case nic::MboxMessage::Type::Reset:
        nic_.l2().clearPool(pool);
        vf_mac_.erase(vf_index);
        break;
      default:
        rejected_.inc();
        break;
    }
    mbox.ack();
}

} // namespace sriov::drivers
