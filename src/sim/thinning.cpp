#include "sim/thinning.hpp"

#include <atomic>

namespace sriov::sim {

namespace {
std::atomic<bool> g_thinning{true};
} // namespace

bool
thinningEnabled()
{
    return g_thinning.load(std::memory_order_relaxed);
}

void
setThinning(bool enabled)
{
    g_thinning.store(enabled, std::memory_order_relaxed);
}

} // namespace sriov::sim
