/**
 * @file
 * Event-thinning switch.
 *
 * Thinning replaces per-hop simulation events with analytically
 * computed timestamps delivered from coalesced events (wire bursts,
 * DMA flow-through, deadline-deferred timers). It is observationally
 * equivalent by construction: every registered metric changes at the
 * same simulated time as in the exact model, so mid-run snapshots are
 * byte-identical (CI diffs figXX.json across both modes).
 *
 * The switch is process-global and read once at component
 * construction — flipping it mid-run would desynchronize components,
 * so benches set it (via --no-thin / SRIOV_NO_THIN) before building
 * the testbed, and tests use ThinningScope around construction.
 */

#ifndef SRIOV_SIM_THINNING_HPP
#define SRIOV_SIM_THINNING_HPP

namespace sriov::sim {

/** Is event thinning enabled (default: yes)? */
bool thinningEnabled();

/** Flip the global switch. Call before constructing components. */
void setThinning(bool enabled);

/** RAII override for tests: forces a mode, restores on destruction. */
class ThinningScope
{
  public:
    explicit ThinningScope(bool enabled) : prev_(thinningEnabled())
    {
        setThinning(enabled);
    }
    ~ThinningScope() { setThinning(prev_); }
    ThinningScope(const ThinningScope &) = delete;
    ThinningScope &operator=(const ThinningScope &) = delete;

  private:
    bool prev_;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_THINNING_HPP
