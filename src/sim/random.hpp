/**
 * @file
 * Deterministic pseudo-random numbers (SplitMix64).
 *
 * The simulator avoids std::mt19937 so that results are bit-identical
 * across standard libraries; every experiment seeds its own stream.
 */

#ifndef SRIOV_SIM_RANDOM_HPP
#define SRIOV_SIM_RANDOM_HPP

#include <cstdint>

namespace sriov::sim {

class Random
{
  public:
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

  private:
    std::uint64_t state_;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_RANDOM_HPP
