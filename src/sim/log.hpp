/**
 * @file
 * Minimal logging / fatal-error support, in the spirit of gem5's
 * base/logging.hh: panic() for simulator bugs, fatal() for user errors,
 * warn()/inform() for status.
 */

#ifndef SRIOV_SIM_LOG_HPP
#define SRIOV_SIM_LOG_HPP

#include <cstdarg>

namespace sriov::sim {

enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Global log verbosity (default Warn; benches set Quiet). */
void setLogLevel(LogLevel lvl);
LogLevel logLevel();

/** Simulator bug: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** User/configuration error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace sriov::sim

#endif // SRIOV_SIM_LOG_HPP
