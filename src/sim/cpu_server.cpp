#include "sim/cpu_server.hpp"

#include <utility>

#include "sim/log.hpp"

namespace sriov::sim {

CpuServer::CpuServer(EventQueue &eq, std::string name, double hz)
    : eq_(eq), name_(std::move(name)), hz_(hz)
{
    if (hz_ <= 0)
        fatal("CpuServer %s: non-positive clock %f", name_.c_str(), hz_);
}

void
CpuServer::submit(double cycles, std::string_view tag, InplaceFn on_done)
{
    if (cycles < 0)
        panic("negative work submitted to %s", name_.c_str());
    queue_.push_back(
        Work{cycles, std::string(tag), std::move(on_done), Time()});
    if (!in_service_)
        startNext();
}

void
CpuServer::charge(double cycles, std::string_view tag)
{
    if (cycles < 0)
        panic("negative charge on %s", name_.c_str());
    busy_ += Time::cycles(cycles, hz_);
    tagCycles(tag) += cycles;
}

double &
CpuServer::tagCycles(std::string_view tag)
{
    if (last_tag_idx_ < cycles_by_tag_.size()
        && cycles_by_tag_[last_tag_idx_].first == tag)
        return cycles_by_tag_[last_tag_idx_].second;
    for (std::size_t i = 0; i < cycles_by_tag_.size(); ++i) {
        if (cycles_by_tag_[i].first == tag) {
            last_tag_idx_ = i;
            return cycles_by_tag_[i].second;
        }
    }
    last_tag_idx_ = cycles_by_tag_.size();
    cycles_by_tag_.emplace_back(std::string(tag), 0.0);
    return cycles_by_tag_.back().second;
}

void
CpuServer::startNext()
{
    if (queue_.empty()) {
        in_service_ = false;
        return;
    }
    in_service_ = true;
    current_ = std::move(queue_.front());
    queue_.pop_front();
    Time service = Time::cycles(current_.cycles, hz_);
    busy_ += service;
    tagCycles(current_.tag) += current_.cycles;
    current_.start = eq_.now();
    eq_.scheduleIn(service, [this]() { finishCurrent(); }, "cpu.done");
}

void
CpuServer::finishCurrent()
{
    // Move the item out first: the completion closure may submit more
    // work (reentrancy), and startNext() overwrites current_.
    Work w = std::move(current_);
    if (span_tap_ != nullptr)
        span_tap_->onCpuSpan(*this, w.tag, w.start, eq_.now());
    if (w.on_done)
        w.on_done();
    startNext();
}

void
CpuServer::fluidVisit(FluidVisitor &v)
{
    v.time("cpu.busy", busy_);
    for (auto &[tag, cycles] : cycles_by_tag_) {
        (void)tag;
        v.f64("cpu.tag_cycles", cycles);
    }
    v.inv("cpu.in_service", in_service_ ? 1 : 0);
    if (in_service_) {
        v.f64("cpu.cur_cycles", current_.cycles);
        v.time("cpu.cur_start", current_.start);
    }
    v.inv("cpu.qdepth", queue_.size());
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        v.f64("cpu.q_cycles", queue_[i].cycles);
        v.time("cpu.q_start", queue_[i].start);
    }
}

bool
CpuServer::hasWorkTagged(const char *const *tags, std::size_t n) const
{
    auto match = [&](const std::string &tag) {
        for (std::size_t i = 0; i < n; ++i)
            if (tag == tags[i])
                return true;
        return false;
    };
    if (in_service_ && match(current_.tag))
        return true;
    for (std::size_t i = 0; i < queue_.size(); ++i)
        if (match(queue_[i].tag))
            return true;
    return false;
}

CpuSnapshot
CpuServer::snapshot() const
{
    std::map<std::string, double> by_tag;
    for (const auto &[tag, cycles] : cycles_by_tag_)
        by_tag.emplace(tag, cycles);
    return CpuSnapshot{busy_, eq_.now(), std::move(by_tag)};
}

double
CpuServer::utilizationSince(const CpuSnapshot &before) const
{
    Time window = eq_.now() - before.when;
    if (window <= Time())
        return 0.0;
    return (busy_ - before.busy).toSeconds() / window.toSeconds();
}

double
CpuServer::cyclesSince(const CpuSnapshot &before,
                       const std::string &tag) const
{
    double now_v = 0.0;
    for (const auto &[t, cycles] : cycles_by_tag_) {
        if (t == tag) {
            now_v = cycles;
            break;
        }
    }
    auto old_it = before.cycles_by_tag.find(tag);
    double old_v = old_it == before.cycles_by_tag.end() ? 0.0
                                                        : old_it->second;
    return now_v - old_v;
}

} // namespace sriov::sim
