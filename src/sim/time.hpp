/**
 * @file
 * Simulated time for the discrete-event kernel.
 *
 * Time is kept in integer picoseconds so that CPU-cycle arithmetic at
 * 2.8 GHz (357.14 ps per cycle) never accumulates rounding drift over
 * multi-second simulations. An int64 count of picoseconds covers about
 * 106 days of simulated time, far beyond any experiment in the paper.
 */

#ifndef SRIOV_SIM_TIME_HPP
#define SRIOV_SIM_TIME_HPP

#include <cstdint>
#include <compare>
#include <string>

namespace sriov::sim {

/** A point in (or span of) simulated time, in integer picoseconds. */
class Time
{
  public:
    constexpr Time() : ps_(0) {}

    /** @name Named constructors. @{ */
    static constexpr Time ps(std::int64_t v) { return Time(v); }
    static constexpr Time ns(std::int64_t v) { return Time(v * 1000); }
    static constexpr Time us(std::int64_t v) { return Time(v * 1000000); }
    static constexpr Time ms(std::int64_t v) { return Time(v * 1000000000LL); }
    static constexpr Time sec(std::int64_t v)
    {
        return Time(v * 1000000000000LL);
    }
    /** Fractional seconds (for configuration convenience). */
    static Time seconds(double v);
    /** Duration of @p cycles CPU cycles at @p hz. */
    static Time cycles(double cycles, double hz);
    /** Duration to move @p bits over a link running at @p bits_per_sec. */
    static Time transfer(double bits, double bits_per_sec);
    /** @} */

    constexpr std::int64_t picos() const { return ps_; }
    constexpr double toSeconds() const { return double(ps_) * 1e-12; }
    constexpr double toMicros() const { return double(ps_) * 1e-6; }

    /** Number of CPU cycles this span covers at @p hz. */
    double toCycles(double hz) const { return toSeconds() * hz; }

    constexpr auto operator<=>(const Time &) const = default;

    constexpr Time operator+(Time o) const { return Time(ps_ + o.ps_); }
    constexpr Time operator-(Time o) const { return Time(ps_ - o.ps_); }
    constexpr Time &operator+=(Time o) { ps_ += o.ps_; return *this; }
    constexpr Time &operator-=(Time o) { ps_ -= o.ps_; return *this; }
    constexpr Time operator*(std::int64_t k) const { return Time(ps_ * k); }
    constexpr Time operator/(std::int64_t k) const { return Time(ps_ / k); }

    /** Human-readable rendering, e.g. "12.5us". */
    std::string toString() const;

    static constexpr Time max() { return Time(INT64_MAX); }

  private:
    explicit constexpr Time(std::int64_t v) : ps_(v) {}

    std::int64_t ps_;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_TIME_HPP
