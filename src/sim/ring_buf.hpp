/**
 * @file
 * RingBuf: a flat, power-of-two, index-masked circular buffer.
 *
 * The simulator's hot queues (wire FIFOs, descriptor rings, RX
 * completion queues, socket buffers, DMA/CPU work queues) are strict
 * FIFOs with bursty occupancy. std::deque serves them with node-based
 * chunk hops: every ~8 packets crossing a queue costs a chunk
 * allocation/free plus a pointer chase on each access. RingBuf keeps
 * the elements in one contiguous power-of-two array indexed by masked
 * head/size counters, so steady-state push/pop touches exactly one
 * cache line and never allocates — capacity grows by doubling (moving
 * elements in FIFO order) and then sticks at the high-water mark.
 *
 * The container is deliberately minimal: FIFO push_back/pop_front,
 * indexed access from the front (operator[]), clear(). Move-only
 * element types are supported; growth and RingBuf moves require T to
 * be (nothrow-)move-constructible.
 */

#ifndef SRIOV_SIM_RING_BUF_HPP
#define SRIOV_SIM_RING_BUF_HPP

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sriov::sim {

template <typename T>
class RingBuf
{
  public:
    RingBuf() noexcept = default;

    /** Pre-size the buffer (rounded up to a power of two). */
    explicit RingBuf(std::size_t capacity) { reserve(capacity); }

    RingBuf(RingBuf &&o) noexcept
        : data_(o.data_), mask_(o.mask_), head_(o.head_), size_(o.size_)
    {
        o.data_ = nullptr;
        o.mask_ = 0;
        o.head_ = 0;
        o.size_ = 0;
    }

    RingBuf &
    operator=(RingBuf &&o) noexcept
    {
        if (this != &o) {
            destroyAll();
            data_ = o.data_;
            mask_ = o.mask_;
            head_ = o.head_;
            size_ = o.size_;
            o.data_ = nullptr;
            o.mask_ = 0;
            o.head_ = 0;
            o.size_ = 0;
        }
        return *this;
    }

    RingBuf(const RingBuf &) = delete;
    RingBuf &operator=(const RingBuf &) = delete;

    ~RingBuf() { destroyAll(); }

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /** Allocated slots (a power of two, or 0 before first use). */
    std::size_t capacity() const noexcept
    {
        return data_ != nullptr ? mask_ + 1 : 0;
    }

    /**
     * Ensure capacity for at least @p n elements without further
     * allocation. Rounds up to the next power of two.
     */
    void
    reserve(std::size_t n)
    {
        if (n > capacity())
            regrow(roundUpPow2(n));
    }

    void
    push_back(const T &v)
    {
        emplace_back(v);
    }

    void
    push_back(T &&v)
    {
        emplace_back(std::move(v));
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == capacity())
            regrow(capacity() == 0 ? kMinCapacity : capacity() * 2);
        T *slot = data_ + ((head_ + size_) & mask_);
        ::new (static_cast<void *>(slot)) T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    /** @pre !empty() */
    T &front() noexcept { return data_[head_]; }
    const T &front() const noexcept { return data_[head_]; }

    /** @pre !empty() */
    T &back() noexcept { return data_[(head_ + size_ - 1) & mask_]; }
    const T &back() const noexcept
    {
        return data_[(head_ + size_ - 1) & mask_];
    }

    /** Element @p i counted from the front. @pre i < size() */
    T &operator[](std::size_t i) noexcept
    {
        return data_[(head_ + i) & mask_];
    }
    const T &operator[](std::size_t i) const noexcept
    {
        return data_[(head_ + i) & mask_];
    }

    /** @pre !empty() */
    void
    pop_front() noexcept
    {
        data_[head_].~T();
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /** Destroy all elements; capacity is retained. */
    void
    clear() noexcept
    {
        while (size_ > 0)
            pop_front();
        head_ = 0;
    }

  private:
    static constexpr std::size_t kMinCapacity = 8;

    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t c = kMinCapacity;
        while (c < n)
            c *= 2;
        return c;
    }

    void
    regrow(std::size_t new_cap)
    {
        static_assert(std::is_move_constructible_v<T>,
                      "RingBuf growth moves elements");
        T *fresh = static_cast<T *>(::operator new(
            new_cap * sizeof(T), std::align_val_t(alignof(T))));
        for (std::size_t i = 0; i < size_; ++i) {
            T *src = data_ + ((head_ + i) & mask_);
            ::new (static_cast<void *>(fresh + i)) T(std::move(*src));
            src->~T();
        }
        if (data_ != nullptr)
            ::operator delete(data_, std::align_val_t(alignof(T)));
        data_ = fresh;
        mask_ = new_cap - 1;
        head_ = 0;
    }

    void
    destroyAll() noexcept
    {
        clear();
        if (data_ != nullptr) {
            ::operator delete(data_, std::align_val_t(alignof(T)));
            data_ = nullptr;
            mask_ = 0;
        }
    }

    T *data_ = nullptr;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_RING_BUF_HPP
