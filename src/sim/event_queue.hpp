/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * All simulated components share one EventQueue. Events are callbacks
 * scheduled at absolute simulated times; ties are broken by insertion
 * order (FIFO among simultaneous events) so simulations are fully
 * deterministic.
 *
 * Two correctness facilities are built in (see src/check/):
 *  - an Observer that is told about schedule-in-the-past attempts and
 *    every executed event, so an InvariantChecker can enforce runtime
 *    invariants without slowing the unobserved queue;
 *  - an order digest: a running FNV-1a hash over the (when, seq, tag)
 *    triple of every executed event. Two runs of the same experiment
 *    with the same seed must produce identical digests; a mismatch
 *    means non-deterministic event ordering.
 */

#ifndef SRIOV_SIM_EVENT_QUEUE_HPP
#define SRIOV_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace sriov::sim {

/** Handle that allows a scheduled event to be cancelled. */
class EventHandle
{
  public:
    EventHandle() = default;

    bool valid() const { return id_ != 0; }
    void clear() { id_ = 0; }

  private:
    friend class EventQueue;
    explicit EventHandle(std::uint64_t id) : id_(id) {}

    std::uint64_t id_ = 0;
};

/**
 * A deterministic discrete-event scheduler.
 *
 * Components capture a reference to the queue and schedule callbacks;
 * the top-level harness drives the simulation with runUntil()/runAll().
 */
class EventQueue
{
  public:
    /**
     * Hook interface for correctness tooling (check::InvariantChecker).
     *
     * With an observer installed, scheduling in the past is reported
     * through onSchedulePast() and the event is clamped to now()
     * instead of aborting the process, so negative tests can assert
     * the violation.
     */
    class Observer
    {
      public:
        virtual ~Observer() = default;

        /** scheduleAt() saw @p when < @p now and clamped it. */
        virtual void onSchedulePast(Time when, Time now) = 0;

        /** An event is about to execute at @p when (queue time @p now). */
        virtual void onExecute(Time when, Time now, std::uint64_t seq,
                               const char *tag) = 0;
    };

    /**
     * Execution hook for observability tooling (obs::SimProfiler,
     * obs::ChromeTraceWriter). Unlike the Observer — which is part of
     * the correctness machinery and changes schedule-in-the-past
     * handling — hooks are pure bystanders: they bracket every
     * executed event and cannot alter queue behaviour. With no hooks
     * installed the per-event cost is one branch.
     */
    class ExecHook
    {
      public:
        virtual ~ExecHook() = default;

        /** Called just before the event's callback runs. */
        virtual void onEventStart(Time when, std::uint64_t seq,
                                  const char *tag) = 0;

        /** Called right after the event's callback returns. */
        virtual void onEventEnd(Time when, std::uint64_t seq,
                                const char *tag) = 0;
    };

    /**
     * Constructs the queue and offers `&now()` to Tracer::global() as
     * its timestamp clock (adopted only if none is bound; the
     * destructor disowns it again, so the global tracer never dangles
     * into a destroyed queue).
     */
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @p tag must point to storage that outlives the event (string
     * literals); it feeds the order digest and violation reports.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug
     *      and aborts (or is reported, when an Observer is installed).
     */
    EventHandle scheduleAt(Time when, std::function<void()> fn,
                           const char *tag = "");

    /** Schedule @p fn to run @p delay after the current time. */
    EventHandle scheduleIn(Time delay, std::function<void()> fn,
                           const char *tag = "");

    /** Cancel a previously scheduled event. No-op if already fired. */
    void cancel(EventHandle &h);

    /**
     * Run events until the queue is empty or simulated time would pass
     * @p deadline. Time is left at min(deadline, last event time).
     *
     * @return number of events executed.
     */
    std::uint64_t runUntil(Time deadline);

    /** Run until the queue is completely empty. */
    std::uint64_t runAll(std::uint64_t max_events = UINT64_MAX);

    bool empty() const { return live_events_ == 0; }
    std::uint64_t executed() const { return executed_; }

    /** Scheduled-but-not-yet-fired (and not cancelled) events. */
    std::uint64_t liveEvents() const { return live_events_; }

    /** Cancelled events whose heap entries have not been popped yet. */
    std::size_t cancelledPending() const { return cancelled_.size(); }

    /**
     * Running FNV-1a hash of (when, seq, tag) of every executed event.
     * Equal seeds + equal workloads must yield equal digests.
     */
    std::uint64_t orderDigest() const { return digest_; }

    void setObserver(Observer *o) { observer_ = o; }
    Observer *observer() const { return observer_; }

    /** @name Execution hooks (multiple allowed, called in add order). @{ */
    void addExecHook(ExecHook *h);
    void removeExecHook(ExecHook *h);
    std::size_t execHookCount() const { return exec_hooks_.size(); }
    /** @} */

  private:
    struct Entry
    {
        Time when;
        std::uint64_t seq;
        std::uint64_t id;
        const char *tag;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when) return when > o.when;
            return seq > o.seq;
        }
    };

    bool runOne();
    void purgeCancelledTop();
    void foldDigest(const Entry &e);

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::unordered_set<std::uint64_t> pending_;
    std::unordered_set<std::uint64_t> cancelled_;
    Time now_;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t live_events_ = 0;
    std::uint64_t digest_ = 0xcbf29ce484222325ull;    // FNV-1a offset basis
    Observer *observer_ = nullptr;
    std::vector<ExecHook *> exec_hooks_;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_EVENT_QUEUE_HPP
