/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * All simulated components share one EventQueue. Events are callbacks
 * scheduled at absolute simulated times; ties are broken by insertion
 * order (FIFO among simultaneous events) so simulations are fully
 * deterministic.
 */

#ifndef SRIOV_SIM_EVENT_QUEUE_HPP
#define SRIOV_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sriov::sim {

/** Handle that allows a scheduled event to be cancelled. */
class EventHandle
{
  public:
    EventHandle() = default;

    bool valid() const { return id_ != 0; }
    void clear() { id_ = 0; }

  private:
    friend class EventQueue;
    explicit EventHandle(std::uint64_t id) : id_(id) {}

    std::uint64_t id_ = 0;
};

/**
 * A deterministic discrete-event scheduler.
 *
 * Components capture a reference to the queue and schedule callbacks;
 * the top-level harness drives the simulation with runUntil()/runAll().
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug
     *      and aborts.
     */
    EventHandle scheduleAt(Time when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay after the current time. */
    EventHandle scheduleIn(Time delay, std::function<void()> fn);

    /** Cancel a previously scheduled event. No-op if already fired. */
    void cancel(EventHandle &h);

    /**
     * Run events until the queue is empty or simulated time would pass
     * @p deadline. Time is left at min(deadline, last event time).
     *
     * @return number of events executed.
     */
    std::uint64_t runUntil(Time deadline);

    /** Run until the queue is completely empty. */
    std::uint64_t runAll(std::uint64_t max_events = UINT64_MAX);

    bool empty() const { return live_events_ == 0; }
    std::uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        Time when;
        std::uint64_t seq;
        std::uint64_t id;
        std::function<void()> fn;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when) return when > o.when;
            return seq > o.seq;
        }
    };

    bool runOne();

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::vector<std::uint64_t> cancelled_;
    Time now_;
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t live_events_ = 0;

    bool isCancelled(std::uint64_t id);
};

} // namespace sriov::sim

#endif // SRIOV_SIM_EVENT_QUEUE_HPP
