/**
 * @file
 * Discrete-event queue: the heart of the simulator.
 *
 * All simulated components share one EventQueue. Events are callbacks
 * scheduled at absolute simulated times; ties are broken by insertion
 * order (FIFO among simultaneous events) so simulations are fully
 * deterministic.
 *
 * Hot-path layout (this is the innermost loop of every bench):
 *  - callbacks are sim::InplaceFn — captures up to 80 bytes live
 *    inline, so the schedule→execute path performs zero heap
 *    allocations for every per-packet and per-CPU event;
 *  - a 4-ary min-heap sifts 24-byte POD keys (when, seq, slot) while
 *    the callback/tag live in a generation-tagged slot map, so heap
 *    percolation never moves a callback;
 *  - slots live in fixed-size chunks whose addresses never change, so
 *    the callback is invoked in place — no per-event move of the
 *    capture, and no slot relocation when the store grows mid-event;
 *  - cancellation flips the slot's state — O(1), no hashing — and the
 *    stale heap key is dropped when it reaches the top;
 *  - the order digest memoizes each tag's FNV-1a contribution (keyed
 *    by the literal's pointer), folding repeated tags in O(1).
 *
 * Two correctness facilities are built in (see src/check/):
 *  - an Observer that is told about schedule-in-the-past attempts and
 *    every executed event, so an InvariantChecker can enforce runtime
 *    invariants without slowing the unobserved queue;
 *  - an order digest: a running FNV-1a hash over the (when, seq, tag)
 *    triple of every executed event. Two runs of the same experiment
 *    with the same seed must produce identical digests; a mismatch
 *    means non-deterministic event ordering. The digest is a pure
 *    function of the executed sequence — it is bit-for-bit invariant
 *    under queue-internals changes (tests/sim_test.cpp pins a golden
 *    value).
 */

#ifndef SRIOV_SIM_EVENT_QUEUE_HPP
#define SRIOV_SIM_EVENT_QUEUE_HPP

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/inplace_fn.hpp"
#include "sim/time.hpp"

namespace sriov::sim {

/**
 * Handle that allows a scheduled event to be cancelled: the event's
 * slot in the queue's entry store plus the slot's generation at
 * scheduling time, so a stale handle (event already fired, slot
 * reused) can never cancel somebody else's event.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    bool valid() const { return slot_ != kNone; }
    void clear() { slot_ = kNone; gen_ = 0; }

  private:
    friend class EventQueue;
    static constexpr std::uint32_t kNone = 0xffffffffu;

    EventHandle(std::uint32_t slot, std::uint32_t gen)
        : slot_(slot), gen_(gen)
    {}

    std::uint32_t slot_ = kNone;
    std::uint32_t gen_ = 0;
};

/**
 * A deterministic discrete-event scheduler.
 *
 * Components capture a reference to the queue and schedule callbacks;
 * the top-level harness drives the simulation with runUntil()/runAll().
 */
class EventQueue
{
  public:
    /**
     * Hook interface for correctness tooling (check::InvariantChecker).
     *
     * With an observer installed, scheduling in the past is reported
     * through onSchedulePast() and the event is clamped to now()
     * instead of aborting the process, so negative tests can assert
     * the violation.
     */
    class Observer
    {
      public:
        virtual ~Observer() = default;

        /** scheduleAt() saw @p when < @p now and clamped it. */
        virtual void onSchedulePast(Time when, Time now) = 0;

        /** An event is about to execute at @p when (queue time @p now). */
        virtual void onExecute(Time when, Time now, std::uint64_t seq,
                               const char *tag) = 0;
    };

    /**
     * Execution hook for observability tooling (obs::SimProfiler,
     * obs::ChromeTraceWriter). Unlike the Observer — which is part of
     * the correctness machinery and changes schedule-in-the-past
     * handling — hooks are pure bystanders: they bracket every
     * executed event and cannot alter queue behaviour. With no hooks
     * installed the per-event cost is one branch.
     */
    class ExecHook
    {
      public:
        virtual ~ExecHook() = default;

        /** Called just before the event's callback runs. */
        virtual void onEventStart(Time when, std::uint64_t seq,
                                  const char *tag) = 0;

        /** Called right after the event's callback returns. */
        virtual void onEventEnd(Time when, std::uint64_t seq,
                                const char *tag) = 0;
    };

    /**
     * Constructs the queue and offers `&now()` to Tracer::global() as
     * its timestamp clock (adopted only if none is bound; the
     * destructor disowns it again, so the global tracer never dangles
     * into a destroyed queue).
     */
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Time now() const { return now_; }

    /**
     * Schedule callable @p f to run at absolute time @p when.
     *
     * The capture is constructed directly in the queue's slot store
     * (see sim::InplaceFn for the inline-capture rules) — scheduling
     * an event is allocation-free for captures up to
     * InplaceFn::kCapacity bytes.
     *
     * @p tag must point to storage that outlives the event (string
     * literals); it feeds the order digest and violation reports.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug
     *      and aborts (or is reported, when an Observer is installed).
     */
    template <typename F>
    EventHandle
    scheduleAt(Time when, F &&f, const char *tag = "")
    {
        PreparedEvent p = prepareEvent(when, tag);
        p.slot->fn.emplace(std::forward<F>(f));
        return p.handle;
    }

    /** Schedule callable @p f to run @p delay after the current time. */
    template <typename F>
    EventHandle
    scheduleIn(Time delay, F &&f, const char *tag = "")
    {
        return scheduleAt(now_ + delay, std::forward<F>(f), tag);
    }

    /** Cancel a previously scheduled event. No-op if already fired. */
    void cancel(EventHandle &h);

    /**
     * Run events until the queue is empty or simulated time would pass
     * @p deadline. Time is left at min(deadline, last event time).
     *
     * @return number of events executed.
     */
    std::uint64_t runUntil(Time deadline);

    /** Run until the queue is completely empty. */
    std::uint64_t runAll(std::uint64_t max_events = UINT64_MAX);

    /**
     * @name Shard-engine stepping (sim::ShardEngine).
     *
     * A sharded run interleaves local events with cross-island message
     * deliveries, so the engine needs finer-grained control than
     * runUntil(): peek at the next event time, run strictly below a
     * safe bound (without pinning now_ to it — the bound is a moving
     * horizon, not a deadline), and advance the clock to a message's
     * due time before invoking its sink.
     * @{
     */

    /** Time of the next live event, or Time::max() when empty. */
    Time nextEventTime();

    /**
     * Execute events with when < @p bound (strictly — an event at
     * exactly the bound may race an incoming cross-island message and
     * must wait for the horizon to move). Unlike runUntil(), now_ is
     * left at the last executed event.
     *
     * @return number of events executed.
     */
    std::uint64_t runBefore(Time bound);

    /**
     * Advance the clock to @p t without executing anything: the engine
     * is about to deliver a cross-island message due at @p t.
     * @pre now() <= t <= nextEventTime().
     */
    void advanceTo(Time t);

    /** @} */

    /**
     * @name Fluid-mode warp (sim/fluid.hpp, core::FluidDirector).
     *
     * A verified-periodic simulation is fast-forwarded by shifting the
     * clock and the *periodic* subset of pending events by a whole
     * number of periods while absolute deadlines (sampling timelines,
     * policy timers) stay put. The director pairs snapshotPending()
     * with fluidWarp() inside one event callback, with no intervening
     * schedule/cancel, so the key indices stay valid.
     * @{
     */

    /** One live pending event as the director classifies it. */
    struct PendingEvent
    {
        Time when;
        std::uint64_t seq;
        const char *tag;
        std::uint32_t key_index;    ///< position in the heap array
    };

    /** Snapshot live pending events (heap array order, cancelled
     *  entries skipped). */
    void snapshotPending(std::vector<PendingEvent> &out) const;

    /** Deadline of the innermost runUntil() (Time::max() outside). */
    Time runDeadline() const { return run_deadline_; }

    /**
     * Advance now() by @p delta and shift the heap keys listed in
     * @p shift_keys (key_index values from an immediately preceding
     * snapshotPending()) by the same amount; keys not listed keep
     * their absolute due times. Rebuilds the heap — pop order is a
     * pure function of the (when, seq) keys, so any heap shape yields
     * the same deterministic schedule. Panics if the warp would leave
     * an unshifted event in the past.
     */
    void fluidWarp(Time delta, const std::vector<std::uint32_t> &shift_keys);

    /** @} */

    bool empty() const { return live_events_ == 0; }
    std::uint64_t executed() const { return executed_; }

    /** Scheduled-but-not-yet-fired (and not cancelled) events. */
    std::uint64_t liveEvents() const { return live_events_; }

    /** Cancelled events whose heap entries have not been popped yet. */
    std::size_t cancelledPending() const { return cancelled_pending_; }

    /**
     * Running FNV-1a hash of (when, seq, tag) of every executed event.
     * Equal seeds + equal workloads must yield equal digests.
     */
    std::uint64_t orderDigest() const { return digest_; }

    void setObserver(Observer *o) { observer_ = o; }
    Observer *observer() const { return observer_; }

    /** @name Execution hooks (multiple allowed, called in add order). @{ */
    void addExecHook(ExecHook *h);
    void removeExecHook(ExecHook *h);
    std::size_t execHookCount() const { return exec_hooks_.size(); }
    /** @} */

  private:
    /**
     * What the heap actually sifts: a 24-byte POD. The payload
     * (callback, tag) stays put in the slot store, so percolation is
     * three word moves instead of a std::function relocation.
     *
     * Keys are totally ordered — seq is unique — so any min-heap shape
     * pops the exact same sequence; the heap arity is a pure
     * performance choice and cannot affect the order digest.
     */
    struct HeapKey
    {
        Time when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Min-first comparison: earlier time, then FIFO by seq. */
    static bool
    keyBefore(const HeapKey &a, const HeapKey &b)
    {
        if (a.when != b.when) return a.when < b.when;
        return a.seq < b.seq;
    }

    /**
     * One entry-store slot. A slot is Pending from scheduleAt() until
     * its heap key is popped; Running while its callback executes (so
     * a cancel() from inside the event itself is a no-op, matching the
     * pre-slot-map semantics); Cancelled in between cancel() and the
     * purge; Free on the free list otherwise. Each Pending/Cancelled
     * slot has exactly one key in the heap, so a popped key's slot
     * state alone says whether the event is live. gen increments on
     * every free, invalidating stale EventHandles.
     */
    struct Slot
    {
        InplaceFn fn;
        const char *tag = nullptr;
        std::uint32_t gen = 0;
        enum class State : std::uint8_t { Free, Pending, Running,
                                          Cancelled };
        State state = State::Free;
        std::uint32_t next_free = EventHandle::kNone;
    };

    /**
     * Slots are stored in fixed 256-slot chunks so their addresses are
     * stable: executeTop() can invoke the callback in place (no move
     * per event) even when the callback schedules events that grow the
     * store.
     */
    static constexpr std::uint32_t kSlotChunkShift = 8;
    static constexpr std::uint32_t kSlotChunkSize = 1u << kSlotChunkShift;
    static constexpr std::uint32_t kSlotChunkMask = kSlotChunkSize - 1;

    Slot &
    slotRef(std::uint32_t idx)
    {
        return slot_chunks_[idx >> kSlotChunkShift][idx & kSlotChunkMask];
    }
    const Slot &
    slotRef(std::uint32_t idx) const
    {
        return slot_chunks_[idx >> kSlotChunkShift][idx & kSlotChunkMask];
    }

    /** Memoized FNV-1a contribution of one tag (see foldTag()). */
    struct TagFold
    {
        std::uint64_t pow;          ///< kPrime^strlen(tag)
        std::uint64_t add[256];     ///< indexed by digest's low byte
    };

    /**
     * Everything scheduleAt() does except constructing the callable:
     * past-check, seq assignment, slot allocation, heap push. Split
     * out so the template wrapper stays tiny at every call site. The
     * returned slot's fn is empty until the caller emplaces it — fine,
     * since events only run from runUntil()/runAll().
     */
    struct PreparedEvent
    {
        Slot *slot;
        EventHandle handle;
    };
    PreparedEvent prepareEvent(Time when, const char *tag);

    std::uint32_t allocSlot();
    void freeSlot(Slot &s, std::uint32_t idx);
    void heapPush(HeapKey k);
    void heapRemoveTop();
    /** Full heapify after fluidWarp()'s selective key shift. */
    void heapRebuild();
    /** Pop-and-free every cancelled key at the heap top. */
    void purgeCancelledTop();
    /** Execute the top event. @pre heap top is a Pending slot. */
    void executeTop();
    void foldDigest(Time when, std::uint64_t seq, const char *tag);
    const TagFold &tagFold(const char *tag);

    std::vector<HeapKey> heap_;    ///< 4-ary min-heap, root at [0]
    std::vector<std::unique_ptr<Slot[]>> slot_chunks_;
    std::uint32_t slot_count_ = 0;
    std::uint32_t free_head_ = EventHandle::kNone;
    Time now_;
    Time run_deadline_ = Time::max();
    std::uint64_t next_seq_ = 1;
    std::uint64_t executed_ = 0;
    std::uint64_t live_events_ = 0;
    std::size_t cancelled_pending_ = 0;
    std::uint64_t digest_ = 0xcbf29ce484222325ull;    // FNV-1a offset basis
    const void *last_tag_ = nullptr;
    const TagFold *last_fold_ = nullptr;
    std::unordered_map<const void *, std::unique_ptr<TagFold>> tag_folds_;
    Observer *observer_ = nullptr;
    std::vector<ExecHook *> exec_hooks_;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_EVENT_QUEUE_HPP
