/**
 * @file
 * CpuServer: a FIFO work-conserving server modelling one hardware
 * thread (SMT context) of the testbed machine.
 *
 * All CPU consumption in the simulation — guest packet processing,
 * hypervisor VM-exit handling, device-model emulation, netback packet
 * copies — is expressed as work items submitted to a CpuServer. The
 * server executes items one at a time at its clock rate, so saturation
 * (e.g. the single-threaded netback of Section 6.5) appears naturally
 * as queueing delay, and per-component CPU utilization is simply the
 * accumulated busy time of the servers a component runs on.
 *
 * Work is attributed to string tags ("guest", "xen", "dom0", ...) so
 * benches can report the same breakdowns the paper's figures use.
 */

#ifndef SRIOV_SIM_CPU_SERVER_HPP
#define SRIOV_SIM_CPU_SERVER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fluid.hpp"
#include "sim/inplace_fn.hpp"
#include "sim/ring_buf.hpp"
#include "sim/time.hpp"

namespace sriov::sim {

/** Snapshot of a server's cycle accounting, for windowed utilization. */
struct CpuSnapshot
{
    Time busy;
    Time when;
    std::map<std::string, double> cycles_by_tag;
};

class CpuServer
{
  public:
    /**
     * Observation tap for executed work spans (obs::ChromeTraceWriter
     * draws them as per-CPU track slices). Called at work completion
     * with the service interval [start, end]; charge()-d work is
     * instantaneous and produces no span. One tap per server; the tap
     * must outlive the server or be detached first. Disabled cost: one
     * branch per completed work item.
     */
    class SpanTap
    {
      public:
        virtual ~SpanTap() = default;

        virtual void onCpuSpan(const CpuServer &cpu, const std::string &tag,
                               Time start, Time end) = 0;
    };

    CpuServer(EventQueue &eq, std::string name, double hz);

    CpuServer(const CpuServer &) = delete;
    CpuServer &operator=(const CpuServer &) = delete;

    const std::string &name() const { return name_; }
    double hz() const { return hz_; }

    /**
     * Submit @p cycles of work attributed to @p tag. @p on_done (may be
     * empty) runs when the work completes, i.e. after queueing plus
     * service time.
     */
    void submit(double cycles, std::string_view tag,
                InplaceFn on_done = {});

    /**
     * Account @p cycles as consumed instantly (no serialization, no
     * completion latency). Used for fine-grained costs that are small
     * relative to the event granularity, where modelling queueing would
     * add nothing but events.
     */
    void charge(double cycles, std::string_view tag);

    /** Number of work items waiting (excluding the one in service). */
    std::size_t queueDepth() const { return queue_.size(); }
    bool busyNow() const { return in_service_; }

    /** Cumulative busy time since construction. */
    Time busyTime() const { return busy_; }

    CpuSnapshot snapshot() const;

    /**
     * Utilization in [0,1] over the window between @p before and now.
     * Greater than 1 is impossible for submit()-ed work but charge()-d
     * work can oversubscribe; callers treat >1 as saturation.
     */
    double utilizationSince(const CpuSnapshot &before) const;

    /** Cycles consumed under @p tag since @p before. */
    double cyclesSince(const CpuSnapshot &before,
                       const std::string &tag) const;

    void setSpanTap(SpanTap *t) { span_tap_ = t; }
    SpanTap *spanTap() const { return span_tap_; }

    /** Fluid-mode state walk (sim/fluid.hpp): busy time and per-tag
     *  cycles are linear per period; in-flight work is phase-invariant. */
    void fluidVisit(FluidVisitor &v);

    /**
     * Is any queued or in-service item attributed to one of the @p n
     * @p tags? A fluid warp shifts every visited time-point but cannot
     * rewrite values captured inside completion closures, so the fluid
     * director refuses to warp while work whose closure captures
     * per-packet data (netback's grant-copy batches) is in flight.
     */
    bool hasWorkTagged(const char *const *tags, std::size_t n) const;

  private:
    struct Work
    {
        double cycles;
        std::string tag;
        InplaceFn on_done;
        Time start;
    };

    void startNext();
    void finishCurrent();
    /** Accumulator cell for @p tag (creates it on first use). */
    double &tagCycles(std::string_view tag);

    EventQueue &eq_;
    std::string name_;
    double hz_;
    RingBuf<Work> queue_;
    /**
     * The item in service. Kept as a member so the completion event
     * captures only `this` (8 bytes inline in InplaceFn) instead of
     * moving the tag string and completion closure into the event —
     * the server is strictly FIFO, so at most one item is in service.
     */
    Work current_;
    bool in_service_ = false;
    Time busy_;
    /**
     * Per-tag cycle accounting. A server sees a handful of distinct
     * tags over a whole run, but charges one on every packet — a flat
     * array scanned linearly (plus a last-hit cache, since bursts
     * charge the same tag repeatedly) beats a std::map node walk.
     * snapshot() converts to a map on the cold query path.
     */
    std::vector<std::pair<std::string, double>> cycles_by_tag_;
    std::size_t last_tag_idx_ = 0;
    SpanTap *span_tap_ = nullptr;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_CPU_SERVER_HPP
