/**
 * @file
 * Lightweight statistics: named counters and time series.
 *
 * Components hold Counter members; benches read them. Series record
 * (time, value) samples for timeline figures (Figs. 20/21).
 */

#ifndef SRIOV_SIM_STATS_HPP
#define SRIOV_SIM_STATS_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/fluid.hpp"
#include "sim/time.hpp"

namespace sriov::sim {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** Fluid-mode slot (sim/fluid.hpp): one linear counter. */
    void fluidVisit(FluidVisitor &v, const char *name)
    {
        v.u64(name, value_);
    }

  private:
    std::uint64_t value_ = 0;
};

/** Accumulator for additive quantities (bytes, cycles). */
class Accumulator
{
  public:
    void add(double v) { value_ += v; ++samples_; }
    double value() const { return value_; }
    std::uint64_t samples() const { return samples_; }
    double mean() const { return samples_ ? value_ / double(samples_) : 0; }
    void reset() { value_ = 0; samples_ = 0; }

    void fluidVisit(FluidVisitor &v, const char *name)
    {
        v.f64(name, value_);
        v.u64(name, samples_);
    }

  private:
    double value_ = 0;
    std::uint64_t samples_ = 0;
};

/** Time series of samples, for timeline plots. */
class Series
{
  public:
    void record(Time t, double v) { samples_.emplace_back(t, v); }
    const std::vector<std::pair<Time, double>> &samples() const
    {
        return samples_;
    }
    void clear() { samples_.clear(); }

  private:
    std::vector<std::pair<Time, double>> samples_;
};

/** Windowed rate helper: count since last snapshot over elapsed time. */
class RateWindow
{
  public:
    void add(double v) { total_ += v; }

    /**
     * Rate per second over [mark, now]; then re-marks the window.
     *
     * A zero-width (or backwards) window returns 0 and does NOT
     * re-mark: counts added since the last mark stay in the open
     * window instead of being silently discarded, so a caller that
     * samples twice at the same instant loses nothing.
     */
    double
    take(Time now)
    {
        Time w = now - mark_;
        if (w <= Time())
            return 0.0;
        double rate = (total_ - marked_total_) / w.toSeconds();
        mark_ = now;
        marked_total_ = total_;
        return rate;
    }

    double total() const { return total_; }

    void fluidVisit(FluidVisitor &v, const char *name)
    {
        v.f64(name, total_);
        v.f64(name, marked_total_);
        v.time(name, mark_);
    }

  private:
    double total_ = 0;
    double marked_total_ = 0;
    Time mark_;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_STATS_HPP
