#include "sim/deferred_timer.hpp"

#include "sim/log.hpp"

namespace sriov::sim {

void
DeferredTimer::armAt(Time deadline)
{
    if (deadline < eq_.now())
        panic("DeferredTimer(%s): deadline in the past", tag_);
    armed_ = true;
    deadline_ = deadline;
    if (has_event_) {
        if (deadline >= event_when_)
            return;    // defer: the in-flight event will re-check
        eq_.cancel(pending_);
        has_event_ = false;
    }
    schedule(deadline);
}

void
DeferredTimer::disarm()
{
    armed_ = false;
    if (has_event_) {
        eq_.cancel(pending_);
        has_event_ = false;
    }
}

void
DeferredTimer::schedule(Time when)
{
    event_when_ = when;
    has_event_ = true;
    pending_ = eq_.scheduleAt(when, [this]() { onFire(); }, tag_);
}

void
DeferredTimer::onFire()
{
    has_event_ = false;
    if (!armed_)
        return;    // disarmed after the event became uncancellable
    if (deadline_ > eq_.now()) {
        // Deadline moved out while we were in flight: fire later.
        ++deferrals_;
        schedule(deadline_);
        return;
    }
    armed_ = false;
    if (fn_)
        fn_();    // may re-arm
}

} // namespace sriov::sim
