/**
 * @file
 * Shard-count switch: how many event cores drive the simulation.
 *
 * 0 (the default) is the legacy single-EventQueue engine — every
 * existing bench, test and golden digest runs exactly as before. A
 * value N >= 1 asks the testbed to partition the topology into
 * host/NIC islands (one EventQueue per island, cross-island traffic
 * only over nic::Wire) and to drive them with a sim::ShardEngine on
 * min(N, islands) worker threads. N == 1 is the sequential oracle:
 * the same partition and the same per-island event streams, executed
 * by the calling thread — reports and digests are byte-identical for
 * every N >= 1 (see DESIGN.md §13).
 *
 * Like sim::setThinning, the switch is process-global and read once at
 * Testbed construction — benches set it (via --shards / SRIOV_SHARDS)
 * before building anything, and tests use ShardScope.
 */

#ifndef SRIOV_SIM_SHARD_HPP
#define SRIOV_SIM_SHARD_HPP

namespace sriov::sim {

/** Requested event-core count (0 = legacy single-queue engine). */
unsigned shardCount();

/** Flip the global switch. Call before constructing components. */
void setShardCount(unsigned n);

/** RAII override for tests: forces a count, restores on destruction. */
class ShardScope
{
  public:
    explicit ShardScope(unsigned n) : prev_(shardCount())
    {
        setShardCount(n);
    }
    ~ShardScope() { setShardCount(prev_); }
    ShardScope(const ShardScope &) = delete;
    ShardScope &operator=(const ShardScope &) = delete;

  private:
    unsigned prev_;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_SHARD_HPP
