#include "sim/stats.hpp"

// Header-only components; this translation unit anchors the library.
