#include "sim/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace sriov::sim {

namespace {
LogLevel g_level = LogLevel::Warn;

void
vprint(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}
} // namespace

void setLogLevel(LogLevel lvl) { g_level = lvl; }
LogLevel logLevel() { return g_level; }

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vprint("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (g_level < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (g_level < LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    vprint("debug", fmt, ap);
    va_end(ap);
}

} // namespace sriov::sim
