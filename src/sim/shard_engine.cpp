#include "sim/shard_engine.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "sim/fluid.hpp"
#include "sim/log.hpp"

namespace sriov::sim {

namespace {

constexpr std::int64_t kPsMax = std::numeric_limits<std::int64_t>::max();

std::int64_t
satAdd(std::int64_t a, std::int64_t b)
{
    return (a > kPsMax - b) ? kPsMax : a + b;
}

std::uint64_t
foldBytes(std::uint64_t h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

ShardEngine::ShardEngine(unsigned workers)
    : workers_(workers == 0 ? 1 : workers)
{
}

ShardEngine::~ShardEngine() = default;

unsigned
ShardEngine::addIsland(EventQueue &eq)
{
    Island isl;
    isl.eq = &eq;
    isl.promise = std::make_unique<Promise>();
    islands_.push_back(std::move(isl));
    return unsigned(islands_.size() - 1);
}

void
ShardEngine::connect(ShardEdge &edge, unsigned from, unsigned to,
                     Time lookahead)
{
    if (from >= islands_.size() || to >= islands_.size())
        fatal("shard engine: connect to unregistered island");
    if (from == to)
        fatal("shard engine: self edge (keep it island-local)");
    if (lookahead <= Time())
        fatal("shard engine: lookahead must be positive");
    InEdge e;
    e.edge = &edge;
    e.src_promise = &islands_[from].promise->v;
    e.from = from;
    e.lookahead_ps = lookahead.picos();
    islands_[to].in.push_back(e);
}

Time
ShardEngine::promiseOf(unsigned island) const
{
    return Time::ps(
        islands_.at(island).promise->v.load(std::memory_order_acquire));
}

void
// simlint:allow(fluid-boundary): possession hand-off, no mutation
ShardEngine::setIslandLedger(unsigned island, FlowLedger *ledger)
{
    islands_.at(island).ledger = ledger;
}

// simlint:allow(fluid-boundary): possession hand-off, no mutation
FlowLedger *
ShardEngine::islandLedger(unsigned island) const
{
    return islands_.at(island).ledger;
}

EventQueue &
ShardEngine::islandQueue(unsigned island)
{
    return *islands_.at(island).eq;
}

void
ShardEngine::fluidWarp(Time delta)
{
    const std::int64_t d = delta.picos();
    for (Island &isl : islands_) {
        const std::int64_t p =
            isl.promise->v.load(std::memory_order_relaxed);
        if (p > 0 && p < kPsMax)
            isl.promise->v.store(satAdd(p, d),
                                 std::memory_order_relaxed);
        for (InEdge &e : isl.in) {
            if (e.floor_ps > 0 && e.floor_ps < kPsMax)
                e.floor_ps = satAdd(e.floor_ps, d);
        }
    }
}

bool
ShardEngine::forcesSequential() const
{
    for (const Island &isl : islands_) {
        if (isl.eq->observer() != nullptr
            || isl.eq->execHookCount() != 0) {
            return true;
        }
    }
    return false;
}

std::uint64_t
ShardEngine::executedEvents() const
{
    std::uint64_t n = 0;
    for (const Island &isl : islands_)
        n += isl.eq->executed();
    return n;
}

std::uint64_t
ShardEngine::foldedDigest() const
{
    // FNV-1a over the per-island digests, folded in island-index
    // order: the partition is fixed for every shard count, so this is
    // the sharded run's order fingerprint.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const Island &isl : islands_)
        h = foldBytes(h, isl.eq->orderDigest());
    return h;
}

std::uint64_t
ShardEngine::advanceIsland(Island &isl, Time deadline, bool *moved)
{
    // Everything this slice executes — local events and the delivery
    // cascades of channel heads — reports fluid sends/transitions into
    // the owning island's ledger via the thread-local override.
    ThreadLedgerScope ledger_scope(isl.ledger);
    EventQueue &eq = *isl.eq;
    const std::int64_t dl = deadline.picos();
    std::uint64_t n = 0;

    for (;;) {
        const std::int64_t t_local = eq.nextEventTime().picos();

        // Refresh every inbound floor. Promise first, channel second:
        // see the header's memory-ordering argument for why an empty
        // probe then makes promise + lookahead a safe floor.
        std::int64_t min_floor = kPsMax;
        int best = -1;
        std::int64_t best_due = kPsMax;
        for (std::size_t i = 0; i < isl.in.size(); ++i) {
            InEdge &e = isl.in[i];
            const std::int64_t p =
                e.src_promise->load(std::memory_order_acquire);
            const Time head = e.edge->headDue();
            std::int64_t f;
            if (head != Time::max()) {
                f = head.picos();
                e.nonempty = true;
                if (f < best_due) {    // strict: earlier edge wins ties
                    best = int(i);
                    best_due = f;
                }
            } else {
                f = satAdd(p, e.lookahead_ps);
                e.nonempty = false;
            }
            if (f > e.floor_ps) {
                e.floor_ps = f;
                if (moved != nullptr)
                    *moved = true;
            }
            min_floor = std::min(min_floor, e.floor_ps);
        }

        // Publish the promise before executing anything: a lower bound
        // on this island's next execution time, so everything it sends
        // from here on is due at or after promise + edge lookahead.
        // Capped at the deadline, which keeps floors finite and makes
        // "floor > deadline" the done condition.
        const std::int64_t promise =
            std::min(std::min(t_local, min_floor), dl);
        if (promise > isl.promise->v.load(std::memory_order_relaxed)) {
            isl.promise->v.store(promise, std::memory_order_release);
            if (moved != nullptr)
                *moved = true;
        }

        // Message-first on due == local-event ties; among edges the
        // registration order breaks due ties deterministically.
        if (best >= 0 && best_due <= std::min(t_local, dl)) {
            bool safe = true;
            for (std::size_t j = 0; j < isl.in.size(); ++j) {
                if (int(j) == best)
                    continue;
                const InEdge &o = isl.in[j];
                if (o.floor_ps > best_due)
                    continue;
                // A nonempty later edge may tie (we win by index); an
                // empty edge at the floor might still produce an
                // equal-due message, so wait for its floor to pass.
                if (o.nonempty && o.floor_ps == best_due
                    && int(j) > best) {
                    continue;
                }
                safe = false;
                break;
            }
            if (safe) {
                eq.advanceTo(Time::ps(best_due));
                isl.in[best].edge->deliverHead();
                ++n;
                continue;
            }
        }

        // Local events strictly below the horizon (and at most the
        // deadline). min_floor <= best_due whenever a head is visible,
        // so the tie rule above is never bypassed.
        const std::int64_t bound = std::min(min_floor, satAdd(dl, 1));
        if (t_local < bound) {
            const std::uint64_t k = eq.runBefore(Time::ps(bound));
            n += k;
            if (k > 0)
                continue;
            break;    // defensive: nothing live below the bound
        }

        // Blocked. Done once both the local queue and every floor have
        // passed the deadline (messages due later stay queued for the
        // next run, like frames still in flight at a window edge).
        if (t_local > dl && min_floor > dl) {
            isl.done = true;
            eq.runUntil(deadline);    // executes nothing; pins now()
        }
        break;
    }
    return n;
}

std::uint64_t
ShardEngine::runUntil(Time deadline)
{
    if (islands_.empty())
        return 0;
    const std::uint64_t before = executedEvents();

    for (Island &isl : islands_) {
        isl.done = false;
        // Re-arm: the island clock (== the previous deadline) is a
        // safe promise for everything it may still send.
        const std::int64_t now = isl.eq->now().picos();
        if (now > isl.promise->v.load(std::memory_order_relaxed))
            isl.promise->v.store(now, std::memory_order_relaxed);
    }

    // Component structure: islands connected by edges must exchange
    // promises every lookahead round, so a component is the natural
    // scheduling unit — splitting one across workers turns each creep
    // round into cross-core cache traffic (or worse, a scheduler
    // wait), and sweeping all components round-robin on one thread
    // evicts each pair's working set between rounds. Components are
    // keyed by their least island index; the grouping affects wall
    // clock only — the schedule depends on simulated times alone.
    std::vector<unsigned> comp(islands_.size());
    for (std::size_t i = 0; i < comp.size(); ++i)
        comp[i] = unsigned(i);
    auto root = [&comp](unsigned i) {
        while (comp[i] != i) {
            comp[i] = comp[comp[i]];
            i = comp[i];
        }
        return i;
    };
    for (std::size_t i = 0; i < islands_.size(); ++i) {
        for (const InEdge &e : islands_[i].in) {
            unsigned a = root(unsigned(i));
            unsigned b = root(e.from);
            if (a != b)
                comp[std::max(a, b)] = std::min(a, b);
        }
    }
    std::vector<std::vector<unsigned>> comps;    // grouped islands
    {
        std::vector<int> slot(islands_.size(), -1);
        for (std::size_t i = 0; i < islands_.size(); ++i) {
            unsigned r = root(unsigned(i));
            if (slot[r] < 0) {
                slot[r] = int(comps.size());
                comps.emplace_back();
            }
            comps[std::size_t(slot[r])].push_back(unsigned(i));
        }
    }

    const unsigned w = std::min(workers_, islandCount());
    if (w <= 1 || forcesSequential()) {
        // Sequential oracle: same merge loop, calling thread, one
        // component at a time until it stalls (for a self-contained
        // component, that means done) so each pair's lookahead creep
        // runs in cache instead of being interleaved with every other
        // component's. The schedule depends only on simulated times,
        // so this executes the identical per-island sequences as any
        // worker count.
        for (;;) {
            bool all_done = true;
            for (const std::vector<unsigned> &group : comps) {
                for (;;) {
                    bool group_done = true;
                    bool progress = false;
                    for (unsigned i : group) {
                        Island &isl = islands_[i];
                        if (isl.done)
                            continue;
                        bool moved = false;
                        progress |=
                            advanceIsland(isl, deadline, &moved) > 0
                            || moved;
                        group_done = group_done && isl.done;
                    }
                    if (group_done)
                        break;
                    all_done = false;
                    if (!progress)
                        break;    // waits on another component
                }
            }
            if (all_done)
                break;
        }
    } else {
        // Deterministic round-robin of whole components over workers —
        // in this repo's topology (per-port server/client pairs) the
        // workers then share nothing and the speedup is bounded only
        // by component balance. A hub topology (the multi-host ToR
        // relay) fuses everything into fewer components than workers;
        // then the only parallelism left is *inside* a component, so
        // fall back to round-robin of islands — promises and floors
        // are already cross-thread safe, and the idle/yield loop below
        // absorbs the waits. Either grouping affects wall clock only.
        std::vector<std::vector<unsigned>> owned(w);
        if (comps.size() >= w) {
            for (std::size_t c = 0; c < comps.size(); ++c) {
                for (unsigned i : comps[c])
                    owned[c % w].push_back(i);
            }
        } else {
            for (std::size_t i = 0; i < islands_.size(); ++i)
                owned[i % w].push_back(unsigned(i));
        }

        std::vector<std::thread> threads;
        threads.reserve(w);
        for (unsigned t = 0; t < w; ++t) {
            threads.emplace_back([this, deadline,
                                  mine = std::move(owned[t])]() {
                unsigned idle = 0;
                for (;;) {
                    bool all_done = true;
                    bool progress = false;
                    for (unsigned i : mine) {
                        Island &isl = islands_[i];
                        if (isl.done)
                            continue;
                        bool moved = false;
                        progress |=
                            advanceIsland(isl, deadline, &moved) > 0
                            || moved;
                        all_done = all_done && isl.done;
                    }
                    if (all_done)
                        return;
                    // Promise/floor movement counts as progress: a
                    // creep round executes nothing but must not be
                    // mistaken for "stuck". Yield only on sustained
                    // stillness (waiting on another worker's island —
                    // only possible for a cross-worker component).
                    if (progress)
                        idle = 0;
                    else if (++idle >= 16)
                        std::this_thread::yield();
                }
            });
        }
        for (std::thread &th : threads)
            th.join();
    }
    return executedEvents() - before;
}

} // namespace sriov::sim
