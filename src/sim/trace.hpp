/**
 * @file
 * Trace: a lightweight, category-filtered event trace for the
 * simulator, in the spirit of gem5's DPRINTF flags.
 *
 * Components call SRIOV_TRACE(category, "fmt", ...) at interesting
 * points (interrupt delivery, drops, migration rounds, DNIS
 * transitions). Tracing is off by default and costs one branch; when a
 * category is enabled, records land in a bounded ring buffer that
 * tests and debugging sessions can inspect or dump.
 */

#ifndef SRIOV_SIM_TRACE_HPP
#define SRIOV_SIM_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sriov::sim {

enum class TraceCat : unsigned
{
    Irq = 0,      ///< interrupt delivery / EOI / mask paths
    Nic,          ///< classification, DMA, drops
    Driver,       ///< driver lifecycle, ITR retuning
    Backend,      ///< netback / VMDq backend activity
    Migration,    ///< pre-copy rounds, stop-and-copy, DNIS
    Count,
};

const char *traceCatName(TraceCat c);

struct TraceRecord
{
    Time when;
    TraceCat cat;
    std::string text;
};

class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 4096;

    /** The process-wide tracer used by the SRIOV_TRACE macro. */
    static Tracer &global();

    explicit Tracer(std::size_t capacity = kDefaultCapacity)
        : capacity_(capacity)
    {}

    void enable(TraceCat c) { enabled_[unsigned(c)] = true; }
    void disable(TraceCat c) { enabled_[unsigned(c)] = false; }
    void enableAll();
    void disableAll();
    bool enabled(TraceCat c) const { return enabled_[unsigned(c)]; }
    bool anyEnabled() const;

    /**
     * @name Timestamp clock.
     *
     * The tracer reads `*clock_` when recording; the pointee is owned
     * by whoever binds it (in practice an EventQueue's `now_`). To
     * keep Tracer::global() from dangling into a destroyed queue —
     * testbeds are routinely built and torn down per bench case — the
     * owner must disown the clock on destruction; EventQueue does both
     * automatically via adoptClock()/disownClock().
     *
     * Adopt/disown are atomic compare-exchanges: parallel bench
     * sweeps (core::SweepRunner) construct one EventQueue per worker
     * thread, and every one of them races to offer its clock to the
     * global tracer. First wins; the rest are no-ops. (Recording
     * itself stays single-threaded — trace capture forces a
     * sequential sweep.)
     * @{
     */

    /** Bind explicitly (harness override; replaces any binding). */
    void
    setClock(const Time *now)
    {
        clock_.store(now, std::memory_order_relaxed);
    }

    /** Bind @p now only if no clock is currently bound. */
    void
    adoptClock(const Time *now)
    {
        const Time *expected = nullptr;
        clock_.compare_exchange_strong(expected, now,
                                       std::memory_order_relaxed);
    }

    /** Clear the binding iff @p now is the bound clock. */
    void
    disownClock(const Time *now)
    {
        const Time *expected = now;
        clock_.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_relaxed);
    }

    /** The currently bound clock (nullptr = timestamps read 0). */
    const Time *clock() const
    {
        return clock_.load(std::memory_order_relaxed);
    }

    /** @} */

    void record(TraceCat c, std::string text);
    void recordf(TraceCat c, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    std::size_t size() const { return records_.size(); }
    std::uint64_t totalRecorded() const { return total_; }
    std::uint64_t droppedRecords() const { return dropped_; }
    const std::deque<TraceRecord> &records() const { return records_; }
    void clear();

    /** Records of one category, oldest first. */
    std::vector<const TraceRecord *> ofCategory(TraceCat c) const;

    /** Multi-line rendering ("[12.5us] nic: ..."). */
    std::string toString() const;

  private:
    std::size_t capacity_;
    bool enabled_[unsigned(TraceCat::Count)] = {};
    std::atomic<const Time *> clock_{nullptr};
    std::deque<TraceRecord> records_;
    std::uint64_t total_ = 0;
    std::uint64_t dropped_ = 0;
};

/** Cheap guarded trace: evaluates arguments only when enabled. */
#define SRIOV_TRACE(cat, ...)                                            \
    do {                                                                 \
        auto &t_ = ::sriov::sim::Tracer::global();                       \
        if (t_.enabled(cat))                                             \
            t_.recordf(cat, __VA_ARGS__);                                \
    } while (0)

} // namespace sriov::sim

#endif // SRIOV_SIM_TRACE_HPP
