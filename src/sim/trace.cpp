#include "sim/trace.hpp"

#include <cstdarg>
#include <cstdio>

namespace sriov::sim {

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::Irq: return "irq";
      case TraceCat::Nic: return "nic";
      case TraceCat::Driver: return "driver";
      case TraceCat::Backend: return "backend";
      case TraceCat::Migration: return "migration";
      case TraceCat::Count: break;
    }
    return "?";
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enableAll()
{
    for (auto &e : enabled_)
        e = true;
}

void
Tracer::disableAll()
{
    for (auto &e : enabled_)
        e = false;
}

bool
Tracer::anyEnabled() const
{
    for (bool e : enabled_) {
        if (e)
            return true;
    }
    return false;
}

void
Tracer::record(TraceCat c, std::string text)
{
    if (!enabled_[unsigned(c)])
        return;
    ++total_;
    if (records_.size() >= capacity_) {
        records_.pop_front();
        ++dropped_;
    }
    const Time *clk = clock();
    Time when = clk != nullptr ? *clk : Time();
    records_.push_back(TraceRecord{when, c, std::move(text)});
}

void
Tracer::recordf(TraceCat c, const char *fmt, ...)
{
    if (!enabled_[unsigned(c)])
        return;
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    record(c, buf);
}

void
Tracer::clear()
{
    records_.clear();
    total_ = 0;
    dropped_ = 0;
}

std::vector<const TraceRecord *>
Tracer::ofCategory(TraceCat c) const
{
    std::vector<const TraceRecord *> out;
    for (const auto &r : records_) {
        if (r.cat == c)
            out.push_back(&r);
    }
    return out;
}

std::string
Tracer::toString() const
{
    std::string out;
    for (const auto &r : records_) {
        out += "[" + r.when.toString() + "] ";
        out += traceCatName(r.cat);
        out += ": " + r.text + "\n";
    }
    return out;
}

} // namespace sriov::sim
