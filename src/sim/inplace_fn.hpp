/**
 * @file
 * InplaceFn: the event queue's callback type — a move-only void()
 * callable with fixed inline capture storage.
 *
 * std::function heap-allocates any capture above its small-buffer
 * limit (16 bytes on libstdc++), which puts one malloc/free pair on
 * the per-event hot path for almost every real event in the simulator
 * (a wire delivery captures a 56-byte Packet). InplaceFn instead
 * embeds an 80-byte buffer — sized so every per-packet and per-CPU
 * event in the tree stores inline — and routes the rare oversized
 * capture (migration round state, multi-object closures) through a
 * thread-local free-list pool, so even that path settles into zero
 * allocations at steady state.
 *
 * The type is deliberately minimal: void() signature only, move-only,
 * no target_type/allocator machinery. Relocation (vector growth in
 * the queue's slot map, moving the callback out before invocation)
 * must not throw, so a capture is stored inline only when it is
 * nothrow-move-constructible; everything else is pooled, where
 * relocation is a pointer copy.
 */

#ifndef SRIOV_SIM_INPLACE_FN_HPP
#define SRIOV_SIM_INPLACE_FN_HPP

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace sriov::sim {

namespace detail {

/** @name Thread-local free-list pool for oversized captures. @{ */

struct CapturePoolStats
{
    std::uint64_t allocs = 0;    ///< blocks handed out (incl. reuses)
    std::uint64_t fresh = 0;     ///< blocks that hit operator new
    std::uint64_t frees = 0;     ///< blocks returned
    std::uint64_t live = 0;      ///< blocks currently handed out
};

void *captureAlloc(std::size_t bytes);
void captureFree(void *p, std::size_t bytes) noexcept;
/** This thread's pool counters (tests, allocation audits). */
CapturePoolStats capturePoolStats();

/** @} */

} // namespace detail

class InplaceFn
{
  public:
    /**
     * Inline capture capacity in bytes. The issue targets ~64; 80
     * covers the two hottest real captures — wire delivery
     * (this + direction + 56-byte Packet = 72) and CpuServer
     * completion (this only, after the work-item slimming) — with a
     * static_assert below pinning the layout so a regression that
     * pushes them to the pool fails to compile, not silently slows.
     */
    static constexpr std::size_t kCapacity = 80;
    static constexpr std::size_t kAlign = 16;
    /** Guard against absurd captures (capture a pointer instead). */
    static constexpr std::size_t kMaxCapture = 1 << 16;

    /** True when a decayed callable type @p D stores inline. */
    template <typename D>
    static constexpr bool kStoresInline =
        sizeof(D) <= kCapacity && alignof(D) <= kAlign
        && std::is_nothrow_move_constructible_v<D>;

    InplaceFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, InplaceFn>
                  && std::is_invocable_r_v<void, std::remove_cvref_t<F> &>>>
    InplaceFn(F &&f)    // NOLINT: implicit by design (lambda → event)
    {
        constructFrom(std::forward<F>(f));
    }

    /**
     * Destroy the current callable (if any) and construct @p f in
     * place — lets the event queue build a capture directly in its
     * slot store, with no intermediate InplaceFn temporary or move.
     */
    template <typename F>
    void
    emplace(F &&f)
    {
        if constexpr (std::is_same_v<std::remove_cvref_t<F>, InplaceFn>) {
            *this = std::forward<F>(f);
        } else {
            reset();
            constructFrom(std::forward<F>(f));
        }
    }

    InplaceFn(InplaceFn &&o) noexcept : ops_(o.ops_)
    {
        if (ops_ != nullptr) {
            relocateFrom(o);
            o.ops_ = nullptr;
        }
    }

    InplaceFn &
    operator=(InplaceFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_ != nullptr) {
                relocateFrom(o);
                o.ops_ = nullptr;
            }
        }
        return *this;
    }

    InplaceFn(const InplaceFn &) = delete;
    InplaceFn &operator=(const InplaceFn &) = delete;

    ~InplaceFn() { reset(); }

    /** Destroy the stored callable (frees a pooled block). */
    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            if (ops_->needs_destroy)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /** @pre bool(*this) — invoking an empty/moved-from fn is a bug. */
    void operator()() { ops_->invoke(buf_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** True when the stored callable lives in the inline buffer. */
    bool
    storedInline() const noexcept
    {
        return ops_ != nullptr && ops_->inline_stored;
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool inline_stored;
        /**
         * Relocation is a plain byte copy: either the capture is
         * trivially copyable + destructible, or it is pooled (the
         * buffer holds just the block pointer). This keeps the two
         * per-event moves (into the slot map, out before invocation)
         * free of indirect calls for almost every event in the tree.
         */
        bool trivial_relocate;
        bool needs_destroy;
    };

    /** @pre *this is empty. */
    template <typename F>
    void
    constructFrom(F &&f)
    {
        using D = std::remove_cvref_t<F>;
        static_assert(sizeof(D) <= kMaxCapture,
                      "event capture is enormous; capture a pointer to "
                      "heap state instead");
        static_assert(alignof(D) <= alignof(std::max_align_t),
                      "over-aligned event captures are not supported");
        if constexpr (kStoresInline<D>) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>;
        } else {
            void *block = detail::captureAlloc(sizeof(D));
            ::new (block) D(std::forward<F>(f));
            ::new (static_cast<void *>(buf_)) void *(block);
            ops_ = &pooledOps<D>;
        }
    }

    /** @pre ops_ == o.ops_ != nullptr; does not touch o.ops_. */
    void
    relocateFrom(InplaceFn &o) noexcept
    {
        if (ops_->trivial_relocate)
            __builtin_memcpy(buf_, o.buf_, kCapacity);
        else
            ops_->relocate(buf_, o.buf_);
    }

    template <typename D>
    static constexpr Ops inlineOps = {
        [](void *s) { (*std::launder(reinterpret_cast<D *>(s)))(); },
        [](void *dst, void *src) noexcept {
            D *from = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
        },
        [](void *s) noexcept {
            std::launder(reinterpret_cast<D *>(s))->~D();
        },
        true,
        std::is_trivially_copyable_v<D>
            && std::is_trivially_destructible_v<D>,
        !std::is_trivially_destructible_v<D>,
    };

    template <typename D>
    static constexpr Ops pooledOps = {
        [](void *s) {
            (*static_cast<D *>(*std::launder(reinterpret_cast<void **>(s))))();
        },
        [](void *dst, void *src) noexcept {
            ::new (dst) void *(*std::launder(reinterpret_cast<void **>(src)));
        },
        [](void *s) noexcept {
            D *p = static_cast<D *>(
                *std::launder(reinterpret_cast<void **>(s)));
            p->~D();
            detail::captureFree(p, sizeof(D));
        },
        false,
        true,    // buffer holds only the block pointer
        true,
    };

    alignas(kAlign) unsigned char buf_[kCapacity];
    const Ops *ops_ = nullptr;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_INPLACE_FN_HPP
