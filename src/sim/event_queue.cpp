#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace sriov::sim {

EventHandle
EventQueue::scheduleAt(Time when, std::function<void()> fn)
{
    if (when < now_)
        panic("event scheduled in the past: %s < %s",
              when.toString().c_str(), now_.toString().c_str());
    std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq, seq, std::move(fn)});
    ++live_events_;
    return EventHandle(seq);
}

EventHandle
EventQueue::scheduleIn(Time delay, std::function<void()> fn)
{
    return scheduleAt(now_ + delay, std::move(fn));
}

void
EventQueue::cancel(EventHandle &h)
{
    if (h.valid()) {
        cancelled_.push_back(h.id_);
        h.clear();
    }
}

bool
EventQueue::isCancelled(std::uint64_t id)
{
    auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end())
        return false;
    // Swap-and-pop: cancellation lists stay tiny (pending timers only).
    *it = cancelled_.back();
    cancelled_.pop_back();
    return true;
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        --live_events_;
        if (isCancelled(e.id))
            continue;
        now_ = e.when;
        ++executed_;
        e.fn();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::runUntil(Time deadline)
{
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
        if (runOne())
            ++n;
    }
    if (now_ < deadline)
        now_ = deadline;
    return n;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

} // namespace sriov::sim
