#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace sriov::sim {

EventQueue::EventQueue()
{
    Tracer::global().adoptClock(&now_);
}

EventQueue::~EventQueue()
{
    Tracer::global().disownClock(&now_);
}

void
EventQueue::addExecHook(ExecHook *h)
{
    if (h != nullptr
        && std::find(exec_hooks_.begin(), exec_hooks_.end(), h)
               == exec_hooks_.end())
        exec_hooks_.push_back(h);
}

void
EventQueue::removeExecHook(ExecHook *h)
{
    exec_hooks_.erase(
        std::remove(exec_hooks_.begin(), exec_hooks_.end(), h),
        exec_hooks_.end());
}

EventHandle
EventQueue::scheduleAt(Time when, std::function<void()> fn, const char *tag)
{
    if (when < now_) {
        if (observer_ == nullptr)
            panic("event scheduled in the past: %s < %s",
                  when.toString().c_str(), now_.toString().c_str());
        observer_->onSchedulePast(when, now_);
        when = now_;
    }
    std::uint64_t seq = next_seq_++;
    heap_.push(Entry{when, seq, seq, tag, std::move(fn)});
    pending_.insert(seq);
    ++live_events_;
    return EventHandle(seq);
}

EventHandle
EventQueue::scheduleIn(Time delay, std::function<void()> fn, const char *tag)
{
    return scheduleAt(now_ + delay, std::move(fn), tag);
}

void
EventQueue::cancel(EventHandle &h)
{
    // Only events that are still pending are recorded as cancelled;
    // stale handles (already fired) must not grow cancelled_ — scale
    // experiments cancel throttle timers for hours of simulated time.
    if (h.valid() && pending_.erase(h.id_) > 0) {
        cancelled_.insert(h.id_);
        --live_events_;
    }
    h.clear();
}

void
EventQueue::purgeCancelledTop()
{
    while (!heap_.empty() && cancelled_.erase(heap_.top().id) > 0)
        heap_.pop();
}

void
EventQueue::foldDigest(const Entry &e)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    auto fold = [this](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            digest_ ^= (v >> (8 * i)) & 0xff;
            digest_ *= kPrime;
        }
    };
    fold(std::uint64_t(e.when.picos()));
    fold(e.seq);
    for (const char *p = e.tag; p != nullptr && *p != '\0'; ++p) {
        digest_ ^= std::uint64_t(static_cast<unsigned char>(*p));
        digest_ *= kPrime;
    }
}

bool
EventQueue::runOne()
{
    purgeCancelledTop();
    if (heap_.empty())
        return false;
    Entry e = heap_.top();
    heap_.pop();
    pending_.erase(e.id);
    --live_events_;
    if (observer_ != nullptr)
        observer_->onExecute(e.when, now_, e.seq, e.tag);
    now_ = e.when;
    ++executed_;
    foldDigest(e);
    if (!exec_hooks_.empty()) {
        // Iterate by index: the callback (or a hook) may add or remove
        // hooks mid-event, e.g. a tracer detaching at a record limit.
        for (std::size_t i = 0; i < exec_hooks_.size(); ++i)
            exec_hooks_[i]->onEventStart(e.when, e.seq, e.tag);
        e.fn();
        for (std::size_t i = 0; i < exec_hooks_.size(); ++i)
            exec_hooks_[i]->onEventEnd(e.when, e.seq, e.tag);
    } else {
        e.fn();
    }
    return true;
}

std::uint64_t
EventQueue::runUntil(Time deadline)
{
    std::uint64_t n = 0;
    for (purgeCancelledTop();
         !heap_.empty() && heap_.top().when <= deadline;
         purgeCancelledTop()) {
        if (runOne())
            ++n;
    }
    if (now_ < deadline)
        now_ = deadline;
    return n;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

} // namespace sriov::sim
