#include "sim/event_queue.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace sriov::sim {

EventQueue::EventQueue()
{
    Tracer::global().adoptClock(&now_);
}

EventQueue::~EventQueue()
{
    Tracer::global().disownClock(&now_);
}

void
EventQueue::addExecHook(ExecHook *h)
{
    if (h != nullptr
        && std::find(exec_hooks_.begin(), exec_hooks_.end(), h)
               == exec_hooks_.end())
        exec_hooks_.push_back(h);
}

void
EventQueue::removeExecHook(ExecHook *h)
{
    exec_hooks_.erase(
        std::remove(exec_hooks_.begin(), exec_hooks_.end(), h),
        exec_hooks_.end());
}

std::uint32_t
EventQueue::allocSlot()
{
    if (free_head_ != EventHandle::kNone) {
        std::uint32_t idx = free_head_;
        free_head_ = slotRef(idx).next_free;
        return idx;
    }
    if (slot_count_ == EventHandle::kNone)
        panic("event queue slot store overflow");
    if ((slot_count_ & kSlotChunkMask) == 0)
        // Default-init, not make_unique's value-init: the latter
        // zeroes every slot's 80-byte capture buffer (28 KiB per
        // chunk) that the first schedule overwrites anyway.
        slot_chunks_.emplace_back(new Slot[kSlotChunkSize]);
    return slot_count_++;
}

void
EventQueue::freeSlot(Slot &s, std::uint32_t idx)
{
    s.fn.reset();
    s.tag = nullptr;
    s.state = Slot::State::Free;
    ++s.gen;    // stale handles to this slot die here
    s.next_free = free_head_;
    free_head_ = idx;
}

void
EventQueue::heapPush(HeapKey k)
{
    // Percolate a hole up instead of swapping: each level is one
    // 24-byte copy. Scheduling in time order (the common pattern)
    // terminates at the leaf immediately.
    heap_.push_back(k);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        std::size_t p = (i - 1) >> 2;
        if (!keyBefore(k, heap_[p]))
            break;
        heap_[i] = heap_[p];
        i = p;
    }
    heap_[i] = k;
}

void
EventQueue::heapRemoveTop()
{
    // 4-ary sift-down: half the levels of a binary heap and all four
    // children share a pair of cache lines, which is where the pop
    // cost lives for the multi-thousand-event heaps of the scale runs.
    HeapKey last = heap_.back();
    heap_.pop_back();
    std::size_t n = heap_.size();
    if (n == 0)
        return;
    std::size_t i = 0;
    for (;;) {
        std::size_t c = 4 * i + 1;
        if (c >= n)
            break;
        std::size_t m = c;
        if (c + 4 <= n) {
            // Full fan-out (the common case on a large heap): an
            // unrolled min-of-four keeps the scan branch-predictable.
            if (keyBefore(heap_[c + 1], heap_[m])) m = c + 1;
            if (keyBefore(heap_[c + 2], heap_[m])) m = c + 2;
            if (keyBefore(heap_[c + 3], heap_[m])) m = c + 3;
        } else {
            for (std::size_t j = c + 1; j < n; ++j)
                if (keyBefore(heap_[j], heap_[m]))
                    m = j;
        }
        if (!keyBefore(heap_[m], last))
            break;
        heap_[i] = heap_[m];
        i = m;
    }
    heap_[i] = last;
}

EventQueue::PreparedEvent
EventQueue::prepareEvent(Time when, const char *tag)
{
    if (when < now_) {
        if (observer_ == nullptr)
            panic("event scheduled in the past: %s < %s",
                  when.toString().c_str(), now_.toString().c_str());
        observer_->onSchedulePast(when, now_);
        when = now_;
    }
    std::uint64_t seq = next_seq_++;
    std::uint32_t idx = allocSlot();
    Slot &s = slotRef(idx);
    s.tag = tag;
    s.state = Slot::State::Pending;
    heapPush(HeapKey{when, seq, idx});
    ++live_events_;
    return PreparedEvent{&s, EventHandle(idx, s.gen)};
}

void
EventQueue::cancel(EventHandle &h)
{
    // Only still-pending events count as cancelled; stale handles
    // (already fired, slot possibly reused under a new generation)
    // must be a no-op — scale experiments cancel throttle timers for
    // hours of simulated time.
    if (h.valid() && h.slot_ < slot_count_) {
        Slot &s = slotRef(h.slot_);
        if (s.state == Slot::State::Pending && s.gen == h.gen_) {
            s.state = Slot::State::Cancelled;
            s.fn.reset();    // release captures (and pool blocks) now
            --live_events_;
            ++cancelled_pending_;
        }
    }
    h.clear();
}

void
EventQueue::purgeCancelledTop()
{
    // With no cancellations outstanding every heap key is live; skip
    // the per-event slot-state probe entirely (the common case).
    if (cancelled_pending_ == 0)
        return;
    while (!heap_.empty()) {
        std::uint32_t idx = heap_[0].slot;
        Slot &s = slotRef(idx);
        if (s.state != Slot::State::Cancelled)
            break;
        heapRemoveTop();
        freeSlot(s, idx);
        --cancelled_pending_;
    }
}

const EventQueue::TagFold &
EventQueue::tagFold(const char *tag)
{
    // One event commonly repeats its predecessor's tag (bursts of
    // wire/CPU events); a one-entry MRU skips even the map lookup.
    if (tag == last_tag_)
        return *last_fold_;
    auto it = tag_folds_.find(tag);
    if (it == tag_folds_.end()) {
        constexpr std::uint64_t kPrime = 0x100000001b3ull;
        auto tf = std::make_unique<TagFold>();
        std::uint64_t pow = 1;
        for (const char *p = tag; *p != '\0'; ++p)
            pow *= kPrime;
        tf->pow = pow;
        // The byte-wise FNV-1a fold d -> (d ^ b) * kPrime mod 2^64 is
        // affine in d once the trajectory of d's low byte is fixed,
        // and that trajectory depends only on the initial low byte:
        // XOR with an 8-bit value touches only the low byte, and the
        // low byte of a product mod 2^64 depends only on the low
        // bytes of its factors. So folding a whole tag collapses to
        //   d' = d * kPrime^len + add[d & 0xff]
        // with a 256-entry table per tag. Identical bit-for-bit to
        // the byte loop (pinned by SimDigest tests).
        for (std::uint32_t lo = 0; lo < 256; ++lo) {
            std::uint64_t d = lo;
            for (const char *p = tag; *p != '\0'; ++p) {
                d ^= std::uint64_t(static_cast<unsigned char>(*p));
                d *= kPrime;
            }
            tf->add[lo] = d - lo * pow;
        }
        it = tag_folds_.emplace(tag, std::move(tf)).first;
    }
    last_tag_ = tag;
    last_fold_ = it->second.get();
    return *last_fold_;
}

void
EventQueue::foldDigest(Time when, std::uint64_t seq, const char *tag)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ull;
    auto fold = [this](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            digest_ ^= (v >> (8 * i)) & 0xff;
            digest_ *= kPrime;
        }
    };
    fold(std::uint64_t(when.picos()));
    fold(seq);
    if (tag == nullptr || *tag == '\0')
        return;
    const TagFold &tf = tagFold(tag);
    digest_ = digest_ * tf.pow + tf.add[digest_ & 0xff];
}

void
EventQueue::executeTop()
{
    HeapKey k = heap_[0];
    heapRemoveTop();
    // Chunked slot storage never relocates, so the callback runs in
    // place — no per-event move even when it schedules more events.
    // Running state makes a self-cancel from inside the callback a
    // no-op (the event has already fired).
    Slot &s = slotRef(k.slot);
    const char *tag = s.tag;
    s.state = Slot::State::Running;
    --live_events_;
    if (observer_ != nullptr)
        observer_->onExecute(k.when, now_, k.seq, tag);
    now_ = k.when;
    ++executed_;
    foldDigest(k.when, k.seq, tag);
    if (!exec_hooks_.empty()) {
        // Iterate by index: the callback (or a hook) may add or remove
        // hooks mid-event, e.g. a tracer detaching at a record limit.
        for (std::size_t i = 0; i < exec_hooks_.size(); ++i)
            exec_hooks_[i]->onEventStart(k.when, k.seq, tag);
        s.fn();
        for (std::size_t i = 0; i < exec_hooks_.size(); ++i)
            exec_hooks_[i]->onEventEnd(k.when, k.seq, tag);
    } else {
        s.fn();
    }
    freeSlot(s, k.slot);
}

std::uint64_t
EventQueue::runUntil(Time deadline)
{
    // Single purge point per iteration: the purge both exposes the
    // next live event for the deadline check and establishes
    // executeTop()'s precondition.
    Time prev_deadline = run_deadline_;
    run_deadline_ = deadline;
    std::uint64_t n = 0;
    for (purgeCancelledTop();
         !heap_.empty() && heap_[0].when <= deadline;
         purgeCancelledTop()) {
        executeTop();
        ++n;
    }
    if (now_ < deadline)
        now_ = deadline;
    run_deadline_ = prev_deadline;
    return n;
}

void
EventQueue::snapshotPending(std::vector<PendingEvent> &out) const
{
    out.clear();
    out.reserve(heap_.size());
    for (std::uint32_t i = 0; i < heap_.size(); ++i) {
        const HeapKey &k = heap_[i];
        const Slot &s = slotRef(k.slot);
        if (s.state != Slot::State::Pending)
            continue;
        out.push_back(PendingEvent{k.when, k.seq, s.tag, i});
    }
}

void
EventQueue::heapRebuild()
{
    // Bottom-up 4-ary heapify; cold path (once per fluid warp).
    if (heap_.size() < 2)
        return;
    for (std::size_t r = (heap_.size() - 2) / 4 + 1; r-- > 0;) {
        HeapKey k = heap_[r];
        std::size_t i = r;
        std::size_t n = heap_.size();
        for (;;) {
            std::size_t c = 4 * i + 1;
            if (c >= n)
                break;
            std::size_t m = c;
            for (std::size_t j = c + 1; j < n && j < c + 4; ++j)
                if (keyBefore(heap_[j], heap_[m]))
                    m = j;
            if (!keyBefore(heap_[m], k))
                break;
            heap_[i] = heap_[m];
            i = m;
        }
        heap_[i] = k;
    }
}

void
EventQueue::fluidWarp(Time delta,
                      const std::vector<std::uint32_t> &shift_keys)
{
    if (delta < Time())
        panic("fluid warp backwards");
    for (std::uint32_t idx : shift_keys) {
        if (idx >= heap_.size())
            panic("fluid warp: stale heap index");
        heap_[idx].when += delta;
    }
    now_ += delta;
    heapRebuild();
    if (!heap_.empty() && heap_[0].when < now_)
        panic("fluid warp left an absolute event in the past: %s < %s",
              heap_[0].when.toString().c_str(),
              now_.toString().c_str());
}

Time
EventQueue::nextEventTime()
{
    purgeCancelledTop();
    return heap_.empty() ? Time::max() : heap_[0].when;
}

std::uint64_t
EventQueue::runBefore(Time bound)
{
    std::uint64_t n = 0;
    for (purgeCancelledTop();
         !heap_.empty() && heap_[0].when < bound;
         purgeCancelledTop()) {
        executeTop();
        ++n;
    }
    return n;
}

void
EventQueue::advanceTo(Time t)
{
    if (t < now_)
        panic("event queue: advanceTo into the past");
    now_ = t;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t n = 0;
    while (n < max_events) {
        purgeCancelledTop();
        if (heap_.empty())
            break;
        executeTop();
        ++n;
    }
    return n;
}

} // namespace sriov::sim
