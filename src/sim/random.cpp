#include "sim/random.hpp"

#include <cmath>

namespace sriov::sim {

std::uint64_t
Random::next()
{
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
Random::uniform()
{
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
}

std::uint64_t
Random::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    return lo + next() % (hi - lo + 1);
}

double
Random::exponential(double mean)
{
    double u = uniform();
    if (u <= 0.0)
        u = 1e-300;
    return -mean * std::log(u);
}

} // namespace sriov::sim
