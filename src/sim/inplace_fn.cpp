#include "sim/inplace_fn.hpp"

#include <vector>

namespace sriov::sim::detail {

namespace {

/**
 * Size-class free lists for oversized captures. Classes are powers of
 * two from 128 bytes to 4 KiB; anything larger falls through to plain
 * operator new/delete (no simulator capture is that big — the
 * static_assert in InplaceFn catches runaways at 64 KiB).
 *
 * The pool is thread-local: parallel bench sweeps run one EventQueue
 * per worker thread, and a lock-free-by-construction pool keeps the
 * oversized-capture path allocation-free and contention-free at
 * steady state on every worker independently.
 */
constexpr std::size_t kMinClass = 128;
constexpr std::size_t kMaxClass = 4096;
constexpr std::size_t kClassCount = 6;    // 128..4096
/** Retention cap per class; beyond this, frees go to the heap. */
constexpr std::size_t kMaxRetained = 1024;

struct Pool
{
    std::vector<void *> free_lists[kClassCount];
    CapturePoolStats stats;

    ~Pool()
    {
        for (auto &list : free_lists)
            for (void *p : list)
                ::operator delete(p);
    }
};

Pool &
pool()
{
    thread_local Pool p;
    return p;
}

/** Class index for @p bytes, or kClassCount when unpooled. */
std::size_t
classIndex(std::size_t bytes)
{
    std::size_t cls = kMinClass;
    for (std::size_t i = 0; i < kClassCount; ++i, cls <<= 1) {
        if (bytes <= cls)
            return i;
    }
    return kClassCount;
}

std::size_t
classBytes(std::size_t idx)
{
    return kMinClass << idx;
}

} // namespace

void *
captureAlloc(std::size_t bytes)
{
    Pool &p = pool();
    ++p.stats.allocs;
    ++p.stats.live;
    std::size_t idx = classIndex(bytes);
    if (idx < kClassCount && !p.free_lists[idx].empty()) {
        void *block = p.free_lists[idx].back();
        p.free_lists[idx].pop_back();
        return block;
    }
    ++p.stats.fresh;
    return ::operator new(idx < kClassCount ? classBytes(idx) : bytes);
}

void
captureFree(void *block, std::size_t bytes) noexcept
{
    Pool &p = pool();
    ++p.stats.frees;
    --p.stats.live;
    std::size_t idx = classIndex(bytes);
    if (idx < kClassCount && p.free_lists[idx].size() < kMaxRetained) {
        p.free_lists[idx].push_back(block);
        return;
    }
    ::operator delete(block);
}

CapturePoolStats
capturePoolStats()
{
    return pool().stats;
}

} // namespace sriov::sim::detail
