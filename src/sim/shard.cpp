#include "sim/shard.hpp"

namespace sriov::sim {

namespace {
unsigned g_shards = 0;
} // namespace

unsigned
shardCount()
{
    return g_shards;
}

void
setShardCount(unsigned n)
{
    g_shards = n;
}

} // namespace sriov::sim
