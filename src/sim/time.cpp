#include "sim/time.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace sriov::sim {

Time
Time::seconds(double v)
{
    return Time(std::int64_t(std::llround(v * 1e12)));
}

Time
Time::cycles(double cycles, double hz)
{
    return Time(std::int64_t(std::llround(cycles / hz * 1e12)));
}

Time
Time::transfer(double bits, double bits_per_sec)
{
    return Time(std::int64_t(std::llround(bits / bits_per_sec * 1e12)));
}

std::string
Time::toString() const
{
    char buf[64];
    double abs_ps = double(ps_ < 0 ? -ps_ : ps_);
    if (abs_ps >= 1e12) {
        std::snprintf(buf, sizeof(buf), "%.6gs", double(ps_) * 1e-12);
    } else if (abs_ps >= 1e9) {
        std::snprintf(buf, sizeof(buf), "%.6gms", double(ps_) * 1e-9);
    } else if (abs_ps >= 1e6) {
        std::snprintf(buf, sizeof(buf), "%.6gus", double(ps_) * 1e-6);
    } else if (abs_ps >= 1e3) {
        std::snprintf(buf, sizeof(buf), "%.6gns", double(ps_) * 1e-3);
    } else {
        std::snprintf(buf, sizeof(buf), "%" PRId64 "ps", ps_);
    }
    return buf;
}

} // namespace sriov::sim
