/**
 * @file
 * ShardEngine: conservative parallel execution of island-partitioned
 * simulations.
 *
 * A sharded topology is a set of islands — disjoint component groups,
 * each owning one EventQueue — whose only interaction is timestamped
 * messages over registered ShardEdges (in this repo: the two
 * directions of a nic::Wire). Every edge carries a *lookahead* L > 0:
 * the sender guarantees that a message pushed while it executes
 * simulated time t has a due time >= t + L (for a wire, L is the
 * propagation delay — serialization only adds to it).
 *
 * Synchronization is conservative and barrier-free (a CMB-style
 * promise-clock scheme):
 *
 *  - each island publishes a monotone atomic *promise* — a lower bound
 *    on the simulated time of anything it will execute (and therefore
 *    send) in the future;
 *  - a receiver derives a per-edge *floor* — no future message on the
 *    edge can be due before it: the head's due time when the channel
 *    is nonempty, max(previous floor, sender promise + L) otherwise;
 *  - an island may execute a local event only while it is strictly
 *    below every inbound floor, and may deliver a channel head only
 *    when its due time is <= the next local event and strictly below
 *    every other edge's floor.
 *
 * Because the execute/deliver decision depends only on *simulated*
 * times (ties broken message-first, then by edge registration order),
 * each island executes the identical event sequence for any worker
 * count and any host-thread interleaving — stale promises only delay
 * visibility, never reorder it. That is the determinism contract:
 * per-island order digests (and anything folded from them in island
 * order) are byte-identical from --shards=1 to --shards=N.
 *
 * Memory ordering: a sender stores its promise (release) before
 * pushing messages; a receiver loads the promise (acquire) *before*
 * probing the channel. If the probe then finds the channel empty,
 * every push sequenced before that promise store is visible, so any
 * message it missed was pushed after the store and is due >= promise
 * + L — the empty-channel floor is safe.
 *
 * Progress: when islands idle, promises creep by at least one
 * lookahead per round trip (the classic lookahead creep), so runs
 * terminate without null messages. Promises are capped at the current
 * deadline; an island is done when its local queue and every floor
 * have passed the deadline.
 *
 * Observers and execution hooks (invariant checkers, Chrome-trace
 * writers, profilers) are single-stream consumers: if any island
 * queue has one installed, the run degrades to the calling thread.
 * The schedule is thread-count-invariant, so results are unchanged.
 */

#ifndef SRIOV_SIM_SHARD_ENGINE_HPP
#define SRIOV_SIM_SHARD_ENGINE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace sriov::sim {

// simlint:allow(fluid-boundary): forward declaration, no ledger access
class FlowLedger;

/**
 * Receiver-side view of a cross-island channel. The engine only needs
 * to peek at the head's due time and to deliver it; payload transport
 * is the concrete ShardChannel<T>'s business.
 */
class ShardEdge
{
  public:
    virtual ~ShardEdge() = default;

    /** Due time of the oldest undelivered message; Time::max() when
     *  none is visible. Consumer thread only. */
    virtual Time headDue() const = 0;

    /** Advance the target queue's clock is the engine's job; this just
     *  pops the head and invokes the sink. Consumer thread only. */
    virtual void deliverHead() = 0;
};

/**
 * Bounded SPSC channel of (due, payload) messages with monotone
 * non-decreasing due times (a wire direction is a FIFO server, so its
 * delivery instants are monotone by construction — which is what makes
 * headDue() the channel's minimum).
 *
 * push() spins when the ring is full; the consumer always drains
 * (deliveries never wait on the producer), so the wait is bounded.
 */
template <typename T>
class ShardChannel final : public ShardEdge
{
  public:
    using Sink = void (*)(void *ctx, Time due, const T &payload);

    explicit ShardChannel(std::size_t capacity = 8192)
        : buf_(roundPow2(capacity)), mask_(buf_.size() - 1)
    {
    }

    /** Bind the delivery callback (the receiving wire half). */
    void
    onDeliver(Sink sink, void *ctx)
    {
        sink_ = sink;
        ctx_ = ctx;
    }

    /** Producer side: enqueue a message due at @p due. */
    void
    push(Time due, const T &payload)
    {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        while (t - head_.load(std::memory_order_acquire) >= buf_.size()) {
            // Receiver is behind; it drains unconditionally, so spin.
        }
        Entry &e = buf_[std::size_t(t) & mask_];
        e.due_ps = due.picos();
        e.payload = payload;
        tail_.store(t + 1, std::memory_order_release);
    }

    Time
    headDue() const override
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_.load(std::memory_order_acquire))
            return Time::max();
        return Time::ps(buf_[std::size_t(h) & mask_].due_ps);
    }

    void
    deliverHead() override
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        const Entry &e = buf_[std::size_t(h) & mask_];
        sink_(ctx_, Time::ps(e.due_ps), e.payload);
        head_.store(h + 1, std::memory_order_release);
    }

    bool
    pending() const
    {
        return head_.load(std::memory_order_relaxed)
            != tail_.load(std::memory_order_acquire);
    }

    struct Entry
    {
        std::int64_t due_ps = 0;
        T payload{};
    };

    /** @name Quiescent-barrier access for the fluid warp.
     *
     * Only legal while no producer or consumer thread is running (the
     * WarpCoordinator's barrier): the in-flight entries are then plain
     * data, visited as fluid slots (due times are linear in the warp
     * delta, payloads are invariants) and shifted in lockstep with the
     * island clocks. @{ */
    std::size_t
    pendingCount() const
    {
        return std::size_t(tail_.load(std::memory_order_acquire)
                           - head_.load(std::memory_order_acquire));
    }

    Entry &
    pendingEntry(std::size_t i)
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        return buf_[std::size_t(h + i) & mask_];
    }
    /** @} */

  private:
  static std::size_t
    roundPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p <<= 1;
        return p;
    }

    std::vector<Entry> buf_;
    std::size_t mask_;
    std::atomic<std::uint64_t> head_{0};
    std::atomic<std::uint64_t> tail_{0};
    Sink sink_ = nullptr;
    void *ctx_ = nullptr;
};

class ShardEngine
{
  public:
    /** @p workers: requested worker threads (clamped to the island
     *  count at run time; 1 = sequential oracle on the caller). */
    explicit ShardEngine(unsigned workers);
    ~ShardEngine();

    ShardEngine(const ShardEngine &) = delete;
    ShardEngine &operator=(const ShardEngine &) = delete;

    /** Register an island. Index order is the digest fold order. */
    unsigned addIsland(EventQueue &eq);

    unsigned islandCount() const { return unsigned(islands_.size()); }
    unsigned workers() const { return workers_; }

    /**
     * Register @p edge as carrying messages from island @p from to
     * island @p to, with minimum message latency @p lookahead (> 0).
     * Call before the first run; edge order per target island is the
     * deterministic tie-break order.
     */
    void connect(ShardEdge &edge, unsigned from, unsigned to,
                 Time lookahead);

    /**
     * The sender-side lookahead contract for island @p from: a message
     * pushed while the island executes simulated time t must be due at
     * or after t + min lookahead. Senders (nic::Wire) assert it per
     * push; see DESIGN.md §13.
     */
    Time promiseOf(unsigned island) const;

    /**
     * Run every island until @p deadline (inclusive, like
     * EventQueue::runUntil); on return all island clocks are pinned to
     * the deadline and no message due <= deadline is undelivered.
     *
     * @return total events executed across islands (message deliveries
     *         are not events; the cascades they trigger are).
     */
    std::uint64_t runUntil(Time deadline);

    /** Sum of executed() over the island queues. */
    std::uint64_t executedEvents() const;

    /**
     * Fold of the per-island order digests in island-index order (the
     * sharded analogue of EventQueue::orderDigest()). Well-defined for
     * any shard count because the partition — not the worker count —
     * decides what runs where.
     */
    std::uint64_t foldedDigest() const;

    /** Would the next run stay on the calling thread? True when any
     *  island queue has an Observer or ExecHooks installed. */
    bool forcesSequential() const;

    /**
     * Give island @p island its own flow ledger. While the island
     * executes (advanceIsland and the delivery cascades it triggers),
     * the ledger is installed as the thread-local fluidLedger()
     * override, so every datapath send/transition lands in the ledger
     * of the island that owns the component. Null detaches.
     */
    // simlint:allow(fluid-boundary): declarations; settle sites in .cpp
    void setIslandLedger(unsigned island, FlowLedger *ledger);
    // simlint:allow(fluid-boundary): declarations; settle sites in .cpp
    FlowLedger *islandLedger(unsigned island) const;

    /** The island's event queue (for barrier-time warp surgery). */
    EventQueue &islandQueue(unsigned island);

    /**
     * Shift the engine's synchronization clocks by @p delta after a
     * fluid warp applied at a quiescent barrier (all island clocks and
     * channel due times already shifted by the caller). Promises re-arm
     * from island now() at the next runUntil and stale-low floors are
     * merely conservative, but shifting both keeps every clock in the
     * engine on the same timeline — no special cases in the invariants.
     * Caller must guarantee no worker threads are running.
     */
    void fluidWarp(Time delta);

  private:
    struct InEdge
    {
        ShardEdge *edge = nullptr;
        const std::atomic<std::int64_t> *src_promise = nullptr;
        std::int64_t lookahead_ps = 0;
        std::int64_t floor_ps = 0;    ///< monotone cache
        bool nonempty = false;        ///< head visible this round
        unsigned from = 0;            ///< source island index
    };

    /** Promise clock on its own cache line: it is written by the owner
     *  island and polled by every neighbour, so sharing a line with
     *  another island's state would turn each poll into a miss. */
    struct alignas(64) Promise
    {
        std::atomic<std::int64_t> v{0};
    };

    struct Island
    {
        EventQueue *eq = nullptr;
        std::vector<InEdge> in;
        // Heap-boxed so island registration never moves the atomic
        // out from under a channel floor reader.
        std::unique_ptr<Promise> promise;
        // simlint:allow(fluid-boundary): possession only; settle sites
        FlowLedger *ledger = nullptr;
        bool done = false;
    };

    /** One scheduling round on @p isl; returns events+deliveries.
     *  @p moved is set when the round advanced a promise or floor —
     *  sync progress that executes nothing but must not count as
     *  "stuck", or workers yield once per lookahead creep round and
     *  the run degrades to scheduler latency. */
    std::uint64_t advanceIsland(Island &isl, Time deadline, bool *moved);

    std::vector<Island> islands_;
    unsigned workers_;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_SHARD_ENGINE_HPP
