/**
 * @file
 * DeferredTimer: a re-armable deadline timer that defers instead of
 * rescheduling.
 *
 * The classic pattern for a timer whose deadline keeps moving out
 * (retransmission timeouts, interrupt-throttle windows, watchdogs) is
 * cancel + reschedule on every extension — O(log n) heap churn per
 * move for a timer that usually never fires at its original deadline.
 * This class keeps at most one event in the queue and simply updates
 * the target deadline when the new deadline is later: the in-flight
 * event re-checks the deadline when it fires and, if the deadline
 * moved, reschedules itself once for the new target (the timing-wheel
 * "lazy deletion" trick). Arming *earlier* than the pending event
 * still cancels and reschedules, so the callback never fires late.
 *
 * Fire times are bit-identical to the naive pattern: the callback runs
 * exactly at the armed deadline, with the event tag given at
 * construction, so the event-order digest of a converted client only
 * changes by the removed churn.
 */

#ifndef SRIOV_SIM_DEFERRED_TIMER_HPP
#define SRIOV_SIM_DEFERRED_TIMER_HPP

#include "sim/event_queue.hpp"
#include "sim/fluid.hpp"
#include "sim/inplace_fn.hpp"

namespace sriov::sim {

class DeferredTimer
{
  public:
    DeferredTimer(EventQueue &eq, const char *tag) : eq_(eq), tag_(tag) {}
    ~DeferredTimer() { disarm(); }
    DeferredTimer(const DeferredTimer &) = delete;
    DeferredTimer &operator=(const DeferredTimer &) = delete;

    /** Set (or replace) the callback run when the deadline is reached.
     *  Built in place in the stored InplaceFn — no temporary, same
     *  forwarding idiom as EventQueue::scheduleAt. */
    template <typename F>
    void
    setCallback(F &&fn)
    {
        fn_.emplace(std::forward<F>(fn));
    }

    /**
     * Arm for @p deadline. If armed already, the deadline moves (out:
     * deferred, no queue traffic; in: cancel + reschedule). Re-arming
     * from inside the callback is the normal periodic-timer idiom.
     */
    void armAt(Time deadline);
    void armIn(Time delay) { armAt(eq_.now() + delay); }

    /**
     * Disarm. Any in-flight event becomes a spurious no-op wakeup (it
     * is cancelled when possible, i.e. when not currently executing).
     */
    void disarm();

    bool armed() const { return armed_; }
    /** Deadline of the armed timer (meaningless when !armed()). */
    Time deadline() const { return deadline_; }

    /** Fires avoided by deferral (telemetry, not part of the model). */
    std::uint64_t deferrals() const { return deferrals_; }

    /** Fluid-mode state walk (sim/fluid.hpp): the armed deadline and
     *  the in-flight event instant ride the periodic schedule (the
     *  heap shift moves the event; this keeps the members in step).
     *  Disarmed deadlines are stale and deliberately unvisited. */
    void
    fluidVisit(FluidVisitor &v)
    {
        v.inv(tag_, armed_ ? 1 : 0);
        v.inv(tag_, has_event_ ? 1 : 0);
        if (armed_)
            v.time(tag_, deadline_);
        if (has_event_)
            v.time(tag_, event_when_);
        v.u64(tag_, deferrals_);
    }

  private:
    void schedule(Time when);
    void onFire();

    EventQueue &eq_;
    const char *tag_;
    InplaceFn fn_;
    EventHandle pending_{};
    Time event_when_;      ///< when the pending event fires
    Time deadline_;        ///< when the callback should run
    bool armed_ = false;
    bool has_event_ = false;
    std::uint64_t deferrals_ = 0;
};

} // namespace sriov::sim

#endif // SRIOV_SIM_DEFERRED_TIMER_HPP
