/**
 * @file
 * Fluid (flow-level) simulation mode: the switch, the state-visitation
 * protocol and the per-flow steadiness ledger.
 *
 * Event thinning (sim/thinning.hpp) removes events *within* a burst;
 * fluid mode removes the bursts themselves. When every flow of a
 * testbed has settled into an exactly periodic schedule (CBR senders
 * on a fixed grid, the ITR raise pattern locked to it), the simulation
 * state S(t) satisfies S(t + P) = shift_P(S(t)) for the flow-group
 * hyperperiod P: every monotone counter advances by a constant
 * per-period delta and every embedded time-point advances by exactly
 * P. A fluid segment exploits that: measure the per-period delta of
 * every mutable scalar over two consecutive probe periods, verify the
 * two deltas are identical (the periodicity certificate), then advance
 * the whole simulation n periods in closed form — counters += n * d,
 * time-points += n * P, pending periodic events shifted by n * P —
 * without executing the O(n * packets) events in between.
 *
 * Because the applied deltas are the *measured exact* per-period
 * behavior, cumulative counts at segment boundaries are byte-identical
 * to the exact schedule by construction (DESIGN.md section 14 lists
 * the declared-exact vs tolerance-banded metric classes; the residual
 * approximation is floating-point cycle accumulators, whose per-period
 * deltas are verified to a relative epsilon rather than bit-equality).
 *
 * The switch is process-global and read at component construction,
 * exactly like thinning: benches set it via --fluid / SRIOV_FLUID
 * before building the testbed; tests use FluidScope. Default is OFF —
 * --fluid=off preserves the golden fig06 digest bit-for-bit because
 * nothing in the schedule changes.
 */

#ifndef SRIOV_SIM_FLUID_HPP
#define SRIOV_SIM_FLUID_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sriov::sim {

/**
 * The global fluid switch is three-valued:
 *
 *  - Off:   the seed schedule, untouched. Reports and the event-order
 *           digest are bit-for-bit those of a build without fluid.
 *  - Exact: the *fluid schedule* (devices snap their timer windows
 *           onto the send grid so a hyperperiod exists — see
 *           SriovNic::setItr), simulated event by event. No director
 *           probes, no warps.
 *  - On:    the same fluid schedule, with the FluidDirector warping
 *           over certified periodic stretches.
 *
 * Exact exists to make the equivalence contract testable: On and
 * Exact share one schedule, so every integer counter must agree
 * byte-for-byte between them (warps add the *measured* per-period
 * delta n times) — any difference is a fluid bug, not model noise.
 * Off vs On differs by the window quantization itself and is held to
 * tolerance bands instead (DESIGN.md §14).
 */
enum class FluidMode : std::uint8_t { Off, Exact, On };

FluidMode fluidMode();

/** Set the mode. Call before constructing components. */
void setFluidMode(FluidMode m);

/** Is fluid (flow-level) mode enabled (Exact or On)? */
bool fluidEnabled();

/** Bool shim: true = On, false = Off. */
void setFluid(bool enabled);

/** RAII override for tests: forces a mode, restores on destruction. */
class FluidScope
{
  public:
    explicit FluidScope(bool enabled) : prev_(fluidMode())
    {
        setFluid(enabled);
    }
    explicit FluidScope(FluidMode m) : prev_(fluidMode())
    {
        setFluidMode(m);
    }
    ~FluidScope() { setFluidMode(prev_); }
    FluidScope(const FluidScope &) = delete;
    FluidScope &operator=(const FluidScope &) = delete;

  private:
    FluidMode prev_;
};

/**
 * The state-visitation protocol of a fluid segment.
 *
 * Components expose their mutable numeric state through
 * `fluidVisit(FluidVisitor &)`: one call per scalar, in a
 * deterministic order, covering every counter, accumulator and
 * embedded time-point that the simulation mutates on the datapath.
 * The visitor runs in one of three passes:
 *
 *  - Capture: record (name, value) of every slot.
 *  - Verify: compare three captures taken exactly one period apart —
 *    each slot's two consecutive deltas must match (integers exactly,
 *    doubles to kF64RelEps), and the slot *sequence* (names + count)
 *    must be identical, which pins ring sizes and tag-table layouts.
 *  - Apply: add n * delta to every slot, writing through the same
 *    references (inv() slots are verify-only and never written).
 *
 * Class collapse: a time-point that advances by exactly P per period
 * is indistinguishable from a counter whose per-period delta happens
 * to be P picoseconds, so one linear-slot class covers both. Slots
 * whose value must not change (ring payload sizes, LAPIC state words)
 * verify as delta == 0 automatically; use inv() for values only
 * reachable by copy.
 */
class FluidVisitor
{
  public:
    enum class Pass : std::uint8_t { Capture, Apply };

    explicit FluidVisitor(Pass pass) : pass_(pass) {}

    /** @name Slot visitation (call once per scalar, stable order). @{ */
    void u64(const char *name, std::uint64_t &v);
    void i64(const char *name, std::int64_t &v);
    void f64(const char *name, double &v);
    // simlint:allow(no-wallclock): visits a sim::Time slot, not libc time()
    void time(const char *name, Time &v);
    /** Verify-only slot: value must be identical across captures. */
    void inv(const char *name, std::uint64_t v);
    /** @} */

    Pass pass() const { return pass_; }
    std::size_t slots() const { return names_.size(); }

    /**
     * Verify this capture against @p prev taken exactly one period
     * earlier: slot sequences must match and, when @p prev2 (two
     * periods earlier) is given, each slot's consecutive deltas must
     * agree. On failure returns false and names the first offending
     * slot in @p why.
     */
    bool verifyAgainst(const FluidVisitor &prev, const FluidVisitor *prev2,
                       std::string *why) const;

    /**
     * Arm an Apply-pass visitor: deltas = (@p newer - @p older) scaled
     * by @p periods. The two captures must already have passed
     * verifyAgainst(). The next fluidVisit() walk with this visitor
     * writes the scaled deltas through.
     */
    void armApply(const FluidVisitor &older, const FluidVisitor &newer,
                  std::int64_t periods);

    static constexpr double kF64RelEps = 1e-9;

  private:
    union SlotValue
    {
        std::int64_t i;
        double f;
    };

    enum class Kind : std::uint8_t { I64, F64, Inv };

    void push(const char *name, Kind k, SlotValue v);

    Pass pass_;
    std::vector<const char *> names_;
    std::vector<Kind> kinds_;
    std::vector<SlotValue> vals_;
    /** Apply pass: per-slot scaled delta, indexed like names_. */
    std::vector<SlotValue> deltas_;
    std::size_t cursor_ = 0;
};

/**
 * Why a flow left (or never reached) steady state — the transition
 * catalogue of DESIGN.md section 14. Every kind forces the ledger out
 * of steady state and (in a running segment) ends it at the exact
 * per-packet schedule.
 */
enum class FluidTransition : std::uint8_t
{
    Drop,          ///< any loss/drop decision (ring dry, queue cap, socket)
    Rto,           ///< TCP retransmission timeout fired
    ItrChange,     ///< ITR coalescing window re-programmed to a new value
    RingEdge,      ///< descriptor ring hit full/empty outside the band
    RateChange,    ///< sender rate re-programmed or stream stopped
    // simlint:allow(shard-channel): names the transition kind, no send
    ShardEdge,     ///< frame crossed a shard boundary (fluid is per-island)
    VmChurn,       ///< guest attached/detached/shutdown mid-run
    Count
};

const char *fluidTransitionName(FluidTransition t);

/**
 * What a ledger flow tracks. Source flows are sender emission grids —
 * the timebase everything else locks to; derived flows are periodic
 * device processes that ride on top of them (interrupt-raise streams,
 * whose cadence the driver quantizes onto the source grid under fluid
 * mode). Both participate in commonPeriod(); only sources define the
 * quantization grid sourcePeriod() reports.
 */
enum class FlowKind : std::uint8_t { Source, Derived };

/**
 * Per-flow steadiness ledger.
 *
 * Senders register one flow per (stack, VF, direction) stream and
 * report every send instant; components report transitions. A flow is
 * steady once kSteadyGaps consecutive inter-send gaps are exactly
 * equal and no transition has been reported for kHoldGaps further
 * gaps (the re-entry hysteresis). The ledger is pure bookkeeping —
 * the FluidDirector combines allSteady() + commonPeriod() with its
 * own two-period state-delta verification before warping anything.
 */
class FlowLedger
{
  public:
    /** Consecutive identical gaps required to call a flow steady. */
    static constexpr unsigned kSteadyGaps = 8;
    /** Extra identical gaps required after a transition (hysteresis). */
    static constexpr unsigned kHoldGaps = 16;

    /** Register a flow; returns its id. @p name is for diagnostics. */
    unsigned addFlow(std::string name, FlowKind kind = FlowKind::Source);

    std::size_t flowCount() const { return flows_.size(); }
    const std::string &flowName(unsigned flow) const;

    /** A packet left the flow's source at @p now. */
    void onSend(unsigned flow, Time now);

    /**
     * The flow's stream stopped for good (sender stop()). Ended flows
     * are excluded from allSteady()/commonPeriod() — without this a
     * stopped flow's hysteresis hold could never expire (holds only
     * count down on sends) and would block fluid mode for the rest of
     * the run.
     */
    void endFlow(unsigned flow);

    /** A transition happened on @p flow (unsteady + hysteresis hold). */
    void transition(unsigned flow, FluidTransition t);

    /** A transition not attributable to one flow (unsteadies all). */
    void transitionAll(FluidTransition t);

    /** Steady: enough identical gaps and the hysteresis hold expired. */
    bool flowSteady(unsigned flow) const;
    bool allSteady() const;

    /** Flows not ended. */
    std::size_t liveFlows() const;

    /**
     * Every live flow is steady — vacuously true with none live. The
     * cross-island coordinator uses this per-island form: an idle
     * island (no flows) must not veto a global warp, while allSteady()
     * deliberately returns false for an empty ledger so the
     * single-queue director never probes a flowless testbed.
     */
    bool liveSteady() const;

    /** The flow's locked inter-send gap (Time() when not steady). */
    Time flowGap(unsigned flow) const;

    /**
     * The common hyperperiod of all steady flows: every flow's gap
     * must divide it and it must not exceed @p cap (LCM blowup between
     * incommensurate grids means no fluid segment). Time() when any
     * flow is unsteady or no common period <= cap exists.
     */
    Time commonPeriod(Time cap = Time::ms(10)) const;

    /**
     * The common grid of the *source* flows only (sender emission
     * gaps), ignoring derived flows. This is what devices quantize
     * their own cadence to (NicPort snaps ITR windows onto it) so the
     * full commonPeriod() stays small. Time() when any live source
     * flow is unsteady, none exist, or the LCM exceeds @p cap.
     */
    Time sourcePeriod(Time cap = Time::ms(1)) const;

    /**
     * The simulation clock jumped forward by @p delta (a fluid warp):
     * shift every flow's last-send instant so the next onSend() still
     * measures the true grid gap instead of a warp-length outlier.
     */
    void warpBy(Time delta);

    /** Transitions observed, by kind (for tests and reports). */
    std::uint64_t transitions(FluidTransition t) const;
    std::uint64_t totalTransitions() const;

    /**
     * Brute-force helper for tests and closed-form validation: the
     * number of grid sends a steady flow with gap @p gap and last send
     * at @p last emits in the half-open interval (@p last, @p until].
     */
    static std::uint64_t gridSendsUntil(Time last, Time gap, Time until);

  private:
    struct Flow
    {
        std::string name;
        Time last_send;
        Time gap;                 ///< last observed inter-send gap
        unsigned equal_gaps = 0;  ///< consecutive gaps equal to gap
        unsigned hold = 0;        ///< gaps still to observe post-transition
        FlowKind kind = FlowKind::Source;
        bool has_send = false;
        bool ended = false;       ///< stream stopped; excluded from steady
    };

    std::vector<Flow> flows_;
    std::uint64_t by_kind_[std::size_t(FluidTransition::Count)] = {};
};

/**
 * Process-global ledger hook. The FluidDirector installs its ledger
 * here; datapath components report transitions through it without
 * holding a reference (null when fluid is off — one load + branch per
 * transition site, which are all off the steady-state fast path).
 */
FlowLedger *fluidLedger();
void setFluidLedger(FlowLedger *l);

/**
 * Thread-local ledger override for sharded builds. When set, it wins
 * over the process-global ledger in fluidLedger(). The ShardEngine
 * installs each island's ledger around the island's execution slice
 * (and the WarpCoordinator around barrier-time walks), so every
 * datapath transition/send lands in the ledger of the island that owns
 * the component — with zero call-site changes, because components
 * re-resolve fluidLedger() on every call and cache only their flow id.
 */
FlowLedger *threadFluidLedger();
void setThreadFluidLedger(FlowLedger *l);

/** RAII guard installing a thread-local ledger for a scope. */
class ThreadLedgerScope
{
  public:
    explicit ThreadLedgerScope(FlowLedger *l) : prev_(threadFluidLedger())
    {
        setThreadFluidLedger(l);
    }
    ~ThreadLedgerScope() { setThreadFluidLedger(prev_); }
    ThreadLedgerScope(const ThreadLedgerScope &) = delete;
    ThreadLedgerScope &operator=(const ThreadLedgerScope &) = delete;

  private:
    FlowLedger *prev_;
};

/** Report a non-flow-attributable transition to the installed ledger
 *  (no-op when none is installed). */
inline void
fluidTransitionAll(FluidTransition t)
{
    if (FlowLedger *l = fluidLedger())
        l->transitionAll(t);
}

/** Aggregate accounting of fluid segments (per testbed, for sidecars). */
struct FluidStats
{
    std::uint64_t segments = 0;        ///< successful warps
    std::uint64_t probes = 0;          ///< verification attempts
    std::uint64_t rejected = 0;        ///< probes that failed to verify
    std::uint64_t periods_warped = 0;  ///< sum of n over all segments
    Time warped;                       ///< simulated time skipped
    std::uint64_t events_elided = 0;   ///< estimated events not executed
};

} // namespace sriov::sim

#endif // SRIOV_SIM_FLUID_HPP
