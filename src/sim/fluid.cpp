#include "sim/fluid.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "sim/log.hpp"

namespace sriov::sim {

namespace {
FluidMode g_fluid_mode = FluidMode::Off;
FlowLedger *g_fluid_ledger = nullptr;
/**
 * Per-thread override for sharded builds: the ShardEngine installs the
 * owning island's ledger around each advanceIsland() slice so datapath
 * components — which re-resolve fluidLedger() on every call and cache
 * only their flow id — report into their island's ledger with zero
 * call-site changes. Null outside shard execution.
 */
thread_local FlowLedger *t_fluid_ledger = nullptr;
} // namespace

FluidMode
fluidMode()
{
    return g_fluid_mode;
}

void
setFluidMode(FluidMode m)
{
    g_fluid_mode = m;
}

bool
fluidEnabled()
{
    return g_fluid_mode != FluidMode::Off;
}

void
setFluid(bool enabled)
{
    g_fluid_mode = enabled ? FluidMode::On : FluidMode::Off;
}

FlowLedger *
fluidLedger()
{
    if (t_fluid_ledger != nullptr)
        return t_fluid_ledger;
    return g_fluid_ledger;
}

void
setFluidLedger(FlowLedger *l)
{
    g_fluid_ledger = l;
}

FlowLedger *
threadFluidLedger()
{
    return t_fluid_ledger;
}

void
setThreadFluidLedger(FlowLedger *l)
{
    t_fluid_ledger = l;
}

// ---------------------------------------------------------------------
// FluidVisitor

void
FluidVisitor::push(const char *name, Kind k, SlotValue v)
{
    if (pass_ == Pass::Capture) {
        names_.push_back(name);
        kinds_.push_back(k);
        vals_.push_back(v);
    }
}

void
FluidVisitor::u64(const char *name, std::uint64_t &v)
{
    if (pass_ == Pass::Apply) {
        // Deltas are signed; u64 counters only ever grow, but the
        // arithmetic is two's-complement safe either way.
        v = std::uint64_t(std::int64_t(v) + deltas_[cursor_++].i);
        return;
    }
    push(name, Kind::I64, SlotValue{.i = std::int64_t(v)});
}

void
FluidVisitor::i64(const char *name, std::int64_t &v)
{
    if (pass_ == Pass::Apply) {
        v += deltas_[cursor_++].i;
        return;
    }
    push(name, Kind::I64, SlotValue{.i = v});
}

void
FluidVisitor::f64(const char *name, double &v)
{
    if (pass_ == Pass::Apply) {
        v += deltas_[cursor_++].f;
        return;
    }
    SlotValue s;
    s.f = v;
    push(name, Kind::F64, s);
}

void
FluidVisitor::time(const char *name, Time &v)
{
    if (pass_ == Pass::Apply) {
        v = Time::ps(v.picos() + deltas_[cursor_++].i);
        return;
    }
    push(name, Kind::I64, SlotValue{.i = v.picos()});
}

void
FluidVisitor::inv(const char *name, std::uint64_t v)
{
    if (pass_ == Pass::Apply) {
        ++cursor_; // never written
        return;
    }
    push(name, Kind::Inv, SlotValue{.i = std::int64_t(v)});
}

namespace {

bool
f64DeltaEqual(double d1, double d2)
{
    if (d1 == d2)
        return true;
    double mag = std::max(std::fabs(d1), std::fabs(d2));
    return std::fabs(d1 - d2) <= mag * FluidVisitor::kF64RelEps;
}

} // namespace

bool
FluidVisitor::verifyAgainst(const FluidVisitor &prev,
                            const FluidVisitor *prev2,
                            std::string *why) const
{
    auto fail = [&](std::size_t i, const char *what) {
        if (why != nullptr) {
            char buf[160];
            std::snprintf(buf, sizeof(buf), "slot %zu (%s): %s", i,
                          i < names_.size() ? names_[i] : "?", what);
            *why = buf;
        }
        return false;
    };
    if (names_.size() != prev.names_.size()
        || (prev2 != nullptr && names_.size() != prev2->names_.size()))
        return fail(names_.size(), "slot count changed between probes");
    for (std::size_t i = 0; i < names_.size(); ++i) {
        // Literal pointers: equal names at equal positions means the
        // same component emitted the same slot — ring sizes and visit
        // topology are pinned by this.
        if (names_[i] != prev.names_[i]
            || (prev2 != nullptr && names_[i] != prev2->names_[i]))
            return fail(i, "slot sequence changed between probes");
        if (kinds_[i] != prev.kinds_[i])
            return fail(i, "slot kind changed between probes");
        if (prev2 == nullptr)
            continue;
        switch (kinds_[i]) {
        case Kind::I64: {
            std::int64_t d1 = prev.vals_[i].i - prev2->vals_[i].i;
            std::int64_t d2 = vals_[i].i - prev.vals_[i].i;
            if (d1 != d2)
                return fail(i, "per-period delta not constant");
            break;
        }
        case Kind::F64: {
            double d1 = prev.vals_[i].f - prev2->vals_[i].f;
            double d2 = vals_[i].f - prev.vals_[i].f;
            if (!f64DeltaEqual(d1, d2))
                return fail(i, "per-period fp delta not constant");
            break;
        }
        case Kind::Inv:
            if (vals_[i].i != prev.vals_[i].i
                || vals_[i].i != prev2->vals_[i].i)
                return fail(i, "invariant slot changed");
            break;
        }
    }
    return true;
}

void
FluidVisitor::armApply(const FluidVisitor &older, const FluidVisitor &newer,
                       std::int64_t periods)
{
    if (older.names_.size() != newer.names_.size())
        fatal("fluid: armApply over mismatched captures");
    pass_ = Pass::Apply;
    names_ = newer.names_;
    kinds_ = newer.kinds_;
    deltas_.resize(newer.vals_.size());
    for (std::size_t i = 0; i < newer.vals_.size(); ++i) {
        switch (newer.kinds_[i]) {
        case Kind::I64:
            deltas_[i].i =
                (newer.vals_[i].i - older.vals_[i].i) * periods;
            break;
        case Kind::F64:
            deltas_[i].f =
                (newer.vals_[i].f - older.vals_[i].f) * double(periods);
            break;
        case Kind::Inv:
            deltas_[i].i = 0;
            break;
        }
    }
    cursor_ = 0;
}

// ---------------------------------------------------------------------
// FlowLedger

const char *
fluidTransitionName(FluidTransition t)
{
    switch (t) {
    case FluidTransition::Drop: return "drop";
    case FluidTransition::Rto: return "rto";
    case FluidTransition::ItrChange: return "itr-change";
    case FluidTransition::RingEdge: return "ring-edge";
    case FluidTransition::RateChange: return "rate-change";
    // simlint:allow(shard-channel): names the transition kind, no send
    case FluidTransition::ShardEdge: return "shard-edge";
    case FluidTransition::VmChurn: return "vm-churn";
    case FluidTransition::Count: break;
    }
    return "?";
}

unsigned
FlowLedger::addFlow(std::string name, FlowKind kind)
{
    Flow f;
    f.name = std::move(name);
    f.kind = kind;
    flows_.push_back(std::move(f));
    return unsigned(flows_.size() - 1);
}

const std::string &
FlowLedger::flowName(unsigned flow) const
{
    return flows_.at(flow).name;
}

void
FlowLedger::onSend(unsigned flow, Time now)
{
    Flow &f = flows_.at(flow);
    if (!f.has_send) {
        f.has_send = true;
        f.last_send = now;
        return;
    }
    Time gap = now - f.last_send;
    f.last_send = now;
    if (gap == f.gap && gap > Time()) {
        if (f.hold > 0)
            --f.hold;
        else if (f.equal_gaps < kSteadyGaps)
            ++f.equal_gaps;
    } else {
        f.gap = gap;
        f.equal_gaps = 0;
    }
}

void
FlowLedger::endFlow(unsigned flow)
{
    flows_.at(flow).ended = true;
}

void
FlowLedger::transition(unsigned flow, FluidTransition t)
{
    Flow &f = flows_.at(flow);
    f.equal_gaps = 0;
    f.hold = kHoldGaps;
    by_kind_[std::size_t(t)]++;
}

void
FlowLedger::transitionAll(FluidTransition t)
{
    for (Flow &f : flows_) {
        f.equal_gaps = 0;
        f.hold = kHoldGaps;
    }
    by_kind_[std::size_t(t)]++;
}

bool
FlowLedger::flowSteady(unsigned flow) const
{
    const Flow &f = flows_.at(flow);
    return !f.ended && f.hold == 0 && f.equal_gaps >= kSteadyGaps
        && f.gap > Time();
}

std::size_t
FlowLedger::liveFlows() const
{
    std::size_t live = 0;
    for (const Flow &f : flows_) {
        if (!f.ended)
            ++live;
    }
    return live;
}

bool
FlowLedger::liveSteady() const
{
    for (unsigned i = 0; i < flows_.size(); ++i) {
        if (!flows_[i].ended && !flowSteady(i))
            return false;
    }
    return true;
}

bool
FlowLedger::allSteady() const
{
    std::size_t live = 0;
    for (unsigned i = 0; i < flows_.size(); ++i) {
        if (flows_[i].ended)
            continue;
        ++live;
        if (!flowSteady(i))
            return false;
    }
    return live > 0;
}

Time
FlowLedger::flowGap(unsigned flow) const
{
    return flowSteady(flow) ? flows_.at(flow).gap : Time();
}

Time
FlowLedger::commonPeriod(Time cap) const
{
    if (!allSteady())
        return Time();
    std::int64_t lcm = 0;
    for (unsigned i = 0; i < flows_.size(); ++i) {
        if (flows_[i].ended)
            continue;
        std::int64_t g = flows_[i].gap.picos();
        lcm = lcm == 0 ? g : std::lcm(lcm, g);
        if (lcm <= 0 || lcm > cap.picos())
            return Time();
    }
    return Time::ps(lcm);
}

Time
FlowLedger::sourcePeriod(Time cap) const
{
    std::int64_t lcm = 0;
    for (unsigned i = 0; i < flows_.size(); ++i) {
        const Flow &f = flows_[i];
        if (f.ended || f.kind != FlowKind::Source)
            continue;
        // The last observed gap is used even while the flow sits in a
        // hysteresis hold: this is only a quantization *hint* (devices
        // snap their windows onto it), and a transition burst — e.g.
        // every pool retuning its ITR on the same 1 Hz sample edge —
        // must not blind the pools that retune after the first one.
        // Correctness never rests on it: the probe certificate checks
        // the real schedule.
        if (f.gap <= Time())
            return Time();
        std::int64_t g = f.gap.picos();
        lcm = lcm == 0 ? g : std::lcm(lcm, g);
        if (lcm <= 0 || lcm > cap.picos())
            return Time();
    }
    return Time::ps(lcm);
}

void
FlowLedger::warpBy(Time delta)
{
    for (Flow &f : flows_) {
        if (f.has_send)
            f.last_send = f.last_send + delta;
    }
}

std::uint64_t
FlowLedger::transitions(FluidTransition t) const
{
    return by_kind_[std::size_t(t)];
}

std::uint64_t
FlowLedger::totalTransitions() const
{
    std::uint64_t n = 0;
    for (std::uint64_t v : by_kind_)
        n += v;
    return n;
}

std::uint64_t
FlowLedger::gridSendsUntil(Time last, Time gap, Time until)
{
    if (gap <= Time() || until <= last)
        return 0;
    return std::uint64_t((until - last).picos() / gap.picos());
}

} // namespace sriov::sim
