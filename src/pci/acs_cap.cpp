#include "pci/acs_cap.hpp"

namespace sriov::pci {

AcsCapability::AcsCapability(ConfigSpace &cs, CapabilityAllocator &alloc)
    : cs_(cs), off_(alloc.addExtended(capid::kExtAcs, 1, kLen))
{
    // Advertise all control knobs this model implements.
    cs_.setRaw16(off_ + kCapReg,
                 kSourceValidation | kTranslationBlocking | kRequestRedirect
                     | kCompletionRedirect | kUpstreamForwarding);
    cs_.allowWrite(off_ + kCtlReg, 2);
}

void
AcsCapability::setControl(std::uint16_t bits)
{
    cs_.write(off_ + kCtlReg, bits, 2);
}

} // namespace sriov::pci
