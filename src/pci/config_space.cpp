#include "pci/config_space.hpp"

#include "sim/log.hpp"

namespace sriov::pci {

ConfigSpace::ConfigSpace() = default;

std::uint8_t
ConfigSpace::raw8(std::uint16_t off) const
{
    return bytes_[off];
}

std::uint16_t
ConfigSpace::raw16(std::uint16_t off) const
{
    return std::uint16_t(bytes_[off] | (bytes_[off + 1] << 8));
}

std::uint32_t
ConfigSpace::raw32(std::uint16_t off) const
{
    return std::uint32_t(bytes_[off]) | (std::uint32_t(bytes_[off + 1]) << 8)
        | (std::uint32_t(bytes_[off + 2]) << 16)
        | (std::uint32_t(bytes_[off + 3]) << 24);
}

void
ConfigSpace::setRaw8(std::uint16_t off, std::uint8_t v)
{
    bytes_[off] = v;
}

void
ConfigSpace::setRaw16(std::uint16_t off, std::uint16_t v)
{
    bytes_[off] = std::uint8_t(v);
    bytes_[off + 1] = std::uint8_t(v >> 8);
}

void
ConfigSpace::setRaw32(std::uint16_t off, std::uint32_t v)
{
    setRaw16(off, std::uint16_t(v));
    setRaw16(off + 2, std::uint16_t(v >> 16));
}

void
ConfigSpace::allowWrite(std::uint16_t off, std::uint16_t len)
{
    for (std::uint16_t i = 0; i < len; ++i)
        writable_[off + i] = true;
}

void
ConfigSpace::onWrite(std::uint16_t off, std::uint16_t len,
                     std::function<void(std::uint16_t)> hook)
{
    hooks_.push_back(Hook{off, len, std::move(hook)});
}

std::uint32_t
ConfigSpace::read(std::uint16_t off, unsigned size) const
{
    if (std::size_t(off) + size > kSize)
        sim::panic("config read past end: off=%u size=%u", off, size);
    switch (size) {
      case 1: return raw8(off);
      case 2: return raw16(off);
      case 4: return raw32(off);
      default: sim::panic("bad config access size %u", size);
    }
}

void
ConfigSpace::write(std::uint16_t off, std::uint32_t v, unsigned size)
{
    if (std::size_t(off) + size > kSize)
        sim::panic("config write past end: off=%u size=%u", off, size);
    for (unsigned i = 0; i < size; ++i) {
        if (writable_[off + i])
            bytes_[off + i] = std::uint8_t(v >> (8 * i));
    }
    for (const auto &h : hooks_) {
        if (off < h.off + h.len && h.off < off + size)
            h.fn(off);
    }
}

} // namespace sriov::pci
