#include "pci/pci_switch.hpp"

#include "sim/log.hpp"

namespace sriov::pci {

PciSwitch::DownstreamPort::DownstreamPort(Bdf bdf)
    : bridge_(bdf, 0x8086, 0x3420, 0x060400, PciFunction::Kind::Bridge),
      acs_(bridge_.config(), bridge_.caps())
{
}

PciSwitch::PciSwitch(unsigned num_downstream, std::uint8_t bus)
{
    for (unsigned i = 0; i < num_downstream; ++i) {
        ports_.push_back(std::make_unique<DownstreamPort>(
            Bdf{bus, std::uint8_t(i), 0}));
    }
}

int
PciSwitch::portOfRid(Rid rid)
{
    for (unsigned i = 0; i < ports_.size(); ++i) {
        PciFunction *f = ports_[i]->attached();
        if (f && f->rid() == rid)
            return int(i);
    }
    return -1;
}

PciSwitch::Route
PciSwitch::routePeerRequest(unsigned src_port, unsigned dst_port) const
{
    if (src_port >= ports_.size() || dst_port >= ports_.size())
        return Route::Blocked;
    const auto &acs = ports_[src_port]->acs();
    if (acs.requestRedirect())
        return Route::RedirectedUpstream;
    return Route::DirectP2P;
}

PciSwitch::Route
PciSwitch::accessPeer(Rid src_rid, Rid dst_rid)
{
    int src = portOfRid(src_rid);
    int dst = portOfRid(dst_rid);
    if (src < 0 || dst < 0)
        return Route::Blocked;
    return routePeerRequest(unsigned(src), unsigned(dst));
}

void
PciSwitch::setRedirectAll(bool on)
{
    for (auto &p : ports_) {
        std::uint16_t ctl = on ? (AcsCapability::kRequestRedirect
                                  | AcsCapability::kCompletionRedirect
                                  | AcsCapability::kUpstreamForwarding)
                               : 0;
        p->acs().setControl(ctl);
    }
}

} // namespace sriov::pci
