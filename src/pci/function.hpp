/**
 * @file
 * PciFunction: a single PCIe function — the primary entity on the bus,
 * identified by a unique RID (paper Section 2).
 *
 * Physical Functions are full-featured; Virtual Functions are
 * "light-weight": their config space is trimmed, and per the paper they
 * do not answer an ordinary vendor-ID bus scan (respondsToScan() is
 * false), which is why the IOVM must hot-add them explicitly.
 */

#ifndef SRIOV_PCI_FUNCTION_HPP
#define SRIOV_PCI_FUNCTION_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pci/acs_cap.hpp"
#include "pci/config_space.hpp"
#include "pci/msi_cap.hpp"
#include "pci/sriov_cap.hpp"
#include "pci/types.hpp"

namespace sriov::pci {

class PciFunction
{
  public:
    enum class Kind { Physical, Virtual, Bridge };

    struct Bar
    {
        std::uint64_t base = 0;
        std::uint64_t size = 0;
    };

    PciFunction(Bdf bdf, std::uint16_t vendor, std::uint16_t device,
                std::uint32_t class_code, Kind kind);
    virtual ~PciFunction();

    PciFunction(const PciFunction &) = delete;
    PciFunction &operator=(const PciFunction &) = delete;

    Bdf bdf() const { return bdf_; }
    void rehome(Bdf bdf) { bdf_ = bdf; }
    Rid rid() const { return bdf_.rid(); }
    Kind kind() const { return kind_; }
    bool isVf() const { return kind_ == Kind::Virtual; }
    std::uint16_t vendorId() const { return cs_.raw16(cfg::kVendorId); }
    std::uint16_t deviceId() const { return cs_.raw16(cfg::kDeviceId); }

    /**
     * Whether a vendor-ID probe finds this function. VFs are trimmed
     * functions that do not implement the probe path.
     */
    bool respondsToScan() const { return kind_ != Kind::Virtual; }

    ConfigSpace &config() { return cs_; }
    const ConfigSpace &config() const { return cs_; }
    CapabilityAllocator &caps() { return caps_; }

    /** Declare a memory BAR of @p size bytes at index @p idx. */
    void declareBar(unsigned idx, std::uint64_t size);
    unsigned barCount() const { return unsigned(bars_.size()); }
    const Bar &bar(unsigned idx) const { return bars_.at(idx); }
    void assignBar(unsigned idx, std::uint64_t base);

    /** @name Optional standard capabilities. @{ */
    MsiCapability *msi() { return msi_.get(); }
    MsixCapability *msix() { return msix_.get(); }
    const MsiCapability *msi() const { return msi_.get(); }
    const MsixCapability *msix() const { return msix_.get(); }
    MsiCapability &addMsi();
    MsixCapability &addMsix(unsigned table_size, std::uint8_t bar_index);
    /** @} */

    bool busMasterEnabled() const
    {
        return cs_.raw16(cfg::kCommand) & cfg::kCmdBusMaster;
    }

    /** Device-register access through a BAR. Default: scratch space. */
    virtual std::uint64_t mmioRead(unsigned bar, std::uint64_t off);
    virtual void mmioWrite(unsigned bar, std::uint64_t off,
                           std::uint64_t val);

    /**
     * Where this function's MSI writes go. The platform (interrupt
     * router) installs the sink; devices call signalMsi().
     */
    void setMsiSink(std::function<void(Rid, const MsiMessage &)> sink)
    {
        msi_sink_ = std::move(sink);
    }

    /** Signal MSI-X vector @p idx if deliverable; else mark pending. */
    bool signalMsix(unsigned idx);

    /** Signal the classic MSI if enabled and unmasked. */
    bool signalMsi();

    std::string name() const;

  protected:
    Bdf bdf_;
    Kind kind_;
    ConfigSpace cs_;
    CapabilityAllocator caps_;
    std::vector<Bar> bars_;
    std::unique_ptr<MsiCapability> msi_;
    std::unique_ptr<MsixCapability> msix_;
    std::function<void(Rid, const MsiMessage &)> msi_sink_;
};

} // namespace sriov::pci

#endif // SRIOV_PCI_FUNCTION_HPP
