/**
 * @file
 * PciDevice: a collection of one or more functions sharing a package
 * (paper Section 2: "a PCIe device is a collection of one or more
 * functions"). Multi-port NICs like the 82576 expose one PF per port.
 */

#ifndef SRIOV_PCI_DEVICE_HPP
#define SRIOV_PCI_DEVICE_HPP

#include <memory>
#include <vector>

#include "pci/function.hpp"

namespace sriov::pci {

class PciDevice
{
  public:
    PciDevice() = default;
    virtual ~PciDevice() = default;

    PciDevice(const PciDevice &) = delete;
    PciDevice &operator=(const PciDevice &) = delete;

    PciFunction &addFunction(std::unique_ptr<PciFunction> fn);
    void removeFunction(const PciFunction &fn);

    std::size_t functionCount() const { return functions_.size(); }
    PciFunction &function(std::size_t i) { return *functions_.at(i); }
    const std::vector<std::unique_ptr<PciFunction>> &functions() const
    {
        return functions_;
    }

    PciFunction *findByRid(Rid rid);

  private:
    std::vector<std::unique_ptr<PciFunction>> functions_;
};

} // namespace sriov::pci

#endif // SRIOV_PCI_DEVICE_HPP
