/**
 * @file
 * MSI and MSI-X capability models.
 *
 * The MSI capability carries the mask/pending registers whose frequent
 * programming by Linux 2.6.18 guests is the subject of the paper's
 * first optimization (Section 5.1): each guest write to the mask
 * register of a passed-through or emulated function traps to the VMM.
 * The capability exposes hooks so the owning layer (device model or
 * hypervisor) can observe mask transitions and deliveries.
 */

#ifndef SRIOV_PCI_MSI_CAP_HPP
#define SRIOV_PCI_MSI_CAP_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "pci/capability.hpp"

namespace sriov::pci {

/** The payload a function sends to signal an interrupt. */
struct MsiMessage
{
    std::uint64_t address = 0;
    std::uint16_t data = 0;

    /** x86 MSI encoding: destination APIC in addr, vector in data. */
    std::uint8_t vector() const { return std::uint8_t(data & 0xff); }
    std::uint8_t destApic() const
    {
        return std::uint8_t((address >> 12) & 0xff);
    }

    static MsiMessage forVector(std::uint8_t apic_id, std::uint8_t vec);
};

/**
 * Classic MSI capability with per-vector masking (single vector used).
 */
class MsiCapability
{
  public:
    MsiCapability(ConfigSpace &cs, CapabilityAllocator &alloc);

    std::uint16_t offset() const { return off_; }

    bool enabled() const;
    bool masked() const;
    MsiMessage message() const;

    /** Device-side: true when an interrupt arrived while masked. */
    bool pending() const { return pending_; }
    void setPending(bool p);

    /** Driver-side programming helpers (go through the hook path). */
    void program(const MsiMessage &msg);
    void setEnable(bool en);
    void setMask(bool m);

    /** Called on any software write to the mask register. */
    void onMaskWrite(std::function<void(bool masked)> fn)
    {
        mask_hooks_.push_back(std::move(fn));
    }

    /** Layout offsets relative to the capability base. */
    static constexpr std::uint16_t kMsgCtl = 2;
    static constexpr std::uint16_t kAddrLo = 4;
    static constexpr std::uint16_t kAddrHi = 8;
    static constexpr std::uint16_t kData = 0xc;
    static constexpr std::uint16_t kMask = 0x10;
    static constexpr std::uint16_t kPending = 0x14;
    static constexpr std::uint16_t kLen = 0x18;

    static constexpr std::uint16_t kCtlEnable = 1u << 0;
    static constexpr std::uint16_t kCtl64Bit = 1u << 7;
    static constexpr std::uint16_t kCtlPerVectorMask = 1u << 8;

  private:
    ConfigSpace &cs_;
    std::uint16_t off_;
    bool pending_ = false;
    std::vector<std::function<void(bool)>> mask_hooks_;
};

/**
 * MSI-X capability. The vector table lives in device MMIO (BAR space);
 * we model it as in-object state with the same mask semantics. The
 * 82576 VF uses MSI-X (3 vectors: rx, tx, mailbox).
 */
class MsixCapability
{
  public:
    struct Entry
    {
        MsiMessage msg;
        bool masked = true;     // spec: entries come up masked
        bool pending = false;
    };

    MsixCapability(ConfigSpace &cs, CapabilityAllocator &alloc,
                   unsigned table_size, std::uint8_t bar_index);

    std::uint16_t offset() const { return off_; }
    unsigned tableSize() const { return unsigned(entries_.size()); }

    bool enabled() const;
    void setEnable(bool en);
    bool functionMasked() const;

    Entry &entry(unsigned i) { return entries_.at(i); }
    const Entry &entry(unsigned i) const { return entries_.at(i); }

    /** Driver-side table programming (fires mask hooks on transitions). */
    void programEntry(unsigned i, const MsiMessage &msg);
    void maskEntry(unsigned i, bool masked);

    /** True if vector @p i may be delivered right now. */
    bool deliverable(unsigned i) const;

    void onMaskWrite(std::function<void(unsigned idx, bool masked)> fn)
    {
        mask_hooks_.push_back(std::move(fn));
    }

    static constexpr std::uint16_t kMsgCtl = 2;
    static constexpr std::uint16_t kTableOff = 4;
    static constexpr std::uint16_t kPbaOff = 8;
    static constexpr std::uint16_t kLen = 12;

    static constexpr std::uint16_t kCtlEnable = 1u << 15;
    static constexpr std::uint16_t kCtlFuncMask = 1u << 14;

  private:
    ConfigSpace &cs_;
    std::uint16_t off_;
    std::vector<Entry> entries_;
    std::vector<std::function<void(unsigned, bool)>> mask_hooks_;
};

} // namespace sriov::pci

#endif // SRIOV_PCI_MSI_CAP_HPP
