/**
 * @file
 * Fundamental PCIe identifiers.
 */

#ifndef SRIOV_PCI_TYPES_HPP
#define SRIOV_PCI_TYPES_HPP

#include <cstdint>
#include <string>

namespace sriov::pci {

/**
 * Bus/Device/Function address. The 16-bit encoding (bus << 8 | dev << 3
 * | fn) is the Requester ID (RID) that tags every PCIe transaction and
 * indexes the IOMMU context tables (paper Section 2).
 */
struct Bdf
{
    std::uint8_t bus = 0;
    std::uint8_t dev = 0;      ///< 5 bits
    std::uint8_t fn = 0;       ///< 3 bits

    constexpr std::uint16_t
    rid() const
    {
        return std::uint16_t((bus << 8) | ((dev & 0x1f) << 3) | (fn & 0x7));
    }

    static constexpr Bdf
    fromRid(std::uint16_t rid)
    {
        return Bdf{std::uint8_t(rid >> 8), std::uint8_t((rid >> 3) & 0x1f),
                   std::uint8_t(rid & 0x7)};
    }

    constexpr bool operator==(const Bdf &) const = default;

    std::string toString() const;
};

using Rid = std::uint16_t;

/** Standard configuration-space register offsets (type 0 header). */
namespace cfg {
constexpr std::uint16_t kVendorId = 0x00;
constexpr std::uint16_t kDeviceId = 0x02;
constexpr std::uint16_t kCommand = 0x04;
constexpr std::uint16_t kStatus = 0x06;
constexpr std::uint16_t kRevision = 0x08;
constexpr std::uint16_t kClassCode = 0x09;     // 3 bytes
constexpr std::uint16_t kHeaderType = 0x0e;
constexpr std::uint16_t kBar0 = 0x10;
constexpr std::uint16_t kSubsysVendorId = 0x2c;
constexpr std::uint16_t kSubsysId = 0x2e;
constexpr std::uint16_t kCapPtr = 0x34;
constexpr std::uint16_t kIntLine = 0x3c;
constexpr std::uint16_t kIntPin = 0x3d;

// Command register bits.
constexpr std::uint16_t kCmdMemEnable = 1u << 1;
constexpr std::uint16_t kCmdBusMaster = 1u << 2;
constexpr std::uint16_t kCmdIntxDisable = 1u << 10;

// Status register bits.
constexpr std::uint16_t kStatusCapList = 1u << 4;

/** Reads to a non-responding function return all-ones. */
constexpr std::uint32_t kNoDevice = 0xffffffffu;
} // namespace cfg

/** Capability IDs used by this model. */
namespace capid {
constexpr std::uint8_t kMsi = 0x05;
constexpr std::uint8_t kMsix = 0x11;
constexpr std::uint16_t kExtSriov = 0x0010;
constexpr std::uint16_t kExtAcs = 0x000d;
} // namespace capid

} // namespace sriov::pci

#endif // SRIOV_PCI_TYPES_HPP
