#include "pci/device.hpp"

#include <algorithm>

namespace sriov::pci {

PciFunction &
PciDevice::addFunction(std::unique_ptr<PciFunction> fn)
{
    functions_.push_back(std::move(fn));
    return *functions_.back();
}

void
PciDevice::removeFunction(const PciFunction &fn)
{
    std::erase_if(functions_,
                  [&](const auto &p) { return p.get() == &fn; });
}

PciFunction *
PciDevice::findByRid(Rid rid)
{
    for (auto &f : functions_) {
        if (f->rid() == rid)
            return f.get();
    }
    return nullptr;
}

} // namespace sriov::pci
