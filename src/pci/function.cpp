#include "pci/function.hpp"

#include "sim/log.hpp"

namespace sriov::pci {

PciFunction::PciFunction(Bdf bdf, std::uint16_t vendor, std::uint16_t device,
                         std::uint32_t class_code, Kind kind)
    : bdf_(bdf), kind_(kind), caps_(cs_)
{
    cs_.setRaw16(cfg::kVendorId, vendor);
    cs_.setRaw16(cfg::kDeviceId, device);
    cs_.setRaw8(cfg::kRevision, 1);
    cs_.setRaw8(cfg::kClassCode + 0, std::uint8_t(class_code));
    cs_.setRaw8(cfg::kClassCode + 1, std::uint8_t(class_code >> 8));
    cs_.setRaw8(cfg::kClassCode + 2, std::uint8_t(class_code >> 16));
    cs_.allowWrite(cfg::kCommand, 2);
    cs_.allowWrite(cfg::kIntLine, 1);
}

PciFunction::~PciFunction() = default;

void
PciFunction::declareBar(unsigned idx, std::uint64_t size)
{
    if (idx >= 6)
        sim::fatal("BAR index %u out of range", idx);
    if (bars_.size() <= idx)
        bars_.resize(idx + 1);
    bars_[idx].size = size;
    cs_.allowWrite(std::uint16_t(cfg::kBar0 + 4 * idx), 4);
}

void
PciFunction::assignBar(unsigned idx, std::uint64_t base)
{
    bars_.at(idx).base = base;
    cs_.setRaw32(std::uint16_t(cfg::kBar0 + 4 * idx), std::uint32_t(base));
}

MsiCapability &
PciFunction::addMsi()
{
    if (msi_)
        sim::panic("%s: duplicate MSI capability", name().c_str());
    msi_ = std::make_unique<MsiCapability>(cs_, caps_);
    return *msi_;
}

MsixCapability &
PciFunction::addMsix(unsigned table_size, std::uint8_t bar_index)
{
    if (msix_)
        sim::panic("%s: duplicate MSI-X capability", name().c_str());
    msix_ = std::make_unique<MsixCapability>(cs_, caps_, table_size,
                                             bar_index);
    return *msix_;
}

std::uint64_t
PciFunction::mmioRead(unsigned, std::uint64_t)
{
    return 0;
}

void
PciFunction::mmioWrite(unsigned, std::uint64_t, std::uint64_t)
{
}

bool
PciFunction::signalMsix(unsigned idx)
{
    if (!msix_)
        sim::panic("%s: signalMsix without MSI-X capability",
                   name().c_str());
    auto &e = msix_->entry(idx);
    if (!msix_->deliverable(idx)) {
        e.pending = true;
        return false;
    }
    e.pending = false;
    if (msi_sink_)
        msi_sink_(rid(), e.msg);
    return true;
}

bool
PciFunction::signalMsi()
{
    if (!msi_)
        sim::panic("%s: signalMsi without MSI capability", name().c_str());
    if (!msi_->enabled() || msi_->masked()) {
        msi_->setPending(true);
        return false;
    }
    msi_->setPending(false);
    if (msi_sink_)
        msi_sink_(rid(), msi_->message());
    return true;
}

std::string
PciFunction::name() const
{
    const char *k = kind_ == Kind::Physical
                        ? "PF"
                        : (kind_ == Kind::Virtual ? "VF" : "bridge");
    return std::string(k) + " " + bdf_.toString();
}

} // namespace sriov::pci
