#include "pci/root_complex.hpp"

#include "sim/log.hpp"

namespace sriov::pci {

RootComplex::RootComplex()
{
    bus(0);
}

PciBus &
RootComplex::bus(std::uint8_t n)
{
    auto it = buses_.find(n);
    if (it == buses_.end())
        it = buses_.emplace(n, std::make_unique<PciBus>(n)).first;
    return *it->second;
}

void
RootComplex::plug(PciFunction &fn)
{
    bus(fn.bdf().bus).attach(fn);
    for (unsigned i = 0; i < fn.barCount(); ++i) {
        std::uint64_t size = fn.bar(i).size;
        if (size == 0)
            continue;
        // Natural alignment, minimum 4 KiB granule.
        std::uint64_t align = size < 4096 ? 4096 : size;
        std::uint64_t base = (next_mmio_ + align - 1) & ~(align - 1);
        next_mmio_ = base + size;
        fn.assignBar(i, base);
        windows_.push_back(Window{base, size, &fn, i});
    }
}

void
RootComplex::unplug(const PciFunction &fn)
{
    bus(fn.bdf().bus).detach(fn);
    std::erase_if(windows_, [&](const Window &w) { return w.fn == &fn; });
}

RootComplex::MmioTarget
RootComplex::resolveMmio(std::uint64_t addr)
{
    for (auto &w : windows_) {
        if (addr >= w.base && addr < w.base + w.size)
            return MmioTarget{w.fn, w.bar, addr - w.base};
    }
    return MmioTarget{};
}

std::uint64_t
RootComplex::mmioRead(std::uint64_t addr)
{
    MmioTarget t = resolveMmio(addr);
    if (!t.fn)
        return ~0ull;    // master abort
    return t.fn->mmioRead(t.bar, t.offset);
}

void
RootComplex::mmioWrite(std::uint64_t addr, std::uint64_t val)
{
    MmioTarget t = resolveMmio(addr);
    if (t.fn)
        t.fn->mmioWrite(t.bar, t.offset, val);
}

PciFunction *
RootComplex::byRid(Rid rid)
{
    for (auto &[n, b] : buses_) {
        if (PciFunction *f = b->byRid(rid))
            return f;
    }
    return nullptr;
}

} // namespace sriov::pci
