/**
 * @file
 * Capability-chain plumbing for configuration space.
 *
 * Classic capabilities live in [0x40, 0x100) and are chained through
 * byte next-pointers starting at the header's capability pointer.
 * Extended capabilities live in [0x100, 0x1000) with 12-bit next
 * pointers. CapabilityAllocator lays capabilities out and wires the
 * chains the way the Linux PCI core expects to walk them.
 */

#ifndef SRIOV_PCI_CAPABILITY_HPP
#define SRIOV_PCI_CAPABILITY_HPP

#include <cstdint>

#include "pci/config_space.hpp"
#include "pci/types.hpp"

namespace sriov::pci {

class CapabilityAllocator
{
  public:
    explicit CapabilityAllocator(ConfigSpace &cs) : cs_(cs) {}

    /**
     * Allocate @p len bytes for a classic capability with id @p id,
     * link it into the chain, and return its offset.
     */
    std::uint16_t addClassic(std::uint8_t id, std::uint16_t len);

    /** Allocate an extended capability (id, version) of @p len bytes. */
    std::uint16_t addExtended(std::uint16_t id, std::uint8_t version,
                              std::uint16_t len);

  private:
    ConfigSpace &cs_;
    std::uint16_t classic_next_ = 0x40;
    std::uint16_t classic_tail_ = 0;     // offset of last cap header
    std::uint16_t ext_next_ = 0x100;
    std::uint16_t ext_tail_ = 0;
};

/** Walk the classic chain looking for @p id; 0 if absent. */
std::uint16_t findClassicCap(const ConfigSpace &cs, std::uint8_t id);

/** Walk the extended chain looking for @p id; 0 if absent. */
std::uint16_t findExtendedCap(const ConfigSpace &cs, std::uint16_t id);

} // namespace sriov::pci

#endif // SRIOV_PCI_CAPABILITY_HPP
