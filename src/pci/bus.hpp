/**
 * @file
 * PciBus: maps device/function numbers to PciFunction objects and
 * implements the configuration probe path a host OS uses during bus
 * enumeration. VFs attached to the bus are reachable by RID (for DMA
 * and IOMMU purposes) but invisible to vendor-ID scans (paper §4.1).
 */

#ifndef SRIOV_PCI_BUS_HPP
#define SRIOV_PCI_BUS_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "pci/function.hpp"

namespace sriov::pci {

class PciBus
{
  public:
    explicit PciBus(std::uint8_t number) : number_(number) {}

    std::uint8_t number() const { return number_; }

    /** Attach @p fn at its BDF. The bus does not own functions. */
    void attach(PciFunction &fn);
    void detach(const PciFunction &fn);

    PciFunction *at(std::uint8_t dev, std::uint8_t fn);
    PciFunction *byRid(Rid rid);

    /** Config access as a host OS would issue it (probe semantics). */
    std::uint32_t configRead(Bdf bdf, std::uint16_t off, unsigned size);
    void configWrite(Bdf bdf, std::uint16_t off, std::uint32_t v,
                     unsigned size);

    /**
     * Vendor-ID scan over all dev/fn slots: returns the functions an
     * ordinary PCI bus scan discovers (PFs and bridges, never VFs).
     */
    std::vector<PciFunction *> scan();

    /** All attached functions including VFs (platform's view). */
    std::vector<PciFunction *> allFunctions();

    /** First free (dev, fn) slot, for hot-adding. */
    Bdf freeSlot() const;

  private:
    std::uint8_t number_;
    std::map<std::uint16_t, PciFunction *> slots_;  // key: dev<<3|fn
};

} // namespace sriov::pci

#endif // SRIOV_PCI_BUS_HPP
