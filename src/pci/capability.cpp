#include "pci/capability.hpp"

#include <cstdio>

#include "sim/log.hpp"

namespace sriov::pci {

std::string
Bdf::toString() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%02x:%02x.%x", bus, dev, fn);
    return buf;
}

std::uint16_t
CapabilityAllocator::addClassic(std::uint8_t id, std::uint16_t len)
{
    // Capabilities are dword aligned.
    std::uint16_t off = std::uint16_t((classic_next_ + 3) & ~3u);
    if (off + len > 0x100)
        sim::panic("classic capability space exhausted");
    classic_next_ = std::uint16_t(off + len);

    cs_.setRaw8(off, id);
    cs_.setRaw8(off + 1, 0);        // next pointer, patched below

    if (classic_tail_ == 0) {
        cs_.setRaw8(cfg::kCapPtr, std::uint8_t(off));
        cs_.setRaw16(cfg::kStatus,
                     cs_.raw16(cfg::kStatus) | cfg::kStatusCapList);
    } else {
        cs_.setRaw8(classic_tail_ + 1, std::uint8_t(off));
    }
    classic_tail_ = off;
    return off;
}

std::uint16_t
CapabilityAllocator::addExtended(std::uint16_t id, std::uint8_t version,
                                 std::uint16_t len)
{
    std::uint16_t off = std::uint16_t((ext_next_ + 3) & ~3u);
    if (off + len > ConfigSpace::kSize)
        sim::panic("extended capability space exhausted");
    ext_next_ = std::uint16_t(off + len);

    // Header: [15:0] id, [19:16] version, [31:20] next.
    cs_.setRaw32(off, std::uint32_t(id) | (std::uint32_t(version) << 16));
    if (ext_tail_ != 0) {
        std::uint32_t hdr = cs_.raw32(ext_tail_);
        hdr = (hdr & 0x000fffffu) | (std::uint32_t(off) << 20);
        cs_.setRaw32(ext_tail_, hdr);
    }
    ext_tail_ = off;
    return off;
}

std::uint16_t
findClassicCap(const ConfigSpace &cs, std::uint8_t id)
{
    if (!(cs.raw16(cfg::kStatus) & cfg::kStatusCapList))
        return 0;
    std::uint16_t off = cs.raw8(cfg::kCapPtr);
    int guard = 64;
    while (off >= 0x40 && guard-- > 0) {
        if (cs.raw8(off) == id)
            return off;
        off = cs.raw8(off + 1);
        if (off == 0)
            break;
    }
    return 0;
}

std::uint16_t
findExtendedCap(const ConfigSpace &cs, std::uint16_t id)
{
    std::uint16_t off = 0x100;
    int guard = 256;
    while (off != 0 && guard-- > 0) {
        std::uint32_t hdr = cs.raw32(off);
        if (hdr == 0 || hdr == cfg::kNoDevice)
            return 0;
        if ((hdr & 0xffff) == id)
            return off;
        off = std::uint16_t(hdr >> 20);
    }
    return 0;
}

} // namespace sriov::pci
