/**
 * @file
 * PCIe configuration space: 4 KiB of registers with byte/word/dword
 * access, a write mask distinguishing RW from RO bits, and write hooks
 * so capabilities can react to programmed values.
 */

#ifndef SRIOV_PCI_CONFIG_SPACE_HPP
#define SRIOV_PCI_CONFIG_SPACE_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "pci/types.hpp"

namespace sriov::pci {

class ConfigSpace
{
  public:
    static constexpr std::size_t kSize = 4096;

    ConfigSpace();

    /** @name Raw typed access (no hooks, ignores write mask). @{ */
    std::uint8_t raw8(std::uint16_t off) const;
    std::uint16_t raw16(std::uint16_t off) const;
    std::uint32_t raw32(std::uint16_t off) const;
    void setRaw8(std::uint16_t off, std::uint8_t v);
    void setRaw16(std::uint16_t off, std::uint16_t v);
    void setRaw32(std::uint16_t off, std::uint32_t v);
    /** @} */

    /** Mark [off, off+len) as software-writable. Default is read-only. */
    void allowWrite(std::uint16_t off, std::uint16_t len);

    /**
     * Register a hook called after a software write touches any byte in
     * [off, off+len). Hooks receive the first offset written.
     */
    void onWrite(std::uint16_t off, std::uint16_t len,
                 std::function<void(std::uint16_t)> hook);

    /** @name Software (driver/guest visible) access path. @{ */
    std::uint32_t read(std::uint16_t off, unsigned size) const;
    void write(std::uint16_t off, std::uint32_t v, unsigned size);
    /** @} */

  private:
    struct Hook
    {
        std::uint16_t off;
        std::uint16_t len;
        std::function<void(std::uint16_t)> fn;
    };

    std::array<std::uint8_t, kSize> bytes_{};
    std::array<bool, kSize> writable_{};
    std::vector<Hook> hooks_;
};

} // namespace sriov::pci

#endif // SRIOV_PCI_CONFIG_SPACE_HPP
