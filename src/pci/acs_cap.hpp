/**
 * @file
 * Access Control Services extended capability (ext cap id 0x000d).
 *
 * Lives on switch downstream ports. When P2P Request Redirect is on,
 * peer-to-peer transactions between VFs are forced upstream through the
 * Root Complex and IOMMU instead of being routed directly inside the
 * switch — closing the MMIO-peeking hole described in paper Section 4.3.
 */

#ifndef SRIOV_PCI_ACS_CAP_HPP
#define SRIOV_PCI_ACS_CAP_HPP

#include <cstdint>

#include "pci/capability.hpp"

namespace sriov::pci {

class AcsCapability
{
  public:
    AcsCapability(ConfigSpace &cs, CapabilityAllocator &alloc);

    std::uint16_t offset() const { return off_; }

    bool sourceValidation() const { return ctl() & kSourceValidation; }
    bool requestRedirect() const { return ctl() & kRequestRedirect; }
    bool completionRedirect() const { return ctl() & kCompletionRedirect; }
    bool upstreamForwarding() const { return ctl() & kUpstreamForwarding; }

    void setControl(std::uint16_t bits);

    static constexpr std::uint16_t kCapReg = 4;
    static constexpr std::uint16_t kCtlReg = 6;
    static constexpr std::uint16_t kLen = 8;

    static constexpr std::uint16_t kSourceValidation = 1u << 0;
    static constexpr std::uint16_t kTranslationBlocking = 1u << 1;
    static constexpr std::uint16_t kRequestRedirect = 1u << 2;
    static constexpr std::uint16_t kCompletionRedirect = 1u << 3;
    static constexpr std::uint16_t kUpstreamForwarding = 1u << 4;

  private:
    std::uint16_t ctl() const { return cs_.raw16(off_ + kCtlReg); }

    ConfigSpace &cs_;
    std::uint16_t off_;
};

} // namespace sriov::pci

#endif // SRIOV_PCI_ACS_CAP_HPP
