/**
 * @file
 * HotplugSlot: virtual (ACPI-style) hot-plug of a PCI function.
 *
 * Used twice in the reproduction: the IOVM hot-adds VFs into the host
 * OS (they are invisible to scans, paper §4.1), and DNIS hot-removes /
 * hot-adds the VF in the guest around migration (paper §4.4). Removal
 * is a two-phase handshake: the controller signals the OS, the OS
 * quiesces the driver and ejects, then the slot empties.
 */

#ifndef SRIOV_PCI_HOTPLUG_SLOT_HPP
#define SRIOV_PCI_HOTPLUG_SLOT_HPP

#include <functional>
#include <string>

#include "pci/function.hpp"

namespace sriov::pci {

/** OS-side listener for slot events. */
class HotplugListener
{
  public:
    virtual ~HotplugListener() = default;

    /** A function appeared in the slot; the OS should bind a driver. */
    virtual void hotAdded(PciFunction &fn) = 0;

    /**
     * The platform requests removal. The OS must quiesce and then call
     * HotplugSlot::eject() (possibly later, after driver teardown).
     */
    virtual void removeRequested(PciFunction &fn) = 0;
};

class HotplugSlot
{
  public:
    explicit HotplugSlot(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    bool occupied() const { return fn_ != nullptr; }
    PciFunction *occupant() { return fn_; }

    void setListener(HotplugListener *l) { listener_ = l; }

    /** Platform side: insert a function and notify the OS. */
    void insert(PciFunction &fn);

    /** Platform side: begin the surprise-free removal handshake. */
    void requestRemoval(std::function<void()> on_ejected = nullptr);

    /** OS side: acknowledge removal; empties the slot. */
    void eject();

    bool removalPending() const { return removal_pending_; }

  private:
    std::string name_;
    PciFunction *fn_ = nullptr;
    HotplugListener *listener_ = nullptr;
    bool removal_pending_ = false;
    std::function<void()> on_ejected_;
};

} // namespace sriov::pci

#endif // SRIOV_PCI_HOTPLUG_SLOT_HPP
