#include "pci/hotplug_slot.hpp"

#include "sim/log.hpp"

namespace sriov::pci {

void
HotplugSlot::insert(PciFunction &fn)
{
    if (fn_)
        sim::panic("slot %s already occupied", name_.c_str());
    fn_ = &fn;
    removal_pending_ = false;
    if (listener_)
        listener_->hotAdded(fn);
}

void
HotplugSlot::requestRemoval(std::function<void()> on_ejected)
{
    if (!fn_)
        sim::panic("removal requested on empty slot %s", name_.c_str());
    removal_pending_ = true;
    on_ejected_ = std::move(on_ejected);
    if (listener_) {
        listener_->removeRequested(*fn_);
    } else {
        // Surprise removal: no OS to quiesce the driver.
        eject();
    }
}

void
HotplugSlot::eject()
{
    if (!fn_)
        sim::panic("eject on empty slot %s", name_.c_str());
    fn_ = nullptr;
    removal_pending_ = false;
    if (on_ejected_) {
        auto cb = std::move(on_ejected_);
        on_ejected_ = nullptr;
        cb();
    }
}

} // namespace sriov::pci
