#include "pci/msi_cap.hpp"

#include "sim/log.hpp"

namespace sriov::pci {

MsiMessage
MsiMessage::forVector(std::uint8_t apic_id, std::uint8_t vec)
{
    MsiMessage m;
    m.address = 0xfee00000ull | (std::uint64_t(apic_id) << 12);
    m.data = vec;
    return m;
}

MsiCapability::MsiCapability(ConfigSpace &cs, CapabilityAllocator &alloc)
    : cs_(cs), off_(alloc.addClassic(capid::kMsi, kLen))
{
    cs_.setRaw16(off_ + kMsgCtl, kCtl64Bit | kCtlPerVectorMask);
    cs_.allowWrite(off_ + kMsgCtl, 2);
    cs_.allowWrite(off_ + kAddrLo, 4);
    cs_.allowWrite(off_ + kAddrHi, 4);
    cs_.allowWrite(off_ + kData, 2);
    cs_.allowWrite(off_ + kMask, 4);
    cs_.onWrite(off_ + kMask, 4, [this](std::uint16_t) {
        bool m = masked();
        for (auto &h : mask_hooks_)
            h(m);
    });
}

bool
MsiCapability::enabled() const
{
    return cs_.raw16(off_ + kMsgCtl) & kCtlEnable;
}

bool
MsiCapability::masked() const
{
    return cs_.raw32(off_ + kMask) & 1u;
}

MsiMessage
MsiCapability::message() const
{
    MsiMessage m;
    m.address = std::uint64_t(cs_.raw32(off_ + kAddrLo))
        | (std::uint64_t(cs_.raw32(off_ + kAddrHi)) << 32);
    m.data = cs_.raw16(off_ + kData);
    return m;
}

void
MsiCapability::setPending(bool p)
{
    pending_ = p;
    cs_.setRaw32(off_ + kPending, p ? 1u : 0u);
}

void
MsiCapability::program(const MsiMessage &msg)
{
    cs_.write(off_ + kAddrLo, std::uint32_t(msg.address), 4);
    cs_.write(off_ + kAddrHi, std::uint32_t(msg.address >> 32), 4);
    cs_.write(off_ + kData, msg.data, 2);
}

void
MsiCapability::setEnable(bool en)
{
    std::uint16_t ctl = cs_.raw16(off_ + kMsgCtl);
    ctl = en ? (ctl | kCtlEnable) : (ctl & ~kCtlEnable);
    cs_.write(off_ + kMsgCtl, ctl, 2);
}

void
MsiCapability::setMask(bool m)
{
    cs_.write(off_ + kMask, m ? 1u : 0u, 4);
}

MsixCapability::MsixCapability(ConfigSpace &cs, CapabilityAllocator &alloc,
                               unsigned table_size, std::uint8_t bar_index)
    : cs_(cs), off_(alloc.addClassic(capid::kMsix, kLen)),
      entries_(table_size)
{
    if (table_size == 0 || table_size > 2048)
        sim::fatal("MSI-X table size %u out of range", table_size);
    cs_.setRaw16(off_ + kMsgCtl, std::uint16_t(table_size - 1));
    cs_.allowWrite(off_ + kMsgCtl, 2);
    cs_.setRaw32(off_ + kTableOff, bar_index);        // table at BAR start
    cs_.setRaw32(off_ + kPbaOff, bar_index | 0x800);  // PBA at +2 KiB
}

bool
MsixCapability::enabled() const
{
    return cs_.raw16(off_ + kMsgCtl) & kCtlEnable;
}

void
MsixCapability::setEnable(bool en)
{
    std::uint16_t ctl = cs_.raw16(off_ + kMsgCtl);
    ctl = en ? (ctl | kCtlEnable) : (ctl & ~kCtlEnable);
    cs_.write(off_ + kMsgCtl, ctl, 2);
}

bool
MsixCapability::functionMasked() const
{
    return cs_.raw16(off_ + kMsgCtl) & kCtlFuncMask;
}

void
MsixCapability::programEntry(unsigned i, const MsiMessage &msg)
{
    entry(i).msg = msg;
}

void
MsixCapability::maskEntry(unsigned i, bool masked)
{
    Entry &e = entry(i);
    bool was = e.masked;
    e.masked = masked;
    if (was != masked) {
        for (auto &h : mask_hooks_)
            h(i, masked);
    }
}

bool
MsixCapability::deliverable(unsigned i) const
{
    return enabled() && !functionMasked() && !entry(i).masked;
}

} // namespace sriov::pci
