/**
 * @file
 * SR-IOV extended capability (PCI-SIG SR-IOV 1.1, ext cap id 0x0010).
 *
 * Lives in the PF's extended configuration space. The PF driver
 * programs NumVFs and sets VF Enable; the device then instantiates its
 * Virtual Functions at RIDs computed from First VF Offset / VF Stride.
 * The capability calls back into the owning device on enable/disable so
 * the device can create or destroy VF state (paper Sections 2 and 4.1).
 */

#ifndef SRIOV_PCI_SRIOV_CAP_HPP
#define SRIOV_PCI_SRIOV_CAP_HPP

#include <cstdint>
#include <functional>

#include "pci/capability.hpp"

namespace sriov::pci {

class SriovCapability
{
  public:
    struct Params
    {
        std::uint16_t total_vfs = 7;    ///< 82576: 7 VFs per port
        std::uint16_t initial_vfs = 7;
        std::uint16_t first_vf_offset = 0x80;
        std::uint16_t vf_stride = 2;
        std::uint16_t vf_device_id = 0x10ca;    ///< 82576 VF
    };

    SriovCapability(ConfigSpace &cs, CapabilityAllocator &alloc,
                    const Params &p);

    std::uint16_t offset() const { return off_; }

    bool vfEnabled() const;
    bool vfMemoryEnabled() const;
    std::uint16_t numVfs() const;
    std::uint16_t totalVfs() const;
    std::uint16_t firstVfOffset() const;
    std::uint16_t vfStride() const;
    std::uint16_t vfDeviceId() const;

    /** RID of VF @p i given the owning PF's RID. */
    Rid vfRid(Rid pf_rid, unsigned i) const;

    /** @name PF-driver-side programming helpers. @{ */
    void setNumVfs(std::uint16_t n);
    void setVfEnable(bool en);
    /** @} */

    /**
     * Hook invoked on VF Enable transitions with (enabled, num_vfs).
     * The device creates/destroys VF functions here.
     */
    void onVfEnable(std::function<void(bool, std::uint16_t)> fn)
    {
        enable_hooks_.push_back(std::move(fn));
    }

    /** Layout (offsets from capability base, per SR-IOV spec). */
    static constexpr std::uint16_t kCaps = 0x04;
    static constexpr std::uint16_t kControl = 0x08;
    static constexpr std::uint16_t kStatus = 0x0a;
    static constexpr std::uint16_t kInitialVfs = 0x0c;
    static constexpr std::uint16_t kTotalVfs = 0x0e;
    static constexpr std::uint16_t kNumVfs = 0x10;
    static constexpr std::uint16_t kFirstVfOffset = 0x14;
    static constexpr std::uint16_t kVfStride = 0x16;
    static constexpr std::uint16_t kVfDeviceId = 0x1a;
    static constexpr std::uint16_t kSupportedPageSizes = 0x1c;
    static constexpr std::uint16_t kSystemPageSize = 0x20;
    static constexpr std::uint16_t kVfBar0 = 0x24;
    static constexpr std::uint16_t kLen = 0x40;

    static constexpr std::uint16_t kCtlVfEnable = 1u << 0;
    static constexpr std::uint16_t kCtlVfMse = 1u << 3;

  private:
    ConfigSpace &cs_;
    std::uint16_t off_;
    bool last_enable_ = false;
    std::vector<std::function<void(bool, std::uint16_t)>> enable_hooks_;
};

} // namespace sriov::pci

#endif // SRIOV_PCI_SRIOV_CAP_HPP
