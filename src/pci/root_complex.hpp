/**
 * @file
 * RootComplex: the host bridge. Owns the buses, allocates MMIO
 * addresses to BARs, routes memory transactions to functions, and is
 * the point where upstream-forwarded P2P requests meet the IOMMU.
 */

#ifndef SRIOV_PCI_ROOT_COMPLEX_HPP
#define SRIOV_PCI_ROOT_COMPLEX_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "pci/bus.hpp"

namespace sriov::pci {

class RootComplex
{
  public:
    RootComplex();

    /** Create (or fetch) bus @p n. */
    PciBus &bus(std::uint8_t n);

    /** Attach a function and assign addresses to its declared BARs. */
    void plug(PciFunction &fn);
    void unplug(const PciFunction &fn);

    /** Locate the function that owns MMIO address @p addr. */
    struct MmioTarget
    {
        PciFunction *fn = nullptr;
        unsigned bar = 0;
        std::uint64_t offset = 0;
    };
    MmioTarget resolveMmio(std::uint64_t addr);

    std::uint64_t mmioRead(std::uint64_t addr);
    void mmioWrite(std::uint64_t addr, std::uint64_t val);

    /** Find any attached function by RID across all buses. */
    PciFunction *byRid(Rid rid);

    /** Base of the MMIO window used for BAR allocation. */
    static constexpr std::uint64_t kMmioBase = 0xc000'0000ull;

  private:
    std::map<std::uint8_t, std::unique_ptr<PciBus>> buses_;
    std::uint64_t next_mmio_ = kMmioBase;

    struct Window
    {
        std::uint64_t base;
        std::uint64_t size;
        PciFunction *fn;
        unsigned bar;
    };
    std::vector<Window> windows_;
};

} // namespace sriov::pci

#endif // SRIOV_PCI_ROOT_COMPLEX_HPP
