/**
 * @file
 * PciSwitch: a PCI Express switch with one upstream and N downstream
 * ports, each downstream port carrying an ACS capability.
 *
 * The security-relevant behaviour (paper Section 4.3): a peer-to-peer
 * transaction between two downstream ports is routed directly inside
 * the switch — bypassing the IOMMU — unless the source port's ACS
 * P2P Request Redirect control forces it upstream to the Root Complex,
 * where the IOMMU validates it.
 */

#ifndef SRIOV_PCI_SWITCH_HPP
#define SRIOV_PCI_SWITCH_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "pci/acs_cap.hpp"
#include "pci/function.hpp"

namespace sriov::pci {

class PciSwitch
{
  public:
    enum class Route
    {
        DirectP2P,              ///< routed inside the switch; no IOMMU
        RedirectedUpstream,     ///< forwarded to Root Complex + IOMMU
        Blocked,                ///< no target / translation blocked
    };

    /** A downstream port: a bridge function carrying ACS. */
    class DownstreamPort
    {
      public:
        explicit DownstreamPort(Bdf bdf);

        PciFunction &bridge() { return bridge_; }
        AcsCapability &acs() { return acs_; }

        /** Function attached below this port (one per port here). */
        void attach(PciFunction *fn) { attached_ = fn; }
        PciFunction *attached() { return attached_; }

      private:
        PciFunction bridge_;
        AcsCapability acs_;
        PciFunction *attached_ = nullptr;
    };

    explicit PciSwitch(unsigned num_downstream, std::uint8_t bus = 4);

    unsigned portCount() const { return unsigned(ports_.size()); }
    DownstreamPort &port(unsigned i) { return *ports_.at(i); }

    /** Port index owning @p rid, or -1. */
    int portOfRid(Rid rid);

    /**
     * Route a memory request from the function below @p src_port toward
     * an address owned by the function below another downstream port.
     */
    Route routePeerRequest(unsigned src_port, unsigned dst_port) const;

    /**
     * Full P2P access resolution by RID/address ownership; @p dst_rid
     * names the peer whose MMIO is targeted.
     */
    Route accessPeer(Rid src_rid, Rid dst_rid);

    /** Turn P2P request redirect on/off for every downstream port. */
    void setRedirectAll(bool on);

  private:
    std::vector<std::unique_ptr<DownstreamPort>> ports_;
};

} // namespace sriov::pci

#endif // SRIOV_PCI_SWITCH_HPP
