#include "pci/sriov_cap.hpp"

#include "sim/log.hpp"

namespace sriov::pci {

SriovCapability::SriovCapability(ConfigSpace &cs, CapabilityAllocator &alloc,
                                 const Params &p)
    : cs_(cs), off_(alloc.addExtended(capid::kExtSriov, 1, kLen))
{
    cs_.setRaw16(off_ + kInitialVfs, p.initial_vfs);
    cs_.setRaw16(off_ + kTotalVfs, p.total_vfs);
    cs_.setRaw16(off_ + kFirstVfOffset, p.first_vf_offset);
    cs_.setRaw16(off_ + kVfStride, p.vf_stride);
    cs_.setRaw16(off_ + kVfDeviceId, p.vf_device_id);
    cs_.setRaw32(off_ + kSupportedPageSizes, 0x553);    // 4K..1G

    cs_.allowWrite(off_ + kControl, 2);
    cs_.allowWrite(off_ + kNumVfs, 2);
    cs_.allowWrite(off_ + kSystemPageSize, 4);

    cs_.onWrite(off_ + kControl, 2, [this](std::uint16_t) {
        bool en = vfEnabled();
        if (en != last_enable_) {
            last_enable_ = en;
            for (auto &h : enable_hooks_)
                h(en, numVfs());
        }
    });
    cs_.onWrite(off_ + kNumVfs, 2, [this](std::uint16_t) {
        if (vfEnabled())
            sim::warn("NumVFs written while VF Enable set (spec violation)");
    });
}

bool
SriovCapability::vfEnabled() const
{
    return cs_.raw16(off_ + kControl) & kCtlVfEnable;
}

bool
SriovCapability::vfMemoryEnabled() const
{
    return cs_.raw16(off_ + kControl) & kCtlVfMse;
}

std::uint16_t SriovCapability::numVfs() const
{
    return cs_.raw16(off_ + kNumVfs);
}

std::uint16_t SriovCapability::totalVfs() const
{
    return cs_.raw16(off_ + kTotalVfs);
}

std::uint16_t SriovCapability::firstVfOffset() const
{
    return cs_.raw16(off_ + kFirstVfOffset);
}

std::uint16_t SriovCapability::vfStride() const
{
    return cs_.raw16(off_ + kVfStride);
}

std::uint16_t SriovCapability::vfDeviceId() const
{
    return cs_.raw16(off_ + kVfDeviceId);
}

Rid
SriovCapability::vfRid(Rid pf_rid, unsigned i) const
{
    return Rid(pf_rid + firstVfOffset() + i * vfStride());
}

void
SriovCapability::setNumVfs(std::uint16_t n)
{
    if (n > totalVfs())
        sim::fatal("NumVFs %u exceeds TotalVFs %u", n, totalVfs());
    cs_.write(off_ + kNumVfs, n, 2);
}

void
SriovCapability::setVfEnable(bool en)
{
    std::uint16_t ctl = cs_.raw16(off_ + kControl);
    ctl = en ? (ctl | kCtlVfEnable | kCtlVfMse)
             : (ctl & ~(kCtlVfEnable | kCtlVfMse));
    cs_.write(off_ + kControl, ctl, 2);
}

} // namespace sriov::pci
