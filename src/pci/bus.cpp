#include "pci/bus.hpp"

#include "sim/log.hpp"

namespace sriov::pci {

namespace {
std::uint16_t
slotKey(std::uint8_t dev, std::uint8_t fn)
{
    return std::uint16_t((dev << 3) | fn);
}
} // namespace

void
PciBus::attach(PciFunction &fn)
{
    Bdf b = fn.bdf();
    if (b.bus != number_)
        sim::panic("attaching %s to bus %u", fn.name().c_str(), number_);
    auto [it, inserted] = slots_.emplace(slotKey(b.dev, b.fn), &fn);
    if (!inserted)
        sim::panic("slot %s already occupied", b.toString().c_str());
}

void
PciBus::detach(const PciFunction &fn)
{
    Bdf b = fn.bdf();
    slots_.erase(slotKey(b.dev, b.fn));
}

PciFunction *
PciBus::at(std::uint8_t dev, std::uint8_t fn)
{
    auto it = slots_.find(slotKey(dev, fn));
    return it == slots_.end() ? nullptr : it->second;
}

PciFunction *
PciBus::byRid(Rid rid)
{
    Bdf b = Bdf::fromRid(rid);
    if (b.bus != number_)
        return nullptr;
    return at(b.dev, b.fn);
}

std::uint32_t
PciBus::configRead(Bdf bdf, std::uint16_t off, unsigned size)
{
    PciFunction *f = at(bdf.dev, bdf.fn);
    if (!f)
        return cfg::kNoDevice;
    // A trimmed VF does not answer the probe path at the vendor-ID
    // register; all other registers respond so an owner that already
    // knows the VF exists (the IOVM) can manage it.
    if (!f->respondsToScan() && off == cfg::kVendorId)
        return cfg::kNoDevice;
    return f->config().read(off, size);
}

void
PciBus::configWrite(Bdf bdf, std::uint16_t off, std::uint32_t v,
                    unsigned size)
{
    PciFunction *f = at(bdf.dev, bdf.fn);
    if (f)
        f->config().write(off, v, size);
}

std::vector<PciFunction *>
PciBus::scan()
{
    std::vector<PciFunction *> found;
    for (unsigned dev = 0; dev < 32; ++dev) {
        for (unsigned fn = 0; fn < 8; ++fn) {
            Bdf b{number_, std::uint8_t(dev), std::uint8_t(fn)};
            std::uint32_t vid = configRead(b, cfg::kVendorId, 2);
            if (vid != 0xffff && vid != cfg::kNoDevice)
                found.push_back(at(b.dev, b.fn));
        }
    }
    return found;
}

std::vector<PciFunction *>
PciBus::allFunctions()
{
    std::vector<PciFunction *> out;
    out.reserve(slots_.size());
    for (auto &[k, f] : slots_)
        out.push_back(f);
    return out;
}

Bdf
PciBus::freeSlot() const
{
    for (unsigned dev = 0; dev < 32; ++dev) {
        for (unsigned fn = 0; fn < 8; ++fn) {
            if (!slots_.count(slotKey(std::uint8_t(dev), std::uint8_t(fn))))
                return Bdf{number_, std::uint8_t(dev), std::uint8_t(fn)};
        }
    }
    sim::fatal("bus %u full", number_);
}

} // namespace sriov::pci
