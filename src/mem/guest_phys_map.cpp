#include "mem/guest_phys_map.hpp"

#include <algorithm>

#include "sim/log.hpp"

namespace sriov::mem {

void
GuestPhysMap::mapRange(Addr gpa, Addr mpa, Addr len, bool writable)
{
    if (gpa % kPageSize || mpa % kPageSize)
        sim::panic("%s: unaligned mapping", name_.c_str());
    for (Addr off = 0; off < len; off += kPageSize)
        table_[pageOf(gpa + off)] = Entry{pageOf(mpa + off), writable};
}

void
GuestPhysMap::unmapRange(Addr gpa, Addr len)
{
    for (Addr off = 0; off < len; off += kPageSize)
        table_.erase(pageOf(gpa + off));
}

std::optional<Addr>
GuestPhysMap::translate(Addr gpa) const
{
    auto it = table_.find(pageOf(gpa));
    if (it == table_.end())
        return std::nullopt;
    return it->second.mpa_page * kPageSize + gpa % kPageSize;
}

bool
GuestPhysMap::writable(Addr gpa) const
{
    auto it = table_.find(pageOf(gpa));
    return it != table_.end() && it->second.writable;
}

void
GuestPhysMap::enableDirtyLog()
{
    dirty_log_ = true;
    dirty_.clear();
}

void
GuestPhysMap::disableDirtyLog()
{
    dirty_log_ = false;
    dirty_.clear();
}

void
GuestPhysMap::markDirty(Addr gpa)
{
    if (dirty_log_)
        dirty_.insert(pageOf(gpa));
}

void
GuestPhysMap::markDirtyRange(Addr gpa, Addr len)
{
    if (!dirty_log_)
        return;
    for (Addr off = 0; off < len; off += kPageSize)
        dirty_.insert(pageOf(gpa + off));
    if (len % kPageSize == 0 && len > 0)
        dirty_.insert(pageOf(gpa + len - 1));
}

std::vector<Addr>
GuestPhysMap::drainDirty()
{
    // The only place dirty_'s contents are walked: snapshot and sort,
    // so hash order cannot reach a caller.
    // simlint:allow(no-unordered-iteration): sorted before it escapes
    std::vector<Addr> out(dirty_.begin(), dirty_.end());
    dirty_.clear();
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace sriov::mem
