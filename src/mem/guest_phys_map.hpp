/**
 * @file
 * GuestPhysMap: a guest-physical → machine-physical page table.
 *
 * The same structure serves three roles: the EPT-like second-level
 * translation for an HVM guest, the IOMMU page table indexed by the
 * guest's VF RID (paper Section 2 — "RID is used to index the IOMMU
 * page table, so that different VMs can use different page tables"),
 * and the dirty-page log driving pre-copy live migration.
 */

#ifndef SRIOV_MEM_GUEST_PHYS_MAP_HPP
#define SRIOV_MEM_GUEST_PHYS_MAP_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mem/machine_memory.hpp"

namespace sriov::mem {

class GuestPhysMap
{
  public:
    explicit GuestPhysMap(std::string name = "guest")
        : name_(std::move(name))
    {}

    const std::string &name() const { return name_; }

    /** Map [gpa, gpa+len) to [mpa, mpa+len); page aligned. */
    void mapRange(Addr gpa, Addr mpa, Addr len, bool writable = true);
    void unmapRange(Addr gpa, Addr len);

    /** Translate one address. std::nullopt on unmapped. */
    std::optional<Addr> translate(Addr gpa) const;
    bool writable(Addr gpa) const;

    std::size_t mappedPages() const { return table_.size(); }

    /** @name Dirty logging (pre-copy migration). @{ */
    void enableDirtyLog();
    void disableDirtyLog();
    bool dirtyLogEnabled() const { return dirty_log_; }
    void markDirty(Addr gpa);
    void markDirtyRange(Addr gpa, Addr len);
    std::size_t dirtyPageCount() const { return dirty_.size(); }
    /**
     * Returns the dirty pages (sorted ascending) and clears the log —
     * one pre-copy round. Sorted so that consumers iterating the
     * snapshot (page send order, reports) are deterministic; the
     * internal set's hash order never escapes this class.
     */
    std::vector<Addr> drainDirty();
    /** @} */

  private:
    struct Entry
    {
        Addr mpa_page;
        bool writable;
    };

    std::string name_;
    std::unordered_map<Addr, Entry> table_;    // gpa page -> entry
    bool dirty_log_ = false;
    std::unordered_set<Addr> dirty_;           // gpa pages
};

} // namespace sriov::mem

#endif // SRIOV_MEM_GUEST_PHYS_MAP_HPP
