#include "mem/machine_memory.hpp"

#include "sim/log.hpp"

namespace sriov::mem {

MachineMemory::MachineMemory(Addr bytes) : size_(bytes)
{
    if (bytes < kPageSize)
        sim::fatal("machine memory too small");
}

Addr
MachineMemory::allocate(Addr bytes, const std::string &owner)
{
    Addr sz = (bytes + kPageSize - 1) & ~(kPageSize - 1);
    if (next_ + sz > size_)
        sim::fatal("machine memory exhausted: %s wants %llu bytes",
                   owner.c_str(), static_cast<unsigned long long>(bytes));
    Addr base = next_;
    next_ += sz;
    regions_.push_back(Region{base, sz, owner});
    return base;
}

std::string
MachineMemory::ownerOf(Addr addr) const
{
    for (const auto &r : regions_) {
        if (addr >= r.base && addr < r.base + r.size)
            return r.owner;
    }
    return "";
}

std::uint64_t
MachineMemory::peek64(Addr addr) const
{
    auto it = content_.find(addr);
    return it == content_.end() ? 0 : it->second;
}

} // namespace sriov::mem
