/**
 * @file
 * Iommu: DMA remapping hardware (VT-d style).
 *
 * Context entries map each Requester ID to the owning domain's page
 * table, so a VF programmed with guest-physical DMA addresses is
 * remapped to machine-physical addresses, and a VF can never touch
 * memory outside its guest (paper Sections 1, 2). Faults are counted
 * and reported, never silently dropped.
 */

#ifndef SRIOV_MEM_IOMMU_HPP
#define SRIOV_MEM_IOMMU_HPP

#include <cstdint>
#include <unordered_map>

#include "mem/guest_phys_map.hpp"
#include "pci/types.hpp"
#include "sim/stats.hpp"

namespace sriov::mem {

class Iommu
{
  public:
    enum class Fault
    {
        None,
        NoContext,        ///< RID has no context entry
        NotPresent,       ///< address unmapped in the domain table
        WriteProtected,   ///< DMA write to a read-only mapping
    };

    struct Result
    {
        Fault fault = Fault::None;
        Addr mpa = 0;

        bool ok() const { return fault == Fault::None; }
    };

    /** Bind @p rid to @p domain's page table (context entry). */
    void attach(pci::Rid rid, GuestPhysMap &domain);
    void detach(pci::Rid rid);
    bool attached(pci::Rid rid) const { return ctx_.count(rid) != 0; }
    GuestPhysMap *domainOf(pci::Rid rid);

    /**
     * Translate one DMA access. Writes mark the target page dirty in
     * the domain's dirty log (when enabled).
     */
    Result translate(pci::Rid rid, Addr gpa, bool is_write);

    /** Translate a buffer; fails if any page faults. */
    Result translateRange(pci::Rid rid, Addr gpa, Addr len, bool is_write);

    const sim::Counter &faults() const { return faults_; }
    const sim::Counter &translations() const { return translations_; }

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        faults_.fluidVisit(v, "iommu.faults");
        translations_.fluidVisit(v, "iommu.translations");
    }

  private:
    std::unordered_map<pci::Rid, GuestPhysMap *> ctx_;
    sim::Counter faults_;
    sim::Counter translations_;
};

} // namespace sriov::mem

#endif // SRIOV_MEM_IOMMU_HPP
