/**
 * @file
 * MachineMemory: the host's physical memory, carved into per-owner
 * regions (dom0, guests, device FIFOs). Contents are not simulated —
 * only ownership and a small sparse poke/peek surface for tests — but
 * allocation is real so double-allocation and exhaustion are caught.
 */

#ifndef SRIOV_MEM_MACHINE_MEMORY_HPP
#define SRIOV_MEM_MACHINE_MEMORY_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sriov::mem {

using Addr = std::uint64_t;

constexpr Addr kPageSize = 4096;
constexpr Addr pageOf(Addr a) { return a / kPageSize; }
constexpr Addr pageBase(Addr a) { return a & ~(kPageSize - 1); }

class MachineMemory
{
  public:
    /** @param bytes total machine memory (paper testbed: 12 GiB). */
    explicit MachineMemory(Addr bytes);

    Addr size() const { return size_; }
    Addr allocated() const { return next_; }
    Addr freeBytes() const { return size_ - next_; }

    /**
     * Allocate @p bytes (rounded up to pages) for @p owner.
     * @return base machine-physical address.
     */
    Addr allocate(Addr bytes, const std::string &owner);

    /** Owner of the page containing @p addr ("" if unallocated). */
    std::string ownerOf(Addr addr) const;

    /** @name Sparse content surface for tests. @{ */
    void poke64(Addr addr, std::uint64_t v) { content_[addr] = v; }
    std::uint64_t peek64(Addr addr) const;
    /** @} */

  private:
    struct Region
    {
        Addr base;
        Addr size;
        std::string owner;
    };

    Addr size_;
    Addr next_ = kPageSize;    // page 0 reserved
    std::vector<Region> regions_;
    std::map<Addr, std::uint64_t> content_;
};

} // namespace sriov::mem

#endif // SRIOV_MEM_MACHINE_MEMORY_HPP
