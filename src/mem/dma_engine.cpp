#include "mem/dma_engine.hpp"

#include <utility>

#include "sim/log.hpp"

namespace sriov::mem {

DmaEngine::DmaEngine(sim::EventQueue &eq, std::string name, Params p)
    : eq_(eq), name_(std::move(name)), params_(p)
{
    if (params_.link_bps <= 0)
        sim::fatal("DmaEngine %s: bad link rate", name_.c_str());
}

DmaEngine::DmaEngine(sim::EventQueue &eq, std::string name)
    : DmaEngine(eq, std::move(name), Params{})
{
}

sim::Time
DmaEngine::serviceTime(std::uint64_t bytes) const
{
    return params_.per_dma_overhead
        + sim::Time::transfer(double(bytes) * 8.0, params_.link_bps);
}

void
DmaEngine::transfer(std::uint64_t bytes, sim::InplaceFn on_done)
{
    queue_.push_back(Xfer{bytes, std::move(on_done)});
    if (!in_service_)
        startNext();
}

void
DmaEngine::startNext()
{
    if (queue_.empty()) {
        in_service_ = false;
        return;
    }
    in_service_ = true;
    Xfer x = std::move(queue_.front());
    queue_.pop_front();
    sim::Time t = serviceTime(x.bytes);
    busy_ += t;
    bytes_moved_.inc(x.bytes);
    transfers_.inc();
    current_done_ = std::move(x.on_done);
    eq_.scheduleIn(t, [this]() { finishCurrent(); });
}

void
DmaEngine::finishCurrent()
{
    // Move the completion out first: it may queue more transfers
    // (reentrancy), and startNext() overwrites current_done_.
    sim::InplaceFn done = std::move(current_done_);
    if (done)
        done();
    startNext();
}

} // namespace sriov::mem
