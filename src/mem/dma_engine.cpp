#include "mem/dma_engine.hpp"

#include <algorithm>
#include <utility>

#include "sim/log.hpp"
#include "sim/thinning.hpp"

namespace sriov::mem {

DmaEngine::DmaEngine(sim::EventQueue &eq, std::string name, Params p)
    : eq_(eq), name_(std::move(name)), params_(p),
      thin_(sim::thinningEnabled())
{
    if (params_.link_bps <= 0)
        sim::fatal("DmaEngine %s: bad link rate", name_.c_str());
}

DmaEngine::DmaEngine(sim::EventQueue &eq, std::string name)
    : DmaEngine(eq, std::move(name), Params{})
{
}

sim::Time
DmaEngine::serviceTime(std::uint64_t bytes) const
{
    return params_.per_dma_overhead
        + sim::Time::transfer(double(bytes) * 8.0, params_.link_bps);
}

// simlint: hot
sim::Time
DmaEngine::reserve(std::uint64_t bytes)
{
    if (!thin_)
        sim::panic("DmaEngine %s: reserve() in exact mode", name_.c_str());
    sim::Time start = std::max(free_at_, eq_.now());
    sim::Time t = serviceTime(bytes);
    // Same accounting the exact path does at service start; these
    // totals are only read at quiescence, where both modes agree.
    busy_ += t;
    bytes_moved_.inc(bytes);
    transfers_.inc();
    // Settle the started prefix here too, not just in queueDepth():
    // an RX-only workload never asks for the depth, and the ring must
    // stay bounded by the in-flight high-water mark, not grow by one
    // entry per transfer forever.
    while (!starts_.empty() && starts_.front() <= eq_.now())
        starts_.pop_front();
    // RingBuf grows only to the burst high-water mark at warm-up;
    // steady state is a masked store (the bench operator-new gate
    // enforces zero allocs at runtime; this makes the waiver explicit).
    // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
    starts_.push_back(start);
    free_at_ = start + t;
    return free_at_;
}

// simlint: hot
sim::Time
DmaEngine::reserve(std::uint64_t bytes, std::uint64_t trace_id,
                   obs::PathStage stage)
{
    sim::Time done_at = reserve(bytes);
    if (pt_)
        pt_->record(pt_comp_, stage, trace_id, done_at);
    return done_at;
}

// simlint: hot
void
DmaEngine::transfer(std::uint64_t bytes, std::uint64_t trace_id,
                    obs::PathStage stage, sim::InplaceFn on_done)
{
    if (thin_) {
        sim::Time done_at = reserve(bytes, trace_id, stage);
        eq_.scheduleAt(done_at, std::move(on_done), "dma.done");
        return;
    }
    // Exact mode stamps at completion (finishCurrent), which lands on
    // the same simulated instant thin mode computes analytically.
    // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
    queue_.push_back(Xfer{bytes, std::move(on_done), trace_id, stage});
    if (!in_service_)
        startNext();
}

// simlint: hot
void
DmaEngine::transfer(std::uint64_t bytes, sim::InplaceFn on_done)
{
    if (thin_) {
        sim::Time done_at = reserve(bytes);
        eq_.scheduleAt(done_at, std::move(on_done), "dma.done");
        return;
    }
    // RingBuf grows only to the burst high-water mark at warm-up;
    // steady state is a masked store (the bench operator-new gate
    // enforces zero allocs at runtime; this makes the waiver explicit).
    // simlint:allow(hot-path-alloc): RingBuf warm-up growth only
    queue_.push_back(Xfer{bytes, std::move(on_done)});
    if (!in_service_)
        startNext();
}

void
DmaEngine::fluidVisit(sim::FluidVisitor &v)
{
    bytes_moved_.fluidVisit(v, "dma.bytes");
    transfers_.fluidVisit(v, "dma.xfers");
    v.time("dma.busy", busy_);
    v.time("dma.free_at", free_at_);
    // Settle the started prefix first so the ring's content depends
    // only on the phase, not on when queueDepth() was last asked.
    while (!starts_.empty() && starts_.front() <= eq_.now())
        starts_.pop_front();
    v.inv("dma.starts", starts_.size());
    for (std::size_t i = 0; i < starts_.size(); ++i)
        v.time("dma.start", starts_[i]);
    // Exact-mode FIFO (empty under thinning).
    v.inv("dma.in_service", in_service_ ? 1 : 0);
    if (in_service_) {
        v.u64("dma.cur_trace", current_trace_);
        v.inv("dma.cur_stage", std::uint64_t(current_stage_));
    }
    v.inv("dma.qdepth", queue_.size());
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        v.inv("dma.q_bytes", queue_[i].bytes);
        v.u64("dma.q_trace", queue_[i].trace_id);
    }
}

std::size_t
DmaEngine::queueDepth() const
{
    if (!thin_)
        return queue_.size();
    // Transfers whose service has not begun; settle the started prefix.
    while (!starts_.empty() && starts_.front() <= eq_.now())
        starts_.pop_front();
    return starts_.size();
}

// simlint: hot
void
DmaEngine::startNext()
{
    if (queue_.empty()) {
        in_service_ = false;
        return;
    }
    in_service_ = true;
    Xfer x = std::move(queue_.front());
    queue_.pop_front();
    sim::Time t = serviceTime(x.bytes);
    busy_ += t;
    bytes_moved_.inc(x.bytes);
    transfers_.inc();
    current_done_ = std::move(x.on_done);
    current_trace_ = x.trace_id;
    current_stage_ = x.stage;
    eq_.scheduleIn(t, [this]() { finishCurrent(); }, "dma.done");
}

// simlint: hot
void
DmaEngine::finishCurrent()
{
    // Move the completion out first: it may queue more transfers
    // (reentrancy), and startNext() overwrites current_done_.
    sim::InplaceFn done = std::move(current_done_);
    if (pt_ && current_stage_ != obs::PathStage::Count)
        pt_->record(pt_comp_, current_stage_, current_trace_, eq_.now());
    current_trace_ = 0;
    current_stage_ = obs::PathStage::Count;
    if (done)
        done();
    startNext();
}

} // namespace sriov::mem
