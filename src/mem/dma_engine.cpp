#include "mem/dma_engine.hpp"

#include <utility>

#include "sim/log.hpp"

namespace sriov::mem {

DmaEngine::DmaEngine(sim::EventQueue &eq, std::string name, Params p)
    : eq_(eq), name_(std::move(name)), params_(p)
{
    if (params_.link_bps <= 0)
        sim::fatal("DmaEngine %s: bad link rate", name_.c_str());
}

DmaEngine::DmaEngine(sim::EventQueue &eq, std::string name)
    : DmaEngine(eq, std::move(name), Params{})
{
}

sim::Time
DmaEngine::serviceTime(std::uint64_t bytes) const
{
    return params_.per_dma_overhead
        + sim::Time::transfer(double(bytes) * 8.0, params_.link_bps);
}

void
DmaEngine::transfer(std::uint64_t bytes, std::function<void()> on_done)
{
    queue_.push_back(Xfer{bytes, std::move(on_done)});
    if (!in_service_)
        startNext();
}

void
DmaEngine::startNext()
{
    if (queue_.empty()) {
        in_service_ = false;
        return;
    }
    in_service_ = true;
    Xfer x = std::move(queue_.front());
    queue_.pop_front();
    sim::Time t = serviceTime(x.bytes);
    busy_ += t;
    bytes_moved_.inc(x.bytes);
    transfers_.inc();
    eq_.scheduleIn(t, [this, done = std::move(x.on_done)]() {
        if (done)
            done();
        startNext();
    });
}

} // namespace sriov::mem
