#include "mem/iommu.hpp"

#include "sim/log.hpp"

namespace sriov::mem {

void
Iommu::attach(pci::Rid rid, GuestPhysMap &domain)
{
    ctx_[rid] = &domain;
}

void
Iommu::detach(pci::Rid rid)
{
    ctx_.erase(rid);
}

GuestPhysMap *
Iommu::domainOf(pci::Rid rid)
{
    auto it = ctx_.find(rid);
    return it == ctx_.end() ? nullptr : it->second;
}

Iommu::Result
Iommu::translate(pci::Rid rid, Addr gpa, bool is_write)
{
    translations_.inc();
    auto it = ctx_.find(rid);
    if (it == ctx_.end()) {
        faults_.inc();
        return Result{Fault::NoContext, 0};
    }
    GuestPhysMap &dom = *it->second;
    auto mpa = dom.translate(gpa);
    if (!mpa) {
        faults_.inc();
        return Result{Fault::NotPresent, 0};
    }
    if (is_write) {
        if (!dom.writable(gpa)) {
            faults_.inc();
            return Result{Fault::WriteProtected, 0};
        }
        dom.markDirty(gpa);
    }
    return Result{Fault::None, *mpa};
}

Iommu::Result
Iommu::translateRange(pci::Rid rid, Addr gpa, Addr len, bool is_write)
{
    Result first{};
    for (Addr off = 0; off < len; off += kPageSize) {
        Result r = translate(rid, gpa + off, is_write);
        if (!r.ok())
            return r;
        if (off == 0)
            first = r;
    }
    if (len == 0)
        return translate(rid, gpa, is_write);
    return first;
}

} // namespace sriov::mem
