/**
 * @file
 * DmaEngine: a PCIe link as a FIFO bandwidth server.
 *
 * Each NIC hangs off one link. A transfer costs a fixed per-DMA
 * overhead (descriptor fetch, doorbell, TLP framing) plus payload time
 * at the link's effective data rate. Inter-VM traffic on an SR-IOV
 * port crosses the link twice (memory → NIC FIFO → memory), which is
 * what caps it near 2.8 Gb/s in paper Section 6.3.
 *
 * Thin mode (default, see sim/thinning.hpp): the FIFO is strict and
 * service times are deterministic, so each transfer's completion
 * instant is known at submit time — the completion callback is
 * scheduled directly at that instant (one event per transfer, no
 * start/finish bookkeeping events), and reserve() exposes the instant
 * to callers that can settle their own accounting analytically and
 * need no completion event at all. Exact mode (--no-thin) keeps the
 * reference one-transfer-in-service implementation.
 */

#ifndef SRIOV_MEM_DMA_ENGINE_HPP
#define SRIOV_MEM_DMA_ENGINE_HPP

#include <cstdint>
#include <string>

#include "obs/pathtrace.hpp"
#include "sim/event_queue.hpp"
#include "sim/inplace_fn.hpp"
#include "sim/ring_buf.hpp"
#include "sim/stats.hpp"

namespace sriov::mem {

class DmaEngine
{
  public:
    struct Params
    {
        /**
         * Effective payload rate of the link in bits/s. Default models
         * a PCIe Gen1 x4 port (82576) after TLP overhead: ~6.7 Gb/s.
         */
        double link_bps = 6.7e9;
        /** Fixed per-transfer cost (descriptor + doorbell latency). */
        sim::Time per_dma_overhead = sim::Time::ns(940);
    };

    DmaEngine(sim::EventQueue &eq, std::string name, Params p);
    DmaEngine(sim::EventQueue &eq, std::string name);

    const std::string &name() const { return name_; }
    const Params &params() const { return params_; }

    /**
     * Queue a transfer of @p bytes; @p on_done fires when the payload
     * has fully crossed the link.
     */
    void transfer(std::uint64_t bytes, sim::InplaceFn on_done);

    /**
     * transfer() that also stamps the path tracer for packet
     * @p trace_id with @p stage at the completion instant — the same
     * simulated time in thin and exact mode, so attribution stays
     * mode-invariant.
     */
    void transfer(std::uint64_t bytes, std::uint64_t trace_id,
                  obs::PathStage stage, sim::InplaceFn on_done);

    /**
     * Thin-mode only: account a transfer of @p bytes and return its
     * completion instant without scheduling any event. The caller owns
     * making every externally visible effect appear at the returned
     * time (ledgers settled on read, timed hand-over to the wire).
     */
    sim::Time reserve(std::uint64_t bytes);

    /** reserve() that stamps the tracer at the returned instant. */
    sim::Time reserve(std::uint64_t bytes, std::uint64_t trace_id,
                      obs::PathStage stage);

    /** Attach the path tracer; DMA completions stamp @p comp. */
    void
    setPathTracer(obs::PathTracer *pt, std::uint16_t comp)
    {
        pt_ = pt;
        pt_comp_ = comp;
    }

    /** Is the analytic path active (reserve() usable)? */
    bool thin() const { return thin_; }

    /** Time one transfer of @p bytes takes in isolation. */
    sim::Time serviceTime(std::uint64_t bytes) const;

    std::uint64_t bytesMoved() const { return bytes_moved_.value(); }
    std::uint64_t transfers() const { return transfers_.value(); }
    sim::Time busyTime() const { return busy_; }
    /** Transfers waiting behind the one in service. */
    std::size_t queueDepth() const;

    /** Fluid-mode state walk (sim/fluid.hpp): totals and the link
     *  busy-until horizon are linear per period; queued work aligns
     *  slot-wise by FIFO position. */
    void fluidVisit(sim::FluidVisitor &v);

  private:
    struct Xfer
    {
        std::uint64_t bytes;
        sim::InplaceFn on_done;
        std::uint64_t trace_id = 0;
        obs::PathStage stage = obs::PathStage::Count;
    };

    void startNext();
    void finishCurrent();

    sim::EventQueue &eq_;
    std::string name_;
    Params params_;
    bool thin_;
    sim::RingBuf<Xfer> queue_;
    /**
     * Completion of the transfer in service. Kept as a member so the
     * completion event captures only `this` (inline in the event slot)
     * instead of moving the closure into the event; the link is
     * strictly FIFO, so at most one transfer is in service.
     */
    sim::InplaceFn current_done_;
    std::uint64_t current_trace_ = 0;
    obs::PathStage current_stage_ = obs::PathStage::Count;
    bool in_service_ = false;
    obs::PathTracer *pt_ = nullptr;
    std::uint16_t pt_comp_ = 0;
    /** Thin mode: when the link frees up after all accepted work. */
    sim::Time free_at_;
    /**
     * Thin mode: start instants of accepted transfers, pending until
     * their start passes — queueDepth() counts the un-started suffix
     * and lazily pops the settled prefix (hence mutable).
     */
    mutable sim::RingBuf<sim::Time> starts_;
    sim::Time busy_;
    sim::Counter bytes_moved_;
    sim::Counter transfers_;
};

} // namespace sriov::mem

#endif // SRIOV_MEM_DMA_ENGINE_HPP
