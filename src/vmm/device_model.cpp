#include "vmm/device_model.hpp"

#include "vmm/domain.hpp"

namespace sriov::vmm {

DeviceModel::DeviceModel(Domain &guest, sim::CpuServer &host_cpu,
                         const CostModel &cm)
    : guest_(guest), host_cpu_(host_cpu), cm_(cm)
{
}

void
DeviceModel::submitEmulation(double cycles, sim::InplaceFn on_done)
{
    requests_.inc();
    host_cpu_.submit(cycles, tag(), std::move(on_done));
}

void
DeviceModel::emulateMsiMaskWrite(bool)
{
    mask_writes_.inc();
    submitEmulation(cm_.msi_mask_devmodel_dom0);
}

} // namespace sriov::vmm
