/**
 * @file
 * GrantTable: Xen's page-sharing permission mechanism, the substrate
 * of the PV split driver. The frontend grants the backend access to
 * specific pages; the backend validates grant references before
 * copying or mapping. A grant copy is the per-packet data movement
 * whose CPU cost dominates the PV NIC results (Sections 1, 6.5).
 */

#ifndef SRIOV_VMM_GRANT_TABLE_HPP
#define SRIOV_VMM_GRANT_TABLE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/machine_memory.hpp"
#include "sim/stats.hpp"

namespace sriov::vmm {

class GrantTable
{
  public:
    using Ref = std::uint32_t;
    static constexpr Ref kInvalidRef = 0xffffffffu;

    /** Grant @p peer_domid access to the page at @p gpa. */
    Ref grantAccess(mem::Addr gpa, unsigned peer_domid, bool readonly);

    /** Revoke. Fails (returns false) while the grant is mapped. */
    bool endAccess(Ref ref);

    /**
     * Backend side: validate @p ref for @p domid and @p write intent.
     * Returns the granted gpa, or nullopt (and counts a violation).
     */
    std::optional<mem::Addr> validate(Ref ref, unsigned domid, bool write);

    /** Backend side: pin/unpin around a mapping. */
    bool mapGrant(Ref ref, unsigned domid);
    void unmapGrant(Ref ref);

    std::size_t activeGrants() const;
    std::uint64_t violations() const { return violations_.value(); }
    std::uint64_t copies() const { return copies_.value(); }
    void countCopy() { copies_.inc(); }

    /** Fluid-mode state walk (sim/fluid.hpp). Entry gpas are setup
     *  state; steady-state PV traffic only bumps the copy counter. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        violations_.fluidVisit(v, "gnt.violations");
        copies_.fluidVisit(v, "gnt.copies");
    }

  private:
    struct Entry
    {
        bool in_use = false;
        mem::Addr gpa = 0;
        unsigned peer = 0;
        bool readonly = false;
        unsigned map_count = 0;
    };

    std::vector<Entry> entries_;
    sim::Counter violations_;
    sim::Counter copies_;
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_GRANT_TABLE_HPP
