#include "vmm/hotplug_controller.hpp"

#include "sim/log.hpp"
#include "vmm/domain.hpp"

namespace sriov::vmm {

VirtualHotplugController::VirtualHotplugController(Domain &guest)
    : guest_(guest)
{
}

pci::HotplugSlot &
VirtualHotplugController::addSlot(const std::string &name)
{
    if (slot(name))
        sim::fatal("duplicate hotplug slot %s", name.c_str());
    slots_.push_back(std::make_unique<pci::HotplugSlot>(name));
    return *slots_.back();
}

pci::HotplugSlot *
VirtualHotplugController::slot(const std::string &name)
{
    for (auto &s : slots_) {
        if (s->name() == name)
            return s.get();
    }
    return nullptr;
}

} // namespace sriov::vmm
