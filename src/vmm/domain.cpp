#include "vmm/domain.hpp"

#include "sim/log.hpp"

namespace sriov::vmm {

Domain::Domain(unsigned id, std::string name, DomainType type,
               mem::Addr mem_bytes)
    : id_(id), name_(std::move(name)), type_(type), mem_bytes_(mem_bytes),
      gpmap_(name_)
{
}

void
Domain::addVcpu(std::unique_ptr<Vcpu> v)
{
    vcpus_.push_back(std::move(v));
}

mem::Addr
Domain::allocGuestPages(mem::Addr bytes)
{
    mem::Addr sz = (bytes + mem::kPageSize - 1) & ~(mem::kPageSize - 1);
    if (alloc_next_ + sz > mem_bytes_)
        sim::fatal("%s: guest memory exhausted", name_.c_str());
    mem::Addr base = alloc_next_;
    alloc_next_ += sz;
    return base;
}

} // namespace sriov::vmm
