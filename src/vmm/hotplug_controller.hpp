/**
 * @file
 * VirtualHotplugController: the virtual ACPI hot-plug controller the
 * paper adds to Xen's device model (Section 4.4) so the migration
 * manager can signal virtual hot-removal/hot-add of a VF to the guest.
 */

#ifndef SRIOV_VMM_HOTPLUG_CONTROLLER_HPP
#define SRIOV_VMM_HOTPLUG_CONTROLLER_HPP

#include <memory>
#include <string>
#include <vector>

#include "pci/hotplug_slot.hpp"

namespace sriov::vmm {

class Domain;

class VirtualHotplugController
{
  public:
    explicit VirtualHotplugController(Domain &guest);

    Domain &guest() { return guest_; }

    pci::HotplugSlot &addSlot(const std::string &name);
    pci::HotplugSlot *slot(const std::string &name);
    std::size_t slotCount() const { return slots_.size(); }

  private:
    Domain &guest_;
    std::vector<std::unique_ptr<pci::HotplugSlot>> slots_;
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_HOTPLUG_CONTROLLER_HPP
