#include "vmm/pciback.hpp"

#include "vmm/domain.hpp"

namespace sriov::vmm {

Pciback::Pciback(Domain &guest, pci::PciFunction &fn)
    : guest_(guest), fn_(fn)
{
}

std::uint32_t
Pciback::configRead(std::uint16_t off, unsigned size)
{
    return fn_.config().read(off, size);
}

bool
Pciback::writeAllowed(std::uint16_t off, unsigned size) const
{
    // BARs and the header's routing fields stay host-owned.
    std::uint16_t end = std::uint16_t(off + size);
    bool touches_bars = off < pci::cfg::kBar0 + 24 && end > pci::cfg::kBar0;
    bool touches_ids = off < pci::cfg::kCommand;
    return !touches_bars && !touches_ids;
}

void
Pciback::configWrite(std::uint16_t off, std::uint32_t v, unsigned size)
{
    if (!writeAllowed(off, size)) {
        denied_.inc();
        return;
    }
    fn_.config().write(off, v, size);
}

} // namespace sriov::vmm
