/**
 * @file
 * Hypervisor: the Xen-3.4-like platform of the paper's testbed.
 *
 * Owns the machine (16 SMT-thread CPU servers at 2.8 GHz, 12 GiB
 * memory, root complex, IOMMU, interrupt router), the domains, and the
 * virtualization cost paths the paper measures:
 *
 *  - Direct-I/O interrupt delivery: physical MSI → external-interrupt
 *    VM-exit → virtual MSI injection into the guest's virtual LAPIC
 *    (HVM) or event-channel upcall (PVM). Paper Section 4.1.
 *  - Virtual EOI emulation, with or without the Exit-qualification
 *    acceleration of Section 5.2.
 *  - Guest MSI mask/unmask emulation, in the per-guest device model
 *    (slow) or in the hypervisor (Section 5.1's acceleration).
 *
 * VCPU pinning follows Section 6.1: dom0's 8 VCPUs pin 1:1 to threads
 * 0–7; guest VCPUs are bound evenly to the remaining threads.
 */

#ifndef SRIOV_VMM_HYPERVISOR_HPP
#define SRIOV_VMM_HYPERVISOR_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "intr/interrupt_router.hpp"
#include "mem/iommu.hpp"
#include "obs/histogram.hpp"
#include "mem/machine_memory.hpp"
#include "pci/root_complex.hpp"
#include "sim/cpu_server.hpp"
#include "sim/event_queue.hpp"
#include "vmm/cost_model.hpp"
#include "vmm/device_model.hpp"
#include "vmm/domain.hpp"

namespace sriov::vmm {

class Hypervisor
{
  public:
    struct MachineParams
    {
        unsigned num_pcpus = 16;
        unsigned dom0_vcpus = 8;
        mem::Addr mem_bytes = 12ull << 30;
    };

    /** The paper's optimization switches (Section 5). */
    struct OptConfig
    {
        bool mask_unmask_accel = true;    ///< Section 5.1
        bool eoi_accel = true;            ///< Section 5.2
        bool eoi_accel_check = false;     ///< §5.2 instruction check
        /**
         * §5.2's proposed hardware enhancement: the VMCS exposes the
         * faulting instruction's op-code, so the safety check costs
         * nothing extra. Only meaningful with eoi_accel_check.
         */
        bool eoi_hw_opcode = false;
    };

    Hypervisor(sim::EventQueue &eq, CostModel cm, MachineParams mp);
    Hypervisor(sim::EventQueue &eq);
    ~Hypervisor();

    Hypervisor(const Hypervisor &) = delete;
    Hypervisor &operator=(const Hypervisor &) = delete;

    /** @name Machine. @{ */
    sim::EventQueue &eq() { return eq_; }
    const CostModel &costs() const { return cm_; }
    CostModel &costs() { return cm_; }
    OptConfig &opts() { return opts_; }
    unsigned pcpuCount() const { return unsigned(pcpus_.size()); }
    sim::CpuServer &pcpu(unsigned i) { return *pcpus_.at(i); }
    pci::RootComplex &rootComplex() { return rc_; }
    mem::Iommu &iommu() { return iommu_; }
    intr::InterruptRouter &router() { return router_; }
    mem::MachineMemory &memory() { return mem_; }
    /** @} */

    /** @name Domains. @{ */
    Domain &dom0() { return *dom0_; }
    Domain &createDomain(const std::string &name, DomainType type,
                         mem::Addr mem_bytes, unsigned vcpus = 1);
    Domain *findDomain(const std::string &name);
    std::vector<Domain *> guests();
    /** dom0 VCPU i's physical CPU (backend threads pin here). */
    sim::CpuServer &dom0Cpu(unsigned i);
    /** The per-HVM-guest emulator process (created on demand). */
    DeviceModel &deviceModel(Domain &dom);
    /** @} */

    /**
     * Allocate @p bytes of guest memory in @p dom (backed by machine
     * memory, mapped in the domain's physical map) and return the gpa.
     */
    mem::Addr allocGuestBuffer(Domain &dom, mem::Addr bytes);

    /** @name Passthrough device assignment (Direct I/O / SR-IOV). @{ */
    void assignDevice(Domain &dom, pci::PciFunction &fn);
    void deassignDevice(Domain &dom, pci::PciFunction &fn);

    /** What the guest kernel needs to manage a bound device IRQ. */
    struct GuestIrqHandle
    {
        intr::Vector host_vec = 0;
        intr::Vector virt_vec = 0;                 ///< HVM
        intr::EventChannelBank::Port port = 0;     ///< PVM / dom0
    };

    /**
     * Bind @p fn's MSI-X entry @p msix_entry to a guest handler on
     * @p vcpu. Allocates a global host vector (no sharing), programs
     * the device, and installs the right delivery path for the domain
     * type. @p handler runs at virtual-interrupt delivery.
     */
    GuestIrqHandle bindDeviceIrq(Domain &dom, pci::PciFunction &fn,
                                 Vcpu &vcpu, std::function<void()> handler,
                                 unsigned msix_entry = 0);
    void unbindDeviceIrq(pci::PciFunction &fn, unsigned msix_entry = 0);
    /** Release every binding of @p fn (device teardown). */
    void unbindAllDeviceIrqs(pci::PciFunction &fn);
    /** @} */

    /** @name Guest-visible virtualization events. @{ */
    /** HVM: guest writes EOI; cost depends on the EOI acceleration. */
    void guestEoi(Vcpu &vcpu);
    /** HVM: @p accesses non-EOI APIC accesses (TPR/ICR/timer). */
    void guestApicNoise(Vcpu &vcpu, double accesses);
    /** HVM: guest writes the virtual MSI mask register. */
    void guestMsiMaskWrite(Domain &dom, Vcpu &vcpu, bool masked);
    /** PVM/dom0: unmask an event channel (hypercall). */
    void guestEvtchnUnmask(Vcpu &vcpu, intr::EventChannelBank::Port p);
    /** Send an event to a PV domain (backend notify), with charging. */
    void evtchnNotify(Domain &dom, Vcpu &vcpu,
                      intr::EventChannelBank::Port p);
    /**
     * Account @p n receive-path syscalls (PVM pays the page-table
     * switch). When @p include_guest_cycles is false only the
     * hypervisor-side surcharge is applied — used when the caller
     * serializes the syscall bodies as guest work itself.
     */
    void chargeGuestSyscalls(Vcpu &vcpu, double n,
                             bool include_guest_cycles = true);
    /** @} */

    /**
     * Observation tap: when set, every device-IRQ delivery records the
     * MSI-raise → guest-handler latency into @p h in microseconds. For
     * HVM guests this spans the external-interrupt exit, the virtual
     * LAPIC's IRR wait (an in-service vector blocks successors until
     * EOI) and any paused-domain retries; for PV, the event-channel
     * upcall; Native delivery is synchronous (0 µs). May be installed
     * or cleared at any time (an in-flight raise is simply not
     * stamped). Disabled cost: one branch per IRQ.
     */
    void setIntrLatencyHistogram(obs::Histogram *h) { intr_latency_ = h; }
    obs::Histogram *intrLatencyHistogram() const { return intr_latency_; }

    /** @name CPU utilization reporting. @{ */
    struct UtilSnapshot
    {
        std::vector<sim::CpuSnapshot> per_pcpu;
        sim::Time when;
    };
    UtilSnapshot snapshot() const;
    /**
     * Percent-of-one-CPU consumed per accounting tag since @p before
     * (the paper's convention: 100% = one saturated thread).
     */
    std::map<std::string, double>
    cpuPercentByTag(const UtilSnapshot &before) const;
    double cpuPercent(const UtilSnapshot &before,
                      const std::string &tag) const;
    /** @} */

    /** Fluid-mode state walk (sim/fluid.hpp): every pcpu, the router,
     *  the IOMMU, all domains, device models and IRQ-latency anchors. */
    void fluidVisit(sim::FluidVisitor &v);

  private:
    struct IrqBinding
    {
        Domain *dom;
        Vcpu *vcpu;
        pci::PciFunction *fn;
        intr::Vector host_vec;
        intr::Vector virt_vec = 0;                      // HVM
        intr::EventChannelBank::Port port = 0;          // PVM
        std::function<void()> handler;                  // Native path
        sim::Time raise_time;                           // latency tap
        bool raise_pending = false;
    };

    void physIrq(IrqBinding &b);
    void noteDelivered(IrqBinding &b);

    sim::EventQueue &eq_;
    CostModel cm_;
    MachineParams mp_;
    OptConfig opts_;
    std::vector<std::unique_ptr<sim::CpuServer>> pcpus_;
    pci::RootComplex rc_;
    mem::Iommu iommu_;
    intr::InterruptRouter router_;
    mem::MachineMemory mem_;
    std::vector<std::unique_ptr<Domain>> domains_;
    Domain *dom0_ = nullptr;
    unsigned next_guest_pcpu_ = 0;
    unsigned next_dm_cpu_ = 0;
    std::map<unsigned, std::unique_ptr<DeviceModel>> device_models_;
    std::map<unsigned, mem::Addr> dom_machine_base_;
    std::map<std::pair<pci::PciFunction *, unsigned>,
             std::unique_ptr<IrqBinding>>
        bindings_;
    std::map<unsigned, intr::Vector> next_virt_vec_;    // per-domain
    obs::Histogram *intr_latency_ = nullptr;
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_HYPERVISOR_HPP
