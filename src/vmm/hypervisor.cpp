#include "vmm/hypervisor.hpp"

#include "sim/log.hpp"

namespace sriov::vmm {

Hypervisor::Hypervisor(sim::EventQueue &eq, CostModel cm, MachineParams mp)
    : eq_(eq), cm_(cm), mp_(mp), mem_(mp.mem_bytes)
{
    if (mp_.dom0_vcpus > mp_.num_pcpus)
        sim::fatal("dom0 VCPUs exceed physical CPUs");
    for (unsigned i = 0; i < mp_.num_pcpus; ++i) {
        pcpus_.push_back(std::make_unique<sim::CpuServer>(
            eq_, "pcpu" + std::to_string(i), cm_.cpu_hz));
    }
    // dom0: paper Section 6.1 — 8 VCPUs pinned 1:1 to threads 0..7.
    auto d0 = std::make_unique<Domain>(0, "dom0", DomainType::Dom0,
                                       mem::Addr(2) << 30);
    for (unsigned i = 0; i < mp_.dom0_vcpus; ++i)
        d0->addVcpu(std::make_unique<Vcpu>(i, *d0, *pcpus_[i]));
    dom0_ = d0.get();
    domains_.push_back(std::move(d0));
    dom_machine_base_[0] = mem_.allocate(dom0_->memBytes(), "dom0");
}

Hypervisor::Hypervisor(sim::EventQueue &eq)
    : Hypervisor(eq, CostModel{}, MachineParams{})
{
}

Hypervisor::~Hypervisor() = default;

Domain &
Hypervisor::createDomain(const std::string &name, DomainType type,
                         mem::Addr mem_bytes, unsigned vcpus)
{
    unsigned id = unsigned(domains_.size());
    auto dom = std::make_unique<Domain>(id, name, type, mem_bytes);
    // Guest VCPUs bind evenly to the threads dom0 does not use; a
    // Native "domain" (bare-metal baseline) may use every thread.
    unsigned base = type == DomainType::Native ? 0 : mp_.dom0_vcpus;
    unsigned span = mp_.num_pcpus - base;
    if (span == 0)
        sim::fatal("no physical CPUs left for guests");
    for (unsigned i = 0; i < vcpus; ++i) {
        unsigned p = base + (next_guest_pcpu_++ % span);
        dom->addVcpu(std::make_unique<Vcpu>(i, *dom, *pcpus_[p]));
    }
    dom_machine_base_[id] = mem_.allocate(mem_bytes, name);
    domains_.push_back(std::move(dom));
    return *domains_.back();
}

Domain *
Hypervisor::findDomain(const std::string &name)
{
    for (auto &d : domains_) {
        if (d->name() == name)
            return d.get();
    }
    return nullptr;
}

std::vector<Domain *>
Hypervisor::guests()
{
    std::vector<Domain *> out;
    for (auto &d : domains_) {
        if (d->type() != DomainType::Dom0)
            out.push_back(d.get());
    }
    return out;
}

sim::CpuServer &
Hypervisor::dom0Cpu(unsigned i)
{
    return *pcpus_.at(i % mp_.dom0_vcpus);
}

DeviceModel &
Hypervisor::deviceModel(Domain &dom)
{
    auto it = device_models_.find(dom.id());
    if (it == device_models_.end()) {
        // Each qemu-dm process lands on one of dom0's CPUs.
        auto &cpu = dom0Cpu(next_dm_cpu_++);
        it = device_models_
                 .emplace(dom.id(),
                          std::make_unique<DeviceModel>(dom, cpu, cm_))
                 .first;
    }
    return *it->second;
}

mem::Addr
Hypervisor::allocGuestBuffer(Domain &dom, mem::Addr bytes)
{
    mem::Addr gpa = dom.allocGuestPages(bytes);
    mem::Addr base = dom_machine_base_.at(dom.id());
    mem::Addr aligned = (bytes + mem::kPageSize - 1) & ~(mem::kPageSize - 1);
    dom.gpmap().mapRange(mem::pageBase(gpa), base + mem::pageBase(gpa),
                         aligned + mem::kPageSize);
    return gpa;
}

void
Hypervisor::assignDevice(Domain &dom, pci::PciFunction &fn)
{
    iommu_.attach(fn.rid(), dom.gpmap());
}

void
Hypervisor::deassignDevice(Domain &dom, pci::PciFunction &fn)
{
    (void)dom;
    iommu_.detach(fn.rid());
    unbindAllDeviceIrqs(fn);
}

Hypervisor::GuestIrqHandle
Hypervisor::bindDeviceIrq(Domain &dom, pci::PciFunction &fn, Vcpu &vcpu,
                          std::function<void()> handler,
                          unsigned msix_entry)
{
    if (bindings_.count({&fn, msix_entry}))
        sim::fatal("device %s entry %u already has an IRQ binding",
                   fn.name().c_str(), msix_entry);
    auto b = std::make_unique<IrqBinding>();
    b->dom = &dom;
    b->vcpu = &vcpu;
    b->fn = &fn;
    b->handler = std::move(handler);

    IrqBinding *bp = b.get();
    b->host_vec = router_.allocateAndBind(
        [this, bp](intr::Vector, pci::Rid) { physIrq(*bp); });
    router_.attachFunction(fn);

    switch (dom.type()) {
      case DomainType::Hvm: {
        intr::Vector &next = next_virt_vec_[dom.id()];
        if (next == 0)
            next = intr::VectorAllocator::kFirstDynamic;
        b->virt_vec = next++;
        vcpu.bindVirtualVector(b->virt_vec, [this, bp]() {
            noteDelivered(*bp);
            bp->handler();
        });
        break;
      }
      case DomainType::Pvm:
      case DomainType::Dom0: {
        b->port = dom.evtchn().bind(
            [this, bp](intr::EventChannelBank::Port) {
                noteDelivered(*bp);
                bp->handler();
            });
        break;
      }
      case DomainType::Native:
        break;
    }

    // Program the physical device: the MSI-X entry carries the host
    // vector (the guest never sees this value).
    if (auto *mx = fn.msix()) {
        mx->programEntry(msix_entry,
                         pci::MsiMessage::forVector(0, b->host_vec));
        mx->maskEntry(msix_entry, false);
        mx->setEnable(true);
    } else if (auto *mi = fn.msi()) {
        mi->program(pci::MsiMessage::forVector(0, b->host_vec));
        mi->setMask(false);
        mi->setEnable(true);
    } else {
        sim::fatal("device %s has no MSI capability", fn.name().c_str());
    }

    GuestIrqHandle h{bp->host_vec, bp->virt_vec, bp->port};
    bindings_.emplace(std::make_pair(&fn, msix_entry), std::move(b));
    return h;
}

void
Hypervisor::unbindDeviceIrq(pci::PciFunction &fn, unsigned msix_entry)
{
    auto it = bindings_.find({&fn, msix_entry});
    if (it == bindings_.end())
        return;
    IrqBinding &b = *it->second;
    router_.unbindVector(b.host_vec);
    router_.vectors().release(b.host_vec);
    if (b.dom->isHvm() && b.virt_vec)
        b.vcpu->unbindVirtualVector(b.virt_vec);
    if (b.dom->isPv())
        b.dom->evtchn().unbind(b.port);
    if (auto *mx = fn.msix())
        mx->maskEntry(msix_entry, true);
    bindings_.erase(it);
}

void
Hypervisor::unbindAllDeviceIrqs(pci::PciFunction &fn)
{
    for (auto it = bindings_.begin(); it != bindings_.end();) {
        if (it->first.first == &fn) {
            unsigned entry = it->first.second;
            ++it;
            unbindDeviceIrq(fn, entry);
        } else {
            ++it;
        }
    }
}

void
Hypervisor::noteDelivered(IrqBinding &b)
{
    if (intr_latency_ == nullptr || !b.raise_pending)
        return;
    b.raise_pending = false;
    intr_latency_->record((eq_.now() - b.raise_time).toSeconds() * 1e6);
}

void
Hypervisor::physIrq(IrqBinding &b)
{
    // Latency tap: stamp the raise; the delivery wrappers installed by
    // bindDeviceIrq() close the interval at guest-handler entry. A
    // raise while one is already outstanding (IRR coalescing) keeps the
    // oldest stamp — the guest-visible worst case.
    if (intr_latency_ != nullptr && !b.raise_pending) {
        b.raise_pending = true;
        b.raise_time = eq_.now();
    }
    Domain &dom = *b.dom;
    Vcpu &vcpu = *b.vcpu;
    switch (dom.type()) {
      case DomainType::Hvm:
        // External-interrupt VM-exit + virtual MSI injection.
        dom.exits().record(ExitReason::ExternalInterrupt, cm_.extint_exit);
        vcpu.chargeXen(cm_.extint_exit);
        vcpu.vlapic().inject(b.virt_vec);
        break;
      case DomainType::Pvm:
      case DomainType::Dom0:
        vcpu.chargeXen(cm_.evtchn_send);
        vcpu.chargeGuest(cm_.evtchn_upcall_guest);
        dom.evtchn().send(b.port);
        break;
      case DomainType::Native:
        vcpu.chargeGuest(cm_.native_irq);
        noteDelivered(b);
        b.handler();
        break;
    }
}

void
Hypervisor::guestEoi(Vcpu &vcpu)
{
    Domain &dom = vcpu.domain();
    if (!dom.isHvm()) {
        // PV guests have no LAPIC to EOI.
        return;
    }
    bool pay_check = opts_.eoi_accel_check && !opts_.eoi_hw_opcode;
    double c = opts_.eoi_accel
                   ? cm_.eoi_accelerated
                         + (pay_check ? cm_.eoi_instr_check : 0)
                   : cm_.apic_access_emulate;
    dom.exits().record(ExitReason::ApicAccess, c);
    vcpu.chargeXen(c);
    vcpu.vlapic().guestEoiWrite();
}

void
Hypervisor::guestApicNoise(Vcpu &vcpu, double accesses)
{
    if (accesses <= 0 || !vcpu.domain().isHvm())
        return;
    // Non-EOI accesses always take the fetch-decode-emulate path.
    double c = accesses * cm_.apic_access_emulate;
    vcpu.domain().exits().record(ExitReason::ApicAccess, c, accesses);
    vcpu.chargeXen(c);
}

void
Hypervisor::guestMsiMaskWrite(Domain &dom, Vcpu &vcpu, bool masked)
{
    if (opts_.mask_unmask_accel) {
        // Section 5.1: emulate in the hypervisor.
        dom.exits().record(ExitReason::EptViolation, cm_.msi_mask_hyp);
        vcpu.chargeXen(cm_.msi_mask_hyp);
        return;
    }
    // Trap, decode in Xen, forward to the guest's device model in
    // dom0; the guest additionally pays TLB/cache pollution.
    dom.exits().record(ExitReason::EptViolation, cm_.msi_mask_devmodel_xen);
    vcpu.chargeXen(cm_.msi_mask_devmodel_xen);
    vcpu.chargeGuest(cm_.msi_mask_guest_pollution);
    deviceModel(dom).emulateMsiMaskWrite(masked);
}

void
Hypervisor::guestEvtchnUnmask(Vcpu &vcpu, intr::EventChannelBank::Port p)
{
    Domain &dom = vcpu.domain();
    dom.exits().record(ExitReason::Hypercall, cm_.evtchn_unmask_hypercall);
    vcpu.chargeXen(cm_.evtchn_unmask_hypercall);
    dom.evtchn().unmask(p);
}

void
Hypervisor::evtchnNotify(Domain &dom, Vcpu &vcpu,
                         intr::EventChannelBank::Port p)
{
    vcpu.chargeXen(cm_.evtchn_send);
    vcpu.chargeGuest(cm_.evtchn_upcall_guest);
    dom.evtchn().send(p);
}

void
Hypervisor::chargeGuestSyscalls(Vcpu &vcpu, double n,
                                bool include_guest_cycles)
{
    if (n <= 0)
        return;
    // x86-64 XenLinux crosses the hypervisor to switch page tables on
    // every user/kernel boundary crossing (paper Sections 6.4, 6.5).
    if (vcpu.domain().type() == DomainType::Pvm
        || vcpu.domain().type() == DomainType::Dom0) {
        double extra = n * cm_.pvm_syscall_extra;
        vcpu.chargeXen(extra);
        vcpu.domain().exits().record(ExitReason::Hypercall, extra, n);
    }
    if (include_guest_cycles)
        vcpu.chargeGuest(n * cm_.guest_syscall);
}

void
Hypervisor::fluidVisit(sim::FluidVisitor &v)
{
    for (auto &p : pcpus_)
        p->fluidVisit(v);
    router_.fluidVisit(v);
    iommu_.fluidVisit(v);
    for (auto &d : domains_)
        d->fluidVisit(v);
    for (auto &[id, dm] : device_models_) {
        (void)id;
        dm->fluidVisit(v);
    }
    for (auto &[key, b] : bindings_) {
        (void)key;
        v.inv("hv.raise_pending", b->raise_pending ? 1 : 0);
        if (b->raise_pending)
            v.time("hv.raise_time", b->raise_time);
    }
}

Hypervisor::UtilSnapshot
Hypervisor::snapshot() const
{
    UtilSnapshot s;
    s.when = eq_.now();
    s.per_pcpu.reserve(pcpus_.size());
    for (const auto &p : pcpus_)
        s.per_pcpu.push_back(p->snapshot());
    return s;
}

std::map<std::string, double>
Hypervisor::cpuPercentByTag(const UtilSnapshot &before) const
{
    std::map<std::string, double> out;
    sim::Time window = eq_.now() - before.when;
    if (window <= sim::Time())
        return out;
    double denom = cm_.cpu_hz * window.toSeconds();
    for (unsigned i = 0; i < pcpus_.size(); ++i) {
        const auto &snap = before.per_pcpu[i].cycles_by_tag;
        auto now = pcpus_[i]->snapshot().cycles_by_tag;
        for (const auto &[tag, cycles] : now) {
            double old_v = 0;
            if (auto it = snap.find(tag); it != snap.end())
                old_v = it->second;
            out[tag] += (cycles - old_v) / denom * 100.0;
        }
    }
    return out;
}

double
Hypervisor::cpuPercent(const UtilSnapshot &before,
                       const std::string &tag) const
{
    auto m = cpuPercentByTag(before);
    auto it = m.find(tag);
    return it == m.end() ? 0.0 : it->second;
}

} // namespace sriov::vmm
