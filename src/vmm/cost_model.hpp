/**
 * @file
 * CostModel: every CPU-cycle constant in the simulation, in one place.
 *
 * Values are calibrated against the paper's own measurements on the
 * 2.8 GHz Xeon 5500 testbed (see DESIGN.md Section 3 for the
 * derivations). Tests and benches may override individual fields; the
 * defaults reproduce the published figures.
 */

#ifndef SRIOV_VMM_COST_MODEL_HPP
#define SRIOV_VMM_COST_MODEL_HPP

#include <cstddef>

namespace sriov::vmm {

struct CostModel
{
    /** Testbed clock (Xeon 5500 @ 2.8 GHz). */
    double cpu_hz = 2.8e9;

    /** @name HVM interrupt virtualization (paper Sections 5.1–5.2). @{ */

    /**
     * External-interrupt VM-exit + virtual MSI injection, per physical
     * interrupt (Fig. 7 residual: ~15 M cycles/s at ~8 K irq/s).
     */
    double extint_exit = 1900;

    /**
     * Full fetch-decode-emulate path for one APIC-access VM-exit
     * (Section 5.2: "the original 8.4 K cycles").
     */
    double apic_access_emulate = 8400;

    /** Accelerated EOI write using Exit-qualification ("2.5 K"). */
    double eoi_accelerated = 2500;

    /** Optional instruction-safety check on the accelerated path. */
    double eoi_instr_check = 1800;

    /**
     * Non-EOI APIC accesses (TPR, ICR, timer) per delivered virtual
     * interrupt. Fig. 7: EOI writes are 47% of APIC-access exits, so
     * the rest amount to ~1.13 accesses per interrupt.
     */
    double apic_other_per_irq = 1.13;

    /** @} */

    /** @name Guest MSI mask/unmask emulation (Section 5.1). @{ */

    /**
     * Unoptimized: each guest mask-register write traps and is
     * forwarded to the per-guest device model in dom0 (domain context
     * switch + task switch + emulation).
     */
    double msi_mask_devmodel_dom0 = 30000;
    /** Xen-side trap/forward work for the same path. */
    double msi_mask_devmodel_xen = 8400;
    /** Guest-side TLB/cache pollution per trap (Fig. 12: 16% of 10). */
    double msi_mask_guest_pollution = 2800;

    /** Optimized: emulated entirely inside the hypervisor. */
    double msi_mask_hyp = 2000;

    /** @} */

    /** @name PVM event-channel path (Sections 6.4–6.5). @{ */

    /** Xen: physical IRQ to event-channel pending + upcall. */
    double evtchn_send = 1200;
    /** Guest upcall entry (no LAPIC, no EOI). */
    double evtchn_upcall_guest = 1000;
    /** Unmask hypercall at handler end. */
    double evtchn_unmask_hypercall = 1800;
    /**
     * Extra conversion cost when an event channel targets an HVM
     * guest: the upcall is converted into a conventional virtual
     * LAPIC interrupt (Section 6.5 — dom0 431% vs 324% for the PV NIC
     * under HVM vs PVM guests).
     */
    double evtchn_hvm_conversion = 6000;
    /**
     * x86-64 XenLinux user/kernel crossing overhead per syscall (page
     * table switch through the hypervisor, Section 6.4). With one
     * recv per datagram this is what makes a PVM guest slightly more
     * expensive than HVM at high per-VM throughput.
     */
    double pvm_syscall_extra = 1200;

    /** @} */

    /** @name Guest OS packet processing. @{ */

    /** IRQ entry + NAPI poll setup + softirq, per interrupt. */
    double guest_irq_entry = 5000;
    /**
     * Driver + IP + socket work per received frame. Together with the
     * per-datagram recv syscall below this calibrates the native
     * 10-flow baseline to ~145% CPU at 9.57 Gb/s (Fig. 12).
     */
    double guest_per_packet = 2600;
    /** recvmsg()-style syscall cost (native part). */
    double guest_syscall = 1500;
    /** netperf process wakeup per delivered batch. */
    double app_wakeup = 3000;
    /**
     * Frames consumed per receive syscall. netperf UDP_STREAM issues
     * one recv per message.
     */
    std::size_t packets_per_syscall = 1;
    /** TX path cost per sent frame (used by senders and ACKs). */
    double guest_tx_per_packet = 3200;

    /** @} */

    /** @name Xen PV split driver (Sections 6.3, 6.5). @{ */

    /**
     * netback per-frame cost: grant copy of the payload plus backend
     * bookkeeping. Calibrated from Section 6.5: one saturated dom0
     * core forwards ~3.6 Gb/s => ~9.3 K cycles per 1518-byte frame.
     */
    double netback_per_packet = 9300;
    /**
     * Extra per-frame cost once the backend runs multi-threaded and
     * the frontend is PV-on-HVM: the event-channel upcall must be
     * converted into a virtual LAPIC interrupt, and that conversion
     * holds the per-domain event lock, so concurrent workers bounce
     * the lock line (plus the injection IPI) on every frame. It is
     * what keeps the enhanced driver's dom0 bill in the 400% range of
     * Fig. 17. PVM frontends are notified by a lockless evtchn
     * set-bit and skip the surcharge entirely — the LAPIC-conversion
     * saving behind Fig. 18's ~324% vs Fig. 17's ~431%.
     */
    double netback_smp_extra = 5700;
    /**
     * Discount for PVM frontends, whose classic grant path is cheaper
     * than the PV-on-HVM receive path. Most of Fig. 18's dom0 saving
     * is the skipped SMP surcharge above; this residual covers the
     * cheaper single-threaded copy path (it was 1500 back when it had
     * to stand in for the then-unmodeled LAPIC-conversion share too).
     */
    double netback_pvm_discount = 500;
    /** Backend thread wakeup per batch. */
    double netback_wakeup = 8000;
    /** netfront (guest) per-frame cost: stack work + grant/ring ops. */
    double netfront_per_packet = 4100;
    /** dom0 IRQ-context bridge/classify cost per frame. */
    double dom0_bridge_per_packet = 1200;
    /** dom0 work per PF↔VF mailbox request. */
    double pf_mailbox_request = 3000;

    /** @} */

    /** @name VMDq path (Section 6.6). @{ */

    /**
     * dom0 work per VMDq frame: no copy, but memory protection and
     * address translation plus notification remain in software.
     */
    double vmdq_dom0_per_packet = 3200;
    double vmdq_dom0_wakeup = 8000;

    /** @} */

    /** @name Migration (Section 6.7). @{ */

    /** dom0 cycles per migrated page (map, hash, send). */
    double migrate_per_page = 6000;

    /** @} */

    /** Native (bare-metal) interrupt handling, per interrupt. */
    double native_irq = 1000;
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_COST_MODEL_HPP
