/**
 * @file
 * Domain: a virtual machine (or the service OS, or a bare-metal OS —
 * the "Native" type lets the same driver stack run unvirtualized for
 * the paper's baseline runs).
 */

#ifndef SRIOV_VMM_DOMAIN_HPP
#define SRIOV_VMM_DOMAIN_HPP

#include <memory>
#include <string>
#include <vector>

#include "intr/event_channel.hpp"
#include "mem/guest_phys_map.hpp"
#include "vmm/vcpu.hpp"
#include "vmm/vm_exit.hpp"

namespace sriov::vmm {

enum class DomainType
{
    Dom0,      ///< service OS (privileged PV domain)
    Hvm,       ///< hardware virtual machine (virtual LAPIC, VM-exits)
    Pvm,       ///< paravirtualized guest (event channels)
    Native,    ///< no VMM underneath (baseline)
};

class Domain
{
  public:
    Domain(unsigned id, std::string name, DomainType type,
           mem::Addr mem_bytes);

    unsigned id() const { return id_; }
    const std::string &name() const { return name_; }
    DomainType type() const { return type_; }
    bool isHvm() const { return type_ == DomainType::Hvm; }
    bool isPv() const
    {
        return type_ == DomainType::Pvm || type_ == DomainType::Dom0;
    }

    mem::Addr memBytes() const { return mem_bytes_; }
    mem::GuestPhysMap &gpmap() { return gpmap_; }
    intr::EventChannelBank &evtchn() { return evtchn_; }
    ExitStats &exits() { return exits_; }

    void addVcpu(std::unique_ptr<Vcpu> v);
    unsigned vcpuCount() const { return unsigned(vcpus_.size()); }
    Vcpu &vcpu(unsigned i) { return *vcpus_.at(i); }

    /** @name Pause/resume (migration stop-and-copy). @{ */
    bool paused() const { return paused_; }
    void pause() { paused_ = true; }
    void resume() { paused_ = false; }
    /** @} */

    /** Simple bump allocator within the guest-physical space. */
    mem::Addr allocGuestPages(mem::Addr bytes);

    /** Fluid-mode state walk (sim/fluid.hpp). */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        v.inv("dom.paused", paused_ ? 1 : 0);
        exits_.fluidVisit(v);
        evtchn_.fluidVisit(v);
        for (auto &vc : vcpus_)
            vc->fluidVisit(v);
    }

  private:
    unsigned id_;
    std::string name_;
    DomainType type_;
    mem::Addr mem_bytes_;
    mem::GuestPhysMap gpmap_;
    intr::EventChannelBank evtchn_;
    ExitStats exits_;
    std::vector<std::unique_ptr<Vcpu>> vcpus_;
    bool paused_ = false;
    mem::Addr alloc_next_ = 0x100000;    // skip low MiB like a real OS
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_DOMAIN_HPP
