#include "vmm/vcpu.hpp"

#include "sim/log.hpp"
#include "vmm/domain.hpp"

namespace sriov::vmm {

Vcpu::Vcpu(unsigned id, Domain &dom, sim::CpuServer &pcpu)
    : id_(id), dom_(dom), pcpu_(pcpu),
      handlers_(std::size_t(intr::VectorAllocator::kLast) + 1)
{
    vlapic_.chip().setDeliver([this](intr::Vector v) { dispatch(v); });
}

void
Vcpu::submitGuestWork(double cycles, sim::InplaceFn on_done)
{
    pcpu_.submit(cycles, dom_.name(), std::move(on_done));
}

void
Vcpu::chargeGuest(double cycles)
{
    pcpu_.charge(cycles, dom_.name());
}

void
Vcpu::chargeXen(double cycles)
{
    pcpu_.charge(cycles, "xen");
}

void
Vcpu::bindVirtualVector(intr::Vector v, IrqHandler h)
{
    handlers_[v] = std::move(h);
}

void
Vcpu::unbindVirtualVector(intr::Vector v)
{
    handlers_[v] = nullptr;
}

void
Vcpu::dispatch(intr::Vector v)
{
    IrqHandler &h = handlers_[v];
    if (!h) {
        sim::warn("%s vcpu%u: unhandled virtual vector %u",
                  dom_.name().c_str(), id_, v);
        return;
    }
    h();
}

} // namespace sriov::vmm
