/**
 * @file
 * Pciback: the PV backend that exposes an assigned PCI function's
 * configuration space to a paravirtualized guest (paper Section 4.1:
 * "a backend driver, such as PCIback, for a paravirtualized virtual
 * machine"). It forwards reads and filters writes so a guest cannot
 * reprogram BARs or other host-owned state.
 */

#ifndef SRIOV_VMM_PCIBACK_HPP
#define SRIOV_VMM_PCIBACK_HPP

#include "pci/function.hpp"
#include "sim/stats.hpp"

namespace sriov::vmm {

class Domain;

class Pciback
{
  public:
    Pciback(Domain &guest, pci::PciFunction &fn);

    Domain &guest() { return guest_; }
    pci::PciFunction &function() { return fn_; }

    std::uint32_t configRead(std::uint16_t off, unsigned size);

    /** Filtered write; disallowed offsets are dropped and counted. */
    void configWrite(std::uint16_t off, std::uint32_t v, unsigned size);

    std::uint64_t deniedWrites() const { return denied_.value(); }

  private:
    bool writeAllowed(std::uint16_t off, unsigned size) const;

    Domain &guest_;
    pci::PciFunction &fn_;
    sim::Counter denied_;
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_PCIBACK_HPP
