#include "vmm/vm_exit.hpp"

#include <cstdio>

namespace sriov::vmm {

const char *
exitReasonName(ExitReason r)
{
    switch (r) {
      case ExitReason::ExternalInterrupt: return "external-interrupt";
      case ExitReason::ApicAccess: return "APIC-access";
      case ExitReason::IoInstruction: return "I/O-instruction";
      case ExitReason::MsrAccess: return "MSR-access";
      case ExitReason::Hypercall: return "hypercall";
      case ExitReason::EptViolation: return "EPT-violation";
      case ExitReason::Other: return "other";
      case ExitReason::Count: break;
    }
    return "?";
}

double
ExitStats::totalCount() const
{
    double n = 0;
    for (const auto &e : entries_)
        n += e.count;
    return n;
}

double
ExitStats::totalCycles() const
{
    double c = 0;
    for (const auto &e : entries_)
        c += e.cycles;
    return c;
}

void
ExitStats::reset()
{
    // Counters clear; installed cost taps survive the reset (benches
    // reset stats between warmup and measurement).
    for (auto &e : entries_) {
        e.count = 0;
        e.cycles = 0;
    }
}

std::string
ExitStats::toString() const
{
    std::string out;
    char buf[128];
    for (unsigned i = 0; i < unsigned(ExitReason::Count); ++i) {
        const auto &e = entries_[i];
        if (e.count == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%-20s %12.0f exits %14.0f cycles\n",
                      exitReasonName(ExitReason(i)), e.count, e.cycles);
        out += buf;
    }
    return out;
}

} // namespace sriov::vmm
