/**
 * @file
 * MigrationManager: pre-copy live migration (Clark et al. style, the
 * mechanism underneath paper Section 6.7).
 *
 * Rounds of memory copying run over the migration link while the
 * guest keeps executing and dirtying pages (real dirty pages come from
 * the domain's dirty log — e.g. netback grant-copies — plus a
 * configurable background rate for kernel bookkeeping). When the dirty
 * set is small enough (or rounds are exhausted) the guest is paused
 * for the stop-and-copy phase; service resumes after the remaining
 * pages and device state are transferred.
 *
 * DNIS (core/dnis) wraps this manager with the VF hot-remove /
 * bonding-failover step the paper adds for SR-IOV guests.
 */

#ifndef SRIOV_VMM_MIGRATION_HPP
#define SRIOV_VMM_MIGRATION_HPP

#include <functional>

#include "vmm/hypervisor.hpp"

namespace sriov::vmm {

class MigrationManager
{
  public:
    struct Params
    {
        /** Migration network (the testbed's 1 GbE management link). */
        double link_bps = 1e9;
        unsigned max_rounds = 30;
        /** Stop-and-copy when the dirty set shrinks below this. */
        std::size_t downtime_threshold_pages = 4000;
        /**
         * Device re-init, ARP announcement and network re-settling on
         * the target (the bulk of the ~1.4 s outage in Figs. 20/21).
         */
        sim::Time resume_overhead = sim::Time::ms(1250);
        /** Synthetic dirtying beyond the tracked dirty log. */
        double background_dirty_pps = 1500;
        /** Cap on how many distinct pages the guest redirties. */
        std::size_t working_set_pages = 8192;
    };

    struct Result
    {
        unsigned rounds = 0;
        std::uint64_t pages_sent = 0;
        sim::Time started;
        sim::Time paused_at;
        sim::Time resumed_at;

        sim::Time downtime() const { return resumed_at - paused_at; }
        sim::Time total() const { return resumed_at - started; }
    };

    using Callback = std::function<void()>;
    using DoneFn = std::function<void(const Result &)>;

    explicit MigrationManager(Hypervisor &hv) : hv_(hv) {}

    /**
     * Begin migrating @p dom. @p on_pause fires at stop-and-copy,
     * @p on_resume when the guest runs again on the "target", and
     * @p on_done with the final statistics.
     */
    void migrate(Domain &dom, const Params &p, Callback on_pause,
                 Callback on_resume, DoneFn on_done);

    bool inProgress() const { return in_progress_; }

  private:
    struct Session
    {
        Domain *dom;
        Params p;
        Callback on_pause;
        Callback on_resume;
        DoneFn on_done;
        Result result;
        std::uint64_t total_pages;
    };

    void sendRound(Session s, std::uint64_t pages, unsigned round);
    void stopAndCopy(Session s, std::uint64_t dirty_pages);
    sim::Time copyTime(const Params &p, std::uint64_t pages) const;

    Hypervisor &hv_;
    bool in_progress_ = false;
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_MIGRATION_HPP
