/**
 * @file
 * VM-exit taxonomy and per-reason cycle accounting (paper Fig. 7).
 */

#ifndef SRIOV_VMM_VM_EXIT_HPP
#define SRIOV_VMM_VM_EXIT_HPP

#include <array>
#include <cstdint>
#include <string>

#include "obs/histogram.hpp"

namespace sriov::vmm {

enum class ExitReason : unsigned
{
    ExternalInterrupt = 0,
    ApicAccess,
    IoInstruction,
    MsrAccess,
    Hypercall,
    EptViolation,
    Other,
    Count,
};

const char *exitReasonName(ExitReason r);

/** Per-reason exit counts and cycles spent in the hypervisor. */
class ExitStats
{
  public:
    /**
     * Record @p n exits (fractional n supports amortized accounting,
     * e.g. 1.13 non-EOI APIC accesses per interrupt) costing a total
     * of @p cycles.
     */
    void
    record(ExitReason r, double cycles, double n = 1.0)
    {
        auto &e = entries_[unsigned(r)];
        e.count += n;
        e.cycles += cycles;
        if (e.cost_tap != nullptr && n > 0)
            e.cost_tap->record(cycles / n, n);
    }

    /**
     * Observation tap: when set, every record() for @p r also lands in
     * @p h as a weighted sample of the per-exit cost (cycles / n,
     * weight n), giving the cost *distribution* behind Fig. 7's means.
     * Disabled cost: one branch per record(). The histogram must
     * outlive the stats or be cleared first.
     */
    void setCostTap(ExitReason r, obs::Histogram *h)
    {
        entries_[unsigned(r)].cost_tap = h;
    }

    obs::Histogram *costTap(ExitReason r) const
    {
        return entries_[unsigned(r)].cost_tap;
    }

    double count(ExitReason r) const
    {
        return entries_[unsigned(r)].count;
    }

    double cycles(ExitReason r) const
    {
        return entries_[unsigned(r)].cycles;
    }

    double totalCount() const;
    double totalCycles() const;

    void reset();

    /** Multi-line human-readable table (used by fig07 bench). */
    std::string toString() const;

    /** Fluid-mode state walk (sim/fluid.hpp): per-reason counts and
     *  cycles are linear. Cost taps are histograms owned (and visited)
     *  by the testbed's observability layer, not here. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        for (auto &e : entries_) {
            v.f64("exits.count", e.count);
            v.f64("exits.cycles", e.cycles);
        }
    }

  private:
    struct Entry
    {
        double count = 0;
        double cycles = 0;
        obs::Histogram *cost_tap = nullptr;
    };

    std::array<Entry, unsigned(ExitReason::Count)> entries_{};
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_VM_EXIT_HPP
