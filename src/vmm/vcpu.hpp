/**
 * @file
 * Vcpu: a virtual CPU pinned to one physical CpuServer.
 *
 * Guest computation is work submitted to the pinned server under the
 * domain's accounting tag; hypervisor work done on the guest's behalf
 * (VM-exit handling) is charged on the same server under "xen", which
 * is how the paper's per-component CPU breakdowns are assembled.
 */

#ifndef SRIOV_VMM_VCPU_HPP
#define SRIOV_VMM_VCPU_HPP

#include <functional>
#include <vector>

#include "intr/virtual_lapic.hpp"
#include "sim/cpu_server.hpp"
#include "sim/inplace_fn.hpp"

namespace sriov::vmm {

class Domain;

class Vcpu
{
  public:
    Vcpu(unsigned id, Domain &dom, sim::CpuServer &pcpu);

    unsigned id() const { return id_; }
    Domain &domain() { return dom_; }
    sim::CpuServer &pcpu() { return pcpu_; }
    intr::VirtualLapic &vlapic() { return vlapic_; }

    /** Submit guest-context work (serialized on the physical CPU). */
    void submitGuestWork(double cycles, sim::InplaceFn on_done);

    /** Charge guest-context cycles without serialization. */
    void chargeGuest(double cycles);

    /** Charge hypervisor cycles spent on this VCPU's behalf. */
    void chargeXen(double cycles);

    /** @name Virtual interrupt dispatch. @{ */
    using IrqHandler = std::function<void()>;
    void bindVirtualVector(intr::Vector v, IrqHandler h);
    void unbindVirtualVector(intr::Vector v);
    /** @} */

    /** Fluid-mode state walk (sim/fluid.hpp). The pinned CpuServer is
     *  shared with other VCPUs and visited once by its owner (the
     *  hypervisor), not per VCPU. */
    void fluidVisit(sim::FluidVisitor &v) { vlapic_.fluidVisit(v); }

  private:
    void dispatch(intr::Vector v);

    unsigned id_;
    Domain &dom_;
    sim::CpuServer &pcpu_;
    intr::VirtualLapic vlapic_;
    /** Dense dispatch: indexed by vector (intr::Vector is 8-bit). */
    std::vector<IrqHandler> handlers_;
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_VCPU_HPP
