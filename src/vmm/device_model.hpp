/**
 * @file
 * DeviceModel: the per-HVM-guest user-level emulator (qemu-dm / the
 * IOVM application of paper Section 4.1), running as a dom0 process.
 *
 * Emulation requests forwarded here cost dom0 CPU: a domain context
 * switch out of the guest, a task switch inside dom0, the emulation
 * itself. The paper's Fig. 6 shows this process at the top of dom0's
 * profile until the mask/unmask acceleration moves MSI emulation into
 * the hypervisor.
 */

#ifndef SRIOV_VMM_DEVICE_MODEL_HPP
#define SRIOV_VMM_DEVICE_MODEL_HPP

#include <string>

#include "sim/cpu_server.hpp"
#include "sim/inplace_fn.hpp"
#include "sim/stats.hpp"
#include "vmm/cost_model.hpp"

namespace sriov::vmm {

class Domain;

class DeviceModel
{
  public:
    DeviceModel(Domain &guest, sim::CpuServer &host_cpu,
                const CostModel &cm);

    Domain &guest() { return guest_; }
    sim::CpuServer &hostCpu() { return host_cpu_; }

    /** Accounting tag for the emulator process ("dom0-dm"). */
    static const char *tag() { return "dom0-dm"; }

    /**
     * Forward an emulation request costing @p cycles of dom0 time.
     * @p on_done (optional) runs when emulation completes.
     */
    void submitEmulation(double cycles, sim::InplaceFn on_done = {});

    /** Emulate a guest write to the virtual MSI mask register. */
    void emulateMsiMaskWrite(bool masked);

    std::uint64_t requests() const { return requests_.value(); }
    std::uint64_t maskWrites() const { return mask_writes_.value(); }

    /** Fluid-mode state walk (sim/fluid.hpp). The host CpuServer is a
     *  hypervisor pcpu, visited once by the hypervisor. */
    void
    fluidVisit(sim::FluidVisitor &v)
    {
        requests_.fluidVisit(v, "dm.requests");
        mask_writes_.fluidVisit(v, "dm.mask_writes");
    }

  private:
    Domain &guest_;
    sim::CpuServer &host_cpu_;
    const CostModel &cm_;
    sim::Counter requests_;
    sim::Counter mask_writes_;
};

} // namespace sriov::vmm

#endif // SRIOV_VMM_DEVICE_MODEL_HPP
