#include "vmm/cost_model.hpp"

// CostModel is a plain aggregate; this translation unit anchors it in
// the vmm library.
