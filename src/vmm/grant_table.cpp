#include "vmm/grant_table.hpp"

#include "sim/log.hpp"

namespace sriov::vmm {

GrantTable::Ref
GrantTable::grantAccess(mem::Addr gpa, unsigned peer_domid, bool readonly)
{
    for (Ref r = 0; r < entries_.size(); ++r) {
        if (!entries_[r].in_use) {
            entries_[r] = Entry{true, gpa, peer_domid, readonly, 0};
            return r;
        }
    }
    entries_.push_back(Entry{true, gpa, peer_domid, readonly, 0});
    return Ref(entries_.size() - 1);
}

bool
GrantTable::endAccess(Ref ref)
{
    if (ref >= entries_.size() || !entries_[ref].in_use)
        return false;
    if (entries_[ref].map_count > 0)
        return false;
    entries_[ref] = Entry{};
    return true;
}

std::optional<mem::Addr>
GrantTable::validate(Ref ref, unsigned domid, bool write)
{
    if (ref >= entries_.size() || !entries_[ref].in_use
        || entries_[ref].peer != domid
        || (write && entries_[ref].readonly)) {
        violations_.inc();
        return std::nullopt;
    }
    return entries_[ref].gpa;
}

bool
GrantTable::mapGrant(Ref ref, unsigned domid)
{
    auto gpa = validate(ref, domid, false);
    if (!gpa)
        return false;
    ++entries_[ref].map_count;
    return true;
}

void
GrantTable::unmapGrant(Ref ref)
{
    if (ref < entries_.size() && entries_[ref].map_count > 0)
        --entries_[ref].map_count;
}

std::size_t
GrantTable::activeGrants() const
{
    std::size_t n = 0;
    for (const auto &e : entries_) {
        if (e.in_use)
            ++n;
    }
    return n;
}

} // namespace sriov::vmm
