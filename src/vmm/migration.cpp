#include "vmm/migration.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace sriov::vmm {

sim::Time
MigrationManager::copyTime(const Params &p, std::uint64_t pages) const
{
    double bits = double(pages) * mem::kPageSize * 8.0;
    return sim::Time::transfer(bits, p.link_bps);
}

void
MigrationManager::migrate(Domain &dom, const Params &p, Callback on_pause,
                          Callback on_resume, DoneFn on_done)
{
    if (in_progress_)
        sim::fatal("migration already in progress");
    in_progress_ = true;

    Session s;
    s.dom = &dom;
    s.p = p;
    s.on_pause = std::move(on_pause);
    s.on_resume = std::move(on_resume);
    s.on_done = std::move(on_done);
    s.result.started = hv_.eq().now();
    s.total_pages = dom.memBytes() / mem::kPageSize;

    dom.gpmap().enableDirtyLog();
    sim::inform("migration of %s: %llu pages over %.2f Gb/s",
                dom.name().c_str(),
                static_cast<unsigned long long>(s.total_pages),
                p.link_bps / 1e9);
    sendRound(std::move(s), s.total_pages, 1);
}

void
MigrationManager::sendRound(Session s, std::uint64_t pages, unsigned round)
{
    sim::Time dur = copyTime(s.p, pages);
    SRIOV_TRACE(sim::TraceCat::Migration,
                "%s: pre-copy round %u, %llu pages (%.0f ms)",
                s.dom->name().c_str(), round,
                static_cast<unsigned long long>(pages),
                dur.toSeconds() * 1e3);
    s.result.rounds = round;
    s.result.pages_sent += pages;

    // The migration helper burns dom0 CPU mapping/sending pages;
    // spread the charge across the round so utilization sampling sees
    // a sustained load, not a spike.
    double total_cycles = double(pages) * hv_.costs().migrate_per_page;
    auto slices = std::max<std::int64_t>(
        1, dur.picos() / sim::Time::ms(100).picos());
    for (std::int64_t i = 0; i < slices; ++i) {
        hv_.eq().scheduleIn(dur * i / slices, [this, total_cycles,
                                               slices]() {
            hv_.dom0Cpu(0).charge(total_cycles / double(slices),
                                  "dom0-migr");
        });
    }

    hv_.eq().scheduleIn(dur, [this, s = std::move(s), pages, round,
                              dur]() mutable {
        Domain &dom = *s.dom;
        // Pages dirtied while this round was in flight: tracked dirty
        // log (DMA-into-guest, grant copies) plus background activity.
        std::uint64_t tracked = dom.gpmap().drainDirty().size();
        std::uint64_t background = std::uint64_t(
            s.p.background_dirty_pps * dur.toSeconds());
        std::uint64_t dirty =
            std::min<std::uint64_t>(tracked + background,
                                    s.p.working_set_pages);
        dirty = std::min<std::uint64_t>(dirty, s.total_pages);

        bool converged = dirty <= s.p.downtime_threshold_pages;
        bool exhausted = round >= s.p.max_rounds;
        // Pre-copy must make progress: if the round sent fewer pages
        // than got redirtied, iterating further cannot converge.
        bool diverging = round > 1 && dirty >= pages;
        if (converged || exhausted || diverging) {
            stopAndCopy(std::move(s), dirty);
        } else {
            sendRound(std::move(s), dirty, round + 1);
        }
    });
}

void
MigrationManager::stopAndCopy(Session s, std::uint64_t dirty_pages)
{
    Domain &dom = *s.dom;
    SRIOV_TRACE(sim::TraceCat::Migration,
                "%s: stop-and-copy, %llu dirty pages",
                dom.name().c_str(),
                static_cast<unsigned long long>(dirty_pages));
    dom.pause();
    s.result.paused_at = hv_.eq().now();
    if (s.on_pause)
        s.on_pause();

    sim::Time down = copyTime(s.p, dirty_pages) + s.p.resume_overhead;
    s.result.pages_sent += dirty_pages;
    hv_.dom0Cpu(0).charge(double(dirty_pages) * hv_.costs().migrate_per_page,
                          "dom0-migr");

    hv_.eq().scheduleIn(down, [this, s = std::move(s)]() mutable {
        Domain &dom = *s.dom;
        dom.gpmap().disableDirtyLog();
        dom.resume();
        s.result.resumed_at = hv_.eq().now();
        in_progress_ = false;
        if (s.on_resume)
            s.on_resume();
        if (s.on_done)
            s.on_done(s.result);
    });
}

} // namespace sriov::vmm
