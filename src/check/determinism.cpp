#include "check/determinism.hpp"

#include <cstdio>

#include "sim/log.hpp"

namespace sriov::check {

std::string
RunDigest::toString() const
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "digest=%016llx events=%llu",
                  static_cast<unsigned long long>(digest),
                  static_cast<unsigned long long>(events));
    return buf;
}

std::string
DeterminismHarness::Result::toString() const
{
    if (match())
        return "deterministic: " + first.toString();
    return "NON-DETERMINISTIC: run0 " + first.toString() + " vs run1 "
        + second.toString();
}

DeterminismHarness::Result
DeterminismHarness::runTwice(const RunFn &fn)
{
    Result r;
    r.first = fn(0);
    r.second = fn(1);
    return r;
}

RunDigest
DeterminismHarness::audit(const std::string &label, const RunFn &fn)
{
    Result r = runTwice(fn);
    if (!r.match())
        sim::fatal("determinism audit '%s' failed: %s", label.c_str(),
                   r.toString().c_str());
    return r.first;
}

} // namespace sriov::check
