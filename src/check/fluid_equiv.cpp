#include "check/fluid_equiv.hpp"

#include <cmath>
#include <cstdio>

namespace sriov::check {

namespace {

bool
pathContains(const std::string &path, const char *needle)
{
    return path.find(needle) != std::string::npos;
}

bool
isIntegral(double v)
{
    return std::nearbyint(v) == v && std::fabs(v) < 9.0e15;
}

double
relDiff(double a, double b)
{
    double mag = std::max(std::fabs(a), std::fabs(b));
    if (mag == 0)
        return 0;
    return std::fabs(a - b) / mag;
}

void
violate(FluidEquivResult &r, const std::string &path, const char *what,
        double a, double b)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%s: %s (ref %.17g, fluid %.17g)",
                  path.c_str(), what, a, b);
    r.violations.push_back(buf);
}

} // namespace

FluidMetricClass
classifyFluidMetric(const std::string &path, bool integral)
{
    // Simulation-process diagnostics, not modelled-system state:
    //  - path_stages: the tracer never sees packets inside a warped
    //    span, so trail counts and the latency estimates over the
    //    sampled population legitimately differ;
    //  - fluid director stats and host timings, when embedded.
    if (pathContains(path, "/path_stages")
        || pathContains(path, "fluid_stats")
        || pathContains(path, "host_wall"))
        return FluidMetricClass::Diagnostic;
    // Expectation deltas are derived from 'actual' (already compared)
    // by subtraction against a constant — near zero, a relative band
    // on them is meaningless. 'actual' carries the real comparison.
    if (pathContains(path, "/delta") || pathContains(path, "/delta_pct"))
        return FluidMetricClass::Diagnostic;
    // Interrupt-latency observations ride on the sampled population
    // too (the deferred-timer raise instants are schedule state, but
    // each observation is made per-event): histogram shape metrics
    // under snapshots stay comparable; nothing to exclude here.
    if (pathContains(path, "goodput") || pathContains(path, "throughput")
        || pathContains(path, "gbps"))
        return integral ? FluidMetricClass::Exact : FluidMetricClass::F64;
    if (integral)
        return FluidMetricClass::Exact;
    return FluidMetricClass::F64;
}

namespace {

/** Per-leaf band when comparing off-vs-on: throughput is tight,
 *  slopes (differences of differences across the band) get 3x. */
double
bandFor(const std::string &path, const FluidEquivOptions &opt)
{
    if (pathContains(path, "goodput") || pathContains(path, "gbps")
        || pathContains(path, "throughput"))
        return opt.goodput_band;
    if (pathContains(path, "per_vm") || pathContains(path, "slope"))
        return 3 * opt.band;
    return opt.band;
}

void
compareNode(const obs::JsonValue &a, const obs::JsonValue &b,
            const std::string &path, const FluidEquivOptions &opt,
            FluidEquivResult &r)
{
    using Type = obs::JsonValue::Type;
    if (pathContains(path, "/path_stages")
        || pathContains(path, "fluid_stats")) {
        ++r.skipped;
        return;
    }
    if (a.type != b.type) {
        violate(r, path, "type mismatch", a.number, b.number);
        return;
    }
    switch (a.type) {
    case Type::Object: {
        if (a.members.size() != b.members.size()) {
            violate(r, path, "member count mismatch",
                    double(a.members.size()), double(b.members.size()));
            return;
        }
        // Expectations and series are positional arrays of named
        // objects; fold the name into the path so per-metric band
        // rules (bandFor) can see it.
        std::string base = path;
        if (const obs::JsonValue *n = a.find("name");
            n != nullptr && n->isString())
            base += ":" + n->str;
        else if (const obs::JsonValue *l = a.find("label");
                 l != nullptr && l->isString())
            base += ":" + l->str;
        for (std::size_t i = 0; i < a.members.size(); ++i) {
            if (a.members[i].first != b.members[i].first) {
                violate(r, base + "/" + a.members[i].first,
                        "key mismatch", 0, 0);
                return;
            }
            compareNode(a.members[i].second, b.members[i].second,
                        base + "/" + a.members[i].first, opt, r);
        }
        return;
    }
    case Type::Array: {
        if (a.items.size() != b.items.size()) {
            violate(r, path, "array length mismatch",
                    double(a.items.size()), double(b.items.size()));
            return;
        }
        for (std::size_t i = 0; i < a.items.size(); ++i)
            compareNode(a.items[i], b.items[i],
                        path + "/" + std::to_string(i), opt, r);
        return;
    }
    case Type::Number: {
        ++r.compared;
        const bool integral = isIntegral(a.number) && isIntegral(b.number);
        switch (classifyFluidMetric(path, integral)) {
        case FluidMetricClass::Diagnostic:
            --r.compared;
            ++r.skipped;
            return;
        case FluidMetricClass::Exact:
            if (opt.banded) {
                if (relDiff(a.number, b.number) > bandFor(path, opt))
                    violate(r, path, "outside band", a.number, b.number);
                return;
            }
            ++r.exact;
            if (a.number != b.number)
                violate(r, path, "integer leaf not identical", a.number,
                        b.number);
            return;
        case FluidMetricClass::F64:
            if (opt.banded) {
                if (relDiff(a.number, b.number) > bandFor(path, opt))
                    violate(r, path, "outside band", a.number, b.number);
                return;
            }
            if (relDiff(a.number, b.number) > opt.f64_rel)
                violate(r, path, "fp leaf beyond epsilon", a.number,
                        b.number);
            return;
        case FluidMetricClass::Banded:
            if (relDiff(a.number, b.number) > bandFor(path, opt))
                violate(r, path, "outside band", a.number, b.number);
            return;
        }
        return;
    }
    case Type::String:
        if (a.str != b.str)
            violate(r, path, "string mismatch", 0, 0);
        return;
    case Type::Bool:
        if (a.boolean != b.boolean)
            violate(r, path, "bool mismatch", a.boolean ? 1 : 0,
                    b.boolean ? 1 : 0);
        return;
    case Type::Null:
        return;
    }
}

} // namespace

FluidEquivResult
compareFluidReports(const obs::JsonValue &ref, const obs::JsonValue &fluid,
                    const FluidEquivOptions &opt)
{
    FluidEquivResult r;
    compareNode(ref, fluid, "", opt, r);
    return r;
}

} // namespace sriov::check
