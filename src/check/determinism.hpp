/**
 * @file
 * DeterminismHarness: audits that the simulator is deterministic.
 *
 * The EventQueue keeps a running order digest — an FNV-1a hash of the
 * (when, seq, tag) triple of every executed event. The harness runs an
 * experiment factory twice and compares the digests: any divergence
 * (unordered-container iteration leaking into event order, tie-breaks
 * on pointers, uninitialized state) shows up as a mismatch even when
 * the aggregate statistics happen to agree.
 */

#ifndef SRIOV_CHECK_DETERMINISM_HPP
#define SRIOV_CHECK_DETERMINISM_HPP

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.hpp"

namespace sriov::check {

/** The order fingerprint of one finished run. */
struct RunDigest
{
    std::uint64_t digest = 0;
    std::uint64_t events = 0;

    static RunDigest of(const sim::EventQueue &eq)
    {
        return RunDigest{eq.orderDigest(), eq.executed()};
    }

    bool operator==(const RunDigest &) const = default;
    std::string toString() const;
};

class DeterminismHarness
{
  public:
    struct Result
    {
        RunDigest first;
        RunDigest second;

        bool match() const { return first == second; }
        std::string toString() const;
    };

    /**
     * The experiment under audit: builds its own EventQueue (and
     * seeds its own RNGs identically on every call), runs to the same
     * simulated deadline, and returns RunDigest::of(queue).
     * @p run_index is 0 or 1, for diagnostics only — the experiment
     * must NOT vary behaviour on it.
     */
    using RunFn = std::function<RunDigest(unsigned run_index)>;

    /** Run @p fn twice and compare order digests. */
    static Result runTwice(const RunFn &fn);

    /**
     * Convenience for tests: runTwice + fatal report on mismatch.
     * @return the matching digest.
     */
    static RunDigest audit(const std::string &label, const RunFn &fn);
};

} // namespace sriov::check

#endif // SRIOV_CHECK_DETERMINISM_HPP
