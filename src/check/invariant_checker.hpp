/**
 * @file
 * InvariantChecker: runtime enforcement of simulator invariants.
 *
 * The paper's figures hinge on precise interrupt/DMA event ordering; a
 * stale-event or tie-break bug in the event queue silently corrupts
 * every reproduced curve. The checker hooks into the EventQueue (as
 * its Observer) and polls registered components (descriptor rings, L2
 * switches, wires, LAPICs, the interrupt router) for invariants that
 * must hold at any instant:
 *
 *  - no event is scheduled in the past and now() never moves backward;
 *  - no events leak past the end of a run-to-quiescence experiment;
 *  - descriptor-ring head/tail accounting: posted == consumed +
 *    discarded + available, available <= capacity;
 *  - packet conservation on wires: offered == delivered + dropped +
 *    in-flight (and in-flight == 0 at quiescence);
 *  - L2 switch lookup accounting: lookups == matched + unmatched;
 *  - no MSI delivery from a function whose vector is masked/disabled;
 *  - no EOI without an in-service vector.
 *
 * Violations are collected (not fatal) so negative tests can assert
 * them; report() renders all violations plus the global Tracer ring
 * for post-mortem context.
 */

#ifndef SRIOV_CHECK_INVARIANT_CHECKER_HPP
#define SRIOV_CHECK_INVARIANT_CHECKER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "intr/interrupt_router.hpp"
#include "intr/lapic.hpp"
#include "nic/desc_ring.hpp"
#include "nic/l2_switch.hpp"
#include "nic/wire.hpp"
#include "obs/pathtrace.hpp"
#include "pci/function.hpp"
#include "sim/event_queue.hpp"

namespace sriov::check {

enum class Invariant : unsigned
{
    SchedulePast = 0,   ///< scheduleAt() with when < now()
    TimeRegression,     ///< an event executed before the current time
    EventLeak,          ///< live events left at expectQuiesced()
    RingAccounting,     ///< posted != consumed + discarded + available
    RingOverflow,       ///< drops on a ring watched as must-not-drop
    PacketConservation, ///< wire offered != delivered + dropped + flight
    SwitchAccounting,   ///< lookups != matched + unmatched
    MaskedDelivery,     ///< MSI reached the router from a masked vector
    SpuriousEoi,        ///< EOI with no in-service vector
    Count,
};

const char *invariantName(Invariant inv);

struct Violation
{
    Invariant inv;
    sim::Time when;     ///< queue time at detection
    std::string detail;

    std::string toString() const;
};

class InvariantChecker : public sim::EventQueue::Observer
{
  public:
    /** Installs itself as @p eq's observer. */
    explicit InvariantChecker(sim::EventQueue &eq);
    ~InvariantChecker() override;

    InvariantChecker(const InvariantChecker &) = delete;
    InvariantChecker &operator=(const InvariantChecker &) = delete;

    /** @name Component registration. @{ */
    void watchRing(std::string name, const nic::DescRing &ring,
                   bool must_not_drop = false);
    void watchWire(std::string name, const nic::Wire &wire);
    void watchSwitch(std::string name, const nic::L2Switch &sw);
    void watchLapic(std::string name, const intr::Lapic &lapic);
    /** Installs the router's delivery tap (one checker per router). */
    void watchRouter(intr::InterruptRouter &router);
    /** Functions whose mask state the router tap validates, by RID. */
    void watchFunction(const pci::PciFunction &fn);
    /** Must be called before a watched function is destroyed (VFs on
     *  VF-disable, hot-unplug). */
    void unwatchFunction(const pci::PciFunction &fn);
    /** Flight recorder: report() appends @p pt's sampled packet
     *  trails and stage attribution for post-mortem context. */
    void attachPathTracer(const obs::PathTracer *pt) { pathtrace_ = pt; }
    /** @} */

    /** Poll every watched component's instantaneous invariants. */
    void checkNow();

    /**
     * End of a run-to-quiescence experiment: checkNow() plus event
     * leaks and wire in-flight emptiness. Not for deadline-bounded
     * runs, which legitimately leave periodic timers live.
     */
    void expectQuiesced();

    bool ok() const { return violations_.empty(); }
    const std::vector<Violation> &violations() const { return violations_; }
    std::size_t count(Invariant inv) const;
    /** All violations plus the Tracer ring, for post-mortem. */
    std::string report() const;
    void clearViolations() { violations_.clear(); }

    /** sim::EventQueue::Observer */
    void onSchedulePast(sim::Time when, sim::Time now) override;
    void onExecute(sim::Time when, sim::Time now, std::uint64_t seq,
                   const char *tag) override;

  private:
    struct WatchedRing
    {
        std::string name;
        const nic::DescRing *ring;
        bool must_not_drop;
        std::uint64_t seen_overflows = 0;
    };

    struct WatchedWire
    {
        std::string name;
        const nic::Wire *wire;
    };

    struct WatchedSwitch
    {
        std::string name;
        const nic::L2Switch *sw;
    };

    struct WatchedLapic
    {
        std::string name;
        const intr::Lapic *lapic;
        std::uint64_t seen_spurious = 0;
    };

    void violate(Invariant inv, std::string detail);
    void onRouterDelivery(pci::Rid source, const pci::MsiMessage &msg);
    void checkRing(WatchedRing &w);
    void checkWire(const WatchedWire &w, bool quiesced);
    void checkSwitch(const WatchedSwitch &w);
    void checkLapic(WatchedLapic &w);

    sim::EventQueue &eq_;
    std::vector<WatchedRing> rings_;
    std::vector<WatchedWire> wires_;
    std::vector<WatchedSwitch> switches_;
    std::vector<WatchedLapic> lapics_;
    std::vector<const pci::PciFunction *> functions_;
    std::vector<Violation> violations_;
    const obs::PathTracer *pathtrace_ = nullptr;
};

} // namespace sriov::check

#endif // SRIOV_CHECK_INVARIANT_CHECKER_HPP
