#include "check/invariant_checker.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/log.hpp"
#include "sim/trace.hpp"

namespace sriov::check {

const char *
invariantName(Invariant inv)
{
    switch (inv) {
    case Invariant::SchedulePast: return "schedule-in-past";
    case Invariant::TimeRegression: return "time-regression";
    case Invariant::EventLeak: return "event-leak";
    case Invariant::RingAccounting: return "ring-accounting";
    case Invariant::RingOverflow: return "ring-overflow";
    case Invariant::PacketConservation: return "packet-conservation";
    case Invariant::SwitchAccounting: return "switch-accounting";
    case Invariant::MaskedDelivery: return "masked-delivery";
    case Invariant::SpuriousEoi: return "spurious-eoi";
    case Invariant::Count: break;
    }
    return "unknown";
}

std::string
Violation::toString() const
{
    return "[" + when.toString() + "] " + invariantName(inv) + ": "
        + detail;
}

InvariantChecker::InvariantChecker(sim::EventQueue &eq) : eq_(eq)
{
    if (eq_.observer() != nullptr)
        sim::fatal("event queue already has an observer");
    eq_.setObserver(this);
}

InvariantChecker::~InvariantChecker()
{
    if (eq_.observer() == this)
        eq_.setObserver(nullptr);
}

void
InvariantChecker::violate(Invariant inv, std::string detail)
{
    sim::warn("invariant violated: %s: %s", invariantName(inv),
              detail.c_str());
    violations_.push_back(Violation{inv, eq_.now(), std::move(detail)});
}

void
InvariantChecker::onSchedulePast(sim::Time when, sim::Time now)
{
    violate(Invariant::SchedulePast,
            "event scheduled at " + when.toString() + " < now "
                + now.toString() + " (clamped)");
}

void
InvariantChecker::onExecute(sim::Time when, sim::Time now, std::uint64_t seq,
                            const char *tag)
{
    if (when < now) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "event #%llu (tag '%s') at %s executes before now %s",
                      static_cast<unsigned long long>(seq),
                      tag != nullptr ? tag : "", when.toString().c_str(),
                      now.toString().c_str());
        violate(Invariant::TimeRegression, buf);
    }
}

void
InvariantChecker::watchRing(std::string name, const nic::DescRing &ring,
                            bool must_not_drop)
{
    rings_.push_back(
        WatchedRing{std::move(name), &ring, must_not_drop, ring.overflows()});
}

void
InvariantChecker::watchWire(std::string name, const nic::Wire &wire)
{
    wires_.push_back(WatchedWire{std::move(name), &wire});
}

void
InvariantChecker::watchSwitch(std::string name, const nic::L2Switch &sw)
{
    switches_.push_back(WatchedSwitch{std::move(name), &sw});
}

void
InvariantChecker::watchLapic(std::string name, const intr::Lapic &lapic)
{
    lapics_.push_back(
        WatchedLapic{std::move(name), &lapic, lapic.spuriousEois()});
}

void
InvariantChecker::watchRouter(intr::InterruptRouter &router)
{
    router.setDeliveryTap(
        [this](pci::Rid source, const pci::MsiMessage &msg) {
            onRouterDelivery(source, msg);
        });
}

void
InvariantChecker::watchFunction(const pci::PciFunction &fn)
{
    functions_.push_back(&fn);
}

void
InvariantChecker::unwatchFunction(const pci::PciFunction &fn)
{
    std::erase(functions_, &fn);
}

void
InvariantChecker::onRouterDelivery(pci::Rid source,
                                   const pci::MsiMessage &msg)
{
    for (const pci::PciFunction *fn : functions_) {
        if (fn->rid() != source)
            continue;
        if (const pci::MsixCapability *mx = fn->msix()) {
            bool programmed = false;
            for (unsigned i = 0; i < mx->tableSize(); ++i) {
                if (mx->entry(i).msg.vector() != msg.vector())
                    continue;
                programmed = true;
                if (mx->deliverable(i))
                    return;    // a matching entry may fire: OK
            }
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "%s signalled vector %u %s", fn->name().c_str(),
                          msg.vector(),
                          programmed ? "while masked/disabled"
                                     : "not programmed in its MSI-X table");
            violate(Invariant::MaskedDelivery, buf);
            return;
        }
        if (const pci::MsiCapability *mi = fn->msi()) {
            if (mi->enabled() && !mi->masked()
                && mi->message().vector() == msg.vector())
                return;
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "%s signalled MSI vector %u while %s",
                          fn->name().c_str(), msg.vector(),
                          mi->enabled() ? "masked" : "disabled");
            violate(Invariant::MaskedDelivery, buf);
            return;
        }
        return;    // function has no MSI capability we can validate
    }
}

void
InvariantChecker::checkRing(WatchedRing &w)
{
    const nic::DescRing &r = *w.ring;
    if (r.available() > r.capacity()) {
        violate(Invariant::RingAccounting,
                w.name + ": available " + std::to_string(r.available())
                    + " exceeds capacity " + std::to_string(r.capacity()));
    }
    std::uint64_t accounted = r.consumed() + r.discarded() + r.available();
    if (r.posted() != accounted) {
        violate(Invariant::RingAccounting,
                w.name + ": posted " + std::to_string(r.posted())
                    + " != consumed " + std::to_string(r.consumed())
                    + " + discarded " + std::to_string(r.discarded())
                    + " + available " + std::to_string(r.available()));
    }
    if (w.must_not_drop && r.overflows() > w.seen_overflows) {
        violate(Invariant::RingOverflow,
                w.name + ": "
                    + std::to_string(r.overflows() - w.seen_overflows)
                    + " frame(s) dropped for lack of descriptors");
        w.seen_overflows = r.overflows();
    }
}

void
InvariantChecker::checkWire(const WatchedWire &w, bool quiesced)
{
    const nic::Wire &wire = *w.wire;
    if (wire.delivered() + wire.dropped() > wire.offered()) {
        violate(Invariant::PacketConservation,
                w.name + ": delivered " + std::to_string(wire.delivered())
                    + " + dropped " + std::to_string(wire.dropped())
                    + " exceeds offered " + std::to_string(wire.offered()));
    }
    if (quiesced && wire.inFlight() != 0) {
        violate(Invariant::PacketConservation,
                w.name + ": " + std::to_string(wire.inFlight())
                    + " frame(s) still in flight at quiescence");
    }
}

void
InvariantChecker::checkSwitch(const WatchedSwitch &w)
{
    const nic::L2Switch &sw = *w.sw;
    if (sw.lookups() != sw.matched() + sw.unmatched()) {
        violate(Invariant::SwitchAccounting,
                w.name + ": lookups " + std::to_string(sw.lookups())
                    + " != matched " + std::to_string(sw.matched())
                    + " + unmatched " + std::to_string(sw.unmatched()));
    }
}

void
InvariantChecker::checkLapic(WatchedLapic &w)
{
    if (w.lapic->spuriousEois() > w.seen_spurious) {
        violate(Invariant::SpuriousEoi,
                w.name + ": "
                    + std::to_string(w.lapic->spuriousEois()
                                     - w.seen_spurious)
                    + " EOI write(s) with no vector in service");
        w.seen_spurious = w.lapic->spuriousEois();
    }
}

void
InvariantChecker::checkNow()
{
    for (auto &w : rings_)
        checkRing(w);
    for (const auto &w : wires_)
        checkWire(w, false);
    for (const auto &w : switches_)
        checkSwitch(w);
    for (auto &w : lapics_)
        checkLapic(w);
}

void
InvariantChecker::expectQuiesced()
{
    checkNow();
    if (!eq_.empty()) {
        violate(Invariant::EventLeak,
                std::to_string(eq_.liveEvents())
                    + " live event(s) left in the queue at experiment end");
    }
    for (const auto &w : wires_)
        checkWire(w, true);
}

std::size_t
InvariantChecker::count(Invariant inv) const
{
    std::size_t n = 0;
    for (const auto &v : violations_) {
        if (v.inv == inv)
            ++n;
    }
    return n;
}

std::string
InvariantChecker::report() const
{
    std::string out;
    if (violations_.empty()) {
        out = "invariant checker: all invariants hold\n";
        return out;
    }
    out = "invariant checker: " + std::to_string(violations_.size())
        + " violation(s)\n";
    for (const auto &v : violations_)
        out += "  " + v.toString() + "\n";
    const sim::Tracer &t = sim::Tracer::global();
    if (t.size() > 0) {
        out += "--- trace ring (" + std::to_string(t.size())
            + " records) ---\n";
        out += t.toString();
    }
    if (pathtrace_)
        out += obs::pathSnapshotDump(pathtrace_->snapshot());
    return out;
}

} // namespace sriov::check
