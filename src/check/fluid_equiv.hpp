/**
 * @file
 * The fluid equivalence contract, as an executable check.
 *
 * Fluid mode (DESIGN.md §14) promises that warping over certified
 * periodic stretches does not change what the simulation *measures*.
 * The promise has two strengths, matching the two report comparisons
 * CI runs:
 *
 *  - strict  (--fluid=exact vs --fluid=on): the two runs share one
 *    event schedule, so every integer-valued metric leaf must be
 *    byte-identical — a warp adds the measured per-period delta n
 *    times, which for integers is exactly what n more simulated
 *    periods would have added. Floating-point leaves may differ only
 *    by accumulation order (one fused delta versus millions of small
 *    adds), bounded by a tight relative epsilon.
 *
 *  - banded  (--fluid=off vs --fluid=on): the fluid schedule itself
 *    differs from the seed schedule (devices snap their timer windows
 *    onto the send grid so a hyperperiod exists), so workload metrics
 *    are held to tolerance bands instead: throughput within a
 *    fraction of a percent, CPU/interrupt-derived metrics within a
 *    few percent.
 *
 * Some report sections are diagnostics of the *simulation process*
 * rather than of the modelled system and are excluded from both
 * comparisons: path-tracer trail counts (packets inside a warped span
 * are never traced — that is the point), perf sidecar host timings,
 * and the fluid director's own stats.
 */

#ifndef SRIOV_CHECK_FLUID_EQUIV_HPP
#define SRIOV_CHECK_FLUID_EQUIV_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace sriov::check {

/** Which promise a metric leaf falls under. */
enum class FluidMetricClass
{
    Exact,      ///< integer-valued: byte-identical under strict
    F64,        ///< float-valued: accumulation-order epsilon
    Banded,     ///< schedule-dependent: tolerance band only
    Diagnostic, ///< simulation-process metadata: never compared
};

struct FluidEquivOptions
{
    /** Strict (exact-vs-on) or banded (off-vs-on) comparison. */
    bool banded = false;
    /** Relative epsilon for F64 leaves under strict comparison. */
    double f64_rel = 1e-9;
    /** Relative band for throughput/goodput leaves when banded. */
    double goodput_band = 0.005;
    /** Relative band for everything else when banded. The window
     *  quantization moves a device's interrupt rate by up to half a
     *  send-grid per window (~5%), and share-of-CPU metrics amplify
     *  that; 8% covers the worst observed case with margin. */
    double band = 0.08;
};

struct FluidEquivResult
{
    std::size_t compared = 0;  ///< numeric leaves checked
    std::size_t exact = 0;     ///< held to byte-identity
    std::size_t skipped = 0;   ///< diagnostic leaves excluded
    std::vector<std::string> violations;

    bool ok() const { return violations.empty(); }
};

/**
 * Classify a report leaf by its JSON path (slash-separated, e.g.
 * "/snapshots/0/metrics/server.vm3.vm_exits/value"). @p integral is
 * whether both observed values are whole numbers — counters surface
 * as integral doubles through the metric registry.
 */
FluidMetricClass classifyFluidMetric(const std::string &path,
                                     bool integral);

/**
 * Compare two parsed figXX.json reports under the fluid contract.
 * @p ref is the reference run (--fluid=exact for strict mode,
 * --fluid=off for banded), @p fluid the --fluid=on run. Structural
 * mismatches (missing keys, different array lengths) outside
 * diagnostic sections are violations too.
 */
FluidEquivResult compareFluidReports(const obs::JsonValue &ref,
                                     const obs::JsonValue &fluid,
                                     const FluidEquivOptions &opt);

} // namespace sriov::check

#endif // SRIOV_CHECK_FLUID_EQUIV_HPP
