/**
 * @file
 * Consolidated hosting: the paper's motivating scenario — many VMs
 * sharing a pool of physical NICs without burning the host's CPUs on
 * software packet switching.
 *
 * Builds the full 10-port testbed, packs 30 HVM guests onto it (3 VFs
 * per port), runs a netperf pair per guest, and contrasts the result
 * with the same fleet on the PV split driver.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

void
runFleet(core::Testbed::NetMode mode, const char *label)
{
    core::Testbed::Params p;
    p.num_ports = 10;
    p.opts = core::OptimizationSet::maskEoi();
    p.netback_threads = 4;
    core::Testbed tb(p);

    constexpr unsigned kVms = 30;
    for (unsigned i = 0; i < kVms; ++i)
        tb.addGuest(vmm::DomainType::Hvm, mode);
    for (unsigned i = 0; i < kVms; ++i)
        tb.startUdpToGuest(tb.guest(i), p.line_bps / (kVms / 10));

    auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
    std::printf("%-22s aggregate %s Gb/s | total CPU %s (dom0 %s, "
                "Xen %s, guests %s)\n",
                label, core::gbps(m.total_goodput_bps).c_str(),
                core::cpuPct(m.total_pct).c_str(),
                core::cpuPct(m.dom0_pct).c_str(),
                core::cpuPct(m.xen_pct).c_str(),
                core::cpuPct(m.guests_pct).c_str());
}

} // namespace

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    std::printf("Consolidated hosting: 30 VMs over ten 1 GbE ports\n\n");
    runFleet(core::Testbed::NetMode::Sriov, "SR-IOV (VF per guest):");
    runFleet(core::Testbed::NetMode::Pv, "PV split driver:");
    std::printf("\nSR-IOV keeps dom0 out of the datapath; the PV bridge "
                "pays a grant copy per packet.\n");
    return 0;
}
