/**
 * @file
 * Quickstart: one HVM guest with a dedicated Virtual Function
 * receiving a 1 GbE netperf UDP_STREAM, with every paper optimization
 * enabled. Prints throughput and the CPU breakdown.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);

    core::Testbed::Params p;
    p.num_ports = 1;
    p.opts = core::OptimizationSet::all();
    core::Testbed tb(p);

    // One HVM guest, one VF, one netperf pair.
    auto &g = tb.addGuest(vmm::DomainType::Hvm, core::Testbed::NetMode::Sriov);
    tb.startUdpToGuest(g, /*offered_bps=*/1e9);

    auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(5));

    std::printf("SR-IOV quickstart: 1 HVM guest, 1 GbE, %s\n",
                tb.params().opts.describe().c_str());
    std::printf("  goodput          : %s Gb/s\n",
                core::gbps(m.total_goodput_bps).c_str());
    std::printf("  guest CPU        : %s\n",
                core::cpuPct(m.guests_pct).c_str());
    std::printf("  Xen CPU          : %s\n", core::cpuPct(m.xen_pct).c_str());
    std::printf("  dom0 CPU         : %s\n",
                core::cpuPct(m.dom0_pct).c_str());
    std::printf("  VF interrupts    : %llu (ITR %.0f Hz)\n",
                static_cast<unsigned long long>(
                    g.vf->deviceStats().interrupts.value()),
                g.vf->currentItrHz());
    std::printf("  ring drops       : %llu, socket drops: %llu\n",
                static_cast<unsigned long long>(
                    g.vf->deviceStats().rx_drop_ring.value()),
                static_cast<unsigned long long>(g.stack->udpSocketDrops()));
    return 0;
}
