/**
 * @file
 * Live migration with DNIS: walks through the paper's Section 4.4
 * sequence step by step, printing each state transition — bonding
 * setup, virtual hot-removal, failover to the PV NIC, pre-copy
 * migration, and VF restoration on the target.
 */

#include <cstdio>

#include "core/dnis.hpp"
#include "vmm/hotplug_controller.hpp"
#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    std::printf("DNIS live migration walkthrough\n\n");

    core::Testbed::Params p;
    p.num_ports = 1;
    p.opts = core::OptimizationSet::all();
    p.guest_mem = 512ull << 20;
    p.netback_threads = 2;
    core::Testbed tb(p);

    auto &g = tb.addGuest(vmm::DomainType::Hvm,
                          core::Testbed::NetMode::Sriov,
                          guest::KernelVersion::v2_6_28,
                          /*bond_vf_with_pv=*/true);
    tb.startUdpToGuest(g, p.line_bps);

    vmm::VirtualHotplugController hpc(*g.dom);
    auto &slot = hpc.addSlot("vf-slot");
    core::Dnis dnis(tb.server(), tb.migration());
    dnis.manage(*g.dom, *g.vf, *g.pv, *g.bond, slot);

    std::printf("[%5.2fs] bond0 active on %s (VF), backup %s (PV)\n",
                tb.eq().now().toSeconds(), g.vf->name().c_str(),
                g.pv->name().c_str());

    tb.run(sim::Time::sec(2));
    auto m0 = tb.measure(sim::Time(), sim::Time::sec(1));
    std::printf("[%5.2fs] steady state: %s Gb/s through the VF, dom0 "
                "%s\n",
                tb.eq().now().toSeconds(),
                core::gbps(m0.total_goodput_bps).c_str(),
                core::cpuPct(m0.dom0_pct).c_str());

    bool done = false;
    core::Dnis::Report report{};
    core::Dnis::Params dp;
    dnis.migrate(dp, [&](const core::Dnis::Report &r) {
        report = r;
        done = true;
    });
    std::printf("[%5.2fs] migration manager signals virtual hot removal "
                "of the VF\n",
                tb.eq().now().toSeconds());

    tb.run(sim::Time::sec(1));
    std::printf("[%5.2fs] bond0 active on %s — hardware stickiness "
                "eliminated, pre-copy running\n",
                tb.eq().now().toSeconds(),
                g.bond->active()->name().c_str());

    tb.run(sim::Time::sec(20));
    if (!done) {
        std::printf("migration incomplete\n");
        return 1;
    }
    std::printf("[%5.2fs] switch outage %.2f s; stop-and-copy downtime "
                "%.2f s (%u rounds, %llu pages)\n",
                report.vf_restored.toSeconds(),
                (report.switched_to_pv - report.switch_started)
                    .toSeconds(),
                report.mig.downtime().toSeconds(), report.mig.rounds,
                static_cast<unsigned long long>(report.mig.pages_sent));
    std::printf("[%5.2fs] VF hot-added on target; bond0 active on %s "
                "again\n",
                report.vf_restored.toSeconds(),
                g.bond->active()->name().c_str());

    auto m1 = tb.measure(sim::Time(), sim::Time::sec(1));
    std::printf("[%5.2fs] post-migration: %s Gb/s through the restored "
                "VF\n",
                tb.eq().now().toSeconds(),
                core::gbps(m1.total_goodput_bps).c_str());
    return 0;
}
