/**
 * @file
 * The Section 4.3 security scenario: without ACS, a VF assigned to a
 * guest can reach a sibling VF's MMIO through switch-internal
 * peer-to-peer routing, bypassing the IOMMU. With P2P Request
 * Redirect enabled on the downstream ports, the transaction is forced
 * upstream through the Root Complex and IOMMU, which rejects it.
 */

#include <cstdio>

#include "mem/iommu.hpp"
#include "pci/pci_switch.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    std::printf("ACS peer-to-peer containment demo\n\n");

    // Two VFs under one PCIe switch, each assigned to a different VM.
    pci::PciSwitch sw(/*num_downstream=*/2);
    pci::PciFunction vf_a(pci::Bdf{5, 0, 0}, 0x8086, 0x10ca, 0x020000,
                          pci::PciFunction::Kind::Virtual);
    pci::PciFunction vf_b(pci::Bdf{6, 0, 0}, 0x8086, 0x10ca, 0x020000,
                          pci::PciFunction::Kind::Virtual);
    sw.port(0).attach(&vf_a);
    sw.port(1).attach(&vf_b);

    mem::GuestPhysMap vm_a("vm_a"), vm_b("vm_b");
    vm_a.mapRange(0, 1 << 20, 16 * mem::kPageSize);
    vm_b.mapRange(0, 2 << 20, 16 * mem::kPageSize);
    mem::Iommu iommu;
    iommu.attach(vf_a.rid(), vm_a);
    iommu.attach(vf_b.rid(), vm_b);

    // A malicious guest programs its VF to DMA at the *sibling VF's*
    // MMIO — a P2P transaction inside the switch.
    auto attempt = [&](const char *label) {
        auto route = sw.accessPeer(vf_a.rid(), vf_b.rid());
        switch (route) {
          case pci::PciSwitch::Route::DirectP2P:
            std::printf("%-28s routed DIRECTLY inside the switch — the "
                        "IOMMU never sees it. VULNERABLE.\n",
                        label);
            break;
          case pci::PciSwitch::Route::RedirectedUpstream: {
            // Upstream at the Root Complex, the IOMMU validates the
            // address against vf_a's domain: peer MMIO is not mapped.
            auto r = iommu.translate(vf_a.rid(), /*gpa=*/0xfee00000,
                                     /*is_write=*/true);
            std::printf("%-28s redirected upstream; IOMMU verdict: %s. "
                        "CONTAINED.\n",
                        label, r.ok() ? "allowed" : "fault (blocked)");
            break;
          }
          case pci::PciSwitch::Route::Blocked:
            std::printf("%-28s blocked at the port.\n", label);
            break;
        }
    };

    std::printf("ACS disabled:\n  ");
    attempt("VF_a -> VF_b MMIO:");

    sw.setRedirectAll(true);
    std::printf("\nACS P2P Request Redirect on:\n  ");
    attempt("VF_a -> VF_b MMIO:");

    std::printf("\nIOMMU faults recorded: %llu\n",
                static_cast<unsigned long long>(iommu.faults().value()));
    return 0;
}
