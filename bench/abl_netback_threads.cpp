/**
 * @file
 * Ablation — netback worker threads (§6.5). The original Xen PV
 * backend copies every packet on a single kernel thread and saturates
 * one core around 3.6 Gb/s; the paper's enhancement adds threads "so
 * that it could take advantage of multi-core CPU computing capability
 * for fair comparison".
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "abl_netback",
                       "Ablation: netback worker threads (section 6.5)");
    if (fr.helpShown())
        return 0;
    core::banner("Ablation: netback worker threads, 10 PV (HVM) guests, "
                 "aggregate 10 GbE offered");
    fr.report().setConfig("ports", 10.0);
    fr.report().setConfig("measure_s", 4.0);

    core::Table t({"threads", "throughput(Gb/s)", "dom0 CPU",
                   "backlog drops/s"});
    std::vector<double> thread_axis, bw_gbps;
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        core::Testbed::Params p;
        p.num_ports = 10;
        p.opts = core::OptimizationSet::maskEoi();
        p.netback_threads = threads;
        core::Testbed tb(p);

        for (unsigned i = 0; i < 10; ++i) {
            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  core::Testbed::NetMode::Pv);
            tb.startUdpToGuest(g, p.line_bps);
        }
        fr.instrument(tb);
        core::Testbed::Measurement m;
        std::uint64_t drops0 = 0;
        fr.captureTrace(tb, [&]() {
            tb.run(sim::Time::sec(2));
            for (unsigned port = 0; port < 10; ++port)
                drops0 += tb.netback(port).backlogDrops();
            m = tb.measure(sim::Time(), sim::Time::sec(4));
        });
        std::uint64_t drops = 0;
        for (unsigned port = 0; port < 10; ++port)
            drops += tb.netback(port).backlogDrops();
        thread_axis.push_back(double(threads));
        bw_gbps.push_back(m.total_goodput_bps / 1e9);
        if (threads == 1) {
            fr.snapshot("1-thread");
            // Paper §6.5: one thread saturates a core around 3.6 Gb/s.
            fr.expect("1thread_gbps", m.total_goodput_bps / 1e9, 3.6,
                      15);
        }

        t.addRow({core::Table::num(threads, 0),
                  core::gbps(m.total_goodput_bps),
                  core::cpuPct(m.dom0_pct),
                  core::Table::num(double(drops - drops0) / m.seconds,
                                   0)});
    }
    fr.report().addSeries("goodput_gbps_vs_threads", thread_axis,
                          bw_gbps);
    t.print();
    std::printf("\npaper: 1 thread caps at ~3.6 Gb/s with one core "
                "pegged; threads buy throughput at dom0-CPU cost\n");
    return fr.finish();
}
