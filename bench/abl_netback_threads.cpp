/**
 * @file
 * Ablation — netback worker threads (§6.5). The original Xen PV
 * backend copies every packet on a single kernel thread and saturates
 * one core around 3.6 Gb/s; the paper's enhancement adds threads "so
 * that it could take advantage of multi-core CPU computing capability
 * for fair comparison".
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner("Ablation: netback worker threads, 10 PV (HVM) guests, "
                 "aggregate 10 GbE offered");

    core::Table t({"threads", "throughput(Gb/s)", "dom0 CPU",
                   "backlog drops/s"});
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        core::Testbed::Params p;
        p.num_ports = 10;
        p.opts = core::OptimizationSet::maskEoi();
        p.netback_threads = threads;
        core::Testbed tb(p);

        for (unsigned i = 0; i < 10; ++i) {
            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  core::Testbed::NetMode::Pv);
            tb.startUdpToGuest(g, p.line_bps);
        }
        tb.run(sim::Time::sec(2));
        std::uint64_t drops0 = 0;
        for (unsigned port = 0; port < 10; ++port)
            drops0 += tb.netback(port).backlogDrops();
        auto m = tb.measure(sim::Time(), sim::Time::sec(4));
        std::uint64_t drops = 0;
        for (unsigned port = 0; port < 10; ++port)
            drops += tb.netback(port).backlogDrops();

        t.addRow({core::Table::num(threads, 0),
                  core::gbps(m.total_goodput_bps),
                  core::cpuPct(m.dom0_pct),
                  core::Table::num(double(drops - drops0) / m.seconds,
                                   0)});
    }
    t.print();
    std::printf("\npaper: 1 thread caps at ~3.6 Gb/s with one core "
                "pegged; threads buy throughput at dom0-CPU cost\n");
    return 0;
}
