/**
 * @file
 * Fig. 21 — migrating an HVM guest running netperf over SR-IOV with
 * DNIS: the VF is virtually hot-removed at migration start, the bond
 * fails over to the PV NIC (≈0.6 s outage while the interface
 * switches), the "real" migration proceeds as if the guest never had
 * a VF, and a virtual hot-add restores the VF on the target.
 *
 * Paper result: pre-migration dom0 CPU ≈ 0 (SR-IOV datapath bypasses
 * it); extra 0.6 s service dip at 4.5 s; stop-and-copy down at
 * ~10.3 s, restored ~11.8 s — on par with the PV driver.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/dnis.hpp"
#include "vmm/hotplug_controller.hpp"
#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig21",
                       "Live migration of an SR-IOV guest with DNIS "
                       "(Fig. 21)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 21: migrating an HVM guest running netperf over "
                 "SR-IOV with DNIS");
    fr.report().setConfig("guest_mem_mb", 640.0);
    fr.report().setConfig("migrate_at_s", 4.5);

    core::Testbed::Params p;
    p.num_ports = 1;
    p.opts = core::OptimizationSet::all();
    p.guest_mem = 640ull << 20;
    p.netback_threads = 2;
    core::Testbed tb(p);

    auto &g = tb.addGuest(vmm::DomainType::Hvm,
                          core::Testbed::NetMode::Sriov,
                          guest::KernelVersion::v2_6_28,
                          /*bond_vf_with_pv=*/true);
    tb.startUdpToGuest(g, p.line_bps);
    g.rx->sampleEvery(sim::Time::ms(500));

    vmm::VirtualHotplugController hpc(*g.dom);
    auto &slot = hpc.addSlot("vf-slot");
    core::Dnis dnis(tb.server(), tb.migration());
    dnis.manage(*g.dom, *g.vf, *g.pv, *g.bond, slot);

    core::Dnis::Report report{};
    bool done = false;
    tb.eq().scheduleAt(sim::Time::seconds(4.5), [&dnis, &report, &done]() {
        core::Dnis::Params dp;
        dnis.migrate(dp, [&report, &done](const core::Dnis::Report &r) {
            report = r;
            done = true;
        });
    });

    std::printf("\n%-8s %-18s %-10s\n", "t(s)", "netperf(Mb/s)",
                "dom0 CPU");
    fr.instrument(tb);
    auto snap = tb.server().snapshot();
    std::vector<double> dom0_series;
    fr.captureTrace(tb, [&]() {
        for (int step = 0; step < 36; ++step) {
            tb.run(sim::Time::ms(500));
            auto tags = tb.server().cpuPercentByTag(snap);
            double dom0 = 0;
            for (const auto &[tag, pct] : tags) {
                if (tag.rfind("dom0", 0) == 0)
                    dom0 += pct;
            }
            dom0_series.push_back(dom0);
            snap = tb.server().snapshot();
        }
    });
    const auto &tl = g.rx->timeline().samples();
    for (std::size_t i = 0; i < tl.size() && i < dom0_series.size(); ++i) {
        std::printf("%-8.1f %-18.0f %-10.1f\n",
                    tl[i].first.toSeconds(), tl[i].second / 1e6,
                    dom0_series[i]);
    }

    if (done) {
        std::printf("\nDNIS: hot-remove signalled %.1f s, bond on PV "
                    "%.1f s (switch outage %.2f s), service down %.1f s "
                    "-> restored %.1f s (downtime %.2f s), VF restored "
                    "%.1f s\n",
                    report.switch_started.toSeconds(),
                    report.switched_to_pv.toSeconds(),
                    (report.switched_to_pv - report.switch_started)
                        .toSeconds(),
                    report.mig.paused_at.toSeconds(),
                    report.mig.resumed_at.toSeconds(),
                    report.mig.downtime().toSeconds(),
                    report.vf_restored.toSeconds());
        std::printf("bond failovers: %llu, frames dropped on inactive "
                    "slave: %llu\n",
                    static_cast<unsigned long long>(g.bond->failovers()),
                    static_cast<unsigned long long>(
                        g.bond->inactiveRxDropped()));
        fr.snapshot("post-migration");
        std::vector<double> t_axis, mbps;
        for (const auto &[when, bps] : tl) {
            t_axis.push_back(when.toSeconds());
            mbps.push_back(bps / 1e6);
        }
        fr.report().addSeries("netperf_mbps_vs_s", t_axis, mbps);
        std::vector<double> step_axis;
        for (std::size_t i = 0; i < dom0_series.size(); ++i)
            step_axis.push_back(0.5 * double(i + 1));
        fr.report().addSeries("dom0_pct_vs_s", step_axis, dom0_series);
        // Paper: ~0.6 s failover dip; down ~10.3 s, restored ~11.8 s.
        fr.expect("switch_outage_s",
                  (report.switched_to_pv - report.switch_started)
                      .toSeconds(),
                  0.6, 50);
        fr.expect("paused_at_s", report.mig.paused_at.toSeconds(), 10.3,
                  15);
        fr.expect("resumed_at_s", report.mig.resumed_at.toSeconds(),
                  11.8, 15);
    } else {
        std::printf("\nDNIS migration did not complete in the window\n");
    }
    std::printf("paper: extra ~0.6 s dip at 4.5 s; down ~10.3 s, "
                "restored ~11.8 s; dom0 ~0%% before migration\n");
    int rc = fr.finish();
    return done ? rc : 1;
}
