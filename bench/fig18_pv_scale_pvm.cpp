/**
 * @file
 * Fig. 18 — PV NIC scalability with PVM guests.
 *
 * Paper result: same decaying shape as Fig. 17 with lower dom0 cost
 * (~324% vs 431%: no LAPIC conversion), but guests pay slightly more
 * than HVM (x86-64 XenLinux page-table switch per syscall).
 */

#define FIG18_PVM 1
#include "fig17_pv_scale_hvm.cpp"

int
main(int argc, char **argv)
{
    return runPvScaleBench(
        argc, argv, "fig18", vmm::DomainType::Pvm,
        "Fig. 18: PV NIC scalability, PVM guests, multi-threaded netback",
        "dom0 ~324% (lower than HVM's 431%); guest side slightly higher "
        "than HVM",
        324);
}
