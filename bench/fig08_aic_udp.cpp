/**
 * @file
 * Fig. 8 — UDP_STREAM bandwidth and CPU utilization under different
 * interrupt-coalescing policies: 20 kHz, 2 kHz (VF driver default),
 * AIC, 1 kHz (§5.3). One HVM guest (2.6.28), one 1 GbE port.
 *
 * Paper result: throughput stays at 957 Mb/s for 20 kHz, 2 kHz and
 * AIC; CPU drops ~40% from 20 kHz to 2 kHz and further with AIC;
 * dom0 stays ~1.5% throughout.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig08",
                       "UDP_STREAM vs interrupt-coalescing policy "
                       "(Fig. 8)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 8: UDP_STREAM vs interrupt coalescing policy "
                 "(1 HVM guest, 1 GbE)");
    fr.report().setConfig("guest_kernel", "2.6.28");
    fr.report().setConfig("ports", 1.0);
    fr.report().setConfig("measure_s", 5.0);

    core::Table t({"policy", "throughput(Mb/s)", "guest CPU", "Xen CPU",
                   "dom0 CPU", "irq/s", "sock drops/s"});
    for (const std::string policy : {"20kHz", "2kHz", "AIC", "1kHz"}) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::maskEoi();
        p.opts.aic = policy == "AIC";
        p.itr = policy;
        core::Testbed tb(p);

        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, p.line_bps);
        fr.instrument(tb);

        core::Testbed::Measurement m;
        std::uint64_t irqs0 = 0, drops0 = 0;
        fr.captureTrace(tb, [&]() {
            tb.run(sim::Time::sec(2));
            irqs0 = g.vf->deviceStats().interrupts.value();
            drops0 = g.stack->udpSocketDrops();
            m = tb.measure(sim::Time(), sim::Time::sec(5));
        });
        fr.notePackets(g.rx ? g.rx->rxPackets() : 0);
        double irq_rate =
            (g.vf->deviceStats().interrupts.value() - irqs0) / m.seconds;
        double drop_rate =
            double(g.stack->udpSocketDrops() - drops0) / m.seconds;
        fr.snapshot(policy);
        fr.report().addMetric(policy + ".goodput_mbps",
                              m.total_goodput_bps / 1e6);
        fr.report().addMetric(policy + ".guest_pct", m.guests_pct);
        fr.report().addMetric(policy + ".irq_per_s", irq_rate);
        fr.report().addMetric(policy + ".sock_drops_per_s", drop_rate);
        if (policy != "1kHz") {
            // Paper: line rate for 20 kHz, 2 kHz and AIC.
            fr.expect(policy + ".goodput_mbps",
                      m.total_goodput_bps / 1e6, 957, 5);
        }

        t.addRow({policy, core::Table::num(m.total_goodput_bps / 1e6, 0),
                  core::cpuPct(m.guests_pct), core::cpuPct(m.xen_pct),
                  core::cpuPct(m.dom0_pct), core::Table::num(irq_rate, 0),
                  core::Table::num(drop_rate, 0)});
    }
    t.print();
    std::printf("\npaper: 957 Mb/s for 20k/2k/AIC; ~40%% CPU saving "
                "20k -> 2k; AIC lowest CPU without loss\n");
    return fr.finish();
}
