/**
 * @file
 * Fig. 8 — UDP_STREAM bandwidth and CPU utilization under different
 * interrupt-coalescing policies: 20 kHz, 2 kHz (VF driver default),
 * AIC, 1 kHz (§5.3). One HVM guest (2.6.28), one 1 GbE port.
 *
 * Paper result: throughput stays at 957 Mb/s for 20 kHz, 2 kHz and
 * AIC; CPU drops ~40% from 20 kHz to 2 kHz and further with AIC;
 * dom0 stays ~1.5% throughout.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner("Fig. 8: UDP_STREAM vs interrupt coalescing policy "
                 "(1 HVM guest, 1 GbE)");

    core::Table t({"policy", "throughput(Mb/s)", "guest CPU", "Xen CPU",
                   "dom0 CPU", "irq/s", "sock drops/s"});
    for (const std::string policy : {"20kHz", "2kHz", "AIC", "1kHz"}) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::maskEoi();
        p.opts.aic = policy == "AIC";
        p.itr = policy;
        core::Testbed tb(p);

        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, p.line_bps);

        tb.run(sim::Time::sec(2));
        std::uint64_t irqs0 = g.vf->deviceStats().interrupts.value();
        std::uint64_t drops0 = g.stack->udpSocketDrops();
        auto m = tb.measure(sim::Time(), sim::Time::sec(5));
        double irq_rate =
            (g.vf->deviceStats().interrupts.value() - irqs0) / m.seconds;
        double drop_rate =
            double(g.stack->udpSocketDrops() - drops0) / m.seconds;

        t.addRow({policy, core::Table::num(m.total_goodput_bps / 1e6, 0),
                  core::cpuPct(m.guests_pct), core::cpuPct(m.xen_pct),
                  core::cpuPct(m.dom0_pct), core::Table::num(irq_rate, 0),
                  core::Table::num(drop_rate, 0)});
    }
    t.print();
    std::printf("\npaper: 957 Mb/s for 20k/2k/AIC; ~40%% CPU saving "
                "20k -> 2k; AIC lowest CPU without loss\n");
    return 0;
}
