/**
 * @file
 * Fig. 17 — PV NIC (split driver) scalability with HVM guests, using
 * the multi-threaded netback enhancement of §6.5. Includes the
 * single-threaded row: the original driver saturates one core at
 * ~3.6 Gb/s.
 *
 * Paper result: dom0 CPU climbs toward ~431% and throughput decays as
 * VMs are added; HVM dom0 cost exceeds PVM's because the event
 * channel is converted through the virtual LAPIC.
 */

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Point
{
    double gbps;
    double total;
    double dom0;
    double guests;
    double xen;
};

Point
runPvScale(core::FigReport &fr, core::FigCase &c, unsigned vms,
           vmm::DomainType type, unsigned threads)
{
    core::Testbed::Params p;
    p.num_ports = 10;
    p.opts = core::OptimizationSet::maskEoi();
    p.netback_threads = threads;
    core::Testbed tb(p);

    for (unsigned i = 0; i < vms; ++i)
        tb.addGuest(type, core::Testbed::NetMode::Pv);
    double per_guest = p.line_bps / std::max(1u, vms / 10);
    for (unsigned i = 0; i < vms; ++i)
        tb.startUdpToGuest(tb.guest(i), per_guest);
    c.instrument(tb);

    core::Testbed::Measurement m;
    fr.caseDrive(c, tb, [&]() {
        m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
    });
    if (threads > 1 && vms == 60)
        c.snapshot("60-VM");
    return Point{m.total_goodput_bps / 1e9, m.total_pct, m.dom0_pct,
                 m.guests_pct, m.xen_pct};
}

} // namespace

int
runPvScaleBench(int argc, char **argv, const char *fig,
                vmm::DomainType type, const char *title,
                const char *expect, double dom0_peak_expected)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, fig, title);
    if (fr.helpShown())
        return 0;
    core::banner(title);
    fr.report().setConfig("ports", 10.0);
    fr.report().setConfig("netback_threads", 4.0);
    fr.report().setConfig("measure_s", 4.0);

    // Case 0 is the single-threaded §6.5 row; the rest sweep VM count
    // with the 4-thread netback. All are independent simulations, so
    // SweepRunner may run them on --jobs threads; merging in
    // declaration order keeps the report byte-identical to --jobs=1.
    const std::vector<unsigned> counts{10u, 20u, 30u, 40u, 50u, 60u};
    std::vector<core::FigCase> cases;
    cases.reserve(counts.size() + 1);
    cases.emplace_back("1thread-10vm");
    for (unsigned n : counts)
        cases.emplace_back(std::to_string(n) + "vm");
    std::vector<Point> pts(cases.size());
    core::SweepRunner(fr.sweepJobs())
        .run(cases.size(), [&](std::size_t i) {
            pts[i] = i == 0
                         ? runPvScale(fr, cases[0], 10, type, /*threads=*/1)
                         : runPvScale(fr, cases[i], counts[i - 1], type,
                                      /*threads=*/4);
        });
    for (core::FigCase &c : cases)
        fr.mergeCase(c);

    std::printf("single-threaded netback, 10 VMs: %.2f Gb/s, dom0 "
                "%.0f%%  (paper Section 6.5: ~3.6 Gb/s, one core "
                "saturated)\n\n",
                pts[0].gbps, pts[0].dom0);
    // Paper §6.5: the single-threaded netback tops out ~3.6 Gb/s.
    fr.expect("1thread_10vm.goodput_gbps", pts[0].gbps, 3.6, 15);

    core::Table t({"VMs", "throughput(Gb/s)", "total CPU", "dom0", "Xen",
                   "guest"});
    std::vector<double> vm_axis, dom0_pct, bw_gbps;
    double dom0_peak = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        unsigned n = counts[i];
        const Point &pt = pts[i + 1];
        vm_axis.push_back(double(n));
        dom0_pct.push_back(pt.dom0);
        bw_gbps.push_back(pt.gbps);
        dom0_peak = std::max(dom0_peak, pt.dom0);
        t.addRow({core::Table::num(n, 0), core::Table::num(pt.gbps, 2),
                  core::cpuPct(pt.total), core::cpuPct(pt.dom0),
                  core::cpuPct(pt.xen), core::cpuPct(pt.guests)});
    }
    fr.report().addSeries("dom0_pct_vs_vms", vm_axis, dom0_pct);
    fr.report().addSeries("goodput_gbps_vs_vms", vm_axis, bw_gbps);
    fr.expect("dom0_pct_peak", dom0_peak, dom0_peak_expected, 30);
    t.print();
    std::printf("\npaper: %s\n", expect);
    return fr.finish();
}

#ifndef FIG18_PVM
int
main(int argc, char **argv)
{
    return runPvScaleBench(
        argc, argv, "fig17", vmm::DomainType::Hvm,
        "Fig. 17: PV NIC scalability, HVM guests, 4-thread netback",
        "throughput decays with VM#; dom0 ~431% (event channel converted "
        "through virtual LAPIC)",
        431);
}
#endif
