/**
 * @file
 * Fig. 17 — PV NIC (split driver) scalability with HVM guests, using
 * the multi-threaded netback enhancement of §6.5. Includes the
 * single-threaded row: the original driver saturates one core at
 * ~3.6 Gb/s.
 *
 * Paper result: dom0 CPU climbs toward ~431% and throughput decays as
 * VMs are added; HVM dom0 cost exceeds PVM's because the event
 * channel is converted through the virtual LAPIC.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Point
{
    double gbps;
    double total;
    double dom0;
    double guests;
    double xen;
};

Point
runPvScale(unsigned vms, vmm::DomainType type, unsigned threads)
{
    core::Testbed::Params p;
    p.num_ports = 10;
    p.opts = core::OptimizationSet::maskEoi();
    p.netback_threads = threads;
    core::Testbed tb(p);

    for (unsigned i = 0; i < vms; ++i)
        tb.addGuest(type, core::Testbed::NetMode::Pv);
    double per_guest = p.line_bps / std::max(1u, vms / 10);
    for (unsigned i = 0; i < vms; ++i)
        tb.startUdpToGuest(tb.guest(i), per_guest);

    auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
    return Point{m.total_goodput_bps / 1e9, m.total_pct, m.dom0_pct,
                 m.guests_pct, m.xen_pct};
}

} // namespace

int
runPvScaleBench(vmm::DomainType type, const char *title,
                const char *expect)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner(title);

    {
        Point pt = runPvScale(10, type, /*threads=*/1);
        std::printf("single-threaded netback, 10 VMs: %.2f Gb/s, dom0 "
                    "%.0f%%  (paper Section 6.5: ~3.6 Gb/s, one core "
                    "saturated)\n\n",
                    pt.gbps, pt.dom0);
    }

    core::Table t({"VMs", "throughput(Gb/s)", "total CPU", "dom0", "Xen",
                   "guest"});
    for (unsigned n : {10u, 20u, 30u, 40u, 50u, 60u}) {
        Point pt = runPvScale(n, type, /*threads=*/4);
        t.addRow({core::Table::num(n, 0), core::Table::num(pt.gbps, 2),
                  core::cpuPct(pt.total), core::cpuPct(pt.dom0),
                  core::cpuPct(pt.xen), core::cpuPct(pt.guests)});
    }
    t.print();
    std::printf("\npaper: %s\n", expect);
    return 0;
}

#ifndef FIG18_PVM
int
main()
{
    return runPvScaleBench(
        vmm::DomainType::Hvm,
        "Fig. 17: PV NIC scalability, HVM guests, 4-thread netback",
        "throughput decays with VM#; dom0 ~431% (event channel converted "
        "through virtual LAPIC)");
}
#endif
