/**
 * @file
 * Fig. 17 — PV NIC (split driver) scalability with HVM guests, using
 * the multi-threaded netback enhancement of §6.5. Includes the
 * single-threaded row: the original driver saturates one core at
 * ~3.6 Gb/s.
 *
 * Paper result: dom0 CPU climbs toward ~431% and throughput decays as
 * VMs are added; HVM dom0 cost exceeds PVM's because the event
 * channel is converted through the virtual LAPIC.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Point
{
    double gbps;
    double total;
    double dom0;
    double guests;
    double xen;
};

Point
runPvScale(core::FigReport &fr, unsigned vms, vmm::DomainType type,
           unsigned threads)
{
    core::Testbed::Params p;
    p.num_ports = 10;
    p.opts = core::OptimizationSet::maskEoi();
    p.netback_threads = threads;
    core::Testbed tb(p);

    for (unsigned i = 0; i < vms; ++i)
        tb.addGuest(type, core::Testbed::NetMode::Pv);
    double per_guest = p.line_bps / std::max(1u, vms / 10);
    for (unsigned i = 0; i < vms; ++i)
        tb.startUdpToGuest(tb.guest(i), per_guest);
    fr.instrument(tb);

    core::Testbed::Measurement m;
    fr.captureTrace(tb, [&]() {
        m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
    });
    return Point{m.total_goodput_bps / 1e9, m.total_pct, m.dom0_pct,
                 m.guests_pct, m.xen_pct};
}

} // namespace

int
runPvScaleBench(int argc, char **argv, const char *fig,
                vmm::DomainType type, const char *title,
                const char *expect, double dom0_peak_expected)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, fig, title);
    if (fr.helpShown())
        return 0;
    core::banner(title);
    fr.report().setConfig("ports", 10.0);
    fr.report().setConfig("netback_threads", 4.0);
    fr.report().setConfig("measure_s", 4.0);

    {
        Point pt = runPvScale(fr, 10, type, /*threads=*/1);
        std::printf("single-threaded netback, 10 VMs: %.2f Gb/s, dom0 "
                    "%.0f%%  (paper Section 6.5: ~3.6 Gb/s, one core "
                    "saturated)\n\n",
                    pt.gbps, pt.dom0);
        // Paper §6.5: the single-threaded netback tops out ~3.6 Gb/s.
        fr.expect("1thread_10vm.goodput_gbps", pt.gbps, 3.6, 15);
    }

    core::Table t({"VMs", "throughput(Gb/s)", "total CPU", "dom0", "Xen",
                   "guest"});
    std::vector<double> vm_axis, dom0_pct, bw_gbps;
    double dom0_peak = 0;
    for (unsigned n : {10u, 20u, 30u, 40u, 50u, 60u}) {
        Point pt = runPvScale(fr, n, type, /*threads=*/4);
        vm_axis.push_back(double(n));
        dom0_pct.push_back(pt.dom0);
        bw_gbps.push_back(pt.gbps);
        dom0_peak = std::max(dom0_peak, pt.dom0);
        t.addRow({core::Table::num(n, 0), core::Table::num(pt.gbps, 2),
                  core::cpuPct(pt.total), core::cpuPct(pt.dom0),
                  core::cpuPct(pt.xen), core::cpuPct(pt.guests)});
        if (n == 60)
            fr.snapshot("60-VM");
    }
    fr.report().addSeries("dom0_pct_vs_vms", vm_axis, dom0_pct);
    fr.report().addSeries("goodput_gbps_vs_vms", vm_axis, bw_gbps);
    fr.expect("dom0_pct_peak", dom0_peak, dom0_peak_expected, 30);
    t.print();
    std::printf("\npaper: %s\n", expect);
    return fr.finish();
}

#ifndef FIG18_PVM
int
main(int argc, char **argv)
{
    return runPvScaleBench(
        argc, argv, "fig17", vmm::DomainType::Hvm,
        "Fig. 17: PV NIC scalability, HVM guests, 4-thread netback",
        "throughput decays with VM#; dom0 ~431% (event channel converted "
        "through virtual LAPIC)",
        431);
}
#endif
