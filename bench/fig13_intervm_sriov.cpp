/**
 * @file
 * Fig. 13 — SR-IOV inter-VM communication on a single port: packets
 * switch inside the NIC and cross the PCIe link twice (memory -> NIC
 * FIFO -> memory), so throughput is bounded by the slow PCIe bus, not
 * the physical line (§6.3).
 *
 * Paper result: up to 2.8 Gb/s, rising with message size (1500 ->
 * 4000 bytes); better throughput-per-CPU than the PV counterpart.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig13",
                       "SR-IOV inter-VM UDP, message-size sweep "
                       "(Fig. 13)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 13: SR-IOV inter-VM UDP, single port, message "
                 "size sweep");
    fr.report().setConfig("measure_s", 4.0);

    core::Table t({"msg size(B)", "RX BW(Gb/s)", "total CPU",
                   "Gb/s per 100% CPU"});
    std::vector<double> size_axis, bw_gbps;
    for (std::uint32_t payload : {1500u, 2000u, 2500u, 3000u, 3500u,
                                  4000u}) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::all();
        core::Testbed tb(p);

        auto &tx = tb.addGuest(vmm::DomainType::Hvm,
                               core::Testbed::NetMode::Sriov);
        auto &rx = tb.addGuest(vmm::DomainType::Hvm,
                               core::Testbed::NetMode::Sriov);
        // Offer more than the PCIe path can carry; it saturates.
        tb.startUdpGuestToGuest(tx, rx, 6e9, payload);
        fr.instrument(tb);

        core::Testbed::Measurement m;
        fr.captureTrace(tb, [&]() {
            m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
        });
        double cpu = m.total_pct;
        size_axis.push_back(double(payload));
        bw_gbps.push_back(m.total_goodput_bps / 1e9);
        if (payload == 4000u) {
            fr.snapshot("4000B");
            // Paper: peaks at ~2.8 Gb/s (PCIe-bound).
            fr.expect("peak_gbps_4000B", m.total_goodput_bps / 1e9, 2.8,
                      15);
        }
        t.addRow({core::Table::num(payload, 0),
                  core::gbps(m.total_goodput_bps), core::cpuPct(cpu),
                  core::Table::num(m.total_goodput_bps / 1e9
                                       / (cpu / 100.0),
                                   2)});
    }
    fr.report().addSeries("rx_gbps_vs_msg_bytes", size_axis, bw_gbps);
    t.print();
    std::printf("\npaper: up to 2.8 Gb/s (PCIe-bound, two DMA "
                "crossings); throughput/CPU better than PV\n");
    return fr.finish();
}
