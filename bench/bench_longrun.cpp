/**
 * @file
 * bench_longrun — the fluid-mode showcase: 60+ simulated seconds of
 * multi-VM steady UDP traffic in single-digit host seconds.
 *
 * The scalability figures measure 4 s windows because per-packet
 * simulation makes longer horizons expensive: fig15's sweep executes
 * ~70 M events for 24 simulated seconds. Fluid mode changes that
 * economics — once every flow is steady the director warps whole
 * hyperperiods at a time, so simulated duration is nearly free until
 * the next transition. This bench runs a 20-VM HVM testbed (the
 * fig15 mid-point) for 60 simulated seconds and reports the achieved
 * warp ratio. Run it with --fluid (CI does) to see the point; with
 * the flag off it is simply a long, honest soak test.
 *
 * The report asserts conservation over the whole hour-scale horizon:
 * line-rate goodput throughout, and a warp fraction >= 90% when
 * fluid is enabled.
 */

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/fluid.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "longrun",
                       "60 simulated seconds, 20 HVM VMs, fluid warp");
    if (fr.helpShown())
        return 0;
    core::banner("longrun: 20 VMs / 10 ports, 60 simulated seconds");

    constexpr unsigned kVms = 20;
    constexpr double kSimSeconds = 60.0;
    fr.report().setConfig("vms", double(kVms));
    fr.report().setConfig("sim_seconds", kSimSeconds);

    core::Testbed::Params p;
    p.num_ports = 10;
    p.opts = core::OptimizationSet::maskEoi();
    p.itr = "adaptive";
    core::Testbed tb(p);
    for (unsigned i = 0; i < kVms; ++i)
        tb.addGuest(vmm::DomainType::Hvm, core::Testbed::NetMode::Sriov);
    double per_guest = p.line_bps / (kVms / 10);
    for (unsigned i = 0; i < kVms; ++i)
        tb.startUdpToGuest(tb.guest(i), per_guest);
    fr.instrument(tb);

    core::Testbed::Measurement m;
    fr.captureTrace(tb, [&]() {
        m = tb.measure(sim::Time::sec(2),
                       sim::Time::sec(kSimSeconds - 2));
    });
    fr.snapshot("60s-20vm");

    double warped_s = 0;
    std::uint64_t elided = 0, segments = 0;
    if (const core::FluidDirector *fd = tb.fluidDirector()) {
        warped_s = double(fd->stats().warped.picos()) * 1e-12;
        elided = fd->stats().events_elided;
        segments = fd->stats().segments;
    }
    double warp_pct = 100.0 * warped_s / kSimSeconds;
    fr.report().addMetric("warped_sim_s", warped_s);
    fr.report().addMetric("warp_pct", warp_pct);
    fr.report().addMetric("segments", double(segments));
    fr.report().addMetric("events_elided", double(elided));

    fr.expect("goodput_gbps", m.total_goodput_bps / 1e9, 9.57, 6);
    if (sim::fluidMode() == sim::FluidMode::On) {
        // The point of the bench: nearly the whole steady horizon is
        // warped, not simulated. 90% leaves room for the probe duty
        // cycle and the per-second retune boundaries.
        fr.expect("warp_pct", warp_pct, 95.0, 6);
    }

    std::printf("\n%.0f simulated seconds, %u VMs: goodput %.2f Gb/s, "
                "%.1f%% warped (%llu segments, %llu events elided)\n",
                kSimSeconds, kVms, m.total_goodput_bps / 1e9, warp_pct,
                static_cast<unsigned long long>(segments),
                static_cast<unsigned long long>(elided));
    return fr.finish();
}
