/**
 * @file
 * bench_longrun — the accelerator-composition showcase: 60+ simulated
 * seconds of multi-host steady UDP traffic in single-digit host
 * seconds.
 *
 * The scalability figures measure 4 s windows because per-packet
 * simulation makes longer horizons expensive: fig15's sweep executes
 * ~70 M events for 24 simulated seconds. Fluid mode changes that
 * economics — once every flow is steady the warp machinery elides
 * whole hyperperiods at a time, so simulated duration is nearly free
 * until the next transition. Sharding changes it along the other
 * axis: islands execute in parallel during the stretches that *are*
 * simulated. This bench is sized so neither accelerator alone is
 * comfortable: with --hosts=4 it builds a 4-host rack (20 HVM VMs per
 * host, every stream crossing the top-of-rack relay from a client
 * port of the *previous* host) and runs it for 60 simulated seconds.
 * Only --shards=N --fluid=on composes warping with parallel execution
 * (DESIGN.md §15); run it that way to see the point. With the flags
 * off it is simply a long, honest soak test.
 *
 * Usage beyond the standard BenchOptions flags:
 *   --hosts=<n>   rack size (default 1; n > 1 needs --shards>=1)
 *
 * The report asserts conservation over the whole hour-scale horizon:
 * line-rate goodput on every host throughout, and a warp fraction
 * >= 90% when fluid is enabled.
 */

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/fluid.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "longrun",
                       "60 simulated seconds, 20 HVM VMs per host, "
                       "fluid warp x shards");
    if (fr.helpShown())
        return 0;

    unsigned hosts = 1;
    for (const std::string &a : fr.options().extraArgs()) {
        if (a.rfind("--hosts=", 0) == 0)
            hosts = unsigned(std::stoul(a.substr(8)));
    }
    if (hosts == 0)
        hosts = 1;

    constexpr unsigned kVmsPerHost = 20;
    constexpr unsigned kPortsPerHost = 10;
    constexpr double kSimSeconds = 60.0;
    const unsigned vms = kVmsPerHost * hosts;
    core::banner("longrun: " + std::to_string(hosts) + " host(s), "
                 + std::to_string(vms) + " VMs / "
                 + std::to_string(kPortsPerHost * hosts)
                 + " ports, 60 simulated seconds");
    fr.report().setConfig("hosts", double(hosts));
    fr.report().setConfig("vms", double(vms));
    fr.report().setConfig("sim_seconds", kSimSeconds);

    core::Testbed::Params p;
    p.num_ports = kPortsPerHost;
    p.num_hosts = hosts;
    p.opts = core::OptimizationSet::maskEoi();
    p.itr = "adaptive";
    core::Testbed tb(p);
    const unsigned ports = kPortsPerHost * hosts;
    const double per_guest = p.line_bps / (kVmsPerHost / kPortsPerHost);
    for (unsigned i = 0; i < vms; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        if (hosts > 1) {
            // Cross-host: the stream for a guest on host h enters the
            // rack at the same local port of host h-1 and crosses the
            // ToR — no frame takes the intra-host shortcut.
            unsigned h = g.port / kPortsPerHost;
            unsigned lp = g.port % kPortsPerHost;
            unsigned src = ((h + hosts - 1) % hosts) * kPortsPerHost
                           + lp;
            tb.startUdpToGuestFrom(src, g, per_guest);
        } else {
            tb.startUdpToGuest(g, per_guest);
        }
    }
    fr.instrument(tb);

    core::Testbed::Measurement m;
    fr.captureTrace(tb, [&]() {
        m = tb.measure(sim::Time::sec(2),
                       sim::Time::sec(kSimSeconds - 2));
    });
    fr.snapshot("60s");

    double warped_s = 0;
    std::uint64_t elided = 0, segments = 0;
    if (const sim::FluidStats *fs = tb.fluidStats()) {
        warped_s = double(fs->warped.picos()) * 1e-12;
        elided = fs->events_elided;
        segments = fs->segments;
    }
    double warp_pct = 100.0 * warped_s / kSimSeconds;
    fr.report().addMetric("warped_sim_s", warped_s);
    fr.report().addMetric("warp_pct", warp_pct);
    fr.report().addMetric("segments", double(segments));
    fr.report().addMetric("events_elided", double(elided));

    // Line-rate goodput per port, scaled by the rack size.
    fr.expect("goodput_gbps", m.total_goodput_bps / 1e9,
              0.957 * ports, 6);
    if (sim::fluidMode() == sim::FluidMode::On) {
        // The point of the bench: nearly the whole steady horizon is
        // warped, not simulated. 90% leaves room for the probe duty
        // cycle and the per-second retune boundaries.
        fr.expect("warp_pct", warp_pct, 95.0, 6);
    }

    std::printf("\n%.0f simulated seconds, %u host(s), %u VMs: goodput "
                "%.2f Gb/s, %.1f%% warped (%llu segments, %llu events "
                "elided)\n",
                kSimSeconds, hosts, vms, m.total_goodput_bps / 1e9,
                warp_pct, static_cast<unsigned long long>(segments),
                static_cast<unsigned long long>(elided));
    return fr.finish();
}
