/**
 * @file
 * Fig. 14 — PV NIC inter-VM communication: packets are grant-copied
 * guest-to-guest by the netback CPU, which runs at memory speed and
 * beats the double-PCIe-crossing of SR-IOV — at a much higher CPU
 * cost (§6.3).
 *
 * Paper result: ~4.3 Gb/s at 1500 B, rising with message size, with
 * far more CPU than SR-IOV; SR-IOV wins on throughput per CPU.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner("Fig. 14: PV NIC inter-VM UDP, message size sweep");

    core::Table t({"msg size(B)", "RX BW(Gb/s)", "total CPU", "dom0 CPU",
                   "Gb/s per 100% CPU"});
    for (std::uint32_t payload : {1500u, 2000u, 2500u, 3000u, 3500u,
                                  4000u}) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::all();
        p.netback_threads = 2;
        core::Testbed tb(p);

        auto &tx = tb.addGuest(vmm::DomainType::Hvm,
                               core::Testbed::NetMode::Pv);
        auto &rx = tb.addGuest(vmm::DomainType::Hvm,
                               core::Testbed::NetMode::Pv);
        tb.startUdpGuestToGuest(tx, rx, 8e9, payload);

        auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
        double cpu = m.total_pct;
        t.addRow({core::Table::num(payload, 0),
                  core::gbps(m.total_goodput_bps), core::cpuPct(cpu),
                  core::cpuPct(m.dom0_pct),
                  core::Table::num(m.total_goodput_bps / 1e9
                                       / (cpu / 100.0),
                                   2)});
    }
    t.print();
    std::printf("\npaper: ~4.3 Gb/s with more CPU than SR-IOV; "
                "SR-IOV has better throughput per CPU\n");
    return 0;
}
