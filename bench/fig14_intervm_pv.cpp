/**
 * @file
 * Fig. 14 — PV NIC inter-VM communication: packets are grant-copied
 * guest-to-guest by the netback CPU, which runs at memory speed and
 * beats the double-PCIe-crossing of SR-IOV — at a much higher CPU
 * cost (§6.3).
 *
 * Paper result: ~4.3 Gb/s at 1500 B, rising with message size, with
 * far more CPU than SR-IOV; SR-IOV wins on throughput per CPU.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig14",
                       "PV NIC inter-VM UDP, message-size sweep "
                       "(Fig. 14)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 14: PV NIC inter-VM UDP, message size sweep");
    fr.report().setConfig("measure_s", 4.0);
    fr.report().setConfig("netback_threads", 2.0);

    core::Table t({"msg size(B)", "RX BW(Gb/s)", "total CPU", "dom0 CPU",
                   "Gb/s per 100% CPU"});
    std::vector<double> size_axis, bw_gbps;
    for (std::uint32_t payload : {1500u, 2000u, 2500u, 3000u, 3500u,
                                  4000u}) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::all();
        p.netback_threads = 2;
        core::Testbed tb(p);

        auto &tx = tb.addGuest(vmm::DomainType::Hvm,
                               core::Testbed::NetMode::Pv);
        auto &rx = tb.addGuest(vmm::DomainType::Hvm,
                               core::Testbed::NetMode::Pv);
        tb.startUdpGuestToGuest(tx, rx, 8e9, payload);
        fr.instrument(tb);

        core::Testbed::Measurement m;
        fr.captureTrace(tb, [&]() {
            m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
        });
        double cpu = m.total_pct;
        size_axis.push_back(double(payload));
        bw_gbps.push_back(m.total_goodput_bps / 1e9);
        if (payload == 1500u) {
            fr.snapshot("1500B");
            // Paper: ~4.3 Gb/s at 1500 B.
            fr.expect("gbps_1500B", m.total_goodput_bps / 1e9, 4.3, 15);
        }
        t.addRow({core::Table::num(payload, 0),
                  core::gbps(m.total_goodput_bps), core::cpuPct(cpu),
                  core::cpuPct(m.dom0_pct),
                  core::Table::num(m.total_goodput_bps / 1e9
                                       / (cpu / 100.0),
                                   2)});
    }
    fr.report().addSeries("rx_gbps_vs_msg_bytes", size_axis, bw_gbps);
    t.print();
    std::printf("\npaper: ~4.3 Gb/s with more CPU than SR-IOV; "
                "SR-IOV has better throughput per CPU\n");
    return fr.finish();
}
