/**
 * @file
 * Fig. 10 — inter-VM communication (dom0 sends UDP to a guest through
 * the SR-IOV port's internal switch) under different coalescing
 * policies, sweeping the offered load.
 *
 * Paper result: TX bandwidth rises with offered load; at fixed 2 kHz
 * and 1 kHz the RX side falls behind (receive-buffer overflow drops
 * packets once more than `bufs` arrive per interrupt interval), while
 * AIC raises its interrupt frequency with the traffic and avoids the
 * loss; 20 kHz avoids loss but burns CPU.
 */

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner("Fig. 10: dom0 -> guest inter-VM UDP vs coalescing "
                 "policy (single port)");

    core::Table t({"policy", "offered(Mb/s)", "TX BW(Mb/s)", "RX BW(Mb/s)",
                   "loss", "guest irq/s", "guest CPU"});
    for (const std::string policy : {"20kHz", "2kHz", "AIC", "1kHz"}) {
        for (double offered : {500e6, 1000e6, 1500e6, 2000e6, 2500e6}) {
            core::Testbed::Params p;
            p.num_ports = 1;
            p.opts = core::OptimizationSet::maskEoi();
            p.opts.aic = policy == "AIC";
            p.itr = policy;
            core::Testbed tb(p);

            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  core::Testbed::NetMode::Sriov);
            auto &snd = tb.startUdpFromDom0(g, offered);

            tb.run(sim::Time::sec(2));
            std::uint64_t irqs0 = g.vf->deviceStats().interrupts.value();
            std::uint64_t sent0 = snd.sentBytes();
            auto m = tb.measure(sim::Time(), sim::Time::sec(4));
            double tx_bps =
                double(snd.sentBytes() - sent0) * 8.0 / m.seconds;
            double rx_bps = m.total_goodput_bps;
            double irq_rate =
                (g.vf->deviceStats().interrupts.value() - irqs0)
                / m.seconds;
            double loss = tx_bps > 0 ? 100.0 * (tx_bps - rx_bps) / tx_bps
                                     : 0.0;

            t.addRow({policy, core::Table::num(offered / 1e6, 0),
                      core::Table::num(tx_bps / 1e6, 0),
                      core::Table::num(rx_bps / 1e6, 0),
                      core::Table::num(loss, 1) + "%",
                      core::Table::num(irq_rate, 0),
                      core::cpuPct(m.guests_pct)});
        }
    }
    t.print();
    std::printf("\npaper: fixed 2/1 kHz drop packets as load rises "
                "(RX < TX); AIC adapts its frequency and avoids loss\n");
    return 0;
}
