/**
 * @file
 * Fig. 10 — inter-VM communication (dom0 sends UDP to a guest through
 * the SR-IOV port's internal switch) under different coalescing
 * policies, sweeping the offered load.
 *
 * Paper result: TX bandwidth rises with offered load; at fixed 2 kHz
 * and 1 kHz the RX side falls behind (receive-buffer overflow drops
 * packets once more than `bufs` arrive per interrupt interval), while
 * AIC raises its interrupt frequency with the traffic and avoids the
 * loss; 20 kHz avoids loss but burns CPU.
 */

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig10",
                       "Inter-VM UDP vs coalescing policy under rising "
                       "load (Fig. 10)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 10: dom0 -> guest inter-VM UDP vs coalescing "
                 "policy (single port)");
    fr.report().setConfig("measure_s", 4.0);

    core::Table t({"policy", "offered(Mb/s)", "TX BW(Mb/s)", "RX BW(Mb/s)",
                   "loss", "guest irq/s", "guest CPU"});
    std::vector<double> load_axis;
    std::map<std::string, std::vector<double>> loss_by_policy;
    for (const std::string policy : {"20kHz", "2kHz", "AIC", "1kHz"}) {
        for (double offered : {500e6, 1000e6, 1500e6, 2000e6, 2500e6}) {
            core::Testbed::Params p;
            p.num_ports = 1;
            p.opts = core::OptimizationSet::maskEoi();
            p.opts.aic = policy == "AIC";
            p.itr = policy;
            core::Testbed tb(p);

            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  core::Testbed::NetMode::Sriov);
            auto &snd = tb.startUdpFromDom0(g, offered);
            fr.instrument(tb);

            core::Testbed::Measurement m;
            std::uint64_t irqs0 = 0, sent0 = 0;
            fr.captureTrace(tb, [&]() {
                tb.run(sim::Time::sec(2));
                irqs0 = g.vf->deviceStats().interrupts.value();
                sent0 = snd.sentBytes();
                m = tb.measure(sim::Time(), sim::Time::sec(4));
            });
            double tx_bps =
                double(snd.sentBytes() - sent0) * 8.0 / m.seconds;
            double rx_bps = m.total_goodput_bps;
            double irq_rate =
                (g.vf->deviceStats().interrupts.value() - irqs0)
                / m.seconds;
            double loss = tx_bps > 0 ? 100.0 * (tx_bps - rx_bps) / tx_bps
                                     : 0.0;

            t.addRow({policy, core::Table::num(offered / 1e6, 0),
                      core::Table::num(tx_bps / 1e6, 0),
                      core::Table::num(rx_bps / 1e6, 0),
                      core::Table::num(loss, 1) + "%",
                      core::Table::num(irq_rate, 0),
                      core::cpuPct(m.guests_pct)});
            if (policy == "20kHz")
                load_axis.push_back(offered / 1e6);
            loss_by_policy[policy].push_back(loss);
            if (offered == 2500e6) {
                fr.snapshot(policy + "-2500");
                fr.report().addMetric(policy + ".loss_pct_at_2500", loss);
                // Paper: AIC and 20 kHz keep up at the highest load
                // (RX tracks TX); the fixed low-rate policies drop.
                if (policy == "AIC" || policy == "20kHz")
                    fr.expect(policy + ".rx_mbps_at_2500", rx_bps / 1e6,
                              tx_bps / 1e6, 3);
            }
        }
    }
    for (auto &kv : loss_by_policy)
        fr.report().addSeries("loss_pct_" + kv.first + "_vs_mbps",
                              load_axis, kv.second);
    t.print();
    std::printf("\npaper: fixed 2/1 kHz drop packets as load rises "
                "(RX < TX); AIC adapts its frequency and avoids loss\n");
    return fr.finish();
}
