/**
 * @file
 * Fig. 7 — virtualization overhead per second by VM-exit event for a
 * single HVM guest (Linux 2.6.28) receiving at 1 GbE line rate, with
 * and without virtual EOI acceleration (§5.2).
 *
 * Paper result: APIC-access exits are ~139M of ~154M cycles/s (90%);
 * EOI writes are 47% of APIC-access exits; acceleration cuts the EOI
 * emulation from 8.4 K to 2.5 K cycles and total overhead to ~111M.
 */

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

void
runCase(core::FigReport &fr, bool eoi_accel)
{
    core::Testbed::Params p;
    p.num_ports = 1;
    p.itr = "adaptive";
    p.opts = eoi_accel ? core::OptimizationSet::maskEoi()
                       : core::OptimizationSet::maskOnly();
    core::Testbed tb(p);

    auto &g = tb.addGuest(vmm::DomainType::Hvm,
                          core::Testbed::NetMode::Sriov);
    tb.startUdpToGuest(g, p.line_bps);
    fr.instrument(tb);

    sim::Time window = sim::Time::sec(5);
    fr.captureTrace(tb, [&]() {
        tb.run(sim::Time::sec(2));
        g.dom->exits().reset();
        tb.run(window);
    });

    double secs = window.toSeconds();
    auto &ex = g.dom->exits();
    std::printf("\n-- EOI acceleration %s --\n", eoi_accel ? "ON" : "OFF");
    core::Table t({"VM-exit reason", "exits/s", "Mcycles/s", "cyc/exit"});
    for (unsigned i = 0; i < unsigned(vmm::ExitReason::Count); ++i) {
        auto r = vmm::ExitReason(i);
        if (ex.count(r) == 0)
            continue;
        t.addRow({vmm::exitReasonName(r),
                  core::Table::num(ex.count(r) / secs, 0),
                  core::Table::num(ex.cycles(r) / secs / 1e6, 1),
                  core::Table::num(ex.cycles(r) / ex.count(r), 0)});
    }
    t.addRow({"TOTAL", core::Table::num(ex.totalCount() / secs, 0),
              core::Table::num(ex.totalCycles() / secs / 1e6, 1), ""});
    t.print();

    double apic_pct = 100.0 * ex.cycles(vmm::ExitReason::ApicAccess)
        / ex.totalCycles();
    std::printf("APIC-access share of overhead: %.0f%%  "
                "(paper: 90%% before acceleration; EOI = 47%% of APIC "
                "exits)\n",
                apic_pct);

    std::string label = eoi_accel ? "eoi-on" : "eoi-off";
    fr.snapshot(label);
    const auto &cm = tb.server().costs();
    double per_eoi = eoi_accel ? cm.eoi_accelerated
                               : cm.apic_access_emulate;
    fr.report().addMetric(label + ".total_mcycles_per_s",
                          ex.totalCycles() / secs / 1e6);
    fr.report().addMetric(label + ".apic_pct", apic_pct);
    // Paper: 154M cycles/s unaccelerated, 111M accelerated; EOI
    // emulation 8.4K cycles -> 2.5K.
    fr.expect(label + ".total_mcycles_per_s", ex.totalCycles() / secs / 1e6,
              eoi_accel ? 111 : 154, 25);
    fr.expect(label + ".cyc_per_eoi", per_eoi, eoi_accel ? 2500 : 8400,
              1);
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig07",
                       "Virtualization overhead per second by VM-exit "
                       "event (Fig. 7)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 7: virtualization overhead per second by VM-exit "
                 "event (1 VM, 1 GbE, 2.6.28 HVM)");
    fr.report().setConfig("guest_kernel", "2.6.28");
    fr.report().setConfig("measure_s", 5.0);
    runCase(fr, false);
    runCase(fr, true);
    std::printf("\npaper: 154M cycles/s -> 111M with EOI acceleration "
                "(8.4K -> 2.5K cycles per EOI)\n");
    return fr.finish();
}
