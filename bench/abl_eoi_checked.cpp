/**
 * @file
 * Ablation — the §5.2 correctness/performance trade-off: the
 * accelerated EOI path can optionally fetch the guest instruction to
 * verify it is a simple write (complex instructions like `movs`/`stos`
 * would need extra state updates). The check costs an extra 1.8 K
 * cycles per exit; the paper argues it is safe to skip because no
 * commercial OS uses complex instructions for EOI and the risk is
 * contained within the guest.
 */

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "abl_eoi",
                       "Ablation: EOI acceleration vs the "
                       "instruction-safety check");
    if (fr.helpShown())
        return 0;
    core::banner("Ablation: EOI acceleration with vs without the "
                 "instruction-safety check (1 VM, 1 GbE)");
    fr.report().setConfig("measure_s", 5.0);

    struct Case
    {
        const char *label;
        bool accel;
        bool check;
        bool hw_opcode = false;
    };
    core::Table t({"EOI path", "Xen CPU", "Mcycles/s virt overhead",
                   "cyc/EOI"});
    for (Case c : {Case{"fetch-decode-emulate", false, false},
                   Case{"accelerated + check", true, true},
                   Case{"accelerated (paper's choice)", true, false},
                   // §5.2's proposed hardware enhancement: the VMCS
                   // exposes the op-code, making the check free.
                   Case{"accelerated + hw op-code", true, true, true}}) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.itr = "adaptive";
        p.opts = core::OptimizationSet::maskOnly();
        p.opts.eoi_accel = c.accel;
        p.opts.eoi_accel_check = c.check;
        core::Testbed tb(p);
        tb.server().opts().eoi_hw_opcode = c.hw_opcode;

        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        tb.startUdpToGuest(g, p.line_bps);
        fr.instrument(tb);
        core::Testbed::Measurement m;
        fr.captureTrace(tb, [&]() {
            tb.run(sim::Time::sec(2));
            g.dom->exits().reset();
            m = tb.measure(sim::Time(), sim::Time::sec(5));
        });

        const auto &cm = tb.server().costs();
        double per_eoi = !c.accel
                             ? cm.apic_access_emulate
                             : cm.eoi_accelerated
                                   + (c.check && !c.hw_opcode
                                          ? cm.eoi_instr_check
                                          : 0);
        fr.snapshot(c.label);
        fr.report().addMetric(std::string(c.label) + ".cyc_per_eoi",
                              per_eoi);
        // Paper: 8.4K unaccelerated; 2.5K accelerated; +1.8K check.
        if (!c.accel)
            fr.expect("unaccel_cyc_per_eoi", per_eoi, 8400, 1);
        else if (c.check && !c.hw_opcode)
            fr.expect("checked_cyc_per_eoi", per_eoi, 4300, 1);
        else
            fr.expect(std::string(c.label) + ".cyc_per_eoi", per_eoi,
                      2500, 1);
        t.addRow({c.label, core::cpuPct(m.xen_pct),
                  core::Table::num(
                      g.dom->exits().totalCycles() / m.seconds / 1e6, 1),
                  core::Table::num(per_eoi, 0)});
    }
    t.print();
    std::printf("\npaper: 8.4K unaccelerated, 2.5K accelerated, +1.8K "
                "for the safety check\n");
    return fr.finish();
}
