/**
 * @file
 * Fig. 15 — SR-IOV scalability with HVM guests: 10..60 VMs over ten
 * 1 GbE ports (VF_{7j+n} allocation of Fig. 11), UDP_STREAM RX.
 *
 * Paper result: aggregate throughput stays at the 9.57 Gb/s line rate
 * from 10 to 60 VMs; each additional guest costs ~2.8% CPU.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Point
{
    unsigned vms;
    double gbps;
    double total;
    double guests;
    double xen;
    double dom0;
};

Point
runScale(unsigned vms, vmm::DomainType type)
{
    core::Testbed::Params p;
    p.num_ports = 10;
    p.opts = core::OptimizationSet::maskEoi();
    // Scalability runs use the driver's adaptive moderation (see
    // DESIGN.md: at these per-VM rates AIC's formula would sit at its
    // lif floor, decoupling the slope from the coalescing policy).
    p.itr = "adaptive";
    core::Testbed tb(p);

    for (unsigned i = 0; i < vms; ++i)
        tb.addGuest(type, core::Testbed::NetMode::Sriov);
    // n/10 guests share each port; netperf pairs split the line.
    double per_guest = p.line_bps / (vms / 10);
    for (unsigned i = 0; i < vms; ++i)
        tb.startUdpToGuest(tb.guest(i), per_guest);

    auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
    return Point{vms, m.total_goodput_bps / 1e9, m.total_pct,
                 m.guests_pct, m.xen_pct, m.dom0_pct};
}

} // namespace

int
runScaleBench(vmm::DomainType type, const char *title, const char *expect)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner(title);

    core::Table t({"VMs", "throughput(Gb/s)", "total CPU", "guest", "Xen",
                   "dom0"});
    double first = 0, last = 0;
    unsigned n_first = 0, n_last = 0;
    for (unsigned n : {10u, 20u, 30u, 40u, 50u, 60u}) {
        Point pt = runScale(n, type);
        if (n_first == 0) {
            first = pt.total;
            n_first = n;
        }
        last = pt.total;
        n_last = n;
        t.addRow({core::Table::num(n, 0), core::Table::num(pt.gbps, 2),
                  core::cpuPct(pt.total), core::cpuPct(pt.guests),
                  core::cpuPct(pt.xen), core::cpuPct(pt.dom0)});
    }
    t.print();
    std::printf("\nmeasured slope: %.2f%% CPU per additional VM   "
                "(paper: %s)\n",
                (last - first) / double(n_last - n_first), expect);
    return 0;
}

#ifndef FIG16_PVM
int
main()
{
    return runScaleBench(vmm::DomainType::Hvm,
                         "Fig. 15: SR-IOV scalability, HVM, 10-60 VMs, "
                         "aggregate 10 GbE",
                         "2.8% per VM, line rate throughout");
}
#endif
