/**
 * @file
 * Fig. 15 — SR-IOV scalability with HVM guests: 10..60 VMs over ten
 * 1 GbE ports (VF_{7j+n} allocation of Fig. 11), UDP_STREAM RX.
 *
 * Paper result: aggregate throughput stays at the 9.57 Gb/s line rate
 * from 10 to 60 VMs; each additional guest costs ~2.8% CPU.
 */

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Point
{
    unsigned vms;
    double gbps;
    double total;
    double guests;
    double xen;
    double dom0;
};

Point
runScale(core::FigReport &fr, core::FigCase &c, unsigned vms,
         vmm::DomainType type)
{
    core::Testbed::Params p;
    p.num_ports = 10;
    p.opts = core::OptimizationSet::maskEoi();
    // Scalability runs use the driver's adaptive moderation (see
    // DESIGN.md: at these per-VM rates AIC's formula would sit at its
    // lif floor, decoupling the slope from the coalescing policy).
    p.itr = "adaptive";
    core::Testbed tb(p);

    for (unsigned i = 0; i < vms; ++i)
        tb.addGuest(type, core::Testbed::NetMode::Sriov);
    // n/10 guests share each port; netperf pairs split the line.
    double per_guest = p.line_bps / (vms / 10);
    for (unsigned i = 0; i < vms; ++i)
        tb.startUdpToGuest(tb.guest(i), per_guest);
    c.instrument(tb);

    core::Testbed::Measurement m;
    fr.caseDrive(c, tb, [&]() {
        m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
    });
    std::uint64_t pkts = 0;
    for (std::size_t i = 0; i < tb.guestCount(); ++i)
        if (tb.guest(i).rx)
            pkts += tb.guest(i).rx->rxPackets();
    c.addPackets(pkts);
    if (vms == 60)
        c.snapshot("60-VM");
    return Point{vms, m.total_goodput_bps / 1e9, m.total_pct,
                 m.guests_pct, m.xen_pct, m.dom0_pct};
}

} // namespace

int
runScaleBench(int argc, char **argv, const char *fig,
              vmm::DomainType type, const char *title, const char *expect,
              double slope_expected)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, fig, title);
    if (fr.helpShown())
        return 0;
    core::banner(title);
    fr.report().setConfig("ports", 10.0);
    fr.report().setConfig("measure_s", 4.0);

    // Each VM count is an independent simulation: run them through
    // SweepRunner (--jobs=N), then fold the per-case recorders back
    // into the report in declaration order so the JSON is
    // byte-identical to a sequential run.
    const std::vector<unsigned> counts{10u, 20u, 30u, 40u, 50u, 60u};
    std::vector<core::FigCase> cases;
    cases.reserve(counts.size());
    for (unsigned n : counts)
        cases.emplace_back(std::to_string(n) + "vm");
    std::vector<Point> pts(counts.size());
    core::SweepRunner(fr.sweepJobs())
        .run(counts.size(), [&](std::size_t i) {
            pts[i] = runScale(fr, cases[i], counts[i], type);
        });
    for (core::FigCase &c : cases)
        fr.mergeCase(c);

    core::Table t({"VMs", "throughput(Gb/s)", "total CPU", "guest", "Xen",
                   "dom0"});
    std::vector<double> vm_axis, cpu_total, bw_gbps;
    double first = 0, last = 0;
    unsigned n_first = 0, n_last = 0;
    for (const Point &pt : pts) {
        unsigned n = pt.vms;
        if (n_first == 0) {
            first = pt.total;
            n_first = n;
        }
        last = pt.total;
        n_last = n;
        vm_axis.push_back(double(n));
        cpu_total.push_back(pt.total);
        bw_gbps.push_back(pt.gbps);
        t.addRow({core::Table::num(n, 0), core::Table::num(pt.gbps, 2),
                  core::cpuPct(pt.total), core::cpuPct(pt.guests),
                  core::cpuPct(pt.xen), core::cpuPct(pt.dom0)});
        // Paper: line rate throughout the sweep.
        fr.expect(std::to_string(n) + "vm.goodput_gbps", pt.gbps, 9.57,
                  6);
    }
    double slope = (last - first) / double(n_last - n_first);
    fr.report().addSeries("total_cpu_pct_vs_vms", vm_axis, cpu_total);
    fr.report().addSeries("goodput_gbps_vs_vms", vm_axis, bw_gbps);
    // Pinned to the *modeled* slope, not the paper's (printed below for
    // comparison): the model charges only interrupt-path work per VM,
    // so its absolute slope is ~3.5x smaller while every qualitative
    // relation holds — see EXPERIMENTS.md, Figs. 15/16 notes.
    fr.expect("cpu_pct_per_vm", slope, slope_expected, 30);
    t.print();
    std::printf("\nmeasured slope: %.2f%% CPU per additional VM   "
                "(paper: %s)\n",
                slope, expect);
    return fr.finish();
}

#ifndef FIG16_PVM
int
main(int argc, char **argv)
{
    return runScaleBench(argc, argv, "fig15", vmm::DomainType::Hvm,
                         "Fig. 15: SR-IOV scalability, HVM, 10-60 VMs, "
                         "aggregate 10 GbE",
                         "2.8% per VM, line rate throughout", 0.78);
}
#endif
