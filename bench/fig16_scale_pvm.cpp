/**
 * @file
 * Fig. 16 — SR-IOV scalability with PVM guests (event-channel
 * interrupt delivery instead of virtual LAPIC).
 *
 * Paper result: line rate 10..60 VMs; ~1.76% CPU per additional VM —
 * cheaper than HVM's 2.8% because the paravirtual interrupt
 * controller skips LAPIC/EOI emulation. At 10 VMs PVM costs slightly
 * *more* than HVM: x86-64 XenLinux bounces every syscall through the
 * hypervisor to switch page tables.
 */

#define FIG16_PVM 1
#include "fig15_scale_hvm.cpp"

int
main(int argc, char **argv)
{
    return runScaleBench(argc, argv, "fig16", vmm::DomainType::Pvm,
                         "Fig. 16: SR-IOV scalability, PVM, 10-60 VMs, "
                         "aggregate 10 GbE",
                         "1.76% per VM; PVM slightly above HVM at 10 VMs",
                         0.43);
}
