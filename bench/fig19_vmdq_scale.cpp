/**
 * @file
 * Fig. 19 — VMDq scalability on an 82598-like 10 GbE adapter with 8
 * queue pairs, PVM guests.
 *
 * Paper result: throughput peaks around 10 VMs and decays as VM#
 * grows — only 7 guests get a hardware queue; the rest share the
 * default queue through the copying PV bridge. (The paper also saw
 * throughput *rise* again from 40 to 60 VMs, which the authors
 * attribute to "a program defect in the [inactive VMDq] tree"; we
 * reproduce the peak-and-decay, not the defect.)
 */

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Point
{
    unsigned vms;
    double gbps;
    double total;
    double dom0;
    unsigned queues_in_use;
};

Point
runVmdq(core::FigReport &fr, core::FigCase &c, unsigned vms)
{
    core::Testbed::Params p;
    p.use_vmdq_nic = true;
    p.opts = core::OptimizationSet::maskEoi();
    p.netback_threads = 4;
    core::Testbed tb(p);

    for (unsigned i = 0; i < vms; ++i)
        tb.addGuest(vmm::DomainType::Pvm, core::Testbed::NetMode::Vmdq);
    double per_guest = 10e9 / vms;
    for (unsigned i = 0; i < vms; ++i)
        tb.startUdpToGuest(tb.guest(i), per_guest);

    c.instrument(tb);
    core::Testbed::Measurement m;
    fr.caseDrive(c, tb, [&]() {
        m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
    });
    if (vms == 10)
        c.snapshot("10-VM");
    return Point{vms, m.total_goodput_bps / 1e9, m.total_pct, m.dom0_pct,
                 unsigned(tb.vmdqBackend().queuesInUse())};
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig19",
                       "VMDq scalability, PVM guests (Fig. 19)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 19: VMDq scalability, PVM guests, one 10 GbE "
                 "82598 (8 queue pairs)");
    fr.report().setConfig("queue_pairs", 8.0);
    fr.report().setConfig("measure_s", 4.0);

    // Every VM count is an independent simulation: fan the sweep out
    // on SweepRunner threads and merge in declaration order so the
    // report does not depend on --jobs.
    const std::vector<unsigned> counts{2u, 4u, 7u, 10u, 20u,
                                       30u, 40u, 50u, 60u};
    std::vector<core::FigCase> cases;
    cases.reserve(counts.size());
    for (unsigned n : counts)
        cases.emplace_back(std::to_string(n) + "vm");
    std::vector<Point> pts(counts.size());
    core::SweepRunner(fr.sweepJobs())
        .run(counts.size(), [&](std::size_t i) {
            pts[i] = runVmdq(fr, cases[i], counts[i]);
        });
    for (core::FigCase &c : cases)
        fr.mergeCase(c);

    core::Table t({"VMs", "throughput(Gb/s)", "total CPU", "dom0",
                   "VMDq-served VMs"});
    std::vector<double> vm_axis, bw_gbps;
    double peak_gbps = 0, gbps_at_10 = 0, gbps_at_60 = 0;
    for (const Point &pt : pts) {
        vm_axis.push_back(double(pt.vms));
        bw_gbps.push_back(pt.gbps);
        peak_gbps = std::max(peak_gbps, pt.gbps);
        if (pt.vms == 10)
            gbps_at_10 = pt.gbps;
        if (pt.vms == 60)
            gbps_at_60 = pt.gbps;
        t.addRow({core::Table::num(pt.vms, 0),
                  core::gbps(pt.gbps * 1e9), core::cpuPct(pt.total),
                  core::cpuPct(pt.dom0),
                  core::Table::num(pt.queues_in_use, 0)});
    }
    fr.report().addSeries("goodput_gbps_vs_vms", vm_axis, bw_gbps);
    fr.report().addMetric("gbps_at_60vm", gbps_at_60);
    // Paper: throughput peaks around 10 VMs and decays beyond.
    fr.expect("peak_gbps_at_10vm", gbps_at_10, peak_gbps, 5);
    t.print();
    std::printf("\npaper: peak near 10 VMs, progressive decay beyond "
                "(only 7 guests get VMDq queues)\n");
    return fr.finish();
}
