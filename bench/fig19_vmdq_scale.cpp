/**
 * @file
 * Fig. 19 — VMDq scalability on an 82598-like 10 GbE adapter with 8
 * queue pairs, PVM guests.
 *
 * Paper result: throughput peaks around 10 VMs and decays as VM#
 * grows — only 7 guests get a hardware queue; the rest share the
 * default queue through the copying PV bridge. (The paper also saw
 * throughput *rise* again from 40 to 60 VMs, which the authors
 * attribute to "a program defect in the [inactive VMDq] tree"; we
 * reproduce the peak-and-decay, not the defect.)
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner("Fig. 19: VMDq scalability, PVM guests, one 10 GbE "
                 "82598 (8 queue pairs)");

    core::Table t({"VMs", "throughput(Gb/s)", "total CPU", "dom0",
                   "VMDq-served VMs"});
    for (unsigned n : {2u, 4u, 7u, 10u, 20u, 30u, 40u, 50u, 60u}) {
        core::Testbed::Params p;
        p.use_vmdq_nic = true;
        p.opts = core::OptimizationSet::maskEoi();
        p.netback_threads = 4;
        core::Testbed tb(p);

        for (unsigned i = 0; i < n; ++i)
            tb.addGuest(vmm::DomainType::Pvm,
                        core::Testbed::NetMode::Vmdq);
        double per_guest = 10e9 / n;
        for (unsigned i = 0; i < n; ++i)
            tb.startUdpToGuest(tb.guest(i), per_guest);

        auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
        t.addRow({core::Table::num(n, 0),
                  core::gbps(m.total_goodput_bps),
                  core::cpuPct(m.total_pct), core::cpuPct(m.dom0_pct),
                  core::Table::num(tb.vmdqBackend().queuesInUse(), 0)});
    }
    t.print();
    std::printf("\npaper: peak near 10 VMs, progressive decay beyond "
                "(only 7 guests get VMDq queues)\n");
    return 0;
}
