/**
 * @file
 * Fig. 19 — VMDq scalability on an 82598-like 10 GbE adapter with 8
 * queue pairs, PVM guests.
 *
 * Paper result: throughput peaks around 10 VMs and decays as VM#
 * grows — only 7 guests get a hardware queue; the rest share the
 * default queue through the copying PV bridge. (The paper also saw
 * throughput *rise* again from 40 to 60 VMs, which the authors
 * attribute to "a program defect in the [inactive VMDq] tree"; we
 * reproduce the peak-and-decay, not the defect.)
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig19",
                       "VMDq scalability, PVM guests (Fig. 19)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 19: VMDq scalability, PVM guests, one 10 GbE "
                 "82598 (8 queue pairs)");
    fr.report().setConfig("queue_pairs", 8.0);
    fr.report().setConfig("measure_s", 4.0);

    core::Table t({"VMs", "throughput(Gb/s)", "total CPU", "dom0",
                   "VMDq-served VMs"});
    std::vector<double> vm_axis, bw_gbps;
    double peak_gbps = 0, gbps_at_10 = 0, gbps_at_60 = 0;
    for (unsigned n : {2u, 4u, 7u, 10u, 20u, 30u, 40u, 50u, 60u}) {
        core::Testbed::Params p;
        p.use_vmdq_nic = true;
        p.opts = core::OptimizationSet::maskEoi();
        p.netback_threads = 4;
        core::Testbed tb(p);

        for (unsigned i = 0; i < n; ++i)
            tb.addGuest(vmm::DomainType::Pvm,
                        core::Testbed::NetMode::Vmdq);
        double per_guest = 10e9 / n;
        for (unsigned i = 0; i < n; ++i)
            tb.startUdpToGuest(tb.guest(i), per_guest);

        fr.instrument(tb);
        core::Testbed::Measurement m;
        fr.captureTrace(tb, [&]() {
            m = tb.measure(sim::Time::sec(2), sim::Time::sec(4));
        });
        vm_axis.push_back(double(n));
        bw_gbps.push_back(m.total_goodput_bps / 1e9);
        peak_gbps = std::max(peak_gbps, m.total_goodput_bps / 1e9);
        if (n == 10) {
            gbps_at_10 = m.total_goodput_bps / 1e9;
            fr.snapshot("10-VM");
        }
        if (n == 60)
            gbps_at_60 = m.total_goodput_bps / 1e9;
        t.addRow({core::Table::num(n, 0),
                  core::gbps(m.total_goodput_bps),
                  core::cpuPct(m.total_pct), core::cpuPct(m.dom0_pct),
                  core::Table::num(tb.vmdqBackend().queuesInUse(), 0)});
    }
    fr.report().addSeries("goodput_gbps_vs_vms", vm_axis, bw_gbps);
    fr.report().addMetric("gbps_at_60vm", gbps_at_60);
    // Paper: throughput peaks around 10 VMs and decays beyond.
    fr.expect("peak_gbps_at_10vm", gbps_at_10, peak_gbps, 5);
    t.print();
    std::printf("\npaper: peak near 10 VMs, progressive decay beyond "
                "(only 7 guests get VMDq queues)\n");
    return fr.finish();
}
