/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * how fast the event queue, LAPIC, IOMMU and L2 classifier run. These
 * bound how much simulated traffic the figure benches can push per
 * wall-clock second.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "intr/lapic.hpp"
#include "mem/iommu.hpp"
#include "nic/l2_switch.hpp"
#include "nic/sriov_nic.hpp"
#include "obs/histogram.hpp"
#include "obs/metric.hpp"
#include "obs/profiler.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

using namespace sriov;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(sim::Time::ns(i), []() {});
        benchmark::DoNotOptimize(eq.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_LapicAcceptEoi(benchmark::State &state)
{
    intr::Lapic lapic;
    lapic.setDeliver([](intr::Vector) {});
    for (auto _ : state) {
        lapic.accept(0x41);
        lapic.eoi();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LapicAcceptEoi);

static void
BM_IommuTranslate(benchmark::State &state)
{
    mem::GuestPhysMap map("bench");
    map.mapRange(0, 1 << 20, 64 * mem::kPageSize);
    mem::Iommu iommu;
    iommu.attach(0x100, map);
    sim::Random rng;
    for (auto _ : state) {
        mem::Addr gpa = (rng.next() % 64) * mem::kPageSize;
        benchmark::DoNotOptimize(iommu.translate(0x100, gpa, true));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IommuTranslate);

// The hot-path cost the observability layer adds when a tap IS
// installed: one log-bucket binary search per sample.
static void
BM_HistogramRecord(benchmark::State &state)
{
    obs::Histogram h;
    sim::Random rng;
    for (auto _ : state)
        h.record(double(rng.next() % 100000) * 0.01);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void
BM_RegistrySnapshot(benchmark::State &state)
{
    obs::MetricRegistry reg;
    std::vector<sim::Counter> counters(64);
    for (std::size_t i = 0; i < counters.size(); ++i) {
        counters[i].inc(i);
        reg.add("server.nic0.vf" + std::to_string(i) + ".rx_frames",
                &counters[i]);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(reg.snapshot());
    state.SetItemsProcessed(state.iterations() * counters.size());
}
BENCHMARK(BM_RegistrySnapshot);

// Per-event overhead of an attached ExecHook vs the bare queue: the
// disabled path is one null check, the enabled path two virtual calls.
static void
BM_EventQueueWithProfiler(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        obs::SimProfiler prof;
        if (state.range(0))
            prof.attach(eq);
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(sim::Time::ns(i), []() {});
        benchmark::DoNotOptimize(eq.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueWithProfiler)->Arg(0)->Arg(1);

static void
BM_L2Classify(benchmark::State &state)
{
    nic::L2Switch l2;
    for (unsigned i = 0; i < 64; ++i)
        l2.setFilter(nic::MacAddr::make(1, std::uint16_t(i)), 0,
                     nic::Pool(i % 8));
    nic::Packet pkt;
    sim::Random rng;
    for (auto _ : state) {
        pkt.dst = nic::MacAddr::make(1, std::uint16_t(rng.next() % 64));
        benchmark::DoNotOptimize(l2.classify(pkt));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Classify);
