/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * how fast the event queue, LAPIC, IOMMU and L2 classifier run. These
 * bound how much simulated traffic the figure benches can push per
 * wall-clock second.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "intr/interrupt_router.hpp"
#include "intr/lapic.hpp"
#include "mem/iommu.hpp"
#include "nic/l2_switch.hpp"
#include "nic/sriov_nic.hpp"
#include "nic/wire.hpp"
#include "obs/histogram.hpp"
#include "obs/metric.hpp"
#include "obs/pathtrace.hpp"
#include "obs/profiler.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

using namespace sriov;

// ---------------------------------------------------------------------
// Program-wide allocation counter. Replacing the global operator new
// in this TU interposes every heap allocation in the binary, letting
// the event-queue benches prove the inline-capture fast path performs
// zero per-event allocations (the InplaceFn contract).
// ---------------------------------------------------------------------

static std::atomic<std::uint64_t> g_heap_allocs{0};

static std::uint64_t
heapAllocs()
{
    return g_heap_allocs.load(std::memory_order_relaxed);
}

void *
operator new(std::size_t n)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::malloc(n ? n : 1);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t a)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = std::aligned_alloc(std::size_t(a), (n + std::size_t(a) - 1)
                                                     & ~(std::size_t(a) - 1));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t a)
{
    return ::operator new(n, a);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(sim::Time::ns(i), []() {});
        benchmark::DoNotOptimize(eq.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

// Steady-state schedule→run→complete: the queue is reused across
// iterations, so slot chunks, heap storage and tag-digest caches are
// warm — the cost a long-running simulation actually pays per event,
// without the construct/teardown of the bench above.
static void
BM_EventQueueSteadyState(benchmark::State &state)
{
    sim::EventQueue eq;
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(sim::Time::ns(i), []() {});
        benchmark::DoNotOptimize(eq.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueSteadyState);

// Schedule+cancel churn: timers armed and disarmed without firing
// (the TCP-retransmit pattern). Each iteration arms a window, cancels
// it, then drains so cancelled heap keys are reclaimed.
static void
BM_EventQueueScheduleCancel(benchmark::State &state)
{
    sim::EventQueue eq;
    sim::EventHandle handles[64];
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i)
            handles[i] = eq.scheduleIn(sim::Time::us(1 + i), []() {});
        for (int i = 0; i < 64; ++i)
            eq.cancel(handles[i]);
        eq.runAll();
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueScheduleCancel);

// A 64-byte capture — the InplaceFn inline ceiling for a realistic
// payload (e.g. a packet descriptor). The allocs_per_event counter
// proves the inline path never touches the heap once the queue's
// storage is warm.
static void
BM_EventQueueInlineCapture(benchmark::State &state)
{
    sim::EventQueue eq;
    struct Payload
    {
        char bytes[56];
        std::uint64_t *sink;
    };
    static_assert(sizeof(Payload) == 64, "bench models a 64-byte capture");
    std::uint64_t sink = 0;
    Payload p{};
    p.sink = &sink;
    // Warm the slot chunks and event heap with one full batch so the
    // measured region only sees steady-state behaviour.
    for (int i = 0; i < 1000; ++i)
        eq.scheduleIn(sim::Time::ns(i), [p]() { *p.sink += p.bytes[0]; });
    eq.runAll();
    std::uint64_t allocs_before = heapAllocs();
    for (auto _ : state) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(sim::Time::ns(i),
                          [p]() { *p.sink += p.bytes[0]; });
        benchmark::DoNotOptimize(eq.runAll());
    }
    double events = double(state.iterations()) * 1000.0;
    state.counters["allocs_per_event"] =
        double(heapAllocs() - allocs_before) / (events > 0 ? events : 1);
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueInlineCapture);

static void
BM_LapicAcceptEoi(benchmark::State &state)
{
    intr::Lapic lapic;
    lapic.setDeliver([](intr::Vector) {});
    for (auto _ : state) {
        lapic.accept(0x41);
        lapic.eoi();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LapicAcceptEoi);

static void
BM_IommuTranslate(benchmark::State &state)
{
    mem::GuestPhysMap map("bench");
    map.mapRange(0, 1 << 20, 64 * mem::kPageSize);
    mem::Iommu iommu;
    iommu.attach(0x100, map);
    sim::Random rng;
    for (auto _ : state) {
        mem::Addr gpa = (rng.next() % 64) * mem::kPageSize;
        benchmark::DoNotOptimize(iommu.translate(0x100, gpa, true));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IommuTranslate);

// The hot-path cost the observability layer adds when a tap IS
// installed: one log-bucket binary search per sample.
static void
BM_HistogramRecord(benchmark::State &state)
{
    obs::Histogram h;
    sim::Random rng;
    for (auto _ : state)
        h.record(double(rng.next() % 100000) * 0.01);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

static void
BM_RegistrySnapshot(benchmark::State &state)
{
    obs::MetricRegistry reg;
    std::vector<sim::Counter> counters(64);
    for (std::size_t i = 0; i < counters.size(); ++i) {
        counters[i].inc(i);
        reg.add("server.nic0.vf" + std::to_string(i) + ".rx_frames",
                &counters[i]);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(reg.snapshot());
    state.SetItemsProcessed(state.iterations() * counters.size());
}
BENCHMARK(BM_RegistrySnapshot);

// Per-event overhead of an attached ExecHook vs the bare queue: the
// disabled path is one null check, the enabled path two virtual calls.
static void
BM_EventQueueWithProfiler(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        obs::SimProfiler prof;
        if (state.range(0))
            prof.attach(eq);
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(sim::Time::ns(i), []() {});
        benchmark::DoNotOptimize(eq.runAll());
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueWithProfiler)->Arg(0)->Arg(1);

static void
BM_L2Classify(benchmark::State &state)
{
    nic::L2Switch l2;
    for (unsigned i = 0; i < 64; ++i)
        l2.setFilter(nic::MacAddr::make(1, std::uint16_t(i)), 0,
                     nic::Pool(i % 8));
    nic::Packet pkt;
    sim::Random rng;
    for (auto _ : state) {
        pkt.dst = nic::MacAddr::make(1, std::uint16_t(rng.next() % 64));
        benchmark::DoNotOptimize(l2.classify(pkt));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L2Classify);

// ---------------------------------------------------------------------
// Packet hop: the full RX datapath of one SR-IOV frame — wire
// serialization, L2 classification, descriptor-ring take, IOMMU
// translation, DMA crossing, MSI-X raise, router dispatch, and a
// driver-style drain + buffer repost. This is the composite path the
// figure benches spend their time on; the flat ring buffers and
// inline event captures must keep it allocation-free once warm.
// ---------------------------------------------------------------------

namespace {

struct NullEndpoint final : nic::WireEndpoint
{
    void receive(const nic::Packet &) override {}
};

struct PacketHop
{
    static constexpr unsigned kBatch = 256;

    sim::EventQueue eq;
    nic::Wire wire;
    nic::SriovNic nic;
    mem::GuestPhysMap map{"hop"};
    mem::Iommu iommu;
    intr::InterruptRouter router;
    NullEndpoint host;
    /** Full-export path tracer riding the hop: its record() calls sit
     *  on the exact instrumented path the figure benches run, so the
     *  allocs_per_packet gate below also proves the tracer hot path
     *  allocation-free. (Construct under a PathTraceScope{Full}.) */
    obs::PathTracer pt;
    std::uint16_t origin_comp = 0;
    std::uint16_t drv_comp = 0;
    std::uint64_t next_id = 0;
    std::vector<nic::RxCompletion> drained;
    std::uint64_t irqs = 0;
    std::uint64_t packets = 0;
    nic::Packet pkt;

    PacketHop()
        : wire(eq, nic::Wire::Params{10e9, sim::Time::ns(500)}),
          nic(eq, "hop0", pci::Bdf{1, 0, 0})
    {
        wire.connect(host, nic);
        nic.attachWire(wire);
        origin_comp = pt.registerComponent("host");
        drv_comp = pt.registerComponent("drv");
        wire.setPathTracer(&pt, pt.registerComponent("wire"));
        nic.setPathTracer(&pt);
        map.mapRange(0, 0x100000, 1024 * mem::kPageSize);
        nic.setIommu(&iommu);
        iommu.attach(nic.pf().rid(), map);

        nic.pf().config().write(pci::cfg::kCommand,
                                pci::cfg::kCmdMemEnable
                                    | pci::cfg::kCmdBusMaster,
                                2);
        for (unsigned i = 0; i < 512; ++i)
            nic.rxRing(0).post(mem::Addr(i) * 2048);
        nic.setPoolFilter(0, nic::MacAddr::make(7, 1));
        nic.setItr(0, 0);    // interrupt per frame: the hop under test

        router.attachFunction(nic.pf());
        intr::Vector v =
            router.allocateAndBind([this](intr::Vector, pci::Rid) {
                ++irqs;
                nic.drainRxInto(0, drained);
                auto &ring = nic.rxRing(0);
                for (const auto &c : drained) {
                    pt.record(drv_comp, obs::PathStage::LapicDeliver,
                              c.pkt.trace_id, eq.now());
                    ring.post(c.buffer_gpa);
                    ++packets;
                }
            });
        nic.pf().msix()->programEntry(0,
                                      pci::MsiMessage::forVector(0, v));
        nic.pf().msix()->maskEntry(0, false);
        nic.pf().msix()->setEnable(true);

        pkt.dst = nic::MacAddr::make(7, 1);
        pkt.src = nic::MacAddr::make(7, 2);
        pkt.bytes = nic::frame::udpFrame(1472);
    }

    /** Push one batch of frames through the full hop and drain. */
    void
    sendBatch()
    {
        for (unsigned i = 0; i < kBatch; ++i) {
            pkt.trace_id = ++next_id;
            pt.record(origin_comp, obs::PathStage::Origin, pkt.trace_id,
                      eq.now());
            wire.send(host, pkt);
        }
        eq.runAll();
    }
};

} // namespace

// ---------------------------------------------------------------------
// Cross-shard ping: one frame bouncing between two islands over a
// sharded Wire. Every crossing pays the full conservative-sync bill —
// promise publication, floor refresh, channel push/pop — with almost
// no event work to amortize it, so this is the worst case for the
// shard engine and bounds its per-message overhead. The same topology
// on a single queue (legacy wire) is the no-sync baseline.
// ---------------------------------------------------------------------

namespace {

struct PingEnd final : nic::WireEndpoint
{
    nic::Wire *wire = nullptr;
    nic::Packet pong;

    void
    receive(const nic::Packet &) override
    {
        wire->send(*this, pong);
    }
};

constexpr nic::Wire::Params kPingWire{10e9, sim::Time::us(5)};

nic::Packet
pingPacket()
{
    nic::Packet pkt;
    pkt.dst = nic::MacAddr::make(9, 1);
    pkt.src = nic::MacAddr::make(9, 2);
    pkt.bytes = nic::frame::udpFrame(64);
    return pkt;
}

/** Bounce a frame on one queue for @p sim_t; returns crossings. */
std::uint64_t
pingLegacy(sim::Time sim_t, std::uint64_t *events)
{
    sim::EventQueue eq;
    nic::Wire wire(eq, kPingWire);
    PingEnd a, b;
    a.wire = b.wire = &wire;
    a.pong = b.pong = pingPacket();
    wire.connect(a, b);
    wire.send(a, a.pong);
    eq.runUntil(sim_t);
    if (events != nullptr)
        *events = eq.executed();
    return wire.delivered();
}

/** Same topology across two islands; @p workers = engine threads. */
std::uint64_t
pingSharded(sim::Time sim_t, unsigned workers, std::uint64_t *events)
{
    sim::EventQueue eq_a, eq_b;
    sim::ShardEngine engine(workers);
    unsigned ia = engine.addIsland(eq_a);
    unsigned ib = engine.addIsland(eq_b);
    nic::Wire wire(eq_a, eq_b, engine, ia, ib, kPingWire);
    PingEnd a, b;
    a.wire = b.wire = &wire;
    a.pong = b.pong = pingPacket();
    wire.connect(a, b);
    wire.send(a, a.pong);
    engine.runUntil(sim_t);
    if (events != nullptr)
        *events = engine.executedEvents();
    return wire.delivered();
}

} // namespace

static void
BM_CrossShardPing(benchmark::State &state)
{
    // Arg 0: legacy single queue; arg 1: two islands, sequential
    // oracle. Items = wire crossings, so the per-item delta between
    // the two is the conservative-sync overhead per message.
    const bool sharded = state.range(0) != 0;
    std::uint64_t crossings = 0;
    for (auto _ : state) {
        crossings += sharded ? pingSharded(sim::Time::ms(5), 1, nullptr)
                             : pingLegacy(sim::Time::ms(5), nullptr);
    }
    state.SetItemsProcessed(std::int64_t(crossings));
}
BENCHMARK(BM_CrossShardPing)->Arg(0)->Arg(1);

static void
BM_PacketHop(benchmark::State &state)
{
    // Full export: every packet pushes ring records through the whole
    // hop, and the allocation gate must still read zero.
    obs::PathTraceScope pt_full(obs::PathTraceMode::Full);
    PacketHop hop;
    hop.sendBatch();    // warm queues, rings and scratch buffers
    std::uint64_t allocs_before = heapAllocs();
    std::uint64_t pkts_before = hop.packets;
    for (auto _ : state)
        hop.sendBatch();
    std::uint64_t pkts = hop.packets - pkts_before;
    state.counters["allocs_per_packet"] =
        double(heapAllocs() - allocs_before) / (pkts ? double(pkts) : 1);
    state.SetItemsProcessed(pkts);
}
BENCHMARK(BM_PacketHop);

// ---------------------------------------------------------------------
// Perf-smoke report. With --out=<dir>, after the google-benchmark
// pass the binary times a fixed set of event-core kernels with
// steady_clock and writes microkernel.json + microkernel.perf.json so
// CI can archive events/sec over time (tools/bench_summary --perf
// folds the sidecars into BENCH_perf.json). The zero-allocation
// contract of the inline-capture path is enforced here as a hard
// failure, not just reported.
// ---------------------------------------------------------------------

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - t0)
        .count();
}

/** Time @p batches×1000 empty events through a reused queue. */
void
perfSteadyState(core::FigReport &fr, std::uint64_t batches)
{
    sim::EventQueue eq;
    for (int i = 0; i < 1000; ++i)
        eq.scheduleIn(sim::Time::ns(i), []() {});
    eq.runAll();
    std::uint64_t before = eq.executed();
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t b = 0; b < batches; ++b) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(sim::Time::ns(i), []() {});
        eq.runAll();
    }
    double s = secondsSince(t0);
    std::uint64_t events = eq.executed() - before;
    fr.addPerf("steady-state", events, s);
    fr.report().addMetric("steady_state.events_per_sec",
                          s > 0 ? double(events) / s : 0);
}

/** Schedule+cancel churn; ops = armed-and-disarmed timers. */
void
perfScheduleCancel(core::FigReport &fr, std::uint64_t batches)
{
    sim::EventQueue eq;
    sim::EventHandle handles[64];
    std::uint64_t ops = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t b = 0; b < batches; ++b) {
        for (int i = 0; i < 64; ++i)
            handles[i] = eq.scheduleIn(sim::Time::us(1 + i), []() {});
        for (int i = 0; i < 64; ++i)
            eq.cancel(handles[i]);
        eq.runAll();
        ops += 64;
    }
    double s = secondsSince(t0);
    fr.addPerf("schedule-cancel", ops, s);
    fr.report().addMetric("schedule_cancel.ops_per_sec",
                          s > 0 ? double(ops) / s : 0);
}

/**
 * The zero-allocation gate: 64-byte captures through a warm queue
 * must not touch the heap. Returns false (and complains) on any
 * allocation.
 */
bool
perfInlineAllocGate(core::FigReport &fr, std::uint64_t batches)
{
    sim::EventQueue eq;
    struct Payload
    {
        char bytes[56];
        std::uint64_t *sink;
    };
    std::uint64_t sink = 0;
    Payload p{};
    p.sink = &sink;
    for (int i = 0; i < 1000; ++i)
        eq.scheduleIn(sim::Time::ns(i), [p]() { *p.sink += p.bytes[0]; });
    eq.runAll();

    std::uint64_t allocs_before = heapAllocs();
    std::uint64_t before = eq.executed();
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t b = 0; b < batches; ++b) {
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(sim::Time::ns(i),
                          [p]() { *p.sink += p.bytes[0]; });
        eq.runAll();
    }
    double s = secondsSince(t0);
    std::uint64_t events = eq.executed() - before;
    std::uint64_t allocs = heapAllocs() - allocs_before;
    fr.addPerf("inline-capture", events, s);
    fr.report().addMetric("inline_capture.events_per_sec",
                          s > 0 ? double(events) / s : 0);
    fr.report().addMetric("inline_capture.heap_allocs", double(allocs));
    if (allocs != 0) {
        std::fprintf(stderr,
                     "perf-smoke: FAIL: %llu heap allocation(s) on the "
                     "inline-capture path (%llu events); InplaceFn "
                     "inline contract broken\n",
                     static_cast<unsigned long long>(allocs),
                     static_cast<unsigned long long>(events));
        return false;
    }
    std::printf("perf-smoke: inline-capture path: 0 heap allocations "
                "over %llu events\n",
                static_cast<unsigned long long>(events));
    return true;
}

/**
 * The packet-path gate: frames through the wire→switch→ring→IRQ hop
 * must not allocate once rings and scratch buffers are warm, and the
 * rate is archived so CI can compare against the committed baseline.
 */
bool
perfPacketHop(core::FigReport &fr, std::uint64_t batches)
{
    PacketHop hop;
    hop.sendBatch();    // warm-up batch absorbs one-time growth
    std::uint64_t events_before = hop.eq.executed();
    std::uint64_t pkts_before = hop.packets;
    std::uint64_t allocs_before = heapAllocs();
    auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t b = 0; b < batches; ++b)
        hop.sendBatch();
    double s = secondsSince(t0);
    std::uint64_t events = hop.eq.executed() - events_before;
    std::uint64_t pkts = hop.packets - pkts_before;
    std::uint64_t allocs = heapAllocs() - allocs_before;
    fr.addPerf("packet-hop", events, s);
    fr.report().addMetric("packet_hop.packets_per_sec",
                          s > 0 ? double(pkts) / s : 0);
    fr.report().addMetric("packet_hop.irqs", double(hop.irqs));
    fr.report().addMetric("packet_hop.heap_allocs", double(allocs));
    if (allocs != 0) {
        std::fprintf(stderr,
                     "perf-smoke: FAIL: %llu heap allocation(s) on the "
                     "packet-hop path (%llu packets); datapath "
                     "steady-state must be allocation-free\n",
                     static_cast<unsigned long long>(allocs),
                     static_cast<unsigned long long>(pkts));
        return false;
    }
    std::printf("perf-smoke: packet-hop path: 0 heap allocations over "
                "%llu packets (%.0f pkts/s)\n",
                static_cast<unsigned long long>(pkts),
                s > 0 ? double(pkts) / s : 0);
    return true;
}

/**
 * The shard-sync gate: a frame ping-ponging between two islands pays
 * conservative sync on every crossing. The per-message overhead —
 * sharded-sequential host time minus the single-queue baseline,
 * divided by crossings — must stay under a generous ceiling, and the
 * sharded run must deliver the exact crossing count of the legacy one
 * (same simulated schedule, per DESIGN.md §13). Bounds are loose
 * because CI hosts jitter; the archived metrics carry the trend.
 */
bool
perfCrossShardPing(core::FigReport &fr)
{
    const sim::Time sim_t = sim::Time::ms(200);

    std::uint64_t legacy_events = 0, shard_events = 0;
    auto t0 = std::chrono::steady_clock::now();
    std::uint64_t legacy_msgs = pingLegacy(sim_t, &legacy_events);
    double legacy_s = secondsSince(t0);

    t0 = std::chrono::steady_clock::now();
    std::uint64_t shard_msgs = pingSharded(sim_t, 1, &shard_events);
    double shard_s = secondsSince(t0);

    fr.addPerf("xshard-ping", shard_events, shard_s);
    double msgs = double(shard_msgs ? shard_msgs : 1);
    double overhead_us = (shard_s - legacy_s) * 1e6 / msgs;
    fr.report().addMetric("xshard_ping.messages", double(shard_msgs));
    fr.report().addMetric("xshard_ping.legacy_host_s", legacy_s);
    fr.report().addMetric("xshard_ping.sharded_host_s", shard_s);
    fr.report().addMetric("xshard_ping.sync_overhead_us_per_msg",
                          overhead_us);

    if (shard_msgs != legacy_msgs) {
        std::fprintf(stderr,
                     "perf-smoke: FAIL: cross-shard ping delivered "
                     "%llu crossings, single-queue baseline %llu — "
                     "the sharded wire changed the schedule\n",
                     static_cast<unsigned long long>(shard_msgs),
                     static_cast<unsigned long long>(legacy_msgs));
        return false;
    }
    // ~40k crossings over 200 simulated ms: the sync bill per message
    // is a handful of atomic ops plus a channel push/pop, i.e. well
    // under a microsecond. 25 us/message means something is pathologic
    // (a yield per crossing, floors re-derived from scratch, ...).
    if (overhead_us > 25.0) {
        std::fprintf(stderr,
                     "perf-smoke: FAIL: conservative sync costs %.2f us "
                     "per cross-shard message (bound 25 us)\n",
                     overhead_us);
        return false;
    }
    std::printf("perf-smoke: cross-shard ping: %llu crossings, sync "
                "overhead %.3f us/message (single-queue baseline "
                "%.3f us/message)\n",
                static_cast<unsigned long long>(shard_msgs),
                overhead_us, legacy_s * 1e6 / msgs);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    // google-benchmark consumes its --benchmark_* flags; FigReport's
    // parser takes --out/--jobs and ignores what it doesn't know.
    benchmark::Initialize(&argc, argv);
    core::FigReport fr(argc, argv, "microkernel",
                       "Simulator substrate microbenchmarks");
    if (fr.helpShown())
        return 0;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!fr.options().wantReport())
        return 0;

    perfSteadyState(fr, 2000);
    perfScheduleCancel(fr, 2000);
    bool inline_ok = perfInlineAllocGate(fr, 1000);
    bool hop_ok = perfPacketHop(fr, 400);
    bool ping_ok = perfCrossShardPing(fr);
    int rc = fr.finish();
    return inline_ok && hop_ok && ping_ok ? rc : 1;
}
