/**
 * @file
 * Fig. 6 — CPU utilization and throughput of SR-IOV with a 64-bit
 * RHEL5U1 (Linux 2.6.18) HVM guest on one 1 GbE port, 1–7 VMs,
 * before and after the interrupt mask/unmask acceleration (§5.1).
 *
 * Paper result: throughput flat at line rate in every case; dom0 CPU
 * grows from ~17% (1 VM) to ~30% (7 VMs) unoptimized, and collapses
 * to ~3% with the acceleration.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "check/determinism.hpp"
#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Row
{
    unsigned vms;
    bool opt;
    double gbps;
    double dom0;
    double xen;
    double guests;
};

Row
runCase(core::FigReport &fr, unsigned vms, bool opt)
{
    core::Testbed::Params p;
    p.num_ports = 1;
    p.itr = "adaptive";
    p.opts = opt ? core::OptimizationSet::maskOnly()
                 : core::OptimizationSet::none();
    core::Testbed tb(p);

    double per_guest = p.line_bps / vms;
    for (unsigned i = 0; i < vms; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov,
                              guest::KernelVersion::v2_6_18);
        tb.startUdpToGuest(g, per_guest);
    }
    fr.instrument(tb);
    core::Testbed::Measurement m;
    fr.captureTrace(
        tb, [&]() { m = tb.measure(sim::Time::sec(2), sim::Time::sec(5)); });
    char label[32];
    std::snprintf(label, sizeof(label), "%u-VM%s", vms, opt ? "-opt" : "");
    fr.snapshot(label);
    fr.report().addMetric(std::string(label) + ".goodput_gbps",
                          m.total_goodput_bps / 1e9);
    fr.report().addMetric(std::string(label) + ".dom0_pct", m.dom0_pct);
    return Row{vms, opt, m.total_goodput_bps / 1e9, m.dom0_pct, m.xen_pct,
               m.guests_pct};
}

/**
 * Determinism smoke: a shrunk 2-VM configuration run twice must give
 * identical event-order digests, or every curve below is suspect.
 * Aborts (sim::fatal) on mismatch.
 */
void
determinismSmoke()
{
    auto digest = check::DeterminismHarness::audit("fig06-smoke", [](unsigned) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::maskOnly();
        core::Testbed tb(p);
        for (unsigned i = 0; i < 2; ++i) {
            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  core::Testbed::NetMode::Sriov,
                                  guest::KernelVersion::v2_6_18);
            tb.startUdpToGuest(g, 300e6);
        }
        tb.run(sim::Time::ms(200));
        return check::RunDigest::of(tb.eq());
    });
    std::printf("determinism smoke: OK (%s)\n", digest.toString().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig06",
                       "SR-IOV mask/unmask acceleration: throughput and "
                       "CPU vs VM count (Fig. 6)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 6: SR-IOV, RHEL5U1 (2.6.18) HVM, 1 GbE port, "
                 "MSI mask/unmask acceleration");
    determinismSmoke();
    fr.report().setConfig("guest_kernel", "2.6.18");
    fr.report().setConfig("ports", 1.0);
    fr.report().setConfig("measure_s", 5.0);

    core::Table t({"case", "throughput(Gb/s)", "dom0 CPU", "Xen CPU",
                   "guest CPU"});
    std::vector<double> vm_axis, dom0_unopt, dom0_opt;
    for (bool opt : {false, true}) {
        for (unsigned n : {1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
            Row r = runCase(fr, n, opt);
            char label[32];
            std::snprintf(label, sizeof(label), "%u-VM%s", n,
                          opt ? "-opt" : "");
            t.addRow({label, core::Table::num(r.gbps, 3),
                      core::cpuPct(r.dom0), core::cpuPct(r.xen),
                      core::cpuPct(r.guests)});
            (opt ? dom0_opt : dom0_unopt).push_back(r.dom0);
            if (!opt)
                vm_axis.push_back(double(n));
            // Paper: line rate in every configuration.
            fr.expect(std::string(label) + ".goodput_gbps", r.gbps, 0.957,
                      10);
            if (n == 7) {
                fr.expect(opt ? "dom0_pct_7vm_opt" : "dom0_pct_7vm_unopt",
                          r.dom0, opt ? 3.0 : 30.0, opt ? 150 : 60);
            }
        }
    }
    fr.report().addSeries("dom0_pct_unopt_vs_vms", vm_axis, dom0_unopt);
    fr.report().addSeries("dom0_pct_opt_vs_vms", vm_axis, dom0_opt);
    t.print();
    std::printf("\npaper: dom0 17%%..30%% unoptimized, ~3%% optimized; "
                "throughput flat at line rate\n");
    return fr.finish();
}
