/**
 * @file
 * Fig. 6 — CPU utilization and throughput of SR-IOV with a 64-bit
 * RHEL5U1 (Linux 2.6.18) HVM guest on one 1 GbE port, 1–7 VMs,
 * before and after the interrupt mask/unmask acceleration (§5.1).
 *
 * Paper result: throughput flat at line rate in every case; dom0 CPU
 * grows from ~17% (1 VM) to ~30% (7 VMs) unoptimized, and collapses
 * to ~3% with the acceleration.
 */

#include <cstdio>

#include "check/determinism.hpp"
#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Row
{
    unsigned vms;
    bool opt;
    double gbps;
    double dom0;
    double xen;
    double guests;
};

Row
runCase(unsigned vms, bool opt)
{
    core::Testbed::Params p;
    p.num_ports = 1;
    p.itr = "adaptive";
    p.opts = opt ? core::OptimizationSet::maskOnly()
                 : core::OptimizationSet::none();
    core::Testbed tb(p);

    double per_guest = p.line_bps / vms;
    for (unsigned i = 0; i < vms; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov,
                              guest::KernelVersion::v2_6_18);
        tb.startUdpToGuest(g, per_guest);
    }
    auto m = tb.measure(sim::Time::sec(2), sim::Time::sec(5));
    return Row{vms, opt, m.total_goodput_bps / 1e9, m.dom0_pct, m.xen_pct,
               m.guests_pct};
}

/**
 * Determinism smoke: a shrunk 2-VM configuration run twice must give
 * identical event-order digests, or every curve below is suspect.
 * Aborts (sim::fatal) on mismatch.
 */
void
determinismSmoke()
{
    auto digest = check::DeterminismHarness::audit("fig06-smoke", [](unsigned) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::maskOnly();
        core::Testbed tb(p);
        for (unsigned i = 0; i < 2; ++i) {
            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  core::Testbed::NetMode::Sriov,
                                  guest::KernelVersion::v2_6_18);
            tb.startUdpToGuest(g, 300e6);
        }
        tb.run(sim::Time::ms(200));
        return check::RunDigest::of(tb.eq());
    });
    std::printf("determinism smoke: OK (%s)\n", digest.toString().c_str());
}

} // namespace

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner("Fig. 6: SR-IOV, RHEL5U1 (2.6.18) HVM, 1 GbE port, "
                 "MSI mask/unmask acceleration");
    determinismSmoke();

    core::Table t({"case", "throughput(Gb/s)", "dom0 CPU", "Xen CPU",
                   "guest CPU"});
    for (bool opt : {false, true}) {
        for (unsigned n : {1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
            Row r = runCase(n, opt);
            char label[32];
            std::snprintf(label, sizeof(label), "%u-VM%s", n,
                          opt ? "-opt" : "");
            t.addRow({label, core::Table::num(r.gbps, 3),
                      core::cpuPct(r.dom0), core::cpuPct(r.xen),
                      core::cpuPct(r.guests)});
        }
    }
    t.print();
    std::printf("\npaper: dom0 17%%..30%% unoptimized, ~3%% optimized; "
                "throughput flat at line rate\n");
    return 0;
}
