/**
 * @file
 * Fig. 6 — CPU utilization and throughput of SR-IOV with a 64-bit
 * RHEL5U1 (Linux 2.6.18) HVM guest on one 1 GbE port, 1–7 VMs,
 * before and after the interrupt mask/unmask acceleration (§5.1).
 *
 * Paper result: throughput flat at line rate in every case; dom0 CPU
 * grows from ~17% (1 VM) to ~30% (7 VMs) unoptimized, and collapses
 * to ~3% with the acceleration.
 */

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "check/determinism.hpp"
#include "core/experiment.hpp"
#include "core/sweep_runner.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Row
{
    unsigned vms;
    bool opt;
    double gbps;
    double dom0;
    double xen;
    double guests;
};

Row
runCase(core::FigReport &fr, core::FigCase &c, unsigned vms, bool opt)
{
    core::Testbed::Params p;
    p.num_ports = 1;
    p.itr = "adaptive";
    p.opts = opt ? core::OptimizationSet::maskOnly()
                 : core::OptimizationSet::none();
    core::Testbed tb(p);

    double per_guest = p.line_bps / vms;
    for (unsigned i = 0; i < vms; ++i) {
        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov,
                              guest::KernelVersion::v2_6_18);
        tb.startUdpToGuest(g, per_guest);
    }
    c.instrument(tb);
    core::Testbed::Measurement m;
    fr.caseDrive(
        c, tb,
        [&]() { m = tb.measure(sim::Time::sec(2), sim::Time::sec(5)); });
    std::uint64_t pkts = 0;
    for (std::size_t i = 0; i < tb.guestCount(); ++i)
        if (tb.guest(i).rx)
            pkts += tb.guest(i).rx->rxPackets();
    c.addPackets(pkts);
    const std::string &label = c.label();
    c.snapshot(label);
    c.addMetric(label + ".goodput_gbps", m.total_goodput_bps / 1e9);
    c.addMetric(label + ".dom0_pct", m.dom0_pct);
    return Row{vms, opt, m.total_goodput_bps / 1e9, m.dom0_pct, m.xen_pct,
               m.guests_pct};
}

/**
 * Determinism smoke: a shrunk 2-VM configuration run twice must give
 * identical event-order digests, or every curve below is suspect.
 * Aborts (sim::fatal) on mismatch.
 */
void
determinismSmoke()
{
    auto digest = check::DeterminismHarness::audit("fig06-smoke", [](unsigned) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::maskOnly();
        core::Testbed tb(p);
        for (unsigned i = 0; i < 2; ++i) {
            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  core::Testbed::NetMode::Sriov,
                                  guest::KernelVersion::v2_6_18);
            tb.startUdpToGuest(g, 300e6);
        }
        tb.run(sim::Time::ms(200));
        return check::RunDigest{tb.orderDigest(), tb.executedEvents()};
    });
    std::printf("determinism smoke: OK (%s)\n", digest.toString().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig06",
                       "SR-IOV mask/unmask acceleration: throughput and "
                       "CPU vs VM count (Fig. 6)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 6: SR-IOV, RHEL5U1 (2.6.18) HVM, 1 GbE port, "
                 "MSI mask/unmask acceleration");
    determinismSmoke();
    fr.report().setConfig("guest_kernel", "2.6.18");
    fr.report().setConfig("ports", 1.0);
    fr.report().setConfig("measure_s", 5.0);

    // The 14 (optimization × VM-count) cells are independent
    // simulations; run them under SweepRunner and merge per-case
    // recorders in declaration order, so the report is byte-identical
    // whatever --jobs says.
    std::vector<core::FigCase> cases;
    cases.reserve(14);
    for (bool opt : {false, true}) {
        for (unsigned n = 1; n <= 7; ++n) {
            char label[32];
            std::snprintf(label, sizeof(label), "%u-VM%s", n,
                          opt ? "-opt" : "");
            cases.emplace_back(label);
        }
    }
    std::vector<Row> rows(cases.size());
    core::SweepRunner(fr.sweepJobs())
        .run(cases.size(), [&](std::size_t i) {
            bool opt = i >= 7;
            unsigned n = unsigned(i % 7) + 1;
            rows[i] = runCase(fr, cases[i], n, opt);
        });
    for (core::FigCase &c : cases)
        fr.mergeCase(c);

    core::Table t({"case", "throughput(Gb/s)", "dom0 CPU", "Xen CPU",
                   "guest CPU"});
    std::vector<double> vm_axis, dom0_unopt, dom0_opt;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        t.addRow({cases[i].label(), core::Table::num(r.gbps, 3),
                  core::cpuPct(r.dom0), core::cpuPct(r.xen),
                  core::cpuPct(r.guests)});
        (r.opt ? dom0_opt : dom0_unopt).push_back(r.dom0);
        if (!r.opt)
            vm_axis.push_back(double(r.vms));
        // Paper: line rate in every configuration.
        fr.expect(cases[i].label() + ".goodput_gbps", r.gbps, 0.957, 10);
        if (r.vms == 7) {
            fr.expect(r.opt ? "dom0_pct_7vm_opt" : "dom0_pct_7vm_unopt",
                      r.dom0, r.opt ? 3.0 : 30.0, r.opt ? 150 : 60);
        }
    }
    fr.report().addSeries("dom0_pct_unopt_vs_vms", vm_axis, dom0_unopt);
    fr.report().addSeries("dom0_pct_opt_vs_vms", vm_axis, dom0_opt);
    t.print();
    std::printf("\npaper: dom0 17%%..30%% unoptimized, ~3%% optimized; "
                "throughput flat at line rate\n");
    return fr.finish();
}
