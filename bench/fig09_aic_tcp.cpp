/**
 * @file
 * Fig. 9 — TCP_STREAM under the same coalescing sweep as Fig. 8.
 *
 * Paper result: 940 Mb/s at 20 kHz, 2 kHz and AIC; a 9.6% throughput
 * drop at 1 kHz (TCP is latency sensitive: ACKs ride the coalescing
 * interval); ~50% CPU saving from 20 kHz to 2 kHz.
 */

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig09",
                       "TCP_STREAM vs interrupt-coalescing policy "
                       "(Fig. 9)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 9: TCP_STREAM vs interrupt coalescing policy "
                 "(1 HVM guest, 1 GbE)");
    fr.report().setConfig("guest_kernel", "2.6.28");
    fr.report().setConfig("measure_s", 5.0);

    double base_bw = 0;
    core::Table t({"policy", "throughput(Mb/s)", "vs 20kHz", "guest CPU",
                   "Xen CPU", "dom0 CPU", "irq/s"});
    for (const std::string policy : {"20kHz", "2kHz", "AIC", "1kHz"}) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::maskEoi();
        p.opts.aic = policy == "AIC";
        p.itr = policy;
        core::Testbed tb(p);

        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        tb.startTcpToGuest(g);
        fr.instrument(tb);

        core::Testbed::Measurement m;
        std::uint64_t irqs0 = 0;
        fr.captureTrace(tb, [&]() {
            tb.run(sim::Time::sec(2));
            irqs0 = g.vf->deviceStats().interrupts.value();
            m = tb.measure(sim::Time(), sim::Time::sec(5));
        });
        double irq_rate =
            (g.vf->deviceStats().interrupts.value() - irqs0) / m.seconds;
        if (policy == "20kHz")
            base_bw = m.total_goodput_bps;
        double rel = base_bw > 0
                         ? 100.0 * (m.total_goodput_bps - base_bw) / base_bw
                         : 0.0;
        fr.snapshot(policy);
        fr.report().addMetric(policy + ".goodput_mbps",
                              m.total_goodput_bps / 1e6);
        fr.report().addMetric(policy + ".vs_20khz_pct", rel);
        if (policy != "1kHz") {
            // Paper: 940 Mb/s for 20 kHz, 2 kHz and AIC.
            fr.expect(policy + ".goodput_mbps",
                      m.total_goodput_bps / 1e6, 940, 7);
        } else {
            // Paper: 9.6% throughput drop at 1 kHz.
            fr.expect("1kHz.vs_20khz_pct", rel, -9.6, 60);
        }

        t.addRow({policy, core::Table::num(m.total_goodput_bps / 1e6, 0),
                  core::Table::num(rel, 1) + "%",
                  core::cpuPct(m.guests_pct), core::cpuPct(m.xen_pct),
                  core::cpuPct(m.dom0_pct), core::Table::num(irq_rate, 0)});
    }
    t.print();
    std::printf("\npaper: 940 Mb/s for 20k/2k/AIC; -9.6%% at 1 kHz; "
                "~50%% CPU saving 20k -> 2k\n");
    return fr.finish();
}
