/**
 * @file
 * Ablation — the AIC redundancy rate `r` (Eq. (2)). r is the headroom
 * AIC leaves for hypervisor-intervention latency: with r too small the
 * interrupt arrives after the buffer pool has already overflowed;
 * larger r interrupts more often than necessary and wastes CPU. The
 * paper uses r = 1.2 ("approximately 20% hypervisor intervention
 * overhead is estimated").
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "drivers/itr_policy.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner("Ablation: AIC redundancy rate r (dom0 -> guest "
                 "inter-VM UDP at 2 Gb/s offered)");

    core::Table t({"r", "RX BW(Mb/s)", "loss", "irq/s", "guest CPU"});
    for (double r : {0.8, 1.0, 1.1, 1.2, 1.5, 2.0}) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::maskEoi();
        core::Testbed tb(p);

        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        drivers::AicItr::Params ap;
        ap.r = r;
        g.vf->setItrPolicy(std::make_unique<drivers::AicItr>(ap));

        auto &snd = tb.startUdpFromDom0(g, 2e9);
        tb.run(sim::Time::sec(2));
        std::uint64_t irqs0 = g.vf->deviceStats().interrupts.value();
        std::uint64_t sent0 = snd.sentBytes();
        auto m = tb.measure(sim::Time(), sim::Time::sec(4));
        double tx = double(snd.sentBytes() - sent0) * 8.0 / m.seconds;
        double loss =
            tx > 0 ? 100.0 * (tx - m.total_goodput_bps) / tx : 0.0;
        double irq_rate =
            (g.vf->deviceStats().interrupts.value() - irqs0) / m.seconds;

        t.addRow({core::Table::num(r, 1),
                  core::Table::num(m.total_goodput_bps / 1e6, 0),
                  core::Table::num(loss, 1) + "%",
                  core::Table::num(irq_rate, 0),
                  core::cpuPct(m.guests_pct)});
    }
    t.print();
    std::printf("\nexpected: loss at r < ~1 (no headroom for the "
                "hypervisor), wasted interrupts at large r; the paper "
                "picks r = 1.2\n");
    return 0;
}
