/**
 * @file
 * Ablation — the AIC redundancy rate `r` (Eq. (2)). r is the headroom
 * AIC leaves for hypervisor-intervention latency: with r too small the
 * interrupt arrives after the buffer pool has already overflowed;
 * larger r interrupts more often than necessary and wastes CPU. The
 * paper uses r = 1.2 ("approximately 20% hypervisor intervention
 * overhead is estimated").
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "drivers/itr_policy.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "abl_aic_r",
                       "Ablation: AIC redundancy rate r (Eq. 2)");
    if (fr.helpShown())
        return 0;
    core::banner("Ablation: AIC redundancy rate r (dom0 -> guest "
                 "inter-VM UDP at 2 Gb/s offered)");
    fr.report().setConfig("offered_gbps", 2.0);
    fr.report().setConfig("measure_s", 4.0);

    core::Table t({"r", "RX BW(Mb/s)", "loss", "irq/s", "guest CPU"});
    std::vector<double> r_axis, loss_series, irq_series;
    for (double r : {0.8, 1.0, 1.1, 1.2, 1.5, 2.0}) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = core::OptimizationSet::maskEoi();
        core::Testbed tb(p);

        auto &g = tb.addGuest(vmm::DomainType::Hvm,
                              core::Testbed::NetMode::Sriov);
        drivers::AicItr::Params ap;
        ap.r = r;
        g.vf->setItrPolicy(std::make_unique<drivers::AicItr>(ap));

        auto &snd = tb.startUdpFromDom0(g, 2e9);
        fr.instrument(tb);
        core::Testbed::Measurement m;
        std::uint64_t irqs0 = 0, sent0 = 0;
        fr.captureTrace(tb, [&]() {
            tb.run(sim::Time::sec(2));
            irqs0 = g.vf->deviceStats().interrupts.value();
            sent0 = snd.sentBytes();
            m = tb.measure(sim::Time(), sim::Time::sec(4));
        });
        double tx = double(snd.sentBytes() - sent0) * 8.0 / m.seconds;
        double loss =
            tx > 0 ? 100.0 * (tx - m.total_goodput_bps) / tx : 0.0;
        double irq_rate =
            (g.vf->deviceStats().interrupts.value() - irqs0) / m.seconds;
        r_axis.push_back(r);
        loss_series.push_back(loss);
        irq_series.push_back(irq_rate);
        if (r == 1.2) {
            fr.snapshot("r1.2");
            // Paper's pick: r = 1.2 keeps up with the offered load.
            fr.expect("rx_mbps_at_r1.2", m.total_goodput_bps / 1e6,
                      tx / 1e6, 3);
        }

        t.addRow({core::Table::num(r, 1),
                  core::Table::num(m.total_goodput_bps / 1e6, 0),
                  core::Table::num(loss, 1) + "%",
                  core::Table::num(irq_rate, 0),
                  core::cpuPct(m.guests_pct)});
    }
    fr.report().addSeries("loss_pct_vs_r", r_axis, loss_series);
    fr.report().addSeries("irq_per_s_vs_r", r_axis, irq_series);
    t.print();
    std::printf("\nexpected: loss at r < ~1 (no headroom for the "
                "hypervisor), wasted interrupts at large r; the paper "
                "picks r = 1.2\n");
    return fr.finish();
}
