/**
 * @file
 * Fig. 20 — live migration of an HVM guest whose netperf stream rides
 * the PV network driver (1 GbE, single port).
 *
 * Paper result: pre-migration, dom0 burns significant CPU servicing
 * the PV path; migration starts at t=4.5 s; the service shuts down at
 * ~10.4 s for the stop-and-copy and is restored at ~11.8 s on the
 * target.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main()
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::banner("Fig. 20: migrating an HVM guest running netperf over "
                 "the PV network driver");

    core::Testbed::Params p;
    p.num_ports = 1;
    p.opts = core::OptimizationSet::maskEoi();
    p.guest_mem = 640ull << 20;
    p.netback_threads = 2;
    core::Testbed tb(p);

    auto &g = tb.addGuest(vmm::DomainType::Hvm,
                          core::Testbed::NetMode::Pv);
    tb.startUdpToGuest(g, p.line_bps);
    g.rx->sampleEvery(sim::Time::ms(500));

    vmm::MigrationManager::Params mp;
    vmm::MigrationManager::Result result{};
    bool done = false;
    tb.eq().scheduleAt(sim::Time::seconds(4.5), [&]() {
        tb.migration().migrate(
            *g.dom, mp, nullptr, nullptr,
            [&](const vmm::MigrationManager::Result &r) {
                result = r;
                done = true;
            });
    });

    // Step through the run, sampling dom0 CPU alongside the series.
    std::printf("\n%-8s %-18s %-10s\n", "t(s)", "netperf(Mb/s)",
                "dom0 CPU");
    auto snap = tb.server().snapshot();
    std::vector<double> dom0_series;
    for (int step = 0; step < 32; ++step) {
        tb.run(sim::Time::ms(500));
        auto tags = tb.server().cpuPercentByTag(snap);
        double dom0 = 0;
        for (const auto &[tag, pct] : tags) {
            if (tag.rfind("dom0", 0) == 0)
                dom0 += pct;
        }
        dom0_series.push_back(dom0);
        snap = tb.server().snapshot();
    }
    const auto &tl = g.rx->timeline().samples();
    for (std::size_t i = 0; i < tl.size() && i < dom0_series.size(); ++i) {
        std::printf("%-8.1f %-18.0f %-10.1f\n",
                    tl[i].first.toSeconds(), tl[i].second / 1e6,
                    dom0_series[i]);
    }

    if (done) {
        std::printf("\nmigration: started 4.5 s, service down %.1f s -> "
                    "restored %.1f s (downtime %.2f s, %u pre-copy "
                    "rounds, %llu pages)\n",
                    result.paused_at.toSeconds(),
                    result.resumed_at.toSeconds(),
                    result.downtime().toSeconds(), result.rounds,
                    static_cast<unsigned long long>(result.pages_sent));
    } else {
        std::printf("\nmigration did not complete within the window\n");
    }
    std::printf("paper: service down ~10.4 s, restored ~11.8 s\n");
    return done ? 0 : 1;
}
