/**
 * @file
 * Fig. 20 — live migration of an HVM guest whose netperf stream rides
 * the PV network driver (1 GbE, single port).
 *
 * Paper result: pre-migration, dom0 burns significant CPU servicing
 * the PV path; migration starts at t=4.5 s; the service shuts down at
 * ~10.4 s for the stop-and-copy and is restored at ~11.8 s on the
 * target.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig20",
                       "Live migration of an HVM guest over the PV NIC "
                       "(Fig. 20)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 20: migrating an HVM guest running netperf over "
                 "the PV network driver");
    fr.report().setConfig("guest_mem_mb", 640.0);
    fr.report().setConfig("migrate_at_s", 4.5);

    core::Testbed::Params p;
    p.num_ports = 1;
    p.opts = core::OptimizationSet::maskEoi();
    p.guest_mem = 640ull << 20;
    p.netback_threads = 2;
    core::Testbed tb(p);

    auto &g = tb.addGuest(vmm::DomainType::Hvm,
                          core::Testbed::NetMode::Pv);
    tb.startUdpToGuest(g, p.line_bps);
    g.rx->sampleEvery(sim::Time::ms(500));
    fr.instrument(tb);

    vmm::MigrationManager::Params mp;
    vmm::MigrationManager::Result result{};
    bool done = false;
    tb.eq().scheduleAt(sim::Time::seconds(4.5), [&tb, &g, &mp, &result,
                                                 &done]() {
        tb.migration().migrate(
            *g.dom, mp, nullptr, nullptr,
            [&result, &done](const vmm::MigrationManager::Result &r) {
                result = r;
                done = true;
            });
    });

    // Step through the run, sampling dom0 CPU alongside the series.
    std::printf("\n%-8s %-18s %-10s\n", "t(s)", "netperf(Mb/s)",
                "dom0 CPU");
    auto snap = tb.server().snapshot();
    std::vector<double> dom0_series;
    fr.captureTrace(tb, [&]() {
        for (int step = 0; step < 32; ++step) {
            tb.run(sim::Time::ms(500));
            auto tags = tb.server().cpuPercentByTag(snap);
            double dom0 = 0;
            for (const auto &[tag, pct] : tags) {
                if (tag.rfind("dom0", 0) == 0)
                    dom0 += pct;
            }
            dom0_series.push_back(dom0);
            snap = tb.server().snapshot();
        }
    });
    const auto &tl = g.rx->timeline().samples();
    for (std::size_t i = 0; i < tl.size() && i < dom0_series.size(); ++i) {
        std::printf("%-8.1f %-18.0f %-10.1f\n",
                    tl[i].first.toSeconds(), tl[i].second / 1e6,
                    dom0_series[i]);
    }

    if (done) {
        std::printf("\nmigration: started 4.5 s, service down %.1f s -> "
                    "restored %.1f s (downtime %.2f s, %u pre-copy "
                    "rounds, %llu pages)\n",
                    result.paused_at.toSeconds(),
                    result.resumed_at.toSeconds(),
                    result.downtime().toSeconds(), result.rounds,
                    static_cast<unsigned long long>(result.pages_sent));
        fr.snapshot("post-migration");
        std::vector<double> t_axis, mbps;
        for (const auto &[when, bps] : tl) {
            t_axis.push_back(when.toSeconds());
            mbps.push_back(bps / 1e6);
        }
        fr.report().addSeries("netperf_mbps_vs_s", t_axis, mbps);
        std::vector<double> step_axis;
        for (std::size_t i = 0; i < dom0_series.size(); ++i)
            step_axis.push_back(0.5 * double(i + 1));
        fr.report().addSeries("dom0_pct_vs_s", step_axis, dom0_series);
        // Paper: service down ~10.4 s, restored ~11.8 s.
        fr.expect("paused_at_s", result.paused_at.toSeconds(), 10.4, 15);
        fr.expect("resumed_at_s", result.resumed_at.toSeconds(), 11.8,
                  15);
    } else {
        std::printf("\nmigration did not complete within the window\n");
    }
    std::printf("paper: service down ~10.4 s, restored ~11.8 s\n");
    int rc = fr.finish();
    return done ? rc : 1;
}
