/**
 * @file
 * Fig. 12 — impact of the MSI, EOI and AIC optimizations at aggregate
 * 10 GbE (10 VMs on ten 1 GbE ports, one VF each), against the native
 * baseline (10 VF drivers + PF drivers in one bare-metal OS).
 *
 * Paper result: line rate (9.57 Gb/s) in every configuration; CPU
 * falls 499% -> 227% with MSI acceleration on a 2.6.18 guest; a
 * 2.6.28 guest saves a further 23 points with EOI acceleration and 24
 * with AIC, landing at 193% vs 145% native.
 */

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "sim/log.hpp"

using namespace sriov;

namespace {

struct Case
{
    const char *label;
    guest::KernelVersion kv;
    vmm::DomainType type;
    core::OptimizationSet opts;
    std::string itr;
};

} // namespace

int
main(int argc, char **argv)
{
    sim::setLogLevel(sim::LogLevel::Quiet);
    core::FigReport fr(argc, argv, "fig12",
                       "Optimization impact at aggregate 10 GbE "
                       "(Fig. 12)");
    if (fr.helpShown())
        return 0;
    core::banner("Fig. 12: optimization impact at aggregate 10 GbE "
                 "(10 VMs x 1 GbE, UDP_STREAM RX)");
    fr.report().setConfig("ports", 10.0);
    fr.report().setConfig("vms", 10.0);
    fr.report().setConfig("measure_s", 5.0);

    std::vector<Case> cases;
    cases.push_back({"2.6.18 HVM baseline", guest::KernelVersion::v2_6_18,
                     vmm::DomainType::Hvm, core::OptimizationSet::none(),
                     "adaptive"});
    cases.push_back({"2.6.18 HVM +MSI", guest::KernelVersion::v2_6_18,
                     vmm::DomainType::Hvm,
                     core::OptimizationSet::maskOnly(), "adaptive"});
    cases.push_back({"2.6.28 HVM baseline", guest::KernelVersion::v2_6_28,
                     vmm::DomainType::Hvm,
                     core::OptimizationSet::maskOnly(), "adaptive"});
    cases.push_back({"2.6.28 HVM +EOI", guest::KernelVersion::v2_6_28,
                     vmm::DomainType::Hvm, core::OptimizationSet::maskEoi(),
                     "adaptive"});
    Case all{"2.6.28 HVM +EOI+AIC", guest::KernelVersion::v2_6_28,
             vmm::DomainType::Hvm, core::OptimizationSet::all(), "AIC"};
    cases.push_back(all);
    cases.push_back({"native (10 VF drivers)",
                     guest::KernelVersion::v2_6_28, vmm::DomainType::Native,
                     core::OptimizationSet::maskEoi(), "adaptive"});
    // Extra row beyond the paper: the native floor under the *same*
    // interrupt moderation as the AIC guests, for an apples-to-apples
    // comparison (the paper's native row runs the driver default).
    Case native_aic{"native +AIC (fair floor)",
                    guest::KernelVersion::v2_6_28, vmm::DomainType::Native,
                    core::OptimizationSet::all(), "AIC"};
    cases.push_back(native_aic);

    core::Table t({"configuration", "throughput(Gb/s)", "total CPU",
                   "guest", "Xen", "dom0"});
    for (const auto &c : cases) {
        core::Testbed::Params p;
        p.num_ports = 10;
        p.opts = c.opts;
        p.itr = c.itr;
        core::Testbed tb(p);
        for (unsigned i = 0; i < 10; ++i) {
            auto &g = tb.addGuest(c.type, core::Testbed::NetMode::Sriov,
                                  c.kv);
            tb.startUdpToGuest(g, p.line_bps);
        }
        fr.instrument(tb);
        core::Testbed::Measurement m;
        fr.captureTrace(tb, [&]() {
            m = tb.measure(sim::Time::sec(2), sim::Time::sec(5));
        });
        fr.snapshot(c.label);
        fr.report().addMetric(std::string(c.label) + ".goodput_gbps",
                              m.total_goodput_bps / 1e9);
        fr.report().addMetric(std::string(c.label) + ".total_cpu_pct",
                              m.total_pct);
        // Paper: line rate in every configuration.
        fr.expect(std::string(c.label) + ".goodput_gbps",
                  m.total_goodput_bps / 1e9, 9.57, 5);
        if (std::string(c.label) == "2.6.18 HVM baseline")
            fr.expect("baseline_total_cpu_pct", m.total_pct, 499, 20);
        if (std::string(c.label) == "2.6.18 HVM +MSI")
            fr.expect("msi_total_cpu_pct", m.total_pct, 227, 20);
        t.addRow({c.label, core::gbps(m.total_goodput_bps),
                  core::cpuPct(m.total_pct), core::cpuPct(m.guests_pct),
                  core::cpuPct(m.xen_pct), core::cpuPct(m.dom0_pct)});
    }
    t.print();
    std::printf("\npaper: 499%% -> 227%% (MSI, 2.6.18); 2.6.28: -23 pts "
                "(EOI), -24 pts (AIC) -> 193%%; native 145%%; all at "
                "9.57 Gb/s\n");
    return fr.finish();
}
