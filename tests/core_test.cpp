/**
 * @file
 * Unit tests for the core layer: the IOVM (host-side VF hot-add +
 * virtual config space), optimization presets, the AIC factory, DNIS
 * orchestration, and the experiment helpers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/determinism.hpp"
#include "core/aic.hpp"
#include "core/dnis.hpp"
#include "core/experiment.hpp"
#include "core/iov_manager.hpp"
#include "core/optimizations.hpp"
#include "core/sweep_runner.hpp"
#include "core/testbed.hpp"
#include "vmm/hotplug_controller.hpp"

using namespace sriov;
using namespace sriov::core;

class IovmRig : public ::testing::Test
{
  protected:
    IovmRig()
        : hv(eq), iovm(hv), nic(eq, "eth0", pci::Bdf{1, 0, 0}),
          dom0_kern(hv, hv.dom0()), pf(dom0_kern, nic)
    {
        nic.setIommu(&hv.iommu());
        iovm.registerNic(nic);
    }

    sim::EventQueue eq;
    vmm::Hypervisor hv;
    IovManager iovm;
    nic::SriovNic nic;
    guest::GuestKernel dom0_kern;
    drivers::PfDriver pf;
};

TEST_F(IovmRig, HotAddsVfsWhenPfEnablesThem)
{
    EXPECT_TRUE(iovm.hostVisibleVfs().empty());
    pf.enableVfs(3);
    EXPECT_EQ(iovm.hostVisibleVfs().size(), 3u);
    // VFs are reachable by RID through the root complex (hot-added)…
    EXPECT_NE(hv.rootComplex().byRid(nic.vf(0)->rid()), nullptr);
    // …but an ordinary vendor-ID scan still cannot see them.
    auto scanned = hv.rootComplex().bus(nic.pf().bdf().bus).scan();
    for (auto *fn : scanned)
        EXPECT_FALSE(fn->isVf());
}

TEST_F(IovmRig, VfDisableUnplugsCleanly)
{
    pf.enableVfs(2);
    pci::Rid rid0 = nic.vf(0)->rid();
    pf.disableVfs();
    EXPECT_TRUE(iovm.hostVisibleVfs().empty());
    EXPECT_EQ(hv.rootComplex().byRid(rid0), nullptr);
}

TEST_F(IovmRig, AssignBuildsVirtualConfigAndIommuContext)
{
    pf.enableVfs(1);
    auto &dom = hv.createDomain("vm0", vmm::DomainType::Hvm, 64 << 20);
    auto &cfg = iovm.assign(dom, nic, 0);
    EXPECT_TRUE(hv.iommu().attached(nic.vf(0)->rid()));
    EXPECT_EQ(iovm.configOf(*nic.vf(0)), &cfg);
    iovm.deassign(dom, nic, 0);
    EXPECT_FALSE(hv.iommu().attached(nic.vf(0)->rid()));
    EXPECT_EQ(iovm.configOf(*nic.vf(0)), nullptr);
}

TEST_F(IovmRig, VirtualConfigSynthesizesTrimmedFields)
{
    pf.enableVfs(1);
    auto &dom = hv.createDomain("vm0", vmm::DomainType::Hvm, 64 << 20);
    auto &cfg = iovm.assign(dom, nic, 0);
    // Vendor comes from the PF, device id from the SR-IOV capability:
    // the guest can enumerate the VF as an ordinary function.
    EXPECT_EQ(cfg.read(pci::cfg::kVendorId, 2), 0x8086u);
    EXPECT_EQ(cfg.read(pci::cfg::kDeviceId, 2), 0x10cau);
    EXPECT_EQ(cfg.read(pci::cfg::kVendorId, 4), 0x10ca8086u);
}

TEST_F(IovmRig, VirtualConfigFiltersHeaderWrites)
{
    pf.enableVfs(1);
    auto &dom = hv.createDomain("vm0", vmm::DomainType::Hvm, 64 << 20);
    auto &cfg = iovm.assign(dom, nic, 0);
    cfg.write(pci::cfg::kBar0, 0xdeadbeef, 4);
    EXPECT_EQ(cfg.deniedWrites(), 1u);
    cfg.write(pci::cfg::kCommand, pci::cfg::kCmdBusMaster, 2);
    EXPECT_TRUE(nic.vf(0)->busMasterEnabled());
}

TEST(Optimizations, PresetsComposeAsNamed)
{
    EXPECT_EQ(OptimizationSet::none().describe(), "baseline");
    EXPECT_EQ(OptimizationSet::maskOnly().describe(), "+MSI");
    EXPECT_EQ(OptimizationSet::maskEoi().describe(), "+MSI+EOI");
    EXPECT_EQ(OptimizationSet::all().describe(), "+MSI+EOI+AIC");
    auto checked = OptimizationSet::maskEoi();
    checked.eoi_accel_check = true;
    EXPECT_EQ(checked.describe(), "+MSI+EOI(chk)");
}

TEST(Optimizations, ApplyProgramsTheHypervisor)
{
    sim::EventQueue eq;
    vmm::Hypervisor hv(eq);
    OptimizationSet::none().apply(hv);
    EXPECT_FALSE(hv.opts().mask_unmask_accel);
    EXPECT_FALSE(hv.opts().eoi_accel);
    OptimizationSet::all().apply(hv);
    EXPECT_TRUE(hv.opts().mask_unmask_accel);
    EXPECT_TRUE(hv.opts().eoi_accel);
}

TEST(AicFactory, ParsesSpecs)
{
    EXPECT_EQ(makeItrPolicy("AIC")->name(), "AIC");
    EXPECT_EQ(makeItrPolicy("adaptive")->name(), "adaptive");
    EXPECT_EQ(makeItrPolicy("20kHz")->name(), "20kHz");
    auto p = makeItrPolicy("2500");
    EXPECT_DOUBLE_EQ(p->updateHz(0, 0), 2500);
}

TEST(AicFactory, FrequencyEquation)
{
    // bufs = min(64, 1024) = 64; IF = pps*r/bufs floored at lif.
    EXPECT_NEAR(aicFrequency(81200, 64, 1024, 1.2, 1000), 1522.5, 0.1);
    EXPECT_DOUBLE_EQ(aicFrequency(100, 64, 1024, 1.2, 1000), 1000);
    EXPECT_DOUBLE_EQ(aicFrequency(80000, 128, 64, 1.0, 0), 1250);
}

TEST(TableFormat, AlignsColumns)
{
    Table t({"a", "longer"});
    t.addRow({"x", "1"});
    t.addRow({"yyyy", "2"});
    std::string s = t.toString();
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_NE(s.find("yyyy"), std::string::npos);
    EXPECT_EQ(gbps(9.57e9), "9.57");
    EXPECT_EQ(cpuPct(193.42), "193.4%");
}

class DnisRig : public ::testing::Test
{
  protected:
    DnisRig()
    {
        Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::all();
        p.guest_mem = 64ull << 20;
        p.netback_threads = 2;
        tb = std::make_unique<Testbed>(p);
        g = &tb->addGuest(vmm::DomainType::Hvm, Testbed::NetMode::Sriov,
                          guest::KernelVersion::v2_6_28,
                          /*bond_vf_with_pv=*/true);
        hpc = std::make_unique<vmm::VirtualHotplugController>(*g->dom);
        slot = &hpc->addSlot("vf-slot");
        dnis = std::make_unique<Dnis>(tb->server(), tb->migration());
        dnis->manage(*g->dom, *g->vf, *g->pv, *g->bond, *slot);
    }

    std::unique_ptr<Testbed> tb;
    Testbed::Guest *g = nullptr;
    std::unique_ptr<vmm::VirtualHotplugController> hpc;
    pci::HotplugSlot *slot = nullptr;
    std::unique_ptr<Dnis> dnis;
};

TEST_F(DnisRig, RuntimeUsesTheVf)
{
    EXPECT_EQ(dnis->bond()->active(), g->vf.get());
    EXPECT_TRUE(slot->occupied());
}

TEST_F(DnisRig, FullMigrationSequence)
{
    tb->startUdpToGuest(*g, 1e9);
    tb->run(sim::Time::sec(1));

    Dnis::Params dp;
    dp.mig.background_dirty_pps = 500;
    Dnis::Report report{};
    bool done = false;
    dnis->migrate(dp, [&](const Dnis::Report &r) {
        report = r;
        done = true;
    });

    // During the switch window the bond briefly sits on the VF while
    // it quiesces; afterwards the PV NIC carries traffic.
    tb->run(dp.remove_ack_delay + dp.vf_quiesce + sim::Time::ms(50));
    EXPECT_EQ(dnis->bond()->active(), g->pv.get());
    EXPECT_FALSE(g->vf->isUp());

    tb->run(sim::Time::sec(30));
    ASSERT_TRUE(done);
    // Events in order: switch -> pv -> pause -> resume -> vf back.
    EXPECT_LT(report.switch_started, report.switched_to_pv);
    EXPECT_LT(report.switched_to_pv, report.mig.paused_at);
    EXPECT_LT(report.mig.paused_at, report.mig.resumed_at);
    EXPECT_LT(report.mig.resumed_at, report.vf_restored);
    // Bond is back on the VF with the link up.
    EXPECT_EQ(dnis->bond()->active(), g->vf.get());
    EXPECT_TRUE(g->vf->isUp());
    EXPECT_TRUE(slot->occupied());
    EXPECT_GE(dnis->bond()->failovers(), 2u);
}

TEST_F(DnisRig, ConnectivitySurvivesTheSwitch)
{
    tb->startUdpToGuest(*g, 1e9);
    tb->run(sim::Time::sec(1));

    Dnis::Params dp;
    bool done = false;
    dnis->migrate(dp, [&](const Dnis::Report &) { done = true; });
    // Wait until the PV path is active, then verify traffic flows
    // during pre-copy (the whole point of DNIS).
    tb->run(sim::Time::sec(1));
    std::uint64_t before = g->rx->rxBytes();
    tb->run(sim::Time::sec(2));
    EXPECT_GT(g->rx->rxBytes(), before);
    tb->run(sim::Time::sec(40));
    EXPECT_TRUE(done);
}

// --- SweepRunner ---------------------------------------------------------

TEST(SweepRunner, SequentialWhenJobsIsOne)
{
    SweepRunner sr(1);
    std::vector<int> order;
    sr.run(5, [&](std::size_t i) { order.push_back(int(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SweepRunner, ZeroJobsDegradesToSequential)
{
    SweepRunner sr(0);
    EXPECT_EQ(sr.jobs(), 1u);
    int calls = 0;
    sr.run(3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 3);
}

TEST(SweepRunner, ParallelCoversEveryIndexExactlyOnce)
{
    SweepRunner sr(4);
    std::vector<std::atomic<int>> hits(64);
    sr.run(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, ParallelSimulationsMatchSequentialDigests)
{
    // The determinism contract: each case is an independent simulation,
    // so its event-order digest cannot depend on which host thread (or
    // how many) ran it.
    auto runCase = [](std::size_t i) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::maskOnly();
        core::Testbed tb(p);
        for (std::size_t v = 0; v <= i % 2; ++v) {
            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  core::Testbed::NetMode::Sriov);
            tb.startUdpToGuest(g, 200e6);
        }
        tb.run(sim::Time::ms(50));
        return check::RunDigest::of(tb.eq());
    };

    constexpr std::size_t kCases = 4;
    std::vector<check::RunDigest> seq(kCases), par(kCases);
    SweepRunner(1).run(kCases, [&](std::size_t i) { seq[i] = runCase(i); });
    SweepRunner(3).run(kCases, [&](std::size_t i) { par[i] = runCase(i); });
    for (std::size_t i = 0; i < kCases; ++i)
        EXPECT_EQ(seq[i], par[i]) << "case " << i;
}

TEST(SweepRunner, RethrowsLowestIndexError)
{
    SweepRunner sr(4);
    try {
        sr.run(8, [&](std::size_t i) {
            if (i == 2)
                throw std::runtime_error("case-2");
            if (i == 5)
                throw std::runtime_error("case-5");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        // What a sequential loop would have surfaced first.
        EXPECT_STREQ(e.what(), "case-2");
    }
}

// --- FigCase / parallel report merging -----------------------------------

namespace {

/** Build a report over 3 small cases with the given job count. */
std::string
sweepReportJson(unsigned jobs)
{
    const char *argv[] = {"core_test"};
    core::FigReport fr(1, const_cast<char **>(argv), "figtest",
                       "sweep determinism test");
    std::vector<core::FigCase> cases;
    for (unsigned n = 1; n <= 3; ++n)
        cases.emplace_back(std::to_string(n) + "vm");
    SweepRunner(jobs).run(cases.size(), [&](std::size_t i) {
        core::Testbed::Params p;
        p.num_ports = 1;
        p.opts = OptimizationSet::maskOnly();
        core::Testbed tb(p);
        for (std::size_t v = 0; v <= i; ++v) {
            auto &g = tb.addGuest(vmm::DomainType::Hvm,
                                  core::Testbed::NetMode::Sriov);
            tb.startUdpToGuest(g, 200e6);
        }
        cases[i].instrument(tb);
        fr.caseDrive(cases[i], tb,
                     [&]() { tb.run(sim::Time::ms(50)); });
        cases[i].snapshot(cases[i].label());
        cases[i].addMetric(cases[i].label() + ".events",
                           double(tb.eq().executed()));
    });
    for (core::FigCase &c : cases)
        fr.mergeCase(c);
    return fr.report().toJson();
}

} // namespace

TEST(FigCaseSweep, ParallelReportIsByteIdenticalToSequential)
{
    std::string seq = sweepReportJson(1);
    std::string par = sweepReportJson(4);
    EXPECT_FALSE(seq.empty());
    EXPECT_EQ(seq, par);
}

TEST(FigCaseSweep, MergePreservesDeclarationOrder)
{
    const char *argv[] = {"core_test"};
    core::FigReport fr(1, const_cast<char **>(argv), "figtest", "order");
    std::vector<core::FigCase> cases;
    for (int i = 0; i < 4; ++i)
        cases.emplace_back("case" + std::to_string(i));
    // Record snapshots from workers in whatever order; merge must
    // restore declaration order in the report.
    SweepRunner(4).run(cases.size(), [&](std::size_t i) {
        core::Testbed::Params p;
        p.num_ports = 1;
        core::Testbed tb(p);
        cases[i].instrument(tb);
        cases[i].snapshot(cases[i].label());
    });
    for (core::FigCase &c : cases)
        fr.mergeCase(c);
    std::string json = fr.report().toJson();
    std::size_t p0 = json.find("case0");
    std::size_t p1 = json.find("case1");
    std::size_t p2 = json.find("case2");
    std::size_t p3 = json.find("case3");
    ASSERT_NE(p0, std::string::npos);
    EXPECT_LT(p0, p1);
    EXPECT_LT(p1, p2);
    EXPECT_LT(p2, p3);
}
