/**
 * @file
 * Unit tests for the guest OS layer: socket buffers, the net stack's
 * receive/ACK behaviour, the kernel interrupt protocol (including the
 * 2.6.18 mask/unmask behaviour and PV-on-HVM conversion), netperf
 * workloads and the bonding driver.
 */

#include <gtest/gtest.h>

#include "guest/bonding.hpp"
#include "guest/kernel.hpp"
#include "guest/net_stack.hpp"
#include "guest/netperf.hpp"
#include "guest/socket_buffer.hpp"
#include "nic/sriov_nic.hpp"

using namespace sriov;
using namespace sriov::guest;

namespace {

nic::Packet
udpPkt(std::uint32_t payload = 1472)
{
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.src = nic::MacAddr::make(2, 1);
    p.bytes = nic::frame::udpFrame(payload);
    p.kind = nic::Packet::Kind::Udp;
    return p;
}

nic::Packet
tcpPkt(std::uint64_t end_seq, std::uint32_t payload = 1448)
{
    nic::Packet p;
    p.dst = nic::MacAddr::make(1, 1);
    p.src = nic::MacAddr::make(2, 1);
    p.bytes = nic::frame::tcpFrame(payload);
    p.kind = nic::Packet::Kind::Tcp;
    p.seq = end_seq;
    return p;
}

/** A scriptable NetDevice standing in for a driver. */
class FakeDevice : public NetDevice
{
  public:
    explicit FakeDevice(std::string name = "fake0")
        : name_(std::move(name))
    {}

    bool
    transmit(const nic::Packet &pkt) override
    {
        sent.push_back(pkt);
        return up;
    }

    nic::MacAddr mac() const override { return nic::MacAddr::make(1, 1); }
    bool linkUp() const override { return up; }
    const std::string &name() const override { return name_; }

    void
    injectRx(std::vector<nic::Packet> pkts)
    {
        deliverUp(pkts);
    }

    std::vector<nic::Packet> sent;
    bool up = true;

  private:
    std::string name_;
};

} // namespace

TEST(SocketBuffer, PacketCapDrops)
{
    SocketBuffer sb(2, 0);
    EXPECT_TRUE(sb.push(udpPkt()));
    EXPECT_TRUE(sb.push(udpPkt()));
    EXPECT_FALSE(sb.push(udpPkt()));
    EXPECT_EQ(sb.drops(), 1u);
    EXPECT_EQ(sb.size(), 2u);
}

TEST(SocketBuffer, ByteCapDrops)
{
    SocketBuffer sb(0, 3000);
    EXPECT_TRUE(sb.push(udpPkt(1472)));
    EXPECT_TRUE(sb.push(udpPkt(1472)));
    EXPECT_FALSE(sb.push(udpPkt(1472)));
    EXPECT_EQ(sb.bytes(), 2944u);
}

TEST(SocketBuffer, PopAndDrainAccount)
{
    SocketBuffer sb;
    for (int i = 0; i < 5; ++i)
        sb.push(udpPkt());
    EXPECT_EQ(sb.pop(2).size(), 2u);
    EXPECT_EQ(sb.drain().size(), 3u);
    EXPECT_TRUE(sb.empty());
    EXPECT_EQ(sb.bytes(), 0u);
    EXPECT_EQ(sb.delivered(), 5u);
}

class StackRig : public ::testing::Test
{
  protected:
    StackRig()
        : hv(eq), dom(hv.createDomain("vm0", vmm::DomainType::Hvm,
                                      64 << 20)),
          kern(hv, dom), stack(kern)
    {
        stack.attachDevice(dev);
    }

    sim::EventQueue eq;
    vmm::Hypervisor hv;
    vmm::Domain &dom;
    GuestKernel kern;
    NetStack stack;
    FakeDevice dev;
};

TEST_F(StackRig, UdpDeliveryReachesApplication)
{
    std::uint64_t bytes = 0;
    std::size_t pkts = 0;
    stack.setUdpReceiver([&](std::uint64_t b, std::size_t n) {
        bytes += b;
        pkts += n;
    });
    dev.injectRx({udpPkt(), udpPkt()});
    eq.runAll();
    EXPECT_EQ(bytes, 2 * 1472u);
    EXPECT_EQ(pkts, 2u);
}

TEST_F(StackRig, UdpSocketOverflowDrops)
{
    stack.setUdpSocketCapacity(4);
    std::size_t delivered = 0;
    stack.setUdpReceiver(
        [&](std::uint64_t, std::size_t n) { delivered += n; });
    std::vector<nic::Packet> burst(10, udpPkt());
    dev.injectRx(burst);
    eq.runAll();
    EXPECT_EQ(delivered, 4u);
    EXPECT_EQ(stack.udpSocketDrops(), 6u);
}

TEST_F(StackRig, AppProcessingConsumesGuestCpu)
{
    stack.setUdpReceiver([](std::uint64_t, std::size_t) {});
    auto snap = dom.vcpu(0).pcpu().snapshot();
    dev.injectRx({udpPkt()});
    eq.runAll();
    EXPECT_GT(dom.vcpu(0).pcpu().cyclesSince(snap, "vm0"), 0.0);
}

TEST_F(StackRig, TcpBatchTriggersCumulativeAck)
{
    stack.setTcpReceiver([](std::uint64_t, std::size_t) {});
    dev.injectRx({tcpPkt(1448), tcpPkt(2896)});
    eq.runAll();
    ASSERT_EQ(dev.sent.size(), 1u);    // one cumulative ACK per batch
    EXPECT_EQ(dev.sent[0].kind, nic::Packet::Kind::TcpAck);
    EXPECT_EQ(dev.sent[0].ack, 2896u);
    EXPECT_EQ(dev.sent[0].dst, nic::MacAddr::make(2, 1));
}

TEST_F(StackRig, AckPacketsBypassSocketAndReachListener)
{
    std::uint64_t acked = 0;
    stack.setAckListener([&](std::uint64_t a) { acked = a; });
    nic::Packet ack;
    ack.kind = nic::Packet::Kind::TcpAck;
    ack.ack = 12345;
    ack.bytes = 64;
    dev.injectRx({ack});
    EXPECT_EQ(acked, 12345u);    // immediate, no app work needed
}

TEST_F(StackRig, SendHelpersBuildCorrectFrames)
{
    EXPECT_TRUE(stack.sendUdp(nic::MacAddr::make(5, 5), 1472, 7));
    ASSERT_EQ(dev.sent.size(), 1u);
    EXPECT_EQ(dev.sent[0].payloadBytes(), 1472u);
    EXPECT_EQ(dev.sent[0].flow, 7u);
    EXPECT_TRUE(stack.sendTcpSegment(nic::MacAddr::make(5, 5), 1448, 7,
                                     1448));
    EXPECT_EQ(dev.sent[1].seq, 1448u);

    dev.up = false;
    EXPECT_FALSE(stack.sendUdp(nic::MacAddr::make(5, 5), 100, 0));
}

namespace {

class CountingClient : public GuestKernel::IrqClient
{
  public:
    int tops = 0;
    int bottoms = 0;
    double cycles = 1000;

    double
    irqTop() override
    {
        ++tops;
        return cycles;
    }

    void irqBottom() override { ++bottoms; }
};

} // namespace

class KernelIrqRig : public ::testing::Test
{
  protected:
    KernelIrqRig() : hv(eq), nic(eq, "eth0", pci::Bdf{1, 0, 0})
    {
        nic.sriovCap().setNumVfs(1);
        nic.sriovCap().setVfEnable(true);
    }

    GuestKernel &
    makeKernel(vmm::DomainType type, KernelVersion kv)
    {
        dom_ = &hv.createDomain("vm0", type, 64 << 20);
        kern_ = std::make_unique<GuestKernel>(hv, *dom_, kv);
        return *kern_;
    }

    sim::EventQueue eq;
    vmm::Hypervisor hv;
    nic::SriovNic nic;
    vmm::Domain *dom_ = nullptr;
    std::unique_ptr<GuestKernel> kern_;
    CountingClient client;
};

TEST_F(KernelIrqRig, HvmProtocolRunsTopThenBottomThenEoi)
{
    auto &kern = makeKernel(vmm::DomainType::Hvm,
                            KernelVersion::v2_6_28);
    kern.attachDeviceIrq(*nic.vf(0), client);
    nic.vf(0)->signalMsix(0);
    EXPECT_EQ(client.tops, 1);
    EXPECT_EQ(client.bottoms, 0);    // work not yet executed
    eq.runAll();
    EXPECT_EQ(client.bottoms, 1);
    // One EOI APIC access + the per-irq noise factor were recorded.
    EXPECT_GE(dom_->exits().count(vmm::ExitReason::ApicAccess), 1.0);
    EXPECT_EQ(kern.irqsHandled(), 1u);
}

TEST_F(KernelIrqRig, Kernel2618MasksAndUnmasksPerInterrupt)
{
    hv.opts().mask_unmask_accel = false;
    auto &kern = makeKernel(vmm::DomainType::Hvm,
                            KernelVersion::v2_6_18);
    kern.attachDeviceIrq(*nic.vf(0), client);
    nic.vf(0)->signalMsix(0);
    eq.runAll();
    // Two mask-register writes (mask + unmask) hit the device model.
    EXPECT_EQ(hv.deviceModel(*dom_).maskWrites(), 2u);
}

TEST_F(KernelIrqRig, Kernel2628NeverTouchesTheMask)
{
    hv.opts().mask_unmask_accel = false;
    auto &kern = makeKernel(vmm::DomainType::Hvm,
                            KernelVersion::v2_6_28);
    kern.attachDeviceIrq(*nic.vf(0), client);
    nic.vf(0)->signalMsix(0);
    eq.runAll();
    EXPECT_EQ(hv.deviceModel(*dom_).maskWrites(), 0u);
}

TEST_F(KernelIrqRig, PvmProtocolMasksPortAndUnmasksViaHypercall)
{
    auto &kern = makeKernel(vmm::DomainType::Pvm,
                            KernelVersion::v2_6_28);
    kern.attachDeviceIrq(*nic.vf(0), client);
    nic.vf(0)->signalMsix(0);
    // Port masked during processing: a second MSI stays pending.
    nic.vf(0)->signalMsix(0);
    EXPECT_EQ(client.tops, 1);
    eq.runAll();
    // Unmask hypercall redelivered the pending event.
    EXPECT_EQ(client.tops, 2);
    EXPECT_GE(dom_->exits().count(vmm::ExitReason::Hypercall), 1.0);
}

TEST_F(KernelIrqRig, PausedDomainDefersInterruptHandling)
{
    auto &kern = makeKernel(vmm::DomainType::Hvm,
                            KernelVersion::v2_6_28);
    kern.attachDeviceIrq(*nic.vf(0), client);
    dom_->pause();
    nic.vf(0)->signalMsix(0);
    eq.runUntil(sim::Time::ms(5));
    EXPECT_EQ(client.tops, 0);
    dom_->resume();
    eq.runUntil(sim::Time::ms(50));
    EXPECT_EQ(client.tops, 1);
}

TEST_F(KernelIrqRig, DetachWhileRetryPendingIsSafe)
{
    auto &kern = makeKernel(vmm::DomainType::Hvm,
                            KernelVersion::v2_6_28);
    kern.attachDeviceIrq(*nic.vf(0), client);
    dom_->pause();
    nic.vf(0)->signalMsix(0);
    kern.detachDeviceIrq(*nic.vf(0));
    dom_->resume();
    eq.runUntil(sim::Time::ms(50));
    EXPECT_EQ(client.tops, 0);    // retry found the IRQ gone
}

TEST_F(KernelIrqRig, VirtualIrqOnPvUsesEventChannel)
{
    auto &kern = makeKernel(vmm::DomainType::Pvm,
                            KernelVersion::v2_6_28);
    auto virq = kern.attachVirtualIrq(client);
    auto &notifier = hv.dom0Cpu(1);
    auto snap = notifier.snapshot();
    kern.raiseVirtualIrq(virq, notifier);
    eq.runAll();
    EXPECT_EQ(client.bottoms, 1);
    EXPECT_DOUBLE_EQ(notifier.cyclesSince(snap, "xen"),
                     hv.costs().evtchn_send);
    EXPECT_DOUBLE_EQ(dom_->exits().count(vmm::ExitReason::ApicAccess), 0);
}

TEST_F(KernelIrqRig, VirtualIrqOnHvmPaysLapicConversion)
{
    auto &kern = makeKernel(vmm::DomainType::Hvm,
                            KernelVersion::v2_6_28);
    auto virq = kern.attachVirtualIrq(client);
    auto &notifier = hv.dom0Cpu(1);
    auto snap = notifier.snapshot();
    kern.raiseVirtualIrq(virq, notifier);
    eq.runAll();
    EXPECT_EQ(client.bottoms, 1);
    EXPECT_DOUBLE_EQ(notifier.cyclesSince(snap, "xen"),
                     hv.costs().evtchn_send
                         + hv.costs().evtchn_hvm_conversion);
    // The PV-on-HVM upcall still EOIs the virtual LAPIC.
    EXPECT_GE(dom_->exits().count(vmm::ExitReason::ApicAccess), 1.0);
}

class NetperfRig : public StackRig
{
};

TEST_F(NetperfRig, UdpSenderPacesAtOfferedRate)
{
    UdpStreamSender snd(eq, stack, nic::MacAddr::make(9, 9), 1e9, 1472);
    snd.start();
    eq.runUntil(sim::Time::ms(100));
    snd.stop();
    // 1 Gb/s of 1538 wire bytes = 81.27 k frames/s.
    EXPECT_NEAR(double(snd.sentPackets()), 8127, 90);
    eq.runUntil(sim::Time::ms(200));
    auto frozen = snd.sentPackets();
    eq.runUntil(sim::Time::ms(300));
    EXPECT_EQ(snd.sentPackets(), frozen);    // stop() stops
}

TEST_F(NetperfRig, StreamReceiverCountsAndSamples)
{
    StreamReceiver rx(eq, stack, StreamReceiver::Proto::Udp);
    rx.sampleEvery(sim::Time::ms(10));
    dev.injectRx({udpPkt(), udpPkt()});
    eq.runUntil(sim::Time::ms(25));
    rx.stopSampling();
    EXPECT_EQ(rx.rxPackets(), 2u);
    EXPECT_EQ(rx.rxBytes(), 2944u);
    ASSERT_GE(rx.timeline().samples().size(), 2u);
    // All the traffic landed in the first 10 ms bucket.
    EXPECT_GT(rx.timeline().samples()[0].second, 0.0);
    EXPECT_DOUBLE_EQ(rx.timeline().samples()[1].second, 0.0);
}

TEST_F(NetperfRig, TcpSenderRespectsWindow)
{
    TcpStreamSender snd(eq, stack, nic::MacAddr::make(9, 9),
                        /*window=*/4 * 1448, 1448);
    snd.start();
    eq.runUntil(sim::Time::ms(1));
    EXPECT_EQ(dev.sent.size(), 4u);    // window full, waiting for ACKs

    // ACK two segments: two more flow.
    nic::Packet ack;
    ack.kind = nic::Packet::Kind::TcpAck;
    ack.ack = 2 * 1448;
    ack.bytes = 64;
    dev.injectRx({ack});
    EXPECT_EQ(dev.sent.size(), 6u);
    EXPECT_EQ(snd.ackedBytes(), 2 * 1448u);
}

TEST_F(NetperfRig, TcpSenderRetransmitsOnStall)
{
    TcpStreamSender snd(eq, stack, nic::MacAddr::make(9, 9),
                        /*window=*/2 * 1448, 1448);
    snd.start();
    eq.runUntil(sim::Time::ms(1));
    std::size_t first_burst = dev.sent.size();
    // No ACKs arrive: after two RTO periods a go-back-N resend fires.
    eq.runUntil(TcpStreamSender::kRto * 3);
    EXPECT_GE(snd.retransmits(), 1u);
    EXPECT_GT(dev.sent.size(), first_burst);
}

TEST_F(NetperfRig, TcpRttTrackerStaysBoundedByWindow)
{
    obs::Histogram rtt;
    TcpStreamSender snd(eq, stack, nic::MacAddr::make(9, 9),
                        /*window=*/4 * 1448, 1448);
    snd.setRttTap(&rtt);
    snd.start();
    EXPECT_EQ(snd.rttTrackerCap(), 5u);    // window in segments + 1
    eq.runUntil(sim::Time::ms(1));
    EXPECT_LE(snd.rttTrackerDepth(), snd.rttTrackerCap());

    // Sustained ack-and-refill cycles reclaim samples as they complete;
    // the tracker must never outgrow the window.
    for (int round = 1; round <= 50; ++round) {
        nic::Packet ack;
        ack.kind = nic::Packet::Kind::TcpAck;
        ack.ack = std::uint64_t(round) * 2 * 1448;
        ack.bytes = 64;
        dev.injectRx({ack});
        EXPECT_LE(snd.rttTrackerDepth(), snd.rttTrackerCap());
    }
    EXPECT_GT(rtt.count(), 0.0);

    // An ACK stall (receiver torn down) must not grow the tracker
    // either: RTO rewinds resend without accumulating samples.
    eq.runUntil(TcpStreamSender::kRto * 6);
    EXPECT_GE(snd.retransmits(), 1u);
    EXPECT_LE(snd.rttTrackerDepth(), snd.rttTrackerCap());
}

TEST(Bonding, TransmitUsesActiveSlave)
{
    BondingDriver bond("bond0");
    FakeDevice a("a"), b("b");
    bond.addSlave(a);
    bond.addSlave(b);
    EXPECT_EQ(bond.active(), &a);

    nic::Packet p = udpPkt();
    bond.transmit(p);
    EXPECT_EQ(a.sent.size(), 1u);
    bond.setActive(b);
    bond.transmit(p);
    EXPECT_EQ(b.sent.size(), 1u);
    EXPECT_EQ(bond.failovers(), 1u);
}

TEST(Bonding, RxFromBackupSlaveIsDiscarded)
{
    BondingDriver bond("bond0");
    FakeDevice a("a"), b("b");
    bond.addSlave(a);
    bond.addSlave(b);

    struct Sink : NetRxSink
    {
        std::size_t got = 0;
        void
        deviceRx(NetDevice &, const std::vector<nic::Packet> &p) override
        {
            got += p.size();
        }
    } sink;
    bond.setRxSink(&sink);

    a.injectRx({udpPkt()});
    EXPECT_EQ(sink.got, 1u);
    b.injectRx({udpPkt()});    // backup slave: dropped
    EXPECT_EQ(sink.got, 1u);
    EXPECT_EQ(bond.inactiveRxDropped(), 1u);
}

TEST(Bonding, FailoverSkipsDownSlaves)
{
    BondingDriver bond("bond0");
    FakeDevice a("a"), b("b"), c("c");
    bond.addSlave(a);
    bond.addSlave(b);
    bond.addSlave(c);
    b.up = false;
    EXPECT_TRUE(bond.failover());
    EXPECT_EQ(bond.active(), &c);
}

TEST(Bonding, LosesCarrierWhenAllSlavesDown)
{
    BondingDriver bond("bond0");
    FakeDevice a("a");
    bond.addSlave(a);
    a.up = false;
    EXPECT_FALSE(bond.failover());
    EXPECT_FALSE(bond.linkUp());
    nic::Packet p = udpPkt();
    EXPECT_FALSE(bond.transmit(p));
    EXPECT_EQ(bond.txDropped(), 1u);
}

TEST(Bonding, RemoveSlaveFailsOver)
{
    BondingDriver bond("bond0");
    FakeDevice a("a"), b("b");
    bond.addSlave(a);
    bond.addSlave(b);
    bond.removeSlave(a);
    EXPECT_EQ(bond.active(), &b);
    EXPECT_EQ(bond.slaveCount(), 1u);
}

TEST_F(StackRig, TcpChunkingAcksIncrementally)
{
    stack.setTcpReceiver([](std::uint64_t, std::size_t) {});
    // Three chunks' worth of segments in one batch.
    std::vector<nic::Packet> batch;
    std::uint64_t seq = 0;
    for (std::size_t i = 0; i < NetStack::kTcpAckChunk * 3; ++i) {
        seq += 1448;
        batch.push_back(tcpPkt(seq));
    }
    dev.injectRx(std::move(batch));
    eq.runAll();
    // One cumulative ACK per chunk, each strictly increasing.
    ASSERT_EQ(dev.sent.size(), 3u);
    EXPECT_EQ(dev.sent[0].ack, NetStack::kTcpAckChunk * 1448u);
    EXPECT_EQ(dev.sent[1].ack, NetStack::kTcpAckChunk * 2 * 1448u);
    EXPECT_EQ(dev.sent[2].ack, seq);
}

TEST_F(StackRig, MixedTrafficInOneBatch)
{
    std::size_t udp_pkts = 0, tcp_pkts = 0;
    stack.setUdpReceiver(
        [&](std::uint64_t, std::size_t n) { udp_pkts += n; });
    stack.setTcpReceiver(
        [&](std::uint64_t, std::size_t n) { tcp_pkts += n; });
    dev.injectRx({udpPkt(), tcpPkt(1448), udpPkt(), tcpPkt(2896)});
    eq.runAll();
    EXPECT_EQ(udp_pkts, 2u);
    EXPECT_EQ(tcp_pkts, 2u);
    // The TCP side still ACKed.
    ASSERT_EQ(dev.sent.size(), 1u);
    EXPECT_EQ(dev.sent[0].ack, 2896u);
}

TEST_F(StackRig, RxDuringAppProcessingIsNotLost)
{
    std::size_t got = 0;
    stack.setUdpReceiver([&](std::uint64_t, std::size_t n) { got += n; });
    dev.injectRx({udpPkt()});
    // A second batch lands before the app work completes.
    dev.injectRx({udpPkt(), udpPkt()});
    eq.runAll();
    EXPECT_EQ(got, 3u);
}
