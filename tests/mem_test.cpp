/**
 * @file
 * Unit tests for the memory subsystem: machine memory, guest-physical
 * maps with dirty logging, IOMMU translation/faults, DMA engine.
 */

#include <gtest/gtest.h>

#include "mem/dma_engine.hpp"
#include "mem/guest_phys_map.hpp"
#include "mem/iommu.hpp"
#include "mem/machine_memory.hpp"
#include "sim/thinning.hpp"

using namespace sriov;
using namespace sriov::mem;

TEST(MachineMemory, AllocatesDisjointRegions)
{
    MachineMemory mm(1 << 20);
    Addr a = mm.allocate(8192, "a");
    Addr b = mm.allocate(4096, "b");
    EXPECT_NE(a, b);
    EXPECT_GE(b, a + 8192);
    EXPECT_EQ(mm.ownerOf(a), "a");
    EXPECT_EQ(mm.ownerOf(a + 8191), "a");
    EXPECT_EQ(mm.ownerOf(b), "b");
    EXPECT_EQ(mm.ownerOf(b + 4096), "");
}

TEST(MachineMemory, RoundsToPages)
{
    MachineMemory mm(1 << 20);
    Addr a = mm.allocate(1, "tiny");
    Addr b = mm.allocate(1, "tiny2");
    EXPECT_EQ(b - a, kPageSize);
}

TEST(MachineMemoryDeathTest, ExhaustionIsFatal)
{
    MachineMemory mm(4 * kPageSize);
    mm.allocate(2 * kPageSize, "x");
    EXPECT_DEATH(mm.allocate(4 * kPageSize, "y"), "exhausted");
}

TEST(MachineMemory, PokePeek)
{
    MachineMemory mm(1 << 20);
    mm.poke64(0x1000, 0xabcd);
    EXPECT_EQ(mm.peek64(0x1000), 0xabcdu);
    EXPECT_EQ(mm.peek64(0x2000), 0u);
}

TEST(GuestPhysMap, TranslateWithinPage)
{
    GuestPhysMap m("g");
    m.mapRange(0x10000, 0x500000, 2 * kPageSize);
    EXPECT_EQ(m.translate(0x10000), 0x500000u);
    EXPECT_EQ(m.translate(0x10123), 0x500123u);
    EXPECT_EQ(m.translate(0x11000), 0x501000u);
    EXPECT_FALSE(m.translate(0x12000).has_value());
}

TEST(GuestPhysMap, UnmapRemovesPages)
{
    GuestPhysMap m("g");
    m.mapRange(0, 0x100000, 4 * kPageSize);
    m.unmapRange(kPageSize, kPageSize);
    EXPECT_TRUE(m.translate(0).has_value());
    EXPECT_FALSE(m.translate(kPageSize).has_value());
    EXPECT_TRUE(m.translate(2 * kPageSize).has_value());
}

TEST(GuestPhysMap, ReadOnlyMappings)
{
    GuestPhysMap m("g");
    m.mapRange(0, 0x100000, kPageSize, /*writable=*/false);
    EXPECT_FALSE(m.writable(0));
    EXPECT_TRUE(m.translate(0).has_value());
}

TEST(GuestPhysMap, DirtyLogTracksAndDrains)
{
    GuestPhysMap m("g");
    m.mapRange(0, 0x100000, 8 * kPageSize);
    m.markDirty(0);    // log disabled: ignored
    EXPECT_EQ(m.dirtyPageCount(), 0u);

    m.enableDirtyLog();
    m.markDirty(0);
    m.markDirty(123);    // same page
    m.markDirty(2 * kPageSize);
    EXPECT_EQ(m.dirtyPageCount(), 2u);

    auto drained = m.drainDirty();
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_EQ(m.dirtyPageCount(), 0u);

    m.markDirtyRange(0, 3 * kPageSize);
    EXPECT_EQ(m.dirtyPageCount(), 3u);
    m.disableDirtyLog();
    EXPECT_EQ(m.dirtyPageCount(), 0u);
}

class IommuTest : public ::testing::Test
{
  protected:
    IommuTest()
    {
        map.mapRange(0, 0x100000, 4 * kPageSize);
        map.mapRange(0x10000, 0x200000, kPageSize, /*writable=*/false);
        iommu.attach(0x100, map);
    }

    GuestPhysMap map{"guest"};
    Iommu iommu;
};

TEST_F(IommuTest, TranslatesAttachedRid)
{
    auto r = iommu.translate(0x100, 0x1234, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.mpa, 0x101234u);
}

TEST_F(IommuTest, NoContextFault)
{
    auto r = iommu.translate(0x200, 0, false);
    EXPECT_EQ(r.fault, Iommu::Fault::NoContext);
    EXPECT_EQ(iommu.faults().value(), 1u);
}

TEST_F(IommuTest, NotPresentFault)
{
    auto r = iommu.translate(0x100, 0x900000, true);
    EXPECT_EQ(r.fault, Iommu::Fault::NotPresent);
}

TEST_F(IommuTest, WriteProtectionFault)
{
    EXPECT_TRUE(iommu.translate(0x100, 0x10000, false).ok());
    auto r = iommu.translate(0x100, 0x10000, true);
    EXPECT_EQ(r.fault, Iommu::Fault::WriteProtected);
}

TEST_F(IommuTest, DmaWriteMarksDirty)
{
    map.enableDirtyLog();
    iommu.translate(0x100, 0x42, true);
    EXPECT_EQ(map.dirtyPageCount(), 1u);
    iommu.translate(0x100, 0x43, false);    // reads do not dirty
    EXPECT_EQ(map.dirtyPageCount(), 1u);
}

TEST_F(IommuTest, DetachRestoresNoContext)
{
    iommu.detach(0x100);
    EXPECT_FALSE(iommu.attached(0x100));
    EXPECT_EQ(iommu.translate(0x100, 0, false).fault,
              Iommu::Fault::NoContext);
}

TEST_F(IommuTest, TranslateRangeChecksEveryPage)
{
    // Pages 0..3 mapped; a 5-page range must fault.
    EXPECT_TRUE(iommu.translateRange(0x100, 0, 4 * kPageSize, false).ok());
    EXPECT_EQ(iommu.translateRange(0x100, 0, 5 * kPageSize, false).fault,
              Iommu::Fault::NotPresent);
}

TEST(DmaEngine, ServiceTimeMatchesLinkRate)
{
    sim::EventQueue eq;
    DmaEngine::Params p;
    p.link_bps = 8e9;
    p.per_dma_overhead = sim::Time::ns(1000);
    DmaEngine dma(eq, "d", p);
    // 1000 bytes at 8 Gb/s = 1 us + 1 us overhead.
    EXPECT_EQ(dma.serviceTime(1000), sim::Time::us(2));
}

TEST(DmaEngine, SerializesTransfersFifo)
{
    sim::EventQueue eq;
    DmaEngine::Params p;
    p.link_bps = 8e9;
    p.per_dma_overhead = sim::Time::ns(0);
    DmaEngine dma(eq, "d", p);
    std::vector<int> order;
    std::vector<sim::Time> at;
    dma.transfer(1000, [&]() { order.push_back(1); at.push_back(eq.now()); });
    dma.transfer(1000, [&]() { order.push_back(2); at.push_back(eq.now()); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(at[0], sim::Time::us(1));
    EXPECT_EQ(at[1], sim::Time::us(2));
    EXPECT_EQ(dma.bytesMoved(), 2000u);
    EXPECT_EQ(dma.transfers(), 2u);
}

TEST(DmaEngine, DefaultsModelThe82576Link)
{
    sim::EventQueue eq;
    DmaEngine dma(eq, "d");
    // A 1518-byte frame takes ~0.94us overhead + ~1.81us payload: the
    // double crossing of the inter-VM path lands near 2.8 Gb/s at
    // 4000-byte messages (paper Section 6.3).
    sim::Time one = dma.serviceTime(4092);
    double inter_vm_bps = 4000 * 8 / (2 * one.toSeconds());
    EXPECT_NEAR(inter_vm_bps / 1e9, 2.8, 0.4);
}

// ---------------------------------------------------------------------------
// DmaEngine event thinning: analytic completions must match the exact
// one-transfer-in-service implementation instant for instant.
// ---------------------------------------------------------------------------

TEST(DmaEngine, ThinCompletionInstantsMatchExactMode)
{
    auto run = [](bool thin) {
        sim::ThinningScope scope(thin);
        sim::EventQueue eq;
        DmaEngine::Params p;
        p.link_bps = 8e9;
        p.per_dma_overhead = sim::Time::ns(100);
        DmaEngine dma(eq, "d", p);
        std::vector<sim::Time> at;
        auto submit = [&](std::uint64_t bytes) {
            dma.transfer(bytes, [&]() { at.push_back(eq.now()); });
        };
        // A backlog burst, then a transfer after the link went idle.
        submit(1000);
        submit(64);
        submit(4000);
        eq.scheduleAt(sim::Time::ms(1), [&submit] { submit(500); });
        eq.runAll();
        EXPECT_EQ(dma.bytesMoved(), 5564u);
        EXPECT_EQ(dma.transfers(), 4u);
        EXPECT_EQ(dma.busyTime(), dma.serviceTime(1000)
                                      + dma.serviceTime(64)
                                      + dma.serviceTime(4000)
                                      + dma.serviceTime(500));
        return at;
    };
    std::vector<sim::Time> thin = run(true);
    std::vector<sim::Time> exact = run(false);
    ASSERT_EQ(thin.size(), 4u);
    EXPECT_EQ(thin, exact);
}

TEST(DmaEngine, ReserveReturnsFifoCompletionInstants)
{
    sim::ThinningScope scope(true);
    sim::EventQueue eq;
    DmaEngine::Params p;
    p.link_bps = 8e9;
    p.per_dma_overhead = sim::Time::ns(0);
    DmaEngine dma(eq, "d", p);
    // Back-to-back reservations serialize on the link.
    EXPECT_EQ(dma.reserve(1000), sim::Time::us(1));
    EXPECT_EQ(dma.reserve(1000), sim::Time::us(2));
    // The backlog is visible as queue depth until instants pass.
    EXPECT_EQ(dma.queueDepth(), 1u);
    eq.scheduleAt(sim::Time::us(3), [&dma] {
        EXPECT_EQ(dma.queueDepth(), 0u);
        // The link is idle again: service restarts from now.
        EXPECT_EQ(dma.reserve(1000), sim::Time::us(4));
    });
    eq.runAll();
    EXPECT_EQ(dma.transfers(), 3u);
}

TEST(DmaEngineDeathTest, ReservePanicsInExactMode)
{
    sim::ThinningScope scope(false);
    sim::EventQueue eq;
    DmaEngine dma(eq, "d");
    EXPECT_DEATH(dma.reserve(100), "reserve");
}
